/**
 * @file
 * Fig. 8 walkthrough on the unified API: request the execution-graph
 * artifact for the schemes explored by Cocco and SoMa (whose result
 * carries both the stage-1 double-buffer rendering and the final
 * searched-DLSA rendering), so the DRAM/COMPUTE/BUFFER trade-offs can
 * be inspected.
 *
 * Run: ./build/execution_graph [model] [batch] [rows]
 */
#include <cstdlib>
#include <iostream>

#include "api/scheduler.h"

int
main(int argc, char **argv)
{
    using namespace soma;
    std::string model = argc > 1 ? argv[1] : "resnet50";
    int batch = argc > 2 ? std::atoi(argv[2]) : 1;
    int rows = argc > 3 ? std::atoi(argv[3]) : 40;

    ScheduleRequest request;
    request.model = model;
    request.batch = batch;
    request.hardware = "edge";
    request.profile = SearchProfile::kQuick;
    request.seed = 3;
    request.artifacts.execution_graph = true;
    request.artifacts.execution_graph_rows = rows;

    Scheduler scheduler;

    ScheduleRequest cocco_request = request;
    cocco_request.scheduler = "cocco";
    ScheduleResult cocco = scheduler.Schedule(cocco_request);
    if (!cocco.ok) {
        std::cerr << "cocco failed: " << cocco.error << "\n";
        return 1;
    }
    std::cout << "==== Cocco ====\n";
    std::cout << "scheme: " << cocco.scheme << "\n";
    std::cout << cocco.execution_graph;

    ScheduleResult ours = scheduler.Schedule(request);
    if (!ours.ok) {
        std::cerr << "soma failed: " << ours.error << "\n";
        return 1;
    }
    std::cout << "\n==== SoMa stage 1 (double-buffer DLSA) ====\n";
    std::cout << "scheme: " << ours.scheme << "\n";
    std::cout << ours.stage1_execution_graph;

    std::cout << "\n==== SoMa stage 2 (searched DLSA) ====\n";
    std::cout << ours.execution_graph;
    return 0;
}
