/**
 * @file
 * Fig. 8 walkthrough: print the practical execution graphs of the
 * schemes explored by Cocco, SoMa stage 1, and SoMa stage 2 for one
 * workload, so the DRAM/COMPUTE/BUFFER trade-offs can be inspected.
 *
 * Run: ./build/examples/execution_graph [model] [batch] [rows]
 */
#include <cstdlib>
#include <iostream>

#include "baselines/cocco.h"
#include "hw/hardware.h"
#include "search/soma.h"
#include "sim/report.h"
#include "workload/models.h"

int
main(int argc, char **argv)
{
    using namespace soma;
    std::string model = argc > 1 ? argv[1] : "resnet50";
    int batch = argc > 2 ? std::atoi(argv[2]) : 1;
    int rows = argc > 3 ? std::atoi(argv[3]) : 40;

    Graph graph = BuildModelByName(model, batch);
    HardwareConfig hw = EdgeAccelerator();

    CoccoResult cocco = RunCocco(graph, hw, QuickCoccoOptions(3));
    std::cout << "==== Cocco ====\n";
    std::cout << "scheme: " << cocco.lfa.ToString(graph) << "\n";
    PrintExecutionGraph(std::cout, graph, cocco.parsed, cocco.dlsa,
                        cocco.report, rows);

    SomaSearchResult ours = RunSoma(graph, hw, QuickSomaOptions(3));
    std::cout << "\n==== SoMa stage 1 (double-buffer DLSA) ====\n";
    std::cout << "scheme: " << ours.lfa.ToString(graph) << "\n";
    PrintExecutionGraph(std::cout, graph, ours.parsed, ours.stage1_dlsa,
                        ours.stage1_report, rows);

    std::cout << "\n==== SoMa stage 2 (searched DLSA) ====\n";
    PrintExecutionGraph(std::cout, graph, ours.parsed, ours.dlsa,
                        ours.report, rows);
    return 0;
}
