/**
 * @file
 * ResNet-50 on the 16 TOPS edge accelerator: run the Cocco baseline and
 * both SoMa stages, then print the Fig. 6-style comparison row and the
 * headline speedup/energy numbers for this workload.
 *
 * Run: ./build/examples/resnet50_edge [batch] [seed]
 */
#include <cstdlib>
#include <iostream>

#include "baselines/cocco.h"
#include "common/table.h"
#include "hw/hardware.h"
#include "search/soma.h"
#include "workload/models.h"

int
main(int argc, char **argv)
{
    using namespace soma;
    int batch = argc > 1 ? std::atoi(argv[1]) : 1;
    std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    Graph graph = BuildResNet50(batch);
    HardwareConfig hw = EdgeAccelerator();
    std::cout << "ResNet-50, batch " << batch << ", " << hw.PeakTops()
              << " TOPS edge, " << FormatBytes(hw.gbuf_bytes) << " GBUF, "
              << hw.dram_gbps << " GB/s DRAM\n\n";

    CoccoResult cocco = RunCocco(graph, hw, DefaultCoccoOptions(seed));
    SomaSearchResult ours = RunSoma(graph, hw, DefaultSomaOptions(seed));

    Table t({"scheme", "latency(ms)", "energy(mJ)", "util(%)", "theory(%)",
             "avg buf", "LGs", "tiles"});
    auto row = [&](const char *name, const EvalReport &r) {
        t.AddRow({name, FormatDouble(r.latency * 1e3),
                  FormatDouble(r.EnergyJ() * 1e3),
                  FormatDouble(r.compute_util * 100, 1),
                  FormatDouble(r.theory_max_util * 100, 1),
                  FormatBytes(r.avg_buffer), std::to_string(r.num_lgs),
                  std::to_string(r.num_tiles)});
    };
    row("cocco", cocco.report);
    row("ours_1", ours.stage1_report);
    row("ours_2", ours.report);
    t.Print(std::cout);

    std::cout << "\nSoMa scheme: " << ours.lfa.ToString(graph) << "\n";
    std::cout << "speedup over cocco: "
              << FormatDouble(cocco.report.latency / ours.report.latency, 2)
              << "x, energy reduction: "
              << FormatDouble((1.0 - ours.report.EnergyJ() /
                                         cocco.report.EnergyJ()) * 100, 1)
              << "%\n";
    return 0;
}
