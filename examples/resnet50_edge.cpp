/**
 * @file
 * ResNet-50 on the 16 TOPS edge accelerator through the unified API:
 * submit the Cocco baseline and the SoMa two-stage search as concurrent
 * async jobs on one Scheduler, then print the Fig. 6-style comparison
 * row and the headline speedup/energy numbers.
 *
 * Run: ./build/resnet50_edge [batch] [seed]
 */
#include <cstdlib>
#include <iostream>

#include "api/scheduler.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace soma;
    int batch = argc > 1 ? std::atoi(argv[1]) : 1;
    std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    ScheduleRequest request;
    request.model = "resnet50";
    request.batch = batch;
    request.hardware = "edge";
    request.profile = SearchProfile::kDefault;
    request.seed = seed;

    Scheduler scheduler;
    HardwareConfig hw;
    std::string err;
    scheduler.hardware().Make(request.hardware, &hw, &err);
    std::cout << "ResNet-50, batch " << batch << ", " << hw.PeakTops()
              << " TOPS edge, " << FormatBytes(hw.gbuf_bytes) << " GBUF, "
              << hw.dram_gbps << " GB/s DRAM\n\n";

    // Submit both schemes; they run concurrently on the shared pool and
    // their results are independent of each other by construction.
    ScheduleRequest cocco_request = request;
    cocco_request.scheduler = "cocco";
    Scheduler::JobId cocco_job = scheduler.Submit(cocco_request);
    Scheduler::JobId soma_job = scheduler.Submit(request);

    ScheduleResult cocco = scheduler.Wait(cocco_job);
    ScheduleResult ours = scheduler.Wait(soma_job);
    if (!cocco.ok || !ours.ok) {
        std::cerr << "search failed: "
                  << (cocco.ok ? ours.error : cocco.error) << "\n";
        return 1;
    }

    Table t({"scheme", "latency(ms)", "energy(mJ)", "util(%)", "theory(%)",
             "avg buf", "LGs", "tiles"});
    auto row = [&](const char *name, const EvalReport &r) {
        t.AddRow({name, FormatDouble(r.latency * 1e3),
                  FormatDouble(r.EnergyJ() * 1e3),
                  FormatDouble(r.compute_util * 100, 1),
                  FormatDouble(r.theory_max_util * 100, 1),
                  FormatBytes(r.avg_buffer), std::to_string(r.num_lgs),
                  std::to_string(r.num_tiles)});
    };
    row("cocco", cocco.report);
    row("ours_1", ours.stage1_report);
    row("ours_2", ours.report);
    t.Print(std::cout);

    std::cout << "\nSoMa scheme: " << ours.scheme << "\n";
    std::cout << "speedup over cocco: "
              << FormatDouble(cocco.report.latency / ours.report.latency, 2)
              << "x, energy reduction: "
              << FormatDouble((1.0 - ours.report.EnergyJ() /
                                         cocco.report.EnergyJ()) * 100, 1)
              << "%\n";
    return 0;
}
