/**
 * @file
 * LLM case study (Sec. VI-B) on the unified API: GPT-2 prefill vs
 * decode across batch sizes. Demonstrates the ModelRegistry extension
 * point — the token-length-parameterized prefill/decode variants are
 * registered as custom builders, then requested by name like any
 * built-in model. Reproduces the paper's two observations: (1) decode
 * has near-zero DRAM-scheduling headroom because weight + KV-cache
 * loading dominates; (2) decode utilization grows sublinearly with
 * batch size as the KV cache becomes comparable to the weights.
 *
 * Run: ./build/gpt2_llm [edge|cloud] [seed]
 */
#include <cstring>
#include <iostream>

#include "api/scheduler.h"
#include "common/table.h"
#include "workload/models.h"

int
main(int argc, char **argv)
{
    using namespace soma;
    bool cloud = argc > 1 && std::strcmp(argv[1], "cloud") == 0;
    std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    Gpt2Config cfg = cloud ? Gpt2Xl() : Gpt2Small();
    int tokens = cloud ? 1024 : 512;

    Scheduler scheduler;

    // Extension point: register custom, token-length-specific builders
    // next to the built-in zoo.
    scheduler.models().Register("gpt2-prefill-case", [cfg, tokens](int b) {
        return BuildGpt2Prefill(cfg, b, tokens);
    });
    scheduler.models().Register("gpt2-decode-case", [cfg, tokens](int b) {
        return BuildGpt2Decode(cfg, b, tokens);
    });

    HardwareConfig hw;
    std::string err;
    scheduler.hardware().Make(cloud ? "cloud" : "edge", &hw, &err);
    std::cout << (cloud ? "GPT-2-XL" : "GPT-2-Small") << " on "
              << hw.PeakTops() << " TOPS " << hw.name << " (tokens "
              << tokens << ")\n\n";

    Table t({"phase", "batch", "util(%)", "theory(%)", "dram util(%)",
             "latency(ms)", "KV bytes/W bytes"});
    for (int batch : {1, 4, 16}) {
        for (bool decode : {false, true}) {
            ScheduleRequest request;
            request.model =
                decode ? "gpt2-decode-case" : "gpt2-prefill-case";
            request.batch = batch;
            request.hardware = cloud ? "cloud" : "edge";
            request.profile = SearchProfile::kQuick;
            request.seed = seed;
            ScheduleResult r = scheduler.Schedule(request);
            if (!r.ok) {
                std::cerr << "schedule failed: " << r.error << "\n";
                return 1;
            }
            double kv_bytes = 2.0 * cfg.layers * batch * tokens * cfg.hidden;
            double w_bytes =
                static_cast<double>(r.graph->TotalWeightBytes());
            t.AddRow({decode ? "decode" : "prefill", std::to_string(batch),
                      FormatDouble(r.report.compute_util * 100, 2),
                      FormatDouble(r.report.theory_max_util * 100, 2),
                      FormatDouble(r.report.dram_util * 100, 1),
                      FormatDouble(r.report.latency * 1e3),
                      FormatDouble(kv_bytes / w_bytes, 2)});
        }
    }
    t.Print(std::cout);

    std::cout << "\nExpected shape: decode util << prefill util; decode "
                 "util grows sublinearly in batch\nbecause the KV cache "
                 "grows with batch while weights are constant.\n";
    return 0;
}
