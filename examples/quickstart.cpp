/**
 * @file
 * Quickstart: build a small CNN, run the full SoMa exploration on the
 * edge accelerator, print the report, and lower the winning scheme to
 * instructions.
 *
 * Run: ./build/examples/quickstart
 */
#include <iostream>

#include "compiler/instruction_gen.h"
#include "compiler/ir.h"
#include "hw/hardware.h"
#include "search/soma.h"
#include "sim/report.h"
#include "workload/graph_builder.h"

int
main()
{
    using namespace soma;

    // 1. Describe a workload: a small 6-layer CNN.
    GraphBuilder b("tinycnn", /*batch=*/1);
    ExtShape image{3, 64, 64};
    LayerId c1 = b.InputConv("conv1", image, 32, 3, 1, 1);
    LayerId c2 = b.Conv("conv2", c1, 32, 3, 1, 1);
    LayerId add = b.Eltwise("add", {c1, c2});
    LayerId c3 = b.Conv("conv3", add, 64, 3, 2, 1);
    LayerId gap = b.GlobalPool("gap", c3);
    LayerId fc = b.FcFull("fc", gap, 10);
    b.MarkOutput(fc);
    Graph graph = b.Take();

    // 2. Pick hardware and run the two-stage exploration.
    HardwareConfig hw = EdgeAccelerator();
    SomaSearchResult result = RunSoma(graph, hw, QuickSomaOptions(/*seed=*/7));

    std::cout << "Best scheme: " << result.lfa.ToString(graph) << "\n";
    std::cout << "Latency: " << result.report.latency * 1e6 << " us, "
              << "energy: " << result.report.EnergyJ() * 1e3 << " mJ\n";
    std::cout << "Compute utilization: "
              << result.report.compute_util * 100.0 << "% (theoretical max "
              << result.report.theory_max_util * 100.0 << "%)\n";

    // 3. Execution graph (Fig. 8 style).
    PrintExecutionGraph(std::cout, graph, result.parsed, result.dlsa,
                        result.report, /*max_rows=*/20);

    // 4. Lower to IR and instructions.
    IrModule ir = GenerateIr(graph, result.parsed, result.dlsa);
    Program prog = GenerateInstructions(ir);
    std::cout << "\nGenerated " << prog.instructions.size()
              << " instructions (" << prog.NumLoads() << " loads, "
              << prog.NumStores() << " stores, " << prog.NumComputes()
              << " computes)\n";
    return 0;
}
