/**
 * @file
 * Quickstart on the unified API: build a small CNN, hand an inline-graph
 * ScheduleRequest to soma::Scheduler, print the report, and read the
 * instruction-stream and execution-graph artifacts off the result.
 *
 * Run: ./build/quickstart
 */
#include <iostream>

#include "api/scheduler.h"
#include "workload/graph_builder.h"

int
main()
{
    using namespace soma;

    // 1. Describe a workload: a small 6-layer CNN.
    GraphBuilder b("tinycnn", /*batch=*/1);
    ExtShape image{3, 64, 64};
    LayerId c1 = b.InputConv("conv1", image, 32, 3, 1, 1);
    LayerId c2 = b.Conv("conv2", c1, 32, 3, 1, 1);
    LayerId add = b.Eltwise("add", {c1, c2});
    LayerId c3 = b.Conv("conv3", add, 64, 3, 2, 1);
    LayerId gap = b.GlobalPool("gap", c3);
    LayerId fc = b.FcFull("fc", gap, 10);
    b.MarkOutput(fc);

    // 2. Describe the request: inline graph, edge hardware, quick
    //    profile, instruction + execution-graph artifacts.
    ScheduleRequest request;
    request.graph = std::make_shared<const Graph>(b.Take());
    request.hardware = "edge";
    request.profile = SearchProfile::kQuick;
    request.seed = 7;
    request.artifacts.instructions = true;
    request.artifacts.execution_graph = true;
    request.artifacts.execution_graph_rows = 20;

    // 3. Run it through the facade.
    Scheduler scheduler;
    ScheduleResult result = scheduler.Schedule(request);
    if (!result.ok) {
        std::cerr << "schedule failed: " << result.error << "\n";
        return 1;
    }

    std::cout << "Best scheme: " << result.scheme << "\n";
    std::cout << "Latency: " << result.report.latency * 1e6 << " us, "
              << "energy: " << result.report.EnergyJ() * 1e3 << " mJ\n";
    std::cout << "Compute utilization: "
              << result.report.compute_util * 100.0 << "% (theoretical max "
              << result.report.theory_max_util * 100.0 << "%)\n";

    // 4. Execution graph (Fig. 8 style) — already rendered as an
    //    artifact.
    std::cout << result.execution_graph;

    // 5. The lowered instruction stream came back with the result.
    std::cout << "\nGenerated " << result.num_instructions
              << " instructions (" << result.num_loads << " loads, "
              << result.num_stores << " stores, " << result.num_computes
              << " computes)\n";
    return 0;
}
