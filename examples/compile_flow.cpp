/**
 * @file
 * The compiler flow end to end (Fig. 5 right side), driven through the
 * unified API: one ScheduleRequest asks for the IR, instruction-stream
 * and CSV-trace artifacts; the example writes them to disk, re-parses
 * the IR text, executes it on the instruction VM, and verifies the VM
 * reproduces the analytical latency.
 *
 * Run: ./build/compile_flow [model] [batch] [outdir]
 */
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "api/scheduler.h"
#include "compiler/ir.h"
#include "compiler/vm.h"

int
main(int argc, char **argv)
{
    using namespace soma;
    std::string model = argc > 1 ? argv[1] : "resnet50";
    int batch = argc > 2 ? std::atoi(argv[2]) : 1;
    std::string outdir = argc > 3 ? argv[3] : ".";

    ScheduleRequest request;
    request.model = model;
    request.batch = batch;
    request.hardware = "edge";
    request.profile = SearchProfile::kQuick;
    request.seed = 11;
    request.artifacts.ir = true;
    request.artifacts.instructions = true;
    request.artifacts.traces = true;

    Scheduler scheduler;
    ScheduleResult best = scheduler.Schedule(request);
    if (!best.ok) {
        std::cerr << "no valid schedule found: " << best.error << "\n";
        return 1;
    }
    std::cout << "schedule: " << best.report.num_lgs << " LGs, "
              << best.report.num_tiles << " tiles, latency "
              << best.report.latency * 1e3 << " ms\n";

    // IR (artifact text; the round trip below proves it is complete).
    std::ofstream(outdir + "/" + model + ".ir") << best.ir_text;
    std::cout << "wrote " << model << ".ir\n";

    // Instructions.
    std::ofstream(outdir + "/" + model + ".asm") << best.asm_text;
    std::cout << "wrote " << model << ".asm (" << best.num_instructions
              << " instructions: " << best.num_loads << " loads, "
              << best.num_stores << " stores, " << best.num_computes
              << " computes)\n";

    // Re-parse the IR artifact and execute it on the VM; the hardware
    // point comes from the same registry the pipeline used.
    IrModule ir;
    std::string err;
    if (!IrModule::FromText(best.ir_text, &ir, &err)) {
        std::cerr << "IR round trip failed: " << err << "\n";
        return 1;
    }
    HardwareConfig hw;
    if (!scheduler.hardware().Make(request.hardware, &hw, &err)) {
        std::cerr << err << "\n";
        return 1;
    }
    VmResult vm = ExecuteIr(ir, hw);
    if (!vm.ok) {
        std::cerr << "VM error: " << vm.error << "\n";
        return 1;
    }
    double rel = std::abs(vm.makespan - best.report.latency) /
                 best.report.latency;
    std::cout << "VM makespan " << vm.makespan * 1e3
              << " ms vs evaluator " << best.report.latency * 1e3
              << " ms (rel diff " << rel << ")\n";

    // Traces for plotting.
    std::ofstream(outdir + "/" + model + "_compute.csv")
        << best.compute_csv;
    std::ofstream(outdir + "/" + model + "_dram.csv") << best.dram_csv;
    std::ofstream(outdir + "/" + model + "_buffer.csv") << best.buffer_csv;
    std::cout << "wrote " << model
              << "_{compute,dram,buffer}.csv trace files\n";
    return rel < 1e-6 ? 0 : 1;
}
