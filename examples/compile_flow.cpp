/**
 * @file
 * The compiler flow end to end (Fig. 5 right side): search a schedule,
 * emit the textual IR, lower to the abstract load/store/compute
 * instruction stream, execute it on the instruction VM, and verify the
 * VM reproduces the analytical latency. Also dumps the CSV traces used
 * for plotting execution graphs.
 *
 * Run: ./build/examples/compile_flow [model] [batch] [outdir]
 */
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "compiler/instruction_gen.h"
#include "compiler/ir.h"
#include "compiler/vm.h"
#include "search/soma.h"
#include "sim/trace.h"
#include "workload/models.h"

int
main(int argc, char **argv)
{
    using namespace soma;
    std::string model = argc > 1 ? argv[1] : "resnet50";
    int batch = argc > 2 ? std::atoi(argv[2]) : 1;
    std::string outdir = argc > 3 ? argv[3] : ".";

    Graph graph = BuildModelByName(model, batch);
    HardwareConfig hw = EdgeAccelerator();
    SomaSearchResult best = RunSoma(graph, hw, QuickSomaOptions(11));
    if (!best.report.valid) {
        std::cerr << "no valid schedule found: "
                  << best.report.why_invalid << "\n";
        return 1;
    }
    std::cout << "schedule: " << best.report.num_lgs << " LGs, "
              << best.report.num_tiles << " tiles, latency "
              << best.report.latency * 1e3 << " ms\n";

    // IR.
    IrModule ir = GenerateIr(graph, best.parsed, best.dlsa);
    std::ofstream(outdir + "/" + model + ".ir") << ir.ToText();
    std::cout << "wrote " << model << ".ir (" << ir.tiles.size()
              << " tiles, " << ir.tensors.size() << " tensors)\n";

    // Instructions.
    Program prog = GenerateInstructions(ir);
    std::ofstream(outdir + "/" + model + ".asm") << prog.ToText();
    std::cout << "wrote " << model << ".asm (" << prog.instructions.size()
              << " instructions: " << prog.NumLoads() << " loads, "
              << prog.NumStores() << " stores, " << prog.NumComputes()
              << " computes)\n";

    // Execute on the VM and cross-check against the evaluator.
    VmResult vm = ExecuteIr(ir, hw);
    if (!vm.ok) {
        std::cerr << "VM error: " << vm.error << "\n";
        return 1;
    }
    double rel = std::abs(vm.makespan - best.report.latency) /
                 best.report.latency;
    std::cout << "VM makespan " << vm.makespan * 1e3
              << " ms vs evaluator " << best.report.latency * 1e3
              << " ms (rel diff " << rel << ")\n";

    // Traces for plotting.
    {
        std::ofstream f(outdir + "/" + model + "_compute.csv");
        WriteComputeTraceCsv(f, graph, best.parsed, best.report);
    }
    {
        std::ofstream f(outdir + "/" + model + "_dram.csv");
        WriteDramTraceCsv(f, graph, best.parsed, best.dlsa, best.report);
    }
    {
        std::ofstream f(outdir + "/" + model + "_buffer.csv");
        WriteBufferTraceCsv(f, best.parsed, best.dlsa);
    }
    std::cout << "wrote " << model
              << "_{compute,dram,buffer}.csv trace files\n";
    return rel < 1e-6 ? 0 : 1;
}
