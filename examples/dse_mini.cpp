/**
 * @file
 * Miniature design-space exploration (Fig. 7 style): sweep DRAM
 * bandwidth x buffer size for one workload and print the latency grid
 * for Cocco and SoMa, highlighting the minimum-latency envelope.
 *
 * Run: ./build/examples/dse_mini [model] [batch] [seed]
 */
#include <cstdlib>
#include <iostream>
#include <vector>

#include "baselines/cocco.h"
#include "common/table.h"
#include "hw/hardware.h"
#include "search/soma.h"
#include "workload/models.h"

int
main(int argc, char **argv)
{
    using namespace soma;
    std::string model = argc > 1 ? argv[1] : "resnet50";
    int batch = argc > 2 ? std::atoi(argv[2]) : 1;
    std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

    const std::vector<double> bandwidths = {8, 16, 32, 64};
    const std::vector<Bytes> buffers = {2LL << 20, 4LL << 20, 8LL << 20,
                                        16LL << 20};

    Graph graph = BuildModelByName(model, batch);
    HardwareConfig base = EdgeAccelerator();
    std::cout << "DSE: " << model << " batch " << batch << " on "
              << base.PeakTops() << " TOPS edge\n";

    for (bool use_soma : {false, true}) {
        std::cout << "\n" << (use_soma ? "SoMa" : "Cocco")
                  << " latency (ms): rows = DRAM GB/s, cols = buffer MB\n";
        std::vector<std::string> header = {"GB/s \\ MB"};
        for (Bytes b : buffers)
            header.push_back(std::to_string(b >> 20));
        Table t(header);
        double best = 1e30;
        for (double bw : bandwidths) {
            std::vector<std::string> row = {FormatDouble(bw, 0)};
            for (Bytes buf : buffers) {
                HardwareConfig hw = WithBufferAndBandwidth(base, buf, bw);
                double latency;
                if (use_soma) {
                    latency = RunSoma(graph, hw, QuickSomaOptions(seed))
                                  .report.latency;
                } else {
                    latency = RunCocco(graph, hw, QuickCoccoOptions(seed))
                                  .report.latency;
                }
                best = std::min(best, latency);
                row.push_back(FormatDouble(latency * 1e3, 2));
            }
            t.AddRow(row);
        }
        t.Print(std::cout);
        std::cout << "min latency " << FormatDouble(best * 1e3, 2)
                  << " ms\n";
    }
    return 0;
}
