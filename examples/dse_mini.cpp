/**
 * @file
 * Miniature design-space exploration (Fig. 7 style) on the unified API:
 * every (bandwidth, buffer) point of the sweep becomes one async
 * ScheduleRequest with hardware overrides; the Scheduler multiplexes
 * the whole grid over its worker pool, and the latency tables for
 * Cocco and SoMa are printed from the collected results.
 *
 * Run: ./build/dse_mini [model] [batch] [seed]
 */
#include <cstdlib>
#include <iostream>
#include <vector>

#include "api/scheduler.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace soma;
    std::string model = argc > 1 ? argv[1] : "resnet50";
    int batch = argc > 2 ? std::atoi(argv[2]) : 1;
    std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

    const std::vector<double> bandwidths = {8, 16, 32, 64};
    const std::vector<Bytes> buffers = {2LL << 20, 4LL << 20, 8LL << 20,
                                        16LL << 20};

    Scheduler::Options pool;
    pool.workers = 4;
    Scheduler scheduler(pool);

    HardwareConfig base;
    std::string err;
    scheduler.hardware().Make("edge", &base, &err);
    std::cout << "DSE: " << model << " batch " << batch << " on "
              << base.PeakTops() << " TOPS edge\n";

    for (bool use_soma : {false, true}) {
        std::cout << "\n" << (use_soma ? "SoMa" : "Cocco")
                  << " latency (ms): rows = DRAM GB/s, cols = buffer MB\n";

        // Fan the whole grid out first...
        std::vector<Scheduler::JobId> jobs;
        for (double bw : bandwidths) {
            for (Bytes buf : buffers) {
                ScheduleRequest request;
                request.model = model;
                request.batch = batch;
                request.hardware = "edge";
                request.gbuf_bytes = buf;
                request.dram_gbps = bw;
                request.scheduler = use_soma ? "soma" : "cocco";
                request.profile = SearchProfile::kQuick;
                request.seed = seed;
                jobs.push_back(scheduler.Submit(request));
            }
        }

        // ...then collect in grid order.
        std::vector<std::string> header = {"GB/s \\ MB"};
        for (Bytes b : buffers)
            header.push_back(std::to_string(b >> 20));
        Table t(header);
        double best = 1e30;
        std::size_t job = 0;
        for (double bw : bandwidths) {
            std::vector<std::string> row = {FormatDouble(bw, 0)};
            for (std::size_t i = 0; i < buffers.size(); ++i) {
                ScheduleResult r = scheduler.Wait(jobs[job++]);
                double latency = r.report.latency;  // inf when infeasible
                best = std::min(best, latency);
                row.push_back(FormatDouble(latency * 1e3, 2));
            }
            t.AddRow(row);
        }
        t.Print(std::cout);
        std::cout << "min latency " << FormatDouble(best * 1e3, 2)
                  << " ms\n";
    }
    return 0;
}
