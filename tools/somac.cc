/**
 * @file
 * somac — the SoMa scheduler as a command-line service. Wraps the
 * soma::Scheduler facade: a request JSON (or flags) in, a result JSON
 * (plus optional artifact files) out, with the same bit-for-bit
 * results as the in-process API for the same (seed, chains).
 *
 *   somac run <request.json> [overrides] [-o result.json] [--outdir D]
 *   somac run --model resnet50 --profile quick --seed 7 [-o out.json]
 *   somac list models|hardware|schedulers
 *   somac validate <result.json>
 *   somac help
 *
 * `validate` is the tiny schema validator CI uses on the smoke run's
 * output; it checks presence and types of the stable result fields.
 */
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/scheduler.h"

namespace {

using namespace soma;

int
Usage(std::ostream &os, int code)
{
    os << "somac — SoMa DRAM-communication scheduler CLI\n"
          "\n"
          "usage:\n"
          "  somac run [request.json] [overrides] [-o result.json]\n"
          "            [--outdir DIR] [--quiet]\n"
          "  somac list models|hardware|schedulers\n"
          "  somac validate result.json\n"
          "  somac help\n"
          "\n"
          "run overrides (flag form of the request JSON fields):\n"
          "  --model NAME        workload (see `somac list models`)\n"
          "  --batch N           batch size (default 1)\n"
          "  --hw NAME           hardware preset (edge|cloud|custom)\n"
          "  --gbuf-mb MB        override GBUF size\n"
          "  --dram-gbps GBPS    override DRAM bandwidth\n"
          "  --scheduler NAME    soma|cocco|lfa-only (default soma)\n"
          "  --profile P         quick|default|full (default quick)\n"
          "  --seed N            search seed (default 1)\n"
          "  --cost-n X --cost-m Y   objective Energy^n x Delay^m\n"
          "  --chains K          SA chains (deterministic knob)\n"
          "  --threads T         driver threads (wall-clock only)\n"
          "  --ir --asm --traces --exec-graph   request artifacts\n"
          "  --exec-graph-rows N  execution-graph rows (default 40)\n"
          "\n"
          "-o/--out writes the result JSON (default: stdout);\n"
          "--outdir additionally writes artifacts as files\n"
          "(<model>.ir, <model>.asm, <model>_{compute,dram,buffer}.csv,\n"
          "<model>_execgraph.txt).\n";
    return code;
}

bool
ParseIntArg(const std::string &flag, const std::string &text, int *out)
{
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(text.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0' || end == text.c_str() ||
        v < INT_MIN || v > INT_MAX) {
        std::cerr << flag << ": \"" << text << "\" is not an integer\n";
        return false;
    }
    *out = static_cast<int>(v);
    return true;
}

bool
ParseU64Arg(const std::string &flag, const std::string &text,
            std::uint64_t *out)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0' || end == text.c_str()) {
        std::cerr << flag << ": \"" << text
                  << "\" is not an unsigned integer\n";
        return false;
    }
    *out = v;
    return true;
}

bool
ParseDoubleArg(const std::string &flag, const std::string &text,
               double *out)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || !end || *end != '\0' || end == text.c_str()) {
        std::cerr << flag << ": \"" << text << "\" is not a number\n";
        return false;
    }
    *out = v;
    return true;
}

bool
ReadFile(const std::string &path, std::string *out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
WriteFile(const std::string &path, const std::string &content,
          std::string *err)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        *err = "cannot write " + path;
        return false;
    }
    out << content;
    return static_cast<bool>(out);
}

int
CmdList(const std::vector<std::string> &args)
{
    Scheduler scheduler;
    std::string what = args.empty() ? "all" : args[0];
    auto print = [](const char *title,
                    const std::vector<std::string> &names) {
        std::cout << title << ":\n";
        for (const std::string &n : names) std::cout << "  " << n << "\n";
    };
    if (what == "models" || what == "all")
        print("models", scheduler.models().Names());
    if (what == "hardware" || what == "all")
        print("hardware", scheduler.hardware().Names());
    if (what == "schedulers" || what == "all")
        print("schedulers", scheduler.schedulers().Names());
    if (what != "models" && what != "hardware" && what != "schedulers" &&
        what != "all") {
        std::cerr << "unknown list target \"" << what
                  << "\" (models|hardware|schedulers)\n";
        return 2;
    }
    return 0;
}

/** Does this `somac run` flag consume the following argument? */
bool
FlagTakesValue(const std::string &flag)
{
    static const char *kValueFlags[] = {
        "--model", "--batch", "--hw", "--hardware", "--gbuf-mb",
        "--dram-gbps", "--scheduler", "--profile", "--seed", "--cost-n",
        "--cost-m", "--chains", "--threads", "--exec-graph-rows", "-o",
        "--out", "--outdir"};
    for (const char *f : kValueFlags)
        if (flag == f) return true;
    return false;
}

bool
IsBooleanFlag(const std::string &flag)
{
    static const char *kBoolFlags[] = {"--ir", "--asm", "--traces",
                                       "--exec-graph", "--quiet"};
    for (const char *f : kBoolFlags)
        if (flag == f) return true;
    return false;
}

int
CmdRun(const std::vector<std::string> &args)
{
    ScheduleRequest request;
    std::string out_path, outdir;
    bool quiet = false;
    bool have_request = false;

    // Pass 1: load the positional request JSON (if any) first, so
    // flags override its fields no matter where they appear.
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (!arg.empty() && arg[0] == '-') {
            // Reject unknown flags here, before their values can be
            // mistaken for the request-JSON path.
            if (FlagTakesValue(arg)) {
                ++i;
            } else if (!IsBooleanFlag(arg)) {
                std::cerr << "unknown flag " << arg << "\n";
                return 2;
            }
            continue;
        }
        if (have_request) {
            std::cerr << "more than one request JSON given (\"" << arg
                      << "\")\n";
            return 2;
        }
        std::string text, err;
        if (!ReadFile(arg, &text, &err)) {
            std::cerr << err << "\n";
            return 2;
        }
        Json json;
        if (!Json::Parse(text, &json, &err)) {
            std::cerr << arg << ": " << err << "\n";
            return 2;
        }
        if (!ScheduleRequest::FromJson(json, &request, &err)) {
            std::cerr << arg << ": " << err << "\n";
            return 2;
        }
        have_request = true;
    }

    // Pass 2: apply the flag overrides.
    auto need_value = [&args](std::size_t i, const std::string &flag)
        -> const std::string * {
        if (i + 1 >= args.size()) {
            std::cerr << flag << " needs a value\n";
            return nullptr;
        }
        return &args[i + 1];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const std::string *v = nullptr;
        if (arg.empty() || arg[0] != '-') {
            continue;  // the request JSON, consumed by pass 1
        } else if (arg == "--model") {
            if (!(v = need_value(i, arg))) return 2;
            request.model = *v, ++i;
        } else if (arg == "--batch") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &request.batch)) return 2;
            ++i;
        } else if (arg == "--hw" || arg == "--hardware") {
            if (!(v = need_value(i, arg))) return 2;
            request.hardware = *v, ++i;
        } else if (arg == "--gbuf-mb") {
            if (!(v = need_value(i, arg))) return 2;
            double mb = 0;
            if (!ParseDoubleArg(arg, *v, &mb)) return 2;
            request.gbuf_bytes = static_cast<Bytes>(mb * 1024 * 1024);
            ++i;
        } else if (arg == "--dram-gbps") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseDoubleArg(arg, *v, &request.dram_gbps)) return 2;
            ++i;
        } else if (arg == "--scheduler") {
            if (!(v = need_value(i, arg))) return 2;
            request.scheduler = *v, ++i;
        } else if (arg == "--profile") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseSearchProfile(*v, &request.profile)) {
                std::cerr << "unknown profile \"" << *v
                          << "\" (quick|default|full)\n";
                return 2;
            }
            ++i;
        } else if (arg == "--seed") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseU64Arg(arg, *v, &request.seed)) return 2;
            ++i;
        } else if (arg == "--cost-n") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseDoubleArg(arg, *v, &request.cost_n)) return 2;
            ++i;
        } else if (arg == "--cost-m") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseDoubleArg(arg, *v, &request.cost_m)) return 2;
            ++i;
        } else if (arg == "--chains") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &request.chains)) return 2;
            ++i;
        } else if (arg == "--threads") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &request.threads)) return 2;
            ++i;
        } else if (arg == "--ir") {
            request.artifacts.ir = true;
        } else if (arg == "--asm") {
            request.artifacts.instructions = true;
        } else if (arg == "--traces") {
            request.artifacts.traces = true;
        } else if (arg == "--exec-graph") {
            request.artifacts.execution_graph = true;
        } else if (arg == "--exec-graph-rows") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v,
                             &request.artifacts.execution_graph_rows))
                return 2;
            ++i;
        } else if (arg == "-o" || arg == "--out") {
            if (!(v = need_value(i, arg))) return 2;
            out_path = *v, ++i;
        } else if (arg == "--outdir") {
            if (!(v = need_value(i, arg))) return 2;
            outdir = *v, ++i;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::cerr << "unknown flag " << arg << "\n";
            return 2;
        }
    }
    if (!have_request && request.model.empty()) {
        std::cerr << "nothing to schedule: pass a request JSON or "
                     "--model (see somac help)\n";
        return 2;
    }

    Scheduler scheduler;
    if (!quiet) {
        request.on_progress = [](const ProgressEvent &event) {
            std::cerr << "[somac] " << event.phase << " +"
                      << event.elapsed_seconds << "s\n";
        };
    }
    ScheduleResult result = scheduler.Schedule(request);

    std::string err;
    const std::string result_text = result.ToJson().Dump(2) + "\n";
    if (out_path.empty()) {
        std::cout << result_text;
    } else if (!WriteFile(out_path, result_text, &err)) {
        std::cerr << err << "\n";
        return 2;
    }

    if (!outdir.empty() && result.ok) {
        const std::string base = outdir + "/" + result.model;
        struct File {
            const std::string &content;
            std::string path;
        };
        const File files[] = {
            {result.ir_text, base + ".ir"},
            {result.asm_text, base + ".asm"},
            {result.compute_csv, base + "_compute.csv"},
            {result.dram_csv, base + "_dram.csv"},
            {result.buffer_csv, base + "_buffer.csv"},
            {result.execution_graph, base + "_execgraph.txt"},
        };
        for (const File &f : files) {
            if (f.content.empty()) continue;
            if (!WriteFile(f.path, f.content, &err)) {
                std::cerr << err << "\n";
                return 2;
            }
            if (!quiet) std::cerr << "[somac] wrote " << f.path << "\n";
        }
    }

    if (!result.ok) {
        std::cerr << "schedule failed: " << result.error << "\n";
        return 1;
    }
    return 0;
}

/** Schema check for result JSONs: required keys with the right types. */
int
CmdValidate(const std::vector<std::string> &args)
{
    if (args.size() != 1) {
        std::cerr << "usage: somac validate result.json\n";
        return 2;
    }
    std::string text, err;
    if (!ReadFile(args[0], &text, &err)) {
        std::cerr << err << "\n";
        return 2;
    }
    Json json;
    if (!Json::Parse(text, &json, &err)) {
        std::cerr << args[0] << ": " << err << "\n";
        return 1;
    }

    std::vector<std::string> problems;
    auto require = [&](const char *key, Json::Type type) -> const Json * {
        const Json *v = json.Find(key);
        if (!v) {
            problems.push_back(std::string("missing field \"") + key +
                               "\"");
            return nullptr;
        }
        if (v->type() != type) {
            problems.push_back(std::string("field \"") + key +
                               "\" has the wrong type");
            return nullptr;
        }
        return v;
    };

    const Json *ok = require("ok", Json::Type::kBool);
    require("model", Json::Type::kString);
    require("hardware", Json::Type::kString);
    require("scheduler", Json::Type::kString);
    require("profile", Json::Type::kString);
    require("seed", Json::Type::kNumber);
    require("stats", Json::Type::kObject);
    const Json *report = require("report", Json::Type::kObject);
    if (report) {
        static const char *kNums[] = {
            "core_energy_j", "dram_energy_j", "compute_util",
            "theory_max_util", "peak_buffer", "dram_bytes",
            "num_tiles", "num_tensors", "num_flgs", "num_lgs"};
        for (const char *key : kNums) {
            const Json *v = report->Find(key);
            if (!v || !v->IsNumber())
                problems.push_back(std::string("report.") + key +
                                   " missing or not a number");
        }
        const Json *valid = report->Find("valid");
        if (!valid || !valid->IsBool())
            problems.push_back("report.valid missing or not a boolean");
        if (ok && ok->AsBool()) {
            if (valid && !valid->AsBool())
                problems.push_back("ok is true but report.valid is false");
            const Json *latency = report->Find("latency");
            if (!latency || !latency->IsNumber() ||
                !(latency->AsDouble() > 0))
                problems.push_back(
                    "ok result needs a positive numeric report.latency");
        }
    }
    if (ok && ok->AsBool()) {
        const Json *scheme = json.Find("scheme");
        if (!scheme || !scheme->IsString() || scheme->AsString().empty())
            problems.push_back("ok result needs a non-empty scheme");
    }

    if (!problems.empty()) {
        for (const std::string &p : problems)
            std::cerr << args[0] << ": " << p << "\n";
        return 1;
    }
    std::cout << args[0] << ": valid result JSON\n";
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) return Usage(std::cerr, 2);
    const std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "run") return CmdRun(args);
    if (cmd == "list") return CmdList(args);
    if (cmd == "validate") return CmdValidate(args);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return Usage(std::cout, 0);
    std::cerr << "unknown command \"" << cmd << "\"\n\n";
    return Usage(std::cerr, 2);
}
