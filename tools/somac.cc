/**
 * @file
 * somac — the SoMa scheduler as a command-line service. Wraps the
 * soma::Scheduler facade: a request JSON (or flags) in, a result JSON
 * (plus optional artifact files) out, with the same bit-for-bit
 * results as the in-process API for the same (seed, chains).
 *
 *   somac run <request.json> [overrides] [-o result.json] [--outdir D]
 *   somac run --model resnet50 --profile quick --seed 7 [-o out.json]
 *   somac sweep <spec.json> [--csv F] [--stats F] [--cache-dir D]
 *   somac fingerprint <request.json> [--canonical]
 *   somac list models|hardware|schedulers
 *   somac validate <result.json>
 *   somac help
 *
 * `sweep` expands a grid spec (models x hardware overrides x profiles
 * x seeds) into requests and runs them through the SchedulerService —
 * shared result/graph caches, in-flight coalescing — emitting a
 * deterministic CSV results table: re-running a sweep against a warm
 * `--cache-dir` produces the identical table with zero searches.
 *
 * `validate` is the tiny schema validator CI uses on the smoke run's
 * output; it checks presence and types of the stable result fields.
 */
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/scheduler.h"
#include "common/hash.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "service/service.h"

namespace {

using namespace soma;

int
Usage(std::ostream &os, int code)
{
    os << "somac — SoMa DRAM-communication scheduler CLI\n"
          "\n"
          "usage:\n"
          "  somac run [request.json] [overrides] [-o result.json]\n"
          "            [--outdir DIR] [--trace FILE] [--stats FILE]\n"
          "            [--quiet]\n"
          "  somac sweep spec.json [--csv FILE] [--json FILE]\n"
          "            [--stats FILE] [--trace FILE] [--cache-dir DIR]\n"
          "            [--cache-capacity N] [--jobs N] [--shard I/N]\n"
          "            [--repeat N] [--memory-model M] [--quiet]\n"
          "  somac fingerprint request.json [--canonical]\n"
          "            [--stats FILE]\n"
          "  somac list models|hardware|schedulers|memory-models\n"
          "  somac validate result.json\n"
          "  somac help\n"
          "\n"
          "run overrides (flag form of the request JSON fields):\n"
          "  --model NAME        workload (see `somac list models`)\n"
          "  --batch N           batch size (default 1)\n"
          "  --hw NAME           hardware preset (edge|cloud|custom)\n"
          "  --gbuf-mb MB        override GBUF size\n"
          "  --dram-gbps GBPS    override DRAM bandwidth\n"
          "  --memory-model M    DRAM timing backend (analytical|banked;\n"
          "                      see `somac list memory-models`)\n"
          "  --validate-memory   re-time the result under the banked\n"
          "                      replay and report the analytical-vs-\n"
          "                      banked latency gap (implied by\n"
          "                      --memory-model banked; metrics\n"
          "                      memory.validation_gap_pct + eval.dram.*\n"
          "                      land in --stats)\n"
          "  --scheduler NAME    soma|cocco|lfa-only (default soma)\n"
          "  --profile P         quick|default|full (default quick)\n"
          "  --seed N            search seed (default 1)\n"
          "  --cost-n X --cost-m Y   objective Energy^n x Delay^m\n"
          "  --chains K          SA chains (deterministic knob)\n"
          "  --threads T         driver threads (wall-clock only)\n"
          "  --deadline-ms N     wall-clock budget (0 = none)\n"
          "  --ir --asm --traces --exec-graph   request artifacts\n"
          "  --exec-graph-rows N  execution-graph rows (default 40)\n"
          "\n"
          "-o/--out writes the result JSON (default: stdout);\n"
          "--outdir additionally writes artifacts as files\n"
          "(<model>.ir, <model>.asm, <model>_{compute,dram,buffer}.csv,\n"
          "<model>_execgraph.txt).\n"
          "\n"
          "--trace FILE writes a Chrome trace-event JSON of the run\n"
          "(load in Perfetto / chrome://tracing): spans for every\n"
          "pipeline phase, search stage, SA window and the synthesized\n"
          "hot-path aggregates. Observational only — result bytes are\n"
          "identical with and without --trace.\n"
          "--stats FILE writes the canonical metrics-registry dump\n"
          "(flat dotted keys; one schema across run/sweep/fingerprint).\n"
          "\n"
          "sweep spec.json: {\"base\": {request fields...},\n"
          "  \"models\": [...], \"batches\": [...], \"hardware\": [...],\n"
          "  \"gbuf_mb\": [...], \"dram_gbps\": [...],\n"
          "  \"schedulers\": [...], \"profiles\": [...], \"seeds\": [...]}\n"
          "Missing axes inherit the base request's value. The CSV table\n"
          "is deterministic: same spec + warm cache => identical bytes.\n"
          "--shard I/N keeps every N-th grid point starting at I\n"
          "(0 <= I < N) so N processes/machines can split one sweep;\n"
          "point every shard's --cache-dir at one shared directory and\n"
          "the shards' row sets partition the unsharded sweep's table\n"
          "(equal rows, interleaved order).\n"
          "--repeat N runs the grid N times against one service — a\n"
          "warm-traffic self-check: somac exits non-zero unless every\n"
          "pass reproduces the first pass's table byte-for-byte, and\n"
          "--stats then shows the cumulative cache/warm-state counters\n"
          "(warm-state hits come from result-cache-cold requests that\n"
          "share a workload, e.g. the seeds axis).\n"
          "\n"
          "fingerprint prints the request's canonical 64-bit identity\n"
          "(the service-layer cache key) as 16 hex digits;\n"
          "--canonical additionally prints the canonical request JSON.\n";
    return code;
}

bool
ParseIntArg(const std::string &flag, const std::string &text, int *out)
{
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(text.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0' || end == text.c_str() ||
        v < INT_MIN || v > INT_MAX) {
        std::cerr << flag << ": \"" << text << "\" is not an integer\n";
        return false;
    }
    *out = static_cast<int>(v);
    return true;
}

bool
ParseU64Arg(const std::string &flag, const std::string &text,
            std::uint64_t *out)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0' || end == text.c_str()) {
        std::cerr << flag << ": \"" << text
                  << "\" is not an unsigned integer\n";
        return false;
    }
    *out = v;
    return true;
}

bool
ParseDoubleArg(const std::string &flag, const std::string &text,
               double *out)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || !end || *end != '\0' || end == text.c_str()) {
        std::cerr << flag << ": \"" << text << "\" is not a number\n";
        return false;
    }
    *out = v;
    return true;
}

bool
ReadFile(const std::string &path, std::string *out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
WriteFile(const std::string &path, const std::string &content,
          std::string *err)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        *err = "cannot write " + path;
        return false;
    }
    out << content;
    return static_cast<bool>(out);
}

int
CmdList(const std::vector<std::string> &args)
{
    Scheduler scheduler;
    std::string what = args.empty() ? "all" : args[0];
    auto print = [](const char *title,
                    const std::vector<std::string> &names) {
        std::cout << title << ":\n";
        for (const std::string &n : names) std::cout << "  " << n << "\n";
    };
    if (what == "models" || what == "all")
        print("models", scheduler.models().Names());
    if (what == "hardware" || what == "all")
        print("hardware", scheduler.hardware().Names());
    if (what == "schedulers" || what == "all")
        print("schedulers", scheduler.schedulers().Names());
    if (what == "memory-models" || what == "all") {
        std::cout << "memory-models:\n";
        for (const MemoryModel *m : scheduler.memory_models().models())
            std::cout << "  " << m->name() << " - " << m->description()
                      << "\n";
    }
    if (what != "models" && what != "hardware" && what != "schedulers" &&
        what != "memory-models" && what != "all") {
        std::cerr << "unknown list target \"" << what
                  << "\" (models|hardware|schedulers|memory-models)\n";
        return 2;
    }
    return 0;
}

/** Does this `somac run` flag consume the following argument? */
bool
FlagTakesValue(const std::string &flag)
{
    static const char *kValueFlags[] = {
        "--model", "--batch", "--hw", "--hardware", "--gbuf-mb",
        "--dram-gbps", "--memory-model", "--scheduler", "--profile",
        "--seed", "--cost-n", "--cost-m", "--chains", "--threads",
        "--deadline-ms", "--exec-graph-rows", "-o", "--out", "--outdir",
        "--trace", "--stats"};
    for (const char *f : kValueFlags)
        if (flag == f) return true;
    return false;
}

bool
IsBooleanFlag(const std::string &flag)
{
    static const char *kBoolFlags[] = {"--ir", "--asm", "--traces",
                                       "--exec-graph", "--quiet",
                                       "--validate-memory"};
    for (const char *f : kBoolFlags)
        if (flag == f) return true;
    return false;
}

int
CmdRun(const std::vector<std::string> &args)
{
    ScheduleRequest request;
    std::string out_path, outdir, trace_path, stats_path;
    bool quiet = false;
    bool have_request = false;

    // Pass 1: load the positional request JSON (if any) first, so
    // flags override its fields no matter where they appear.
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (!arg.empty() && arg[0] == '-') {
            // Reject unknown flags here, before their values can be
            // mistaken for the request-JSON path.
            if (FlagTakesValue(arg)) {
                ++i;
            } else if (!IsBooleanFlag(arg)) {
                std::cerr << "unknown flag " << arg << "\n";
                return 2;
            }
            continue;
        }
        if (have_request) {
            std::cerr << "more than one request JSON given (\"" << arg
                      << "\")\n";
            return 2;
        }
        std::string text, err;
        if (!ReadFile(arg, &text, &err)) {
            std::cerr << err << "\n";
            return 2;
        }
        Json json;
        if (!Json::Parse(text, &json, &err)) {
            std::cerr << arg << ": " << err << "\n";
            return 2;
        }
        if (!ScheduleRequest::FromJson(json, &request, &err)) {
            std::cerr << arg << ": " << err << "\n";
            return 2;
        }
        have_request = true;
    }

    // Pass 2: apply the flag overrides.
    auto need_value = [&args](std::size_t i, const std::string &flag)
        -> const std::string * {
        if (i + 1 >= args.size()) {
            std::cerr << flag << " needs a value\n";
            return nullptr;
        }
        return &args[i + 1];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const std::string *v = nullptr;
        if (arg.empty() || arg[0] != '-') {
            continue;  // the request JSON, consumed by pass 1
        } else if (arg == "--model") {
            if (!(v = need_value(i, arg))) return 2;
            request.model = *v, ++i;
        } else if (arg == "--batch") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &request.batch)) return 2;
            ++i;
        } else if (arg == "--hw" || arg == "--hardware") {
            if (!(v = need_value(i, arg))) return 2;
            request.hardware = *v, ++i;
        } else if (arg == "--gbuf-mb") {
            if (!(v = need_value(i, arg))) return 2;
            double mb = 0;
            if (!ParseDoubleArg(arg, *v, &mb)) return 2;
            request.gbuf_bytes = static_cast<Bytes>(mb * 1024 * 1024);
            ++i;
        } else if (arg == "--dram-gbps") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseDoubleArg(arg, *v, &request.dram_gbps)) return 2;
            ++i;
        } else if (arg == "--memory-model") {
            if (!(v = need_value(i, arg))) return 2;
            request.memory_model = *v, ++i;
        } else if (arg == "--validate-memory") {
            request.validate_memory = true;
        } else if (arg == "--scheduler") {
            if (!(v = need_value(i, arg))) return 2;
            request.scheduler = *v, ++i;
        } else if (arg == "--profile") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseSearchProfile(*v, &request.profile)) {
                std::cerr << "unknown profile \"" << *v
                          << "\" (quick|default|full)\n";
                return 2;
            }
            ++i;
        } else if (arg == "--seed") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseU64Arg(arg, *v, &request.seed)) return 2;
            ++i;
        } else if (arg == "--cost-n") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseDoubleArg(arg, *v, &request.cost_n)) return 2;
            ++i;
        } else if (arg == "--cost-m") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseDoubleArg(arg, *v, &request.cost_m)) return 2;
            ++i;
        } else if (arg == "--chains") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &request.chains)) return 2;
            ++i;
        } else if (arg == "--threads") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &request.threads)) return 2;
            ++i;
        } else if (arg == "--deadline-ms") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &request.deadline_ms)) return 2;
            ++i;
        } else if (arg == "--ir") {
            request.artifacts.ir = true;
        } else if (arg == "--asm") {
            request.artifacts.instructions = true;
        } else if (arg == "--traces") {
            request.artifacts.traces = true;
        } else if (arg == "--exec-graph") {
            request.artifacts.execution_graph = true;
        } else if (arg == "--exec-graph-rows") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v,
                             &request.artifacts.execution_graph_rows))
                return 2;
            ++i;
        } else if (arg == "-o" || arg == "--out") {
            if (!(v = need_value(i, arg))) return 2;
            out_path = *v, ++i;
        } else if (arg == "--outdir") {
            if (!(v = need_value(i, arg))) return 2;
            outdir = *v, ++i;
        } else if (arg == "--trace") {
            if (!(v = need_value(i, arg))) return 2;
            trace_path = *v, ++i;
        } else if (arg == "--stats") {
            if (!(v = need_value(i, arg))) return 2;
            stats_path = *v, ++i;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::cerr << "unknown flag " << arg << "\n";
            return 2;
        }
    }
    if (!have_request && request.model.empty()) {
        std::cerr << "nothing to schedule: pass a request JSON or "
                     "--model (see somac help)\n";
        return 2;
    }
    // Searching under the banked backend without measuring the gap it
    // was built to expose would be pointless — imply validation.
    if (request.memory_model == "banked") request.validate_memory = true;

    Scheduler scheduler;
    if (!quiet) {
        request.on_progress = [](const ProgressEvent &event) {
            std::cerr << "[somac] " << event.phase << " +"
                      << event.elapsed_seconds << "s\n";
        };
    }
    // Observability wiring: a --trace run records spans onto a
    // request-scoped tracer; a --stats run holds hot-path profiling
    // enabled so the registry dump carries the per-phase aggregates.
    // Neither changes result bytes (pinned by test and CI).
    obs::Tracer tracer;
    if (!trace_path.empty()) request.trace = &tracer;
    std::optional<obs::ProfEnableScope> prof_hold;
    if (!stats_path.empty()) prof_hold.emplace();
    ScheduleResult result = scheduler.Schedule(request);

    if (request.validate_memory && result.ok && !quiet) {
        // The pipeline published the gap to the metrics registry (the
        // same numbers --stats dumps); surface it next to the progress
        // lines.
        auto &reg = obs::MetricsRegistry::Global();
        std::cerr << "[somac] memory validation: analytical "
                  << reg.GetGauge("memory.analytical_latency").value()
                  << "s vs banked "
                  << reg.GetGauge("memory.banked_latency").value()
                  << "s, gap "
                  << reg.GetGauge("memory.validation_gap_pct").value()
                  << "%\n";
    }

    std::string err;
    const std::string result_text = result.ToJson().Dump(2) + "\n";
    if (out_path.empty()) {
        std::cout << result_text;
    } else if (!WriteFile(out_path, result_text, &err)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (!trace_path.empty()) {
        if (!WriteFile(trace_path, tracer.ToJson().Dump(2) + "\n", &err)) {
            std::cerr << err << "\n";
            return 2;
        }
        if (!quiet)
            std::cerr << "[somac] wrote " << tracer.NumEvents()
                      << " trace events to " << trace_path << "\n";
    }
    if (!stats_path.empty()) {
        const std::string dump =
            obs::MetricsRegistry::Global().ToJson().CanonicalDump() + "\n";
        if (!WriteFile(stats_path, dump, &err)) {
            std::cerr << err << "\n";
            return 2;
        }
    }

    if (!outdir.empty() && result.ok) {
        const std::string base = outdir + "/" + result.model;
        struct File {
            const std::string &content;
            std::string path;
        };
        const File files[] = {
            {result.ir_text, base + ".ir"},
            {result.asm_text, base + ".asm"},
            {result.compute_csv, base + "_compute.csv"},
            {result.dram_csv, base + "_dram.csv"},
            {result.buffer_csv, base + "_buffer.csv"},
            {result.execution_graph, base + "_execgraph.txt"},
        };
        for (const File &f : files) {
            if (f.content.empty()) continue;
            if (!WriteFile(f.path, f.content, &err)) {
                std::cerr << err << "\n";
                return 2;
            }
            if (!quiet) std::cerr << "[somac] wrote " << f.path << "\n";
        }
    }

    if (!result.ok) {
        std::cerr << "schedule failed: " << result.error << "\n";
        return 1;
    }
    return 0;
}

bool
LoadRequest(const std::string &path, ScheduleRequest *request)
{
    std::string text, err;
    if (!ReadFile(path, &text, &err)) {
        std::cerr << err << "\n";
        return false;
    }
    Json json;
    if (!Json::Parse(text, &json, &err) ||
        !ScheduleRequest::FromJson(json, request, &err)) {
        std::cerr << path << ": " << err << "\n";
        return false;
    }
    return true;
}

int
CmdFingerprint(const std::vector<std::string> &args)
{
    std::string path, stats_path;
    bool canonical = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--canonical") {
            canonical = true;
        } else if (arg == "--stats") {
            if (i + 1 >= args.size()) {
                std::cerr << "--stats needs a value\n";
                return 2;
            }
            stats_path = args[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown flag " << arg << "\n";
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "more than one request JSON given\n";
            return 2;
        }
    }
    if (path.empty()) {
        std::cerr << "usage: somac fingerprint request.json "
                     "[--canonical] [--stats FILE]\n";
        return 2;
    }
    ScheduleRequest request;
    if (!LoadRequest(path, &request)) return 2;
    std::cout << HexU64(request.Fingerprint()) << "\n";
    if (canonical)
        std::cout << request.CanonicalJson().CanonicalDump() << "\n";
    if (!stats_path.empty()) {
        // The one canonical --stats schema across subcommands: the
        // registry dump (here just the fingerprint counter — no
        // pipeline runs under this subcommand).
        obs::MetricsRegistry::Global()
            .GetCounter("fingerprint.requests")
            .Add();
        std::string err;
        const std::string dump =
            obs::MetricsRegistry::Global().ToJson().CanonicalDump() + "\n";
        if (!WriteFile(stats_path, dump, &err)) {
            std::cerr << err << "\n";
            return 2;
        }
    }
    return 0;
}

// ------------------------------------------------------------------ sweep

/** One expanded grid point with its (deterministic) table row. */
struct SweepRow {
    ScheduleRequest request;
    ScheduleResult result;
};

bool
StringAxis(const Json &value, const std::string &key,
           std::vector<std::string> *out, std::string *err)
{
    if (!value.IsArray()) {
        *err = "sweep field \"" + key + "\" must be an array of strings";
        return false;
    }
    for (const Json &v : value.array_items()) {
        if (!v.IsString()) {
            *err = "sweep field \"" + key + "\" must contain strings";
            return false;
        }
        out->push_back(v.AsString());
    }
    return true;
}

bool
NumberAxis(const Json &value, const std::string &key,
           std::vector<double> *out, std::string *err)
{
    if (!value.IsArray()) {
        *err = "sweep field \"" + key + "\" must be an array of numbers";
        return false;
    }
    for (const Json &v : value.array_items()) {
        if (!v.IsNumber()) {
            *err = "sweep field \"" + key + "\" must contain numbers";
            return false;
        }
        out->push_back(v.AsDouble());
    }
    return true;
}

/** Exact unsigned integers (no silent truncation: fractional values
 *  and values beyond 2^63 are rejected; integer literals keep their
 *  exact u64 payload through Json). */
bool
U64Axis(const Json &value, const std::string &key,
        std::vector<std::uint64_t> *out, std::string *err)
{
    if (!value.IsArray()) {
        *err = "sweep field \"" + key + "\" must be an array of integers";
        return false;
    }
    for (const Json &v : value.array_items()) {
        const double d = v.AsDouble();
        if (!v.IsNumber() || d < 0 || d != std::floor(d) || d > 9.2e18) {
            *err = "sweep field \"" + key +
                   "\" must contain non-negative integers (< 2^63)";
            return false;
        }
        out->push_back(v.AsU64());
    }
    return true;
}

/** Expand @p spec_json into the grid's requests, in deterministic
 *  nested-loop order (models, batches, hardware, gbuf, dram,
 *  schedulers, profiles, seeds — innermost last). */
bool
ExpandSweepSpec(const Json &spec_json,
                std::vector<ScheduleRequest> *requests, std::string *err)
{
    if (!spec_json.IsObject()) {
        *err = "sweep spec must be a JSON object";
        return false;
    }
    ScheduleRequest base;
    std::vector<std::string> models, hardware, schedulers, profiles;
    std::vector<double> batches, gbuf_mb, dram_gbps;
    std::vector<std::uint64_t> seeds;
    for (const auto &[key, value] : spec_json.items()) {
        if (key == "base") {
            if (!ScheduleRequest::FromJson(value, &base, err)) {
                *err = "sweep base: " + *err;
                return false;
            }
        } else if (key == "models") {
            if (!StringAxis(value, key, &models, err)) return false;
        } else if (key == "hardware") {
            if (!StringAxis(value, key, &hardware, err)) return false;
        } else if (key == "schedulers") {
            if (!StringAxis(value, key, &schedulers, err)) return false;
        } else if (key == "profiles") {
            if (!StringAxis(value, key, &profiles, err)) return false;
        } else if (key == "batches") {
            if (!NumberAxis(value, key, &batches, err)) return false;
        } else if (key == "gbuf_mb") {
            if (!NumberAxis(value, key, &gbuf_mb, err)) return false;
        } else if (key == "dram_gbps") {
            if (!NumberAxis(value, key, &dram_gbps, err)) return false;
        } else if (key == "seeds") {
            if (!U64Axis(value, key, &seeds, err)) return false;
        } else {
            *err = "unknown sweep field \"" + key + "\"";
            return false;
        }
    }

    // Missing axes collapse to the base request's value.
    if (models.empty()) models.push_back(base.model);
    if (hardware.empty()) hardware.push_back(base.hardware);
    if (schedulers.empty()) schedulers.push_back(base.scheduler);
    std::vector<SearchProfile> profile_axis;
    if (profiles.empty()) {
        profile_axis.push_back(base.profile);
    } else {
        for (const std::string &p : profiles) {
            SearchProfile parsed;
            if (!ParseSearchProfile(p, &parsed)) {
                *err = "unknown profile \"" + p +
                       "\" (expected quick, default or full)";
                return false;
            }
            profile_axis.push_back(parsed);
        }
    }
    std::vector<int> batch_axis;
    if (batches.empty()) batch_axis.push_back(base.batch);
    for (double b : batches) {
        if (b < 1 || b > 1000000 || b != std::floor(b)) {
            *err = "sweep batches must be integers in [1, 1000000]";
            return false;
        }
        batch_axis.push_back(static_cast<int>(b));
    }
    std::vector<Bytes> gbuf_axis;
    if (gbuf_mb.empty()) gbuf_axis.push_back(base.gbuf_bytes);
    for (double mb : gbuf_mb) {
        if (mb < 0) {
            *err = "sweep gbuf_mb must be non-negative";
            return false;
        }
        gbuf_axis.push_back(static_cast<Bytes>(mb * 1024 * 1024));
    }
    std::vector<double> dram_axis;
    if (dram_gbps.empty()) dram_axis.push_back(base.dram_gbps);
    for (double g : dram_gbps) {
        if (g < 0) {
            *err = "sweep dram_gbps must be non-negative";
            return false;
        }
        dram_axis.push_back(g);
    }
    std::vector<std::uint64_t> seed_axis = seeds;
    if (seed_axis.empty()) seed_axis.push_back(base.seed);

    for (const std::string &model : models)
        for (int batch : batch_axis)
            for (const std::string &hw : hardware)
                for (Bytes gbuf : gbuf_axis)
                    for (double dram : dram_axis)
                        for (const std::string &sched : schedulers)
                            for (SearchProfile profile : profile_axis)
                                for (std::uint64_t seed : seed_axis) {
                                    ScheduleRequest r = base;
                                    r.model = model;
                                    r.batch = batch;
                                    r.hardware = hw;
                                    r.gbuf_bytes = gbuf;
                                    r.dram_gbps = dram;
                                    r.scheduler = sched;
                                    r.profile = profile;
                                    r.seed = seed;
                                    requests->push_back(std::move(r));
                                }
    if (requests->empty()) {
        *err = "sweep spec expands to zero requests";
        return false;
    }
    return true;
}

std::string
FormatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

const char *
RowStatus(const ScheduleResult &result)
{
    // "deadline" rows with numbers carry a truncated-but-valid scheme;
    // without numbers the deadline passed before anything was found.
    if (result.deadline_expired) return "deadline";
    return result.ok ? "ok" : "error";
}

/** One table row. Only deterministic fields appear — no timings, no
 *  cache provenance — so a warm re-run emits identical bytes. */
std::string
CsvRow(const SweepRow &row)
{
    const ScheduleRequest &rq = row.request;
    const ScheduleResult &rs = row.result;
    std::ostringstream os;
    os << HexU64(rq.Fingerprint()) << ',' << rq.model << ',' << rq.batch
       << ',' << rq.hardware << ',' << rq.gbuf_bytes << ','
       << FormatDouble(rq.dram_gbps) << ',' << rq.scheduler << ','
       << ToString(rq.profile) << ',' << rq.seed << ','
       << RowStatus(rs);
    if (rs.ok) {
        os << ',' << FormatDouble(rs.cost) << ','
           << FormatDouble(rs.report.latency) << ','
           << FormatDouble(rs.report.EnergyJ()) << ','
           << rs.report.dram_bytes << ',' << rs.stats.iterations;
    } else {
        os << ",,,,,";
    }
    return os.str();
}

Json
JsonRow(const SweepRow &row)
{
    const ScheduleRequest &rq = row.request;
    const ScheduleResult &rs = row.result;
    Json json = Json::Object();
    json.Set("fingerprint", Json::Str(HexU64(rq.Fingerprint())));
    json.Set("model", Json::Str(rq.model));
    json.Set("batch", Json::Int(rq.batch));
    json.Set("hardware", Json::Str(rq.hardware));
    json.Set("gbuf_bytes", Json::Int(rq.gbuf_bytes));
    json.Set("dram_gbps", Json::Number(rq.dram_gbps));
    json.Set("scheduler", Json::Str(rq.scheduler));
    json.Set("profile", Json::Str(ToString(rq.profile)));
    json.Set("seed", Json::U64(rq.seed));
    json.Set("status", Json::Str(RowStatus(rs)));
    if (rs.ok) {
        json.Set("cost", Json::Number(rs.cost));
        json.Set("latency", Json::Number(rs.report.latency));
        json.Set("energy_j", Json::Number(rs.report.EnergyJ()));
        json.Set("dram_bytes", Json::Int(rs.report.dram_bytes));
        json.Set("iterations", Json::Int(rs.stats.iterations));
    } else {
        json.Set("error", Json::Str(rs.error));
    }
    return json;
}

constexpr const char *kSweepCsvHeader =
    "fingerprint,model,batch,hardware,gbuf_bytes,dram_gbps,scheduler,"
    "profile,seed,status,cost,latency,energy_j,dram_bytes,iterations";

/** Parse "I/N" (0 <= I < N) for --shard. */
bool
ParseShardArg(const std::string &text, int *index, int *count)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        std::cerr << "--shard: \"" << text << "\" is not of the form I/N\n";
        return false;
    }
    if (!ParseIntArg("--shard", text.substr(0, slash), index) ||
        !ParseIntArg("--shard", text.substr(slash + 1), count)) {
        return false;
    }
    if (*count < 1 || *index < 0 || *index >= *count) {
        std::cerr << "--shard: need 0 <= I < N, got " << text << "\n";
        return false;
    }
    return true;
}

int
CmdSweep(const std::vector<std::string> &args)
{
    std::string spec_path, csv_path, json_path, stats_path, cache_dir;
    std::string trace_path, memory_model;
    int cache_capacity = 0, jobs = 2, repeat = 1;
    int shard_index = 0, shard_count = 1;
    bool quiet = false;

    auto need_value = [&args](std::size_t i, const std::string &flag)
        -> const std::string * {
        if (i + 1 >= args.size()) {
            std::cerr << flag << " needs a value\n";
            return nullptr;
        }
        return &args[i + 1];
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const std::string *v = nullptr;
        if (arg.empty() || arg[0] != '-') {
            if (!spec_path.empty()) {
                std::cerr << "more than one sweep spec given (\"" << arg
                          << "\")\n";
                return 2;
            }
            spec_path = arg;
        } else if (arg == "--csv") {
            if (!(v = need_value(i, arg))) return 2;
            csv_path = *v, ++i;
        } else if (arg == "--json") {
            if (!(v = need_value(i, arg))) return 2;
            json_path = *v, ++i;
        } else if (arg == "--stats") {
            if (!(v = need_value(i, arg))) return 2;
            stats_path = *v, ++i;
        } else if (arg == "--trace") {
            if (!(v = need_value(i, arg))) return 2;
            trace_path = *v, ++i;
        } else if (arg == "--memory-model") {
            if (!(v = need_value(i, arg))) return 2;
            memory_model = *v, ++i;
        } else if (arg == "--cache-dir") {
            if (!(v = need_value(i, arg))) return 2;
            cache_dir = *v, ++i;
        } else if (arg == "--cache-capacity") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &cache_capacity)) return 2;
            ++i;
        } else if (arg == "--jobs") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &jobs)) return 2;
            ++i;
        } else if (arg == "--shard") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseShardArg(*v, &shard_index, &shard_count)) return 2;
            ++i;
        } else if (arg == "--repeat") {
            if (!(v = need_value(i, arg))) return 2;
            if (!ParseIntArg(arg, *v, &repeat)) return 2;
            if (repeat < 1) {
                std::cerr << "--repeat: need N >= 1, got " << repeat
                          << "\n";
                return 2;
            }
            ++i;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::cerr << "unknown flag " << arg << "\n";
            return 2;
        }
    }
    if (spec_path.empty()) {
        std::cerr << "usage: somac sweep spec.json [--csv FILE] "
                     "[--stats FILE] [--cache-dir DIR] [--shard I/N]\n";
        return 2;
    }

    std::string text, err;
    if (!ReadFile(spec_path, &text, &err)) {
        std::cerr << err << "\n";
        return 2;
    }
    Json spec_json;
    if (!Json::Parse(text, &spec_json, &err)) {
        std::cerr << spec_path << ": " << err << "\n";
        return 2;
    }
    std::vector<ScheduleRequest> requests;
    if (!ExpandSweepSpec(spec_json, &requests, &err)) {
        std::cerr << spec_path << ": " << err << "\n";
        return 2;
    }
    // A memory model is a timing-backend choice, not a grid axis:
    // --memory-model retimes the whole sweep (the spec's base request
    // can still pin one per-sweep via its memory_model field).
    if (!memory_model.empty())
        for (ScheduleRequest &r : requests) r.memory_model = memory_model;
    const std::size_t grid_size = requests.size();
    if (shard_count > 1) {
        // Deterministic work partition: shard I keeps grid points
        // I, I+N, I+2N, ... of the expansion order. Striding (rather
        // than contiguous chunks) balances heavy axes — e.g. a sweep
        // whose slowest model expands first — across the shards.
        std::vector<ScheduleRequest> mine;
        mine.reserve((requests.size() + shard_count - 1) / shard_count);
        for (std::size_t i = shard_index; i < requests.size();
             i += static_cast<std::size_t>(shard_count)) {
            mine.push_back(std::move(requests[i]));
        }
        requests = std::move(mine);
        // An empty shard (more shards than grid points) is a valid
        // partition: the normal path below emits a header-only table,
        // an empty JSON array and zero stats, and exits 0, so fixed
        // N-way split scripts work on any grid size.
        if (requests.empty() && !quiet)
            std::cerr << "[somac] sweep: shard " << shard_index << "/"
                      << shard_count << " is empty (grid has "
                      << grid_size << " points); nothing to do\n";
    }

    ServiceOptions options;
    options.cache_dir = cache_dir;
    if (cache_capacity > 0)
        options.result_cache_capacity =
            static_cast<std::size_t>(cache_capacity);
    SchedulerService service(options);

    if (!quiet) {
        std::cerr << "[somac] sweep: " << requests.size() << " requests";
        if (shard_count > 1)
            std::cerr << " (shard " << shard_index << "/" << shard_count
                      << " of " << grid_size << ")";
        std::cerr << ", jobs=" << jobs
                  << (cache_dir.empty() ? ""
                                        : ", cache-dir=" + cache_dir)
                  << "\n";
    }

    // One sweep-scoped tracer shared by every worker (the Tracer is
    // internally synchronized; spans carry dense per-process tids).
    // Observational only: the table bytes are identical with and
    // without --trace.
    obs::Tracer tracer;
    std::optional<obs::ProfEnableScope> prof_hold;
    if (!trace_path.empty() || !stats_path.empty()) prof_hold.emplace();

    const auto t0 = obs::MonotonicNow();
    std::vector<SweepRow> rows(requests.size());
    std::string first_table;
    for (int pass = 0; pass < repeat; ++pass) {
        for (std::size_t i = 0; i < requests.size(); ++i) {
            rows[i].request = requests[i];
            if (!trace_path.empty()) rows[i].request.trace = &tracer;
            rows[i].result = ScheduleResult{};
        }

        // Work-stealing over the grid; rows land at their expansion
        // index, so the table order never depends on jobs or
        // completion order.
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= rows.size()) return;
                rows[i].result = service.Schedule(rows[i].request);
            }
        };
        const int spawn = std::max(
            1, std::min<int>(jobs, static_cast<int>(rows.size())));
        std::vector<std::thread> team;
        team.reserve(spawn - 1);
        for (int t = 1; t < spawn; ++t) team.emplace_back(worker);
        worker();
        for (std::thread &t : team) t.join();

        // The determinism self-check behind --repeat: every pass over
        // one grid — cold, result-cache-warm, warm-state-warm — must
        // produce the identical table.
        std::ostringstream table;
        table << kSweepCsvHeader << "\n";
        for (const SweepRow &row : rows) table << CsvRow(row) << "\n";
        if (pass == 0) {
            first_table = table.str();
        } else if (table.str() != first_table) {
            std::cerr << "[somac] sweep: pass " << pass
                      << " diverged from pass 0 — the warm table is "
                         "not byte-identical to the cold one\n";
            return 1;
        }
    }
    const double seconds = obs::SecondsSince(t0);

    // ---- emit the results table (and optional JSON/stats mirrors).
    if (csv_path.empty()) {
        std::cout << first_table;
    } else if (!WriteFile(csv_path, first_table, &err)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (!json_path.empty()) {
        Json array = Json::Array();
        for (const SweepRow &row : rows) array.Append(JsonRow(row));
        if (!WriteFile(json_path, array.Dump(2) + "\n", &err)) {
            std::cerr << err << "\n";
            return 2;
        }
    }
    const ServiceStats stats = service.stats();
    if (!stats_path.empty()) {
        // The canonical --stats schema: the service counters exported
        // as flat dotted keys into the process-wide registry (which
        // already carries the pipeline.* / prof.* metrics the executed
        // searches recorded), dumped with sorted keys.
        auto &registry = obs::MetricsRegistry::Global();
        stats.ExportTo(registry);
        registry.GetGauge("sweep.seconds").Set(seconds);
        const std::string dump = registry.ToJson().CanonicalDump() + "\n";
        if (!WriteFile(stats_path, dump, &err)) {
            std::cerr << err << "\n";
            return 2;
        }
    }
    if (!trace_path.empty()) {
        if (!WriteFile(trace_path, tracer.ToJson().Dump(2) + "\n", &err)) {
            std::cerr << err << "\n";
            return 2;
        }
        if (!quiet)
            std::cerr << "[somac] wrote " << tracer.NumEvents()
                      << " trace events to " << trace_path << "\n";
    }

    std::size_t failed = 0;
    for (const SweepRow &row : rows)
        if (!row.result.ok) ++failed;
    if (!quiet) {
        std::cerr << "[somac] sweep done: " << rows.size() << " requests";
        if (repeat > 1) std::cerr << " x " << repeat << " passes";
        std::cerr << " (" << failed << " failed) in " << seconds << "s — "
                  << stats.searches << " searches, "
                  << stats.result_cache.hits << " cache hits ("
                  << stats.result_cache.disk_hits << " from disk), "
                  << stats.coalesced << " coalesced, warm-state "
                  << stats.warm_state.tiling_hits << " tiling hits / "
                  << stats.warm_state.approx_bytes << " bytes\n";
    }
    return failed == 0 ? 0 : 1;
}

/** Schema check for result JSONs: required keys with the right types. */
int
CmdValidate(const std::vector<std::string> &args)
{
    if (args.size() != 1) {
        std::cerr << "usage: somac validate result.json\n";
        return 2;
    }
    std::string text, err;
    if (!ReadFile(args[0], &text, &err)) {
        std::cerr << err << "\n";
        return 2;
    }
    Json json;
    if (!Json::Parse(text, &json, &err)) {
        std::cerr << args[0] << ": " << err << "\n";
        return 1;
    }

    std::vector<std::string> problems;
    auto require = [&](const char *key, Json::Type type) -> const Json * {
        const Json *v = json.Find(key);
        if (!v) {
            problems.push_back(std::string("missing field \"") + key +
                               "\"");
            return nullptr;
        }
        if (v->type() != type) {
            problems.push_back(std::string("field \"") + key +
                               "\" has the wrong type");
            return nullptr;
        }
        return v;
    };

    const Json *ok = require("ok", Json::Type::kBool);
    require("model", Json::Type::kString);
    require("hardware", Json::Type::kString);
    require("scheduler", Json::Type::kString);
    require("profile", Json::Type::kString);
    require("seed", Json::Type::kNumber);
    require("stats", Json::Type::kObject);
    const Json *report = require("report", Json::Type::kObject);
    if (report) {
        static const char *kNums[] = {
            "core_energy_j", "dram_energy_j", "compute_util",
            "theory_max_util", "peak_buffer", "dram_bytes",
            "num_tiles", "num_tensors", "num_flgs", "num_lgs"};
        for (const char *key : kNums) {
            const Json *v = report->Find(key);
            if (!v || !v->IsNumber())
                problems.push_back(std::string("report.") + key +
                                   " missing or not a number");
        }
        const Json *valid = report->Find("valid");
        if (!valid || !valid->IsBool())
            problems.push_back("report.valid missing or not a boolean");
        if (ok && ok->AsBool()) {
            if (valid && !valid->AsBool())
                problems.push_back("ok is true but report.valid is false");
            const Json *latency = report->Find("latency");
            if (!latency || !latency->IsNumber() ||
                !(latency->AsDouble() > 0))
                problems.push_back(
                    "ok result needs a positive numeric report.latency");
        }
    }
    if (ok && ok->AsBool()) {
        const Json *scheme = json.Find("scheme");
        if (!scheme || !scheme->IsString() || scheme->AsString().empty())
            problems.push_back("ok result needs a non-empty scheme");
    }

    if (!problems.empty()) {
        for (const std::string &p : problems)
            std::cerr << args[0] << ": " << p << "\n";
        return 1;
    }
    std::cout << args[0] << ": valid result JSON\n";
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) return Usage(std::cerr, 2);
    const std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "run") return CmdRun(args);
    if (cmd == "sweep") return CmdSweep(args);
    if (cmd == "fingerprint") return CmdFingerprint(args);
    if (cmd == "list") return CmdList(args);
    if (cmd == "validate") return CmdValidate(args);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return Usage(std::cout, 0);
    std::cerr << "unknown command \"" << cmd << "\"\n\n";
    return Usage(std::cerr, 2);
}
