/**
 * @file
 * somalint — the repo's determinism & concurrency invariant checker.
 *
 * A dependency-free token-level lint over src/ tools/ bench/ that turns
 * the project's prose contracts (DESIGN.md "Static analysis &
 * concurrency discipline") into a CI gate. Six checks:
 *
 *  - wallclock: no wall-clock or libc randomness in scheduling code.
 *    Every TTL, deadline and expiry in the tree is steady_clock
 *    arithmetic and every random draw goes through soma::Rng; a stray
 *    std::time(nullptr) seed or system_clock comparison silently breaks
 *    reproducibility and the clock-jump immunity the service documents.
 *    Flags: `system_clock`, `gettimeofday`, `localtime`, `gmtime`,
 *    `mktime`, `asctime`, `ctime`, and calls to `time(`, `clock(`,
 *    `rand(`, `srand(` (member calls like `sink.time()` are fine).
 *
 *  - unordered-iter: no hash-order-dependent iteration in files that
 *    produce canonical bytes. Iterating an unordered_{map,set} is
 *    unspecified order; in a file that computes fingerprints, persisted
 *    cache entries, CSV tables or canonical dumps, such a loop can leak
 *    hash order into output bytes (the exact bug class behind the old
 *    `negative_.erase(negative_.begin())` victim selection). Flags
 *    range-for over a tracked unordered container, `.begin()`/
 *    `.cbegin()` on one anywhere, and `.end()`/`.cend()` inside a for
 *    header — but only in *sensitive* files (ones whose code mentions
 *    Fingerprint / CanonicalDump / Csv / ToJson / ToText / Serialize /
 *    persist). Order-independent folds (sums, expiry sweeps,
 *    deterministic min-scans) take an explicit waiver.
 *
 *  - raw-mutex: all locking goes through common/thread_annotations.h.
 *    Clang's thread-safety analysis cannot see through libstdc++'s
 *    unannotated std::lock_guard/std::unique_lock, so one raw
 *    `std::mutex` re-opens the hole the annotations closed. Flags any
 *    `std::{mutex, shared_mutex, condition_variable[_any], lock_guard,
 *    unique_lock, shared_lock, scoped_lock}` outside
 *    thread_annotations.h itself.
 *
 *  - steady-now: no raw steady_clock::now() reads outside src/obs/.
 *    The obs clock helpers (obs::MonotonicNow / obs::SecondsSince in
 *    src/obs/clock.h) are the repo's one source of monotonic now, so
 *    span tracing, profiling hooks and fake-clock tests share a single
 *    seam. Flags `steady_clock::now(` and `Alias::now(` for any alias
 *    introduced by `using Alias = ... steady_clock;` in the same file.
 *    steady_clock::time_point *types* stay fine — only the read is
 *    centralized.
 *
 *  - guarded-field: every class that owns a soma::Mutex/SharedMutex
 *    must say, per field, what that lock protects. Each non-function
 *    member of such a class must carry SOMA_GUARDED_BY/
 *    SOMA_PT_GUARDED_BY, be an atomic, be const, be the capability or a
 *    CondVar itself — or carry a waiver naming why it is safe
 *    unguarded (internally-synchronized sub-objects, pre-scheduling
 *    configuration).
 *
 *  - hot-alloc: no heap growth inside loops in SOMA_PROF_SCOPE-marked
 *    hot paths. A prof scope marks code that runs once per SA
 *    candidate (timeline simulation, tile-cost evaluation, the
 *    incremental parse); a `new`, `make_unique`/`make_shared`, or
 *    vector growth call (`push_back`/`emplace_back`/`resize`/
 *    `reserve`/`insert`) inside a loop there turns the per-candidate
 *    cost from "bump-allocate from the EvalContext arena" back into
 *    malloc traffic. Scans forward from each SOMA_PROF_SCOPE to the
 *    end of its enclosing block and flags growth calls inside any
 *    for/while/do loop in that region. `.assign()`/`std::copy_n` onto
 *    pre-sized storage stay fine — that is the arena discipline.
 *    Amortized allocations (cache-miss derivation, dirty-group
 *    re-parse) take an explicit waiver naming why they are off the
 *    per-candidate path.
 *
 * Waivers: `// somalint: allow(<check>[, <check>]) <reason>` on the
 * finding's line or the line directly above it. Waivers are per-line
 * and per-check; the reason text is free-form but expected.
 *
 * Usage: somalint <file-or-dir>... ; exits 0 when clean, 1 with
 * findings (one `path:line: [check] message` per line), 2 on usage
 * errors. Deterministic output: files and findings are sorted.
 */
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
    std::string path;
    int line = 0;
    std::string check;
    std::string message;

    bool operator<(const Finding &o) const
    {
        if (path != o.path) return path < o.path;
        if (line != o.line) return line < o.line;
        if (check != o.check) return check < o.check;
        return message < o.message;
    }
};

struct Token {
    std::string text;
    int line = 0;
    bool is_identifier = false;
};

/** One scanned file: code with comments/literals blanked out, the
 *  token stream, and the per-line waiver sets parsed from comments. */
struct FileScan {
    std::string path;
    std::vector<Token> tokens;
    std::map<int, std::set<std::string>> waivers;  ///< line -> checks
};

bool
IsIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Parse `somalint: allow(a, b) ...` out of one comment's text and
 *  record the named checks as waived on @p line. */
void
ParseWaiver(const std::string &comment, int line, FileScan *scan)
{
    const std::size_t tag = comment.find("somalint:");
    if (tag == std::string::npos) return;
    const std::size_t open = comment.find("allow(", tag);
    if (open == std::string::npos) return;
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) return;
    std::string list = comment.substr(open + 6, close - open - 6);
    std::string item;
    std::istringstream is(list);
    while (std::getline(is, item, ',')) {
        const std::size_t b = item.find_first_not_of(" \t");
        const std::size_t e = item.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        scan->waivers[line].insert(item.substr(b, e - b + 1));
    }
}

/**
 * Strip comments, string literals and char literals (preserving
 * newlines so token lines stay true), collecting waiver comments as we
 * go. Handles //, C comments, escapes, and R"delim(...)delim" raw
 * strings.
 */
std::string
StripAndCollect(const std::string &src, FileScan *scan)
{
    std::string out;
    out.reserve(src.size());
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();
    auto put = [&](char c) { out.push_back(c); };
    bool at_line_start = true;
    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            put('\n');
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        // Preprocessor directives (#include <ctime>, #define, ...) are
        // not code the checks should read; blank them, honoring line
        // continuations.
        if (at_line_start && c == '#') {
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    put('\n');
                    ++line;
                    i += 2;
                    continue;
                }
                if (src[i] == '\n') break;
                ++i;
            }
            continue;
        }
        if (!std::isspace(static_cast<unsigned char>(c)))
            at_line_start = false;
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const int at = line;
            std::string text;
            while (i < n && src[i] != '\n') text.push_back(src[i++]);
            ParseWaiver(text, at, scan);
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const int at = line;
            std::string text;
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n') {
                    put('\n');
                    ++line;
                }
                text.push_back(src[i++]);
            }
            i = i + 1 < n ? i + 2 : n;
            ParseWaiver(text, at, scan);
            continue;
        }
        if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
            (i == 0 || !IsIdentChar(src[i - 1]))) {
            // Raw string: R"delim( ... )delim"
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(') delim.push_back(src[p++]);
            const std::string closer = ")" + delim + "\"";
            std::size_t end = src.find(closer, p);
            if (end == std::string::npos) end = n;
            for (std::size_t k = i; k < end && k < n; ++k)
                if (src[k] == '\n') {
                    put('\n');
                    ++line;
                }
            i = std::min(n, end + closer.size());
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < n && src[i] != quote) {
                if (src[i] == '\\' && i + 1 < n) ++i;
                if (src[i] == '\n') {
                    put('\n');
                    ++line;
                }
                ++i;
            }
            if (i < n) ++i;  // closing quote
            put(' ');        // literals read as one blank token break
            continue;
        }
        put(c);
        ++i;
    }
    return out;
}

/** Tokenize blanked code into identifiers, numbers and punctuation
 *  (with `::`, `->`, `.*` kept as single tokens where it matters). */
void
Tokenize(const std::string &code, FileScan *scan)
{
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = code.size();
    while (i < n) {
        const char c = code[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        Token t;
        t.line = line;
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            while (i < n && IsIdentChar(code[i])) t.text.push_back(code[i++]);
            t.is_identifier = true;
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            while (i < n && (IsIdentChar(code[i]) || code[i] == '.' ||
                             code[i] == '\''))
                t.text.push_back(code[i++]);
        } else if (c == ':' && i + 1 < n && code[i + 1] == ':') {
            t.text = "::";
            i += 2;
        } else if (c == '-' && i + 1 < n && code[i + 1] == '>') {
            t.text = "->";
            i += 2;
        } else {
            t.text.push_back(c);
            ++i;
        }
        scan->tokens.push_back(std::move(t));
    }
}

bool
Waived(const FileScan &scan, int line, const std::string &check)
{
    for (int l : {line, line - 1}) {
        auto it = scan.waivers.find(l);
        if (it != scan.waivers.end() && it->second.count(check)) return true;
    }
    return false;
}

void
Report(const FileScan &scan, int line, const std::string &check,
       std::string message, std::vector<Finding> *findings)
{
    if (Waived(scan, line, check)) return;
    findings->push_back(Finding{scan.path, line, check, std::move(message)});
}

// ---------------------------------------------------------------------------
// Check: wallclock
// ---------------------------------------------------------------------------

void
CheckWallclock(const FileScan &scan, std::vector<Finding> *findings)
{
    static const std::set<std::string> kBannedAlways = {
        "system_clock", "gettimeofday", "localtime", "gmtime", "mktime",
    };
    static const std::set<std::string> kBannedCalls = {
        "time", "clock", "rand", "srand", "asctime", "ctime",
    };
    const auto &toks = scan.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.is_identifier) continue;
        if (kBannedAlways.count(t.text)) {
            Report(scan, t.line, "wallclock",
                   "'" + t.text +
                       "' breaks the steady-clock-only discipline "
                       "(TTLs/deadlines must survive wall-clock jumps)",
                   findings);
            continue;
        }
        if (kBannedCalls.count(t.text) && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            // Member calls (state.time(), obj->clock()) are unrelated,
            // and so are *declarations* of a member named time() —
            // there the preceding token is the return type, an
            // identifier. A call site's preceding token is an operator,
            // `::` (std::time) or the `return` keyword.
            if (i > 0 &&
                (toks[i - 1].text == "." || toks[i - 1].text == "->"))
                continue;
            if (i > 0 && toks[i - 1].is_identifier &&
                toks[i - 1].text != "return")
                continue;
            Report(scan, t.line, "wallclock",
                   "call to '" + t.text +
                       "(' — use steady-clock arithmetic "
                       "(obs::MonotonicNow) / soma::Rng for "
                       "reproducible scheduling",
                   findings);
        }
    }
}

// ---------------------------------------------------------------------------
// Check: unordered-iter
// ---------------------------------------------------------------------------

bool
IsSensitiveFile(const FileScan &scan)
{
    static const std::vector<std::string> kMarkers = {
        "CanonicalDump", "Fingerprint", "Csv",       "ToJson",
        "ToText",        "Serialize",   "Persist",   "persist",
    };
    for (const Token &t : scan.tokens) {
        if (!t.is_identifier) continue;
        for (const std::string &m : kMarkers)
            if (t.text.find(m) != std::string::npos) return true;
    }
    return false;
}

/** Names of variables/members declared with an unordered container
 *  type anywhere in the file (declaration-site tracking; scoping is
 *  deliberately ignored — shadowing across scopes would only make the
 *  check stricter). */
std::set<std::string>
TrackedUnorderedNames(const FileScan &scan)
{
    static const std::set<std::string> kUnordered = {
        "unordered_map",
        "unordered_set",
        "unordered_multimap",
        "unordered_multiset",
    };
    std::set<std::string> names;
    const auto &toks = scan.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].is_identifier || !kUnordered.count(toks[i].text))
            continue;
        std::size_t j = i + 1;
        if (j >= toks.size() || toks[j].text != "<") continue;
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<") ++depth;
            if (toks[j].text == ">" && --depth == 0) break;
        }
        if (j >= toks.size()) continue;
        ++j;  // past the closing '>'
        while (j < toks.size() &&
               (toks[j].text == "*" || toks[j].text == "&" ||
                toks[j].text == "const"))
            ++j;
        if (j >= toks.size() || !toks[j].is_identifier) continue;
        // `unordered_map<...> Foo(` is a function declaration, not a
        // variable of that type.
        if (j + 1 < toks.size() && toks[j + 1].text == "(") continue;
        names.insert(toks[j].text);
    }
    return names;
}

void
CheckUnorderedIter(const FileScan &scan,
                   const std::set<std::string> &header_names,
                   std::vector<Finding> *findings)
{
    if (!IsSensitiveFile(scan)) return;
    std::set<std::string> tracked = TrackedUnorderedNames(scan);
    tracked.insert(header_names.begin(), header_names.end());
    if (tracked.empty()) return;
    const auto &toks = scan.tokens;

    auto flag = [&](int line, const std::string &name,
                    const std::string &how) {
        Report(scan, line, "unordered-iter",
               how + " over unordered container '" + name +
                   "' in a canonical-output file — hash iteration order "
                   "can leak into persisted/serialized bytes; sort "
                   "first or waive with a reason",
               findings);
    };

    // `.begin(` / `.cbegin(` on a tracked name, anywhere.
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!toks[i].is_identifier || !tracked.count(toks[i].text))
            continue;
        if (toks[i + 1].text != "." && toks[i + 1].text != "->") continue;
        const std::string &m = toks[i + 2].text;
        if ((m == "begin" || m == "cbegin") && toks[i + 3].text == "(")
            flag(toks[i].line, toks[i].text, "iterator traversal");
    }

    // for-headers: range-for over a tracked name, or an explicit
    // iterator loop bounded by `tracked.end()`.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].is_identifier || toks[i].text != "for") continue;
        if (toks[i + 1].text != "(") continue;
        std::size_t j = i + 1;
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = toks.size();
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "(") ++depth;
            if (toks[j].text == ")" && --depth == 0) {
                close = j;
                break;
            }
            if (toks[j].text == ":" && depth == 1 && colon == 0) colon = j;
        }
        if (colon != 0) {
            for (std::size_t k = colon + 1; k < close; ++k)
                if (toks[k].is_identifier && tracked.count(toks[k].text)) {
                    flag(toks[i].line, toks[k].text, "range-for");
                    break;
                }
        } else {
            for (std::size_t k = i + 2; k + 3 < close + 3 && k + 3 <= close;
                 ++k) {
                if (!toks[k].is_identifier || !tracked.count(toks[k].text))
                    continue;
                if (toks[k + 1].text != "." && toks[k + 1].text != "->")
                    continue;
                const std::string &m = toks[k + 2].text;
                if ((m == "end" || m == "cend") &&
                    toks[k + 3].text == "(") {
                    flag(toks[i].line, toks[k].text, "iterator loop");
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Check: steady-now
// ---------------------------------------------------------------------------

/** True for paths inside an `obs/` directory — the one place allowed
 *  to read the monotonic clock directly (it implements the helper). */
bool
InObsDirectory(const std::string &path)
{
    for (const fs::path &part : fs::path(path))
        if (part == "obs") return true;
    return false;
}

void
CheckSteadyNow(const FileScan &scan, std::vector<Finding> *findings)
{
    if (InObsDirectory(scan.path)) return;
    const auto &toks = scan.tokens;

    // `steady_clock` plus every same-file alias of it:
    // `using Clock = std::chrono::steady_clock;` makes `Clock::now()`
    // just as raw as the spelled-out call.
    std::set<std::string> clock_names = {"steady_clock"};
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!toks[i].is_identifier || toks[i].text != "using") continue;
        if (!toks[i + 1].is_identifier || toks[i + 2].text != "=")
            continue;
        for (std::size_t j = i + 3;
             j < toks.size() && toks[j].text != ";"; ++j) {
            if (toks[j].text == "steady_clock") {
                clock_names.insert(toks[i + 1].text);
                break;
            }
        }
    }

    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!toks[i].is_identifier || !clock_names.count(toks[i].text))
            continue;
        if (toks[i + 1].text != "::" || toks[i + 2].text != "now" ||
            toks[i + 3].text != "(")
            continue;
        Report(scan, toks[i].line, "steady-now",
               "raw '" + toks[i].text +
                   "::now()' — read the monotonic clock through "
                   "obs::MonotonicNow()/obs::SecondsSince() "
                   "(src/obs/clock.h) so every timestamp shares one "
                   "seam",
               findings);
    }
}

// ---------------------------------------------------------------------------
// Check: raw-mutex
// ---------------------------------------------------------------------------

void
CheckRawMutex(const FileScan &scan, std::vector<Finding> *findings)
{
    if (fs::path(scan.path).filename() == "thread_annotations.h") return;
    static const std::set<std::string> kRaw = {
        "mutex",          "shared_mutex",
        "recursive_mutex", "timed_mutex",
        "condition_variable", "condition_variable_any",
        "lock_guard",     "unique_lock",
        "shared_lock",    "scoped_lock",
    };
    const auto &toks = scan.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "std" || toks[i + 1].text != "::") continue;
        const Token &t = toks[i + 2];
        if (t.is_identifier && kRaw.count(t.text))
            Report(scan, t.line, "raw-mutex",
                   "raw 'std::" + t.text +
                       "' — use the capability-annotated wrappers in "
                       "common/thread_annotations.h so clang's "
                       "thread-safety analysis can see the locking",
                   findings);
    }
}

// ---------------------------------------------------------------------------
// Check: guarded-field
// ---------------------------------------------------------------------------

struct MemberStatement {
    int line = 0;
    std::vector<std::string> tokens;
    bool has_body = false;  ///< ended by a {...} body, not a ';'
};

/** Scan a class body starting at the '{' token index @p open; returns
 *  the index just past the matching '}'. Member statements of THIS
 *  class (not of nested classes, not function-body statements) are
 *  appended to @p out. Recurses into nested classes/structs via
 *  @p classes (each entry: the collected members of one class). */
std::size_t
ParseClassBody(const std::vector<Token> &toks, std::size_t open,
               std::vector<std::vector<MemberStatement>> *classes)
{
    std::vector<MemberStatement> members;
    std::size_t i = open + 1;
    MemberStatement cur;
    auto flush = [&](bool body) {
        if (!cur.tokens.empty()) {
            cur.has_body = body;
            members.push_back(cur);
        }
        cur = MemberStatement{};
    };
    while (i < toks.size() && toks[i].text != "}") {
        const Token &t = toks[i];
        // Access specifiers reset the pending statement.
        if (t.is_identifier &&
            (t.text == "public" || t.text == "private" ||
             t.text == "protected") &&
            i + 1 < toks.size() && toks[i + 1].text == ":" &&
            cur.tokens.empty()) {
            i += 2;
            continue;
        }
        if (t.is_identifier &&
            (t.text == "class" || t.text == "struct" ||
             t.text == "union" || t.text == "enum")) {
            // Nested type: skip (or recurse) over its body, then eat
            // the trailing declarator/semicolon as a plain member.
            const bool is_class = t.text == "class" || t.text == "struct";
            std::size_t j = i + 1;
            while (j < toks.size() && toks[j].text != "{" &&
                   toks[j].text != ";")
                ++j;
            if (j < toks.size() && toks[j].text == "{") {
                if (is_class) {
                    j = ParseClassBody(toks, j, classes);
                } else {
                    int depth = 0;
                    for (; j < toks.size(); ++j) {
                        if (toks[j].text == "{") ++depth;
                        if (toks[j].text == "}" && --depth == 0) break;
                    }
                    ++j;
                }
            }
            // Forward decl or closing `;` (possibly with a declarator
            // we conservatively ignore).
            while (j < toks.size() && toks[j].text != ";") ++j;
            i = j < toks.size() ? j + 1 : j;
            cur = MemberStatement{};
            continue;
        }
        if (t.text == ";") {
            flush(/*body=*/false);
            ++i;
            continue;
        }
        if (t.text == "{") {
            // In-class function body or brace initializer. A brace
            // init (`std::atomic<int> x{0};`) ends with `};` and is a
            // field; a function body's `}` is not followed by `;`.
            int depth = 0;
            std::size_t j = i;
            for (; j < toks.size(); ++j) {
                if (toks[j].text == "{") ++depth;
                if (toks[j].text == "}" && --depth == 0) break;
            }
            const bool init =
                j + 1 < toks.size() && toks[j + 1].text == ";";
            flush(/*body=*/!init);
            i = j + 1 + (init ? 1 : 0);
            continue;
        }
        if (cur.tokens.empty()) cur.line = t.line;
        cur.tokens.push_back(t.text);
        ++i;
    }
    classes->push_back(std::move(members));
    return i + 1;
}

bool
Contains(const MemberStatement &m, const std::string &tok)
{
    return std::find(m.tokens.begin(), m.tokens.end(), tok) !=
           m.tokens.end();
}

void
CheckGuardedFields(const FileScan &scan, std::vector<Finding> *findings)
{
    if (fs::path(scan.path).filename() == "thread_annotations.h") return;
    const auto &toks = scan.tokens;
    std::vector<std::vector<MemberStatement>> classes;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].is_identifier ||
            (toks[i].text != "class" && toks[i].text != "struct"))
            continue;
        // Only top-level class definitions here; ParseClassBody
        // recurses into nested ones itself.
        std::size_t j = i + 1;
        while (j < toks.size() && toks[j].text != "{" &&
               toks[j].text != ";" && toks[j].text != "(")
            ++j;
        if (j >= toks.size() || toks[j].text != "{") {
            i = j;
            continue;
        }
        i = ParseClassBody(toks, j, &classes) - 1;
    }

    static const std::set<std::string> kCapabilities = {"Mutex",
                                                       "SharedMutex"};
    static const std::set<std::string> kSafeMarkers = {
        "SOMA_GUARDED_BY", "SOMA_PT_GUARDED_BY", "atomic", "const",
        "Mutex",           "SharedMutex",        "CondVar",
    };
    static const std::set<std::string> kNonFieldLead = {
        "static", "constexpr", "using",    "typedef", "friend",
        "template", "operator", "virtual", "explicit", "inline",
    };

    for (const auto &members : classes) {
        bool has_capability = false;
        for (const MemberStatement &m : members)
            if (!m.has_body &&
                (Contains(m, "Mutex") || Contains(m, "SharedMutex")))
                has_capability = true;
        if (!has_capability) continue;

        for (const MemberStatement &m : members) {
            if (m.has_body || m.tokens.empty()) continue;
            if (kNonFieldLead.count(m.tokens.front())) continue;
            bool safe = false;
            for (const std::string &t : m.tokens)
                if (kSafeMarkers.count(t)) {
                    safe = true;
                    break;
                }
            if (safe) continue;
            // Declarations whose parens precede any '=' are functions
            // (prototypes, std::function fields are exempted by their
            // template args' parens too — acceptable looseness).
            std::size_t paren = m.tokens.size(), assign = m.tokens.size();
            for (std::size_t k = 0; k < m.tokens.size(); ++k) {
                if (m.tokens[k] == "(" && paren == m.tokens.size())
                    paren = k;
                if (m.tokens[k] == "=" && assign == m.tokens.size())
                    assign = k;
            }
            if (paren < assign) continue;
            // Field name: the token just before `=`/`{`, else the last.
            std::string name = m.tokens.back();
            if (assign < m.tokens.size() && assign > 0)
                name = m.tokens[assign - 1];
            Report(scan, m.line, "guarded-field",
                   "mutable field '" + name +
                       "' in a Mutex-holding class lacks "
                       "SOMA_GUARDED_BY/atomic/const — annotate it or "
                       "waive with a reason",
                   findings);
        }
    }
}

// ---------------------------------------------------------------------------
// Check: hot-alloc
// ---------------------------------------------------------------------------

/**
 * Flag heap growth inside loops within a SOMA_PROF_SCOPE-marked
 * region. The region runs from the macro to the close of its enclosing
 * block; a loop is a `for`/`while` header (plus `do` blocks) inside
 * that region. Growth calls are `new`, `make_unique`/`make_shared`,
 * and container-growth members (`push_back`, `emplace_back`, `emplace`,
 * `resize`, `reserve`, `insert`) — `.assign`/`std::copy_n` onto
 * pre-sized storage are deliberately not flagged.
 */
void
CheckHotAlloc(const FileScan &scan, std::vector<Finding> *findings)
{
    if (fs::path(scan.path).filename() == "prof.h") return;
    static const std::set<std::string> kMakers = {"make_unique",
                                                  "make_shared"};
    static const std::set<std::string> kGrowth = {
        "push_back", "emplace_back", "emplace",
        "resize",    "reserve",      "insert",
    };
    const auto &toks = scan.tokens;
    for (std::size_t s = 0; s < toks.size(); ++s) {
        if (!toks[s].is_identifier || toks[s].text != "SOMA_PROF_SCOPE")
            continue;
        int depth = 0;          // brace depth relative to the macro
        int loop_depth = 0;     // brace-loop bodies currently open
        int stmt_loops = 0;     // single-statement loop bodies open
        std::vector<int> loop_open_depths;
        bool pending_header = false;  // saw for/while, inside its (...)
        bool awaiting_body = false;   // header closed, body token next
        int header_parens = 0;
        for (std::size_t j = s + 1; j < toks.size(); ++j) {
            const Token &t = toks[j];
            if (awaiting_body) {
                awaiting_body = false;
                if (t.text == "{") {
                    ++depth;
                    loop_open_depths.push_back(depth);
                    ++loop_depth;
                    continue;
                }
                ++stmt_loops;  // single-statement body, runs to ';'
            }
            if (pending_header) {
                if (t.text == "(") ++header_parens;
                if (t.text == ")" && --header_parens == 0) {
                    pending_header = false;
                    awaiting_body = true;
                }
                continue;
            }
            if (t.text == "{") {
                ++depth;
                continue;
            }
            if (t.text == "}") {
                if (!loop_open_depths.empty() &&
                    loop_open_depths.back() == depth) {
                    loop_open_depths.pop_back();
                    --loop_depth;
                }
                if (--depth < 0) break;  // left the scoped block
                continue;
            }
            if (t.text == ";" && stmt_loops > 0) {
                stmt_loops = 0;
                continue;
            }
            if (t.is_identifier &&
                (t.text == "for" || t.text == "while")) {
                // `do { ... } while (cond);` — the trailing while's
                // parens have no body; skipping them as a header would
                // otherwise mark the next statement a loop body.
                if (j > 0 && toks[j - 1].text == "}") {
                    pending_header = true;
                    header_parens = 0;
                    // consume the (...) but expect no body
                    int p = 0;
                    while (++j < toks.size()) {
                        if (toks[j].text == "(") ++p;
                        if (toks[j].text == ")" && --p == 0) break;
                    }
                    pending_header = false;
                    continue;
                }
                pending_header = true;
                header_parens = 0;
                continue;
            }
            if (t.is_identifier && t.text == "do") {
                awaiting_body = true;
                continue;
            }
            if (loop_depth == 0 && stmt_loops == 0) continue;
            if (!t.is_identifier) continue;
            if (t.text == "new") {
                Report(scan, t.line, "hot-alloc",
                       "'new' inside a loop in a SOMA_PROF_SCOPE "
                       "region — use the EvalContext arena or "
                       "pre-sized scratch; waive amortized paths "
                       "with a reason",
                       findings);
                continue;
            }
            if (kMakers.count(t.text)) {
                Report(scan, t.line, "hot-alloc",
                       "'" + t.text +
                           "' inside a loop in a SOMA_PROF_SCOPE "
                           "region — hoist the allocation out of the "
                           "hot loop or waive with a reason",
                       findings);
                continue;
            }
            if (kGrowth.count(t.text) && j > 0 &&
                (toks[j - 1].text == "." || toks[j - 1].text == "->") &&
                j + 1 < toks.size() && toks[j + 1].text == "(") {
                Report(scan, t.line, "hot-alloc",
                       "container growth '" + t.text +
                           "(' inside a loop in a SOMA_PROF_SCOPE "
                           "region — assign into pre-sized storage "
                           "(arena discipline) or waive with a reason",
                       findings);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool
IsSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

int
Run(const std::vector<std::string> &roots)
{
    std::vector<std::string> files;
    for (const std::string &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (auto it = fs::recursive_directory_iterator(root, ec);
                 !ec && it != fs::recursive_directory_iterator(); ++it)
                if (it->is_regular_file() && IsSourceFile(it->path()))
                    files.push_back(it->path().string());
        } else if (fs::is_regular_file(root, ec)) {
            files.push_back(root);
        } else {
            std::fprintf(stderr, "somalint: no such file or directory: %s\n",
                         root.c_str());
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Finding> findings;
    for (const std::string &path : files) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "somalint: cannot read %s\n", path.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        FileScan scan;
        scan.path = path;
        const std::string code = StripAndCollect(buf.str(), &scan);
        Tokenize(code, &scan);

        // A .cc file iterates members *declared in its header* — pull
        // the sibling header's unordered-container names in so
        // `for (kv : member_)` in the .cc is still seen.
        std::set<std::string> header_names;
        fs::path sibling = fs::path(path);
        if (sibling.extension() == ".cc" || sibling.extension() == ".cpp") {
            sibling.replace_extension(".h");
            std::ifstream hin(sibling, std::ios::binary);
            if (hin) {
                std::ostringstream hbuf;
                hbuf << hin.rdbuf();
                FileScan hscan;
                hscan.path = sibling.string();
                const std::string hcode =
                    StripAndCollect(hbuf.str(), &hscan);
                Tokenize(hcode, &hscan);
                header_names = TrackedUnorderedNames(hscan);
            }
        }

        CheckWallclock(scan, &findings);
        CheckUnorderedIter(scan, header_names, &findings);
        CheckSteadyNow(scan, &findings);
        CheckRawMutex(scan, &findings);
        CheckGuardedFields(scan, &findings);
        CheckHotAlloc(scan, &findings);
    }

    std::sort(findings.begin(), findings.end());
    // One finding per (file, line, check): overlapping detectors (a
    // `.begin()` inside a flagged for-header) collapse to one report.
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding &a, const Finding &b) {
                                   return a.path == b.path &&
                                          a.line == b.line &&
                                          a.check == b.check;
                               }),
                   findings.end());
    for (const Finding &f : findings)
        std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line,
                    f.check.c_str(), f.message.c_str());
    if (!findings.empty()) {
        std::printf("somalint: %zu finding(s) in %zu file(s) scanned\n",
                    findings.size(), files.size());
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: somalint <file-or-dir>...\n"
                     "checks: wallclock, unordered-iter, steady-now, "
                     "raw-mutex, guarded-field, hot-alloc\n"
                     "waive:  // somalint: allow(<check>[, <check>]) "
                     "<reason>\n");
        return 2;
    }
    std::vector<std::string> roots(argv + 1, argv + argc);
    return Run(roots);
}
