/**
 * @file
 * Observability layer tests: exact-count metrics under concurrent
 * writers (the TSan-exercised stress behind the registry's
 * no-lost-increments contract), canonical-dump fixpoints, Chrome
 * trace-event output, SOMA_PROF_SCOPE aggregation semantics — and the
 * end-to-end pin that attaching a tracer to a ScheduleRequest never
 * changes the result bytes.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/scheduler.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

// ------------------------------------------------------------ metrics

TEST(Metrics, CounterGaugeHistogramBasics)
{
    obs::MetricsRegistry registry;
    obs::Counter &c = registry.GetCounter("test.count");
    c.Add();
    c.Add(9);
    EXPECT_EQ(c.value(), 10u);
    c.Set(3);
    EXPECT_EQ(c.value(), 3u);

    obs::Gauge &g = registry.GetGauge("test.share");
    g.Set(0.25);
    EXPECT_DOUBLE_EQ(g.value(), 0.25);

    obs::Histogram &h =
        registry.GetHistogram("test.latency", {1.0, 2.0, 4.0});
    for (double v : {0.5, 0.5, 1.5, 3.0}) h.Observe(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 5.5);
    // Half the mass sits in the first bucket: p50 <= its bound.
    EXPECT_LE(h.Percentile(0.5), 1.0);
    EXPECT_GT(h.Percentile(0.99), 1.0);
}

TEST(Metrics, GetReturnsTheSameInstancePerName)
{
    obs::MetricsRegistry registry;
    obs::Counter &a = registry.GetCounter("same");
    obs::Counter &b = registry.GetCounter("same");
    EXPECT_EQ(&a, &b);
    a.Add(5);
    EXPECT_EQ(b.value(), 5u);
}

// The exact-count contract: concurrent Add/Observe never lose updates.
// Run under the TSan CI job this doubles as the data-race probe for the
// whole metrics hot path.
TEST(Metrics, ConcurrentWritersKeepExactTotals)
{
    constexpr int kThreads = 8;
    constexpr int kIters = 10000;
    obs::MetricsRegistry registry;
    obs::Counter &counter = registry.GetCounter("stress.count");
    obs::Histogram &histogram =
        registry.GetHistogram("stress.lat", {1.0, 10.0});
    obs::Gauge &gauge = registry.GetGauge("stress.gauge");

    std::vector<std::thread> team;
    team.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        team.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                counter.Add();
                histogram.Observe(0.5);
                gauge.Set(static_cast<double>(t));
            }
        });
    }
    for (std::thread &t : team) t.join();

    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(histogram.count(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 * kThreads * kIters);
    EXPECT_GE(gauge.value(), 0.0);
    EXPECT_LT(gauge.value(), kThreads);
}

TEST(Metrics, RegistryDumpIsCanonicalAndAFixpoint)
{
    obs::MetricsRegistry registry;
    // Register in non-sorted order; the dump must come out sorted.
    registry.GetCounter("z.last").Add(2);
    registry.GetCounter("a.first").Add(1);
    registry.GetGauge("m.middle").Set(0.5);
    registry.GetHistogram("h.lat", {1.0}).Observe(0.25);

    const std::string dump = registry.ToJson().CanonicalDump();
    EXPECT_LT(dump.find("a.first"), dump.find("h.lat"));
    EXPECT_LT(dump.find("h.lat"), dump.find("m.middle"));
    EXPECT_LT(dump.find("m.middle"), dump.find("z.last"));

    // Dump -> Parse -> CanonicalDump is byte-stable, and a second dump
    // of the unchanged registry is identical.
    Json parsed;
    std::string err;
    ASSERT_TRUE(Json::Parse(dump, &parsed, &err)) << err;
    EXPECT_EQ(parsed.CanonicalDump(), dump);
    EXPECT_EQ(registry.ToJson().CanonicalDump(), dump);

    // Histograms export {count, sum, p50, p95, p99}.
    const Json snapshot = registry.ToJson();
    const Json *h = snapshot.Find("h.lat");
    ASSERT_NE(h, nullptr);
    EXPECT_NE(h->Find("count"), nullptr);
    EXPECT_NE(h->Find("sum"), nullptr);
    EXPECT_NE(h->Find("p50"), nullptr);
    EXPECT_NE(h->Find("p95"), nullptr);
    EXPECT_NE(h->Find("p99"), nullptr);

    registry.Reset();
    EXPECT_EQ(registry.ToJson().CanonicalDump(), "{}");
}

// -------------------------------------------------------------- trace

TEST(Trace, SpanScopesEmitChromeCompleteEvents)
{
    obs::Tracer tracer;
    {
        obs::SpanScope outer(&tracer, "phase.outer");
        outer.Arg("iterations", static_cast<std::int64_t>(7));
        outer.Arg("cost", 1.5);
        outer.Arg("model", std::string("tiny"));
        obs::SpanScope inner(&tracer, "phase.inner");
    }
    tracer.AddAggregate("phase.aggregate", obs::MonotonicNow(), 2500,
                        {{"calls", Json::Int(3)}});
    EXPECT_EQ(tracer.NumEvents(), 3u);

    const Json json = tracer.ToJson();
    const Json *events = json.Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->size(), 3u);
    std::set<std::string> names;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &e = events->at(i);
        names.insert(e.Find("name")->AsString());
        EXPECT_EQ(e.Find("ph")->AsString(), "X");
        EXPECT_GE(e.Find("ts")->AsDouble(), 0.0);
        EXPECT_GE(e.Find("dur")->AsDouble(), 0.0);
        ASSERT_NE(e.Find("tid"), nullptr);
        ASSERT_NE(e.Find("pid"), nullptr);
    }
    EXPECT_EQ(names, (std::set<std::string>{
                         "phase.outer", "phase.inner", "phase.aggregate"}));

    // The inner span closed first: events are appended in close order.
    EXPECT_EQ(events->at(0).Find("name")->AsString(), "phase.inner");

    // The outer span carried its buffered args.
    const Json &outer = events->at(1);
    ASSERT_NE(outer.Find("args"), nullptr);
    EXPECT_EQ(outer.Find("args")->Find("iterations")->AsInt(), 7);
}

TEST(Trace, NullTracerIsACompleteNoOp)
{
    obs::SpanScope span(nullptr, "ignored");
    span.Arg("key", static_cast<std::int64_t>(1));
    span.Arg("cost", 2.0);
    // Nothing to assert beyond "does not crash / allocate a tracer":
    // the scope must be destructible without ever touching a Tracer.
}

// --------------------------------------------------------------- prof

std::uint64_t
ProbeOnce(std::uint64_t x)
{
    SOMA_PROF_SCOPE("test.probe");
    return x * 2654435761ULL + 1;
}

std::uint64_t
DupSiteA(std::uint64_t x)
{
    SOMA_PROF_SCOPE("test.dup");
    return x + 1;
}

std::uint64_t
DupSiteB(std::uint64_t x)
{
    SOMA_PROF_SCOPE("test.dup");
    return x + 2;
}

std::uint64_t
ProfCalls(const std::vector<obs::ProfEntry> &snapshot,
          const std::string &name)
{
    for (const obs::ProfEntry &e : snapshot)
        if (e.name == name) return e.calls;
    return 0;
}

TEST(Prof, DisabledScopesRecordNothing)
{
    ASSERT_FALSE(obs::ProfilingEnabled());
    volatile std::uint64_t sink = ProbeOnce(1);
    (void)sink;
    const std::vector<obs::ProfEntry> before = obs::ProfSnapshot();
    for (int i = 0; i < 100; ++i) sink = ProbeOnce(sink);
    const std::vector<obs::ProfEntry> after = obs::ProfSnapshot();
    EXPECT_EQ(ProfCalls(after, "test.probe"),
              ProfCalls(before, "test.probe"));
}

TEST(Prof, EnableScopeRecordsCallsAndFoldsDuplicateSites)
{
    const std::vector<obs::ProfEntry> before = obs::ProfSnapshot();
    {
        obs::ProfEnableScope hold;
        ASSERT_TRUE(obs::ProfilingEnabled());
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 50; ++i) sink = ProbeOnce(sink);
        for (int i = 0; i < 3; ++i) sink = DupSiteA(sink);
        for (int i = 0; i < 4; ++i) sink = DupSiteB(sink);
        (void)sink;
    }
    EXPECT_FALSE(obs::ProfilingEnabled());
    const std::vector<obs::ProfEntry> after = obs::ProfSnapshot();
    EXPECT_EQ(ProfCalls(after, "test.probe"),
              ProfCalls(before, "test.probe") + 50);
    // Two static sites share the name: the snapshot folds them.
    EXPECT_EQ(ProfCalls(after, "test.dup"),
              ProfCalls(before, "test.dup") + 7);
    EXPECT_GE(obs::ProfNanos(after, "test.probe"),
              obs::ProfNanos(before, "test.probe"));

    // Snapshots are name-sorted.
    for (std::size_t i = 1; i < after.size(); ++i)
        EXPECT_LT(after[i - 1].name, after[i].name);
}

// --------------------------------------------- end-to-end (pipeline)

/** Small 5-layer CNN (the test_api workload): big enough to exercise
 *  every pipeline phase, cheap enough to schedule twice per test. */
std::shared_ptr<const Graph>
TinyNet()
{
    GraphBuilder b("tinynet", 1);
    ExtShape image{3, 32, 32};
    LayerId c1 = b.InputConv("c1", image, 16, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 16, 3, 1, 1);
    LayerId add = b.Eltwise("add", {c1, c2});
    LayerId c3 = b.Conv("c3", add, 32, 3, 2, 1);
    LayerId gap = b.GlobalPool("gap", c3);
    b.MarkOutput(gap);
    return std::make_shared<const Graph>(b.Take());
}

ScheduleRequest
TinyRequest(std::uint64_t seed)
{
    ScheduleRequest request;
    request.graph = TinyNet();
    request.profile = SearchProfile::kQuick;
    request.seed = seed;
    return request;
}

// The determinism contract of the whole layer: attaching a tracer
// changes no result byte outside the wall-clock .stats block, and the
// trace itself covers every pipeline phase.
TEST(ObsIntegration, TracingDoesNotChangeResultBytes)
{
    Scheduler scheduler;
    const ScheduleResult plain = scheduler.Schedule(TinyRequest(7));
    ASSERT_TRUE(plain.ok) << plain.error;

    obs::Tracer tracer;
    ScheduleRequest traced_request = TinyRequest(7);
    traced_request.trace = &tracer;
    // The tracer hook is observational: it must not enter the
    // fingerprint (a traced request hits the same cache entries).
    EXPECT_EQ(traced_request.Fingerprint(), TinyRequest(7).Fingerprint());
    const ScheduleResult traced = scheduler.Schedule(traced_request);
    ASSERT_TRUE(traced.ok) << traced.error;
    EXPECT_GT(tracer.NumEvents(), 0u);

    Json a = plain.ToJson();
    Json b = traced.ToJson();
    a.Erase("stats");  // wall-clock seconds: legitimately differ
    b.Erase("stats");
    EXPECT_EQ(a.CanonicalDump(), b.CanonicalDump());

    std::set<std::string> names;
    const Json trace_json = tracer.ToJson();
    const Json *events = trace_json.Find("traceEvents");
    ASSERT_NE(events, nullptr);
    for (std::size_t i = 0; i < events->size(); ++i)
        names.insert(events->at(i).Find("name")->AsString());
    for (const char *phase :
         {"pipeline.build", "pipeline.search", "lfa.stage", "parse.lfa",
          "alloc.search", "alloc.iteration", "sa.window",
          "eval.timeline"})
        EXPECT_TRUE(names.count(phase)) << "missing span: " << phase;
}

TEST(ObsIntegration, PipelineFeedsTheGlobalRegistry)
{
    auto &registry = obs::MetricsRegistry::Global();
    const std::uint64_t requests_before =
        registry.GetCounter("pipeline.requests").value();

    obs::Tracer tracer;
    ScheduleRequest request = TinyRequest(11);
    request.trace = &tracer;
    Scheduler scheduler;
    const ScheduleResult result = scheduler.Schedule(request);
    ASSERT_TRUE(result.ok) << result.error;

    EXPECT_EQ(registry.GetCounter("pipeline.requests").value(),
              requests_before + 1);
    EXPECT_GT(registry.GetCounter("pipeline.search_nanos").value(), 0u);
    // Traced runs hold a ProfEnableScope, so the timeline share is
    // measured and sits in (0, 1].
    EXPECT_GT(registry.GetCounter("pipeline.timeline_eval_nanos").value(),
              0u);
    const double share =
        registry.GetGauge("search.timeline_eval_share").value();
    EXPECT_GT(share, 0.0);
    EXPECT_LE(share, 1.0);
    EXPECT_GT(registry.GetHistogram("pipeline.search_seconds").count(),
              0u);
}

}  // namespace
}  // namespace soma
