/**
 * @file
 * Core Array Scheduler & Evaluator tests: cost scaling, partition-search
 * efficiency effects, per-tile overheads, memoization, energy split.
 */
#include <gtest/gtest.h>

#include "corearray/core_array.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

Graph
MakeConvNet(int channels, int dim)
{
    GraphBuilder b("net", 1);
    LayerId c = b.InputConv("conv", ExtShape{16, dim, dim}, channels, 3, 1,
                            1);
    LayerId e = b.Eltwise("elt", {c, c});
    (void)e;
    return b.Take();
}

TEST(CoreArray, EmptyRegionIsFree)
{
    Graph g = MakeConvNet(32, 16);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    TileCost c = eval.Evaluate(0, Region{});
    EXPECT_EQ(c.seconds, 0.0);
    EXPECT_EQ(c.energy_pj, 0.0);
    EXPECT_EQ(c.ops, 0);
}

TEST(CoreArray, OpsMatchLayerAccounting)
{
    Graph g = MakeConvNet(32, 16);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    Region full = g.layer(0).FullRegion(1);
    TileCost c = eval.Evaluate(0, full);
    EXPECT_EQ(c.ops, g.layer(0).OpsForRegion(full));
    EXPECT_GT(c.seconds, 0.0);
    EXPECT_GT(c.energy_pj, 0.0);
    EXPECT_GT(c.gbuf_traffic, 0);
}

TEST(CoreArray, TwoHalvesCostAtLeastOneWhole)
{
    // Per-tile overhead makes splitting never cheaper in compute time.
    Graph g = MakeConvNet(64, 32);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    Region full = g.layer(0).FullRegion(1);
    Region top{0, 1, 0, 16, 0, 32};
    Region bottom{0, 1, 16, 32, 0, 32};
    double whole = eval.Evaluate(0, full).seconds;
    double split = eval.Evaluate(0, top).seconds +
                   eval.Evaluate(0, bottom).seconds;
    EXPECT_GE(split, whole);
}

TEST(CoreArray, ThroughputApproachesPeakForLargeTiles)
{
    Graph g = MakeConvNet(256, 64);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    Region full = g.layer(0).FullRegion(1);
    TileCost c = eval.Evaluate(0, full);
    double achieved = static_cast<double>(c.ops) / c.seconds;
    EXPECT_GT(achieved, 0.5 * hw.PeakOpsPerSecond());
    EXPECT_LE(achieved, hw.PeakOpsPerSecond() * 1.001);
}

TEST(CoreArray, RaggedChannelsLoseEfficiency)
{
    // 33 channels wastes most of the second PE-row pass vs 32.
    Graph g32 = MakeConvNet(32, 32);
    Graph g33 = MakeConvNet(33, 32);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator e32(g32, hw), e33(g33, hw);
    TileCost c32 = e32.Evaluate(0, g32.layer(0).FullRegion(1));
    TileCost c33 = e33.Evaluate(0, g33.layer(0).FullRegion(1));
    double per_op_32 = c32.seconds / static_cast<double>(c32.ops);
    double per_op_33 = c33.seconds / static_cast<double>(c33.ops);
    EXPECT_GT(per_op_33, per_op_32 * 1.2);
}

TEST(CoreArray, VectorLayerUsesVectorThroughput)
{
    Graph g = MakeConvNet(32, 32);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    Region full = g.layer(1).FullRegion(1);  // eltwise
    TileCost c = eval.Evaluate(1, full);
    double expected_cycles =
        static_cast<double>(c.ops) /
        (hw.VectorOpsPerSecond() / (hw.freq_ghz * 1e9));
    double actual_cycles = c.seconds * hw.freq_ghz * 1e9;
    EXPECT_NEAR(actual_cycles,
                expected_cycles + CoreArrayEvaluator::kTileOverheadCycles,
                expected_cycles * 0.1 + 2.0);
}

TEST(CoreArray, MemoizationStable)
{
    Graph g = MakeConvNet(32, 32);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    Region a{0, 1, 0, 8, 0, 32};
    Region b{0, 1, 8, 16, 0, 32};  // same extents, different offset
    const TileCost &ca = eval.Evaluate(0, a);
    const TileCost &cb = eval.Evaluate(0, b);
    EXPECT_EQ(&ca, &cb);  // one memo entry for equal extents
    EXPECT_EQ(ca.seconds, cb.seconds);
}

TEST(CoreArray, EnergyGrowsWithTraffic)
{
    // The same math with a bigger input (more GBUF traffic) costs more
    // energy: compare 1x1 conv against 3x3 conv with same output.
    GraphBuilder b("t", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{64, 32, 32}, 64, 1, 1, 0);
    LayerId c3 = b.Conv("c3", c1, 64, 3, 1, 1);
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    TileCost cost1 = eval.Evaluate(c1, g.layer(c1).FullRegion(1));
    TileCost cost3 = eval.Evaluate(c3, g.layer(c3).FullRegion(1));
    // 9x the MACs and more weight traffic.
    EXPECT_GT(cost3.energy_pj, cost1.energy_pj * 5);
}

TEST(CoreArray, CloudFasterThanEdge)
{
    Graph g = MakeConvNet(256, 64);
    CoreArrayEvaluator edge(g, EdgeAccelerator());
    CoreArrayEvaluator cloud(g, CloudAccelerator());
    Region full = g.layer(0).FullRegion(1);
    EXPECT_LT(cloud.Evaluate(0, full).seconds,
              edge.Evaluate(0, full).seconds);
}

TEST(CoreArray, SharedMemoWarmsSiblingEvaluators)
{
    Graph g = MakeConvNet(32, 16);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator first(g, hw);
    Region full = g.layer(0).FullRegion(1);
    const TileCost cost = first.Evaluate(0, full);
    const std::size_t warmed = first.memo()->size();
    EXPECT_GT(warmed, 0u);

    // A sibling sharing the memo starts warm and returns the identical
    // entry (the SearchDriver chains rely on exactly this).
    CoreArrayEvaluator sibling(g, hw, first.memo());
    EXPECT_EQ(sibling.memo().get(), first.memo().get());
    EXPECT_EQ(sibling.Evaluate(0, full), cost);
    EXPECT_EQ(sibling.memo()->size(), warmed);
}

TEST(CoreArray, MemoKeyIsExactOverExtents)
{
    // Same extents at different offsets share one entry; different
    // extents never collide (the key packs them exactly).
    Region a{0, 1, 0, 8, 0, 8};
    Region b{0, 1, 8, 16, 8, 16};
    Region c{0, 1, 0, 8, 0, 9};
    EXPECT_EQ(TileCostMemo::Key(3, a), TileCostMemo::Key(3, b));
    EXPECT_NE(TileCostMemo::Key(3, a), TileCostMemo::Key(3, c));
    EXPECT_NE(TileCostMemo::Key(3, a), TileCostMemo::Key(4, a));
}

}  // namespace
}  // namespace soma
