/**
 * @file
 * Parser tests built around the paper's Fig. 4 five-layer example:
 * tile sequences, DRAM tensor enumeration, on-chip intervals, Living
 * Duration bounds, Cocco weight-residency semantics, load dedup, and
 * DLSA validity rules.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "corearray/core_array.h"
#include "notation/parser.h"
#include "search/dlsa_heuristics.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

/**
 * The Fig. 4 topology: A -> B -> C (pool); C -> E; C -> D; E and D are
 * network outputs (their Living Durations end at END in the paper).
 */
Graph
MakeFig4()
{
    GraphBuilder b("fig4", 1);
    LayerId a = b.InputConv("A", ExtShape{3, 16, 16}, 8, 3, 1, 1);
    LayerId bb = b.Conv("B", a, 8, 3, 1, 1);
    LayerId c = b.Pool("C", bb, 2, 2, 0);
    LayerId e = b.Conv("E", c, 8, 3, 1, 1);
    LayerId d = b.Conv("D", c, 8, 3, 1, 1);
    b.MarkOutput(e);
    b.MarkOutput(d);
    return b.Take();
}

/** The exact encoding of Fig. 4: [A | B || C,E,D]{2,1,2}, DRAM cut {2}. */
LfaEncoding
Fig4Encoding()
{
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3, 4};
    lfa.flc_cuts = {1, 2};
    lfa.dram_cuts = {2};
    lfa.tiling = {2, 1, 2};
    return lfa;
}

class ParserTest : public ::testing::Test {
  protected:
    ParserTest() : graph_(MakeFig4()), hw_(EdgeAccelerator()),
                   eval_(graph_, hw_) {}
    Graph graph_;
    HardwareConfig hw_;
    CoreArrayEvaluator eval_;
};

TEST_F(ParserTest, Fig4TileSequence)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    ASSERT_TRUE(p.valid) << p.why_invalid;
    // A1 A2 B C1 E1 D1 C2 E2 D2 (paper's COMPUTE row).
    ASSERT_EQ(p.NumTiles(), 9);
    const char *expect[] = {"A", "A", "B", "C", "E", "D", "C", "E", "D"};
    const int rounds[] = {0, 1, 0, 0, 0, 0, 1, 1, 1};
    for (int i = 0; i < 9; ++i) {
        EXPECT_EQ(graph_.layer(p.tiles[i].layer).name(), expect[i])
            << "tile " << i;
        EXPECT_EQ(p.tiles[i].round, rounds[i]) << "tile " << i;
    }
    EXPECT_EQ(p.num_flgs, 3);
    EXPECT_EQ(p.num_lgs, 2);
    // LG membership: A, B in LG0, the rest LG1.
    EXPECT_EQ(p.tiles[0].lg, 0);
    EXPECT_EQ(p.tiles[2].lg, 0);
    EXPECT_EQ(p.tiles[3].lg, 1);
}

TEST_F(ParserTest, Fig4DramTensorInventory)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    ASSERT_TRUE(p.valid);
    // Paper's list: IA1 IA2 WA WB OB WD IC1 IC2 WE OE1 OD1 OE2 OD2 = 13.
    EXPECT_EQ(p.NumTensors(), 13);
    int weights = 0, ifmaps = 0, ofmaps = 0;
    for (const DramTensor &t : p.tensors) {
        switch (t.kind) {
          case DramTensorKind::kWeight: ++weights; break;
          case DramTensorKind::kIfmap: ++ifmaps; break;
          case DramTensorKind::kOfmap: ++ofmaps; break;
        }
    }
    EXPECT_EQ(weights, 4);  // WA WB WE WD (pool C has none)
    EXPECT_EQ(ifmaps, 4);   // IA1 IA2 IC1 IC2
    EXPECT_EQ(ofmaps, 5);   // OB OE1 OE2 OD1 OD2
}

TEST_F(ParserTest, Fig4OnchipIntervals)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    ASSERT_TRUE(p.valid);
    // A->B aggregates across FLGs (1 interval), C->{E,D} rolls per round
    // (2 intervals).
    ASSERT_EQ(p.onchip.size(), 3u);
    // The aggregated A interval spans from A's first tile to B.
    const OnchipInterval *agg = nullptr;
    for (const auto &iv : p.onchip) {
        if (iv.producer == 0) agg = &iv;
    }
    ASSERT_NE(agg, nullptr);
    EXPECT_EQ(agg->from, 0);
    EXPECT_EQ(agg->to, 3);  // B is tile 2; held through [0, 3)
    EXPECT_EQ(agg->bytes, graph_.layer(0).PerSampleOutputBytes());
}

TEST_F(ParserTest, WeightLifetimes)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    for (const DramTensor &t : p.tensors) {
        if (t.kind != DramTensorKind::kWeight) continue;
        const std::string &name = graph_.layer(t.layer).name();
        if (name == "A") {
            EXPECT_EQ(t.first_use, 0);
            EXPECT_EQ(t.fixed_end, 2);  // released after A's last tile
        } else if (name == "E") {
            EXPECT_EQ(t.first_use, 4);
            EXPECT_EQ(t.fixed_end, 8);  // E's last tile is pos 7
        }
    }
}

TEST_F(ParserTest, CoccoSemanticsHoldWeightsToLgEnd)
{
    ParseOptions popts{/*lg_resident_weights=*/true};
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_, popts);
    for (const DramTensor &t : p.tensors) {
        if (t.kind != DramTensorKind::kWeight) continue;
        const std::string &name = graph_.layer(t.layer).name();
        if (name == "A" || name == "B") {
            EXPECT_EQ(t.fixed_end, 3) << name;  // LG0 = tiles [0,3)
        } else {
            EXPECT_EQ(t.fixed_end, 9) << name;  // LG1 = tiles [3,9)
        }
    }
}

TEST_F(ParserTest, CanonicalOrderSortedByNeed)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    for (int j = 1; j < p.NumTensors(); ++j) {
        EXPECT_LE(p.tensors[j - 1].first_use, p.tensors[j].first_use);
    }
    // Weight-before-ifmap at the same position.
    EXPECT_EQ(p.tensors[0].kind, DramTensorKind::kWeight);  // WA before IA1
}

TEST_F(ParserTest, NeedLoadsAttachedAtFirstUse)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    // Tile 0 (A round 0) needs WA and IA1.
    EXPECT_EQ(p.tiles[0].need_loads.size(), 2u);
    // Tile 2 (B) needs WB only (reads A on-chip).
    ASSERT_EQ(p.tiles[2].need_loads.size(), 1u);
    EXPECT_EQ(p.tensors[p.tiles[2].need_loads[0]].kind,
              DramTensorKind::kWeight);
    // Tile 3 (C round 0) needs IC1 only (pool has no weights).
    ASSERT_EQ(p.tiles[3].need_loads.size(), 1u);
    EXPECT_EQ(p.tensors[p.tiles[3].need_loads[0]].kind,
              DramTensorKind::kIfmap);
}

TEST_F(ParserTest, FreePointRanges)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    for (int j = 0; j < p.NumTensors(); ++j) {
        const DramTensor &t = p.tensors[j];
        if (t.IsLoad()) {
            EXPECT_EQ(p.FreePointMin(j), 0);
            EXPECT_EQ(p.FreePointMax(j), t.first_use);
        } else {
            EXPECT_EQ(p.FreePointMin(j), t.first_use + 1);
            EXPECT_EQ(p.FreePointMax(j), p.NumTiles());
        }
    }
}

TEST_F(ParserTest, FusionReducesDramTraffic)
{
    // Fully fused (single LG) vs fully unfused.
    LfaEncoding fused;
    fused.order = {0, 1, 2, 3, 4};
    fused.tiling = {1};
    ParsedSchedule pf = ParseLfa(graph_, fused, eval_);
    ASSERT_TRUE(pf.valid);

    LfaEncoding unfused = MakeUnfusedLfa(graph_, {1, 1, 1, 1, 1});
    ParsedSchedule pu = ParseLfa(graph_, unfused, eval_);
    ASSERT_TRUE(pu.valid);

    EXPECT_LT(pf.TotalDramBytes(), pu.TotalDramBytes());
    // Fused: 4 weights + 1 input + 2 outputs = 7 tensors.
    EXPECT_EQ(pf.NumTensors(), 7);
}

TEST_F(ParserTest, InvalidTilingReported)
{
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3, 4};
    lfa.tiling = {4096};  // cannot split 16x16 into 4096 spatial tiles
    ParsedSchedule p = ParseLfa(graph_, lfa, eval_);
    EXPECT_FALSE(p.valid);
    EXPECT_NE(p.why_invalid.find("tiling"), std::string::npos);
}

TEST_F(ParserTest, StructurallyInvalidEncodingReported)
{
    LfaEncoding lfa;
    lfa.order = {1, 0, 2, 3, 4};
    lfa.tiling = {1};
    ParsedSchedule p = ParseLfa(graph_, lfa, eval_);
    EXPECT_FALSE(p.valid);
}

TEST(ParserDedup, IdenticalFullLoadsMergeAcrossRounds)
{
    // A matmul whose B operand is an external kFull tensor: with T > 1
    // every round needs the identical region -> one load, longer life.
    GraphBuilder b("attn", 1);
    Layer q("q", LayerKind::kGemm, 8, 16, 1);
    q.setOpsPerElement(6);
    q.setWeightBytes(64);
    q.addInput(InputRef{kNoLayer, AccessPattern::kRowAligned,
                        ExtShape{3, 16, 1}});
    LayerId qid = b.graph().AddLayer(std::move(q));
    LayerId mm = b.Matmul("mm", qid, qid, 8, 16);
    b.AddExternalInput(mm, ExtShape{8, 32, 1});  // KV-cache-like
    b.MarkOutput(mm);
    Graph g = b.Take();

    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = {0, 1};
    lfa.tiling = {4};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid) << p.why_invalid;

    int ext_loads = 0;
    for (const DramTensor &t : p.tensors) {
        if (t.kind == DramTensorKind::kIfmap && t.layer == mm &&
            t.input_index == 2) {
            ++ext_loads;
            EXPECT_EQ(t.bytes, 8LL * 32);
            // Held until the last round's tile.
            EXPECT_EQ(t.fixed_end, p.NumTiles());
        }
    }
    EXPECT_EQ(ext_loads, 1);
}

TEST_F(ParserTest, DlsaValidationCatchesCorruption)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    EXPECT_TRUE(DlsaValid(p, dlsa));

    DlsaEncoding bad = dlsa;
    bad.order.pop_back();
    EXPECT_FALSE(DlsaValid(p, bad));  // arity

    bad = dlsa;
    bad.order[0] = bad.order[1];
    EXPECT_FALSE(DlsaValid(p, bad));  // not a permutation

    bad = dlsa;
    bad.free_point[0] = -1;
    EXPECT_FALSE(DlsaValid(p, bad));  // out of range
}

TEST_F(ParserTest, DlsaValidationEnforcesStoreBeforeLoad)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);

    // Find OB (store of B) and IC1 (load reading B) and swap them so the
    // load precedes the store.
    int ob_rank = -1, ic_rank = -1;
    for (int r = 0; r < p.NumTensors(); ++r) {
        const DramTensor &t = p.tensors[dlsa.order[r]];
        if (t.kind == DramTensorKind::kOfmap &&
            graph_.layer(t.layer).name() == "B") {
            ob_rank = r;
        }
        if (t.kind == DramTensorKind::kIfmap && t.src_layer == 1 &&
            ic_rank < 0) {
            ic_rank = r;
        }
    }
    ASSERT_GE(ob_rank, 0);
    ASSERT_GE(ic_rank, 0);
    ASSERT_LT(ob_rank, ic_rank);
    std::swap(dlsa.order[ob_rank], dlsa.order[ic_rank]);
    EXPECT_FALSE(DlsaValid(p, dlsa));
}

TEST_F(ParserTest, LabelsFollowPaperConvention)
{
    ParsedSchedule p = ParseLfa(graph_, Fig4Encoding(), eval_);
    bool saw_weight = false, saw_ifmap = false, saw_ofmap = false;
    for (const DramTensor &t : p.tensors) {
        std::string label = t.Label(graph_);
        switch (t.kind) {
          case DramTensorKind::kWeight:
            EXPECT_EQ(label.rfind("W:", 0), 0u);
            saw_weight = true;
            break;
          case DramTensorKind::kIfmap:
            EXPECT_EQ(label.rfind("I:", 0), 0u);
            saw_ifmap = true;
            break;
          case DramTensorKind::kOfmap:
            EXPECT_EQ(label.rfind("O:", 0), 0u);
            saw_ofmap = true;
            break;
        }
    }
    EXPECT_TRUE(saw_weight && saw_ifmap && saw_ofmap);
}

}  // namespace
}  // namespace soma
