/**
 * @file
 * Parameterized receptive-field properties: for a sweep of (kernel,
 * stride, pad) configurations, the window region math must cover
 * exactly the inputs a convolution touches, clip at borders, and
 * compose across chained layers.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "workload/graph_builder.h"
#include "workload/layer.h"

namespace soma {
namespace {

class WindowProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WindowProperty, CoversReceptiveFieldOfEveryOutputRow)
{
    auto [kernel, stride, pad] = GetParam();
    const int in_dim = 31;
    int out_dim = (in_dim + 2 * pad - kernel) / stride + 1;
    if (out_dim <= 0) GTEST_SKIP();

    Layer l("conv", LayerKind::kConv, 8, out_dim, out_dim);
    l.setWindow(WindowParams{kernel, kernel, stride, stride, pad, pad});
    InputRef ref{0, AccessPattern::kWindow, {}};

    for (int r0 = 0; r0 < out_dim; ++r0) {
        Region out{0, 1, r0, r0 + 1, 0, out_dim};
        Region in = l.RequiredInputRegion(ref, out, in_dim, in_dim);
        // The unclipped receptive field of output row r0 is
        // [r0*s - pad, r0*s - pad + kernel).
        int want_lo = std::max(0, r0 * stride - pad);
        int want_hi = std::min(in_dim, r0 * stride - pad + kernel);
        EXPECT_LE(in.r0, want_lo) << "r0=" << r0;
        EXPECT_GE(in.r1, want_hi) << "r0=" << r0;
        // Never reads outside the input.
        EXPECT_GE(in.r0, 0);
        EXPECT_LE(in.r1, in_dim);
        EXPECT_FALSE(in.Empty());
    }
}

TEST_P(WindowProperty, FullOutputNeedsWholeUsedInput)
{
    auto [kernel, stride, pad] = GetParam();
    const int in_dim = 31;
    int out_dim = (in_dim + 2 * pad - kernel) / stride + 1;
    if (out_dim <= 0) GTEST_SKIP();

    Layer l("conv", LayerKind::kConv, 8, out_dim, out_dim);
    l.setWindow(WindowParams{kernel, kernel, stride, stride, pad, pad});
    InputRef ref{0, AccessPattern::kWindow, {}};
    Region out{0, 1, 0, out_dim, 0, out_dim};
    Region in = l.RequiredInputRegion(ref, out, in_dim, in_dim);
    EXPECT_EQ(in.r0, 0);
    // The last touched input row is (out_dim-1)*s - pad + kernel,
    // clipped to the input.
    EXPECT_EQ(in.r1,
              std::min(in_dim, (out_dim - 1) * stride - pad + kernel));
}

TEST_P(WindowProperty, AdjacentTilesOverlapByKernelMinusStride)
{
    auto [kernel, stride, pad] = GetParam();
    const int in_dim = 31;
    int out_dim = (in_dim + 2 * pad - kernel) / stride + 1;
    if (out_dim < 8) GTEST_SKIP();

    Layer l("conv", LayerKind::kConv, 8, out_dim, out_dim);
    l.setWindow(WindowParams{kernel, kernel, stride, stride, pad, pad});
    InputRef ref{0, AccessPattern::kWindow, {}};

    int mid = out_dim / 2;
    Region top{0, 1, 0, mid, 0, out_dim};
    Region bottom{0, 1, mid, out_dim, 0, out_dim};
    Region in_top = l.RequiredInputRegion(ref, top, in_dim, in_dim);
    Region in_bot = l.RequiredInputRegion(ref, bottom, in_dim, in_dim);
    // The halo overlap between adjacent tiles is exactly
    // kernel - stride rows (clipped at borders).
    int overlap = std::max(0, in_top.r1 - in_bot.r0);
    EXPECT_LE(overlap, std::max(0, kernel - stride));
    // Together they cover everything the full output needs.
    Region in_full = l.RequiredInputRegion(
        ref, Region{0, 1, 0, out_dim, 0, out_dim}, in_dim, in_dim);
    EXPECT_EQ(Region::Union(in_top, in_bot), in_full);
}

INSTANTIATE_TEST_SUITE_P(
    KernelStridePad, WindowProperty,
    ::testing::Combine(::testing::Values(1, 3, 5, 7),  // kernel
                       ::testing::Values(1, 2),        // stride
                       ::testing::Values(0, 1, 3)));   // pad

}  // namespace
}  // namespace soma
