/**
 * @file
 * Tensor-centric Notation tests: encoding structure, FLG/LG queries,
 * structural validity rules, and the unfused starting point.
 */
#include <gtest/gtest.h>

#include "notation/encoding.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

Graph
MakeFiveLayer()
{
    // Mirrors the paper's Fig. 4 topology: A -> B -> {C -> E -> D}, with
    // C a pooling layer.
    GraphBuilder b("fig4", 1);
    LayerId a = b.InputConv("A", ExtShape{3, 16, 16}, 8, 3, 1, 1);
    LayerId bb = b.Conv("B", a, 8, 3, 1, 1);
    LayerId c = b.Pool("C", bb, 2, 2, 0);
    LayerId e = b.Conv("E", c, 8, 3, 1, 1);
    LayerId d = b.Conv("D", e, 8, 3, 1, 1);
    b.MarkOutput(d);
    return b.Take();
}

TEST(LfaEncoding, FlgRangesAndMembership)
{
    Graph g = MakeFiveLayer();
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3, 4};
    lfa.flc_cuts = {1, 2};
    lfa.dram_cuts = {2};
    lfa.tiling = {2, 1, 2};

    EXPECT_EQ(lfa.NumFlgs(), 3);
    EXPECT_EQ(lfa.NumLgs(), 2);

    int begin, end;
    lfa.FlgRange(0, &begin, &end);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 1);
    lfa.FlgRange(2, &begin, &end);
    EXPECT_EQ(begin, 2);
    EXPECT_EQ(end, 5);

    EXPECT_EQ(lfa.FlgOfPos(0), 0);
    EXPECT_EQ(lfa.FlgOfPos(1), 1);
    EXPECT_EQ(lfa.FlgOfPos(4), 2);
    EXPECT_EQ(lfa.LgOfPos(1), 0);
    EXPECT_EQ(lfa.LgOfPos(2), 1);

    EXPECT_EQ(lfa.FlgLayers(2), (std::vector<LayerId>{2, 3, 4}));
    EXPECT_TRUE(lfa.StructurallyValid(g));
}

TEST(LfaEncoding, ValidityRejectsBadOrder)
{
    Graph g = MakeFiveLayer();
    LfaEncoding lfa;
    lfa.order = {1, 0, 2, 3, 4};  // B before A violates dependency
    lfa.tiling = {1};
    std::string why;
    EXPECT_FALSE(lfa.StructurallyValid(g, &why));
    EXPECT_EQ(why, "order violates deps");
}

TEST(LfaEncoding, ValidityRejectsBadCuts)
{
    Graph g = MakeFiveLayer();
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3, 4};

    lfa.flc_cuts = {2, 1};  // unsorted
    lfa.tiling = {1, 1, 1};
    EXPECT_FALSE(lfa.StructurallyValid(g));

    lfa.flc_cuts = {0};  // out of range
    lfa.tiling = {1, 1};
    EXPECT_FALSE(lfa.StructurallyValid(g));

    lfa.flc_cuts = {5};  // out of range
    EXPECT_FALSE(lfa.StructurallyValid(g));
}

TEST(LfaEncoding, ValidityRequiresDramSubsetOfFlc)
{
    Graph g = MakeFiveLayer();
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3, 4};
    lfa.flc_cuts = {2};
    lfa.dram_cuts = {1};  // not an FLC
    lfa.tiling = {1, 1};
    std::string why;
    EXPECT_FALSE(lfa.StructurallyValid(g, &why));
    EXPECT_EQ(why, "dram cut not in flc set");
}

TEST(LfaEncoding, ValidityChecksTilingArity)
{
    Graph g = MakeFiveLayer();
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3, 4};
    lfa.flc_cuts = {2};
    lfa.tiling = {1};  // needs 2
    EXPECT_FALSE(lfa.StructurallyValid(g));
    lfa.tiling = {1, 0};  // tiling < 1
    EXPECT_FALSE(lfa.StructurallyValid(g));
}

TEST(LfaEncoding, IndependentLayersMayReorder)
{
    // In Fig. 4 the paper notes D and E may swap but A and B may not.
    GraphBuilder b("dag", 1);
    LayerId a = b.InputConv("A", ExtShape{3, 8, 8}, 8, 3, 1, 1);
    LayerId d = b.Conv("D", a, 8, 3, 1, 1);
    LayerId e = b.Conv("E", a, 8, 3, 1, 1);
    (void)d;
    (void)e;
    Graph g = b.Take();
    LfaEncoding lfa;
    lfa.tiling = {1};
    lfa.order = {0, 1, 2};
    EXPECT_TRUE(lfa.StructurallyValid(g));
    lfa.order = {0, 2, 1};
    EXPECT_TRUE(lfa.StructurallyValid(g));
    lfa.order = {1, 0, 2};
    EXPECT_FALSE(lfa.StructurallyValid(g));
}

TEST(LfaEncoding, MakeUnfused)
{
    Graph g = MakeFiveLayer();
    LfaEncoding lfa = MakeUnfusedLfa(g, {1, 2, 4, 8, 16});
    EXPECT_TRUE(lfa.StructurallyValid(g));
    EXPECT_EQ(lfa.NumFlgs(), 5);
    EXPECT_EQ(lfa.NumLgs(), 5);
    EXPECT_EQ(lfa.tiling, (std::vector<int>{1, 2, 4, 8, 16}));
}

TEST(LfaEncoding, ToStringShowsCutsAndTiling)
{
    Graph g = MakeFiveLayer();
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3, 4};
    lfa.flc_cuts = {1, 2};
    lfa.dram_cuts = {2};
    lfa.tiling = {2, 1, 2};
    std::string s = lfa.ToString(g);
    EXPECT_NE(s.find("A"), std::string::npos);
    EXPECT_NE(s.find(" | "), std::string::npos);   // FLC
    EXPECT_NE(s.find(" || "), std::string::npos);  // DRAM cut
    EXPECT_NE(s.find("{2,1,2}"), std::string::npos);
}

TEST(LfaEncoding, ToStringOnEmptyIsSafe)
{
    Graph g = MakeFiveLayer();
    LfaEncoding empty;
    EXPECT_EQ(empty.ToString(g), "<empty>");
}

}  // namespace
}  // namespace soma
