/**
 * @file
 * Unit tests for the workload substrate: region arithmetic, layer shape
 * math and access patterns, and graph dependency queries.
 */
#include <gtest/gtest.h>

#include "workload/graph.h"
#include "workload/graph_builder.h"
#include "workload/layer.h"
#include "workload/region.h"

namespace soma {
namespace {

TEST(Region, SitesAndEmpty)
{
    Region r{0, 2, 0, 3, 0, 4};
    EXPECT_EQ(r.Sites(), 24);
    EXPECT_FALSE(r.Empty());
    Region empty{0, 0, 0, 3, 0, 4};
    EXPECT_TRUE(empty.Empty());
    EXPECT_EQ(empty.Sites(), 0);
}

TEST(Region, UnionBoundingBox)
{
    Region a{0, 1, 0, 2, 0, 2};
    Region b{0, 1, 1, 4, 1, 3};
    Region u = Region::Union(a, b);
    EXPECT_EQ(u, (Region{0, 1, 0, 4, 0, 3}));
}

TEST(Region, UnionWithEmpty)
{
    Region a{0, 1, 0, 2, 0, 2};
    Region empty{};
    EXPECT_EQ(Region::Union(a, empty), a);
    EXPECT_EQ(Region::Union(empty, a), a);
}

TEST(Region, Intersect)
{
    Region a{0, 2, 0, 4, 0, 4};
    Region b{1, 3, 2, 6, 1, 3};
    Region i = Region::Intersect(a, b);
    EXPECT_EQ(i, (Region{1, 2, 2, 4, 1, 3}));
    Region c{5, 6, 0, 1, 0, 1};
    EXPECT_TRUE(Region::Intersect(a, c).Empty());
}

TEST(Region, Contains)
{
    Region outer{0, 4, 0, 8, 0, 8};
    Region inner{1, 2, 3, 5, 0, 8};
    EXPECT_TRUE(outer.Contains(inner));
    EXPECT_FALSE(inner.Contains(outer));
    EXPECT_TRUE(inner.Contains(Region{}));  // empty is inside anything
}

TEST(Region, EvenSliceCoversAndIsDisjoint)
{
    const int length = 7, parts = 3;
    int prev_hi = 0;
    for (int i = 0; i < parts; ++i) {
        int lo, hi;
        EvenSlice(length, parts, i, &lo, &hi);
        EXPECT_EQ(lo, prev_hi);
        EXPECT_GT(hi, lo);
        prev_hi = hi;
    }
    EXPECT_EQ(prev_hi, length);
}

TEST(Region, EvenSliceBalanced)
{
    int lo, hi;
    EvenSlice(8, 4, 0, &lo, &hi);
    EXPECT_EQ(hi - lo, 2);
    EvenSlice(8, 4, 3, &lo, &hi);
    EXPECT_EQ(hi - lo, 2);
}

TEST(LayerKind, NameRoundTrip)
{
    for (LayerKind kind :
         {LayerKind::kConv, LayerKind::kDepthwise, LayerKind::kPool,
          LayerKind::kGlobalPool, LayerKind::kGemm, LayerKind::kMatmul,
          LayerKind::kEltwise, LayerKind::kActivation, LayerKind::kLayerNorm,
          LayerKind::kConcat}) {
        LayerKind back;
        ASSERT_TRUE(LayerKindFromName(LayerKindName(kind), &back));
        EXPECT_EQ(back, kind);
    }
    LayerKind k;
    EXPECT_FALSE(LayerKindFromName("nonsense", &k));
}

TEST(LayerKind, MatrixVsVector)
{
    EXPECT_TRUE(IsMatrixKind(LayerKind::kConv));
    EXPECT_TRUE(IsMatrixKind(LayerKind::kGemm));
    EXPECT_TRUE(IsMatrixKind(LayerKind::kMatmul));
    EXPECT_FALSE(IsMatrixKind(LayerKind::kPool));
    EXPECT_FALSE(IsMatrixKind(LayerKind::kEltwise));
    EXPECT_FALSE(IsMatrixKind(LayerKind::kLayerNorm));
}

class ConvRegionTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        layer_ = Layer("conv", LayerKind::kConv, 16, 8, 8);
        layer_.setWindow(WindowParams{3, 3, 1, 1, 1, 1});
        input_ = InputRef{0, AccessPattern::kWindow, {}};
    }
    Layer layer_;
    InputRef input_;
};

TEST_F(ConvRegionTest, InteriorTileExpandsByHalo)
{
    // Output rows [2,4) need input rows [1,5) for a 3x3 stride-1 pad-1.
    Region out{0, 1, 2, 4, 2, 4};
    Region in = layer_.RequiredInputRegion(input_, out, 8, 8);
    EXPECT_EQ(in.r0, 1);
    EXPECT_EQ(in.r1, 5);
    EXPECT_EQ(in.c0, 1);
    EXPECT_EQ(in.c1, 5);
}

TEST_F(ConvRegionTest, BorderTileClipsAtEdges)
{
    Region out{0, 1, 0, 2, 0, 8};
    Region in = layer_.RequiredInputRegion(input_, out, 8, 8);
    EXPECT_EQ(in.r0, 0);   // pad clipped
    EXPECT_EQ(in.r1, 3);
    EXPECT_EQ(in.c0, 0);
    EXPECT_EQ(in.c1, 8);
}

TEST_F(ConvRegionTest, StrideTwoHalvesRows)
{
    Layer l("conv_s2", LayerKind::kConv, 16, 4, 4);
    l.setWindow(WindowParams{3, 3, 2, 2, 1, 1});
    InputRef in_ref{0, AccessPattern::kWindow, {}};
    Region out{0, 1, 0, 2, 0, 4};
    Region in = l.RequiredInputRegion(in_ref, out, 8, 8);
    EXPECT_EQ(in.r0, 0);
    EXPECT_EQ(in.r1, 4);  // (2-1)*2 - 1 + 3 = 4
}

TEST_F(ConvRegionTest, FullPatternTakesEverything)
{
    InputRef full{0, AccessPattern::kFull, {}};
    Region out{0, 2, 3, 4, 0, 1};
    Region in = layer_.RequiredInputRegion(full, out, 10, 12);
    EXPECT_EQ(in, (Region{0, 2, 0, 10, 0, 12}));
}

TEST_F(ConvRegionTest, RowAlignedIdentity)
{
    InputRef row{0, AccessPattern::kRowAligned, {}};
    Region out{1, 3, 2, 5, 0, 8};
    Region in = layer_.RequiredInputRegion(row, out, 8, 8);
    EXPECT_EQ(in, out);
}

TEST_F(ConvRegionTest, EmptyOutputYieldsEmptyInput)
{
    Region out{};
    EXPECT_TRUE(layer_.RequiredInputRegion(input_, out, 8, 8).Empty());
}

TEST(Layer, OpsAndBytesAccounting)
{
    Layer l("conv", LayerKind::kConv, 32, 10, 10);
    l.setOpsPerElement(2 * 16 * 9);  // C=16, 3x3
    l.setWeightBytes(32 * 16 * 9);
    Region full = l.FullRegion(2);
    EXPECT_EQ(l.OpsForRegion(full), 2LL * 10 * 10 * 32 * 2 * 16 * 9);
    EXPECT_EQ(l.OutputBytes(full), 2LL * 10 * 10 * 32);
    EXPECT_EQ(l.PerSampleOutputBytes(), 100LL * 32);
}

TEST(Layer, InputBytesUsesProducerChannels)
{
    Layer l("eltwise", LayerKind::kEltwise, 8, 4, 4);
    InputRef ref{0, AccessPattern::kRowAligned, {}};
    Region out{0, 1, 0, 4, 0, 4};
    EXPECT_EQ(l.InputBytes(ref, out, 8, 4, 4), 16LL * 8);
}

TEST(Graph, ConsumersAndEdges)
{
    GraphBuilder b("t", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 8, 8}, 8, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 8, 3, 1, 1);
    LayerId add = b.Eltwise("add", {c1, c2});
    Graph g = b.Take();

    EXPECT_EQ(g.NumLayers(), 3);
    EXPECT_EQ(g.Consumers(c1).size(), 2u);
    EXPECT_EQ(g.Consumers(c2).size(), 1u);
    EXPECT_EQ(g.Consumers(add).size(), 0u);
    EXPECT_EQ(g.AllEdges().size(), 3u);
}

TEST(Graph, ValidOrderChecks)
{
    GraphBuilder b("t", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 8, 8}, 8, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 8, 3, 1, 1);
    LayerId c3 = b.Conv("c3", c1, 8, 3, 1, 1);
    Graph g = b.Take();

    EXPECT_TRUE(g.IsValidOrder({c1, c2, c3}));
    EXPECT_TRUE(g.IsValidOrder({c1, c3, c2}));  // c2, c3 independent
    EXPECT_FALSE(g.IsValidOrder({c2, c1, c3}));
    EXPECT_FALSE(g.IsValidOrder({c1, c2}));        // wrong arity
    EXPECT_FALSE(g.IsValidOrder({c1, c1, c2}));    // duplicate
}

TEST(Graph, Totals)
{
    GraphBuilder b("t", 2);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 8, 8}, 8, 3, 1, 1);
    (void)c1;
    Graph g = b.Take();
    // ops: 2 * batch(2) * 8x8 sites * 8 channels * (2*3*9)
    EXPECT_EQ(g.TotalOps(), 2LL * 64 * 8 * (2 * 3 * 9));
    EXPECT_EQ(g.TotalWeightBytes(), 8LL * 3 * 9);
    EXPECT_EQ(g.TotalFmapBytes(), 2LL * 64 * 8);
    EXPECT_EQ(g.TotalMatrixOps(), g.TotalOps());
}

TEST(GraphBuilder, ConvShapeMath)
{
    GraphBuilder b("t", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 224, 224}, 64, 7, 2, 3);
    EXPECT_EQ(b.H(c1), 112);
    EXPECT_EQ(b.W(c1), 112);
    LayerId p = b.Pool("p", c1, 3, 2, 1);
    EXPECT_EQ(b.H(p), 56);
    LayerId g = b.GlobalPool("g", p);
    EXPECT_EQ(b.H(g), 1);
    EXPECT_EQ(b.C(g), 64);
}

TEST(GraphBuilder, ConcatSumsChannels)
{
    GraphBuilder b("t", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 8, 8}, 8, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 16, 1, 1, 0);
    LayerId c3 = b.Conv("c3", c1, 24, 1, 1, 0);
    LayerId cat = b.Concat("cat", {c2, c3});
    EXPECT_EQ(b.C(cat), 40);
}

TEST(GraphBuilder, MatmulOperandPatterns)
{
    GraphBuilder b("t", 1);
    LayerId q = b.InputConv("q", ExtShape{3, 8, 8}, 8, 1, 1, 0);
    LayerId k = b.Conv("k", q, 8, 1, 1, 0);
    LayerId mm = b.Matmul("mm", q, k, 8, 64);
    Graph g = b.Take();
    const Layer &l = g.layer(mm);
    ASSERT_EQ(l.inputs().size(), 2u);
    EXPECT_EQ(l.inputs()[0].pattern, AccessPattern::kRowAligned);
    EXPECT_EQ(l.inputs()[1].pattern, AccessPattern::kFull);
    EXPECT_EQ(l.opsPerElement(), 16);
}

TEST(GraphBuilder, DepthwiseConvWeights)
{
    GraphBuilder b("t", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 8, 8}, 16, 3, 1, 1);
    LayerId dw = b.Conv("dw", c1, 16, 3, 1, 1, /*groups=*/16);
    Graph g = b.Take();
    EXPECT_EQ(g.layer(dw).kind(), LayerKind::kDepthwise);
    EXPECT_EQ(g.layer(dw).weightBytes(), 16LL * 9);
    EXPECT_EQ(g.layer(dw).opsPerElement(), 2LL * 9);
}

}  // namespace
}  // namespace soma
