/**
 * @file
 * DLSA heuristic tests: clamping of double-buffer/lazy/slack variants,
 * the buffer-vs-overlap trade of deeper prefetch leads, and Cocco's
 * group-head weight bursts.
 */
#include <gtest/gtest.h>

#include "corearray/core_array.h"
#include "notation/parser.h"
#include "search/dlsa_heuristics.h"
#include "sim/evaluator.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

struct Fix {
    Graph graph;
    HardwareConfig hw;
    ParsedSchedule parsed;
};

/** A 6-conv chain fused into one LG with T=2: plenty of weight loads. */
Fix
MakeFix()
{
    GraphBuilder b("chain", 1);
    LayerId x = b.InputConv("c0", ExtShape{3, 32, 32}, 48, 3, 1, 1);
    for (int i = 1; i < 6; ++i)
        x = b.Conv("c" + std::to_string(i), x, 48, 3, 1, 1);
    b.MarkOutput(x);
    Fix f{b.Take(), EdgeAccelerator(), {}};
    CoreArrayEvaluator eval(f.graph, f.hw);
    LfaEncoding lfa;
    lfa.order = f.graph.TopoOrder();
    lfa.tiling = {2};
    f.parsed = ParseLfa(f.graph, lfa, eval);
    EXPECT_TRUE(f.parsed.valid);
    return f;
}

TEST(DlsaHeuristics, AllVariantsValid)
{
    Fix f = MakeFix();
    for (const DlsaEncoding &d :
         {MakeDoubleBufferDlsa(f.parsed), MakeLazyDlsa(f.parsed),
          MakeSlackDlsa(f.parsed, 8, 4)}) {
        EXPECT_TRUE(DlsaValid(f.parsed, d));
    }
}

TEST(DlsaHeuristics, PeakBufferMonotoneInLead)
{
    // Deeper prefetch never shrinks buffer occupancy.
    Fix f = MakeFix();
    Bytes prev = 0;
    for (TilePos lead : {0, 1, 2, 4, 8}) {
        Bytes peak =
            PeakBufferUsage(f.parsed, MakeSlackDlsa(f.parsed, lead, 2));
        EXPECT_GE(peak, prev) << "lead " << lead;
        prev = peak;
    }
}

TEST(DlsaHeuristics, DeeperLeadHidesMoreLoads)
{
    // With an uncongested buffer, deeper leads can only help latency
    // (loads start earlier; the serial DRAM order is unchanged).
    Fix f = MakeFix();
    Ops ops = f.graph.TotalOps();
    double prev = 1e30;
    for (TilePos lead : {0, 1, 4, 16}) {
        EvalReport r = EvaluateSchedule(f.graph, f.hw, f.parsed,
                                        MakeSlackDlsa(f.parsed, lead, 4),
                                        f.hw.gbuf_bytes, ops);
        ASSERT_TRUE(r.valid) << "lead " << lead;
        EXPECT_LE(r.latency, prev + 1e-12) << "lead " << lead;
        prev = r.latency;
    }
}

TEST(DlsaHeuristics, SlackClampsToLegalRanges)
{
    Fix f = MakeFix();
    DlsaEncoding d = MakeSlackDlsa(f.parsed, 1000, 1000);
    for (int j = 0; j < f.parsed.NumTensors(); ++j) {
        EXPECT_GE(d.free_point[j], f.parsed.FreePointMin(j));
        EXPECT_LE(d.free_point[j], f.parsed.FreePointMax(j));
    }
    EXPECT_TRUE(DlsaValid(f.parsed, d));
}

TEST(DlsaHeuristics, LazyIsTightestFeasible)
{
    Fix f = MakeFix();
    DlsaEncoding lazy = MakeLazyDlsa(f.parsed);
    for (int j = 0; j < f.parsed.NumTensors(); ++j) {
        const DramTensor &t = f.parsed.tensors[j];
        if (t.IsLoad()) {
            EXPECT_EQ(lazy.free_point[j], t.first_use);
        } else {
            EXPECT_EQ(lazy.free_point[j],
                      std::min<TilePos>(f.parsed.NumTiles(),
                                        t.first_use + 1));
        }
    }
    // Lazy has the smallest peak of all slack variants.
    Bytes lazy_peak = PeakBufferUsage(f.parsed, lazy);
    Bytes db_peak =
        PeakBufferUsage(f.parsed, MakeDoubleBufferDlsa(f.parsed));
    EXPECT_LE(lazy_peak, db_peak);
}

TEST(DlsaHeuristics, CoccoBurstsWeightsAtGroupHead)
{
    // Two LGs: the second LG's weights must have Start just before the
    // LG boundary, not just before their layer.
    GraphBuilder b("twolg", 1);
    LayerId x = b.InputConv("c0", ExtShape{3, 32, 32}, 32, 3, 1, 1);
    for (int i = 1; i < 4; ++i)
        x = b.Conv("c" + std::to_string(i), x, 32, 3, 1, 1);
    b.MarkOutput(x);
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.flc_cuts = {2};
    lfa.dram_cuts = {2};
    lfa.tiling = {1, 1};
    ParseOptions popts{/*lg_resident_weights=*/true};
    ParsedSchedule p = ParseLfa(g, lfa, eval, popts);
    ASSERT_TRUE(p.valid);
    DlsaEncoding d = MakeCoccoDlsa(p);
    for (int j = 0; j < p.NumTensors(); ++j) {
        const DramTensor &t = p.tensors[j];
        if (t.kind != DramTensorKind::kWeight) continue;
        TilePos expected = std::max<TilePos>(0, t.lg_begin - 1);
        EXPECT_EQ(d.free_point[j], expected)
            << t.Label(g) << " should start at its LG head";
    }
    EXPECT_TRUE(DlsaValid(p, d));
}

TEST(DlsaHeuristics, CoccoWeightsHeldLongerThanSomaWeights)
{
    // Identical LFA, both semantics: Cocco's parse must show a larger
    // or equal weight-holding peak.
    GraphBuilder b("hold", 1);
    LayerId x = b.InputConv("c0", ExtShape{3, 16, 16}, 64, 3, 1, 1);
    for (int i = 1; i < 4; ++i)
        x = b.Conv("c" + std::to_string(i), x, 64, 3, 1, 1);
    b.MarkOutput(x);
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.tiling = {2};
    ParsedSchedule soma_p = ParseLfa(g, lfa, eval);
    ParsedSchedule cocco_p =
        ParseLfa(g, lfa, eval, ParseOptions{/*lg_resident_weights=*/true});
    ASSERT_TRUE(soma_p.valid);
    ASSERT_TRUE(cocco_p.valid);
    Bytes soma_peak =
        PeakBufferUsage(soma_p, MakeDoubleBufferDlsa(soma_p));
    Bytes cocco_peak = PeakBufferUsage(cocco_p, MakeCoccoDlsa(cocco_p));
    EXPECT_GT(cocco_peak, soma_peak);
}

}  // namespace
}  // namespace soma
