/**
 * @file
 * Timeline evaluator tests: exact hand-computed schedules, prefetch
 * overlap, store-End stalls, deadlock detection, buffer budgeting, and
 * report invariants.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "corearray/core_array.h"
#include "search/dlsa_heuristics.h"
#include "sim/evaluator.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

constexpr double kEps = 1e-12;

Graph
MakeSingle()
{
    GraphBuilder b("one", 1);
    LayerId c = b.InputConv("X", ExtShape{8, 16, 16}, 8, 3, 1, 1);
    b.MarkOutput(c);
    return b.Take();
}

Graph
MakeChain(int layers, int channels = 16, int dim = 32)
{
    GraphBuilder b("chain", 1);
    LayerId prev = b.InputConv("L0", ExtShape{8, dim, dim}, channels, 3, 1,
                               1);
    for (int i = 1; i < layers; ++i) {
        prev = b.Conv("L" + std::to_string(i), prev, channels, 3, 1, 1);
    }
    b.MarkOutput(prev);
    return b.Take();
}

TEST(Evaluator, SingleLayerExactTimeline)
{
    Graph g = MakeSingle();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa = MakeUnfusedLfa(g, {1});
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid);
    ASSERT_EQ(p.NumTiles(), 1);
    ASSERT_EQ(p.NumTensors(), 3);  // W, I, O

    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    EvalReport r = EvaluateSchedule(g, hw, p, dlsa, hw.gbuf_bytes,
                                    g.TotalOps());
    ASSERT_TRUE(r.valid) << r.why_invalid;

    // Serial: load W, load I, compute, store O.
    double t_w = hw.DramSeconds(p.tensors[0].bytes);
    double t_i = hw.DramSeconds(p.tensors[1].bytes);
    double t_c = p.tiles[0].cost.seconds;
    double t_o = hw.DramSeconds(p.tensors[2].bytes);
    EXPECT_NEAR(r.latency, t_w + t_i + t_c + t_o, kEps);
    EXPECT_NEAR(r.compute_busy, t_c, kEps);
    EXPECT_NEAR(r.dram_busy, t_w + t_i + t_o, kEps);
}

TEST(Evaluator, PrefetchOverlapsComputeExactly)
{
    Graph g = MakeChain(2);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    // Fused into one LG: tensors are WA, IA, WB, OB.
    LfaEncoding lfa;
    lfa.order = {0, 1};
    lfa.tiling = {1};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid);
    ASSERT_EQ(p.NumTensors(), 4);

    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    EvalReport r = EvaluateSchedule(g, hw, p, dlsa, hw.gbuf_bytes,
                                    g.TotalOps());
    ASSERT_TRUE(r.valid);

    double t_wa = hw.DramSeconds(p.tensors[0].bytes);
    double t_ia = hw.DramSeconds(p.tensors[1].bytes);
    double t_wb = hw.DramSeconds(p.tensors[2].bytes);
    double t_a = p.tiles[0].cost.seconds;
    double t_b = p.tiles[1].cost.seconds;
    double t_ob = hw.DramSeconds(p.tensors[3].bytes);

    // WB (Start 0) streams during A's compute; B starts at
    // max(A done, WB done); OB follows.
    double a_start = t_wa + t_ia;
    double b_start = std::max(a_start + t_a, a_start + t_wb);
    EXPECT_NEAR(r.latency, b_start + t_b + t_ob, kEps);
}

TEST(Evaluator, LazyLoadingStallsMoreThanDoubleBuffer)
{
    Graph g = MakeChain(4);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3};
    lfa.tiling = {1};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid);

    EvalReport db = EvaluateSchedule(g, hw, p, MakeDoubleBufferDlsa(p),
                                     hw.gbuf_bytes, g.TotalOps());
    EvalReport lazy = EvaluateSchedule(g, hw, p, MakeLazyDlsa(p),
                                       hw.gbuf_bytes, g.TotalOps());
    ASSERT_TRUE(db.valid);
    ASSERT_TRUE(lazy.valid);
    EXPECT_LT(db.latency, lazy.latency);
    // Same data moves either way; energy is identical.
    EXPECT_NEAR(db.EnergyJ(), lazy.EnergyJ(), 1e-15);
}

TEST(Evaluator, EarlierWeightStartRemovesStall)
{
    // The paper's WB example (Fig. 4b): pulling a weight's Start one
    // tile earlier removes the stall before its layer.
    Graph g = MakeChain(3);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = {0, 1, 2};
    lfa.tiling = {1};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid);

    DlsaEncoding late = MakeLazyDlsa(p);
    DlsaEncoding early = late;
    for (int j = 0; j < p.NumTensors(); ++j) {
        if (p.tensors[j].kind == DramTensorKind::kWeight)
            early.free_point[j] = std::max<TilePos>(
                0, p.tensors[j].first_use - 1);
    }
    EvalReport r_late = EvaluateSchedule(g, hw, p, late, hw.gbuf_bytes,
                                         g.TotalOps());
    EvalReport r_early = EvaluateSchedule(g, hw, p, early, hw.gbuf_bytes,
                                          g.TotalOps());
    ASSERT_TRUE(r_late.valid);
    ASSERT_TRUE(r_early.valid);
    EXPECT_LT(r_early.latency, r_late.latency);
}

TEST(Evaluator, StoreEndConstraintStallsNextTile)
{
    // Two unfused layers: A's ofmap store with End at B's tile forces B
    // to wait for the store; End one tile later does not.
    Graph g = MakeChain(2);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa = MakeUnfusedLfa(g, {1, 1});
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid);

    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    int store_a = -1;
    for (int j = 0; j < p.NumTensors(); ++j) {
        if (p.tensors[j].kind == DramTensorKind::kOfmap &&
            p.tensors[j].layer == 0) {
            store_a = j;
        }
    }
    ASSERT_GE(store_a, 0);

    DlsaEncoding tight = dlsa;
    tight.free_point[store_a] = 1;  // must finish before tile B
    DlsaEncoding slack = dlsa;
    slack.free_point[store_a] = 2;

    EvalReport r_tight = EvaluateSchedule(g, hw, p, tight, hw.gbuf_bytes,
                                          g.TotalOps());
    EvalReport r_slack = EvaluateSchedule(g, hw, p, slack, hw.gbuf_bytes,
                                          g.TotalOps());
    ASSERT_TRUE(r_tight.valid);
    ASSERT_TRUE(r_slack.valid);
    EXPECT_LE(r_slack.latency, r_tight.latency);
    // In the tight case, B's start is at or after the store's finish.
    EXPECT_GE(r_tight.tile_times[1].start + kEps,
              r_tight.tensor_times[store_a].finish);
}

TEST(Evaluator, DeadlockedOrderDetected)
{
    Graph g = MakeChain(2);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = {0, 1};
    lfa.tiling = {1};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid);

    // Order WB (forced Start 1) before WA/IA: WB waits for tile 0, which
    // waits for its own loads stuck behind WB.
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    int wb = -1;
    for (int j = 0; j < p.NumTensors(); ++j) {
        if (p.tensors[j].kind == DramTensorKind::kWeight &&
            p.tensors[j].layer == 1) {
            wb = j;
        }
    }
    ASSERT_GE(wb, 0);
    dlsa.free_point[wb] = 1;
    // Move WB to the front of the order.
    auto it = std::find(dlsa.order.begin(), dlsa.order.end(), wb);
    std::rotate(dlsa.order.begin(), it, it + 1);
    ASSERT_TRUE(DlsaValid(p, dlsa));  // structurally fine...
    EvalReport r = EvaluateSchedule(g, hw, p, dlsa, hw.gbuf_bytes,
                                    g.TotalOps());
    EXPECT_FALSE(r.valid);  // ...but undispatchable
    EXPECT_NE(r.why_invalid.find("deadlock"), std::string::npos);
}

TEST(Evaluator, BufferBudgetEnforced)
{
    Graph g = MakeChain(3);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = {0, 1, 2};
    lfa.tiling = {1};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);

    EvalReport ok = EvaluateSchedule(g, hw, p, dlsa, hw.gbuf_bytes,
                                     g.TotalOps());
    ASSERT_TRUE(ok.valid);
    EXPECT_EQ(ok.peak_buffer, PeakBufferUsage(p, dlsa));
    EXPECT_GE(static_cast<double>(ok.peak_buffer), ok.avg_buffer);

    EvalReport tiny = EvaluateSchedule(g, hw, p, dlsa, ok.peak_buffer - 1,
                                       g.TotalOps());
    EXPECT_FALSE(tiny.valid);
    EXPECT_EQ(tiny.why_invalid, "buffer overflow");
    EXPECT_EQ(tiny.peak_buffer, ok.peak_buffer);

    EvalReport exact = EvaluateSchedule(g, hw, p, dlsa, ok.peak_buffer,
                                        g.TotalOps());
    EXPECT_TRUE(exact.valid);
}

TEST(Evaluator, UtilizationInvariants)
{
    Graph g = MakeChain(5);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3, 4};
    lfa.tiling = {2};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    EvalReport r = EvaluateSchedule(g, hw, p, dlsa, hw.gbuf_bytes,
                                    g.TotalOps());
    ASSERT_TRUE(r.valid);

    EXPECT_GT(r.compute_util, 0.0);
    EXPECT_LE(r.compute_util, r.theory_max_util + 1e-9);
    EXPECT_GE(r.latency, r.compute_busy - kEps);
    EXPECT_GE(r.latency, r.dram_busy - kEps);
    EXPECT_LE(r.dram_util, 1.0 + 1e-9);
    EXPECT_GT(r.EnergyJ(), 0.0);
    EXPECT_GT(r.core_energy_j, 0.0);
    EXPECT_GT(r.dram_energy_j, 0.0);
}

TEST(Evaluator, DramEnergyMatchesBytes)
{
    Graph g = MakeSingle();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa = MakeUnfusedLfa(g, {1});
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    EvalReport r = EvaluateSchedule(g, hw, p, dlsa, hw.gbuf_bytes,
                                    g.TotalOps());
    ASSERT_TRUE(r.valid);
    double expected = static_cast<double>(p.TotalDramBytes()) *
                      hw.energy.dram_pj_per_byte * 1e-12;
    EXPECT_NEAR(r.dram_energy_j, expected, expected * 1e-9);
    EXPECT_EQ(r.dram_bytes, p.TotalDramBytes());
}

TEST(Evaluator, CostFunction)
{
    EvalReport r;
    r.valid = false;
    EXPECT_TRUE(std::isinf(r.Cost()));
    r.valid = true;
    r.latency = 2.0;
    r.core_energy_j = 3.0;
    r.dram_energy_j = 1.0;
    EXPECT_NEAR(r.Cost(1, 1), 8.0, kEps);
    EXPECT_NEAR(r.Cost(2, 1), 32.0, kEps);
    EXPECT_NEAR(r.Cost(0, 1), 2.0, kEps);
}

TEST(Evaluator, TimelineMonotoneAndConsistent)
{
    Graph g = MakeChain(4);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = {0, 1, 2, 3};
    lfa.tiling = {2};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    EvalReport r = EvaluateSchedule(g, hw, p, dlsa, hw.gbuf_bytes,
                                    g.TotalOps());
    ASSERT_TRUE(r.valid);

    for (int i = 1; i < p.NumTiles(); ++i) {
        EXPECT_GE(r.tile_times[i].start + kEps,
                  r.tile_times[i - 1].finish);
    }
    for (int rix = 1; rix < p.NumTensors(); ++rix) {
        EXPECT_GE(r.tensor_times[dlsa.order[rix]].start + kEps,
                  r.tensor_times[dlsa.order[rix - 1]].finish);
    }
    // Loads finish before their consuming tile starts.
    for (int i = 0; i < p.NumTiles(); ++i) {
        for (int j : p.tiles[i].need_loads) {
            EXPECT_LE(r.tensor_times[j].finish,
                      r.tile_times[i].start + kEps);
        }
    }
}

}  // namespace
}  // namespace soma
