/**
 * @file
 * Incremental LFA parse tests: the group-memoized ParseLfaInto (with
 * and without a shared TilingCache) must be bit-identical to the
 * from-scratch parse over randomized LFA mutation chains — every tile,
 * tensor and on-chip interval, and the downstream EvalReport — and the
 * dirty set must actually shrink to the mutated groups.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "search/dlsa_heuristics.h"
#include "search/lfa_stage.h"
#include "sim/eval_context.h"
#include "sim/evaluator.h"
#include "tiling/tiling_cache.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

/** A residual-ish graph: branches give order mutations room to move. */
Graph
MakeBranchy()
{
    GraphBuilder b("branchy", 1);
    LayerId stem = b.InputConv("stem", ExtShape{3, 32, 32}, 32, 3, 1, 1);
    LayerId a1 = b.Conv("a1", stem, 32, 3, 1, 1);
    LayerId a2 = b.Conv("a2", a1, 32, 3, 1, 1);
    LayerId skip = b.Eltwise("skip", {stem, a2});
    LayerId b1 = b.Conv("b1", skip, 64, 3, 2, 1);
    LayerId b2 = b.Conv("b2", b1, 64, 3, 1, 1);
    LayerId c1 = b.Conv("c1", skip, 64, 1, 2, 0);
    LayerId join = b.Eltwise("join", {b2, c1});
    LayerId head = b.Conv("head", join, 96, 3, 1, 1);
    b.MarkOutput(head);
    return b.Take();
}

void
ExpectReportsIdentical(const EvalReport &a, const EvalReport &b)
{
    ASSERT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.why_invalid, b.why_invalid);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.core_energy_j, b.core_energy_j);
    EXPECT_EQ(a.dram_energy_j, b.dram_energy_j);
    EXPECT_EQ(a.peak_buffer, b.peak_buffer);
    EXPECT_EQ(a.avg_buffer, b.avg_buffer);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    EXPECT_EQ(a.num_tiles, b.num_tiles);
    EXPECT_EQ(a.num_tensors, b.num_tensors);
}

/**
 * Random LFA mutation chain. Every candidate is parsed through the
 * incremental context (warm group memo) and from scratch; both parses
 * and the resulting double-buffer evaluations must match bit for bit.
 */
void
RunParseWalk(bool with_tiling_cache, std::uint64_t seed, int steps)
{
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    const Ops ops = g.TotalOps();

    EvalContext ctx;
    if (with_tiling_cache)
        ctx.set_tiling_cache(std::make_shared<TilingCache>());

    LfaEncoding current = MakeInitialLfa(g, hw, 16);
    Rng rng(seed);
    LfaEncoding cand;
    int parsed_valid = 0;
    for (int i = 0; i < steps; ++i) {
        if (!MutateLfaEncoding(g, current, &cand, 16, rng)) continue;
        const ParsedSchedule &inc = ctx.Parse(g, cand, ce);
        // Reference: fresh scratch, no memo, no shared cache.
        ParsedSchedule full = ParseLfa(g, cand, ce);
        ASSERT_TRUE(ParsedSchedulesIdentical(inc, full))
            << "step " << i << ": " << cand.ToString(g);
        if (inc.valid) {
            ++parsed_valid;
            DlsaEncoding dlsa = MakeDoubleBufferDlsa(inc);
            const EvalReport &inc_rep =
                ctx.Evaluate(g, hw, inc, dlsa, hw.gbuf_bytes, ops);
            EvalReport full_rep =
                EvaluateSchedule(g, hw, full, dlsa, hw.gbuf_bytes, ops);
            ExpectReportsIdentical(inc_rep, full_rep);
            if (rng.Flip()) current = cand;
        }
    }
    EXPECT_GT(parsed_valid, steps / 4);
}

TEST(IncrementalParse, MatchesFullParseOverMutationChain)
{
    RunParseWalk(/*with_tiling_cache=*/false, 11, 300);
}

TEST(IncrementalParse, MatchesFullParseWithSharedTilingCache)
{
    RunParseWalk(/*with_tiling_cache=*/true, 23, 300);
}

TEST(IncrementalParse, CrossCheckModeAcceptsTheWalk)
{
    // ParseOptions::cross_check re-parses from scratch inside
    // ParseLfaInto and aborts on divergence: surviving a randomized
    // walk is the debug-mode proof the bench/CI path relies on.
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    EvalContext ctx;
    ctx.set_tiling_cache(std::make_shared<TilingCache>());
    ParseOptions popts;
    popts.cross_check = true;

    LfaEncoding current = MakeInitialLfa(g, hw, 16);
    Rng rng(37);
    LfaEncoding cand;
    for (int i = 0; i < 120; ++i) {
        if (!MutateLfaEncoding(g, current, &cand, 16, rng)) continue;
        const ParsedSchedule &p = ctx.Parse(g, cand, ce, popts);
        if (p.valid && rng.Flip()) current = cand;
    }
}

TEST(IncrementalParse, DirtySetShrinksToMutatedGroups)
{
    // A multi-group scheme: re-parsing after single-group edits must
    // reuse every untouched group's block.
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);

    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.flc_cuts = {2, 4, 6};
    lfa.dram_cuts = {4};
    lfa.tiling = {2, 2, 2, 2};

    ParseScratch scratch;
    ParsedSchedule out;
    ParseLfaInto(g, lfa, ce, ParseOptions{}, &scratch, &out);
    ASSERT_TRUE(out.valid);
    EXPECT_EQ(scratch.last_dirty_groups, 4);
    EXPECT_EQ(scratch.last_clean_groups, 0);

    // Same LFA again: everything clean.
    ParseLfaInto(g, lfa, ce, ParseOptions{}, &scratch, &out);
    EXPECT_EQ(scratch.last_dirty_groups, 0);
    EXPECT_EQ(scratch.last_clean_groups, 4);

    // Tiling scale of group 1: only that group re-derives.
    LfaEncoding scaled = lfa;
    scaled.tiling[1] = 4;
    ParseLfaInto(g, scaled, ce, ParseOptions{}, &scratch, &out);
    ASSERT_TRUE(out.valid);
    EXPECT_EQ(scratch.last_dirty_groups, 1);
    EXPECT_EQ(scratch.last_clean_groups, 3);

    // DRAM-cut toggle: LG structure is not part of any group's
    // signature, so nothing re-derives.
    LfaEncoding cut = lfa;
    cut.dram_cuts = {2, 4};
    ParseLfaInto(g, cut, ce, ParseOptions{}, &scratch, &out);
    ASSERT_TRUE(out.valid);
    EXPECT_EQ(scratch.last_dirty_groups, 0);
    EXPECT_EQ(scratch.last_clean_groups, 4);

    // Deleting an FLC merges two groups into one new signature: one
    // dirty group, the other two untouched.
    LfaEncoding merged = lfa;
    merged.flc_cuts = {2, 6};
    merged.dram_cuts.clear();
    merged.tiling = {2, 2, 2};
    ParseLfaInto(g, merged, ce, ParseOptions{}, &scratch, &out);
    ASSERT_TRUE(out.valid);
    EXPECT_EQ(scratch.last_dirty_groups, 1);
    EXPECT_EQ(scratch.last_clean_groups, 2);
}

/**
 * Move one layer to another dependency-legal position *within its own
 * FLG* — the sink-set-preserving subset of "Change Computing Order".
 * Returns false when no such move was found.
 */
bool
MutateOrderWithinGroup(const Graph &g, LfaEncoding *lfa, Rng &rng)
{
    const int n = static_cast<int>(lfa->order.size());
    std::vector<int> pos(n);
    for (int i = 0; i < n; ++i) pos[lfa->order[i]] = i;
    for (int attempt = 0; attempt < 16; ++attempt) {
        const int gidx = rng.UniformInt(0, lfa->NumFlgs() - 1);
        int begin, end;
        lfa->FlgRange(gidx, &begin, &end);
        if (end - begin < 2) continue;
        const int p = rng.UniformInt(begin, end - 1);
        const LayerId id = lfa->order[p];
        int lo = begin, hi = end - 1;
        for (const InputRef &in : g.layer(id).inputs()) {
            if (in.producer != kNoLayer)
                lo = std::max(lo, pos[in.producer] + 1);
        }
        for (const Edge &e : g.Consumers(id))
            hi = std::min(hi, pos[e.consumer] - 1);
        if (lo >= hi) continue;
        int q = rng.UniformInt(lo, hi - 1);
        if (q >= p) ++q;  // skip the current position
        if (q == p) continue;
        if (q < p) {
            std::rotate(lfa->order.begin() + q, lfa->order.begin() + p,
                        lfa->order.begin() + p + 1);
        } else {
            std::rotate(lfa->order.begin() + p,
                        lfa->order.begin() + p + 1,
                        lfa->order.begin() + q + 1);
        }
        return true;
    }
    return false;
}

TEST(IncrementalParse, IntraGroupOrderMoveIsAMemoHit)
{
    // The sink-set signature coarsening: an order move that stays
    // inside one group leaves every group's member set (hence sink set
    // and tiling) unchanged, so nothing re-derives — the moved group's
    // block is re-indexed to the new order.
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);

    // Two groups; the second ({b1, b2, c1, join, head}) admits legal
    // interior moves (c1 only depends on skip, in the first group).
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.flc_cuts = {4};
    lfa.dram_cuts = {4};
    lfa.tiling = {2, 2};

    ParseScratch scratch;
    ParsedSchedule out;
    ParseLfaInto(g, lfa, ce, ParseOptions{}, &scratch, &out);
    ASSERT_TRUE(out.valid);
    ASSERT_EQ(scratch.last_dirty_groups, 2);

    LfaEncoding moved = lfa;
    Rng rng(5);
    ASSERT_TRUE(MutateOrderWithinGroup(g, &moved, rng));
    ASSERT_NE(moved.order, lfa.order);
    ParseLfaInto(g, moved, ce, ParseOptions{}, &scratch, &out);
    ASSERT_TRUE(out.valid);
    EXPECT_EQ(scratch.last_dirty_groups, 0);
    EXPECT_EQ(scratch.last_clean_groups, 2);
    EXPECT_EQ(scratch.last_remapped_groups, 1);

    // Re-indexing must be invisible in the output: bit-identical to a
    // from-scratch parse of the moved LFA.
    ParsedSchedule full = ParseLfa(g, moved, ce);
    EXPECT_TRUE(ParsedSchedulesIdentical(out, full));
}

TEST(IncrementalParse, SinkSetSignatureSurvivesRandomizedOrderMoves)
{
    // Property test for the coarsened signature: over a randomized
    // chain of sink-set-preserving moves, every parse must be (a) a
    // full group-memo hit — zero dirty groups — and (b) bit-identical
    // to a from-scratch parse, enforced twice: by the explicit
    // comparison below and by cross_check (the SOMA_LFA_CROSS_CHECK=1
    // debug mode), which aborts the process on any divergence.
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    ParseOptions popts;
    popts.cross_check = true;

    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.flc_cuts = {4};
    lfa.dram_cuts = {};
    lfa.tiling = {2, 4};

    ParseScratch scratch;
    ParsedSchedule out;
    ParseLfaInto(g, lfa, ce, popts, &scratch, &out);
    ASSERT_TRUE(out.valid);

    Rng rng(91);
    int moves = 0;
    for (int step = 0; step < 150; ++step) {
        LfaEncoding cand = lfa;
        if (!MutateOrderWithinGroup(g, &cand, rng)) continue;
        ++moves;
        ParseLfaInto(g, cand, ce, popts, &scratch, &out);
        ASSERT_TRUE(out.valid) << "step " << step;
        EXPECT_EQ(scratch.last_dirty_groups, 0) << "step " << step;
        EXPECT_EQ(scratch.last_clean_groups, cand.NumFlgs());
        if (cand.order != lfa.order) {
            EXPECT_GE(scratch.last_remapped_groups, 1);
        }
        ParsedSchedule full = ParseLfa(g, cand, ce);
        ASSERT_TRUE(ParsedSchedulesIdentical(out, full))
            << "step " << step << ": " << cand.ToString(g);
        lfa = std::move(cand);
    }
    EXPECT_GT(moves, 30);
}

TEST(IncrementalParse, TilingCacheHitsAcrossContexts)
{
    // Two contexts sharing one TilingCache: the second context's first
    // parse of the same scheme is all cache hits.
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    auto cache = std::make_shared<TilingCache>();

    LfaEncoding lfa = MakeInitialLfa(g, hw, 16);
    EvalContext a, b;
    a.set_tiling_cache(cache);
    b.set_tiling_cache(cache);
    ParsedSchedule pa = a.Parse(g, lfa, ce);
    ASSERT_TRUE(pa.valid);
    const auto cold = cache->stats();
    EXPECT_GT(cold.misses, 0u);
    ParsedSchedule pb = b.Parse(g, lfa, ce);
    const auto warm = cache->stats();
    EXPECT_EQ(warm.misses, cold.misses);
    EXPECT_GT(warm.hits, cold.hits);
    EXPECT_TRUE(ParsedSchedulesIdentical(pa, pb));
}

}  // namespace
}  // namespace soma
