/**
 * @file
 * Property-based tests (parameterized sweeps): invariants that must hold
 * for every tile split, every random walk through the encoding space,
 * and every workload in the zoo.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/cocco.h"
#include "corearray/core_array.h"
#include "search/dlsa_heuristics.h"
#include "search/lfa_stage.h"
#include "search/soma.h"
#include "sim/evaluator.h"
#include "tiling/tiler.h"
#include "workload/graph_builder.h"
#include "workload/models.h"

namespace soma {
namespace {

// ---------------------------------------------------------------------
// Tile split properties: for every (tiles, batch, h, w) combination, a
// feasible split factorizes exactly and its slices partition the fmap.
// ---------------------------------------------------------------------

class TileSplitProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TileSplitProperty, FactorizesAndPartitions)
{
    auto [tiles, batch, h, w] = GetParam();
    auto split = ChooseTileSplit(tiles, batch, h, w);
    if (!split) {
        // Infeasibility must be real: no factorization b*r*c == tiles
        // with b <= batch, r <= h, c <= w exists.
        for (int bb = 1; bb <= std::min(tiles, batch); ++bb) {
            if (tiles % bb) continue;
            int rem = tiles / bb;
            for (int r = 1; r <= std::min(rem, h); ++r) {
                if (rem % r) continue;
                EXPECT_GT(rem / r, w)
                    << "feasible split missed: " << bb << "x" << r << "x"
                    << rem / r;
            }
        }
        return;
    }
    EXPECT_EQ(split->Total(), tiles);
    EXPECT_LE(split->batch, batch);
    EXPECT_LE(split->rows, h);
    EXPECT_LE(split->cols, w);

    std::int64_t covered = 0;
    for (int i = 0; i < tiles; ++i) {
        Region r = CanonicalSlice(*split, i, batch, h, w);
        EXPECT_FALSE(r.Empty());
        covered += r.Sites();
    }
    EXPECT_EQ(covered, static_cast<std::int64_t>(batch) * h * w);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TileSplitProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 64),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(1, 7, 56),
                       ::testing::Values(1, 7, 56)));

// ---------------------------------------------------------------------
// Halo monotonicity: on a conv chain, total computed work never shrinks
// as the Tiling Number grows (recompute model).
// ---------------------------------------------------------------------

class HaloProperty : public ::testing::TestWithParam<int> {};

TEST_P(HaloProperty, RecomputeGrowsWithTiling)
{
    int tiles = GetParam();
    GraphBuilder b("chain", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{8, 32, 32}, 16, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 16, 3, 1, 1);
    LayerId c3 = b.Conv("c3", c2, 16, 3, 1, 1);
    b.MarkOutput(c3);
    Graph g = b.Take();

    FlgTiling t1 = ComputeFlgTiling(g, {0, 1, 2}, 1);
    FlgTiling tn = ComputeFlgTiling(g, {0, 1, 2}, tiles);
    ASSERT_TRUE(t1.valid);
    ASSERT_TRUE(tn.valid);
    auto total_sites = [](const FlgTiling &t) {
        std::int64_t s = 0;
        for (const auto &layer : t.regions)
            for (const Region &r : layer) s += r.Sites();
        return s;
    };
    EXPECT_GE(total_sites(tn), total_sites(t1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, HaloProperty,
                         ::testing::Values(2, 4, 8, 16));

// ---------------------------------------------------------------------
// Random-walk property: any chain of LFA operators starting from the
// initial solution stays structurally valid; every valid parse obeys
// the evaluator's physical invariants.
// ---------------------------------------------------------------------

class EncodingWalkProperty : public ::testing::TestWithParam<int> {};

TEST_P(EncodingWalkProperty, MutationsPreserveValidityAndPhysics)
{
    const int seed = GetParam();
    GraphBuilder b("walknet", 2);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 32, 32}, 16, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 16, 3, 1, 1);
    LayerId add = b.Eltwise("add", {c1, c2});
    LayerId c3 = b.Conv("c3", add, 32, 3, 2, 1);
    LayerId c4 = b.Conv("c4", c3, 32, 3, 1, 1);
    b.MarkOutput(c4);
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    Rng rng(seed);

    LfaEncoding cur = MakeInitialLfa(g, hw, 64);
    int evaluated = 0;
    for (int step = 0; step < 60; ++step) {
        LfaEncoding next;
        if (!MutateLfaEncoding(g, cur, &next, 64, rng)) continue;
        ASSERT_TRUE(next.StructurallyValid(g)) << "step " << step;
        cur = next;

        ParsedSchedule p = ParseLfa(g, cur, eval);
        if (!p.valid) continue;  // infeasible tiling is a legal outcome
        DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
        EvalReport r = EvaluateSchedule(g, hw, p, dlsa, hw.gbuf_bytes,
                                        g.TotalOps());
        if (!r.valid) continue;  // budget overflow is a legal outcome
        ++evaluated;

        EXPECT_GE(r.latency, r.compute_busy - 1e-12);
        EXPECT_GE(r.latency, r.dram_busy - 1e-12);
        EXPECT_LE(r.compute_util, r.theory_max_util + 1e-9);
        EXPECT_GE(static_cast<double>(r.peak_buffer), r.avg_buffer);
        EXPECT_GT(r.EnergyJ(), 0.0);
        EXPECT_EQ(r.peak_buffer, PeakBufferUsage(p, dlsa));
    }
    EXPECT_GT(evaluated, 5) << "walk never reached feasible schemes";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingWalkProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------
// Fusion monotonicity: on a linear chain, DRAM traffic is monotone in
// the number of DRAM cuts.
// ---------------------------------------------------------------------

class FusionProperty : public ::testing::TestWithParam<int> {};

TEST_P(FusionProperty, MoreCutsMoreTraffic)
{
    const int cuts = GetParam();
    GraphBuilder b("chain", 1);
    LayerId prev = b.InputConv("l0", ExtShape{8, 32, 32}, 16, 3, 1, 1);
    for (int i = 1; i < 6; ++i)
        prev = b.Conv("l" + std::to_string(i), prev, 16, 3, 1, 1);
    b.MarkOutput(prev);
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);

    auto traffic_with_cuts = [&](int k) {
        LfaEncoding lfa;
        lfa.order = g.TopoOrder();
        for (int c = 1; c <= k; ++c) {
            lfa.flc_cuts.push_back(c);
            lfa.dram_cuts.push_back(c);
        }
        lfa.tiling.assign(k + 1, 1);
        ParsedSchedule p = ParseLfa(g, lfa, eval);
        EXPECT_TRUE(p.valid);
        return p.TotalDramBytes();
    };

    EXPECT_GE(traffic_with_cuts(cuts), traffic_with_cuts(0));
    if (cuts >= 2) {
        EXPECT_GE(traffic_with_cuts(cuts), traffic_with_cuts(cuts - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusionProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// Zoo-wide parse property: the heuristic initial encoding of every
// model parses, and its tensors satisfy the structural contracts.
// ---------------------------------------------------------------------

class ZooProperty : public ::testing::TestWithParam<const char *> {};

TEST_P(ZooProperty, InitialEncodingParsesWithContracts)
{
    Graph g = BuildModelByName(GetParam(), 1);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa = MakeInitialLfa(g, hw, 64);
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid) << p.why_invalid;

    EXPECT_EQ(p.num_lgs, g.NumLayers());
    EXPECT_GE(p.NumTiles(), g.NumLayers());
    for (int j = 0; j < p.NumTensors(); ++j) {
        const DramTensor &t = p.tensors[j];
        EXPECT_GT(t.bytes, 0);
        EXPECT_GE(t.first_use, 0);
        EXPECT_LT(t.first_use, p.NumTiles());
        if (t.IsLoad()) {
            EXPECT_GT(t.fixed_end, t.first_use);
            EXPECT_LE(t.fixed_end, p.NumTiles());
        }
        EXPECT_LE(p.FreePointMin(j), p.FreePointMax(j));
    }
    for (const TileInfo &tile : p.tiles) {
        EXPECT_FALSE(tile.region.Empty());
        EXPECT_GE(tile.cost.seconds, 0.0);
    }
    // Weight bytes on DRAM tensors must cover the network's weights
    // exactly once.
    Bytes weight_bytes = 0;
    for (const DramTensor &t : p.tensors) {
        if (t.kind == DramTensorKind::kWeight) weight_bytes += t.bytes;
    }
    EXPECT_EQ(weight_bytes, g.TotalWeightBytes());
}

INSTANTIATE_TEST_SUITE_P(Models, ZooProperty,
                         ::testing::Values("resnet50", "ires", "randwire",
                                           "gpt2s-prefill",
                                           "gpt2s-decode"));

// ---------------------------------------------------------------------
// Cross-scheme property: for every model, SoMa's searched scheme never
// moves more DRAM bytes than the unfused baseline.
// ---------------------------------------------------------------------

class TrafficProperty : public ::testing::TestWithParam<const char *> {};

TEST_P(TrafficProperty, SearchNeverAddsDramTraffic)
{
    Graph g = BuildModelByName(GetParam(), 1);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding init = MakeInitialLfa(g, hw, 64);
    ParsedSchedule p0 = ParseLfa(g, init, eval);
    ASSERT_TRUE(p0.valid);

    SomaOptions opts = QuickSomaOptions(31);
    SomaSearchResult res = RunSoma(g, hw, opts);
    ASSERT_TRUE(res.report.valid);
    EXPECT_LE(res.report.dram_bytes, p0.TotalDramBytes());
}

INSTANTIATE_TEST_SUITE_P(Models, TrafficProperty,
                         ::testing::Values("resnet50", "randwire"));

}  // namespace
}  // namespace soma
