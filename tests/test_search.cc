/**
 * @file
 * Search engine tests: SA schedule/acceptance math, the generic
 * annealer, LFA/DLSA operators and stages, and the buffer allocator.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "search/buffer_allocator.h"
#include "search/dlsa_heuristics.h"
#include "search/dlsa_stage.h"
#include "search/lfa_stage.h"
#include "search/sa.h"
#include "search/soma.h"
#include "sim/evaluator.h"
#include "workload/graph_builder.h"
#include "workload/models.h"

namespace soma {
namespace {

TEST(Sa, TemperatureSchedule)
{
    SaOptions opts;
    opts.iterations = 100;
    opts.t0 = 0.5;
    opts.alpha = 4.0;
    EXPECT_DOUBLE_EQ(SaTemperature(opts, 0), 0.5);
    double prev = 1e9;
    for (int n = 0; n <= 100; n += 10) {
        double t = SaTemperature(opts, n);
        EXPECT_LT(t, prev);
        prev = t;
    }
    EXPECT_NEAR(SaTemperature(opts, 100), 0.0, 1e-12);
}

TEST(Sa, AcceptRules)
{
    Rng rng(5);
    // Improvements always accepted.
    EXPECT_TRUE(SaAccept(10.0, 9.0, 0.5, false, rng));
    EXPECT_TRUE(SaAccept(10.0, 10.0, 0.5, false, rng));
    // From an invalid state, any valid candidate is accepted.
    double inf = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(SaAccept(inf, 123.0, 0.5, false, rng));
    EXPECT_FALSE(SaAccept(inf, inf, 0.5, false, rng));
    // Invalid candidates are never accepted from a valid state.
    EXPECT_FALSE(SaAccept(10.0, inf, 0.5, false, rng));
    // Greedy tail rejects regressions.
    EXPECT_FALSE(SaAccept(10.0, 11.0, 0.5, true, rng));
    // Zero temperature rejects regressions.
    EXPECT_FALSE(SaAccept(10.0, 11.0, 0.0, false, rng));
}

TEST(Sa, WorseAcceptedWithPaperProbability)
{
    // p = exp((c - c') / (c * T)) with c=10, c'=11, T=0.5 -> e^-0.2.
    Rng rng(7);
    int accepted = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        if (SaAccept(10.0, 11.0, 0.5, false, rng)) ++accepted;
    }
    EXPECT_NEAR(accepted / static_cast<double>(trials), std::exp(-0.2),
                0.02);
}

TEST(Sa, GenericAnnealerSolvesToyProblem)
{
    // Minimize |x - 42| over integers with +-step mutations.
    int state = 500;
    double cost = std::abs(state - 42);
    std::function<bool(const int &, int *, Rng &)> mutate =
        [](const int &cur, int *next, Rng &rng) {
            *next = cur + (rng.Flip() ? 1 : -1) * rng.UniformInt(1, 20);
            return true;
        };
    std::function<double(const int &)> eval = [](const int &s) {
        return std::abs(s - 42.0);
    };
    SaOptions opts;
    opts.iterations = 4000;
    Rng rng(3);
    SaStats stats = RunSa<int>(&state, &cost, mutate, eval, opts, rng);
    EXPECT_LE(cost, 5.0);
    EXPECT_EQ(stats.best_cost, cost);
    EXPECT_GT(stats.accepted, 0);
}

TEST(Sa, BestNeverWorseThanInitial)
{
    int state = 10;
    double cost = 10.0;
    std::function<bool(const int &, int *, Rng &)> mutate =
        [](const int &cur, int *next, Rng &rng) {
            *next = cur + rng.UniformInt(1, 5);  // only gets worse
            return true;
        };
    std::function<double(const int &)> eval = [](const int &s) {
        return static_cast<double>(s);
    };
    SaOptions opts;
    opts.iterations = 200;
    Rng rng(4);
    RunSa<int>(&state, &cost, mutate, eval, opts, rng);
    EXPECT_EQ(state, 10);
    EXPECT_EQ(cost, 10.0);
}

TEST(OrderMutation, PreservesValidity)
{
    Graph g = BuildInceptionResNetV1(1);  // wide DAG: real reordering room
    std::vector<LayerId> order = g.TopoOrder();
    Rng rng(11);
    int moved = 0;
    for (int i = 0; i < 500; ++i) {
        if (MutateOrderMoveLayer(g, &order, rng)) ++moved;
        ASSERT_TRUE(g.IsValidOrder(order)) << "after mutation " << i;
    }
    EXPECT_GT(moved, 100);  // the operator actually does something
}

TEST(OrderMutation, SingleLayerCannotMove)
{
    GraphBuilder b("one", 1);
    b.InputConv("c", ExtShape{3, 8, 8}, 8, 3, 1, 1);
    Graph g = b.Take();
    std::vector<LayerId> order = {0};
    Rng rng(1);
    EXPECT_FALSE(MutateOrderMoveLayer(g, &order, rng));
}

Graph
MakeSearchNet()
{
    GraphBuilder b("searchnet", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 32, 32}, 32, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 32, 3, 1, 1);
    LayerId add = b.Eltwise("add", {c1, c2});
    LayerId c3 = b.Conv("c3", add, 64, 3, 2, 1);
    LayerId c4 = b.Conv("c4", c3, 64, 3, 1, 1);
    LayerId gap = b.GlobalPool("gap", c4);
    LayerId fc = b.FcFull("fc", gap, 10);
    b.MarkOutput(fc);
    return b.Take();
}

TEST(LfaStage, InitialSolutionValidAndUnfused)
{
    Graph g = MakeSearchNet();
    HardwareConfig hw = EdgeAccelerator();
    LfaEncoding lfa = MakeInitialLfa(g, hw, 128);
    EXPECT_TRUE(lfa.StructurallyValid(g));
    EXPECT_EQ(lfa.NumFlgs(), g.NumLayers());
    EXPECT_EQ(lfa.NumLgs(), g.NumLayers());
}

TEST(LfaStage, ImprovesOverInitial)
{
    Graph g = MakeSearchNet();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    Rng rng(9);
    LfaStageOptions opts;
    opts.beta = 30;
    opts.max_iterations = 800;
    LfaStageResult res = RunLfaStage(g, hw, eval, hw.gbuf_bytes, opts, rng);
    ASSERT_TRUE(res.report.valid);
    EXPECT_LE(res.cost, res.stats.initial_cost);
    // Fusion should kick in on this small net: fewer LGs than layers.
    EXPECT_LT(res.report.num_lgs, g.NumLayers());
    EXPECT_LE(res.report.peak_buffer, hw.gbuf_bytes);
}

TEST(LfaStage, RespectsStageBudget)
{
    Graph g = MakeSearchNet();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    Rng rng(9);
    LfaStageOptions opts;
    opts.beta = 20;
    opts.max_iterations = 500;
    Bytes budget = hw.gbuf_bytes / 4;
    LfaStageResult res = RunLfaStage(g, hw, eval, budget, opts, rng);
    if (res.report.valid) {
        EXPECT_LE(res.report.peak_buffer, budget);
    }
}

TEST(DlsaStage, ImprovesOverDoubleBuffer)
{
    // A conv-only chain (the classifier head would force T=1) fused into
    // one LG with T=2: weight loads create stalls for stage 2 to remove.
    GraphBuilder b("chain", 1);
    LayerId x = b.InputConv("c0", ExtShape{3, 32, 32}, 64, 3, 1, 1);
    for (int i = 1; i < 6; ++i)
        x = b.Conv("c" + std::to_string(i), x, 64, 3, 1, 1);
    b.MarkOutput(x);
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.tiling = {2};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    ASSERT_TRUE(p.valid);
    DlsaEncoding init = MakeDoubleBufferDlsa(p);
    double init_cost = EvaluateSchedule(g, hw, p, init, hw.gbuf_bytes,
                                        g.TotalOps()).Cost();

    Rng rng(13);
    DlsaStageOptions opts;
    opts.beta = 30;
    opts.max_iterations = 1500;
    DlsaStageResult res = RunDlsaStage(g, hw, p, init, hw.gbuf_bytes, opts,
                                       rng);
    ASSERT_TRUE(res.report.valid);
    EXPECT_LE(res.cost, init_cost);
    EXPECT_TRUE(DlsaValid(p, res.dlsa));
}

TEST(BufferAllocator, ProducesValidBestScheme)
{
    Graph g = MakeSearchNet();
    HardwareConfig hw = EdgeAccelerator();
    LfaStageOptions lfa_opts;
    lfa_opts.beta = 20;
    lfa_opts.max_iterations = 400;
    DlsaStageOptions dlsa_opts;
    dlsa_opts.beta = 10;
    dlsa_opts.max_iterations = 500;
    BufferAllocatorOptions alloc;
    alloc.max_iterations = 3;
    Rng rng(17);
    SomaSearchResult res = RunBufferAllocatedSearch(g, hw, lfa_opts,
                                                    dlsa_opts, alloc, rng);
    ASSERT_TRUE(res.report.valid);
    ASSERT_TRUE(res.stage1_report.valid);
    EXPECT_GT(res.outer_iterations, 0);
    // Stage 2 never loses to its own starting point.
    EXPECT_LE(res.report.Cost(), res.stage1_report.Cost() + 1e-12);
    EXPECT_LE(res.report.peak_buffer, hw.gbuf_bytes);
    EXPECT_TRUE(res.lfa.StructurallyValid(g));
}

TEST(BufferAllocator, DeterministicForSeed)
{
    Graph g = MakeSearchNet();
    HardwareConfig hw = EdgeAccelerator();
    SomaOptions opts = QuickSomaOptions(21);
    SomaSearchResult a = RunSoma(g, hw, opts);
    SomaSearchResult b = RunSoma(g, hw, opts);
    ASSERT_TRUE(a.report.valid);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
    EXPECT_EQ(a.lfa.order, b.lfa.order);
    EXPECT_EQ(a.lfa.tiling, b.lfa.tiling);
}

TEST(DoubleBuffer, StartsOneTileEarly)
{
    Graph g = MakeSearchNet();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.tiling = {2};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    DlsaEncoding db = MakeDoubleBufferDlsa(p);
    for (int j = 0; j < p.NumTensors(); ++j) {
        const DramTensor &t = p.tensors[j];
        if (t.IsLoad()) {
            EXPECT_EQ(db.free_point[j],
                      std::max<TilePos>(0, t.first_use - 1));
        } else {
            EXPECT_EQ(db.free_point[j],
                      std::min<TilePos>(p.NumTiles(), t.first_use + 2));
        }
    }
    EXPECT_TRUE(DlsaValid(p, db));
}

}  // namespace
}  // namespace soma
