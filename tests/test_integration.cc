/**
 * @file
 * End-to-end integration tests: full SoMa runs on real workloads, the
 * model->search->IR->instructions pipeline, and cross-framework
 * relationships (SoMa vs Cocco, edge vs cloud).
 */
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/cocco.h"
#include "compiler/instruction_gen.h"
#include "compiler/ir.h"
#include "search/soma.h"
#include "sim/report.h"
#include "workload/models.h"

namespace soma {
namespace {

TEST(EndToEnd, ResNet50EdgeValidAndFused)
{
    Graph g = BuildResNet50(1);
    HardwareConfig hw = EdgeAccelerator();
    SomaSearchResult res = RunSoma(g, hw, QuickSomaOptions(2));
    ASSERT_TRUE(res.report.valid);
    EXPECT_LE(res.report.peak_buffer, hw.gbuf_bytes);
    EXPECT_LT(res.report.num_lgs, 20);
    EXPECT_GT(res.report.compute_util, 0.05);
    EXPECT_LE(res.report.compute_util, res.report.theory_max_util + 1e-9);
    // Stage 2 only improves on stage 1.
    EXPECT_LE(res.report.latency, res.stage1_report.latency + 1e-12);
}

TEST(EndToEnd, SomaBeatsCoccoOnResNet50)
{
    Graph g = BuildResNet50(1);
    HardwareConfig hw = EdgeAccelerator();
    CoccoResult cocco = RunCocco(g, hw, QuickCoccoOptions(2));
    SomaSearchResult ours = RunSoma(g, hw, QuickSomaOptions(2));
    ASSERT_TRUE(cocco.report.valid);
    ASSERT_TRUE(ours.report.valid);
    EXPECT_LT(ours.report.latency, cocco.report.latency);
    EXPECT_LE(ours.report.EnergyJ(), cocco.report.EnergyJ() * 1.02);
    // Cocco fuses less: the paper's LG-count gap.
    EXPECT_LT(ours.report.num_lgs, cocco.report.num_lgs);
    EXPECT_LT(ours.report.num_tiles, cocco.report.num_tiles);
}

TEST(EndToEnd, Gpt2DecodeIsBandwidthBound)
{
    Graph g = BuildGpt2Decode(Gpt2Small(), 1, 512);
    HardwareConfig hw = EdgeAccelerator();
    SomaSearchResult res = RunSoma(g, hw, QuickSomaOptions(3));
    ASSERT_TRUE(res.report.valid);
    // Decode compute density is tiny: utilization under 1%, DRAM nearly
    // saturated, and almost no headroom versus the theoretical bound.
    EXPECT_LT(res.report.compute_util, 0.01);
    EXPECT_GT(res.report.dram_util, 0.9);
    EXPECT_GT(res.report.compute_util,
              0.5 * res.report.theory_max_util);
}

TEST(EndToEnd, CloudFasterThanEdgeOnPrefill)
{
    Graph g = BuildGpt2Prefill(Gpt2Small(), 1, 128);
    SomaSearchResult edge = RunSoma(g, EdgeAccelerator(),
                                    QuickSomaOptions(4));
    SomaSearchResult cloud = RunSoma(g, CloudAccelerator(),
                                     QuickSomaOptions(4));
    ASSERT_TRUE(edge.report.valid);
    ASSERT_TRUE(cloud.report.valid);
    EXPECT_LT(cloud.report.latency, edge.report.latency);
}

TEST(EndToEnd, SearchedSchemeLowersToInstructions)
{
    Graph g = BuildRandWire(1, 7, 6);
    HardwareConfig hw = EdgeAccelerator();
    SomaSearchResult res = RunSoma(g, hw, QuickSomaOptions(5));
    ASSERT_TRUE(res.report.valid);

    IrModule ir = GenerateIr(g, res.parsed, res.dlsa);
    Program prog = GenerateInstructions(ir);
    EXPECT_TRUE(prog.DepsAcyclic());
    EXPECT_EQ(prog.NumComputes(), res.report.num_tiles);
    EXPECT_EQ(prog.NumLoads() + prog.NumStores(), res.report.num_tensors);

    // The IR survives a text round trip and regenerates the same
    // instruction stream.
    IrModule back;
    std::string err;
    ASSERT_TRUE(IrModule::FromText(ir.ToText(), &back, &err)) << err;
    Program prog2 = GenerateInstructions(back);
    EXPECT_EQ(prog2.ToText(), prog.ToText());
}

TEST(EndToEnd, ExecutionGraphRenders)
{
    Graph g = BuildResNet50(1);
    HardwareConfig hw = EdgeAccelerator();
    SomaSearchResult res = RunSoma(g, hw, QuickSomaOptions(6));
    ASSERT_TRUE(res.report.valid);
    std::ostringstream os;
    PrintExecutionGraph(os, g, res.parsed, res.dlsa, res.report, 10);
    std::string text = os.str();
    EXPECT_NE(text.find("DRAM row"), std::string::npos);
    EXPECT_NE(text.find("COMPUTE row"), std::string::npos);
    EXPECT_NE(text.find("BUFFER peak"), std::string::npos);
    EXPECT_NE(text.find("resnet50"), std::string::npos);
}

TEST(EndToEnd, BiggerBufferNeverHurts)
{
    // 4 MB is the smallest buffer that admits any ResNet-50 scheme (the
    // classifier FC alone holds ~2 MB of weights).
    Graph g = BuildResNet50(1);
    HardwareConfig small = WithBufferAndBandwidth(EdgeAccelerator(),
                                                  4LL << 20, 16.0);
    HardwareConfig big = WithBufferAndBandwidth(EdgeAccelerator(),
                                                16LL << 20, 16.0);
    SomaSearchResult rs = RunSoma(g, small, QuickSomaOptions(7));
    SomaSearchResult rb = RunSoma(g, big, QuickSomaOptions(7));
    ASSERT_TRUE(rs.report.valid);
    ASSERT_TRUE(rb.report.valid);
    // SA noise tolerance: a 4x buffer should never lose noticeably.
    EXPECT_LE(rb.report.latency, rs.report.latency * 1.05);
}

TEST(EndToEnd, MoreBandwidthHelpsWeightBoundNet)
{
    Graph g = BuildResNet50(1);  // weight-dominated at batch 1
    HardwareConfig slow = WithBufferAndBandwidth(EdgeAccelerator(),
                                                 8LL << 20, 8.0);
    HardwareConfig fast = WithBufferAndBandwidth(EdgeAccelerator(),
                                                 8LL << 20, 64.0);
    SomaSearchResult r_slow = RunSoma(g, slow, QuickSomaOptions(8));
    SomaSearchResult r_fast = RunSoma(g, fast, QuickSomaOptions(8));
    ASSERT_TRUE(r_slow.report.valid);
    ASSERT_TRUE(r_fast.report.valid);
    EXPECT_LT(r_fast.report.latency, r_slow.report.latency * 0.7);
}

}  // namespace
}  // namespace soma
