/**
 * @file
 * End-to-end integration tests, driven through the unified scheduler
 * API (soma::Scheduler): full SoMa runs on real workloads, the
 * model->search->IR->instructions pipeline, and cross-framework
 * relationships (SoMa vs Cocco, edge vs cloud). The quick profile
 * resolves to the same QuickSomaOptions the legacy RunSoma callers
 * used, so the expectations are unchanged from the pre-facade tests.
 */
#include <gtest/gtest.h>

#include "api/scheduler.h"
#include "compiler/instruction_gen.h"
#include "compiler/ir.h"
#include "workload/models.h"

namespace soma {
namespace {

/** One quick-profile request for a zoo model on a named platform. */
ScheduleRequest
QuickRequest(const std::string &model, std::uint64_t seed,
             const std::string &hardware = "edge", int batch = 1)
{
    ScheduleRequest request;
    request.model = model;
    request.batch = batch;
    request.hardware = hardware;
    request.profile = SearchProfile::kQuick;
    request.seed = seed;
    return request;
}

TEST(EndToEnd, ResNet50EdgeValidAndFused)
{
    Scheduler scheduler;
    ScheduleResult res = scheduler.Schedule(QuickRequest("resnet50", 2));
    ASSERT_TRUE(res.ok) << res.error;
    HardwareConfig hw;
    std::string err;
    ASSERT_TRUE(scheduler.hardware().Make("edge", &hw, &err));
    EXPECT_LE(res.report.peak_buffer, hw.gbuf_bytes);
    EXPECT_LT(res.report.num_lgs, 20);
    EXPECT_GT(res.report.compute_util, 0.05);
    EXPECT_LE(res.report.compute_util, res.report.theory_max_util + 1e-9);
    // Stage 2 only improves on stage 1.
    ASSERT_TRUE(res.stage1_report.valid);
    EXPECT_LE(res.report.latency, res.stage1_report.latency + 1e-12);
}

TEST(EndToEnd, SomaBeatsCoccoOnResNet50)
{
    Scheduler scheduler;
    ScheduleRequest request = QuickRequest("resnet50", 2);
    ScheduleRequest cocco_request = request;
    cocco_request.scheduler = "cocco";
    // Exercise the async path: both searches in flight on one pool.
    Scheduler::JobId cocco_job = scheduler.Submit(cocco_request);
    Scheduler::JobId soma_job = scheduler.Submit(request);
    ScheduleResult cocco = scheduler.Wait(cocco_job);
    ScheduleResult ours = scheduler.Wait(soma_job);
    ASSERT_TRUE(cocco.ok) << cocco.error;
    ASSERT_TRUE(ours.ok) << ours.error;
    EXPECT_LT(ours.report.latency, cocco.report.latency);
    EXPECT_LE(ours.report.EnergyJ(), cocco.report.EnergyJ() * 1.02);
    // Cocco fuses less: the paper's LG-count gap.
    EXPECT_LT(ours.report.num_lgs, cocco.report.num_lgs);
    EXPECT_LT(ours.report.num_tiles, cocco.report.num_tiles);
}

TEST(EndToEnd, Gpt2DecodeIsBandwidthBound)
{
    Scheduler scheduler;
    // Inline-graph request: the zoo name would default to other
    // token counts, so build the workload directly.
    ScheduleRequest request;
    request.graph = std::make_shared<const Graph>(
        BuildGpt2Decode(Gpt2Small(), 1, 512));
    request.profile = SearchProfile::kQuick;
    request.seed = 3;
    ScheduleResult res = scheduler.Schedule(request);
    ASSERT_TRUE(res.ok) << res.error;
    // Decode compute density is tiny: utilization under 1%, DRAM nearly
    // saturated, and almost no headroom versus the theoretical bound.
    EXPECT_LT(res.report.compute_util, 0.01);
    EXPECT_GT(res.report.dram_util, 0.9);
    EXPECT_GT(res.report.compute_util,
              0.5 * res.report.theory_max_util);
}

TEST(EndToEnd, CloudFasterThanEdgeOnPrefill)
{
    Scheduler scheduler;
    ScheduleRequest request;
    request.graph = std::make_shared<const Graph>(
        BuildGpt2Prefill(Gpt2Small(), 1, 128));
    request.profile = SearchProfile::kQuick;
    request.seed = 4;
    ScheduleRequest cloud_request = request;
    cloud_request.hardware = "cloud";
    ScheduleResult edge = scheduler.Schedule(request);
    ScheduleResult cloud = scheduler.Schedule(cloud_request);
    ASSERT_TRUE(edge.ok) << edge.error;
    ASSERT_TRUE(cloud.ok) << cloud.error;
    EXPECT_LT(cloud.report.latency, edge.report.latency);
}

TEST(EndToEnd, SearchedSchemeLowersToInstructions)
{
    Scheduler scheduler;
    ScheduleRequest request;
    request.graph = std::make_shared<const Graph>(BuildRandWire(1, 7, 6));
    request.profile = SearchProfile::kQuick;
    request.seed = 5;
    request.artifacts.ir = true;
    request.artifacts.instructions = true;
    ScheduleResult res = scheduler.Schedule(request);
    ASSERT_TRUE(res.ok) << res.error;

    EXPECT_EQ(res.num_computes, res.report.num_tiles);
    EXPECT_EQ(res.num_loads + res.num_stores, res.report.num_tensors);
    EXPECT_FALSE(res.asm_text.empty());

    // The IR artifact survives a text round trip and regenerates the
    // same instruction stream the pipeline reported.
    IrModule back;
    std::string err;
    ASSERT_TRUE(IrModule::FromText(res.ir_text, &back, &err)) << err;
    Program prog = GenerateInstructions(back);
    EXPECT_TRUE(prog.DepsAcyclic());
    EXPECT_EQ(prog.ToText(), res.asm_text);
}

TEST(EndToEnd, ExecutionGraphRenders)
{
    Scheduler scheduler;
    ScheduleRequest request = QuickRequest("resnet50", 6);
    request.artifacts.execution_graph = true;
    request.artifacts.execution_graph_rows = 10;
    ScheduleResult res = scheduler.Schedule(request);
    ASSERT_TRUE(res.ok) << res.error;
    const std::string &text = res.execution_graph;
    EXPECT_NE(text.find("DRAM row"), std::string::npos);
    EXPECT_NE(text.find("COMPUTE row"), std::string::npos);
    EXPECT_NE(text.find("BUFFER peak"), std::string::npos);
    EXPECT_NE(text.find("resnet50"), std::string::npos);
    // The soma scheduler also renders its stage-1 (double-buffer) view.
    EXPECT_FALSE(res.stage1_execution_graph.empty());
}

TEST(EndToEnd, BiggerBufferNeverHurts)
{
    // 4 MB is the smallest buffer that admits any ResNet-50 scheme (the
    // classifier FC alone holds ~2 MB of weights).
    Scheduler scheduler;
    ScheduleRequest small = QuickRequest("resnet50", 7);
    small.gbuf_bytes = 4LL << 20;
    small.dram_gbps = 16.0;
    ScheduleRequest big = small;
    big.gbuf_bytes = 16LL << 20;
    ScheduleResult rs = scheduler.Schedule(small);
    ScheduleResult rb = scheduler.Schedule(big);
    ASSERT_TRUE(rs.ok) << rs.error;
    ASSERT_TRUE(rb.ok) << rb.error;
    // SA noise tolerance: a 4x buffer should never lose noticeably.
    EXPECT_LE(rb.report.latency, rs.report.latency * 1.05);
}

TEST(EndToEnd, MoreBandwidthHelpsWeightBoundNet)
{
    // ResNet-50 is weight-dominated at batch 1.
    Scheduler scheduler;
    ScheduleRequest slow = QuickRequest("resnet50", 8);
    slow.gbuf_bytes = 8LL << 20;
    slow.dram_gbps = 8.0;
    ScheduleRequest fast = slow;
    fast.dram_gbps = 64.0;
    ScheduleResult r_slow = scheduler.Schedule(slow);
    ScheduleResult r_fast = scheduler.Schedule(fast);
    ASSERT_TRUE(r_slow.ok) << r_slow.error;
    ASSERT_TRUE(r_fast.ok) << r_fast.error;
    EXPECT_LT(r_fast.report.latency, r_slow.report.latency * 0.7);
}

}  // namespace
}  // namespace soma
