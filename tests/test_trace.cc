/**
 * @file
 * Trace-export tests: CSV structure, row counts, stall accounting, and
 * consistency between the buffer trace and the evaluator's peak.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "corearray/core_array.h"
#include "search/dlsa_heuristics.h"
#include "sim/evaluator.h"
#include "sim/trace.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

struct Fixture {
    Graph graph;
    HardwareConfig hw;
    ParsedSchedule parsed;
    DlsaEncoding dlsa;
    EvalReport report;
};

Fixture
MakeFixture()
{
    GraphBuilder b("net", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 16, 16}, 16, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 16, 3, 1, 1);
    b.MarkOutput(c2);
    Fixture f{b.Take(), EdgeAccelerator(), {}, {}, {}};
    CoreArrayEvaluator eval(f.graph, f.hw);
    LfaEncoding lfa;
    lfa.order = f.graph.TopoOrder();
    lfa.tiling = {2};
    f.parsed = ParseLfa(f.graph, lfa, eval);
    f.dlsa = MakeDoubleBufferDlsa(f.parsed);
    f.report = EvaluateSchedule(f.graph, f.hw, f.parsed, f.dlsa,
                                f.hw.gbuf_bytes, f.graph.TotalOps());
    EXPECT_TRUE(f.report.valid);
    return f;
}

int
CountLines(const std::string &s)
{
    int n = 0;
    for (char c : s)
        if (c == '\n') ++n;
    return n;
}

TEST(Trace, ComputeCsvRowPerTile)
{
    Fixture f = MakeFixture();
    std::ostringstream os;
    WriteComputeTraceCsv(os, f.graph, f.parsed, f.report);
    std::string text = os.str();
    EXPECT_EQ(CountLines(text), 1 + f.parsed.NumTiles());
    EXPECT_NE(text.find("pos,layer"), std::string::npos);
    EXPECT_NE(text.find("c1,0"), std::string::npos);
    EXPECT_NE(text.find("c2,1"), std::string::npos);
}

TEST(Trace, DramCsvRowPerTensorInOrder)
{
    Fixture f = MakeFixture();
    std::ostringstream os;
    WriteDramTraceCsv(os, f.graph, f.parsed, f.dlsa, f.report);
    std::string text = os.str();
    EXPECT_EQ(CountLines(text), 1 + f.parsed.NumTensors());
    EXPECT_NE(text.find("W:c1,weight"), std::string::npos);
    EXPECT_NE(text.find("ifmap"), std::string::npos);
    EXPECT_NE(text.find("ofmap"), std::string::npos);
}

TEST(Trace, BufferCsvMatchesEvaluatorPeak)
{
    Fixture f = MakeFixture();
    std::ostringstream os;
    WriteBufferTraceCsv(os, f.parsed, f.dlsa);
    std::string text = os.str();
    EXPECT_EQ(CountLines(text), 1 + f.parsed.NumTiles());

    // Parse back the column and compare the peak.
    std::istringstream is(text);
    std::string line;
    std::getline(is, line);  // header
    Bytes peak = 0;
    while (std::getline(is, line)) {
        auto comma = line.find(',');
        ASSERT_NE(comma, std::string::npos);
        peak = std::max<Bytes>(peak, std::stoll(line.substr(comma + 1)));
    }
    EXPECT_EQ(peak, f.report.peak_buffer);
}

TEST(Trace, StallsNonNegativeAndSumToLatencyGap)
{
    Fixture f = MakeFixture();
    std::ostringstream os;
    WriteComputeTraceCsv(os, f.graph, f.parsed, f.report);
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line);
    double stall_sum_us = 0;
    while (std::getline(is, line)) {
        // stall_us is column 8 (0-based 7).
        std::istringstream ls(line);
        std::string tok;
        for (int i = 0; i < 8; ++i) std::getline(ls, tok, ',');
        double stall = std::stod(tok);
        EXPECT_GE(stall, 0.0);
        stall_sum_us += stall;
    }
    // Total compute-side idle time equals last-tile finish minus busy.
    double last_finish =
        f.report.tile_times[f.parsed.NumTiles() - 1].finish;
    EXPECT_NEAR(stall_sum_us * 1e-6, last_finish - f.report.compute_busy,
                1e-9);
}

}  // namespace
}  // namespace soma
