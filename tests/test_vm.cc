/**
 * @file
 * Instruction-VM tests: the generated instruction stream, executed on
 * the abstract two-unit machine, must reproduce the analytical
 * evaluator's timeline exactly — the compiler back-end and the model
 * agree (the cross-validation role of the paper's FPGA platform).
 */
#include <gtest/gtest.h>

#include "baselines/cocco.h"
#include "compiler/vm.h"
#include "corearray/core_array.h"
#include "search/dlsa_heuristics.h"
#include "search/soma.h"
#include "sim/evaluator.h"
#include "workload/graph_builder.h"
#include "workload/models.h"

namespace soma {
namespace {

/** Full pipeline: parse -> evaluate -> IR -> instructions -> VM. */
struct BothResults {
    EvalReport report;
    VmResult vm;
};

BothResults
RunBothPipelines(const Graph &g, const HardwareConfig &hw,
                 const LfaEncoding &lfa,
                 const DlsaEncoding *dlsa_in = nullptr)
{
    CoreArrayEvaluator eval(g, hw);
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    EXPECT_TRUE(p.valid) << p.why_invalid;
    DlsaEncoding dlsa = dlsa_in ? *dlsa_in : MakeDoubleBufferDlsa(p);
    BothResults run;
    run.report = EvaluateSchedule(g, hw, p, dlsa, hw.gbuf_bytes,
                                  g.TotalOps());
    IrModule ir = GenerateIr(g, p, dlsa);
    run.vm = ExecuteIr(ir, hw);
    return run;
}

Graph
MakeChain(int layers)
{
    GraphBuilder b("chain", 1);
    LayerId prev = b.InputConv("l0", ExtShape{8, 32, 32}, 16, 3, 1, 1);
    for (int i = 1; i < layers; ++i)
        prev = b.Conv("l" + std::to_string(i), prev, 16, 3, 1, 1);
    b.MarkOutput(prev);
    return b.Take();
}

TEST(Vm, MatchesEvaluatorOnFusedChain)
{
    Graph g = MakeChain(4);
    HardwareConfig hw = EdgeAccelerator();
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.tiling = {2};
    BothResults run = RunBothPipelines(g, hw, lfa);
    ASSERT_TRUE(run.report.valid);
    ASSERT_TRUE(run.vm.ok) << run.vm.error;
    EXPECT_NEAR(run.vm.makespan, run.report.latency,
                run.report.latency * 1e-12);
    EXPECT_NEAR(run.vm.core_busy, run.report.compute_busy, 1e-15);
    EXPECT_NEAR(run.vm.dram_busy, run.report.dram_busy, 1e-15);
}

TEST(Vm, MatchesEvaluatorOnUnfusedChain)
{
    Graph g = MakeChain(5);
    HardwareConfig hw = EdgeAccelerator();
    LfaEncoding lfa = MakeUnfusedLfa(g, {1, 1, 1, 1, 1});
    BothResults run = RunBothPipelines(g, hw, lfa);
    ASSERT_TRUE(run.report.valid);
    ASSERT_TRUE(run.vm.ok) << run.vm.error;
    EXPECT_NEAR(run.vm.makespan, run.report.latency,
                run.report.latency * 1e-12);
}

TEST(Vm, MatchesEvaluatorOnSearchedResNetScheme)
{
    Graph g = BuildResNet50(1);
    HardwareConfig hw = EdgeAccelerator();
    SomaSearchResult res = RunSoma(g, hw, QuickSomaOptions(5));
    ASSERT_TRUE(res.report.valid);
    IrModule ir = GenerateIr(g, res.parsed, res.dlsa);
    VmResult vm = ExecuteIr(ir, hw);
    ASSERT_TRUE(vm.ok) << vm.error;
    EXPECT_NEAR(vm.makespan, res.report.latency,
                res.report.latency * 1e-9);
}

TEST(Vm, MatchesEvaluatorOnCoccoScheme)
{
    Graph g = BuildRandWire(1, 7, 6);
    HardwareConfig hw = EdgeAccelerator();
    CoccoResult res = RunCocco(g, hw, QuickCoccoOptions(5));
    ASSERT_TRUE(res.report.valid);
    IrModule ir = GenerateIr(g, res.parsed, res.dlsa);
    VmResult vm = ExecuteIr(ir, hw);
    ASSERT_TRUE(vm.ok) << vm.error;
    EXPECT_NEAR(vm.makespan, res.report.latency,
                res.report.latency * 1e-9);
}

TEST(Vm, SurvivesIrTextRoundTripApproximately)
{
    Graph g = MakeChain(3);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.tiling = {1};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    IrModule ir = GenerateIr(g, p, dlsa);

    IrModule back;
    std::string err;
    ASSERT_TRUE(IrModule::FromText(ir.ToText(), &back, &err)) << err;
    VmResult a = ExecuteIr(ir, hw);
    VmResult b = ExecuteIr(back, hw);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_NEAR(a.makespan, b.makespan, a.makespan * 1e-9);
}

TEST(Vm, ReportsMissingDurations)
{
    Graph g = MakeChain(2);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.tiling = {1};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    Program prog = GenerateInstructions(GenerateIr(g, p, dlsa));
    VmResult vm = ExecuteProgram(prog, {0.001}, hw);  // too few
    EXPECT_FALSE(vm.ok);
    EXPECT_NE(vm.error.find("missing"), std::string::npos);
}

TEST(Vm, EventTimesRespectDependencies)
{
    Graph g = MakeChain(4);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator eval(g, hw);
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.tiling = {2};
    ParsedSchedule p = ParseLfa(g, lfa, eval);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(p);
    Program prog = GenerateInstructions(GenerateIr(g, p, dlsa));
    std::vector<double> seconds;
    for (const TileInfo &t : p.tiles) seconds.push_back(t.cost.seconds);
    VmResult vm = ExecuteProgram(prog, seconds, hw);
    ASSERT_TRUE(vm.ok);
    for (const Instruction &instr : prog.instructions) {
        for (int d : instr.deps) {
            EXPECT_GE(vm.events[instr.id].start + 1e-15,
                      vm.events[d].finish)
                << instr.ToText();
        }
    }
}

}  // namespace
}  // namespace soma
