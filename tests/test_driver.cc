/**
 * @file
 * SearchDriver tests: worker-pool correctness, per-chain seed streams,
 * thread-count-independent determinism (generic, DLSA-stage and full
 * RunSoma level), exchange behaviour, and the SaStats budget accounting
 * contract (iterations == no_move + evaluated == budget).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "search/dlsa_heuristics.h"
#include "search/dlsa_stage.h"
#include "search/driver.h"
#include "search/lfa_stage.h"
#include "search/soma.h"
#include "sim/evaluator.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

TEST(Workers, EveryTaskRunsExactlyOnce)
{
    const int tasks = 100;
    std::vector<std::atomic<int>> hits(tasks);
    for (auto &h : hits) h = 0;
    RunOnWorkers(4, tasks, [&](int i) { ++hits[i]; });
    for (int i = 0; i < tasks; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(Workers, InlineWhenSingleThread)
{
    int sum = 0;  // no synchronization: must run inline
    RunOnWorkers(1, 10, [&](int i) { sum += i; });
    EXPECT_EQ(sum, 45);
}

TEST(ChainSeeds, DistinctAcrossChainsAndAdjacentBases)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t base = 1; base <= 8; ++base) {
        for (int c = 0; c < 8; ++c) {
            seen.insert(DeriveChainSeed(base, c));
        }
    }
    EXPECT_EQ(seen.size(), 64u);
}

ChainEnv<int>
ToyEnv()
{
    ChainEnv<int> env;
    env.mutate = [](const int &cur, int *next, Rng &rng) {
        *next = cur + (rng.Flip() ? 1 : -1) * rng.UniformInt(1, 20);
        return true;
    };
    env.evaluate = [](const int &s) { return std::abs(s - 42.0); };
    return env;
}

TEST(SearchDriver, SolvesToyProblemAndAggregatesStats)
{
    SaOptions sa;
    sa.iterations = 2000;
    SearchDriverOptions opts;
    opts.chains = 4;
    opts.threads = 2;
    DriverResult<int> res = RunSearchDriver<int>(
        500, std::abs(500 - 42.0), [](int) { return ToyEnv(); }, sa, opts,
        /*seed=*/9);
    EXPECT_LE(res.cost, 5.0);
    EXPECT_EQ(res.chain_stats.size(), 4u);
    EXPECT_EQ(res.stats.iterations, 4 * sa.iterations);
    EXPECT_EQ(res.stats.iterations,
              res.stats.no_move + res.stats.evaluated);
    EXPECT_EQ(res.stats.evaluated,
              res.stats.accepted + res.stats.rejected);
    EXPECT_EQ(res.stats.best_cost, res.cost);
    EXPECT_GE(res.winner_chain, 0);
    EXPECT_LT(res.winner_chain, 4);
}

TEST(SearchDriver, DeterministicAcrossThreadCounts)
{
    SaOptions sa;
    sa.iterations = 3000;
    for (int chains : {1, 3, 5}) {
        SearchDriverOptions a;
        a.chains = chains;
        a.threads = 1;
        SearchDriverOptions b = a;
        b.threads = 8;
        DriverResult<int> ra = RunSearchDriver<int>(
            700, std::abs(700 - 42.0), [](int) { return ToyEnv(); }, sa, a,
            11);
        DriverResult<int> rb = RunSearchDriver<int>(
            700, std::abs(700 - 42.0), [](int) { return ToyEnv(); }, sa, b,
            11);
        EXPECT_EQ(ra.cost, rb.cost) << chains;
        EXPECT_EQ(ra.state, rb.state) << chains;
        EXPECT_EQ(ra.winner_chain, rb.winner_chain) << chains;
        EXPECT_EQ(ra.stats.accepted, rb.stats.accepted) << chains;
    }
}

TEST(SearchDriver, BestNeverWorseThanInitial)
{
    // Mutations only make things worse: the reduction must return the
    // initial state for every chain count.
    ChainEnv<int> env;
    env.mutate = [](const int &cur, int *next, Rng &rng) {
        *next = cur + rng.UniformInt(1, 5);
        return true;
    };
    env.evaluate = [](const int &s) { return static_cast<double>(s); };
    SaOptions sa;
    sa.iterations = 300;
    SearchDriverOptions opts;
    opts.chains = 3;
    opts.threads = 3;
    DriverResult<int> res = RunSearchDriver<int>(
        10, 10.0, [&](int) { return env; }, sa, opts, 5);
    EXPECT_EQ(res.state, 10);
    EXPECT_EQ(res.cost, 10.0);
}

TEST(SaStats, FailedMutationsStillConsumeBudget)
{
    // Every third proposal fails: the iteration count must still equal
    // the configured budget, with the failures tallied separately.
    int calls = 0;
    std::function<bool(const int &, int *, Rng &)> mutate =
        [&calls](const int &cur, int *next, Rng &rng) {
            if (++calls % 3 == 0) return false;
            *next = cur + (rng.Flip() ? 1 : -1);
            return true;
        };
    std::function<double(const int &)> eval = [](const int &s) {
        return std::abs(s - 5.0);
    };
    SaOptions opts;
    opts.iterations = 900;
    Rng rng(3);
    int state = 50;
    double cost = 45.0;
    SaStats stats = RunSa<int>(&state, &cost, mutate, eval, opts, rng);
    EXPECT_EQ(stats.iterations, 900);
    EXPECT_EQ(stats.no_move, 300);
    EXPECT_EQ(stats.evaluated, 600);
    EXPECT_EQ(stats.evaluated, stats.accepted + stats.rejected);
}

Graph
MakeDriverNet()
{
    GraphBuilder b("drivernet", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 32, 32}, 32, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 32, 3, 1, 1);
    LayerId c3 = b.Conv("c3", c2, 64, 3, 2, 1);
    LayerId c4 = b.Conv("c4", c3, 64, 3, 1, 1);
    b.MarkOutput(c4);
    return b.Take();
}

TEST(DlsaStageDriver, DeterministicAcrossThreadCounts)
{
    Graph g = MakeDriverNet();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.tiling = {2};
    ParsedSchedule parsed = ParseLfa(g, lfa, ce);
    ASSERT_TRUE(parsed.valid);
    DlsaEncoding init = MakeDoubleBufferDlsa(parsed);

    DlsaStageOptions opts;
    opts.beta = 20;
    opts.max_iterations = 600;
    opts.driver.chains = 3;

    opts.driver.threads = 1;
    Rng r1(7);
    DlsaStageResult a =
        RunDlsaStage(g, hw, parsed, init, hw.gbuf_bytes, opts, r1);

    opts.driver.threads = 4;
    Rng r2(7);
    DlsaStageResult b =
        RunDlsaStage(g, hw, parsed, init, hw.gbuf_bytes, opts, r2);

    ASSERT_TRUE(a.report.valid);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.dlsa.order, b.dlsa.order);
    EXPECT_EQ(a.dlsa.free_point, b.dlsa.free_point);
    EXPECT_EQ(a.report.latency, b.report.latency);
}

TEST(LfaStageDriver, SharedMemoDeterministicAcrossThreadCounts)
{
    // The LFA stage's chains share one TileCostMemo and one TilingCache
    // (plus per-context group memos). All three are content-addressed
    // pure-value caches, so insertion order — which varies with thread
    // scheduling — must never leak into the result.
    Graph g = MakeDriverNet();
    HardwareConfig hw = EdgeAccelerator();

    LfaStageOptions opts;
    opts.beta = 10;
    opts.max_iterations = 400;
    opts.driver.chains = 3;

    opts.driver.threads = 1;
    CoreArrayEvaluator ce1(g, hw);
    Rng r1(13);
    LfaStageResult a =
        RunLfaStage(g, hw, ce1, hw.gbuf_bytes, opts, r1);

    opts.driver.threads = 4;
    CoreArrayEvaluator ce2(g, hw);
    Rng r2(13);
    LfaStageResult b =
        RunLfaStage(g, hw, ce2, hw.gbuf_bytes, opts, r2);

    ASSERT_TRUE(a.report.valid);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.lfa.order, b.lfa.order);
    EXPECT_EQ(a.lfa.flc_cuts, b.lfa.flc_cuts);
    EXPECT_EQ(a.lfa.dram_cuts, b.lfa.dram_cuts);
    EXPECT_EQ(a.lfa.tiling, b.lfa.tiling);
    EXPECT_EQ(a.report.latency, b.report.latency);
    // Chains actually shared the stage memo: it outlived make_env and
    // holds every shape the winning chain ever costed.
    EXPECT_GT(ce1.memo()->size(), 0u);
}

TEST(RunSomaDriver, DeterministicAcrossThreadCounts)
{
    Graph g = MakeDriverNet();
    HardwareConfig hw = EdgeAccelerator();
    SomaOptions opts = QuickSomaOptions(21);
    opts.driver.chains = 2;

    opts.driver.threads = 1;
    SomaSearchResult a = RunSoma(g, hw, opts);
    opts.driver.threads = 3;
    SomaSearchResult b = RunSoma(g, hw, opts);

    ASSERT_TRUE(a.report.valid);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.lfa.order, b.lfa.order);
    EXPECT_EQ(a.lfa.tiling, b.lfa.tiling);
    EXPECT_EQ(a.dlsa.order, b.dlsa.order);
    EXPECT_EQ(a.dlsa.free_point, b.dlsa.free_point);
}

TEST(RunSomaDriver, MultiChainNoWorseThanSingleChain)
{
    // More independently seeded chains explore a superset of schedules
    // given the same per-chain budget; the reduction keeps the best.
    Graph g = MakeDriverNet();
    HardwareConfig hw = EdgeAccelerator();

    SomaOptions single = QuickSomaOptions(33);
    single.driver.chains = 1;
    SomaOptions multi = QuickSomaOptions(33);
    multi.driver.chains = 3;

    SomaSearchResult a = RunSoma(g, hw, single);
    SomaSearchResult b = RunSoma(g, hw, multi);
    ASSERT_TRUE(a.report.valid);
    ASSERT_TRUE(b.report.valid);
    // Not a strict guarantee per-seed (different Rng streams), but the
    // budgets here are generous enough that the multi-chain run should
    // never be dramatically worse.
    EXPECT_LE(b.cost, a.cost * 1.10);
}

}  // namespace
}  // namespace soma
