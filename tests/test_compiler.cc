/**
 * @file
 * Compiler back-end tests: IR generation and round trip, instruction
 * generation, dependency well-formedness.
 */
#include <gtest/gtest.h>

#include "compiler/instruction_gen.h"
#include "compiler/ir.h"
#include "corearray/core_array.h"
#include "search/dlsa_heuristics.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

struct Pipeline {
    Graph graph;
    HardwareConfig hw;
    ParsedSchedule parsed;
    DlsaEncoding dlsa;
};

Pipeline
MakePipeline(int tiling = 2)
{
    GraphBuilder b("net", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 16, 16}, 16, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 16, 3, 1, 1);
    LayerId c3 = b.Conv("c3", c2, 32, 3, 2, 1);
    b.MarkOutput(c3);
    Pipeline p{b.Take(), EdgeAccelerator(), {}, {}};
    CoreArrayEvaluator eval(p.graph, p.hw);
    LfaEncoding lfa;
    lfa.order = p.graph.TopoOrder();
    lfa.flc_cuts = {2};
    lfa.dram_cuts = {2};
    lfa.tiling = {tiling, 1};
    p.parsed = ParseLfa(p.graph, lfa, eval);
    EXPECT_TRUE(p.parsed.valid);
    p.dlsa = MakeDoubleBufferDlsa(p.parsed);
    return p;
}

TEST(Ir, GenerationMatchesParse)
{
    Pipeline p = MakePipeline();
    IrModule ir = GenerateIr(p.graph, p.parsed, p.dlsa);
    EXPECT_EQ(ir.model, "net");
    EXPECT_EQ(static_cast<int>(ir.tiles.size()), p.parsed.NumTiles());
    EXPECT_EQ(static_cast<int>(ir.tensors.size()), p.parsed.NumTensors());
    EXPECT_EQ(ir.tile_deps.size(), ir.tiles.size());

    // Tensors appear in DRAM order with consistent durations.
    for (std::size_t r = 0; r < ir.tensors.size(); ++r) {
        const DramTensor &t = p.parsed.tensors[p.dlsa.order[r]];
        EXPECT_EQ(ir.tensors[r].is_load, t.IsLoad());
        EXPECT_EQ(ir.tensors[r].bytes, t.bytes);
        EXPECT_LT(ir.tensors[r].start, ir.tensors[r].end);
    }
}

TEST(Ir, TextRoundTrip)
{
    Pipeline p = MakePipeline();
    IrModule ir = GenerateIr(p.graph, p.parsed, p.dlsa);
    std::string text = ir.ToText();

    IrModule back;
    std::string err;
    ASSERT_TRUE(IrModule::FromText(text, &back, &err)) << err;
    EXPECT_EQ(back.model, ir.model);
    EXPECT_EQ(back.batch, ir.batch);
    ASSERT_EQ(back.tiles.size(), ir.tiles.size());
    ASSERT_EQ(back.tensors.size(), ir.tensors.size());
    for (std::size_t i = 0; i < ir.tiles.size(); ++i) {
        EXPECT_EQ(back.tiles[i].layer, ir.tiles[i].layer);
        EXPECT_EQ(back.tiles[i].region, ir.tiles[i].region);
    }
    for (std::size_t r = 0; r < ir.tensors.size(); ++r) {
        EXPECT_EQ(back.tensors[r].label, ir.tensors[r].label);
        EXPECT_EQ(back.tensors[r].start, ir.tensors[r].start);
        EXPECT_EQ(back.tensors[r].end, ir.tensors[r].end);
    }
    EXPECT_EQ(back.tile_deps, ir.tile_deps);
    // Canonical: second serialization is identical.
    EXPECT_EQ(back.ToText(), text);
}

TEST(Ir, FromTextRejectsGarbage)
{
    IrModule m;
    std::string err;
    EXPECT_FALSE(IrModule::FromText("bogus line", &m, &err));
    EXPECT_FALSE(IrModule::FromText("tensor x sideways 1 0 1", &m, &err));
    EXPECT_FALSE(IrModule::FromText("dep 5 0", &m, &err));
}

TEST(Instructions, CountsMatchIr)
{
    Pipeline p = MakePipeline();
    IrModule ir = GenerateIr(p.graph, p.parsed, p.dlsa);
    Program prog = GenerateInstructions(ir);

    int loads = 0, stores = 0;
    for (const IrTensor &t : ir.tensors) (t.is_load ? loads : stores)++;
    EXPECT_EQ(prog.NumLoads(), loads);
    EXPECT_EQ(prog.NumStores(), stores);
    EXPECT_EQ(prog.NumComputes(), static_cast<int>(ir.tiles.size()));
    EXPECT_EQ(prog.instructions.size(),
              ir.tiles.size() + ir.tensors.size());
}

TEST(Instructions, DependenciesAcyclicAndComplete)
{
    Pipeline p = MakePipeline(4);
    IrModule ir = GenerateIr(p.graph, p.parsed, p.dlsa);
    Program prog = GenerateInstructions(ir);
    EXPECT_TRUE(prog.DepsAcyclic());

    // Ids are positions.
    for (std::size_t i = 0; i < prog.instructions.size(); ++i)
        EXPECT_EQ(prog.instructions[i].id, static_cast<int>(i));

    // Every compute except the first depends on something.
    bool first_compute = true;
    for (const Instruction &instr : prog.instructions) {
        if (instr.op != Opcode::kCompute) continue;
        if (first_compute) {
            first_compute = false;
            continue;
        }
        EXPECT_FALSE(instr.deps.empty()) << instr.ToText();
    }
}

TEST(Instructions, SerialDramChainPresent)
{
    Pipeline p = MakePipeline();
    IrModule ir = GenerateIr(p.graph, p.parsed, p.dlsa);
    Program prog = GenerateInstructions(ir);
    // Each DRAM instruction after the first depends on the previous
    // DRAM instruction (single channel).
    int prev_dram = -1;
    for (const Instruction &instr : prog.instructions) {
        if (instr.op == Opcode::kCompute) continue;
        if (prev_dram >= 0) {
            EXPECT_NE(std::find(instr.deps.begin(), instr.deps.end(),
                                prev_dram),
                      instr.deps.end())
                << instr.ToText();
        }
        prev_dram = instr.id;
    }
}

TEST(Instructions, TextFormat)
{
    Pipeline p = MakePipeline();
    IrModule ir = GenerateIr(p.graph, p.parsed, p.dlsa);
    Program prog = GenerateInstructions(ir);
    std::string text = prog.ToText();
    EXPECT_NE(text.find("LOAD"), std::string::npos);
    EXPECT_NE(text.find("STORE"), std::string::npos);
    EXPECT_NE(text.find("COMP"), std::string::npos);
    EXPECT_NE(text.find("W:c1"), std::string::npos);
    EXPECT_NE(text.find("bytes="), std::string::npos);
}

}  // namespace
}  // namespace soma
