/**
 * @file
 * somalint behaves as specified: every check fires on its seeded
 * fixture violation, stays quiet on clean code, honors per-line
 * waivers, reports deterministically — and the repo's own tree passes
 * (the same gate CI enforces).
 *
 * The tests drive the real binary (SOMALINT_BIN, injected by CMake)
 * through popen, asserting on exit codes and the `path:line: [check]`
 * report lines.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun {
    int exit_code = -1;
    std::string output;
};

LintRun
RunLint(const std::string &args)
{
    const std::string cmd = std::string(SOMALINT_BIN) + " " + args + " 2>&1";
    LintRun run;
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (!pipe) return run;
    char buf[4096];
    while (std::fgets(buf, sizeof buf, pipe)) run.output += buf;
    const int status = pclose(pipe);
    run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return run;
}

std::string
Fixture(const char *name)
{
    return std::string(SOMA_LINT_FIXTURES) + "/" + name;
}

int
CountFindings(const std::string &output, const std::string &check)
{
    const std::string needle = "[" + check + "]";
    int n = 0;
    for (std::size_t pos = output.find(needle); pos != std::string::npos;
         pos = output.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(Somalint, CleanFixtureIsQuiet)
{
    const LintRun run = RunLint(Fixture("clean.cc"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
    EXPECT_EQ(run.output, "");
}

TEST(Somalint, WallclockFiresOnSystemClockAndLibcRandomness)
{
    const LintRun run = RunLint(Fixture("wallclock_violation.cc"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    EXPECT_GE(CountFindings(run.output, "wallclock"), 3) << run.output;
    EXPECT_NE(run.output.find("system_clock"), std::string::npos);
    EXPECT_NE(run.output.find("rand"), std::string::npos);
}

TEST(Somalint, WallclockWaiverIsHonored)
{
    const LintRun run = RunLint(Fixture("wallclock_waived.cc"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(Somalint, UnorderedIterFiresOnHashOrderTraversal)
{
    const LintRun run = RunLint(Fixture("unordered_iter_violation.cc"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    // The range-for and the explicit iterator loop each report once.
    EXPECT_EQ(CountFindings(run.output, "unordered-iter"), 2)
        << run.output;
    EXPECT_NE(run.output.find("entries_"), std::string::npos);
}

TEST(Somalint, UnorderedIterWaiverIsHonored)
{
    const LintRun run = RunLint(Fixture("unordered_iter_waived.cc"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(Somalint, SteadyNowFiresOnRawAndAliasedClockReads)
{
    const LintRun run = RunLint(Fixture("steady_now_violation.cc"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    // The spelled-out call and the alias call each report once; the
    // time_point type uses draw nothing.
    EXPECT_EQ(CountFindings(run.output, "steady-now"), 2) << run.output;
    EXPECT_NE(run.output.find("steady_clock::now()"), std::string::npos);
    EXPECT_NE(run.output.find("Clock::now()"), std::string::npos);
}

TEST(Somalint, SteadyNowWaiverIsHonored)
{
    const LintRun run = RunLint(Fixture("steady_now_waived.cc"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(Somalint, RawMutexFiresOutsideThreadAnnotations)
{
    const LintRun run = RunLint(Fixture("raw_mutex_violation.cc"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    EXPECT_GE(CountFindings(run.output, "raw-mutex"), 3) << run.output;
    EXPECT_NE(run.output.find("std::mutex"), std::string::npos);
    EXPECT_NE(run.output.find("std::condition_variable"),
              std::string::npos);
}

TEST(Somalint, GuardedFieldFiresOnNakedMutableFields)
{
    const LintRun run = RunLint(Fixture("guarded_field_violation.cc"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    EXPECT_EQ(CountFindings(run.output, "guarded-field"), 2)
        << run.output;
    EXPECT_NE(run.output.find("count_"), std::string::npos);
    EXPECT_NE(run.output.find("dirty_"), std::string::npos);
    // The annotated sibling field must NOT be flagged.
    EXPECT_EQ(run.output.find("items_"), std::string::npos) << run.output;
}

TEST(Somalint, GuardedFieldWaiverIsHonored)
{
    const LintRun run = RunLint(Fixture("guarded_field_waived.cc"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(Somalint, HotAllocFiresOnLoopGrowthInProfScopes)
{
    const LintRun run = RunLint(Fixture("hot_alloc_violation.cc"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    // push_back + new in the brace-body for loop, make_unique in the
    // single-statement while body; the pre-loop reserve, the pre-sized
    // scratch loop and the post-scope push_back stay quiet.
    EXPECT_EQ(CountFindings(run.output, "hot-alloc"), 3) << run.output;
    EXPECT_NE(run.output.find("push_back"), std::string::npos);
    EXPECT_NE(run.output.find("'new'"), std::string::npos);
    EXPECT_NE(run.output.find("make_unique"), std::string::npos);
    EXPECT_EQ(run.output.find("reserve"), std::string::npos) << run.output;
}

TEST(Somalint, HotAllocWaiverIsHonored)
{
    const LintRun run = RunLint(Fixture("hot_alloc_waived.cc"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(Somalint, WholeFixtureDirectoryAggregatesFindings)
{
    const LintRun run = RunLint(std::string(SOMA_LINT_FIXTURES));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    // Every check class is represented in the directory sweep.
    EXPECT_GE(CountFindings(run.output, "wallclock"), 3);
    EXPECT_GE(CountFindings(run.output, "unordered-iter"), 2);
    EXPECT_GE(CountFindings(run.output, "steady-now"), 2);
    EXPECT_GE(CountFindings(run.output, "raw-mutex"), 3);
    EXPECT_GE(CountFindings(run.output, "guarded-field"), 2);
    EXPECT_GE(CountFindings(run.output, "hot-alloc"), 3);
}

TEST(Somalint, OutputIsDeterministic)
{
    const std::string dir(SOMA_LINT_FIXTURES);
    const LintRun a = RunLint(dir);
    const LintRun b = RunLint(dir);
    EXPECT_EQ(a.exit_code, b.exit_code);
    EXPECT_EQ(a.output, b.output);
}

TEST(Somalint, UsageErrorsExitTwo)
{
    EXPECT_EQ(RunLint("").exit_code, 2);
    EXPECT_EQ(RunLint("/no/such/path/anywhere.cc").exit_code, 2);
}

// The gate CI enforces: the repo's own sources, tools and benches are
// lint-clean. A regression here is a real finding — fix it or waive it
// with a reason, exactly as in CI.
TEST(Somalint, RepositoryTreeIsClean)
{
    const std::string root(SOMA_SOURCE_ROOT);
    const LintRun run = RunLint(root + "/src " + root + "/tools " + root +
                                "/bench");
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
