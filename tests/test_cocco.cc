/**
 * @file
 * Cocco baseline tests: the restricted encoding (FLC == DRAM cuts,
 * heuristic tiling), conservative weight residency, and the expected
 * competitive relationship with SoMa.
 */
#include <gtest/gtest.h>

#include "baselines/cocco.h"
#include "search/soma.h"
#include "workload/graph_builder.h"
#include "workload/models.h"

namespace soma {
namespace {

Graph
MakeNet()
{
    GraphBuilder b("net", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 32, 32}, 32, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 32, 3, 1, 1);
    LayerId c3 = b.Conv("c3", c2, 64, 3, 2, 1);
    LayerId c4 = b.Conv("c4", c3, 64, 3, 1, 1);
    b.MarkOutput(c4);
    return b.Take();
}

TEST(Cocco, EncodingTiesFlcToDramCuts)
{
    Graph g = MakeNet();
    HardwareConfig hw = EdgeAccelerator();
    LfaEncoding lfa = MakeCoccoLfa(g, hw, g.TopoOrder(), {2}, 128);
    EXPECT_TRUE(lfa.StructurallyValid(g));
    EXPECT_EQ(lfa.flc_cuts, lfa.dram_cuts);
    EXPECT_EQ(lfa.NumFlgs(), 2);
    EXPECT_EQ(static_cast<int>(lfa.tiling.size()), 2);
    for (int t : lfa.tiling) EXPECT_GE(t, 1);
}

TEST(Cocco, TilingDerivedNotSearched)
{
    Graph g = MakeNet();
    HardwareConfig hw = EdgeAccelerator();
    LfaEncoding a = MakeCoccoLfa(g, hw, g.TopoOrder(), {2}, 128);
    LfaEncoding b = MakeCoccoLfa(g, hw, g.TopoOrder(), {2}, 128);
    EXPECT_EQ(a.tiling, b.tiling);  // deterministic heuristic
}

TEST(Cocco, RunProducesValidScheme)
{
    Graph g = MakeNet();
    HardwareConfig hw = EdgeAccelerator();
    CoccoResult res = RunCocco(g, hw, QuickCoccoOptions(5));
    ASSERT_TRUE(res.report.valid) << res.report.why_invalid;
    EXPECT_LE(res.report.peak_buffer, hw.gbuf_bytes);
    EXPECT_TRUE(res.lfa.StructurallyValid(g));
    EXPECT_EQ(res.lfa.flc_cuts, res.lfa.dram_cuts);
}

TEST(Cocco, WeightsResidentForWholeGroup)
{
    Graph g = MakeNet();
    HardwareConfig hw = EdgeAccelerator();
    CoccoResult res = RunCocco(g, hw, QuickCoccoOptions(5));
    ASSERT_TRUE(res.report.valid);
    for (const DramTensor &t : res.parsed.tensors) {
        if (t.kind == DramTensorKind::kWeight) {
            EXPECT_EQ(t.fixed_end, t.lg_end);
        }
    }
}

TEST(Cocco, WeightResidencyLimitsFusion)
{
    // A network whose total weights exceed the buffer: Cocco must cut it
    // into several LGs, while SoMa's windowed weights can fuse it whole.
    GraphBuilder b("heavy", 1);
    LayerId x = b.InputConv("c0", ExtShape{64, 16, 16}, 512, 3, 1, 1);
    for (int i = 1; i <= 5; ++i) {
        x = b.Conv("c" + std::to_string(i), x, 512, 3, 1, 1);
        // each ~2.36 MB of weights; 6 layers ~ 14 MB > 8 MB GBUF
    }
    b.MarkOutput(x);
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();

    CoccoResult cocco = RunCocco(g, hw, QuickCoccoOptions(5));
    ASSERT_TRUE(cocco.report.valid);
    EXPECT_GE(cocco.report.num_lgs, 2);

    SomaSearchResult ours = RunSoma(g, hw, QuickSomaOptions(5));
    ASSERT_TRUE(ours.report.valid);
    EXPECT_LE(ours.report.num_lgs, cocco.report.num_lgs);
    EXPECT_LE(ours.report.dram_bytes, cocco.report.dram_bytes);
}

TEST(Cocco, SomaNeverMeaningfullyWorse)
{
    // SoMa explores a strict superset of Cocco's space modulo heuristic
    // tiling; with equal seeds and small nets it should match or beat
    // Cocco's cost (tolerance for SA noise).
    Graph g = MakeNet();
    HardwareConfig hw = EdgeAccelerator();
    CoccoResult cocco = RunCocco(g, hw, QuickCoccoOptions(1));
    SomaSearchResult ours = RunSoma(g, hw, QuickSomaOptions(1));
    ASSERT_TRUE(cocco.report.valid);
    ASSERT_TRUE(ours.report.valid);
    EXPECT_LE(ours.cost, cocco.cost * 1.05);
}

TEST(Cocco, InfeasibleWhenSingleLayerExceedsBuffer)
{
    // One layer whose weights alone exceed the GBUF: with group-resident
    // weights there is no valid Cocco scheme at all.
    GraphBuilder b("huge", 1);
    Layer l("fat", LayerKind::kGemm, 4096, 1, 1);
    l.setOpsPerElement(2 * 4096);
    l.setWeightBytes(16LL * 1024 * 1024);  // 16 MB > 8 MB
    l.addInput(InputRef{kNoLayer, AccessPattern::kRowAligned,
                        ExtShape{4096, 1, 1}});
    b.graph().AddLayer(std::move(l));
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();
    CoccoResult res = RunCocco(g, hw, QuickCoccoOptions(1));
    EXPECT_FALSE(res.report.valid);
}

}  // namespace
}  // namespace soma
