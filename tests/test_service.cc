/**
 * @file
 * Service-layer tests: request fingerprinting (canonical JSON, key
 * order and QoS-field invariance), the ResultCache LRU + persistence,
 * the GraphCache, in-flight coalescing, the cache-determinism contract
 * (cached result == recomputed result, byte for byte), deadline
 * truncation, and the iteration-granular cooperative cancellation that
 * backs Cancel()/deadline_ms.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "search/sa.h"
#include "service/service.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

/** Small 4-layer CNN, parameterized on batch like a zoo builder. */
Graph
BuildSvcTiny(int batch)
{
    GraphBuilder b("svc-tiny", batch);
    ExtShape image{3, 32, 32};
    LayerId c1 = b.InputConv("c1", image, 16, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 16, 3, 1, 1);
    LayerId c3 = b.Conv("c3", c2, 32, 3, 2, 1);
    LayerId gap = b.GlobalPool("gap", c3);
    b.MarkOutput(gap);
    return b.Take();
}

/** A service whose registry knows the test workload. */
std::unique_ptr<SchedulerService>
MakeService(ServiceOptions options = ServiceOptions{})
{
    auto service = std::make_unique<SchedulerService>(options);
    service->scheduler().models().Register("svc-tiny", BuildSvcTiny);
    return service;
}

ScheduleRequest
TinyRequest(std::uint64_t seed)
{
    ScheduleRequest request;
    request.model = "svc-tiny";
    request.profile = SearchProfile::kQuick;
    request.seed = seed;
    return request;
}

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
FreshDir(const std::string &name)
{
    const std::string path = ::testing::TempDir() + "soma_" + name;
    std::filesystem::remove_all(path);
    return path;
}

// ----------------------------------------------------------- fingerprint

TEST(Fingerprint, CanonicalDumpSortsKeysRecursively)
{
    Json a, b;
    std::string err;
    ASSERT_TRUE(Json::Parse("{\"b\": {\"y\": 1, \"x\": 2}, \"a\": [3]}",
                            &a, &err));
    ASSERT_TRUE(Json::Parse("{\"a\": [3], \"b\": {\"x\": 2, \"y\": 1}}",
                            &b, &err));
    EXPECT_NE(a.Dump(), b.Dump());  // insertion order preserved
    EXPECT_EQ(a.CanonicalDump(), b.CanonicalDump());
    EXPECT_EQ(a.CanonicalDump(), "{\"a\":[3],\"b\":{\"x\":2,\"y\":1}}");
}

TEST(Fingerprint, IgnoresJsonKeyOrder)
{
    Json a, b;
    std::string err;
    ASSERT_TRUE(Json::Parse(
        "{\"model\": \"resnet50\", \"seed\": 7, \"batch\": 4}", &a, &err));
    ASSERT_TRUE(Json::Parse(
        "{\"batch\": 4, \"model\": \"resnet50\", \"seed\": 7}", &b, &err));
    ScheduleRequest ra, rb;
    ASSERT_TRUE(ScheduleRequest::FromJson(a, &ra, &err)) << err;
    ASSERT_TRUE(ScheduleRequest::FromJson(b, &rb, &err)) << err;
    EXPECT_EQ(ra.Fingerprint(), rb.Fingerprint());
}

TEST(Fingerprint, CoversResultAffectingFieldsOnly)
{
    ScheduleRequest base = TinyRequest(7);
    const std::uint64_t fp = base.Fingerprint();

    // QoS knobs do not change identity...
    ScheduleRequest qos = base;
    qos.threads = 8;
    qos.deadline_ms = 5000;
    EXPECT_EQ(qos.Fingerprint(), fp);

    // ...every result-affecting field does.
    ScheduleRequest other = base;
    other.seed = 8;
    EXPECT_NE(other.Fingerprint(), fp);
    other = base;
    other.model = "resnet50";
    EXPECT_NE(other.Fingerprint(), fp);
    other = base;
    other.batch = 2;
    EXPECT_NE(other.Fingerprint(), fp);
    other = base;
    other.chains = 8;
    EXPECT_NE(other.Fingerprint(), fp);
    other = base;
    other.cost_m = 2.0;
    EXPECT_NE(other.Fingerprint(), fp);
    other = base;
    other.artifacts.instructions = true;
    EXPECT_NE(other.Fingerprint(), fp);
}

TEST(Fingerprint, HexRoundTrip)
{
    const std::uint64_t v = 0x01ab89ef45cd2367ULL;
    EXPECT_EQ(HexU64(v), "01ab89ef45cd2367");
    std::uint64_t back = 0;
    ASSERT_TRUE(ParseHexU64(HexU64(v), &back));
    EXPECT_EQ(back, v);
    EXPECT_FALSE(ParseHexU64("xyz", &back));
    EXPECT_FALSE(ParseHexU64("01ab89ef45cd23", &back));  // too short
}

// ----------------------------------------------------------- ResultCache

TEST(ResultCache, LruEvictionBoundsMemory)
{
    ResultCache::Options options;
    options.capacity = 2;
    ResultCache cache(options);
    cache.Put(1, "one");
    cache.Put(2, "two");
    std::string text;
    ASSERT_TRUE(cache.Get(1, &text));  // 1 becomes MRU
    cache.Put(3, "three");             // evicts 2 (LRU)
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.Get(1, &text));
    EXPECT_EQ(text, "one");
    EXPECT_FALSE(cache.Get(2, &text));
    EXPECT_TRUE(cache.Get(3, &text));
    const ResultCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.insertions, 3u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCache, PersistsAcrossInstances)
{
    ResultCache::Options options;
    options.persist_dir = FreshDir("result_cache_persist");
    {
        ResultCache cache(options);
        cache.Put(0xabcdULL, "{\"ok\":true}");
    }
    ResultCache fresh(options);
    EXPECT_EQ(fresh.size(), 0u);
    std::string text;
    ASSERT_TRUE(fresh.Get(0xabcdULL, &text));  // disk hit
    EXPECT_EQ(text, "{\"ok\":true}");
    EXPECT_EQ(fresh.stats().disk_hits, 1u);
    EXPECT_EQ(fresh.size(), 1u);  // repopulated into memory
}

TEST(ResultCache, VersionMismatchInvalidatesPersistedEntries)
{
    // A behaviour-changing build bumps kResultCacheSchemaVersion; disk
    // entries from the old build must load as misses, not replay stale
    // results computed under different search behaviour.
    ResultCache::Options v1 = ResultCache::Options{};
    v1.persist_dir = FreshDir("result_cache_version");
    v1.version = 1;
    {
        ResultCache cache(v1);
        cache.Put(0x1234ULL, "{\"ok\":true}");
    }
    ResultCache::Options v2 = v1;
    v2.version = 2;
    ResultCache newer(v2);
    std::string text;
    EXPECT_FALSE(newer.Get(0x1234ULL, &text));
    EXPECT_EQ(newer.stats().version_mismatches, 1u);
    EXPECT_EQ(newer.stats().misses, 1u);

    // The new build overwrites the stale file; its own restarts hit.
    newer.Put(0x1234ULL, "{\"ok\":true,\"v\":2}");
    ResultCache again(v2);
    ASSERT_TRUE(again.Get(0x1234ULL, &text));
    EXPECT_EQ(text, "{\"ok\":true,\"v\":2}");

    // And the old build, pointed at the overwritten file, misses too:
    // versions partition the directory both ways.
    ResultCache old_again(v1);
    EXPECT_FALSE(old_again.Get(0x1234ULL, &text));
}

TEST(ResultCache, LegacyHeaderlessFilesAreMisses)
{
    ResultCache::Options options;
    options.persist_dir = FreshDir("result_cache_legacy");
    std::filesystem::create_directories(options.persist_dir);
    ResultCache cache(options);
    std::ofstream raw(cache.PathFor(0x77ULL), std::ios::binary);
    raw << "{\"ok\":true}";  // pre-versioning format: no header
    raw.close();
    std::string text;
    EXPECT_FALSE(cache.Get(0x77ULL, &text));
    // No version header at all is a plain miss, not version skew —
    // the mismatch counter only tracks files that name a version.
    EXPECT_EQ(cache.stats().version_mismatches, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, LengthlessV2HeadersAreVersionSkew)
{
    // PR 4's header carried no payload length; such files cannot be
    // torn-checked, so they count as version skew (they do carry the
    // somacache magic) and load as misses.
    ResultCache::Options options;
    options.persist_dir = FreshDir("result_cache_lengthless");
    std::filesystem::create_directories(options.persist_dir);
    ResultCache cache(options);
    std::ofstream raw(cache.PathFor(0x78ULL), std::ios::binary);
    raw << "somacache " << options.version << "\n{\"ok\":true}";
    raw.close();
    std::string text;
    EXPECT_FALSE(cache.Get(0x78ULL, &text));
    EXPECT_EQ(cache.stats().version_mismatches, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, TornPersistedEntryLoadsAsMiss)
{
    // The torn-file regression: a payload shorter than its header
    // claims (a partial copy, a crashed pre-atomic-rename writer) must
    // load as a miss — never as garbage bytes handed to the service.
    ResultCache::Options options;
    options.persist_dir = FreshDir("result_cache_torn");
    std::string path;
    {
        ResultCache cache(options);
        cache.Put(0x99ULL, "{\"ok\":true,\"cost\":12345678}");
        path = cache.PathFor(0x99ULL);
    }
    std::string full;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        full = ss.str();
    }
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << full.substr(0, full.size() - 5);  // tear the tail off
    }
    ResultCache fresh(options);
    std::string text;
    EXPECT_FALSE(fresh.Get(0x99ULL, &text));
    EXPECT_EQ(fresh.stats().misses, 1u);
    // Torn is corruption, not version skew.
    EXPECT_EQ(fresh.stats().version_mismatches, 0u);
    // The next Put heals the file.
    fresh.Put(0x99ULL, "{\"ok\":true,\"cost\":12345678}");
    ResultCache again(options);
    ASSERT_TRUE(again.Get(0x99ULL, &text));
    EXPECT_EQ(text, "{\"ok\":true,\"cost\":12345678}");
}

TEST(ResultCache, HeaderTornBeforeNewlineIsCorruptionNotSkew)
{
    // A tear can also land inside the header itself (no newline yet):
    // that is corruption like any other torn file — a plain miss —
    // not version skew, even though the magic is present.
    ResultCache::Options options;
    options.persist_dir = FreshDir("result_cache_torn_header");
    std::filesystem::create_directories(options.persist_dir);
    ResultCache cache(options);
    std::ofstream raw(cache.PathFor(0x9aULL), std::ios::binary);
    raw << "somacache " << options.version;  // torn before the newline
    raw.close();
    std::string text;
    EXPECT_FALSE(cache.Get(0x9aULL, &text));
    EXPECT_EQ(cache.stats().version_mismatches, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, ConcurrentWritersNeverPublishTornEntries)
{
    // Two caches sharing one directory (the `somac sweep --shard`
    // topology) hammer the same fingerprint with different payloads of
    // different lengths; thanks to temp-file + atomic rename a reader
    // must always observe one complete payload, never an interleaving.
    ResultCache::Options options;
    options.persist_dir = FreshDir("result_cache_race");
    const std::string a(2000, 'a');
    const std::string b = std::string(4000, 'b') + "tail";
    ResultCache w1(options), w2(options);
    for (int round = 0; round < 20; ++round) {
        std::thread t1([&] { w1.Put(0x5aULL, a); });
        std::thread t2([&] { w2.Put(0x5aULL, b); });
        t1.join();
        t2.join();
        ResultCache reader(options);
        std::string text;
        ASSERT_TRUE(reader.Get(0x5aULL, &text)) << "round " << round;
        EXPECT_TRUE(text == a || text == b)
            << "round " << round << ": torn payload of " << text.size()
            << " bytes";
    }
    // No temp droppings left behind.
    std::size_t files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(options.persist_dir)) {
        ++files;
        EXPECT_EQ(entry.path().extension(), ".json") << entry.path();
    }
    EXPECT_EQ(files, 1u);
}

// ------------------------------------------------------------ GraphCache

TEST(GraphCache, BuildsOncePerModelBatch)
{
    ModelRegistry models;
    models.Register("svc-tiny", BuildSvcTiny);
    GraphCache cache(8);
    std::string err;
    auto g1 = cache.Get("svc-tiny", 1, models, &err);
    ASSERT_TRUE(g1) << err;
    auto g2 = cache.Get("svc-tiny", 1, models, &err);
    EXPECT_EQ(g1.get(), g2.get());  // shared, not rebuilt
    auto g4 = cache.Get("svc-tiny", 4, models, &err);
    ASSERT_TRUE(g4);
    EXPECT_NE(g1.get(), g4.get());  // batch is part of the key
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 2u);

    EXPECT_FALSE(cache.Get("nope", 1, models, &err));
    EXPECT_NE(err.find("nope"), std::string::npos);
}

// --------------------------------------------------------------- service

TEST(Service, CacheHitIsBitIdenticalToColdRun)
{
    auto service = MakeService();
    ScheduleRequest request = TinyRequest(3);
    request.artifacts.instructions = true;

    std::string cold_text, warm_text;
    ScheduleResult cold = service->Schedule(request, &cold_text);
    ASSERT_TRUE(cold.ok) << cold.error;
    ScheduleResult warm = service->Schedule(request, &warm_text);
    ASSERT_TRUE(warm.ok) << warm.error;

    EXPECT_EQ(cold_text, warm_text);  // the determinism contract
    // Re-serializing the deserialized result is a fixpoint, so
    // downstream consumers cannot tell a hit from a cold run.
    EXPECT_EQ(warm.ToJson().Dump(2), cold_text);
    EXPECT_EQ(warm.scheme, cold.scheme);
    EXPECT_EQ(warm.cost, cold.cost);
    EXPECT_EQ(warm.report.latency, cold.report.latency);
    EXPECT_EQ(warm.asm_text, cold.asm_text);

    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.searches, 1u);
    EXPECT_EQ(stats.result_cache.hits, 1u);
    // A cold request looks up twice: the unlocked fast path and the
    // in-flight registration recheck.
    EXPECT_EQ(stats.result_cache.misses, 2u);
}

TEST(Service, ResultCacheEvictionTriggersRecompute)
{
    ServiceOptions options;
    options.result_cache_capacity = 1;
    auto service = MakeService(options);
    ASSERT_TRUE(service->Schedule(TinyRequest(1)).ok);
    ASSERT_TRUE(service->Schedule(TinyRequest(2)).ok);  // evicts seed 1
    ASSERT_TRUE(service->Schedule(TinyRequest(1)).ok);  // recomputed
    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.searches, 3u);
    EXPECT_GE(stats.result_cache.evictions, 1u);
    EXPECT_EQ(service->result_cache().size(), 1u);
}

TEST(Service, PersistentCacheSurvivesRestart)
{
    ServiceOptions options;
    options.cache_dir = FreshDir("service_persist");

    std::string cold_text;
    {
        auto service = MakeService(options);
        ScheduleResult cold = service->Schedule(TinyRequest(5), &cold_text);
        ASSERT_TRUE(cold.ok) << cold.error;
        EXPECT_EQ(service->stats().result_cache.disk_writes, 1u);
    }

    auto service = MakeService(options);  // "restarted" process
    std::string warm_text;
    ScheduleResult warm = service->Schedule(TinyRequest(5), &warm_text);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm_text, cold_text);
    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.searches, 0u);
    EXPECT_EQ(stats.result_cache.disk_hits, 1u);
}

TEST(Service, InlineGraphsBypassTheCache)
{
    auto service = MakeService();
    ScheduleRequest request;
    request.graph = std::make_shared<const Graph>(BuildSvcTiny(1));
    request.profile = SearchProfile::kQuick;
    ASSERT_TRUE(service->Schedule(request).ok);
    ASSERT_TRUE(service->Schedule(request).ok);
    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.uncacheable, 2u);
    EXPECT_EQ(stats.result_cache.hits, 0u);
    EXPECT_EQ(stats.result_cache.insertions, 0u);
}

TEST(Service, CoalescedSiblingsObserveOneSearch)
{
    auto service = MakeService();
    constexpr int kCallers = 3;

    // Whoever becomes leader stalls inside the search phase until both
    // siblings have joined the in-flight entry, guaranteeing overlap.
    std::atomic<bool> release{false};
    ScheduleRequest request = TinyRequest(11);
    request.on_progress = [&](const ProgressEvent &event) {
        if (event.phase != "search") return;
        const auto give_up =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (!release.load() &&
               std::chrono::steady_clock::now() < give_up)
            std::this_thread::yield();
    };

    std::vector<std::string> texts(kCallers);
    std::vector<ScheduleResult> results(kCallers);
    std::vector<std::thread> callers;
    for (int i = 0; i < kCallers; ++i) {
        callers.emplace_back([&, i] {
            results[i] = service->Schedule(request, &texts[i]);
        });
    }
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (service->stats().coalesced <
               static_cast<std::uint64_t>(kCallers - 1) &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::yield();
    EXPECT_EQ(service->stats().coalesced,
              static_cast<std::uint64_t>(kCallers - 1));
    release.store(true);
    for (std::thread &t : callers) t.join();

    for (int i = 0; i < kCallers; ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(texts[i], texts[0]);  // every sibling: same bytes
    }
    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kCallers));
    EXPECT_EQ(stats.searches, 1u);
}

TEST(Service, GraphCacheParsesModelOncePerSweep)
{
    auto service = MakeService();
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        ASSERT_TRUE(service->Schedule(TinyRequest(seed)).ok);
    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.graph_cache.misses, 1u);  // one build...
    EXPECT_EQ(stats.graph_cache.hits, 3u);    // ...three reuses
    EXPECT_EQ(stats.searches, 4u);            // distinct seeds: no hits
}

// ---------------------------------------------------- deadline + cancel

TEST(Service, DeadlineExpiredReportsDistinctStatusAndIsNotCached)
{
    auto service = MakeService();
    ScheduleRequest request = TinyRequest(13);
    request.profile = SearchProfile::kFull;
    request.deadline_ms = 1;
    ScheduleResult result = service->Schedule(request);

    // Truncated almost immediately: either the best-so-far was valid
    // (ok + deadline_expired) or nothing was found yet (a "deadline"
    // error) — both are distinct from success and from "cancelled".
    if (result.ok) {
        EXPECT_TRUE(result.deadline_expired);
        const Json json = result.ToJson();
        ASSERT_NE(json.Find("deadline_expired"), nullptr);
        EXPECT_TRUE(json.Find("deadline_expired")->AsBool());
    } else {
        EXPECT_NE(result.error.find("deadline"), std::string::npos);
    }

    // Wall-clock-truncated results violate the determinism contract,
    // so they never enter the cache.
    EXPECT_EQ(service->stats().result_cache.insertions, 0u);
    service->Schedule(request);
    EXPECT_EQ(service->stats().searches, 2u);
}

TEST(Service, CoalescedWaiterHonorsItsOwnDeadline)
{
    auto service = MakeService();

    // The leader stalls in its search phase; a sibling with a 50 ms
    // deadline must give up with the deadline status instead of
    // blocking on the leader.
    std::atomic<bool> release{false};
    ScheduleRequest leader_request = TinyRequest(19);
    leader_request.on_progress = [&](const ProgressEvent &event) {
        if (event.phase != "search") return;
        const auto give_up =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (!release.load() &&
               std::chrono::steady_clock::now() < give_up)
            std::this_thread::yield();
    };
    std::thread leader(
        [&] { ASSERT_TRUE(service->Schedule(leader_request).ok); });
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (service->stats().searches < 1 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::yield();

    ScheduleRequest sibling = TinyRequest(19);  // same fingerprint
    sibling.deadline_ms = 50;
    ScheduleResult aborted = service->Schedule(sibling);
    EXPECT_FALSE(aborted.ok);
    EXPECT_TRUE(aborted.deadline_expired);
    EXPECT_NE(aborted.error.find("deadline"), std::string::npos);
    EXPECT_EQ(aborted.model, "svc-tiny");

    release.store(true);
    leader.join();
    EXPECT_EQ(service->stats().searches, 1u);
}

// --------------------------------------------------- negative-result TTL

TEST(Service, NegativeMemoShieldsHotFailingFingerprints)
{
    ServiceOptions options;
    options.error_ttl_ms = 60000;  // never expires within the test
    auto service = MakeService(options);
    ScheduleRequest request = TinyRequest(1);
    request.model = "no-such-model";

    ScheduleResult first = service->Schedule(request);
    EXPECT_FALSE(first.ok);
    std::string text;
    ScheduleResult second = service->Schedule(request, &text);
    EXPECT_FALSE(second.ok);
    EXPECT_EQ(second.error, first.error);
    EXPECT_FALSE(text.empty());

    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.searches, 1u);  // the second request ran no search
    EXPECT_EQ(stats.negative_hits, 1u);
    EXPECT_EQ(stats.errors, 1u);
}

TEST(Service, NegativeMemoExpiresAndHealsWithRegistry)
{
    ServiceOptions options;
    options.error_ttl_ms = 1;
    auto service = MakeService(options);
    ScheduleRequest request = TinyRequest(2);
    request.model = "late-model";

    EXPECT_FALSE(service->Schedule(request).ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // The registry healed after the memo expired: errors are a TTL
    // memo, never a permanent cache.
    service->scheduler().models().Register("late-model", BuildSvcTiny);
    ScheduleResult healed = service->Schedule(request);
    EXPECT_TRUE(healed.ok);
    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.searches, 2u);
    EXPECT_EQ(stats.negative_hits, 0u);
}

TEST(Service, NegativeMemoDisabledByZeroTtl)
{
    ServiceOptions options;
    options.error_ttl_ms = 0;
    auto service = MakeService(options);
    ScheduleRequest request = TinyRequest(3);
    request.model = "no-such-model";

    EXPECT_FALSE(service->Schedule(request).ok);
    EXPECT_FALSE(service->Schedule(request).ok);
    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.searches, 2u);
    EXPECT_EQ(stats.negative_hits, 0u);
}

// ------------------------------------------------------------- warm state

TEST(WarmStateCache, SharesBundlesPerKeyAndEvictsLru)
{
    WarmStateCache cache(WarmStateCache::Options{2});
    SearchWarmState a = cache.Acquire(1, 10);
    ASSERT_TRUE(a.tilings);
    ASSERT_TRUE(a.tile_costs);
    SearchWarmState a2 = cache.Acquire(1, 10);
    EXPECT_EQ(a.tilings.get(), a2.tilings.get());
    EXPECT_EQ(a.tile_costs.get(), a2.tile_costs.get());
    EXPECT_EQ(cache.stats().acquires, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    // One graph across hardware points: tilings are hardware-free and
    // shared; tile costs are per-preset.
    SearchWarmState hw2 = cache.Acquire(1, 11);
    EXPECT_EQ(hw2.tilings.get(), a.tilings.get());
    EXPECT_NE(hw2.tile_costs.get(), a.tile_costs.get());

    // Beyond capacity the LRU tail drops; a re-acquire starts cold but
    // the old bundle stays safely usable by whoever still holds it.
    cache.Acquire(2, 10);
    cache.Acquire(3, 10);
    EXPECT_GT(cache.stats().evictions, 0u);
    SearchWarmState a3 = cache.Acquire(1, 10);
    EXPECT_NE(a3.tile_costs.get(), a.tile_costs.get());
    EXPECT_TRUE(a.tile_costs);  // in-flight holder unaffected

    WarmStateCache off(WarmStateCache::Options{0});
    SearchWarmState none = off.Acquire(1, 1);
    EXPECT_FALSE(none.tilings);
    EXPECT_FALSE(none.tile_costs);
    EXPECT_EQ(off.stats().acquires, 0u);
}

TEST(Service, WarmStateIsByteIdenticalAndWarmsAcrossSeeds)
{
    // The warm-state determinism contract: a search that starts from
    // another request's tilings/tile costs produces the same bytes as
    // a fully cold one — the caches hold content-addressed pure
    // values, so presence must not change any result.
    ServiceOptions cold_options;
    cold_options.warm_state_capacity = 0;  // pre-PR5 behaviour
    auto cold = MakeService(cold_options);
    auto warm = MakeService();  // warm state on by default

    // "Identical" means every scheduling field: only the wall-clock
    // timings under "stats" may differ between two real runs (the CI
    // determinism check strips them the same way).
    auto scheduling_bytes = [](const std::string &text) {
        Json json;
        std::string err;
        EXPECT_TRUE(Json::Parse(text, &json, &err)) << err;
        json.Erase("stats");
        return json.Dump(2);
    };
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        std::string cold_text, warm_text;
        ScheduleResult c = cold->Schedule(TinyRequest(seed), &cold_text);
        ScheduleResult w = warm->Schedule(TinyRequest(seed), &warm_text);
        ASSERT_TRUE(c.ok) << c.error;
        ASSERT_TRUE(w.ok) << w.error;
        EXPECT_EQ(scheduling_bytes(cold_text), scheduling_bytes(warm_text))
            << "seed " << seed;
        EXPECT_EQ(c.stats.iterations, w.stats.iterations);
        EXPECT_EQ(c.stats.evaluated, w.stats.evaluated);
        EXPECT_EQ(c.stats.accepted, w.stats.accepted);
    }
    // A GBUF-override point of the same (model, hardware preset) is a
    // result-cache miss but a warm-state hit: tilings are
    // hardware-free and tile costs preset-determined.
    ScheduleRequest dse = TinyRequest(1);
    dse.gbuf_bytes = 1 << 20;
    ASSERT_TRUE(warm->Schedule(dse).ok);

    const ServiceStats ws = warm->stats();
    EXPECT_EQ(ws.warm_state.acquires, 4u);
    EXPECT_EQ(ws.warm_state.hits, 3u);  // seeds 2, 3 and the DSE point
    EXPECT_GT(ws.warm_state.tiling_hits, 0u);
    EXPECT_GT(ws.warm_state.tiling_entries, 0u);
    EXPECT_GT(ws.warm_state.tile_cost_entries, 0u);
    EXPECT_GT(ws.warm_state.approx_bytes, 0u);

    const ServiceStats cs = cold->stats();
    EXPECT_EQ(cs.warm_state.acquires, 0u);  // disabled: never acquired
    EXPECT_EQ(cs.searches, 3u);
}

// --------------------------------------------- clock + counter correctness

TEST(Service, NegativeMemoTtlRunsOnInjectedMonotonicClock)
{
    // The TTL must be pure monotonic-clock arithmetic: with an
    // injected fake clock, expiry happens exactly when *that* clock
    // passes the deadline — no sleeping, and by construction no
    // dependence on the wall clock (whose jumps must neither
    // mass-expire nor immortalize entries).
    auto tick = std::make_shared<std::atomic<std::int64_t>>(0);
    ServiceOptions options;
    options.error_ttl_ms = 1000;
    options.now_fn = [tick] {
        return std::chrono::steady_clock::time_point(
            std::chrono::milliseconds(tick->load()));
    };
    auto service = MakeService(options);
    ScheduleRequest request = TinyRequest(4);
    request.model = "late-model";

    EXPECT_FALSE(service->Schedule(request).ok);  // memoized at t=0
    tick->store(999);  // one tick before expiry: replayed from memo
    EXPECT_FALSE(service->Schedule(request).ok);
    EXPECT_EQ(service->stats().negative_hits, 1u);
    EXPECT_EQ(service->stats().searches, 1u);

    tick->store(1000);  // the expiry instant: entry pruned
    service->scheduler().models().Register("late-model", BuildSvcTiny);
    EXPECT_TRUE(service->Schedule(request).ok);
    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.searches, 2u);
    EXPECT_EQ(stats.negative_hits, 1u);
}

TEST(Service, ConcurrentScheduleKeepsCountersConsistent)
{
    // Counter torn-write stress (runs under the TSan CI job): threads
    // hammer every exit door of Schedule() — cache hit, negative-memo
    // hit, coalesced wait, real search — and the atomic counters must
    // add up exactly afterwards.
    ServiceOptions options;
    options.error_ttl_ms = 60000;  // the memoized error never expires
    auto service = MakeService(options);
    ASSERT_TRUE(service->Schedule(TinyRequest(1)).ok);
    ASSERT_TRUE(service->Schedule(TinyRequest(2)).ok);
    ScheduleRequest bad = TinyRequest(3);
    bad.model = "no-such-model";
    EXPECT_FALSE(service->Schedule(bad).ok);  // prime the negative memo

    constexpr int kThreads = 8, kIters = 30;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                switch ((t + i) % 3) {
                  case 0: service->Schedule(TinyRequest(1)); break;
                  case 1: service->Schedule(TinyRequest(2)); break;
                  default: service->Schedule(bad); break;
                }
            }
        });
    }
    for (std::thread &t : threads) t.join();

    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.requests,
              3u + static_cast<std::uint64_t>(kThreads) * kIters);
    // Every named-model request leaves through exactly one door.
    EXPECT_EQ(stats.requests, stats.searches + stats.coalesced +
                                  stats.negative_hits +
                                  stats.result_cache.hits);
    EXPECT_EQ(stats.uncacheable, 0u);
    EXPECT_EQ(stats.errors, 1u);  // only the priming request searched
}

// ----------------------------------------------------------- cancellation

TEST(Cancellation, RunSaWindowStopsIterationGranularly)
{
    std::atomic<bool> cancel{true};  // pre-set: stop at the first check
    SaOptions opts;
    opts.iterations = 100000;
    opts.cancel = &cancel;
    opts.cancel_check_interval = 64;

    int current = 0, best = 0;
    double current_cost = 1000.0, best_cost = 1000.0;
    Rng rng(1);
    SaStats stats;
    RunSaWindow<int>(
        &current, &current_cost, &best, &best_cost,
        [](const int &cur, int *next, Rng &) {
            *next = cur + 1;
            return true;
        },
        [](const int &state) { return 1000.0 - state; }, opts, rng, 0,
        opts.iterations, &stats);

    EXPECT_LT(stats.iterations, opts.cancel_check_interval);
    EXPECT_EQ(stats.iterations, stats.evaluated + stats.no_move);
}

TEST(Cancellation, SyncScheduleCancelsMidSearch)
{
    Scheduler scheduler;
    scheduler.models().Register("svc-tiny", BuildSvcTiny);

    ScheduleRequest request = TinyRequest(17);
    request.profile = SearchProfile::kDefault;
    ScheduleResult full = scheduler.Schedule(request);
    ASSERT_TRUE(full.ok) << full.error;

    // Same request, but the flag trips as the search phase begins: the
    // annealing loops notice within one check interval.
    std::atomic<bool> cancel{false};
    request.cancel = &cancel;
    request.on_progress = [&](const ProgressEvent &event) {
        if (event.phase == "search") cancel.store(true);
    };
    ScheduleResult cancelled = scheduler.Schedule(request);
    EXPECT_FALSE(cancelled.ok);
    EXPECT_EQ(cancelled.error, "cancelled");
    EXPECT_FALSE(cancelled.deadline_expired);
    EXPECT_LT(cancelled.stats.iterations, full.stats.iterations);
}

}  // namespace
}  // namespace soma
