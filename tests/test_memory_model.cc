/**
 * @file
 * MemoryModel seam tests: the analytical backend must reproduce the
 * legacy inline DRAM math byte for byte over randomized schemes, the
 * banked backend must be deterministic (across thread counts and in
 * its validation replay), the delta-evaluation byte-identity walk must
 * hold with the seam active, and memory_model must be part of the
 * request's serialized identity (fingerprint).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "api/scheduler.h"
#include "hw/banked_dram.h"
#include "hw/memory_model.h"
#include "search/dlsa_heuristics.h"
#include "search/dlsa_stage.h"
#include "search/lfa_stage.h"
#include "sim/eval_context.h"
#include "sim/evaluator.h"
#include "sim/memory_validation.h"
#include "tiling/tiling_cache.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

/** Same branchy shape as test_delta_eval: gives order mutations room
 *  to move, so randomized schemes actually differ. */
Graph
MakeBranchy()
{
    GraphBuilder b("branchy", 1);
    LayerId stem = b.InputConv("stem", ExtShape{3, 32, 32}, 32, 3, 1, 1);
    LayerId a1 = b.Conv("a1", stem, 32, 3, 1, 1);
    LayerId a2 = b.Conv("a2", a1, 32, 3, 1, 1);
    LayerId skip = b.Eltwise("skip", {stem, a2});
    LayerId b1 = b.Conv("b1", skip, 64, 3, 2, 1);
    LayerId b2 = b.Conv("b2", b1, 64, 3, 1, 1);
    LayerId c1 = b.Conv("c1", skip, 64, 1, 2, 0);
    LayerId join = b.Eltwise("join", {b2, c1});
    LayerId head = b.Conv("head", join, 96, 3, 1, 1);
    b.MarkOutput(head);
    return b.Take();
}

void
ExpectReportsIdentical(const EvalReport &a, const EvalReport &b)
{
    ASSERT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.why_invalid, b.why_invalid);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.core_energy_j, b.core_energy_j);
    EXPECT_EQ(a.dram_energy_j, b.dram_energy_j);
    EXPECT_EQ(a.compute_busy, b.compute_busy);
    EXPECT_EQ(a.dram_busy, b.dram_busy);
    EXPECT_EQ(a.compute_util, b.compute_util);
    EXPECT_EQ(a.dram_util, b.dram_util);
    EXPECT_EQ(a.theory_max_util, b.theory_max_util);
    EXPECT_EQ(a.peak_buffer, b.peak_buffer);
    EXPECT_EQ(a.avg_buffer, b.avg_buffer);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    ASSERT_EQ(a.tile_times.size(), b.tile_times.size());
    for (std::size_t i = 0; i < a.tile_times.size(); ++i) {
        EXPECT_EQ(a.tile_times[i].start, b.tile_times[i].start) << i;
        EXPECT_EQ(a.tile_times[i].finish, b.tile_times[i].finish) << i;
    }
    ASSERT_EQ(a.tensor_times.size(), b.tensor_times.size());
    for (std::size_t i = 0; i < a.tensor_times.size(); ++i) {
        EXPECT_EQ(a.tensor_times[i].start, b.tensor_times[i].start) << i;
        EXPECT_EQ(a.tensor_times[i].finish, b.tensor_times[i].finish)
            << i;
    }
}

// ---------------------------------------------------------------------
// Backend #1: analytical == the legacy inline math, byte for byte.

TEST(MemoryModel, AnalyticalFillMatchesDramSecondsExactly)
{
    HardwareConfig hw = EdgeAccelerator();
    const Bytes bytes[] = {0, 1, 63, 64, 4096, 1 << 20, 123456789};
    const unsigned char is_load[] = {1, 0, 1, 1, 0, 1, 0};
    DramTransferList list;
    list.bytes = bytes;
    list.is_load = is_load;
    list.count = 7;
    std::vector<double> seconds;
    AnalyticalMemoryModel().FillTransferSeconds(hw, list, &seconds);
    ASSERT_EQ(seconds.size(), 7u);
    for (int j = 0; j < 7; ++j)
        EXPECT_EQ(seconds[j], hw.DramSeconds(bytes[j])) << j;
    Bytes total = 0;
    for (Bytes b : bytes) total += b;
    EXPECT_EQ(AnalyticalMemoryModel().ChannelBusySeconds(hw, total,
                                                         seconds),
              hw.DramSeconds(total));
}

TEST(MemoryModel, AnalyticalSeamIsByteIdenticalOverRandomSchemes)
{
    // The acceptance pin: evaluating through an explicit analytical
    // MemoryModel must produce bit-identical reports to the null seam
    // (the pre-refactor inline math) over randomized schemes.
    Graph g = MakeBranchy();
    HardwareConfig hw_null = EdgeAccelerator();
    HardwareConfig hw_seam = EdgeAccelerator();
    hw_seam.memory_model = &AnalyticalMemoryModel();
    CoreArrayEvaluator ce(g, hw_null);
    const Ops ops = g.TotalOps();
    const Bytes budget = hw_null.gbuf_bytes;

    Rng rng(977);
    LfaEncoding cur = MakeInitialLfa(g, hw_null, 16);
    LfaEncoding cand;
    int checked = 0;
    for (int i = 0; i < 24; ++i) {
        if (!MutateLfaEncoding(g, cur, &cand, 16, rng)) continue;
        ParsedSchedule parsed = ParseLfa(g, cand, ce);
        if (!parsed.valid) continue;
        DlsaEncoding dlsa = MakeDoubleBufferDlsa(parsed);
        EvalReport null_rep =
            EvaluateSchedule(g, hw_null, parsed, dlsa, budget, ops);
        EvalReport seam_rep =
            EvaluateSchedule(g, hw_seam, parsed, dlsa, budget, ops);
        ExpectReportsIdentical(null_rep, seam_rep);
        ++checked;
        if (rng.Flip()) cur = cand;
    }
    EXPECT_GT(checked, 8);
}

// ---------------------------------------------------------------------
// Backend #2: banked model properties.

TEST(MemoryModel, BankedClosedFormMatchesFreshBankReplay)
{
    // The in-search closed form and the validation replay describe one
    // timing rule: for a single row-aligned transfer from cold banks
    // (no cross-tensor history, no turnaround) they must agree exactly.
    const BankedDramModel &model = BankedMemoryModel();
    HardwareConfig hw = EdgeAccelerator();
    const Bytes sizes[] = {1,      64,      2048,       2049,
                           16384,  16448,   1 << 20,    (1 << 20) + 7};
    for (Bytes bytes : sizes) {
        const unsigned char load = 1;
        DramTransferList list;
        list.bytes = &bytes;
        list.is_load = &load;
        list.count = 1;
        std::vector<double> closed;
        model.FillTransferSeconds(hw, list, &closed);

        std::vector<BankedTransfer> stream(1);
        stream[0].address = 0;
        stream[0].bytes = bytes;
        stream[0].is_load = true;
        std::vector<double> replayed;
        BankedReplayStats stats;
        model.ReplayTensorStream(hw, stream, &replayed, &stats);
        EXPECT_EQ(closed[0], replayed[0]) << bytes;
        EXPECT_EQ(stats.turnarounds, 0u);
        EXPECT_EQ(stats.busy_seconds, replayed[0]);
    }
}

TEST(MemoryModel, BankedCostsExceedAnalyticalAndStayFinite)
{
    // Same bus bandwidth + activate/precharge overhead: the banked
    // per-transfer cost can never undercut the analytical one.
    HardwareConfig hw = EdgeAccelerator();
    const Bytes bytes[] = {1, 64, 2048, 65536, 1 << 22};
    const unsigned char is_load[] = {1, 1, 0, 1, 0};
    DramTransferList list;
    list.bytes = bytes;
    list.is_load = is_load;
    list.count = 5;
    std::vector<double> banked, analytical;
    BankedMemoryModel().FillTransferSeconds(hw, list, &banked);
    AnalyticalMemoryModel().FillTransferSeconds(hw, list, &analytical);
    for (int j = 0; j < 5; ++j) {
        EXPECT_GT(banked[j], analytical[j]) << j;
        EXPECT_TRUE(std::isfinite(banked[j])) << j;
    }
}

TEST(MemoryModel, BankedReplayCountsRowReuse)
{
    // Two back-to-back reads of one row-sized tensor at one address:
    // the second transfer's bursts all hit the first one's open rows.
    const BankedDramModel &model = BankedMemoryModel();
    HardwareConfig hw = EdgeAccelerator();
    const Bytes row = model.params().row_bytes;
    const std::uint64_t bursts_per_row =
        static_cast<std::uint64_t>(row / model.params().burst_bytes);
    std::vector<BankedTransfer> stream(2);
    stream[0] = BankedTransfer{0, row, true};
    stream[1] = BankedTransfer{0, row, true};
    std::vector<double> seconds;
    BankedReplayStats stats;
    model.ReplayTensorStream(hw, stream, &seconds, &stats);
    EXPECT_EQ(stats.transactions, 2 * bursts_per_row);
    EXPECT_EQ(stats.row_misses, 1u);
    EXPECT_EQ(stats.row_hits, 2 * bursts_per_row - 1);
    EXPECT_EQ(stats.row_conflicts, 0u);
    EXPECT_LT(seconds[1], seconds[0]);  // open-row reuse is cheaper

    // A load->store flip pays exactly one turnaround.
    stream[1].is_load = false;
    model.ReplayTensorStream(hw, stream, &seconds, &stats);
    EXPECT_EQ(stats.turnarounds, 1u);
}

TEST(MemoryModel, BankedSearchIsDeterministicAcrossThreadCounts)
{
    // `threads` is a wall-clock knob, never identity — that contract
    // must survive the banked backend steering the search.
    auto graph = std::make_shared<const Graph>(MakeBranchy());
    auto run = [&](int threads) {
        Scheduler scheduler;
        ScheduleRequest request;
        request.graph = graph;
        request.memory_model = "banked";
        request.profile = SearchProfile::kQuick;
        request.seed = 11;
        request.threads = threads;
        return scheduler.Schedule(request);
    };
    ScheduleResult one = run(1);
    ScheduleResult four = run(4);
    ASSERT_TRUE(one.ok) << one.error;
    ASSERT_TRUE(four.ok) << four.error;
    EXPECT_EQ(one.cost, four.cost);
    ExpectReportsIdentical(one.report, four.report);
    EXPECT_EQ(one.scheme, four.scheme);
}

TEST(MemoryModel, ValidationGapIsDeterministicAndFinite)
{
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    LfaEncoding lfa = MakeInitialLfa(g, hw, 16);
    ParsedSchedule parsed = ParseLfa(g, lfa, ce);
    ASSERT_TRUE(parsed.valid);
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(parsed);

    MemoryValidationResult a = ValidateMemoryTiming(g, hw, parsed, dlsa);
    MemoryValidationResult b = ValidateMemoryTiming(g, hw, parsed, dlsa);
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_TRUE(std::isfinite(a.gap_pct));
    EXPECT_GT(a.banked_latency, 0.0);
    EXPECT_GE(a.banked_latency, a.analytical_latency);
    // Bitwise repeatable: same schedule, same stream, same replay.
    EXPECT_EQ(a.gap_pct, b.gap_pct);
    EXPECT_EQ(a.analytical_latency, b.analytical_latency);
    EXPECT_EQ(a.banked_latency, b.banked_latency);
    EXPECT_EQ(a.replay.transactions, b.replay.transactions);
    EXPECT_EQ(a.replay.row_hits, b.replay.row_hits);
    EXPECT_GT(a.replay.transactions, 0u);
}

// ---------------------------------------------------------------------
// The delta path stays bitwise-safe with the seam active.

TEST(MemoryModel, DeltaEvalByteIdentityWalkWithBankedSeam)
{
    // The test_delta_eval DLSA-walk pattern under the banked backend:
    // every incremental evaluation must match a from-scratch one bit
    // for bit, and the windowed fast path must engage and splice.
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    hw.memory_model = &BankedMemoryModel();
    CoreArrayEvaluator ce(g, hw);
    const Ops ops = g.TotalOps();
    const Bytes budget = hw.gbuf_bytes;

    EvalContext ctx;
    ctx.set_tiling_cache(std::make_shared<TilingCache>());
    LfaEncoding lfa = MakeInitialLfa(g, hw, 16);
    ParsedSchedule parsed = ParseLfa(g, lfa, ce);
    ASSERT_TRUE(parsed.valid);
    DlsaEncoding cur = MakeDoubleBufferDlsa(parsed);
    ASSERT_TRUE(ctx.Evaluate(g, hw, parsed, cur, budget, ops).valid);
    ctx.Commit();

    DlsaMutator mutate(parsed);
    Rng rng(389);
    DlsaEncoding cand;
    DlsaDelta delta;
    int checked = 0;
    for (int i = 0; i < 120; ++i) {
        if (!mutate(cur, &cand, rng, &delta)) continue;
        const EvalReport &inc =
            ctx.EvaluateDelta(g, hw, parsed, cand, delta, budget, ops);
        EvalReport ref =
            EvaluateSchedule(g, hw, parsed, cand, budget, ops);
        ExpectReportsIdentical(inc, ref);
        ++checked;
        if (inc.valid && rng.Flip()) {
            ctx.Commit();
            std::swap(cur, cand);
        }
    }
    EXPECT_GT(checked, 60);
    const EvalContext::DeltaStats &ds = ctx.delta_stats();
    EXPECT_GT(ds.delta_evals, 0u);
    EXPECT_GT(ds.windowed_runs, 0u);
    EXPECT_GT(ds.splices, 0u);
}

// ---------------------------------------------------------------------
// API identity and registry behavior.

TEST(MemoryModel, FingerprintChangesWithMemoryModel)
{
    ScheduleRequest base;
    base.model = "resnet50";
    ScheduleRequest banked = base;
    banked.memory_model = "banked";
    ScheduleRequest analytical = base;
    analytical.memory_model = "analytical";

    EXPECT_NE(base.Fingerprint(), banked.Fingerprint());
    EXPECT_NE(base.Fingerprint(), analytical.Fingerprint());
    EXPECT_NE(analytical.Fingerprint(), banked.Fingerprint());

    // The empty default is omitted from JSON: pre-seam request texts
    // keep their fingerprints (and cached results stay valid).
    EXPECT_EQ(base.ToJson().Find("memory_model"), nullptr);
    ASSERT_NE(banked.ToJson().Find("memory_model"), nullptr);

    // Round trip preserves the field.
    ScheduleRequest round;
    std::string err;
    ASSERT_TRUE(ScheduleRequest::FromJson(banked.ToJson(), &round, &err))
        << err;
    EXPECT_EQ(round.memory_model, "banked");
    EXPECT_EQ(round.Fingerprint(), banked.Fingerprint());
}

TEST(MemoryModel, RegistryRejectsUnknownWithCandidates)
{
    MemoryModelRegistry reg = MemoryModelRegistry::WithBuiltins();
    EXPECT_TRUE(reg.Has("analytical"));
    EXPECT_TRUE(reg.Has("banked"));
    std::string err;
    EXPECT_EQ(reg.Find("hbm", &err), nullptr);
    EXPECT_NE(err.find("unknown memory model \"hbm\""), std::string::npos)
        << err;
    EXPECT_NE(err.find("analytical, banked"), std::string::npos) << err;
}

TEST(MemoryModel, SchedulerRejectsUnknownModelInRequest)
{
    Scheduler scheduler;
    ScheduleRequest request;
    request.graph = std::make_shared<const Graph>(MakeBranchy());
    request.memory_model = "hbm3";
    ScheduleResult result = scheduler.Schedule(request);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("unknown memory model"),
              std::string::npos)
        << result.error;
}

}  // namespace
}  // namespace soma
