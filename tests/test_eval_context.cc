/**
 * @file
 * EvalContext tests: incremental (suffix-resumed) re-evaluation must be
 * bit-identical to full evaluation across randomized DLSA mutations,
 * including the invalid paths (buffer overflow, schedule deadlock), and
 * the reusable parse must match the allocating ParseLfa.
 */
#include <gtest/gtest.h>

#include <limits>

#include "search/dlsa_heuristics.h"
#include "search/dlsa_stage.h"
#include "sim/eval_context.h"
#include "sim/evaluator.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

Graph
MakeConvChain(int layers)
{
    GraphBuilder b("chain", 1);
    LayerId x = b.InputConv("c0", ExtShape{3, 32, 32}, 64, 3, 1, 1);
    for (int i = 1; i < layers; ++i)
        x = b.Conv("c" + std::to_string(i), x, 64, 3, 1, 1);
    b.MarkOutput(x);
    return b.Take();
}

/** Two LGs with tiling, so the parse has weight loads, cross-LG ifmap
 *  loads, ofmap stores, and on-chip intervals. */
LfaEncoding
MakeTwoLgLfa(const Graph &g)
{
    LfaEncoding lfa;
    lfa.order = g.TopoOrder();
    lfa.flc_cuts = {3};
    lfa.dram_cuts = {3};
    lfa.tiling = {2, 2};
    return lfa;
}

void
ExpectReportsIdentical(const EvalReport &a, const EvalReport &b)
{
    ASSERT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.why_invalid, b.why_invalid);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.core_energy_j, b.core_energy_j);
    EXPECT_EQ(a.dram_energy_j, b.dram_energy_j);
    EXPECT_EQ(a.compute_busy, b.compute_busy);
    EXPECT_EQ(a.dram_busy, b.dram_busy);
    EXPECT_EQ(a.compute_util, b.compute_util);
    EXPECT_EQ(a.dram_util, b.dram_util);
    EXPECT_EQ(a.theory_max_util, b.theory_max_util);
    EXPECT_EQ(a.peak_buffer, b.peak_buffer);
    EXPECT_EQ(a.avg_buffer, b.avg_buffer);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    EXPECT_EQ(a.num_tiles, b.num_tiles);
    EXPECT_EQ(a.num_tensors, b.num_tensors);
    EXPECT_EQ(a.num_flgs, b.num_flgs);
    EXPECT_EQ(a.num_lgs, b.num_lgs);
    ASSERT_EQ(a.tile_times.size(), b.tile_times.size());
    for (std::size_t i = 0; i < a.tile_times.size(); ++i) {
        EXPECT_EQ(a.tile_times[i].start, b.tile_times[i].start) << i;
        EXPECT_EQ(a.tile_times[i].finish, b.tile_times[i].finish) << i;
    }
    ASSERT_EQ(a.tensor_times.size(), b.tensor_times.size());
    for (std::size_t i = 0; i < a.tensor_times.size(); ++i) {
        EXPECT_EQ(a.tensor_times[i].start, b.tensor_times[i].start) << i;
        EXPECT_EQ(a.tensor_times[i].finish, b.tensor_times[i].finish) << i;
    }
}

/** Random walk of mutations; every candidate is evaluated both
 *  incrementally and from scratch, and random acceptances advance the
 *  incremental base. */
void
RunIncrementalWalk(Bytes budget, std::uint64_t seed, int steps)
{
    Graph g = MakeConvChain(6);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    ParsedSchedule parsed = ParseLfa(g, MakeTwoLgLfa(g), ce);
    ASSERT_TRUE(parsed.valid);
    ASSERT_GT(parsed.NumTensors(), 4);
    const Ops ops = g.TotalOps();

    EvalContext ctx;
    DlsaEncoding current = MakeDoubleBufferDlsa(parsed);
    ctx.Evaluate(g, hw, parsed, current, budget, ops);
    ctx.Commit();

    DlsaMutator mutate(parsed);
    Rng rng(seed);
    DlsaEncoding cand;
    DlsaDelta delta;
    int evaluated = 0, incremental_hits = 0;
    for (int i = 0; i < steps; ++i) {
        if (!mutate(current, &cand, rng, &delta)) continue;
        if (ctx.HasBase()) ++incremental_hits;
        const EvalReport &inc =
            ctx.EvaluateDelta(g, hw, parsed, cand, delta, budget, ops);
        EvalReport full = EvaluateSchedule(g, hw, parsed, cand, budget, ops);
        ExpectReportsIdentical(inc, full);
        ++evaluated;
        // SA only ever accepts valid candidates (invalid cost +inf);
        // mirror that so the committed base stays valid.
        if (full.valid && rng.Flip()) {
            ctx.Commit();
            current = cand;
        }
    }
    EXPECT_GT(evaluated, steps / 2);
    // The walk must actually exercise the incremental path, not the
    // full-evaluation fallback.
    EXPECT_GT(incremental_hits, evaluated / 2);
}

TEST(EvalContext, IncrementalMatchesFullUnderFullBudget)
{
    HardwareConfig hw = EdgeAccelerator();
    RunIncrementalWalk(hw.gbuf_bytes, 101, 400);
}

TEST(EvalContext, IncrementalMatchesFullUnderTightBudget)
{
    // A budget near the double-buffer peak makes many mutations overflow
    // the buffer, covering the early-invalid incremental path.
    Graph g = MakeConvChain(6);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    ParsedSchedule parsed = ParseLfa(g, MakeTwoLgLfa(g), ce);
    ASSERT_TRUE(parsed.valid);
    Bytes peak = PeakBufferUsage(parsed, MakeDoubleBufferDlsa(parsed));
    RunIncrementalWalk(peak + peak / 16, 202, 400);
}

TEST(EvalContext, CommitIsOptionalBetweenEvaluations)
{
    // Rejected candidates must not disturb the base: evaluating the
    // same candidate twice with other rejected evaluations in between
    // yields identical reports.
    Graph g = MakeConvChain(6);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    ParsedSchedule parsed = ParseLfa(g, MakeTwoLgLfa(g), ce);
    ASSERT_TRUE(parsed.valid);
    const Ops ops = g.TotalOps();

    EvalContext ctx;
    DlsaEncoding base = MakeDoubleBufferDlsa(parsed);
    ctx.Evaluate(g, hw, parsed, base, hw.gbuf_bytes, ops);
    ctx.Commit();

    DlsaMutator mutate(parsed);
    Rng rng(7);
    DlsaEncoding cand;
    DlsaDelta delta;
    ASSERT_TRUE(mutate(base, &cand, rng, &delta));
    EvalReport first =
        ctx.EvaluateDelta(g, hw, parsed, cand, delta, hw.gbuf_bytes, ops);

    DlsaEncoding other;
    DlsaDelta other_delta;
    for (int i = 0; i < 10; ++i) {
        if (mutate(base, &other, rng, &other_delta)) {
            ctx.EvaluateDelta(g, hw, parsed, other, other_delta,
                              hw.gbuf_bytes, ops);  // rejected
        }
    }
    const EvalReport &again =
        ctx.EvaluateDelta(g, hw, parsed, cand, delta, hw.gbuf_bytes, ops);
    ExpectReportsIdentical(first, again);
}

/** Hand-built two-load schedule whose DRAM order deadlocks: the first
 *  tensor in DRAM order waits for tile 0, which waits for the second. */
ParsedSchedule
MakeDeadlockParse()
{
    ParsedSchedule p;
    p.valid = true;
    p.num_flgs = 1;
    p.num_lgs = 1;
    p.tiles.resize(3);
    for (TileInfo &t : p.tiles) t.cost.seconds = 1e-3;
    DramTensor l0;
    l0.kind = DramTensorKind::kWeight;
    l0.layer = 0;
    l0.bytes = 128;
    l0.first_use = 0;
    l0.fixed_end = 3;
    DramTensor l1 = l0;
    l1.layer = 1;
    l1.first_use = 2;
    p.tensors = {l0, l1};
    p.tiles[0].need_loads = {0};
    p.tiles[2].need_loads = {1};
    return p;
}

TEST(Evaluator, ReportsScheduleDeadlock)
{
    Graph g = MakeConvChain(2);  // evaluator only reads parsed + hw
    HardwareConfig hw = EdgeAccelerator();
    ParsedSchedule p = MakeDeadlockParse();

    DlsaEncoding dlsa;
    dlsa.order = {1, 0};      // tensor 1 first: waits for tiles 0..1
    dlsa.free_point = {0, 2};  // tensor 1 starts at tile 2
    ASSERT_TRUE(DlsaValid(p, dlsa));

    EvalReport rep =
        EvaluateSchedule(g, hw, p, dlsa, 1 << 20, /*total_ops=*/1000);
    EXPECT_FALSE(rep.valid);
    EXPECT_EQ(rep.why_invalid, "schedule deadlock (DLSA order)");
    EXPECT_EQ(rep.Cost(), std::numeric_limits<double>::infinity());
}

TEST(EvalContext, IncrementalDeadlockMatchesFull)
{
    Graph g = MakeConvChain(2);
    HardwareConfig hw = EdgeAccelerator();
    ParsedSchedule p = MakeDeadlockParse();
    const Ops ops = 1000;
    const Bytes budget = 1 << 20;

    DlsaEncoding base;
    base.order = {0, 1};
    base.free_point = {0, 2};

    EvalContext ctx;
    ASSERT_TRUE(ctx.Evaluate(g, hw, p, base, budget, ops).valid);
    ctx.Commit();

    // Swap the order: tensor 0 moves behind tensor 1 -> deadlock.
    DlsaEncoding cand = base;
    cand.order = {1, 0};
    DlsaDelta delta;
    delta.kind = DlsaDelta::Kind::kOrderMove;
    delta.tensor = 0;
    delta.from_rank = 0;
    delta.to_rank = 1;

    const EvalReport &inc =
        ctx.EvaluateDelta(g, hw, p, cand, delta, budget, ops);
    EvalReport full = EvaluateSchedule(g, hw, p, cand, budget, ops);
    ExpectReportsIdentical(inc, full);
    EXPECT_FALSE(inc.valid);

    // The base must survive the rejected deadlock candidate.
    DlsaEncoding cand2 = base;
    cand2.free_point = {0, 1};
    DlsaDelta d2;
    d2.kind = DlsaDelta::Kind::kFreePoint;
    d2.tensor = 1;
    d2.old_point = 2;
    d2.new_point = 1;
    const EvalReport &inc2 =
        ctx.EvaluateDelta(g, hw, p, cand2, d2, budget, ops);
    EvalReport full2 = EvaluateSchedule(g, hw, p, cand2, budget, ops);
    ExpectReportsIdentical(inc2, full2);
}

TEST(EvalContext, ParseMatchesParseLfa)
{
    Graph g = MakeConvChain(6);
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    LfaEncoding lfa = MakeTwoLgLfa(g);

    EvalContext ctx;
    // Parse twice through the same scratch: the second result must be
    // unaffected by the first's leftovers.
    ctx.Parse(g, lfa, ce);
    const ParsedSchedule &a = ctx.Parse(g, lfa, ce);
    ParsedSchedule b = ParseLfa(g, lfa, ce);
    ASSERT_EQ(a.valid, b.valid);
    ASSERT_EQ(a.NumTiles(), b.NumTiles());
    ASSERT_EQ(a.NumTensors(), b.NumTensors());
    EXPECT_EQ(a.num_flgs, b.num_flgs);
    EXPECT_EQ(a.num_lgs, b.num_lgs);
    for (int j = 0; j < a.NumTensors(); ++j) {
        EXPECT_EQ(a.tensors[j].kind, b.tensors[j].kind) << j;
        EXPECT_EQ(a.tensors[j].bytes, b.tensors[j].bytes) << j;
        EXPECT_EQ(a.tensors[j].first_use, b.tensors[j].first_use) << j;
        EXPECT_EQ(a.tensors[j].fixed_end, b.tensors[j].fixed_end) << j;
    }
    for (int i = 0; i < a.NumTiles(); ++i) {
        EXPECT_EQ(a.tiles[i].layer, b.tiles[i].layer) << i;
        EXPECT_EQ(a.tiles[i].cost.seconds, b.tiles[i].cost.seconds) << i;
        EXPECT_EQ(a.tiles[i].need_loads, b.tiles[i].need_loads) << i;
    }
    ASSERT_EQ(a.onchip.size(), b.onchip.size());
}

}  // namespace
}  // namespace soma
