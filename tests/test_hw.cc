/**
 * @file
 * Hardware model tests: the Sec. VI-A platform presets and the derived
 * throughput/bandwidth quantities the evaluator depends on.
 */
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "hw/hardware.h"

namespace soma {
namespace {

TEST(Hardware, EdgePresetMatchesPaperSpec)
{
    HardwareConfig hw = EdgeAccelerator();
    // ~16 TOPS (paper references 15-17 TOPS phone-class NPUs).
    EXPECT_NEAR(hw.PeakTops(), 16.0, 1.0);
    EXPECT_EQ(hw.gbuf_bytes, 8LL * 1024 * 1024);
    EXPECT_DOUBLE_EQ(hw.dram_gbps, 16.0);
}

TEST(Hardware, CloudPresetMatchesPaperSpec)
{
    HardwareConfig hw = CloudAccelerator();
    // ~128 TOPS (Orin / TPU-v4i class).
    EXPECT_NEAR(hw.PeakTops(), 128.0, 8.0);
    EXPECT_EQ(hw.gbuf_bytes, 32LL * 1024 * 1024);
    EXPECT_DOUBLE_EQ(hw.dram_gbps, 128.0);
}

TEST(Hardware, PeakOpsConsistentWithGeometry)
{
    HardwareConfig hw = EdgeAccelerator();
    double expected = 2.0 * hw.cores * hw.pe_rows_per_core *
                      hw.pe_cols_per_core * hw.freq_ghz * 1e9;
    EXPECT_DOUBLE_EQ(hw.PeakOpsPerSecond(), expected);
}

TEST(Hardware, DramSecondsLinearInBytes)
{
    HardwareConfig hw = EdgeAccelerator();
    EXPECT_DOUBLE_EQ(hw.DramSeconds(0), 0.0);
    EXPECT_NEAR(hw.DramSeconds(16'000'000'000LL), 1.0, 1e-12);
    EXPECT_NEAR(hw.DramSeconds(1'000'000), 2.0 * hw.DramSeconds(500'000),
                1e-15);
}

TEST(Hardware, WithBufferAndBandwidthOverridesOnlyThose)
{
    HardwareConfig base = EdgeAccelerator();
    HardwareConfig hw = WithBufferAndBandwidth(base, 1234, 99.0);
    EXPECT_EQ(hw.gbuf_bytes, 1234);
    EXPECT_DOUBLE_EQ(hw.dram_gbps, 99.0);
    EXPECT_EQ(hw.cores, base.cores);
    EXPECT_DOUBLE_EQ(hw.PeakTops(), base.PeakTops());
}

TEST(Hardware, ScaledHardwareValidatesArguments)
{
    HardwareConfig base = EdgeAccelerator();
    HardwareConfig out;
    std::string err;

    EXPECT_TRUE(ScaledHardware(base, 1234, 99.0, &out, &err)) << err;
    EXPECT_EQ(out.gbuf_bytes, 1234);
    EXPECT_DOUBLE_EQ(out.dram_gbps, 99.0);
    EXPECT_EQ(out.cores, base.cores);

    EXPECT_FALSE(ScaledHardware(base, 0, 99.0, &out, &err));
    EXPECT_NE(err.find("gbuf_bytes"), std::string::npos) << err;
    EXPECT_FALSE(ScaledHardware(base, -64, 99.0, &out, &err));
    EXPECT_FALSE(ScaledHardware(base, 1234, 0.0, &out, &err));
    EXPECT_NE(err.find("dram_gbps"), std::string::npos) << err;
    EXPECT_FALSE(ScaledHardware(base, 1234, -1.0, &out, &err));
    EXPECT_FALSE(ScaledHardware(
        base, 1234, std::numeric_limits<double>::quiet_NaN(), &out, &err));
    EXPECT_FALSE(ScaledHardware(
        base, 1234, std::numeric_limits<double>::infinity(), &out, &err));
    EXPECT_NE(err.find("finite"), std::string::npos) << err;
}

TEST(Hardware, VectorThroughputScalesWithCores)
{
    HardwareConfig hw = EdgeAccelerator();
    double per_core = hw.VectorOpsPerSecond() / hw.cores;
    EXPECT_DOUBLE_EQ(per_core,
                     hw.vector_lanes_per_core * hw.freq_ghz * 1e9);
}

TEST(Hardware, EnergyDefaultsOrdered)
{
    // DRAM access must dominate GBUF, which dominates L0 — the memory
    // hierarchy energy ordering the whole optimization relies on.
    EnergyModel e;
    EXPECT_GT(e.dram_pj_per_byte, e.gbuf_pj_per_byte);
    EXPECT_GT(e.gbuf_pj_per_byte, e.l0_pj_per_byte);
}

}  // namespace
}  // namespace soma
