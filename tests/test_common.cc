/**
 * @file
 * Unit tests for common utilities: RNG determinism and distributions,
 * table rendering, formatting helpers, logging levels.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"

namespace soma {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.UniformInt(0, 1 << 20) == b.UniformInt(0, 1 << 20)) ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int v = rng.UniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(7);
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.UniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, FlipProbabilityRoughlyRespected)
{
    Rng rng(13);
    int heads = 0;
    for (int i = 0; i < 10000; ++i) {
        if (rng.Flip(0.25)) ++heads;
    }
    EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(Rng, WeightedIndexProportional)
{
    Rng rng(17);
    std::vector<double> weights = {1.0, 3.0};
    int counts[2] = {0, 0};
    for (int i = 0; i < 20000; ++i) ++counts[rng.WeightedIndex(weights)];
    EXPECT_NEAR(counts[1] / 20000.0, 0.75, 0.03);
}

TEST(Rng, WeightedIndexAllZeroReturnsMinusOne)
{
    Rng rng(19);
    std::vector<double> weights = {0.0, 0.0};
    EXPECT_EQ(rng.WeightedIndex(weights), -1);
    EXPECT_EQ(rng.WeightedIndex({}), -1);
}

TEST(Table, AlignedPrinting)
{
    Table t({"net", "speedup"});
    t.AddRow({"resnet50", "2.15"});
    t.AddRow({"gpt2", "1.14"});
    std::ostringstream os;
    t.Print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("resnet50"), std::string::npos);
    EXPECT_NE(text.find("speedup"), std::string::npos);
    EXPECT_EQ(t.NumRows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.AddRow({"1", "2"});
    std::ostringstream os;
    t.PrintCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Format, DoublePrecision)
{
    EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(Format, Bytes)
{
    EXPECT_EQ(FormatBytes(512), "512.00B");
    EXPECT_EQ(FormatBytes(8.0 * 1024 * 1024), "8.00MB");
    EXPECT_EQ(FormatBytes(2.0 * 1024 * 1024 * 1024), "2.00GB");
}

TEST(Logging, LevelFilter)
{
    LogLevel old = GetLogLevel();
    SetLogLevel(LogLevel::kError);
    EXPECT_EQ(GetLogLevel(), LogLevel::kError);
    SetLogLevel(old);
}

}  // namespace
}  // namespace soma
