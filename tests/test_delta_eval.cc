/**
 * @file
 * Delta timeline evaluation tests: the windowed re-simulation behind
 * EvalContext::EvaluateDelta / EvaluateLfa must be bit-identical to a
 * from-scratch evaluation over randomized mutation chains that mix
 * DLSA moves, LFA operators, and intra-group order moves — and the
 * windowed fast path must actually engage, not silently fall back.
 * Also covers the per-candidate arena scratch: results must not depend
 * on what a previous candidate left in the bump allocator (ASan runs
 * in CI make a stale-read here a hard failure, not a flake).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "search/dlsa_heuristics.h"
#include "search/dlsa_stage.h"
#include "search/lfa_stage.h"
#include "sim/eval_context.h"
#include "sim/evaluator.h"
#include "tiling/tiling_cache.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

/** A residual-ish graph: branches give order mutations room to move
 *  (a pure chain admits no dependency-legal interior order moves). */
Graph
MakeBranchy()
{
    GraphBuilder b("branchy", 1);
    LayerId stem = b.InputConv("stem", ExtShape{3, 32, 32}, 32, 3, 1, 1);
    LayerId a1 = b.Conv("a1", stem, 32, 3, 1, 1);
    LayerId a2 = b.Conv("a2", a1, 32, 3, 1, 1);
    LayerId skip = b.Eltwise("skip", {stem, a2});
    LayerId b1 = b.Conv("b1", skip, 64, 3, 2, 1);
    LayerId b2 = b.Conv("b2", b1, 64, 3, 1, 1);
    LayerId c1 = b.Conv("c1", skip, 64, 1, 2, 0);
    LayerId join = b.Eltwise("join", {b2, c1});
    LayerId head = b.Conv("head", join, 96, 3, 1, 1);
    b.MarkOutput(head);
    return b.Take();
}

void
ExpectReportsIdentical(const EvalReport &a, const EvalReport &b)
{
    ASSERT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.why_invalid, b.why_invalid);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.core_energy_j, b.core_energy_j);
    EXPECT_EQ(a.dram_energy_j, b.dram_energy_j);
    EXPECT_EQ(a.compute_busy, b.compute_busy);
    EXPECT_EQ(a.dram_busy, b.dram_busy);
    EXPECT_EQ(a.compute_util, b.compute_util);
    EXPECT_EQ(a.dram_util, b.dram_util);
    EXPECT_EQ(a.theory_max_util, b.theory_max_util);
    EXPECT_EQ(a.peak_buffer, b.peak_buffer);
    EXPECT_EQ(a.avg_buffer, b.avg_buffer);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    EXPECT_EQ(a.num_tiles, b.num_tiles);
    EXPECT_EQ(a.num_tensors, b.num_tensors);
    ASSERT_EQ(a.tile_times.size(), b.tile_times.size());
    for (std::size_t i = 0; i < a.tile_times.size(); ++i) {
        EXPECT_EQ(a.tile_times[i].start, b.tile_times[i].start) << i;
        EXPECT_EQ(a.tile_times[i].finish, b.tile_times[i].finish) << i;
    }
    ASSERT_EQ(a.tensor_times.size(), b.tensor_times.size());
    for (std::size_t i = 0; i < a.tensor_times.size(); ++i) {
        EXPECT_EQ(a.tensor_times[i].start, b.tensor_times[i].start) << i;
        EXPECT_EQ(a.tensor_times[i].finish, b.tensor_times[i].finish)
            << i;
    }
}

/** Move one layer to another dependency-legal position *within its own
 *  FLG* — the sink-set-preserving subset of "Change Computing Order",
 *  the move the permutation-view group blocks exist for. */
bool
MutateOrderWithinGroup(const Graph &g, LfaEncoding *lfa, Rng &rng)
{
    const int n = static_cast<int>(lfa->order.size());
    std::vector<int> pos(n);
    for (int i = 0; i < n; ++i) pos[lfa->order[i]] = i;
    for (int attempt = 0; attempt < 16; ++attempt) {
        const int gidx = rng.UniformInt(0, lfa->NumFlgs() - 1);
        int begin, end;
        lfa->FlgRange(gidx, &begin, &end);
        if (end - begin < 2) continue;
        const int p = rng.UniformInt(begin, end - 1);
        const LayerId id = lfa->order[p];
        int lo = begin, hi = end - 1;
        for (const InputRef &in : g.layer(id).inputs()) {
            if (in.producer != kNoLayer)
                lo = std::max(lo, pos[in.producer] + 1);
        }
        for (const Edge &e : g.Consumers(id))
            hi = std::min(hi, pos[e.consumer] - 1);
        if (lo >= hi) continue;
        int q = rng.UniformInt(lo, hi - 1);
        if (q >= p) ++q;  // skip the current position
        if (q == p) continue;
        if (q < p) {
            std::rotate(lfa->order.begin() + q, lfa->order.begin() + p,
                        lfa->order.begin() + p + 1);
        } else {
            std::rotate(lfa->order.begin() + p,
                        lfa->order.begin() + p + 1,
                        lfa->order.begin() + q + 1);
        }
        return true;
    }
    return false;
}

/**
 * Randomized mixed mutation chain. Alternates LFA phases (general LFA
 * operators plus intra-group order moves, evaluated through
 * EvaluateLfa) with DLSA phases (order/free-point deltas on the
 * committed parse, evaluated through EvaluateDelta); every candidate
 * is independently re-parsed and re-simulated from scratch and the two
 * reports compared field by field, bit for bit. Random acceptances
 * advance the committed base exactly like the SA walk does.
 */
void
RunMixedWalk(std::uint64_t seed, int phases, bool cross_check)
{
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    const Ops ops = g.TotalOps();
    const Bytes budget = hw.gbuf_bytes;

    EvalContext ctx;
    ctx.set_cross_check(cross_check);
    ctx.set_tiling_cache(std::make_shared<TilingCache>());

    LfaEncoding cur = MakeInitialLfa(g, hw, 16);
    Rng rng(seed);
    LfaEncoding cand;
    DlsaEncoding dlsa_scratch;
    int lfa_checked = 0, dlsa_checked = 0;

    for (int phase = 0; phase < phases; ++phase) {
        // --- LFA phase: structural mutations against the LFA base.
        {
            const ParsedSchedule &p = ctx.Parse(g, cur, ce);
            ASSERT_TRUE(p.valid);
            MakeDoubleBufferDlsaInto(p, &dlsa_scratch);
            ctx.EvaluateLfa(g, hw, p, dlsa_scratch, budget, ops);
            ctx.Commit();
        }
        for (int i = 0; i < 12; ++i) {
            bool mutated = rng.Flip()
                               ? MutateLfaEncoding(g, cur, &cand, 16, rng)
                               : ((cand = cur),
                                  MutateOrderWithinGroup(g, &cand, rng));
            if (!mutated) continue;
            const ParsedSchedule &p = ctx.Parse(g, cand, ce);
            ParsedSchedule full = ParseLfa(g, cand, ce);
            ASSERT_TRUE(ParsedSchedulesIdentical(p, full))
                << "phase " << phase << " step " << i;
            if (!p.valid) continue;
            MakeDoubleBufferDlsaInto(p, &dlsa_scratch);
            const EvalReport &inc =
                ctx.EvaluateLfa(g, hw, p, dlsa_scratch, budget, ops);
            EvalReport ref =
                EvaluateSchedule(g, hw, full, dlsa_scratch, budget, ops);
            ExpectReportsIdentical(inc, ref);
            ++lfa_checked;
            if (inc.valid && rng.Flip()) {
                ctx.Commit();
                cur = cand;
            }
        }

        // --- DLSA phase: order/free-point deltas on the fixed parse.
        const ParsedSchedule &p = ctx.Parse(g, cur, ce);
        ASSERT_TRUE(p.valid);
        ParsedSchedule full = ParseLfa(g, cur, ce);
        ASSERT_TRUE(ParsedSchedulesIdentical(p, full));
        DlsaEncoding cur_d = MakeDoubleBufferDlsa(p);
        ASSERT_TRUE(
            ctx.EvaluateLfa(g, hw, p, cur_d, budget, ops).valid);
        ctx.Commit();
        DlsaMutator mutate(p);
        DlsaEncoding cand_d;
        DlsaDelta delta;
        for (int i = 0; i < 25; ++i) {
            if (!mutate(cur_d, &cand_d, rng, &delta)) continue;
            const EvalReport &inc =
                ctx.EvaluateDelta(g, hw, p, cand_d, delta, budget, ops);
            EvalReport ref =
                EvaluateSchedule(g, hw, full, cand_d, budget, ops);
            ExpectReportsIdentical(inc, ref);
            ++dlsa_checked;
            if (inc.valid && rng.Flip()) {
                ctx.Commit();
                std::swap(cur_d, cand_d);
            }
        }
    }
    EXPECT_GT(lfa_checked, phases * 4);
    EXPECT_GT(dlsa_checked, phases * 8);

    // The walk must exercise the windowed fast path, not live off the
    // full-evaluation fallback — and windows must actually splice.
    const EvalContext::DeltaStats &ds = ctx.delta_stats();
    EXPECT_GT(ds.delta_evals, 0u);
    EXPECT_GT(ds.windowed_runs, 0u);
    EXPECT_GT(ds.splices, 0u);
    EXPECT_LT(ds.full_fallbacks, ds.delta_evals);
    if (cross_check) {
        EXPECT_GT(ds.cross_check_passes, 0u);
    }
}

TEST(DeltaEval, MixedChainMatchesFullEvaluation)
{
    RunMixedWalk(/*seed=*/131, /*phases=*/8, /*cross_check=*/false);
}

TEST(DeltaEval, MixedChainSurvivesCrossCheckMode)
{
    // cross_check re-simulates every delta evaluation from scratch
    // inside EvalContext and aborts the process on any divergence —
    // surviving the randomized walk is the debug-mode proof the
    // bench/CI path relies on.
    RunMixedWalk(/*seed=*/257, /*phases=*/4, /*cross_check=*/true);
}

TEST(DeltaEval, DisabledWindowingIsByteIdentical)
{
    // SOMA_TIMELINE_DELTA=0 must be a pure wall-clock knob. Compare a
    // windowed context against a windowing-disabled one over one
    // mutation chain.
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    const Ops ops = g.TotalOps();
    const Bytes budget = hw.gbuf_bytes;
    LfaEncoding lfa = MakeInitialLfa(g, hw, 16);
    ParsedSchedule parsed = ParseLfa(g, lfa, ce);
    ASSERT_TRUE(parsed.valid);
    DlsaEncoding base = MakeDoubleBufferDlsa(parsed);

    EvalContext on, off;
    off.set_windowed(false);
    ASSERT_TRUE(on.Evaluate(g, hw, parsed, base, budget, ops).valid);
    ASSERT_TRUE(off.Evaluate(g, hw, parsed, base, budget, ops).valid);
    on.Commit();
    off.Commit();

    DlsaMutator mutate(parsed);
    Rng rng(43);
    DlsaEncoding cur = base, cand;
    DlsaDelta delta;
    for (int i = 0; i < 120; ++i) {
        if (!mutate(cur, &cand, rng, &delta)) continue;
        const EvalReport &a =
            on.EvaluateDelta(g, hw, parsed, cand, delta, budget, ops);
        const EvalReport &b =
            off.EvaluateDelta(g, hw, parsed, cand, delta, budget, ops);
        ExpectReportsIdentical(a, b);
        if (a.valid && rng.Flip()) {
            on.Commit();
            off.Commit();
            std::swap(cur, cand);
        }
    }
    EXPECT_GT(on.delta_stats().windowed_runs, 0u);
    EXPECT_EQ(off.delta_stats().windowed_runs, 0u);
}

TEST(DeltaEval, ArenaResetKeepsCandidatesIndependent)
{
    // Consecutive candidates reuse the same arena blocks (Reset keeps
    // the memory). Candidate B's result must be bit-identical whether
    // or not candidate A's scratch preceded it in the arena — under
    // ASan (the CI sanitize job) a read of A's leftovers is also a
    // hard error, since arena allocations are never zero-initialized.
    Graph g = MakeBranchy();
    HardwareConfig hw = EdgeAccelerator();
    CoreArrayEvaluator ce(g, hw);
    const Ops ops = g.TotalOps();
    const Bytes budget = hw.gbuf_bytes;
    LfaEncoding lfa = MakeInitialLfa(g, hw, 16);
    ParsedSchedule parsed = ParseLfa(g, lfa, ce);
    ASSERT_TRUE(parsed.valid);
    DlsaEncoding base = MakeDoubleBufferDlsa(parsed);

    DlsaMutator mutate(parsed);
    Rng rng(71);
    DlsaEncoding cand_a, cand_b;
    DlsaDelta delta_a, delta_b;
    ASSERT_TRUE(mutate(base, &cand_a, rng, &delta_a));
    ASSERT_TRUE(mutate(base, &cand_b, rng, &delta_b));

    // Warm context: A then B through the same arena.
    EvalContext warm;
    ASSERT_TRUE(warm.Evaluate(g, hw, parsed, base, budget, ops).valid);
    warm.Commit();
    warm.EvaluateDelta(g, hw, parsed, cand_a, delta_a, budget, ops);
    EvalReport through_warm =
        warm.EvaluateDelta(g, hw, parsed, cand_b, delta_b, budget, ops);

    // Fresh context: B with a cold arena.
    EvalContext fresh;
    ASSERT_TRUE(fresh.Evaluate(g, hw, parsed, base, budget, ops).valid);
    fresh.Commit();
    const EvalReport &through_fresh =
        fresh.EvaluateDelta(g, hw, parsed, cand_b, delta_b, budget, ops);

    ExpectReportsIdentical(through_warm, through_fresh);
}

}  // namespace
}  // namespace soma
