// Fixture: raw monotonic-clock reads outside src/obs/ — both the
// spelled-out call and one through a local type alias must be flagged
// (steady_clock::time_point *types* are fine; only the read is
// centralized in obs::MonotonicNow).
#include <chrono>

namespace fixture {

using Clock = std::chrono::steady_clock;

inline double
ElapsedSeconds(std::chrono::steady_clock::time_point t0)
{
    const auto now = std::chrono::steady_clock::now();  // finding: steady-now
    return std::chrono::duration<double>(now - t0).count();
}

inline Clock::time_point
Stamp()
{
    return Clock::now();  // finding: steady-now (via the alias)
}

}  // namespace fixture
