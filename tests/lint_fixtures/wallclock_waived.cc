// Fixture: the same wallclock offenses, each carrying a waiver — the
// lint must stay quiet.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fixture {

inline long
StampForHumans()
{
    // somalint: allow(wallclock) user-facing log timestamp, not a TTL
    auto now = std::chrono::system_clock::now();
    return now.time_since_epoch().count();
}

inline int
LegacySeed()
{
    std::srand(12345);  // somalint: allow(wallclock) fixed legacy seed
    // somalint: allow(wallclock) exercising the waived path
    return std::rand();
}

}  // namespace fixture
