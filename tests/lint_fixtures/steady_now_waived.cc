// Fixture: a waived raw clock read — the waiver on the line above
// silences steady-now, and the time_point-typed field draws no finding
// on its own.
#include <chrono>

namespace fixture {

struct Stopwatch {
    std::chrono::steady_clock::time_point started;  // type use: fine

    void Start()
    {
        // somalint: allow(steady-now) bootstrap code predating obs/
        started = std::chrono::steady_clock::now();
    }
};

}  // namespace fixture
