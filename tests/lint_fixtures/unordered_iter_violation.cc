// Fixture: hash-order iteration reaching canonical bytes. The file is
// "sensitive" (defines Serialize), and both a range-for and an explicit
// iterator walk traverse an unordered_map feeding the output.
#include <string>
#include <unordered_map>

namespace fixture {

class LeakyDump {
  public:
    std::string Serialize() const
    {
        std::string out;
        for (const auto &kv : entries_)  // finding: unordered-iter
            out += kv.first + "=" + kv.second + "\n";
        for (auto it = entries_.begin(); it != entries_.end(); ++it)
            out += it->first;  // findings: .begin() + iterator loop
        return out;
    }

  private:
    std::unordered_map<std::string, std::string> entries_;
};

}  // namespace fixture
