// Fixture: unguarded fields in a Mutex-holding class, each carrying a
// waiver (the internally-synchronized-subobject pattern the service
// layer uses) — the lint must stay quiet.
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace fixture {

struct InnerCache {
    void Touch() {}
};

class WaivedFields {
  public:
    void Add(std::string s) SOMA_EXCLUDES(mutex_)
    {
        soma::MutexLock lock(mutex_);
        items_.push_back(std::move(s));
    }

  private:
    mutable soma::Mutex mutex_;
    std::vector<std::string> items_ SOMA_GUARDED_BY(mutex_);
    InnerCache cache_;  // somalint: allow(guarded-field) self-locking
    // somalint: allow(guarded-field) written once before threads start
    std::uint64_t config_epoch_ = 0;
};

}  // namespace fixture
