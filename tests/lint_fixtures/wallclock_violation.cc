// Fixture: wallclock violations — system_clock TTL arithmetic and a
// libc rand/time seed, the exact patterns that break the repo's
// clock-jump immunity and seeded reproducibility.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fixture {

inline long
ExpiryFromWallClock()
{
    auto now = std::chrono::system_clock::now();  // finding: wallclock
    return now.time_since_epoch().count();
}

inline int
BadSeed()
{
    std::srand(static_cast<unsigned>(std::time(nullptr)));  // 2 findings
    return std::rand();  // finding: wallclock
}

}  // namespace fixture
