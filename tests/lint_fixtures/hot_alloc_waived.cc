// Fixture: amortized allocations inside a SOMA_PROF_SCOPE region with
// explicit waivers — the dirty-group / cache-miss pattern, where the
// allocation runs once per structural change rather than once per
// candidate. Each waiver names why the path is off the hot loop.
#include <memory>
#include <vector>

#define SOMA_PROF_SCOPE(name)

namespace fixture {

struct Block {
    std::vector<int> costs;
};

inline int
ReparseDirtyGroups(const std::vector<int> &dirty)
{
    SOMA_PROF_SCOPE("parse.lfa");
    int acc = 0;
    std::vector<std::unique_ptr<Block>> blocks;
    for (int g : dirty) {
        // somalint: allow(hot-alloc) dirty path: once per mutation
        blocks.push_back(std::make_unique<Block>());
        // somalint: allow(hot-alloc) cache-miss derivation is amortized
        blocks.back()->costs.resize(static_cast<std::size_t>(g));
        acc += g;
    }
    return acc + static_cast<int>(blocks.size());
}

}  // namespace fixture
