// Fixture: clean code — every somalint check must stay quiet.
//
// Deliberately exercises the look-alikes each check must NOT flag:
// steady_clock (not system_clock), a member named time(), sorted-map
// iteration in a serializing file, annotated Mutex wrappers, and a
// capability class whose fields are all guarded/atomic/const.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace fixture {

struct Sample {
    double time() const { return seconds; }  // member call: not libc time()
    double seconds = 0.0;
};

// A "sensitive" file (mentions Serialize) — but the only iterations are
// over an ordered std::map and a lookup into the unordered index.
class CleanStore {
  public:
    std::string Serialize() const SOMA_EXCLUDES(mutex_)
    {
        soma::MutexLock lock(mutex_);
        std::string out;
        for (const auto &kv : ordered_) out += kv.first;  // std::map: fine
        auto it = index_.find("x");  // lookup, not iteration: fine
        if (it != index_.end()) out += it->second;
        return out;
    }

    void Record(std::chrono::steady_clock::time_point tp)
        SOMA_EXCLUDES(mutex_)
    {
        soma::MutexLock lock(mutex_);
        last_ = tp;  // steady_clock: the allowed clock
    }

  private:
    mutable soma::Mutex mutex_;
    std::map<std::string, std::string> ordered_ SOMA_GUARDED_BY(mutex_);
    std::unordered_map<std::string, std::string> index_
        SOMA_GUARDED_BY(mutex_);
    std::chrono::steady_clock::time_point last_ SOMA_GUARDED_BY(mutex_);
    std::atomic<std::uint64_t> hits_{0};
    const int capacity_ = 8;
};

}  // namespace fixture
