// Fixture: heap growth inside loops in a SOMA_PROF_SCOPE-marked hot
// path. The per-candidate simulation/parse loops must bump-allocate
// from pre-sized scratch (arena discipline); `new`, make_unique and
// vector growth inside such a loop are findings. Allocations before
// the scope, outside any loop, or past the scope's closing brace are
// fine — as is `.assign` onto pre-sized storage.
#include <memory>
#include <vector>

#define SOMA_PROF_SCOPE(name)

namespace fixture {

struct Event {
    int at = 0;
};

inline int
SimulateTimeline(const std::vector<int> &tiles)
{
    std::vector<Event> warmup;
    warmup.reserve(tiles.size());  // pre-sizing outside the scope: fine
    SOMA_PROF_SCOPE("eval.timeline");
    std::vector<Event> events;
    events.reserve(tiles.size());  // not in a loop: fine
    int acc = 0;
    for (int t : tiles) {
        events.push_back(Event{t});  // finding: hot-alloc (growth)
        Event *e = new Event{t};     // finding: hot-alloc (new)
        acc += e->at;
        delete e;
    }
    std::size_t i = 0;
    while (i < tiles.size())
        acc += std::make_unique<Event>(Event{tiles[i++]})->at;
    // ^ finding: hot-alloc (make_unique, single-statement loop body)
    return acc;
}

inline int
AfterTheScope(const std::vector<int> &tiles)
{
    int acc = 0;
    {
        SOMA_PROF_SCOPE("eval.full");
        std::vector<int> scratch(tiles.size());
        for (std::size_t i = 0; i < tiles.size(); ++i)
            acc += scratch[i];  // no growth in the loop: fine
    }
    std::vector<int> cold;
    for (int t : tiles) cold.push_back(t);  // past the scope: fine
    return acc + static_cast<int>(cold.size());
}

}  // namespace fixture
