// Fixture: a Mutex-holding class with naked mutable fields — each one
// must either say what guards it or be waived.
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace fixture {

class HalfAnnotated {
  public:
    void Add(std::string s) SOMA_EXCLUDES(mutex_)
    {
        soma::MutexLock lock(mutex_);
        items_.push_back(std::move(s));
        ++count_;
    }

  private:
    mutable soma::Mutex mutex_;
    std::vector<std::string> items_ SOMA_GUARDED_BY(mutex_);  // fine
    std::uint64_t count_ = 0;  // finding: guarded-field
    bool dirty_ = false;       // finding: guarded-field
};

}  // namespace fixture
