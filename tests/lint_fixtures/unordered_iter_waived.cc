// Fixture: order-independent folds over unordered containers with
// waivers — the lint must stay quiet. (Also shows the non-sensitive
// escape hatch: without Serialize/Fingerprint/... in the file these
// loops would not be checked at all.)
#include <cstddef>
#include <string>
#include <unordered_map>

namespace fixture {

class WaivedSums {
  public:
    std::size_t SerializeSize() const
    {
        std::size_t bytes = 0;
        // somalint: allow(unordered-iter) order-independent sum
        for (const auto &kv : entries_) bytes += kv.second.size();
        return bytes;
    }

    void Sweep()
    {
        // somalint: allow(unordered-iter) removes every empty entry
        for (auto it = entries_.begin(); it != entries_.end();) {
            it = it->second.empty() ? entries_.erase(it) : ++it;
        }
    }

  private:
    std::unordered_map<std::string, std::string> entries_;
};

}  // namespace fixture
