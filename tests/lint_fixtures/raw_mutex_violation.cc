// Fixture: raw standard-library synchronization primitives — invisible
// to clang's thread-safety analysis, so banned outside
// common/thread_annotations.h.
#include <condition_variable>
#include <mutex>

namespace fixture {

class RawLocking {
  public:
    void Poke()
    {
        std::lock_guard<std::mutex> lock(mutex_);  // findings: raw-mutex
        ++value_;
        cv_.notify_one();
    }

  private:
    std::mutex mutex_;               // finding: raw-mutex
    std::condition_variable cv_;     // finding: raw-mutex
    int value_ = 0;
};

}  // namespace fixture
