/**
 * @file
 * Report/rendering tests: execution-graph output structure, truncation,
 * invalid-schedule handling, and stall annotation.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "corearray/core_array.h"
#include "search/dlsa_heuristics.h"
#include "sim/evaluator.h"
#include "sim/report.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

struct Fix {
    Graph graph;
    HardwareConfig hw;
    ParsedSchedule parsed;
    DlsaEncoding dlsa;
    EvalReport report;
};

Fix
MakeFix(int layers = 3, int tiling = 2)
{
    GraphBuilder b("net", 1);
    LayerId x = b.InputConv("c0", ExtShape{3, 16, 16}, 16, 3, 1, 1);
    for (int i = 1; i < layers; ++i)
        x = b.Conv("c" + std::to_string(i), x, 16, 3, 1, 1);
    b.MarkOutput(x);
    Fix f{b.Take(), EdgeAccelerator(), {}, {}, {}};
    CoreArrayEvaluator eval(f.graph, f.hw);
    LfaEncoding lfa;
    lfa.order = f.graph.TopoOrder();
    lfa.tiling = {tiling};
    f.parsed = ParseLfa(f.graph, lfa, eval);
    f.dlsa = MakeDoubleBufferDlsa(f.parsed);
    f.report = EvaluateSchedule(f.graph, f.hw, f.parsed, f.dlsa,
                                f.hw.gbuf_bytes, f.graph.TotalOps());
    EXPECT_TRUE(f.report.valid);
    return f;
}

TEST(Report, ExecutionGraphSections)
{
    Fix f = MakeFix();
    std::ostringstream os;
    PrintExecutionGraph(os, f.graph, f.parsed, f.dlsa, f.report);
    std::string text = os.str();
    EXPECT_NE(text.find("DRAM row"), std::string::npos);
    EXPECT_NE(text.find("COMPUTE row"), std::string::npos);
    EXPECT_NE(text.find("BUFFER peak"), std::string::npos);
    // Every tile appears as layer#round.
    EXPECT_NE(text.find("c0#0"), std::string::npos);
    EXPECT_NE(text.find("c2#1"), std::string::npos);
    // Living Duration annotations for loads and stores.
    EXPECT_NE(text.find("S="), std::string::npos);
    EXPECT_NE(text.find("E="), std::string::npos);
}

TEST(Report, ExecutionGraphTruncates)
{
    Fix f = MakeFix(6, 4);  // 24 tiles
    std::ostringstream os;
    PrintExecutionGraph(os, f.graph, f.parsed, f.dlsa, f.report,
                        /*max_rows=*/5);
    std::string text = os.str();
    EXPECT_NE(text.find("more)"), std::string::npos);
}

TEST(Report, InvalidScheduleRendersReason)
{
    Fix f = MakeFix();
    EvalReport bad;
    bad.valid = false;
    bad.why_invalid = "buffer overflow";
    std::ostringstream os;
    PrintExecutionGraph(os, f.graph, f.parsed, f.dlsa, bad);
    EXPECT_NE(os.str().find("buffer overflow"), std::string::npos);
}

TEST(Report, StallMarkerOnlyWhenStalled)
{
    Fix f = MakeFix();
    std::ostringstream os;
    PrintExecutionGraph(os, f.graph, f.parsed, f.dlsa, f.report);
    std::string text = os.str();
    // The first tile always waits for its loads: a stall marker exists.
    EXPECT_NE(text.find("<- stall"), std::string::npos);
}

TEST(Report, HeaderSummaryNumbersMatch)
{
    Fix f = MakeFix();
    std::ostringstream os;
    PrintExecutionGraph(os, f.graph, f.parsed, f.dlsa, f.report);
    std::string text = os.str();
    EXPECT_NE(text.find("LGs " + std::to_string(f.report.num_lgs)),
              std::string::npos);
    EXPECT_NE(text.find("tiles " + std::to_string(f.report.num_tiles)),
              std::string::npos);
}

}  // namespace
}  // namespace soma
