/**
 * @file
 * Tiling substrate tests: split selection, canonical slices, backward
 * halo propagation inside FLGs, and the parallelism heuristic.
 */
#include <gtest/gtest.h>

#include "tiling/tiler.h"
#include "tiling/tiling_cache.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

TEST(ChooseTileSplit, BatchFirst)
{
    auto s = ChooseTileSplit(4, 4, 8, 8);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->batch, 4);
    EXPECT_EQ(s->rows, 1);
    EXPECT_EQ(s->cols, 1);
}

TEST(ChooseTileSplit, SpillsIntoNearSquareSpatial)
{
    auto s = ChooseTileSplit(16, 2, 32, 32);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->batch, 2);
    EXPECT_EQ(s->rows * s->cols, 8);
    EXPECT_LE(std::abs(s->rows - s->cols), 2);
    EXPECT_EQ(s->Total(), 16);
}

TEST(ChooseTileSplit, RowsOnlyWhenWidthIsOne)
{
    auto s = ChooseTileSplit(8, 1, 512, 1);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->rows, 8);
    EXPECT_EQ(s->cols, 1);
}

TEST(ChooseTileSplit, InfeasibleReturnsNullopt)
{
    EXPECT_FALSE(ChooseTileSplit(64, 1, 4, 4).has_value());
    EXPECT_FALSE(ChooseTileSplit(3, 1, 1, 1).has_value());
}

TEST(ChooseTileSplit, SingleTileAlwaysWorks)
{
    auto s = ChooseTileSplit(1, 1, 1, 1);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->Total(), 1);
}

TEST(CanonicalSlice, DisjointCover)
{
    TileSplit split{2, 2, 2};
    const int batch = 2, h = 7, w = 5;
    std::int64_t covered = 0;
    for (int i = 0; i < split.Total(); ++i) {
        Region r = CanonicalSlice(split, i, batch, h, w);
        EXPECT_FALSE(r.Empty());
        covered += r.Sites();
        for (int j = 0; j < i; ++j) {
            Region other = CanonicalSlice(split, j, batch, h, w);
            EXPECT_TRUE(Region::Intersect(r, other).Empty())
                << "tiles " << i << " and " << j << " overlap";
        }
    }
    EXPECT_EQ(covered, static_cast<std::int64_t>(batch) * h * w);
}

class FlgTilingTest : public ::testing::Test {
  protected:
    /** conv(3x3, s1, p1) -> conv(3x3, s1, p1) chain on 16x16. */
    Graph MakeChain(int batch = 1)
    {
        GraphBuilder b("chain", batch);
        LayerId c1 = b.InputConv("c1", ExtShape{3, 16, 16}, 8, 3, 1, 1);
        LayerId c2 = b.Conv("c2", c1, 8, 3, 1, 1);
        LayerId c3 = b.Conv("c3", c2, 8, 3, 1, 1);
        (void)c3;
        return b.Take();
    }
};

TEST_F(FlgTilingTest, SinkGetsCanonicalSlices)
{
    Graph g = MakeChain();
    FlgTiling t = ComputeFlgTiling(g, {0, 1, 2}, 4);
    ASSERT_TRUE(t.valid);
    // Last layer (sink): exact even slices.
    std::int64_t covered = 0;
    for (int i = 0; i < 4; ++i) covered += t.regions[2][i].Sites();
    EXPECT_EQ(covered, 16 * 16);
}

TEST_F(FlgTilingTest, HaloGrowsBackward)
{
    Graph g = MakeChain();
    FlgTiling t = ComputeFlgTiling(g, {0, 1, 2}, 4);
    ASSERT_TRUE(t.valid);
    // Earlier layers compute more than their canonical share: each 3x3
    // consumer adds a 1-row halo per side per level.
    std::int64_t sites0 = 0, sites1 = 0, sites2 = 0;
    for (int i = 0; i < 4; ++i) {
        sites0 += t.regions[0][i].Sites();
        sites1 += t.regions[1][i].Sites();
        sites2 += t.regions[2][i].Sites();
    }
    EXPECT_EQ(sites2, 256);
    EXPECT_GT(sites1, sites2);
    EXPECT_GT(sites0, sites1);
}

TEST_F(FlgTilingTest, BatchSplitHasNoHalo)
{
    Graph g = MakeChain(4);
    FlgTiling t = ComputeFlgTiling(g, {0, 1, 2}, 4);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.split.batch, 4);
    for (int layer = 0; layer < 3; ++layer) {
        std::int64_t sites = 0;
        for (int i = 0; i < 4; ++i) sites += t.regions[layer][i].Sites();
        EXPECT_EQ(sites, 4 * 16 * 16) << "layer " << layer;
    }
}

TEST_F(FlgTilingTest, SingleTileEqualsFullFmaps)
{
    Graph g = MakeChain();
    FlgTiling t = ComputeFlgTiling(g, {0, 1, 2}, 1);
    ASSERT_TRUE(t.valid);
    for (int layer = 0; layer < 3; ++layer)
        EXPECT_EQ(t.regions[layer][0].Sites(), 256);
}

TEST_F(FlgTilingTest, InfeasibleTilingInvalid)
{
    Graph g = MakeChain();
    FlgTiling t = ComputeFlgTiling(g, {0, 1, 2}, 512);  // > 16*16 rows*cols
    EXPECT_FALSE(t.valid);
}

TEST(FlgTiling, FullPatternConsumerForcesRecompute)
{
    GraphBuilder b("attn", 1);
    LayerId q = b.InputConv("q", ExtShape{4, 16, 1}, 8, 1, 1, 0);
    LayerId k = b.Conv("k", q, 8, 1, 1, 0);
    LayerId mm = b.Matmul("mm", q, k, 8, 16);
    (void)mm;
    Graph g = b.Take();
    FlgTiling t = ComputeFlgTiling(g, {0, 1, 2}, 4);
    ASSERT_TRUE(t.valid);
    // k feeds mm's full operand: every round needs all 16 rows.
    for (int i = 0; i < 4; ++i) EXPECT_EQ(t.regions[1][i].Rows(), 16);
    // mm itself (sink) splits rows evenly.
    std::int64_t mm_sites = 0;
    for (int i = 0; i < 4; ++i) mm_sites += t.regions[2][i].Sites();
    EXPECT_EQ(mm_sites, 16);
}

TEST(FlgTiling, MidFlgNetworkOutputIsSink)
{
    GraphBuilder b("t", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 8, 8}, 8, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 8, 3, 1, 1);
    b.MarkOutput(c1);
    (void)c2;
    Graph g = b.Take();
    FlgTiling t = ComputeFlgTiling(g, {0, 1}, 2);
    ASSERT_TRUE(t.valid);
    // c1 must cover both its canonical slice and c2's halo need.
    EXPECT_GE(t.regions[0][0].Sites() + t.regions[0][1].Sites(), 64);
}

// Helper used by the heuristic tests.
Graph
MakeSingleConv(int channels, int hw_dim, int batch)
{
    GraphBuilder b("one", batch);
    LayerId c = b.InputConv("c", ExtShape{3, hw_dim, hw_dim}, channels, 3,
                            1, 1);
    (void)c;
    return b.Take();
}

TEST(HeuristicTiles, FinerForLargeSpatial)
{
    HardwareConfig hw = EdgeAccelerator();
    Graph big = MakeSingleConv(64, 112, 1);
    Graph small = MakeSingleConv(64, 14, 1);
    int t_big = HeuristicParallelTiles(big, {0}, hw);
    int t_small = HeuristicParallelTiles(small, {0}, hw);
    EXPECT_GT(t_big, t_small);
    // Power of two.
    EXPECT_EQ(t_big & (t_big - 1), 0);
}

TEST(HeuristicTiles, ScalesWithBatch)
{
    HardwareConfig hw = EdgeAccelerator();
    Graph b1 = MakeSingleConv(64, 56, 1);
    Graph b8 = MakeSingleConv(64, 56, 8);
    EXPECT_GT(HeuristicParallelTiles(b8, {0}, hw),
              HeuristicParallelTiles(b1, {0}, hw));
}

TEST(HeuristicTiles, CapRespected)
{
    HardwareConfig hw = EdgeAccelerator();
    Graph g = MakeSingleConv(64, 112, 16);
    EXPECT_LE(HeuristicParallelTiles(g, {0}, hw, 32), 32);
}

TEST(HeuristicTiles, VectorOnlyGroupStillTiles)
{
    GraphBuilder b("v", 4);
    LayerId c = b.InputConv("c", ExtShape{3, 56, 56}, 64, 3, 1, 1);
    LayerId e = b.Eltwise("e", {c, c});
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();
    // The eltwise-only group must not collapse to T=1 (it would demand
    // full fmaps at once).
    EXPECT_GT(HeuristicParallelTiles(g, {e}, hw), 1);
}

TEST(HeuristicTiles, MinOverGroupLayers)
{
    GraphBuilder b("mix", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 112, 112}, 64, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 512, 3, 2, 1);  // smaller spatial
    Graph g = b.Take();
    HardwareConfig hw = EdgeAccelerator();
    int t_group = HeuristicParallelTiles(g, {c1, c2}, hw);
    int t_c2 = HeuristicParallelTiles(g, {c2}, hw);
    EXPECT_LE(t_group, t_c2);
}

// ------------------------------------------------------------ TilingCache

TEST(TilingCache, ReturnsComputeFlgTilingValues)
{
    GraphBuilder b("tc", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 32, 32}, 16, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 16, 3, 1, 1);
    b.MarkOutput(c2);
    Graph g = b.Take();

    TilingCache cache;
    const std::vector<LayerId> layers{c1, c2};
    auto cached = cache.Get(g, layers, 4);
    FlgTiling direct = ComputeFlgTiling(g, layers, 4);
    ASSERT_TRUE(cached->valid);
    ASSERT_TRUE(direct.valid);
    EXPECT_EQ(cached->split.Total(), direct.split.Total());
    ASSERT_EQ(cached->regions.size(), direct.regions.size());
    for (std::size_t i = 0; i < direct.regions.size(); ++i) {
        ASSERT_EQ(cached->regions[i].size(), direct.regions[i].size());
        for (std::size_t t = 0; t < direct.regions[i].size(); ++t)
            EXPECT_EQ(cached->regions[i][t], direct.regions[i][t]);
    }
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    // Same key: one shared immutable value, counted as a hit.
    auto again = cache.Get(g, layers, 4);
    EXPECT_EQ(again.get(), cached.get());
    EXPECT_EQ(cache.stats().hits, 1u);

    // Infeasible tilings are cached too (the SA walk re-proposes them).
    auto bad = cache.Get(g, layers, 5000);
    EXPECT_FALSE(bad->valid);
    EXPECT_EQ(cache.Get(g, layers, 5000).get(), bad.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(TilingCache, DistinguishesLayerOrderAndTileCount)
{
    GraphBuilder b("tc2", 1);
    LayerId c1 = b.InputConv("c1", ExtShape{3, 16, 16}, 8, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 8, 3, 1, 1);
    b.MarkOutput(c2);
    Graph g = b.Take();

    TilingCache cache;
    auto a = cache.Get(g, {c1, c2}, 2);
    auto b2 = cache.Get(g, {c1, c2}, 4);
    auto c = cache.Get(g, {c2}, 2);
    EXPECT_NE(a.get(), b2.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(TilingCache, SinkSetKeySharesAcrossInteriorOrders)
{
    // Two sibling consumers of one stem: both interior orders of the
    // group are dependency-legal. The sink-set key makes them one
    // entry; a hit under the other order is re-indexed, bit-identical
    // to direct computation.
    GraphBuilder builder("tc3", 1);
    LayerId stem =
        builder.InputConv("stem", ExtShape{3, 16, 16}, 8, 3, 1, 1);
    LayerId left = builder.Conv("left", stem, 8, 3, 1, 1);
    LayerId right = builder.Conv("right", stem, 8, 3, 1, 1);
    builder.MarkOutput(left);
    builder.MarkOutput(right);
    Graph g = builder.Take();

    TilingCache cache;
    auto first = cache.Get(g, {stem, left, right}, 2);
    ASSERT_TRUE(first->valid);
    EXPECT_EQ(cache.stats().misses, 1u);

    auto swapped = cache.Get(g, {stem, right, left}, 2);
    EXPECT_EQ(cache.stats().misses, 1u);  // same member set: no recompute
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().remaps, 1u);
    EXPECT_EQ(cache.size(), 1u);

    const FlgTiling direct = ComputeFlgTiling(g, {stem, right, left}, 2);
    ASSERT_TRUE(swapped->valid);
    ASSERT_EQ(swapped->regions.size(), direct.regions.size());
    for (std::size_t i = 0; i < direct.regions.size(); ++i) {
        ASSERT_EQ(swapped->regions[i].size(), direct.regions[i].size());
        for (std::size_t t = 0; t < direct.regions[i].size(); ++t)
            EXPECT_EQ(swapped->regions[i][t], direct.regions[i][t]);
    }

    // The stored derivation order still shares the original pointer.
    auto again = cache.Get(g, {stem, left, right}, 2);
    EXPECT_EQ(again.get(), first.get());
    EXPECT_EQ(cache.stats().remaps, 1u);
}

}  // namespace
}  // namespace soma
