/**
 * @file
 * Model-zoo tests: every paper workload builds, validates, and has the
 * expected scale (layer counts, weight footprints, op counts), plus the
 * model text format round trip.
 */
#include <gtest/gtest.h>

#include "workload/model_parser.h"
#include "workload/models.h"

namespace soma {
namespace {

TEST(ResNet50, Shape)
{
    Graph g = BuildResNet50(1);
    // 1 stem + 1 pool + 16 blocks x (3 conv + add) + 4 downsamples + gap
    // + fc = 72 layers.
    EXPECT_EQ(g.NumLayers(), 72);
    // ~25.5M weight bytes (INT8), within 10%.
    EXPECT_NEAR(static_cast<double>(g.TotalWeightBytes()), 25.5e6,
                2.6e6);
    // ~8.2 GOPs (2 * 4.1 GMACs), within 15%.
    EXPECT_NEAR(static_cast<double>(g.TotalOps()), 8.2e9, 1.3e9);
}

TEST(ResNet50, BatchScalesOpsNotWeights)
{
    Graph g1 = BuildResNet50(1);
    Graph g4 = BuildResNet50(4);
    EXPECT_EQ(g4.TotalOps(), 4 * g1.TotalOps());
    EXPECT_EQ(g4.TotalWeightBytes(), g1.TotalWeightBytes());
    EXPECT_EQ(g4.TotalFmapBytes(), 4 * g1.TotalFmapBytes());
}

TEST(ResNet101, DeeperThanResNet50)
{
    Graph g50 = BuildResNet50(1);
    Graph g101 = BuildResNet101(1);
    EXPECT_GT(g101.NumLayers(), g50.NumLayers());
    EXPECT_GT(g101.TotalOps(), g50.TotalOps());
    EXPECT_GT(g101.TotalWeightBytes(), g50.TotalWeightBytes());
    // ResNet-101 conv4_x has 23 blocks vs 6: 17 extra blocks x 4 layers.
    EXPECT_EQ(g101.NumLayers() - g50.NumLayers(), 17 * 4);
}

TEST(InceptionResNetV1, BuildsWideDag)
{
    Graph g = BuildInceptionResNetV1(1);
    EXPECT_GT(g.NumLayers(), 70);
    // Wide structure: some layer must have >= 2 consumers (branching).
    int max_consumers = 0;
    for (LayerId id = 0; id < g.NumLayers(); ++id) {
        max_consumers = std::max(
            max_consumers, static_cast<int>(g.Consumers(id).size()));
    }
    EXPECT_GE(max_consumers, 3);
}

TEST(RandWire, DeterministicPerSeed)
{
    Graph a = BuildRandWire(1, 7);
    Graph b = BuildRandWire(1, 7);
    EXPECT_EQ(a.NumLayers(), b.NumLayers());
    EXPECT_EQ(a.TotalOps(), b.TotalOps());
    EXPECT_EQ(SerializeModel(a), SerializeModel(b));
}

TEST(RandWire, DifferentSeedsRewire)
{
    Graph a = BuildRandWire(1, 7);
    Graph b = BuildRandWire(1, 8);
    EXPECT_NE(SerializeModel(a), SerializeModel(b));
}

TEST(TransformerLarge, Shape)
{
    Graph g = BuildTransformerLarge(1, 512);
    // 6 blocks x 14 layers (ln,q,k,v,qk,softmax,sv,proj,add,ln,ff1,gelu,
    // ff2,add) + embed + final LN = 86.
    EXPECT_EQ(g.NumLayers(), 6 * 14 + 2);
    // Weights per block: 4*D^2 + 8*D^2 = 12 * 1024^2 = 12.58M.
    EXPECT_NEAR(static_cast<double>(g.TotalWeightBytes()),
                6.0 * 12 * 1024 * 1024, 1e6);
}

TEST(Gpt2Small, WeightFootprint)
{
    Graph g = BuildGpt2Prefill(Gpt2Small(), 1, 512);
    // 12 blocks x 12 * 768^2 = 84.9M bytes.
    EXPECT_NEAR(static_cast<double>(g.TotalWeightBytes()),
                12.0 * 12 * 768 * 768, 1e6);
}

TEST(Gpt2Prefill, MarksKvAsOutputs)
{
    Graph g = BuildGpt2Prefill(Gpt2Small(), 1, 128);
    int kv_outputs = 0;
    for (LayerId id = 0; id < g.NumLayers(); ++id) {
        const std::string &n = g.layer(id).name();
        if (g.layer(id).isNetworkOutput() &&
            (n.find(".k") != std::string::npos ||
             n.find(".v") != std::string::npos)) {
            ++kv_outputs;
        }
    }
    EXPECT_EQ(kv_outputs, 2 * 12);
}

TEST(Gpt2Decode, HasKvCacheExternalInputs)
{
    const int past = 512;
    Graph g = BuildGpt2Decode(Gpt2Small(), 1, past);
    int kv_external = 0;
    for (LayerId id = 0; id < g.NumLayers(); ++id) {
        for (const InputRef &in : g.layer(id).inputs()) {
            if (in.producer == kNoLayer && in.ext.height == past)
                ++kv_external;
        }
    }
    // Two attention matmuls per block read the cache.
    EXPECT_EQ(kv_external, 2 * 12);
}

TEST(Gpt2Decode, SingleQueryRow)
{
    Graph g = BuildGpt2Decode(Gpt2Small(), 1, 512);
    for (LayerId id = 0; id < g.NumLayers(); ++id) {
        if (g.layer(id).name().find(".q") != std::string::npos) {
            EXPECT_EQ(g.layer(id).outHeight(), 1);
        }
    }
}

TEST(Gpt2Decode, ComputeDensityFarBelowPrefill)
{
    Graph prefill = BuildGpt2Prefill(Gpt2Small(), 1, 512);
    Graph decode = BuildGpt2Decode(Gpt2Small(), 1, 512);
    double prefill_density = static_cast<double>(prefill.TotalOps()) /
                             static_cast<double>(
                                 prefill.TotalWeightBytes());
    double decode_density = static_cast<double>(decode.TotalOps()) /
                            static_cast<double>(decode.TotalWeightBytes());
    EXPECT_GT(prefill_density, 100 * decode_density);
}

TEST(Gpt2Xl, BiggerThanSmall)
{
    Gpt2Config xl = Gpt2Xl();
    EXPECT_EQ(xl.layers, 48);
    EXPECT_EQ(xl.hidden, 1600);
    Graph g = BuildGpt2Prefill(xl, 1, 64);
    EXPECT_GT(g.TotalWeightBytes(),
              BuildGpt2Prefill(Gpt2Small(), 1, 64).TotalWeightBytes() * 10);
}

TEST(ModelRegistry, AllNamesBuild)
{
    for (const std::string &name : AvailableModels()) {
        Graph g = BuildModelByName(name, 1);
        EXPECT_GT(g.NumLayers(), 0) << name;
        EXPECT_GT(g.TotalOps(), 0) << name;
    }
}

TEST(ModelParser, RoundTripPreservesEveryModel)
{
    for (const std::string &name : AvailableModels()) {
        Graph g = BuildModelByName(name, 2);
        std::string text = SerializeModel(g);
        Graph back;
        std::string err;
        ASSERT_TRUE(ParseModel(text, &back, &err)) << name << ": " << err;
        EXPECT_EQ(back.NumLayers(), g.NumLayers()) << name;
        EXPECT_EQ(back.TotalOps(), g.TotalOps()) << name;
        EXPECT_EQ(back.TotalWeightBytes(), g.TotalWeightBytes()) << name;
        EXPECT_EQ(back.batch(), 2) << name;
        // Serialization is canonical: a second trip is byte-identical.
        EXPECT_EQ(SerializeModel(back), text) << name;
    }
}

TEST(ModelParser, RejectsMalformedInput)
{
    Graph g;
    std::string err;
    EXPECT_FALSE(ParseModel("layer bogus x", &g, &err));
    EXPECT_FALSE(ParseModel("layer conv a 1 1 1 0 1 1 0\nin 0 prod 5 row",
                            &g, &err));
    EXPECT_FALSE(ParseModel("nonsense directive", &g, &err));
    EXPECT_FALSE(
        ParseModel("layer conv a 1 1 1 0 1 1 0\nin 0 ext bogus 1 1 1", &g,
                   &err));
}

TEST(ModelParser, CommentsAndBlankLinesIgnored)
{
    Graph g;
    std::string err;
    std::string text = "# header\n\nmodel tiny 1\n"
                       "layer conv a 4 4 4 36 54 1 1 win 3 3 1 1 1 1\n"
                       "in 0 ext win 3 4 4  # trailing comment\n";
    ASSERT_TRUE(ParseModel(text, &g, &err)) << err;
    EXPECT_EQ(g.NumLayers(), 1);
    EXPECT_EQ(g.layer(0).window().kernel_h, 3);
}

}  // namespace
}  // namespace soma
