/**
 * @file
 * Unified scheduler API tests: the JSON library, request/result
 * (de)serialization fidelity (bit-for-bit doubles, exact u64 seeds),
 * registry lookup/unknown-name behaviour, facade-vs-legacy equivalence,
 * determinism of Submit() under concurrent in-flight siblings, and
 * cooperative cancellation.
 */
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "api/scheduler.h"
#include "search/soma.h"
#include "workload/graph_builder.h"

namespace soma {
namespace {

/** Small 5-layer CNN: big enough to schedule, cheap enough to anneal
 *  many times per test. */
std::shared_ptr<const Graph>
TinyNet()
{
    GraphBuilder b("tinynet", 1);
    ExtShape image{3, 32, 32};
    LayerId c1 = b.InputConv("c1", image, 16, 3, 1, 1);
    LayerId c2 = b.Conv("c2", c1, 16, 3, 1, 1);
    LayerId add = b.Eltwise("add", {c1, c2});
    LayerId c3 = b.Conv("c3", add, 32, 3, 2, 1);
    LayerId gap = b.GlobalPool("gap", c3);
    b.MarkOutput(gap);
    return std::make_shared<const Graph>(b.Take());
}

ScheduleRequest
TinyRequest(std::uint64_t seed)
{
    ScheduleRequest request;
    request.graph = TinyNet();
    request.profile = SearchProfile::kQuick;
    request.seed = seed;
    return request;
}

// ----------------------------------------------------------------- JSON

TEST(Json, ParseAndDumpRoundTrip)
{
    const std::string text =
        "{\"a\": 1, \"b\": [true, false, null, -2.5], "
        "\"c\": {\"nested\": \"va\\\"lue\\n\"}}";
    Json json;
    std::string err;
    ASSERT_TRUE(Json::Parse(text, &json, &err)) << err;
    EXPECT_EQ(json.Find("a")->AsInt(), 1);
    EXPECT_EQ(json.Find("b")->size(), 4u);
    EXPECT_TRUE(json.Find("b")->at(0).AsBool());
    EXPECT_TRUE(json.Find("b")->at(2).IsNull());
    EXPECT_DOUBLE_EQ(json.Find("b")->at(3).AsDouble(), -2.5);
    EXPECT_EQ(json.Find("c")->Find("nested")->AsString(), "va\"lue\n");

    // Dump -> Parse -> Dump is a fixpoint.
    const std::string dumped = json.Dump();
    Json again;
    ASSERT_TRUE(Json::Parse(dumped, &again, &err)) << err;
    EXPECT_EQ(again.Dump(), dumped);
}

TEST(Json, DoublesSurviveBitExactly)
{
    const double values[] = {0.0016451465000000001, 1.0 / 3.0, 1e-300,
                             3.1925248931868694e-06};
    for (double v : values) {
        Json json = Json::Object();
        json.Set("x", Json::Number(v));
        Json back;
        std::string err;
        ASSERT_TRUE(Json::Parse(json.Dump(), &back, &err)) << err;
        EXPECT_EQ(back.Find("x")->AsDouble(), v);  // bit-for-bit
    }
}

TEST(Json, U64SeedsSurviveExactly)
{
    const std::uint64_t seed = 0xDEADBEEFCAFEF00DULL;  // > 2^53
    Json json = Json::Object();
    json.Set("seed", Json::U64(seed));
    Json back;
    std::string err;
    ASSERT_TRUE(Json::Parse(json.Dump(), &back, &err)) << err;
    EXPECT_EQ(back.Find("seed")->AsU64(), seed);
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    Json json = Json::Object();
    json.Set("latency", Json::Number(
                            std::numeric_limits<double>::infinity()));
    EXPECT_EQ(json.Dump(), "{\"latency\":null}");
}

TEST(Json, ParseErrorsCarryOffsets)
{
    Json json;
    std::string err;
    EXPECT_FALSE(Json::Parse("{\"a\": }", &json, &err));
    EXPECT_NE(err.find("byte"), std::string::npos);
    EXPECT_FALSE(Json::Parse("[1, 2] trailing", &json, &err));
    EXPECT_FALSE(Json::Parse("", &json, &err));
}

// ------------------------------------------------- request/result JSON

TEST(RequestJson, RoundTripPreservesEveryField)
{
    ScheduleRequest request;
    request.model = "resnet50";
    request.batch = 4;
    request.hardware = "cloud";
    request.gbuf_bytes = 12LL << 20;
    request.dram_gbps = 48.0;
    request.scheduler = "cocco";
    request.profile = SearchProfile::kFull;
    request.seed = 0xFEEDFACEFEEDFACEULL;
    request.cost_n = 2.0;
    request.cost_m = 0.5;
    request.chains = 8;
    request.threads = 3;
    request.deadline_ms = 2500;
    request.artifacts.ir = true;
    request.artifacts.traces = true;
    request.artifacts.execution_graph_rows = 77;

    ScheduleRequest back;
    std::string err;
    ASSERT_TRUE(ScheduleRequest::FromJson(request.ToJson(), &back, &err))
        << err;
    EXPECT_EQ(back.model, request.model);
    EXPECT_EQ(back.batch, request.batch);
    EXPECT_EQ(back.hardware, request.hardware);
    EXPECT_EQ(back.gbuf_bytes, request.gbuf_bytes);
    EXPECT_EQ(back.dram_gbps, request.dram_gbps);
    EXPECT_EQ(back.scheduler, request.scheduler);
    EXPECT_EQ(back.profile, request.profile);
    EXPECT_EQ(back.seed, request.seed);
    EXPECT_EQ(back.cost_n, request.cost_n);
    EXPECT_EQ(back.cost_m, request.cost_m);
    EXPECT_EQ(back.chains, request.chains);
    EXPECT_EQ(back.threads, request.threads);
    EXPECT_EQ(back.deadline_ms, request.deadline_ms);
    EXPECT_EQ(back.artifacts.ir, request.artifacts.ir);
    EXPECT_EQ(back.artifacts.instructions,
              request.artifacts.instructions);
    EXPECT_EQ(back.artifacts.traces, request.artifacts.traces);
    EXPECT_EQ(back.artifacts.execution_graph_rows,
              request.artifacts.execution_graph_rows);
}

TEST(RequestJson, UnknownFieldsAndInlineGraphsAreRejected)
{
    Json json = Json::Object();
    json.Set("model", Json::Str("resnet50"));
    json.Set("sede", Json::U64(3));  // typo
    ScheduleRequest request;
    std::string err;
    EXPECT_FALSE(ScheduleRequest::FromJson(json, &request, &err));
    EXPECT_NE(err.find("sede"), std::string::npos);

    // Inline-graph requests have no JSON form; the marker is rejected
    // with an explanation.
    ScheduleRequest inline_request;
    inline_request.graph = TinyNet();
    EXPECT_FALSE(ScheduleRequest::FromJson(inline_request.ToJson(),
                                           &request, &err));
    EXPECT_NE(err.find("inline"), std::string::npos);
}

TEST(RequestJson, GarbageNumericsAreRejectedNotTruncated)
{
    ScheduleRequest request;
    std::string err;

    Json json;
    ASSERT_TRUE(Json::Parse("{\"model\": \"resnet50\", \"batch\": 1e300}",
                            &json, &err));
    EXPECT_FALSE(ScheduleRequest::FromJson(json, &request, &err));
    EXPECT_NE(err.find("batch"), std::string::npos);

    ASSERT_TRUE(Json::Parse("{\"model\": \"resnet50\", \"batch\": 0}",
                            &json, &err));
    EXPECT_FALSE(ScheduleRequest::FromJson(json, &request, &err));

    ASSERT_TRUE(Json::Parse("{\"model\": \"resnet50\", \"seed\": -3}",
                            &json, &err));
    EXPECT_FALSE(ScheduleRequest::FromJson(json, &request, &err));
    EXPECT_NE(err.find("seed"), std::string::npos);

    ASSERT_TRUE(Json::Parse(
        "{\"model\": \"resnet50\", \"dram_gbps\": -16}", &json, &err));
    EXPECT_FALSE(ScheduleRequest::FromJson(json, &request, &err));

    ASSERT_TRUE(Json::Parse(
        "{\"model\": \"resnet50\", \"chains\": 2000000}", &json, &err));
    EXPECT_FALSE(ScheduleRequest::FromJson(json, &request, &err));

    // AsInt saturates instead of invoking UB on out-of-range values.
    EXPECT_EQ(Json::Number(1e300).AsInt(), INT64_MAX);
    EXPECT_EQ(Json::Number(-1e300).AsInt(), INT64_MIN);
    EXPECT_EQ(Json::U64(~0ULL).AsInt(), INT64_MAX);
}

TEST(ResultJson, RoundTripIsBitExactOnLatencyAndEnergy)
{
    Scheduler scheduler;
    ScheduleRequest request = TinyRequest(21);
    request.artifacts.instructions = true;
    ScheduleResult result = scheduler.Schedule(request);
    ASSERT_TRUE(result.ok) << result.error;

    // Through text, as somac does it.
    const std::string text = result.ToJson().Dump(2);
    Json json;
    ScheduleResult back;
    std::string err;
    ASSERT_TRUE(Json::Parse(text, &json, &err)) << err;
    ASSERT_TRUE(ScheduleResult::FromJson(json, &back, &err)) << err;

    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.model, result.model);
    EXPECT_EQ(back.scheduler, result.scheduler);
    EXPECT_EQ(back.seed, result.seed);
    EXPECT_EQ(back.scheme, result.scheme);
    EXPECT_EQ(back.cost, result.cost);  // bit-for-bit
    EXPECT_EQ(back.report.latency, result.report.latency);
    EXPECT_EQ(back.report.core_energy_j, result.report.core_energy_j);
    EXPECT_EQ(back.report.dram_energy_j, result.report.dram_energy_j);
    EXPECT_EQ(back.report.num_tiles, result.report.num_tiles);
    EXPECT_EQ(back.stage1_report.valid, result.stage1_report.valid);
    EXPECT_EQ(back.stage1_report.latency, result.stage1_report.latency);
    EXPECT_EQ(back.asm_text, result.asm_text);
    EXPECT_EQ(back.num_instructions, result.num_instructions);
    EXPECT_EQ(back.stats.iterations, result.stats.iterations);
}

// ------------------------------------------------------------ registries

TEST(Registries, BuiltinsArePresent)
{
    Scheduler scheduler;
    EXPECT_TRUE(scheduler.models().Has("resnet50"));
    EXPECT_TRUE(scheduler.models().Has("gpt2xl-decode"));
    EXPECT_TRUE(scheduler.hardware().Has("edge"));
    EXPECT_TRUE(scheduler.hardware().Has("cloud"));
    EXPECT_TRUE(scheduler.schedulers().Has("soma"));
    EXPECT_TRUE(scheduler.schedulers().Has("cocco"));
    EXPECT_TRUE(scheduler.schedulers().Has("lfa-only"));
}

TEST(Registries, UnknownNamesErrorWithCandidates)
{
    Scheduler scheduler;
    ScheduleRequest request;
    request.model = "resnet999";
    ScheduleResult result = scheduler.Schedule(request);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("resnet999"), std::string::npos);
    EXPECT_NE(result.error.find("resnet50"), std::string::npos);

    request = TinyRequest(1);
    request.hardware = "tpu";
    result = scheduler.Schedule(request);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("tpu"), std::string::npos);
    EXPECT_NE(result.error.find("edge"), std::string::npos);

    request = TinyRequest(1);
    request.scheduler = "magic";
    result = scheduler.Schedule(request);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("magic"), std::string::npos);
    EXPECT_NE(result.error.find("soma"), std::string::npos);
}

TEST(Registries, CustomEntriesServeRequests)
{
    Scheduler scheduler;
    scheduler.models().Register("tiny", [](int) {
        GraphBuilder b("tiny", 1);
        LayerId c = b.InputConv("c", ExtShape{3, 16, 16}, 8, 3, 1, 1);
        b.MarkOutput(c);
        return b.Take();
    });
    scheduler.hardware().Register("nano", [] {
        HardwareConfig hw = EdgeAccelerator();
        hw.name = "nano";
        hw.cores = 2;
        return hw;
    });
    ScheduleRequest request;
    request.model = "tiny";
    request.hardware = "nano";
    request.profile = SearchProfile::kQuick;
    ScheduleResult result = scheduler.Schedule(request);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.model, "tiny");
    EXPECT_EQ(result.hardware, "nano");
}

TEST(Registries, LfaOnlySchedulerRuns)
{
    Scheduler scheduler;
    ScheduleRequest request = TinyRequest(9);
    request.scheduler = "lfa-only";
    ScheduleResult result = scheduler.Schedule(request);
    ASSERT_TRUE(result.ok) << result.error;
    // No DLSA exploration: stage-1 view is the final view.
    EXPECT_FALSE(result.stage1_report.valid);
    EXPECT_GT(result.report.latency, 0.0);
}

// ---------------------------------------------------------------- facade

TEST(SchedulerFacade, MatchesLegacyRunSomaBitForBit)
{
    std::shared_ptr<const Graph> graph = TinyNet();
    HardwareConfig hw = EdgeAccelerator();
    SomaSearchResult legacy = RunSoma(*graph, hw, QuickSomaOptions(13));

    Scheduler scheduler;
    ScheduleRequest request;
    request.graph = graph;
    request.profile = SearchProfile::kQuick;
    request.seed = 13;
    ScheduleResult result = scheduler.Schedule(request);

    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(legacy.report.valid);
    EXPECT_EQ(result.report.latency, legacy.report.latency);
    EXPECT_EQ(result.report.EnergyJ(), legacy.report.EnergyJ());
    EXPECT_EQ(result.cost, legacy.cost);
    EXPECT_EQ(result.scheme, legacy.lfa.ToString(*graph));
}

TEST(SchedulerFacade, ProgressEventsCoverTheLifecycle)
{
    Scheduler scheduler;
    ScheduleRequest request = TinyRequest(5);
    std::vector<std::string> phases;
    request.on_progress = [&phases](const ProgressEvent &event) {
        phases.push_back(event.phase);
    };
    ScheduleResult result = scheduler.Schedule(request);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(phases.size(), 4u);
    EXPECT_EQ(phases[0], "build");
    EXPECT_EQ(phases[1], "search");
    EXPECT_EQ(phases[2], "artifacts");
    EXPECT_EQ(phases[3], "done");
    EXPECT_GT(result.stats.search_seconds, 0.0);
    EXPECT_GE(result.stats.total_seconds, result.stats.search_seconds);
    EXPECT_GT(result.stats.iterations, 0);
}

// ----------------------------------------------------------------- async

TEST(SchedulerAsync, SubmitIsDeterministicUnderConcurrentSiblings)
{
    Scheduler::Options options;
    options.workers = 3;
    Scheduler scheduler(options);

    ScheduleRequest request = TinyRequest(42);
    ScheduleResult reference = scheduler.Schedule(request);
    ASSERT_TRUE(reference.ok) << reference.error;

    // Same-seed copies race with different-seed noise jobs; every
    // same-seed result must be bit-identical to the sync reference.
    std::vector<Scheduler::JobId> same, noise;
    for (int i = 0; i < 3; ++i) {
        same.push_back(scheduler.Submit(request));
        noise.push_back(scheduler.Submit(TinyRequest(100 + i)));
    }
    for (Scheduler::JobId id : same) {
        ScheduleResult r = scheduler.Wait(id);
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.report.latency, reference.report.latency);
        EXPECT_EQ(r.report.EnergyJ(), reference.report.EnergyJ());
        EXPECT_EQ(r.cost, reference.cost);
        EXPECT_EQ(r.scheme, reference.scheme);
    }
    for (Scheduler::JobId id : noise) EXPECT_TRUE(scheduler.Wait(id).ok);
}

TEST(SchedulerAsync, WaitIsSingleCollectionAndUnknownIdsFail)
{
    Scheduler scheduler;
    Scheduler::JobId id = scheduler.Submit(TinyRequest(1));
    ScheduleResult first = scheduler.Wait(id);
    EXPECT_TRUE(first.ok) << first.error;
    ScheduleResult second = scheduler.Wait(id);  // already collected
    EXPECT_FALSE(second.ok);
    EXPECT_NE(second.error.find("unknown job"), std::string::npos);
}

TEST(SchedulerAsync, DiscardReleasesUncollectedJobs)
{
    Scheduler scheduler;
    // Discarding a finished job frees its slot: Wait no longer knows it.
    Scheduler::JobId done_id = scheduler.Submit(TinyRequest(1));
    while (!scheduler.Done(done_id)) std::this_thread::yield();
    scheduler.Discard(done_id);
    EXPECT_FALSE(scheduler.Done(done_id));
    EXPECT_FALSE(scheduler.Wait(done_id).ok);

    // Discarding a pending job cancels it and self-cleans on completion
    // (fire-and-forget); the scheduler keeps serving afterwards.
    Scheduler::JobId pending_id = scheduler.Submit(TinyRequest(2));
    scheduler.Discard(pending_id);
    ScheduleResult after = scheduler.Schedule(TinyRequest(3));
    EXPECT_TRUE(after.ok) << after.error;
    EXPECT_FALSE(scheduler.Done(pending_id));
}

TEST(SchedulerAsync, CancelledQueuedJobNeverRuns)
{
    // One worker; the first job blocks in its progress callback until
    // released, so the second job is still queued when cancelled.
    Scheduler::Options options;
    options.workers = 1;
    Scheduler scheduler(options);

    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;

    ScheduleRequest blocker = TinyRequest(2);
    blocker.on_progress = [&](const ProgressEvent &event) {
        if (event.phase != "search") return;
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return release; });
    };
    Scheduler::JobId blocker_id = scheduler.Submit(blocker);
    Scheduler::JobId victim_id = scheduler.Submit(TinyRequest(3));

    EXPECT_TRUE(scheduler.Cancel(victim_id));
    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();

    ScheduleResult blocked = scheduler.Wait(blocker_id);
    EXPECT_TRUE(blocked.ok) << blocked.error;
    ScheduleResult victim = scheduler.Wait(victim_id);
    EXPECT_FALSE(victim.ok);
    EXPECT_EQ(victim.error, "cancelled");
    // Cancelling a finished job reports false.
    EXPECT_FALSE(scheduler.Cancel(blocker_id));
}

}  // namespace
}  // namespace soma
