/**
 * @file
 * TilingCache: a thread-safe memo of ComputeFlgTiling results.
 *
 * The LFA stage's SA loop re-parses a whole scheme per candidate, and
 * the dominant cost of each parse is the per-FLG backward halo
 * propagation (O(layers x tiles x consumers) region math). A mutation
 * touches at most two fused groups, so the tilings of every other group
 * are recomputed verbatim — this cache keys them by the group's
 * *sink-set signature* — (canonical member set, Tiling Number) — and
 * hands the stored result back as a shared immutable FlgTiling.
 *
 * Keys are member *sets*, not ordered sequences: an FLG's sink set (and
 * hence its split and per-layer regions) is a function of the member
 * set alone (see ComputeFlgTiling), so every dependency-legal interior
 * order of one group shares a single entry. Values remember the order
 * they were derived with; a hit under a different order is re-indexed
 * through ReindexFlgTiling — bit-identical to recomputation at copy
 * cost (counted in Stats::remaps). Keys carry the full sorted member
 * list (no lossy hashing); lookups take a shared lock, misses compute
 * outside the lock and publish under an exclusive one.
 *
 * One cache is shared by all SearchDriver chains of a search, across
 * the Buffer Allocator's outer iterations, and — via the service
 * layer's WarmStateCache — across every request scheduling the same
 * graph: ComputeFlgTiling is a pure function of (graph, members,
 * tiles), so a hit returns the same value no matter which chain or
 * request inserted it; sharing never perturbs per-seed determinism.
 *
 * A cache instance is bound to the graph of the first Get call purely
 * by convention: keys do not encode the graph, so use one cache per
 * graph identity (the WarmStateCache keys instances by graph
 * fingerprint for exactly this reason).
 */
#ifndef SOMA_TILING_TILING_CACHE_H
#define SOMA_TILING_TILING_CACHE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "tiling/tiler.h"

namespace soma {

/**
 * FNV-1a fold over a fused group's content key (layer sequence, tile
 * count) — the one hash behind TilingCache's shards and the parser's
 * group-memo signatures (both collision-check against the full key).
 * Order-sensitive over whatever sequence it is given: pass the sorted
 * member list for the canonical sink-set signature.
 */
std::uint64_t GroupKeyHash(const std::vector<LayerId> &layers, int tiles);

class TilingCache {
  public:
    /** Hit/miss counters since construction (clears reset them).
     *  `remaps` counts hits served under a different interior order
     *  than the stored derivation (re-indexed, not recomputed). */
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t remaps = 0;
    };

    /**
     * The tiling of @p flg_layers (in computing order) at @p tiles,
     * computed through ComputeFlgTiling on a miss. The result is
     * immutable, indexed by @p flg_layers, and shared when the stored
     * derivation order matches (re-indexed otherwise); invalid tilings
     * (infeasible tile counts) are cached too — the SA walk re-proposes
     * them often.
     */
    std::shared_ptr<const FlgTiling> Get(
        const Graph &graph, const std::vector<LayerId> &flg_layers,
        int tiles);

    /**
     * Copy-free Get: on a hit whose stored derivation order differs
     * from @p flg_layers, returns the stored tiling *as derived* and
     * fills @p perm_out with the dst->src view mapping (perm_out[i] =
     * stored index of flg_layers[i]) so the caller indexes through it
     * — no re-indexed FlgTiling is materialized. @p perm_out is
     * cleared (identity) when the stored order already matches, on a
     * miss, and for invalid tilings.
     */
    std::shared_ptr<const FlgTiling> GetView(
        const Graph &graph, const std::vector<LayerId> &flg_layers,
        int tiles, std::vector<std::size_t> *perm_out);

    Stats stats() const;
    std::size_t size() const;
    /** Rough resident footprint (keys + stored tilings) in bytes, for
     *  the warm-state accounting surfaced by `somac sweep --stats`. */
    std::size_t ApproxBytes() const;

    /** Entry cap per shard; beyond it the shard is dropped wholesale
     *  (values are pure, so re-computation is always safe). */
    static constexpr std::size_t kMaxEntriesPerShard = 1 << 12;

  private:
    /** Canonical sink-set key: sorted member set + Tiling Number. */
    struct Key {
        std::vector<LayerId> members;  ///< sorted ascending
        int tiles = 0;
        bool operator==(const Key &o) const
        {
            return tiles == o.tiles && members == o.members;
        }
    };
    struct KeyHash {
        std::size_t operator()(const Key &k) const;
    };
    /** Stored value: the tiling plus the order it was derived with
     *  (immutable after insert; hits under other orders re-index). */
    struct Value {
        std::vector<LayerId> order;
        std::shared_ptr<const FlgTiling> tiling;
    };
    static constexpr int kShards = 8;
    struct Shard {
        /** Lock order: leaf. Reads take it shared, publishes exclusive;
         *  ComputeFlgTiling always runs outside it. */
        mutable SharedMutex mutex;
        std::unordered_map<Key, Value, KeyHash> map
            SOMA_GUARDED_BY(mutex);
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> misses{0};
        std::atomic<std::uint64_t> remaps{0};
    };

    Shard &ShardFor(const Key &key) const;

    mutable std::array<Shard, kShards> shards_;
};

}  // namespace soma

#endif  // SOMA_TILING_TILING_CACHE_H
