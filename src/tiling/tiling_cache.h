/**
 * @file
 * TilingCache: a thread-safe memo of ComputeFlgTiling results.
 *
 * The LFA stage's SA loop re-parses a whole scheme per candidate, and
 * the dominant cost of each parse is the per-FLG backward halo
 * propagation (O(layers x tiles x consumers) region math). A mutation
 * touches at most two fused groups, so the tilings of every other group
 * are recomputed verbatim — this cache keys them by (ordered layer
 * sequence of the group, Tiling Number) and hands the stored result
 * back as a shared immutable FlgTiling.
 *
 * One cache is shared by all SearchDriver chains of a search (and
 * across the Buffer Allocator's outer iterations): ComputeFlgTiling is
 * a pure function of (graph, layers, tiles), so a hit returns the same
 * value no matter which chain inserted it — sharing never perturbs
 * per-seed determinism. Keys carry the full layer sequence (no lossy
 * hashing); lookups take a shared lock, misses compute outside the
 * lock and publish under an exclusive one.
 *
 * A cache instance is bound to the graph of the first Get call purely
 * by convention: keys do not encode the graph, so use one cache per
 * (graph, search) like the evaluator memo.
 */
#ifndef SOMA_TILING_TILING_CACHE_H
#define SOMA_TILING_TILING_CACHE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "tiling/tiler.h"

namespace soma {

/**
 * FNV-1a fold over a fused group's content key (ordered layer
 * sequence, tile count) — the one hash behind TilingCache's shards and
 * the parser's group-memo signatures (both collision-check against the
 * full key).
 */
std::uint64_t GroupKeyHash(const std::vector<LayerId> &layers, int tiles);

class TilingCache {
  public:
    /** Hit/miss counters since construction (clears reset them). */
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    /**
     * The tiling of @p flg_layers (in computing order) at @p tiles,
     * computed through ComputeFlgTiling on a miss. The result is
     * immutable and shared; invalid tilings (infeasible tile counts)
     * are cached too — the SA walk re-proposes them often.
     */
    std::shared_ptr<const FlgTiling> Get(
        const Graph &graph, const std::vector<LayerId> &flg_layers,
        int tiles);

    Stats stats() const;
    std::size_t size() const;

    /** Entry cap per shard; beyond it the shard is dropped wholesale
     *  (values are pure, so re-computation is always safe). */
    static constexpr std::size_t kMaxEntriesPerShard = 1 << 12;

  private:
    struct Key {
        std::vector<LayerId> layers;
        int tiles = 0;
        bool operator==(const Key &o) const
        {
            return tiles == o.tiles && layers == o.layers;
        }
    };
    struct KeyHash {
        std::size_t operator()(const Key &k) const;
    };
    static constexpr int kShards = 8;
    struct Shard {
        mutable std::shared_mutex mutex;
        std::unordered_map<Key, std::shared_ptr<const FlgTiling>, KeyHash>
            map;
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> misses{0};
    };

    Shard &ShardFor(const Key &key) const;

    mutable std::array<Shard, kShards> shards_;
};

}  // namespace soma

#endif  // SOMA_TILING_TILING_CACHE_H
