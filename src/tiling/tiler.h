/**
 * @file
 * Tile partitioning for Fine-grained Layer-fusion Groups (FLGs).
 *
 * Implements the paper's heuristic split (Sec. IV-A1): batch dimension
 * first (no halo), then ofmap height and width "as equal as possible",
 * and the backward receptive-field propagation that determines each
 * intermediate layer's per-tile output region inside an FLG — tiles of
 * layers feeding windowed consumers are larger than 1/T of the fmap,
 * which is the backtracking halo-overlap cost (modeled as recomputation,
 * following Cocco / DeFiNES).
 */
#ifndef SOMA_TILING_TILER_H
#define SOMA_TILING_TILER_H

#include <optional>
#include <vector>

#include "hw/hardware.h"
#include "workload/graph.h"

namespace soma {

/** Factorization of a tile count across batch/rows/cols. */
struct TileSplit {
    int batch = 1;
    int rows = 1;
    int cols = 1;
    int Total() const { return batch * rows * cols; }
};

/**
 * Pick a split of @p tiles across (batch, rows, cols) for fmaps of at
 * least (@p min_h x @p min_w): batch first, then rows/cols near-square.
 * Returns nullopt when no feasible factorization exists.
 */
std::optional<TileSplit> ChooseTileSplit(int tiles, int batch, int min_h,
                                         int min_w);

/**
 * The even ("canonical") output slice of tile @p index for a layer with
 * the given dims. Tile indices are batch-major, then rows, then cols.
 */
Region CanonicalSlice(const TileSplit &split, int index, int batch, int h,
                      int w);

/**
 * Per-layer, per-tile output regions of one FLG.
 *
 * regions[i][t] is the region of flg_layers[i]'s ofmap computed during
 * tile round t; for non-sink layers it is the union of what in-FLG
 * consumers need (recompute-halo model) and is generally larger than the
 * canonical slice.
 */
struct FlgTiling {
    bool valid = false;
    TileSplit split;
    std::vector<std::vector<Region>> regions;
};

/**
 * Compute the tiling of an FLG given its layers in computing order and
 * the Tiling Number @p tiles. Invalid when @p tiles cannot be
 * factorized for the FLG's sink layers.
 *
 * The result is *order-invariant per layer*: the sink set (and hence
 * the split) is a function of the member set alone, and each layer's
 * per-tile region is the union of what its in-FLG consumers need — a
 * bottom-up value that is identical under every dependency-legal
 * computing order of the same member set. Only the positional indexing
 * of `regions` follows @p flg_layers; ReindexFlgTiling exploits this.
 */
FlgTiling ComputeFlgTiling(const Graph &graph,
                           const std::vector<LayerId> &flg_layers,
                           int tiles);

/**
 * The dst->src index mapping between two orders of one member set:
 * fills @p perm_out with perm_out[i] = j where dst_order[i] ==
 * src_order[j] — the indirection behind permutation-view FlgTiling
 * blocks (TilingCache::GetView, the parser's group memo), which index
 * a stored block through it instead of materializing a re-ordered
 * copy.
 */
void OrderPermutation(const std::vector<LayerId> &src_order,
                      const std::vector<LayerId> &dst_order,
                      std::vector<std::size_t> *perm_out);

/**
 * Re-index @p src, computed for the layer order @p src_order, to the
 * order @p dst_order (a permutation of the same member set): the
 * returned tiling satisfies result.regions[i] == src.regions[j] where
 * dst_order[i] == src_order[j]. Because per-layer regions are
 * order-invariant (see ComputeFlgTiling), the result is bit-identical
 * to ComputeFlgTiling(graph, dst_order, tiles) at a fraction of its
 * cost — the remap behind the sink-set (member-set) group signatures
 * of TilingCache and the parser's group memo. Invalid tilings carry no
 * regions and re-index to an invalid copy.
 *
 * When @p perm_out is given it receives the dst->src index mapping
 * (perm_out[i] == j above) so callers can permute parallel per-layer
 * data (the parser's round-major cost blocks) without re-deriving it.
 * Filled for invalid tilings too.
 */
FlgTiling ReindexFlgTiling(const FlgTiling &src,
                           const std::vector<LayerId> &src_order,
                           const std::vector<LayerId> &dst_order,
                           std::vector<std::size_t> *perm_out = nullptr);

/**
 * The KC-parallelism heuristic Tiling Number used by Cocco and by SoMa's
 * initial LFA solution (Sec. V-C1): the finest power-of-two granularity
 * whose tiles still provide enough spatial work to fill the core array,
 * minimized over the group's matrix layers and clamped to
 * [1, @p cap].
 */
int HeuristicParallelTiles(const Graph &graph,
                           const std::vector<LayerId> &layers,
                           const HardwareConfig &hw, int cap = 128);

}  // namespace soma

#endif  // SOMA_TILING_TILER_H
