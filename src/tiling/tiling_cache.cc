#include "tiling/tiling_cache.h"

#include <mutex>

namespace soma {

std::uint64_t
GroupKeyHash(const std::vector<LayerId> &layers, int tiles)
{
    // FNV-1a over the layer sequence, then the tile count.
    std::uint64_t h = 1469598103934665603ULL;
    for (LayerId id : layers) {
        h ^= static_cast<std::uint64_t>(id);
        h *= 1099511628211ULL;
    }
    h ^= static_cast<std::uint64_t>(tiles);
    h *= 1099511628211ULL;
    return h;
}

std::size_t
TilingCache::KeyHash::operator()(const Key &k) const
{
    return static_cast<std::size_t>(GroupKeyHash(k.layers, k.tiles));
}

TilingCache::Shard &
TilingCache::ShardFor(const Key &key) const
{
    return shards_[KeyHash{}(key) % kShards];
}

std::shared_ptr<const FlgTiling>
TilingCache::Get(const Graph &graph, const std::vector<LayerId> &flg_layers,
                 int tiles)
{
    Key key{flg_layers, tiles};
    Shard &shard = ShardFor(key);
    {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.hits.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    auto tiling = std::make_shared<const FlgTiling>(
        ComputeFlgTiling(graph, flg_layers, tiles));
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    if (shard.map.size() >= kMaxEntriesPerShard) shard.map.clear();
    // A racing thread may have published first; both computed the same
    // pure value, so return whichever landed.
    return shard.map.emplace(std::move(key), std::move(tiling))
        .first->second;
}

TilingCache::Stats
TilingCache::stats() const
{
    Stats out;
    for (const Shard &shard : shards_) {
        out.hits += shard.hits.load(std::memory_order_relaxed);
        out.misses += shard.misses.load(std::memory_order_relaxed);
    }
    return out;
}

std::size_t
TilingCache::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        total += shard.map.size();
    }
    return total;
}

}  // namespace soma
