#include "tiling/tiling_cache.h"

#include <algorithm>

#include "obs/prof.h"

namespace soma {

std::uint64_t
GroupKeyHash(const std::vector<LayerId> &layers, int tiles)
{
    // FNV-1a over the layer sequence, then the tile count.
    std::uint64_t h = 1469598103934665603ULL;
    for (LayerId id : layers) {
        h ^= static_cast<std::uint64_t>(id);
        h *= 1099511628211ULL;
    }
    h ^= static_cast<std::uint64_t>(tiles);
    h *= 1099511628211ULL;
    return h;
}

std::size_t
TilingCache::KeyHash::operator()(const Key &k) const
{
    return static_cast<std::size_t>(GroupKeyHash(k.members, k.tiles));
}

TilingCache::Shard &
TilingCache::ShardFor(const Key &key) const
{
    return shards_[KeyHash{}(key) % kShards];
}

std::shared_ptr<const FlgTiling>
TilingCache::Get(const Graph &graph, const std::vector<LayerId> &flg_layers,
                 int tiles)
{
    Key key{flg_layers, tiles};
    std::sort(key.members.begin(), key.members.end());
    Shard &shard = ShardFor(key);
    {
        // On a hit under a different interior order, copy the stored
        // value's fields under the lock and re-index after releasing it
        // (entries are immutable but a shard overflow clears the map).
        std::shared_ptr<const FlgTiling> tiling;
        std::vector<LayerId> stored_order;
        {
            SharedReaderLock lock(shard.mutex);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                shard.hits.fetch_add(1, std::memory_order_relaxed);
                if (it->second.order == flg_layers) return it->second.tiling;
                tiling = it->second.tiling;
                stored_order = it->second.order;
            }
        }
        if (tiling) {
            shard.remaps.fetch_add(1, std::memory_order_relaxed);
            return std::make_shared<const FlgTiling>(
                ReindexFlgTiling(*tiling, stored_order, flg_layers));
        }
    }
    SOMA_PROF_SCOPE("tiling.derive");
    auto tiling = std::make_shared<const FlgTiling>(
        ComputeFlgTiling(graph, flg_layers, tiles));
    SharedMutexLock lock(shard.mutex);
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    if (shard.map.size() >= kMaxEntriesPerShard) shard.map.clear();
    // A racing thread may have published first; both computed pure
    // values for the same member set, so serve whichever landed —
    // re-indexed if the resident derivation order differs.
    auto [it, inserted] =
        shard.map.emplace(std::move(key), Value{flg_layers, tiling});
    if (!inserted && it->second.order != flg_layers) {
        return std::make_shared<const FlgTiling>(
            ReindexFlgTiling(*it->second.tiling, it->second.order,
                             flg_layers));
    }
    return it->second.tiling;
}

std::shared_ptr<const FlgTiling>
TilingCache::GetView(const Graph &graph,
                     const std::vector<LayerId> &flg_layers, int tiles,
                     std::vector<std::size_t> *perm_out)
{
    perm_out->clear();
    Key key{flg_layers, tiles};
    std::sort(key.members.begin(), key.members.end());
    Shard &shard = ShardFor(key);
    {
        std::shared_ptr<const FlgTiling> tiling;
        std::vector<LayerId> stored_order;
        {
            SharedReaderLock lock(shard.mutex);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                shard.hits.fetch_add(1, std::memory_order_relaxed);
                if (it->second.order == flg_layers) return it->second.tiling;
                tiling = it->second.tiling;
                stored_order = it->second.order;
            }
        }
        if (tiling) {
            // Hand back the stored derivation plus the view mapping —
            // unlike Get, no re-indexed copy is materialized.
            shard.remaps.fetch_add(1, std::memory_order_relaxed);
            if (tiling->valid)
                OrderPermutation(stored_order, flg_layers, perm_out);
            return tiling;
        }
    }
    SOMA_PROF_SCOPE("tiling.derive");
    auto tiling = std::make_shared<const FlgTiling>(
        ComputeFlgTiling(graph, flg_layers, tiles));
    SharedMutexLock lock(shard.mutex);
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    if (shard.map.size() >= kMaxEntriesPerShard) shard.map.clear();
    // A racing thread may have published first; share whichever landed
    // (both are the same pure value), viewed through the perm when the
    // resident derivation order differs.
    auto [it, inserted] =
        shard.map.emplace(std::move(key), Value{flg_layers, tiling});
    if (!inserted && it->second.order != flg_layers) {
        if (it->second.tiling->valid)
            OrderPermutation(it->second.order, flg_layers, perm_out);
    }
    return it->second.tiling;
}

TilingCache::Stats
TilingCache::stats() const
{
    Stats out;
    for (const Shard &shard : shards_) {
        out.hits += shard.hits.load(std::memory_order_relaxed);
        out.misses += shard.misses.load(std::memory_order_relaxed);
        out.remaps += shard.remaps.load(std::memory_order_relaxed);
    }
    return out;
}

std::size_t
TilingCache::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        SharedReaderLock lock(shard.mutex);
        total += shard.map.size();
    }
    return total;
}

std::size_t
TilingCache::ApproxBytes() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        SharedReaderLock lock(shard.mutex);
        for (const auto &[key, value] : shard.map) {
            total += sizeof(key) + sizeof(value) +
                     (key.members.size() + value.order.size()) *
                         sizeof(LayerId) +
                     sizeof(FlgTiling);
            for (const auto &row : value.tiling->regions)
                total += sizeof(row) + row.size() * sizeof(Region);
        }
    }
    return total;
}

}  // namespace soma
