#include "tiling/tiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace soma {

std::optional<TileSplit>
ChooseTileSplit(int tiles, int batch, int min_h, int min_w)
{
    assert(tiles >= 1);
    TileSplit split;
    // Batch first: the largest divisor of tiles not exceeding the batch.
    for (int d = std::min(tiles, batch); d >= 1; --d) {
        if (tiles % d == 0) {
            split.batch = d;
            break;
        }
    }
    int rem = tiles / split.batch;
    int best_rows = -1, best_cols = -1;
    int best_score = INT32_MAX;
    for (int rows = 1; rows <= rem; ++rows) {
        if (rem % rows != 0) continue;
        int cols = rem / rows;
        if (rows > min_h || cols > min_w) continue;
        int score = std::abs(rows - cols) * 2 - (rows > cols ? 1 : 0);
        if (score < best_score) {
            best_score = score;
            best_rows = rows;
            best_cols = cols;
        }
    }
    if (best_rows < 0) return std::nullopt;
    split.rows = best_rows;
    split.cols = best_cols;
    return split;
}

Region
CanonicalSlice(const TileSplit &split, int index, int batch, int h, int w)
{
    assert(index >= 0 && index < split.Total());
    int ic = index % split.cols;
    int ir = (index / split.cols) % split.rows;
    int ib = index / (split.cols * split.rows);
    Region r;
    EvenSlice(batch, split.batch, ib, &r.b0, &r.b1);
    EvenSlice(h, split.rows, ir, &r.r0, &r.r1);
    EvenSlice(w, split.cols, ic, &r.c0, &r.c1);
    return r;
}

FlgTiling
ComputeFlgTiling(const Graph &graph, const std::vector<LayerId> &flg_layers,
                 int tiles)
{
    FlgTiling result;
    const int n = static_cast<int>(flg_layers.size());
    assert(n > 0);

    std::unordered_map<LayerId, int> index_of;
    for (int i = 0; i < n; ++i) index_of[flg_layers[i]] = i;

    // A layer is a sink if its ofmap leaves the FLG: it is a network
    // output, has a consumer outside the FLG, or has no consumers.
    std::vector<bool> is_sink(n, false);
    int min_h = INT32_MAX, min_w = INT32_MAX;
    for (int i = 0; i < n; ++i) {
        const Layer &l = graph.layer(flg_layers[i]);
        bool sink = l.isNetworkOutput();
        const auto &consumers = graph.Consumers(flg_layers[i]);
        if (consumers.empty()) sink = true;
        for (const Edge &e : consumers) {
            if (!index_of.count(e.consumer)) sink = true;
        }
        is_sink[i] = sink;
        if (sink) {
            min_h = std::min(min_h, l.outHeight());
            min_w = std::min(min_w, l.outWidth());
        }
    }
    assert(min_h != INT32_MAX && "an FLG always has at least one sink");

    auto split = ChooseTileSplit(tiles, graph.batch(), min_h, min_w);
    if (!split) return result;  // invalid
    result.split = *split;

    result.regions.assign(n, std::vector<Region>(tiles));
    // Backward pass: consumers (later indices) before producers.
    for (int i = n - 1; i >= 0; --i) {
        const LayerId id = flg_layers[i];
        const Layer &l = graph.layer(id);
        for (int t = 0; t < tiles; ++t) {
            Region req;
            if (is_sink[i]) {
                req = CanonicalSlice(*split, t, graph.batch(), l.outHeight(),
                                     l.outWidth());
            }
            for (const Edge &e : graph.Consumers(id)) {
                auto it = index_of.find(e.consumer);
                if (it == index_of.end()) continue;
                int ci = it->second;
                assert(ci > i && "computing order must respect deps");
                const Layer &cons = graph.layer(e.consumer);
                const InputRef &in = cons.inputs()[e.input_index];
                Region need = cons.RequiredInputRegion(
                    in, result.regions[ci][t], l.outHeight(), l.outWidth());
                req = Region::Union(req, need);
            }
            result.regions[i][t] = req;
        }
    }
    result.valid = true;
    return result;
}

void
OrderPermutation(const std::vector<LayerId> &src_order,
                 const std::vector<LayerId> &dst_order,
                 std::vector<std::size_t> *perm_out)
{
    assert(src_order.size() == dst_order.size());
    std::unordered_map<LayerId, std::size_t> src_index;
    src_index.reserve(src_order.size());
    for (std::size_t i = 0; i < src_order.size(); ++i)
        src_index[src_order[i]] = i;
    perm_out->resize(dst_order.size());
    for (std::size_t i = 0; i < dst_order.size(); ++i) {
        auto it = src_index.find(dst_order[i]);
        assert(it != src_index.end() && "dst_order must permute src_order");
        (*perm_out)[i] = it->second;
    }
}

FlgTiling
ReindexFlgTiling(const FlgTiling &src, const std::vector<LayerId> &src_order,
                 const std::vector<LayerId> &dst_order,
                 std::vector<std::size_t> *perm_out)
{
    std::vector<std::size_t> local_perm;
    std::vector<std::size_t> &perm = perm_out ? *perm_out : local_perm;
    OrderPermutation(src_order, dst_order, &perm);
    FlgTiling out;
    out.valid = src.valid;
    out.split = src.split;
    if (!src.valid) return out;
    out.regions.resize(dst_order.size());
    for (std::size_t i = 0; i < dst_order.size(); ++i)
        out.regions[i] = src.regions[perm[i]];
    return out;
}

int
HeuristicParallelTiles(const Graph &graph, const std::vector<LayerId> &layers,
                       const HardwareConfig &hw, int cap)
{
    // For each matrix layer, estimate how many cores must be fed with
    // distinct spatial sites (cores not already busy on output-channel
    // parallelism), then the finest granularity that still supplies
    // pe_cols sites to each of them.
    std::int64_t t_max = INT64_MAX;
    bool any_matrix = false;
    for (LayerId id : layers) {
        const Layer &l = graph.layer(id);
        if (!IsMatrixKind(l.kind())) continue;
        // Layers with no spatial extent (classifier FCs) are sequential
        // regardless of the tiling and do not drive the heuristic.
        if (l.outHeight() * l.outWidth() <= 1 && graph.batch() <= 1)
            continue;
        any_matrix = true;
        std::int64_t sites = static_cast<std::int64_t>(graph.batch()) *
                             l.outHeight() * l.outWidth();
        int k_cores = std::max(
            1, (l.outChannels() + hw.pe_rows_per_core - 1) /
                   hw.pe_rows_per_core);
        int spatial_cores = std::max(1, hw.cores / std::min(hw.cores,
                                                            k_cores));
        std::int64_t needed = static_cast<std::int64_t>(spatial_cores) *
                              hw.pe_cols_per_core;
        t_max = std::min(t_max, std::max<std::int64_t>(1, sites / needed));
    }
    if (!any_matrix) {
        // Vector-only group (eltwise/pool/activation): all cores split
        // spatially; without this fallback such a group would demand its
        // full fmaps at once.
        t_max = 1;
        for (LayerId id : layers) {
            const Layer &l = graph.layer(id);
            std::int64_t sites = static_cast<std::int64_t>(graph.batch()) *
                                 l.outHeight() * l.outWidth();
            std::int64_t needed = static_cast<std::int64_t>(hw.cores) *
                                  hw.pe_cols_per_core;
            t_max = std::max(t_max,
                             std::max<std::int64_t>(1, sites / needed));
        }
    }

    // Capacity guard: no per-tile fmap — produced or loaded — may demand
    // more than a quarter of the GBUF (a schedulability precondition any
    // real compiler enforces; giant attention-score fmaps and
    // large-batch KV-cache loads need it).
    std::int64_t t_min = 1;
    for (LayerId id : layers) {
        const Layer &l = graph.layer(id);
        Bytes fmap = l.PerSampleOutputBytes() * graph.batch();
        for (const InputRef &in : l.inputs()) {
            Bytes in_bytes = 0;
            if (in.producer == kNoLayer) {
                in_bytes = in.ext.PerSampleBytes(l.elemBytes()) *
                           graph.batch();
            } else if (in.pattern == AccessPattern::kFull) {
                in_bytes = graph.layer(in.producer).PerSampleOutputBytes() *
                           graph.batch();
            }
            fmap = std::max(fmap, in_bytes);
        }
        std::int64_t need = (4 * fmap + hw.gbuf_bytes - 1) / hw.gbuf_bytes;
        t_min = std::max(t_min, need);
    }

    // Floor to a power of two, clamp; the capacity guard wins ties.
    int t = 1;
    while (2LL * t <= t_max && 2 * t <= cap) t *= 2;
    while (t < t_min && 2 * t <= cap) t *= 2;
    return t;
}

}  // namespace soma
