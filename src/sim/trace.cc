#include "sim/trace.h"

#include <algorithm>

namespace soma {

namespace {

const char *
KindName(DramTensorKind kind)
{
    switch (kind) {
      case DramTensorKind::kWeight: return "weight";
      case DramTensorKind::kIfmap: return "ifmap";
      case DramTensorKind::kOfmap: return "ofmap";
    }
    return "?";
}

}  // namespace

void
WriteComputeTraceCsv(std::ostream &os, const Graph &graph,
                     const ParsedSchedule &parsed, const EvalReport &report)
{
    os << "pos,layer,round,lg,flg,start_us,finish_us,stall_us,ops,"
          "bytes_out\n";
    double prev_finish = 0.0;
    for (int i = 0; i < parsed.NumTiles(); ++i) {
        const TileInfo &t = parsed.tiles[i];
        double start = report.tile_times[i].start;
        double finish = report.tile_times[i].finish;
        double stall = std::max(0.0, start - prev_finish);
        prev_finish = finish;
        os << i << "," << graph.layer(t.layer).name() << "," << t.round
           << "," << t.lg << "," << t.flg << "," << start * 1e6 << ","
           << finish * 1e6 << "," << stall * 1e6 << "," << t.cost.ops
           << "," << graph.layer(t.layer).OutputBytes(t.region) << "\n";
    }
}

void
WriteDramTraceCsv(std::ostream &os, const Graph &graph,
                  const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
                  const EvalReport &report)
{
    os << "order,label,kind,bytes,start_us,finish_us,living_start,"
          "living_end\n";
    for (int r = 0; r < parsed.NumTensors(); ++r) {
        int j = dlsa.order[r];
        const DramTensor &t = parsed.tensors[j];
        TilePos living_start =
            t.IsLoad() ? dlsa.free_point[j] : t.first_use;
        TilePos living_end = t.IsLoad() ? t.fixed_end : dlsa.free_point[j];
        os << r << "," << t.Label(graph) << "," << KindName(t.kind) << ","
           << t.bytes << "," << report.tensor_times[j].start * 1e6 << ","
           << report.tensor_times[j].finish * 1e6 << "," << living_start
           << "," << living_end << "\n";
    }
}

void
WriteBufferTraceCsv(std::ostream &os, const ParsedSchedule &parsed,
                    const DlsaEncoding &dlsa)
{
    const int slots = parsed.NumTiles();
    std::vector<Bytes> diff(slots + 1, 0);
    auto add = [&](TilePos from, TilePos to, Bytes bytes) {
        from = std::clamp<TilePos>(from, 0, slots);
        to = std::clamp<TilePos>(to, 0, slots);
        if (from >= to) return;
        diff[from] += bytes;
        diff[to] -= bytes;
    };
    for (const OnchipInterval &iv : parsed.onchip)
        add(iv.from, iv.to, iv.bytes);
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.IsLoad()) {
            add(dlsa.free_point[j], t.fixed_end, t.bytes);
        } else {
            add(t.first_use, dlsa.free_point[j], t.bytes);
        }
    }
    os << "slot,buffer_bytes\n";
    Bytes run = 0;
    for (int s = 0; s < slots; ++s) {
        run += diff[s];
        os << s << "," << run << "\n";
    }
}

}  // namespace soma
