/**
 * @file
 * Post-search memory-timing validation: re-time a *finished* schedule
 * under the banked row-buffer DRAM model's trace replay and report the
 * analytical-vs-banked latency gap.
 *
 * This is where the history-dependent DRAM effects live that the
 * in-search MemoryModel seam deliberately excludes (memory_model.h):
 * the scheduled DLSA order gives a concrete DRAM Tensor Order
 * transaction stream, which ReplayTensorStream walks burst by burst
 * with bank row state carried across tensors and read<->write bus
 * turnaround. The replayed per-tensor seconds are then fed back
 * through the evaluator (via an override backend), so the banked
 * latency includes compute/DRAM overlap exactly the way the search's
 * own timeline does — the gap isolates the memory model, not the
 * timeline semantics.
 */
#ifndef SOMA_SIM_MEMORY_VALIDATION_H
#define SOMA_SIM_MEMORY_VALIDATION_H

#include <string>

#include "hw/banked_dram.h"
#include "hw/hardware.h"
#include "notation/parser.h"
#include "workload/graph.h"

namespace soma {

/** Outcome of one ValidateMemoryTiming pass (the numbers behind the
 *  memory.validation_gap_pct gauge and the eval.dram.* counters). */
struct MemoryValidationResult {
    bool ok = false;
    std::string error;

    double analytical_latency = 0.0;  ///< seam = analytical model
    double banked_latency = 0.0;      ///< seam = replayed per-tensor cost
    /** (banked_latency / analytical_latency - 1) * 100. */
    double gap_pct = 0.0;

    BankedReplayStats replay;  ///< transaction-stream counters
};

/**
 * Re-time (@p parsed, @p dlsa) twice — once with the analytical
 * backend, once with per-tensor seconds from the banked model's
 * trace replay of the DLSA-ordered transaction stream — and report
 * the latency gap. Pure function of its arguments (deterministic
 * across runs and thread counts); @p hw's own memory_model pointer is
 * ignored, both sides override it.
 */
MemoryValidationResult ValidateMemoryTiming(const Graph &graph,
                                            const HardwareConfig &hw,
                                            const ParsedSchedule &parsed,
                                            const DlsaEncoding &dlsa,
                                            const BankedDramModel &model =
                                                BankedMemoryModel());

}  // namespace soma

#endif  // SOMA_SIM_MEMORY_VALIDATION_H
