/**
 * @file
 * Incremental evaluation engine for the SA inner loop.
 *
 * The paper's search evaluates millions of candidate schemes; the seed
 * implementation rebuilt every per-candidate data structure (parsed
 * schedule, buffer difference array, DRAM/compute timelines) from
 * scratch for each one. An EvalContext owns all of that scratch state
 * per search thread, so repeated evaluations are allocation-free after
 * warm-up, and it supports *incremental* re-evaluation for DLSA-only
 * mutations: a single free-point or order move only invalidates the
 * suffix of the two-pointer list schedule from the earliest affected
 * slot, so the unchanged prefix of the timeline is reused verbatim.
 *
 * Incremental results are bit-identical to full evaluation: the resumed
 * timeline executes the same recurrences on the same operands, and the
 * integer buffer-occupancy array is patched exactly.
 */
#ifndef SOMA_SIM_EVAL_CONTEXT_H
#define SOMA_SIM_EVAL_CONTEXT_H

#include <memory>
#include <string>
#include <vector>

#include "hw/hardware.h"
#include "notation/parser.h"
#include "sim/report.h"
#include "tiling/tiling_cache.h"

namespace soma {

/**
 * How a candidate DLSA differs from an EvalContext's committed base.
 * Produced by the DLSA mutation operators; consumed by
 * EvalContext::EvaluateDelta.
 */
struct DlsaDelta {
    enum class Kind {
        kNone,       ///< unknown / not a single-move delta: full evaluation
        kOrderMove,  ///< `tensor` moved from `from_rank` to `to_rank`
        kFreePoint,  ///< `tensor`'s free endpoint moved old->new
    };
    Kind kind = Kind::kNone;
    int tensor = -1;
    int from_rank = -1;       ///< kOrderMove: rank of `tensor` in the base
    int to_rank = -1;         ///< kOrderMove: rank of `tensor` in the cand
    TilePos old_point = 0;    ///< kFreePoint: base free endpoint
    TilePos new_point = 0;    ///< kFreePoint: candidate free endpoint
};

/**
 * Buffer occupancy per tile slot via a difference array. Slots are
 * [0, NumTiles()); shared by PeakBufferUsage and the EvalContext.
 */
void ComputeBufferBySlot(const ParsedSchedule &parsed,
                         const std::vector<TilePos> &free_point,
                         std::vector<Bytes> *diff, std::vector<Bytes> *usage);

/**
 * Per-thread evaluation context. Typical SA usage:
 *
 *   ctx.Evaluate(...);          // full evaluation of the initial state
 *   ctx.Commit();               // make it the incremental base
 *   loop:
 *     mutate -> delta
 *     ctx.EvaluateDelta(...);   // suffix-only re-evaluation
 *     if accepted: ctx.Commit();
 *
 * Not thread safe; create one per search chain.
 */
class EvalContext {
  public:
    /**
     * Parse an LFA with reusable scratch (including the group memo of
     * the incremental parse). The returned reference stays owned by the
     * context and is overwritten by the next Parse call. Invalidates
     * the incremental base.
     */
    const ParsedSchedule &Parse(const Graph &graph, const LfaEncoding &lfa,
                                CoreArrayEvaluator &core_eval,
                                const ParseOptions &popts = {});

    /**
     * Share a stage-wide TilingCache: subsequent Parse calls fetch
     * dirty-group tilings through it instead of recomputing them. Pass
     * nullptr to detach. The cache must describe the graph this context
     * parses (one cache per search, like the evaluator memo).
     */
    void set_tiling_cache(std::shared_ptr<TilingCache> cache)
    {
        tiling_cache_ = std::move(cache);
    }
    const std::shared_ptr<TilingCache> &tiling_cache() const
    {
        return tiling_cache_;
    }

    /**
     * Full evaluation (semantics of EvaluateSchedule) into the context's
     * reusable report. The returned reference is overwritten by the next
     * evaluation.
     */
    const EvalReport &Evaluate(const Graph &graph, const HardwareConfig &hw,
                               const ParsedSchedule &parsed,
                               const DlsaEncoding &dlsa, Bytes buffer_budget,
                               Ops total_ops);

    /**
     * Evaluate a candidate that differs from the committed base by
     * @p delta. Resumes the two-pointer timeline from the earliest
     * affected (tile, rank) checkpoint instead of replaying it from
     * slot 0. Falls back to Evaluate when there is no usable base (not
     * committed, different parse/budget, or delta.kind == kNone).
     *
     * Precondition: @p cand is a legal DLSA (the mutation operators only
     * produce legal moves); the data-existence check is skipped here.
     */
    const EvalReport &EvaluateDelta(const Graph &graph,
                                    const HardwareConfig &hw,
                                    const ParsedSchedule &parsed,
                                    const DlsaEncoding &cand,
                                    const DlsaDelta &delta,
                                    Bytes buffer_budget, Ops total_ops);

    /** Promote the last evaluated candidate to the incremental base. */
    void Commit();

    /** Drop the incremental base (e.g. after adopting a foreign state). */
    void InvalidateBase();

    /** Whether EvaluateDelta currently has a usable base. */
    bool HasBase() const { return base_ok_; }

    /** The incremental-parse scratch (read-only): span tracers read the
     *  group-memo telemetry off it (last_dirty_groups /
     *  last_clean_groups / last_remapped_groups) after a Parse call. */
    const ParseScratch &parse_scratch() const { return parse_scratch_; }

  private:
    /** One copy of all per-evaluation result state. Two instances are
     *  kept so a candidate can be evaluated without clobbering the base
     *  it resumes from; Commit swaps them. */
    struct Side {
        EvalReport report;
        std::vector<double> tile_finish;
        std::vector<double> tensor_finish;  ///< -1: unscheduled
        std::vector<int> ci_at_rank;   ///< compute head when rank issued
        std::vector<int> rank_at_tile; ///< DRAM head when tile issued
        std::vector<Bytes> usage;      ///< buffer occupancy per slot
        std::vector<int> order;        ///< DLSA copy (rank -> tensor)
        std::vector<int> rank_of;      ///< inverse of order
        std::vector<TilePos> free_point;
    };

    void ResetReportForEval(const ParsedSchedule &parsed, EvalReport *rep);
    static void ResetAggregates(EvalReport *rep);
    bool RunTimeline(const ParsedSchedule &parsed, const HardwareConfig &hw,
                     Side *side, int ci, int di, double dram_prev_finish);
    void FinalizeAggregates(const ParsedSchedule &parsed,
                            const HardwareConfig &hw, Ops total_ops,
                            Side *side);
    void RebuildStoreBuckets(const ParsedSchedule &parsed, const Side &side);
    void ApplyStoreMove(int tensor, TilePos from, TilePos to);
    void RevertPendingStoreMove();

    ParseScratch parse_scratch_;
    ParsedSchedule parsed_storage_;
    std::shared_ptr<TilingCache> tiling_cache_;
    DlsaCheckScratch check_scratch_;
    std::string why_scratch_;

    std::vector<Bytes> diff_;
    /** Stores indexed by their End slot, kept in sync with the *base*
     *  free points (plus at most one pending candidate move). */
    std::vector<std::vector<int>> stores_by_end_;

    Side sides_[2];
    int cand_ = 0;  ///< side written by the next evaluation
    int base_ = 1;  ///< side holding the committed base

    const ParsedSchedule *base_parsed_ = nullptr;
    Bytes base_budget_ = -1;
    Ops base_ops_ = -1;
    bool base_ok_ = false;
    bool cand_fresh_ = false;  ///< cand side holds an uncommitted result

    bool pending_move_ = false;
    int pending_tensor_ = -1;
    TilePos pending_from_ = 0;
    TilePos pending_to_ = 0;
};

}  // namespace soma

#endif  // SOMA_SIM_EVAL_CONTEXT_H
