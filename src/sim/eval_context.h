/**
 * @file
 * Incremental evaluation engine for the SA inner loop.
 *
 * The paper's search evaluates millions of candidate schemes; the seed
 * implementation rebuilt every per-candidate data structure (parsed
 * schedule, buffer difference array, DRAM/compute timelines) from
 * scratch for each one. An EvalContext owns all of that scratch state
 * per search thread, so repeated evaluations are allocation-free after
 * warm-up, and it supports *incremental* re-evaluation:
 *
 *  - EvaluateDelta: DLSA-only mutations (free-point / order moves)
 *    resume the two-pointer timeline at the earliest affected
 *    (tile, rank) checkpoint, and — windowed mode — *splice* back into
 *    the base timeline as soon as the recomputed window reconverges
 *    with it bit-for-bit, so only the perturbed region is simulated.
 *  - EvaluateLfa: LFA mutations re-parse the scheme; a first-diff scan
 *    of the new parse against the committed base's parse derives the
 *    affected window, the unchanged timeline prefix is copied verbatim,
 *    and the window is re-simulated with the same splice rule.
 *
 * Timeline state is mirrored into SoA arrays (per-tile seconds, CSR
 * operand lists, per-tensor DRAM seconds, cached aggregate sums) so the
 * window re-simulation and the first-diff scans run over contiguous
 * memory; per-candidate transient scratch comes from one MonotonicArena
 * reset at the top of each evaluation.
 *
 * Incremental results are bit-identical to full evaluation: the resumed
 * timeline executes the same recurrences on the same operands, the
 * splice fires only when the recomputed window equals the base
 * trajectory bitwise, and the integer buffer-occupancy array is patched
 * exactly. `set_cross_check(true)` (or SOMA_EVAL_CROSS_CHECK=1) runs
 * the full simulation after every fast path and aborts on any
 * divergence, mirroring the incremental parser's cross-check mode.
 */
#ifndef SOMA_SIM_EVAL_CONTEXT_H
#define SOMA_SIM_EVAL_CONTEXT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "hw/hardware.h"
#include "notation/parser.h"
#include "sim/report.h"
#include "tiling/tiling_cache.h"

namespace soma {

/**
 * How a candidate DLSA differs from an EvalContext's committed base.
 * Produced by the DLSA mutation operators; consumed by
 * EvalContext::EvaluateDelta.
 */
struct DlsaDelta {
    enum class Kind {
        kNone,       ///< unknown / not a single-move delta: full evaluation
        kOrderMove,  ///< `tensor` moved from `from_rank` to `to_rank`
        kFreePoint,  ///< `tensor`'s free endpoint moved old->new
    };
    Kind kind = Kind::kNone;
    int tensor = -1;
    int from_rank = -1;       ///< kOrderMove: rank of `tensor` in the base
    int to_rank = -1;         ///< kOrderMove: rank of `tensor` in the cand
    TilePos old_point = 0;    ///< kFreePoint: base free endpoint
    TilePos new_point = 0;    ///< kFreePoint: candidate free endpoint
};

/**
 * Buffer occupancy per tile slot via a difference array. Slots are
 * [0, NumTiles()); shared by PeakBufferUsage and the EvalContext.
 */
void ComputeBufferBySlot(const ParsedSchedule &parsed,
                         const std::vector<TilePos> &free_point,
                         std::vector<Bytes> *diff, std::vector<Bytes> *usage);

/**
 * Per-thread evaluation context. Typical SA usage:
 *
 *   ctx.Evaluate(...);          // full evaluation of the initial state
 *   ctx.Commit();               // make it the incremental base
 *   loop:
 *     mutate -> delta
 *     ctx.EvaluateDelta(...);   // windowed re-evaluation
 *     if accepted: ctx.Commit();
 *
 * Not thread safe; create one per search chain.
 */
class EvalContext {
  public:
    EvalContext();

    /** Counters for the delta fast paths (cumulative per context). */
    struct DeltaStats {
        std::uint64_t delta_evals = 0;   ///< EvaluateDelta/Lfa fast paths
        std::uint64_t windowed_runs = 0; ///< windowed timeline resumes
        std::uint64_t splices = 0;       ///< windows that reconverged
        std::uint64_t full_fallbacks = 0;///< fast-path calls gone full
        std::uint64_t window_events = 0; ///< events re-simulated in windows
        std::uint64_t cross_check_passes = 0;
        int last_resume_ci = 0;   ///< window start: compute slot
        int last_resume_di = 0;   ///< window start: DRAM rank
        int last_window_events = 0;
    };

    /**
     * Parse an LFA with reusable scratch (including the group memo of
     * the incremental parse). The returned reference stays owned by the
     * context and is overwritten by the next Parse call — except across
     * Commit: the parse backing the committed base is double-buffered
     * and stays valid until the *next* Commit, which is what lets
     * EvaluateLfa diff a candidate parse against the base's.
     */
    const ParsedSchedule &Parse(const Graph &graph, const LfaEncoding &lfa,
                                CoreArrayEvaluator &core_eval,
                                const ParseOptions &popts = {});

    /**
     * Share a stage-wide TilingCache: subsequent Parse calls fetch
     * dirty-group tilings through it instead of recomputing them. Pass
     * nullptr to detach. The cache must describe the graph this context
     * parses (one cache per search, like the evaluator memo).
     */
    void set_tiling_cache(std::shared_ptr<TilingCache> cache)
    {
        tiling_cache_ = std::move(cache);
    }
    const std::shared_ptr<TilingCache> &tiling_cache() const
    {
        return tiling_cache_;
    }

    /**
     * Full evaluation (semantics of EvaluateSchedule) into the context's
     * reusable report. The returned reference is overwritten by the next
     * evaluation. The committed base (if any) is left intact, so a full
     * evaluation of one candidate does not cost later candidates their
     * delta path.
     */
    const EvalReport &Evaluate(const Graph &graph, const HardwareConfig &hw,
                               const ParsedSchedule &parsed,
                               const DlsaEncoding &dlsa, Bytes buffer_budget,
                               Ops total_ops);

    /**
     * Evaluate a candidate that differs from the committed base by
     * @p delta. Resumes the two-pointer timeline from the earliest
     * affected (tile, rank) checkpoint instead of replaying it from
     * slot 0, and (windowed mode) splices back into the base timeline
     * once the window reconverges. Falls back to Evaluate when there is
     * no usable base (not committed, different parse/budget, or
     * delta.kind == kNone).
     *
     * Precondition: @p cand is a legal DLSA (the mutation operators only
     * produce legal moves); the data-existence check is skipped here.
     */
    const EvalReport &EvaluateDelta(const Graph &graph,
                                    const HardwareConfig &hw,
                                    const ParsedSchedule &parsed,
                                    const DlsaEncoding &cand,
                                    const DlsaDelta &delta,
                                    Bytes buffer_budget, Ops total_ops);

    /**
     * Evaluate an LFA-stage candidate: @p parsed must be the result of
     * this context's latest Parse call. When the committed base was
     * also evaluated against a context-owned parse, a first-diff scan
     * of the two parses derives the affected timeline window; the
     * unchanged prefix is copied from the base and only the window (and
     * whatever suffix fails to splice) is re-simulated. Falls back to
     * Evaluate whenever no window can be derived (no base, different
     * tile/tensor counts, different budget). Bit-identical to Evaluate
     * in all cases.
     *
     * Precondition: @p dlsa is a legal DLSA for @p parsed (the LFA
     * stage derives it with MakeDoubleBufferDlsaInto /
     * MakeLazyDlsaInto); the data-existence check is skipped on the
     * fast path exactly as in EvaluateDelta.
     */
    const EvalReport &EvaluateLfa(const Graph &graph,
                                  const HardwareConfig &hw,
                                  const ParsedSchedule &parsed,
                                  const DlsaEncoding &dlsa,
                                  Bytes buffer_budget, Ops total_ops);

    /** Promote the last evaluated candidate to the incremental base. */
    void Commit();

    /** Drop the incremental base (e.g. after adopting a foreign state). */
    void InvalidateBase();

    /** Whether EvaluateDelta currently has a usable base. */
    bool HasBase() const { return base_ok_; }

    /** Windowed re-simulation on/off (default: on, unless
     *  SOMA_TIMELINE_DELTA=0). Off, EvaluateDelta degrades to plain
     *  suffix resumption and EvaluateLfa to full evaluation — the
     *  byte-identity reference behavior. */
    void set_windowed(bool on) { windowed_ = on; }
    bool windowed() const { return windowed_; }

    /** Cross-check mode (default: off, unless SOMA_EVAL_CROSS_CHECK is
     *  set): after every fast-path evaluation, run the full simulation
     *  and abort on any byte divergence. */
    void set_cross_check(bool on) { cross_check_ = on; }
    bool cross_check() const { return cross_check_; }

    const DeltaStats &delta_stats() const { return delta_stats_; }

    /** The incremental-parse scratch (read-only): span tracers read the
     *  group-memo telemetry off it (last_dirty_groups /
     *  last_clean_groups / last_remapped_groups) after a Parse call. */
    const ParseScratch &parse_scratch() const { return parse_scratch_; }

  private:
    /** One copy of all per-evaluation result state. Two instances are
     *  kept so a candidate can be evaluated without clobbering the base
     *  it resumes from; Commit swaps them. (A third backs cross-check
     *  reference runs.) */
    struct Side {
        EvalReport report;
        std::vector<double> tile_finish;
        std::vector<double> tensor_finish;  ///< -1: unscheduled
        std::vector<int> ci_at_rank;   ///< compute head when rank issued
        std::vector<int> rank_at_tile; ///< DRAM head when tile issued
        std::vector<Bytes> usage;      ///< buffer occupancy per slot
        std::vector<int> order;        ///< DLSA copy (rank -> tensor)
        std::vector<int> rank_of;      ///< inverse of order
        std::vector<TilePos> free_point;
    };

    /** SoA mirror of the timeline-relevant parse content: contiguous
     *  arrays the inner loop and the first-diff scans stream over,
     *  plus the aggregate sums FinalizeAggregates would otherwise
     *  recompute per candidate. Rebuilt only when the backing parse
     *  changes (tracked by pointer identity, like the base parse). */
    struct TimelineSoA {
        const ParsedSchedule *built_for = nullptr;
        const HardwareConfig *hw_for = nullptr;
        std::vector<double> tile_seconds;
        std::vector<int> need_off;  ///< CSR offsets, size T+1
        std::vector<int> need_idx;  ///< CSR operand-load indices
        std::vector<Bytes> t_bytes;
        /// Per-tensor channel seconds from the hw's MemoryModel seam
        /// (hw.DramSeconds(bytes) for the analytical/null backend).
        std::vector<double> t_dram_seconds;
        std::vector<unsigned char> t_is_load;
        std::vector<TilePos> t_first_use;
        double sum_seconds = 0.0;    ///< == full-eval compute_busy
        double sum_energy_pj = 0.0;  ///< == full-eval core picojoules
        Bytes sum_dram_bytes = 0;    ///< == parsed.TotalDramBytes()
        /// Model-provided aggregate for EvalReport::dram_busy, filled
        /// alongside t_dram_seconds (constant per (parse, hw)).
        double dram_busy_seconds = 0.0;
        int T() const { return static_cast<int>(tile_seconds.size()); }
        int D() const { return static_cast<int>(t_bytes.size()); }
    };

    /** Windowed-run state: the base trajectory to reconverge with and
     *  the earliest (tile, rank) the splice may fire at. */
    struct SpliceWindow {
        const Side *base = nullptr;
        int min_ci = 0;
        int min_di = 0;
        int dirty = 0;     ///< recomputed events differing from base
        int events = 0;    ///< events re-simulated before splice/end
        bool spliced = false;
    };

    void ResetReportForEval(const ParsedSchedule &parsed, EvalReport *rep);
    static void ResetAggregates(EvalReport *rep);

    /** The soa_[] slot mirroring @p parsed, rebuilt/refreshed on
     *  demand. */
    const TimelineSoA &SoAFor(const ParsedSchedule &parsed,
                              const HardwareConfig &hw);
    static void BuildSoA(const ParsedSchedule &parsed, TimelineSoA *soa);
    static void FillDramSeconds(const HardwareConfig &hw, TimelineSoA *soa);

    template <bool kWindowed>
    bool RunTimelineImpl(const TimelineSoA &soa, Side *side, int ci, int di,
                         double dram_prev_finish, SpliceWindow *w);
    /** Where a failed (deadlocked) timeline run left its heads — the
     *  first unwritten tile slot / DRAM rank, so delta callers can
     *  clear exactly the stale suffix of their prefix-copied report. */
    int run_dead_ci_ = 0;
    int run_dead_di_ = 0;
    bool RunTimeline(const TimelineSoA &soa, Side *side, int ci, int di,
                     double dram_prev_finish);
    bool RunTimelineWindowed(const TimelineSoA &soa, Side *side, int ci,
                             int di, double dram_prev_finish,
                             SpliceWindow *w);
    static void SpliceSuffix(const Side &base, Side *side, int ci, int di);

    /** @p known_latency >= 0 skips the makespan scan (splice proved the
     *  timeline equals the base's, whose latency it is); @p known_avg
     *  >= 0 likewise skips the weighted-usage scan (the buffer profile
     *  is bitwise the base's, e.g. after an order move). */
    void FinalizeAggregates(const TimelineSoA &soa, const HardwareConfig &hw,
                            Ops total_ops, Side *side,
                            double known_latency = -1.0,
                            double known_avg = -1.0);
    void RebuildStoreBuckets(const ParsedSchedule &parsed, const Side &side);
    void ApplyStoreMove(int tensor, TilePos from, TilePos to);
    void RevertPendingStoreMove();

    /** Run the reference full simulation into check_side_ and abort on
     *  any divergence from the fast-path result in sides_[cand_].
     *  Requires the store buckets to describe @p dlsa (true after any
     *  fast path). */
    void CrossCheckAgainstFull(const HardwareConfig &hw,
                               const ParsedSchedule &parsed,
                               const DlsaEncoding &dlsa, Bytes buffer_budget,
                               Ops total_ops, const char *what);

    const ParsedSchedule *OwnCandParse() const
    {
        return &parsed_storage_[ps_cand_];
    }
    const ParsedSchedule *OwnBaseParse() const
    {
        return &parsed_storage_[ps_base_];
    }

    ParseScratch parse_scratch_;
    /** Double-buffered parse storage: Parse writes the cand slot; the
     *  slot backing the committed base is only released by the Commit
     *  that replaces it. */
    ParsedSchedule parsed_storage_[2];
    int ps_cand_ = 0;
    int ps_base_ = 1;
    std::shared_ptr<TilingCache> tiling_cache_;
    DlsaCheckScratch check_scratch_;
    std::string why_scratch_;

    /** SoA mirrors for the two parse slots + one for external parses
     *  (DLSA-stage walks evaluate one caller-owned parse). */
    TimelineSoA soa_[2];
    TimelineSoA soa_ext_;

    MonotonicArena arena_;  ///< per-candidate scratch, reset per eval

    /** Stores indexed by their End slot, kept in sync with either the
     *  base free points (plus at most one pending candidate move) or —
     *  after a full/LFA evaluation — the last candidate's
     *  (buckets_for_base_ says which). */
    std::vector<std::vector<int>> stores_by_end_;

    Side sides_[2];
    Side check_side_;  ///< cross-check reference result
    int cand_ = 0;  ///< side written by the next evaluation
    int base_ = 1;  ///< side holding the committed base

    const ParsedSchedule *base_parsed_ = nullptr;  ///< base's parse
    const ParsedSchedule *cand_parsed_ = nullptr;  ///< last eval's parse
    Bytes base_budget_ = -1;
    Ops base_ops_ = -1;
    Bytes cand_budget_ = -1;
    Ops cand_ops_ = -1;
    bool base_ok_ = false;
    bool cand_fresh_ = false;  ///< cand side holds an uncommitted result
    bool buckets_for_base_ = false;

    bool windowed_ = true;
    bool cross_check_ = false;
    DeltaStats delta_stats_;

    bool pending_move_ = false;
    int pending_tensor_ = -1;
    TilePos pending_from_ = 0;
    TilePos pending_to_ = 0;
};

}  // namespace soma

#endif  // SOMA_SIM_EVAL_CONTEXT_H
