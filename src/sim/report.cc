#include "sim/report.h"

#include <algorithm>
#include <iomanip>

namespace soma {

void
PrintExecutionGraph(std::ostream &os, const Graph &graph,
                    const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
                    const EvalReport &report, int max_rows)
{
    if (!report.valid) {
        os << "<invalid schedule: " << report.why_invalid << ">\n";
        return;
    }

    os << "# Execution graph (" << graph.name() << ", batch "
       << graph.batch() << ")\n";
    os << "# latency " << report.latency * 1e3 << " ms, energy "
       << report.EnergyJ() * 1e3 << " mJ, LGs " << report.num_lgs
       << ", FLGs " << report.num_flgs << ", tiles " << report.num_tiles
       << ", DRAM tensors " << report.num_tensors << "\n";

    // DRAM row: tensors in transfer order.
    os << "\nDRAM row (order | label | bytes | start us | finish us | "
          "Start/End tile)\n";
    int rows = 0;
    for (int r = 0; r < parsed.NumTensors() && rows < max_rows;
         ++r, ++rows) {
        int j = dlsa.order[r];
        const DramTensor &t = parsed.tensors[j];
        os << std::setw(5) << r << "  " << std::setw(20)
           << t.Label(graph) << "  " << std::setw(10) << t.bytes << "  "
           << std::setw(10) << std::fixed << std::setprecision(2)
           << report.tensor_times[j].start * 1e6 << "  " << std::setw(10)
           << report.tensor_times[j].finish * 1e6 << "  "
           << (t.IsLoad() ? "S=" : "E=") << dlsa.free_point[j] << "\n";
    }
    if (parsed.NumTensors() > rows) {
        os << "  ... (" << parsed.NumTensors() - rows << " more)\n";
    }

    // COMPUTE row: tiles with stalls.
    os << "\nCOMPUTE row (pos | layer#round | LG/FLG | start us | finish "
          "us | stall us)\n";
    double prev_finish = 0.0;
    rows = 0;
    for (int i = 0; i < parsed.NumTiles() && rows < max_rows; ++i, ++rows) {
        const TileInfo &tile = parsed.tiles[i];
        double stall = report.tile_times[i].start - prev_finish;
        prev_finish = report.tile_times[i].finish;
        os << std::setw(5) << i << "  " << std::setw(24)
           << (graph.layer(tile.layer).name() + "#" +
               std::to_string(tile.round))
           << "  " << tile.lg << "/" << tile.flg << "  " << std::setw(10)
           << std::fixed << std::setprecision(2)
           << report.tile_times[i].start * 1e6 << "  " << std::setw(10)
           << report.tile_times[i].finish * 1e6 << "  " << std::setw(8)
           << stall * 1e6 << (stall > 1e-9 ? "  <- stall" : "") << "\n";
    }
    if (parsed.NumTiles() > rows) {
        os << "  ... (" << parsed.NumTiles() - rows << " more)\n";
    }

    os << "\nBUFFER peak " << report.peak_buffer << " bytes, avg "
       << static_cast<Bytes>(report.avg_buffer) << " bytes\n";
}

}  // namespace soma
