#include "sim/eval_context.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/prof.h"

namespace soma {

void
ComputeBufferBySlot(const ParsedSchedule &parsed,
                    const std::vector<TilePos> &free_point,
                    std::vector<Bytes> *diff, std::vector<Bytes> *usage)
{
    const int slots = parsed.NumTiles();
    diff->assign(slots + 1, 0);
    auto add = [&](TilePos from, TilePos to, Bytes bytes) {
        from = std::clamp<TilePos>(from, 0, slots);
        to = std::clamp<TilePos>(to, 0, slots);
        if (from >= to) return;
        (*diff)[from] += bytes;
        (*diff)[to] -= bytes;
    };
    for (const OnchipInterval &iv : parsed.onchip)
        add(iv.from, iv.to, iv.bytes);
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.IsLoad()) {
            add(free_point[j], t.fixed_end, t.bytes);
        } else {
            add(t.first_use, free_point[j], t.bytes);
        }
    }
    usage->assign(slots, 0);
    Bytes run = 0;
    for (int s = 0; s < slots; ++s) {
        run += (*diff)[s];
        (*usage)[s] = run;
    }
}

const ParsedSchedule &
EvalContext::Parse(const Graph &graph, const LfaEncoding &lfa,
                   CoreArrayEvaluator &core_eval, const ParseOptions &popts)
{
    InvalidateBase();
    ParseLfaInto(graph, lfa, core_eval, popts, &parse_scratch_,
                 &parsed_storage_, tiling_cache_.get());
    return parsed_storage_;
}

void
EvalContext::ResetAggregates(EvalReport *rep)
{
    rep->latency = std::numeric_limits<double>::infinity();
    rep->core_energy_j = 0.0;
    rep->dram_energy_j = 0.0;
    rep->compute_busy = 0.0;
    rep->dram_busy = 0.0;
    rep->compute_util = 0.0;
    rep->dram_util = 0.0;
    rep->theory_max_util = 0.0;
    rep->avg_buffer = 0.0;
    rep->dram_bytes = 0;
}

void
EvalContext::ResetReportForEval(const ParsedSchedule &parsed, EvalReport *rep)
{
    rep->valid = false;
    rep->why_invalid.clear();
    ResetAggregates(rep);
    rep->peak_buffer = 0;
    rep->num_tiles = parsed.NumTiles();
    rep->num_tensors = parsed.NumTensors();
    rep->num_flgs = parsed.num_flgs;
    rep->num_lgs = parsed.num_lgs;
    rep->tile_times.clear();
    rep->tensor_times.clear();
}

void
EvalContext::RebuildStoreBuckets(const ParsedSchedule &parsed,
                                 const Side &side)
{
    const int T = parsed.NumTiles();
    stores_by_end_.resize(T + 1);
    for (auto &bucket : stores_by_end_) bucket.clear();
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        if (!parsed.tensors[j].IsLoad())
            stores_by_end_[side.free_point[j]].push_back(j);
    }
    pending_move_ = false;
}

void
EvalContext::ApplyStoreMove(int tensor, TilePos from, TilePos to)
{
    std::vector<int> &src = stores_by_end_[from];
    auto it = std::find(src.begin(), src.end(), tensor);
    assert(it != src.end());
    src.erase(it);
    stores_by_end_[to].push_back(tensor);
    pending_move_ = true;
    pending_tensor_ = tensor;
    pending_from_ = from;
    pending_to_ = to;
}

void
EvalContext::RevertPendingStoreMove()
{
    if (!pending_move_) return;
    std::vector<int> &dst = stores_by_end_[pending_to_];
    auto it = std::find(dst.begin(), dst.end(), pending_tensor_);
    assert(it != dst.end());
    dst.erase(it);
    stores_by_end_[pending_from_].push_back(pending_tensor_);
    pending_move_ = false;
}

bool
EvalContext::RunTimeline(const ParsedSchedule &parsed,
                         const HardwareConfig &hw, Side *side, int ci,
                         int di, double dram_prev_finish)
{
    SOMA_PROF_SCOPE("eval.timeline");
    const int T = parsed.NumTiles();
    const int D = parsed.NumTensors();
    EvalReport &rep = side->report;

    while (ci < T || di < D) {
        bool progress = false;

        // DRAM head: a load waits for tiles before its Start; a store
        // waits for its producing tile.
        while (di < D) {
            int j = side->order[di];
            const DramTensor &t = parsed.tensors[j];
            double ready;
            if (t.IsLoad()) {
                TilePos s = side->free_point[j];
                if (s > ci) break;  // tiles before Start not yet scheduled
                ready = (s == 0) ? 0.0 : side->tile_finish[s - 1];
            } else {
                if (t.first_use >= ci) break;  // producer not scheduled
                ready = side->tile_finish[t.first_use];
            }
            double start = std::max(dram_prev_finish, ready);
            double finish = start + hw.DramSeconds(t.bytes);
            rep.tensor_times[j] = EventTiming{start, finish};
            side->tensor_finish[j] = finish;
            side->ci_at_rank[di] = ci;
            dram_prev_finish = finish;
            ++di;
            progress = true;
        }

        // Compute head: waits for the previous tile, its operand loads,
        // and all stores whose End equals this tile.
        while (ci < T) {
            const TileInfo &tile = parsed.tiles[ci];
            double start = (ci == 0) ? 0.0 : side->tile_finish[ci - 1];
            bool blocked = false;
            for (int j : tile.need_loads) {
                if (side->tensor_finish[j] < 0.0) { blocked = true; break; }
                start = std::max(start, side->tensor_finish[j]);
            }
            if (!blocked) {
                for (int j : stores_by_end_[ci]) {
                    if (side->tensor_finish[j] < 0.0) {
                        blocked = true;
                        break;
                    }
                    start = std::max(start, side->tensor_finish[j]);
                }
            }
            if (blocked) break;
            double finish = start + tile.cost.seconds;
            rep.tile_times[ci] = EventTiming{start, finish};
            side->tile_finish[ci] = finish;
            side->rank_at_tile[ci] = di;
            ++ci;
            progress = true;
        }

        if (!progress) return false;
    }
    return true;
}

void
EvalContext::FinalizeAggregates(const ParsedSchedule &parsed,
                                const HardwareConfig &hw, Ops total_ops,
                                Side *side)
{
    EvalReport &rep = side->report;
    const int T = parsed.NumTiles();

    double makespan = 0.0;
    for (double f : side->tile_finish) makespan = std::max(makespan, f);
    for (double f : side->tensor_finish) makespan = std::max(makespan, f);
    rep.latency = makespan;

    double core_pj = 0.0;
    double compute_busy = 0.0;
    for (const TileInfo &t : parsed.tiles) {
        core_pj += t.cost.energy_pj;
        compute_busy += t.cost.seconds;
    }
    rep.compute_busy = compute_busy;

    Bytes dram_bytes = parsed.TotalDramBytes();
    rep.dram_bytes = dram_bytes;
    rep.dram_busy = hw.DramSeconds(dram_bytes);
    rep.core_energy_j = core_pj * 1e-12;
    rep.dram_energy_j = static_cast<double>(dram_bytes) *
                        hw.energy.dram_pj_per_byte * 1e-12;

    double peak_ops = hw.PeakOpsPerSecond();
    rep.compute_util = static_cast<double>(total_ops) /
                       (peak_ops * rep.latency);
    rep.dram_util = rep.dram_busy / rep.latency;
    double bound = std::max(rep.compute_busy, rep.dram_busy);
    rep.theory_max_util =
        bound > 0.0 ? static_cast<double>(total_ops) / (peak_ops * bound)
                    : 0.0;

    // Compute-time-weighted average buffer usage (Fig. 6 definition).
    double weighted = 0.0;
    for (int s = 0; s < T; ++s)
        weighted += static_cast<double>(side->usage[s]) *
                    parsed.tiles[s].cost.seconds;
    rep.avg_buffer = compute_busy > 0.0 ? weighted / compute_busy : 0.0;
}

const EvalReport &
EvalContext::Evaluate(const Graph &graph, const HardwareConfig &hw,
                      const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
                      Bytes buffer_budget, Ops total_ops)
{
    SOMA_PROF_SCOPE("eval.full");
    (void)graph;
    // A full evaluation rebuilds the store buckets for the candidate, so
    // the base's buckets are gone: the base is unusable from here on.
    pending_move_ = false;
    base_ok_ = false;

    Side &side = sides_[cand_];
    EvalReport &rep = side.report;
    ResetReportForEval(parsed, &rep);
    cand_fresh_ = false;

    if (!parsed.valid) {
        rep.why_invalid = parsed.why_invalid;
        return rep;
    }
    if (!DlsaValid(parsed, dlsa, &why_scratch_, &check_scratch_)) {
        rep.why_invalid = "dlsa: " + why_scratch_;
        return rep;
    }

    side.order = dlsa.order;
    side.free_point = dlsa.free_point;
    const int T = parsed.NumTiles();
    const int D = parsed.NumTensors();
    side.rank_of.assign(D, 0);
    for (int r = 0; r < D; ++r) side.rank_of[side.order[r]] = r;

    // --- Buffer feasibility (slot-based, Fig. 4 BUFFER row) ---
    ComputeBufferBySlot(parsed, side.free_point, &diff_, &side.usage);
    Bytes peak = 0;
    for (Bytes b : side.usage) peak = std::max(peak, b);
    rep.peak_buffer = peak;
    if (peak > buffer_budget) {
        rep.why_invalid = "buffer overflow";
        return rep;
    }

    RebuildStoreBuckets(parsed, side);

    // --- Two serial resources, two-pointer list scheduling ---
    side.tile_finish.assign(T, 0.0);
    side.tensor_finish.assign(D, -1.0);
    side.ci_at_rank.assign(D, 0);
    side.rank_at_tile.assign(T, 0);
    rep.tile_times.assign(T, EventTiming{});
    rep.tensor_times.assign(D, EventTiming{});

    cand_fresh_ = true;
    base_parsed_ = &parsed;
    base_budget_ = buffer_budget;
    base_ops_ = total_ops;

    if (!RunTimeline(parsed, hw, &side, 0, 0, 0.0)) {
        rep.why_invalid = "schedule deadlock (DLSA order)";
        return rep;
    }

    FinalizeAggregates(parsed, hw, total_ops, &side);
    rep.valid = true;
    return rep;
}

const EvalReport &
EvalContext::EvaluateDelta(const Graph &graph, const HardwareConfig &hw,
                           const ParsedSchedule &parsed,
                           const DlsaEncoding &cand, const DlsaDelta &delta,
                           Bytes buffer_budget, Ops total_ops)
{
    SOMA_PROF_SCOPE("eval.delta");
    RevertPendingStoreMove();
    if (!base_ok_ || base_parsed_ != &parsed ||
        base_budget_ != buffer_budget || base_ops_ != total_ops ||
        delta.kind == DlsaDelta::Kind::kNone) {
        return Evaluate(graph, hw, parsed, cand, buffer_budget, total_ops);
    }

    const Side &base = sides_[base_];
    Side &side = sides_[cand_];
    EvalReport &rep = side.report;
    const int T = parsed.NumTiles();
    const int D = parsed.NumTensors();

    // Copy the base result; the suffix is overwritten below.
    rep = base.report;
    rep.valid = false;
    rep.why_invalid.clear();
    side.tile_finish = base.tile_finish;
    side.tensor_finish = base.tensor_finish;
    side.ci_at_rank = base.ci_at_rank;
    side.rank_at_tile = base.rank_at_tile;
    side.usage = base.usage;
    side.rank_of = base.rank_of;
    side.order = cand.order;
    side.free_point = cand.free_point;
    cand_fresh_ = true;

    int ci0 = 0;
    int di0 = 0;
    bool timing_unchanged = false;

    if (delta.kind == DlsaDelta::Kind::kFreePoint) {
        assert(delta.tensor >= 0 && delta.tensor < D);
        const DramTensor &t = parsed.tensors[delta.tensor];

        // Patch the occupancy array: a load lives in [Start, fixed_end),
        // a store in [first_use, End); only the slots between the old
        // and new endpoint change, by +/- the tensor's bytes.
        const TilePos lo =
            std::clamp<TilePos>(std::min(delta.old_point, delta.new_point),
                                0, T);
        const TilePos hi =
            std::clamp<TilePos>(std::max(delta.old_point, delta.new_point),
                                0, T);
        const bool grew = t.IsLoad() ? delta.new_point < delta.old_point
                                     : delta.new_point > delta.old_point;
        const Bytes signed_bytes = grew ? t.bytes : -t.bytes;
        for (TilePos s = lo; s < hi; ++s) side.usage[s] += signed_bytes;

        Bytes peak = 0;
        for (Bytes b : side.usage) peak = std::max(peak, b);
        rep.peak_buffer = peak;
        if (peak > buffer_budget) {
            // Mirror the full evaluator's early buffer-overflow report.
            ResetAggregates(&rep);
            rep.tile_times.clear();
            rep.tensor_times.clear();
            rep.why_invalid = "buffer overflow";
            return rep;
        }

        if (t.IsLoad()) {
            // Only the load's own readiness changed: resume where the
            // base timeline issued it.
            di0 = base.rank_of[delta.tensor];
            ci0 = base.ci_at_rank[di0];
        } else {
            // The store now gates a different tile slot: resume at the
            // earlier of the two affected slots. End slots >= NumTiles
            // never gate a tile, so timing is unchanged there.
            ApplyStoreMove(delta.tensor, delta.old_point, delta.new_point);
            TilePos tstar = std::min(delta.old_point, delta.new_point);
            if (tstar >= T) {
                timing_unchanged = true;
            } else {
                ci0 = tstar;
                di0 = base.rank_at_tile[tstar];
            }
        }
    } else {  // kOrderMove
        assert(delta.from_rank >= 0 && delta.from_rank < D);
        assert(delta.to_rank >= 0 && delta.to_rank < D);
        const int rmin = std::min(delta.from_rank, delta.to_rank);
        const int rmax = std::max(delta.from_rank, delta.to_rank);
        for (int r = rmin; r <= rmax; ++r) side.rank_of[side.order[r]] = r;
        di0 = rmin;
        ci0 = base.ci_at_rank[di0];
    }

    if (!timing_unchanged) {
        // Invalidate the suffix: ranks >= di0 and tiles >= ci0 are
        // recomputed by the resumed timeline.
        for (int r = di0; r < D; ++r) {
            int j = side.order[r];
            side.tensor_finish[j] = -1.0;
            rep.tensor_times[j] = EventTiming{};
        }
        for (int t2 = ci0; t2 < T; ++t2) {
            side.tile_finish[t2] = 0.0;
            rep.tile_times[t2] = EventTiming{};
        }
        double dram_prev =
            di0 > 0 ? side.tensor_finish[side.order[di0 - 1]] : 0.0;
        if (!RunTimeline(parsed, hw, &side, ci0, di0, dram_prev)) {
            ResetAggregates(&rep);
            rep.why_invalid = "schedule deadlock (DLSA order)";
            return rep;
        }
    }

    FinalizeAggregates(parsed, hw, total_ops, &side);
    rep.valid = true;
    return rep;
}

void
EvalContext::Commit()
{
    if (!cand_fresh_) return;
    std::swap(cand_, base_);
    cand_fresh_ = false;
    pending_move_ = false;  // the buckets now describe the new base
    base_ok_ = sides_[base_].report.valid;
}

void
EvalContext::InvalidateBase()
{
    base_ok_ = false;
    cand_fresh_ = false;
    pending_move_ = false;
    base_parsed_ = nullptr;
}

}  // namespace soma
