#include "sim/eval_context.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

#include "common/logging.h"
#include "hw/memory_model.h"
#include "obs/prof.h"

namespace soma {

void
ComputeBufferBySlot(const ParsedSchedule &parsed,
                    const std::vector<TilePos> &free_point,
                    std::vector<Bytes> *diff, std::vector<Bytes> *usage)
{
    const int slots = parsed.NumTiles();
    diff->assign(slots + 1, 0);
    auto add = [&](TilePos from, TilePos to, Bytes bytes) {
        from = std::clamp<TilePos>(from, 0, slots);
        to = std::clamp<TilePos>(to, 0, slots);
        if (from >= to) return;
        (*diff)[from] += bytes;
        (*diff)[to] -= bytes;
    };
    for (const OnchipInterval &iv : parsed.onchip)
        add(iv.from, iv.to, iv.bytes);
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.IsLoad()) {
            add(free_point[j], t.fixed_end, t.bytes);
        } else {
            add(t.first_use, free_point[j], t.bytes);
        }
    }
    usage->assign(slots, 0);
    Bytes run = 0;
    for (int s = 0; s < slots; ++s) {
        run += (*diff)[s];
        (*usage)[s] = run;
    }
}

namespace {

/** ComputeBufferBySlot with the difference array drawn from the
 *  per-candidate arena: same arithmetic, no heap traffic. */
void
ComputeUsageWithArena(const ParsedSchedule &parsed,
                      const std::vector<TilePos> &free_point,
                      MonotonicArena *arena, std::vector<Bytes> *usage)
{
    const int slots = parsed.NumTiles();
    Bytes *diff = arena->AllocArray<Bytes>(slots + 1);
    std::fill_n(diff, slots + 1, Bytes{0});
    auto add = [&](TilePos from, TilePos to, Bytes bytes) {
        from = std::clamp<TilePos>(from, 0, slots);
        to = std::clamp<TilePos>(to, 0, slots);
        if (from >= to) return;
        diff[from] += bytes;
        diff[to] -= bytes;
    };
    for (const OnchipInterval &iv : parsed.onchip)
        add(iv.from, iv.to, iv.bytes);
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.IsLoad()) {
            add(free_point[j], t.fixed_end, t.bytes);
        } else {
            add(t.first_use, free_point[j], t.bytes);
        }
    }
    usage->assign(slots, 0);
    Bytes run = 0;
    for (int s = 0; s < slots; ++s) {
        run += diff[s];
        (*usage)[s] = run;
    }
}

bool
TimesEqual(const std::vector<EventTiming> &a,
           const std::vector<EventTiming> &b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].start != b[i].start || a[i].finish != b[i].finish)
            return false;
    }
    return true;
}

bool
ReportsEqual(const EvalReport &a, const EvalReport &b)
{
    return a.valid == b.valid && a.why_invalid == b.why_invalid &&
           a.latency == b.latency && a.core_energy_j == b.core_energy_j &&
           a.dram_energy_j == b.dram_energy_j &&
           a.compute_busy == b.compute_busy && a.dram_busy == b.dram_busy &&
           a.compute_util == b.compute_util && a.dram_util == b.dram_util &&
           a.theory_max_util == b.theory_max_util &&
           a.peak_buffer == b.peak_buffer && a.avg_buffer == b.avg_buffer &&
           a.dram_bytes == b.dram_bytes && a.num_tiles == b.num_tiles &&
           a.num_tensors == b.num_tensors && a.num_flgs == b.num_flgs &&
           a.num_lgs == b.num_lgs && TimesEqual(a.tile_times, b.tile_times) &&
           TimesEqual(a.tensor_times, b.tensor_times);
}

}  // namespace

EvalContext::EvalContext()
{
    const char *wd = std::getenv("SOMA_TIMELINE_DELTA");
    if (wd && wd[0] == '0' && wd[1] == '\0') windowed_ = false;
    const char *cc = std::getenv("SOMA_EVAL_CROSS_CHECK");
    if (cc && !(cc[0] == '0' && cc[1] == '\0')) cross_check_ = true;
}

const ParsedSchedule &
EvalContext::Parse(const Graph &graph, const LfaEncoding &lfa,
                   CoreArrayEvaluator &core_eval, const ParseOptions &popts)
{
    // The candidate slot is overwritten: any uncommitted evaluation
    // against it is orphaned. The committed base lives in the other
    // slot and survives — that is what EvaluateLfa diffs against.
    cand_fresh_ = false;
    cand_parsed_ = nullptr;
    soa_[ps_cand_].built_for = nullptr;
    ParseLfaInto(graph, lfa, core_eval, popts, &parse_scratch_,
                 &parsed_storage_[ps_cand_], tiling_cache_.get());
    return parsed_storage_[ps_cand_];
}

void
EvalContext::ResetAggregates(EvalReport *rep)
{
    rep->latency = std::numeric_limits<double>::infinity();
    rep->core_energy_j = 0.0;
    rep->dram_energy_j = 0.0;
    rep->compute_busy = 0.0;
    rep->dram_busy = 0.0;
    rep->compute_util = 0.0;
    rep->dram_util = 0.0;
    rep->theory_max_util = 0.0;
    rep->avg_buffer = 0.0;
    rep->dram_bytes = 0;
}

void
EvalContext::ResetReportForEval(const ParsedSchedule &parsed, EvalReport *rep)
{
    rep->valid = false;
    rep->why_invalid.clear();
    ResetAggregates(rep);
    rep->peak_buffer = 0;
    rep->num_tiles = parsed.NumTiles();
    rep->num_tensors = parsed.NumTensors();
    rep->num_flgs = parsed.num_flgs;
    rep->num_lgs = parsed.num_lgs;
    rep->tile_times.clear();
    rep->tensor_times.clear();
}

void
EvalContext::RebuildStoreBuckets(const ParsedSchedule &parsed,
                                 const Side &side)
{
    const int T = parsed.NumTiles();
    stores_by_end_.resize(T + 1);
    for (auto &bucket : stores_by_end_) bucket.clear();
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        if (!parsed.tensors[j].IsLoad())
            stores_by_end_[side.free_point[j]].push_back(j);
    }
    pending_move_ = false;
}

void
EvalContext::ApplyStoreMove(int tensor, TilePos from, TilePos to)
{
    std::vector<int> &src = stores_by_end_[from];
    auto it = std::find(src.begin(), src.end(), tensor);
    assert(it != src.end());
    src.erase(it);
    stores_by_end_[to].push_back(tensor);
    pending_move_ = true;
    pending_tensor_ = tensor;
    pending_from_ = from;
    pending_to_ = to;
}

void
EvalContext::RevertPendingStoreMove()
{
    if (!pending_move_) return;
    std::vector<int> &dst = stores_by_end_[pending_to_];
    auto it = std::find(dst.begin(), dst.end(), pending_tensor_);
    assert(it != dst.end());
    dst.erase(it);
    stores_by_end_[pending_from_].push_back(pending_tensor_);
    pending_move_ = false;
}

void
EvalContext::BuildSoA(const ParsedSchedule &parsed, TimelineSoA *soa)
{
    const int T = parsed.NumTiles();
    const int D = parsed.NumTensors();
    soa->tile_seconds.resize(T);
    soa->need_off.resize(T + 1);
    soa->need_idx.clear();
    // Separate accumulators in parse order: bitwise-identical to the
    // sums the full evaluator used to fold per candidate.
    double sum_seconds = 0.0;
    double sum_energy = 0.0;
    for (int t = 0; t < T; ++t) {
        const TileInfo &tile = parsed.tiles[t];
        soa->tile_seconds[t] = tile.cost.seconds;
        sum_energy += tile.cost.energy_pj;
        sum_seconds += tile.cost.seconds;
        soa->need_off[t] = static_cast<int>(soa->need_idx.size());
        soa->need_idx.insert(soa->need_idx.end(), tile.need_loads.begin(),
                             tile.need_loads.end());
    }
    soa->need_off[T] = static_cast<int>(soa->need_idx.size());
    soa->t_bytes.resize(D);
    soa->t_is_load.resize(D);
    soa->t_first_use.resize(D);
    Bytes sum_bytes = 0;
    for (int j = 0; j < D; ++j) {
        const DramTensor &t = parsed.tensors[j];
        soa->t_bytes[j] = t.bytes;
        sum_bytes += t.bytes;
        soa->t_is_load[j] = t.IsLoad() ? 1 : 0;
        soa->t_first_use[j] = t.first_use;
    }
    soa->sum_seconds = sum_seconds;
    soa->sum_energy_pj = sum_energy;
    soa->sum_dram_bytes = sum_bytes;
    soa->built_for = &parsed;
    soa->hw_for = nullptr;
}

void
EvalContext::FillDramSeconds(const HardwareConfig &hw, TimelineSoA *soa)
{
    const int D = soa->D();
    if (hw.memory_model == nullptr) {
        // Default (analytical) path kept inline so a null seam is
        // trivially the legacy math: DramSeconds is a pure function of
        // the byte count, so hoisting it out of the event loop cannot
        // change a single result bit.
        soa->t_dram_seconds.resize(D);
        for (int j = 0; j < D; ++j)
            soa->t_dram_seconds[j] = hw.DramSeconds(soa->t_bytes[j]);
        soa->dram_busy_seconds = hw.DramSeconds(soa->sum_dram_bytes);
    } else {
        // Seam path. The model sees the tensor-index-ordered transfer
        // list; its contract (memory_model.h) makes the fill a pure
        // function of (parse, hw), which is all the delta/splice logic
        // relies on — the hot loop only ever reads this array.
        DramTransferList transfers;
        transfers.bytes = soa->t_bytes.data();
        transfers.is_load = soa->t_is_load.data();
        transfers.count = D;
        hw.memory_model->FillTransferSeconds(hw, transfers,
                                             &soa->t_dram_seconds);
        soa->dram_busy_seconds = hw.memory_model->ChannelBusySeconds(
            hw, soa->sum_dram_bytes, soa->t_dram_seconds);
    }
    soa->hw_for = &hw;
}

const EvalContext::TimelineSoA &
EvalContext::SoAFor(const ParsedSchedule &parsed, const HardwareConfig &hw)
{
    TimelineSoA *soa;
    if (&parsed == &parsed_storage_[0]) {
        soa = &soa_[0];
    } else if (&parsed == &parsed_storage_[1]) {
        soa = &soa_[1];
    } else {
        soa = &soa_ext_;
    }
    if (soa->built_for != &parsed) BuildSoA(parsed, soa);
    if (soa->hw_for != &hw) FillDramSeconds(hw, soa);
    return *soa;
}

void
EvalContext::SpliceSuffix(const Side &base, Side *side, int ci, int di)
{
    const int D = static_cast<int>(base.ci_at_rank.size());
    std::copy(base.tile_finish.begin() + ci, base.tile_finish.end(),
              side->tile_finish.begin() + ci);
    std::copy(base.rank_at_tile.begin() + ci, base.rank_at_tile.end(),
              side->rank_at_tile.begin() + ci);
    std::copy(base.report.tile_times.begin() + ci,
              base.report.tile_times.end(),
              side->report.tile_times.begin() + ci);
    std::copy(base.ci_at_rank.begin() + di, base.ci_at_rank.end(),
              side->ci_at_rank.begin() + di);
    for (int r = di; r < D; ++r) {
        const int j = base.order[r];  // == side->order[r] beyond min_di
        side->tensor_finish[j] = base.tensor_finish[j];
        side->report.tensor_times[j] = base.report.tensor_times[j];
    }
}

template <bool kWindowed>
bool
EvalContext::RunTimelineImpl(const TimelineSoA &soa, Side *side, int ci,
                             int di, double dram_prev_finish, SpliceWindow *w)
{
    const int T = soa.T();
    const int D = soa.D();
    EvalReport &rep = side->report;
    const double *tile_seconds = soa.tile_seconds.data();
    const double *t_dram = soa.t_dram_seconds.data();
    const int *need_off = soa.need_off.data();
    const int *need_idx = soa.need_idx.data();
    const unsigned char *is_load = soa.t_is_load.data();
    const TilePos *first_use = soa.t_first_use.data();

    while (ci < T || di < D) {
        bool progress = false;

        // DRAM head: a load waits for tiles before its Start; a store
        // waits for its producing tile.
        while (di < D) {
            if constexpr (kWindowed) {
                // Reconverged with the base trajectory at an aligned
                // state: every remaining event would recompute the base
                // values, so copy them instead.
                if (w->dirty == 0 && di >= w->min_di && ci >= w->min_ci &&
                    w->base->ci_at_rank[di] == ci) {
                    SpliceSuffix(*w->base, side, ci, di);
                    w->spliced = true;
                    return true;
                }
            }
            const int j = side->order[di];
            double ready;
            if (is_load[j]) {
                TilePos s = side->free_point[j];
                if (s > ci) break;  // tiles before Start not yet scheduled
                ready = (s == 0) ? 0.0 : side->tile_finish[s - 1];
            } else {
                if (first_use[j] >= ci) break;  // producer not scheduled
                ready = side->tile_finish[first_use[j]];
            }
            const double start = std::max(dram_prev_finish, ready);
            const double finish = start + t_dram[j];
            if constexpr (kWindowed) {
                ++w->events;
                if (start != w->base->report.tensor_times[j].start ||
                    finish != w->base->tensor_finish[j] ||
                    ci != w->base->ci_at_rank[di])
                    ++w->dirty;
            }
            rep.tensor_times[j] = EventTiming{start, finish};
            side->tensor_finish[j] = finish;
            side->ci_at_rank[di] = ci;
            dram_prev_finish = finish;
            ++di;
            progress = true;
        }

        // Compute head: waits for the previous tile, its operand loads,
        // and all stores whose End equals this tile.
        while (ci < T) {
            if constexpr (kWindowed) {
                if (w->dirty == 0 && ci >= w->min_ci && di >= w->min_di &&
                    w->base->rank_at_tile[ci] == di) {
                    SpliceSuffix(*w->base, side, ci, di);
                    w->spliced = true;
                    return true;
                }
            }
            double start = (ci == 0) ? 0.0 : side->tile_finish[ci - 1];
            bool blocked = false;
            for (int k = need_off[ci]; k < need_off[ci + 1]; ++k) {
                const int j = need_idx[k];
                if (side->tensor_finish[j] < 0.0) { blocked = true; break; }
                start = std::max(start, side->tensor_finish[j]);
            }
            if (!blocked) {
                for (int j : stores_by_end_[ci]) {
                    if (side->tensor_finish[j] < 0.0) {
                        blocked = true;
                        break;
                    }
                    start = std::max(start, side->tensor_finish[j]);
                }
            }
            if (blocked) break;
            const double finish = start + tile_seconds[ci];
            if constexpr (kWindowed) {
                ++w->events;
                if (start != w->base->report.tile_times[ci].start ||
                    finish != w->base->tile_finish[ci] ||
                    di != w->base->rank_at_tile[ci])
                    ++w->dirty;
            }
            rep.tile_times[ci] = EventTiming{start, finish};
            side->tile_finish[ci] = finish;
            side->rank_at_tile[ci] = di;
            ++ci;
            progress = true;
        }

        if (!progress) {
            run_dead_ci_ = ci;
            run_dead_di_ = di;
            return false;
        }
    }
    return true;
}

bool
EvalContext::RunTimeline(const TimelineSoA &soa, Side *side, int ci, int di,
                         double dram_prev_finish)
{
    SOMA_PROF_SCOPE("eval.timeline");
    return RunTimelineImpl<false>(soa, side, ci, di, dram_prev_finish,
                                  nullptr);
}

bool
EvalContext::RunTimelineWindowed(const TimelineSoA &soa, Side *side, int ci,
                                 int di, double dram_prev_finish,
                                 SpliceWindow *w)
{
    SOMA_PROF_SCOPE("eval.timeline.delta");
    return RunTimelineImpl<true>(soa, side, ci, di, dram_prev_finish, w);
}

void
EvalContext::FinalizeAggregates(const TimelineSoA &soa,
                                const HardwareConfig &hw, Ops total_ops,
                                Side *side, double known_latency,
                                double known_avg)
{
    EvalReport &rep = side->report;
    const int T = soa.T();

    double makespan;
    if (known_latency >= 0.0) {
        // The splice proved the timeline equals the base's bitwise.
        makespan = known_latency;
    } else {
        makespan = 0.0;
        for (double f : side->tile_finish) makespan = std::max(makespan, f);
        for (double f : side->tensor_finish)
            makespan = std::max(makespan, f);
    }
    rep.latency = makespan;

    rep.compute_busy = soa.sum_seconds;
    rep.dram_bytes = soa.sum_dram_bytes;
    rep.dram_busy = soa.dram_busy_seconds;
    rep.core_energy_j = soa.sum_energy_pj * 1e-12;
    rep.dram_energy_j = static_cast<double>(soa.sum_dram_bytes) *
                        hw.energy.dram_pj_per_byte * 1e-12;

    double peak_ops = hw.PeakOpsPerSecond();
    rep.compute_util = static_cast<double>(total_ops) /
                       (peak_ops * rep.latency);
    rep.dram_util = rep.dram_busy / rep.latency;
    double bound = std::max(rep.compute_busy, rep.dram_busy);
    rep.theory_max_util =
        bound > 0.0 ? static_cast<double>(total_ops) / (peak_ops * bound)
                    : 0.0;

    if (known_avg >= 0.0) {
        // The buffer profile is bitwise the base's; its average is too.
        rep.avg_buffer = known_avg;
    } else {
        // Compute-time-weighted average buffer usage (Fig. 6
        // definition).
        double weighted = 0.0;
        for (int s = 0; s < T; ++s)
            weighted += static_cast<double>(side->usage[s]) *
                        soa.tile_seconds[s];
        rep.avg_buffer =
            rep.compute_busy > 0.0 ? weighted / rep.compute_busy : 0.0;
    }
}

const EvalReport &
EvalContext::Evaluate(const Graph &graph, const HardwareConfig &hw,
                      const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
                      Bytes buffer_budget, Ops total_ops)
{
    SOMA_PROF_SCOPE("eval.full");
    (void)graph;
    // Keep the base's buckets coherent before the rebuild below claims
    // them for this candidate: the committed base itself survives full
    // evaluations (EvaluateDelta restores the buckets lazily).
    RevertPendingStoreMove();
    arena_.Reset();

    // External parses have no invalidation hook (Parse only guards the
    // context-owned slots), so re-mirror them on every full pass.
    if (&parsed != OwnCandParse() && &parsed != OwnBaseParse())
        soa_ext_.built_for = nullptr;

    Side &side = sides_[cand_];
    EvalReport &rep = side.report;
    ResetReportForEval(parsed, &rep);
    cand_fresh_ = false;

    if (!parsed.valid) {
        rep.why_invalid = parsed.why_invalid;
        return rep;
    }
    if (!DlsaValid(parsed, dlsa, &why_scratch_, &check_scratch_)) {
        rep.why_invalid = "dlsa: " + why_scratch_;
        return rep;
    }

    side.order = dlsa.order;
    side.free_point = dlsa.free_point;
    const int T = parsed.NumTiles();
    const int D = parsed.NumTensors();
    side.rank_of.assign(D, 0);
    for (int r = 0; r < D; ++r) side.rank_of[side.order[r]] = r;

    // --- Buffer feasibility (slot-based, Fig. 4 BUFFER row) ---
    ComputeUsageWithArena(parsed, side.free_point, &arena_, &side.usage);
    Bytes peak = 0;
    for (Bytes b : side.usage) peak = std::max(peak, b);
    rep.peak_buffer = peak;
    if (peak > buffer_budget) {
        rep.why_invalid = "buffer overflow";
        return rep;
    }

    RebuildStoreBuckets(parsed, side);
    buckets_for_base_ = false;

    const TimelineSoA &soa = SoAFor(parsed, hw);

    // --- Two serial resources, two-pointer list scheduling ---
    side.tile_finish.assign(T, 0.0);
    side.tensor_finish.assign(D, -1.0);
    side.ci_at_rank.assign(D, 0);
    side.rank_at_tile.assign(T, 0);
    rep.tile_times.assign(T, EventTiming{});
    rep.tensor_times.assign(D, EventTiming{});

    cand_fresh_ = true;
    cand_parsed_ = &parsed;
    cand_budget_ = buffer_budget;
    cand_ops_ = total_ops;

    if (!RunTimeline(soa, &side, 0, 0, 0.0)) {
        rep.why_invalid = "schedule deadlock (DLSA order)";
        return rep;
    }

    FinalizeAggregates(soa, hw, total_ops, &side);
    rep.valid = true;
    return rep;
}

const EvalReport &
EvalContext::EvaluateDelta(const Graph &graph, const HardwareConfig &hw,
                           const ParsedSchedule &parsed,
                           const DlsaEncoding &cand, const DlsaDelta &delta,
                           Bytes buffer_budget, Ops total_ops)
{
    SOMA_PROF_SCOPE("eval.delta");
    RevertPendingStoreMove();
    if (!base_ok_ || base_parsed_ != &parsed ||
        base_budget_ != buffer_budget || base_ops_ != total_ops ||
        delta.kind == DlsaDelta::Kind::kNone) {
        ++delta_stats_.full_fallbacks;
        return Evaluate(graph, hw, parsed, cand, buffer_budget, total_ops);
    }

    arena_.Reset();
    ++delta_stats_.delta_evals;
    const Side &base = sides_[base_];
    if (!buckets_for_base_) {
        // A full/LFA evaluation since the last Commit rebuilt the
        // buckets for its own candidate; restore the base's view.
        RebuildStoreBuckets(parsed, base);
        buckets_for_base_ = true;
    }

    Side &side = sides_[cand_];
    EvalReport &rep = side.report;
    const int T = parsed.NumTiles();
    const int D = parsed.NumTensors();

    side.usage = base.usage;
    side.rank_of = base.rank_of;
    side.order = cand.order;
    side.free_point = cand.free_point;
    cand_fresh_ = true;
    cand_parsed_ = &parsed;
    cand_budget_ = buffer_budget;
    cand_ops_ = total_ops;

    rep.valid = false;
    rep.why_invalid.clear();
    rep.num_tiles = T;
    rep.num_tensors = D;
    rep.num_flgs = parsed.num_flgs;
    rep.num_lgs = parsed.num_lgs;

    int ci0 = 0;
    int di0 = 0;
    int min_ci = 0;  // earliest compute slot the splice may fire at
    int min_di = 0;  // earliest DRAM rank the splice may fire at
    // >= 0: the buffer profile is untouched bitwise — peak and
    // weighted average are the base's, no O(T) rescan.
    double known_avg = -1.0;

    if (delta.kind == DlsaDelta::Kind::kFreePoint) {
        assert(delta.tensor >= 0 && delta.tensor < D);
        const DramTensor &t = parsed.tensors[delta.tensor];

        // Patch the occupancy array: a load lives in [Start, fixed_end),
        // a store in [first_use, End); only the slots between the old
        // and new endpoint change, by +/- the tensor's bytes.
        const TilePos lo =
            std::clamp<TilePos>(std::min(delta.old_point, delta.new_point),
                                0, T);
        const TilePos hi =
            std::clamp<TilePos>(std::max(delta.old_point, delta.new_point),
                                0, T);
        const bool grew = t.IsLoad() ? delta.new_point < delta.old_point
                                     : delta.new_point > delta.old_point;
        const Bytes signed_bytes = grew ? t.bytes : -t.bytes;
        for (TilePos s = lo; s < hi; ++s) side.usage[s] += signed_bytes;

        // Incremental peak: only [lo, hi) changed. Growth can only
        // raise the peak; shrinkage leaves it intact unless the base
        // peak could have sat inside the window (then rescan). Integer
        // max, so this is exact.
        Bytes peak;
        if (lo >= hi) {
            peak = base.report.peak_buffer;
            known_avg = base.report.avg_buffer;
        } else {
            Bytes local = 0;
            for (TilePos s = lo; s < hi; ++s)
                local = std::max(local, side.usage[s]);
            if (grew) {
                peak = std::max(base.report.peak_buffer, local);
            } else if (base.report.peak_buffer > local + t.bytes) {
                peak = base.report.peak_buffer;
            } else {
                peak = 0;
                for (Bytes b : side.usage) peak = std::max(peak, b);
            }
        }
        rep.peak_buffer = peak;
        if (peak > buffer_budget) {
            // Mirror the full evaluator's early buffer-overflow report.
            ResetAggregates(&rep);
            rep.tile_times.clear();
            rep.tensor_times.clear();
            rep.why_invalid = "buffer overflow";
            return rep;
        }

        if (t.IsLoad()) {
            // Only the load's own readiness changed: resume where the
            // base timeline issued it. Once the load is issued, no
            // remaining structure differs from the base.
            di0 = base.rank_of[delta.tensor];
            ci0 = base.ci_at_rank[di0];
            min_di = di0 + 1;
        } else {
            // The store now gates a different tile slot: resume at the
            // earlier of the two affected slots. End slots >= NumTiles
            // never gate a tile, so timing is unchanged there.
            ApplyStoreMove(delta.tensor, delta.old_point, delta.new_point);
            TilePos tstar = std::min(delta.old_point, delta.new_point);
            if (tstar >= T) {
                ci0 = T;  // timing untouched: the "prefix" is all of it
                di0 = D;
            } else {
                ci0 = tstar;
                di0 = base.rank_at_tile[tstar];
                const TilePos tmax =
                    std::max(delta.old_point, delta.new_point);
                min_ci = static_cast<int>(tmax < T ? tmax : tstar) + 1;
            }
        }
    } else {  // kOrderMove
        assert(delta.from_rank >= 0 && delta.from_rank < D);
        assert(delta.to_rank >= 0 && delta.to_rank < D);
        const int rmin = std::min(delta.from_rank, delta.to_rank);
        const int rmax = std::max(delta.from_rank, delta.to_rank);
        for (int r = rmin; r <= rmax; ++r) side.rank_of[side.order[r]] = r;
        di0 = rmin;
        ci0 = base.ci_at_rank[di0];
        min_di = rmax + 1;
        // Free points (hence the whole buffer profile) are untouched.
        rep.peak_buffer = base.report.peak_buffer;
        known_avg = base.report.avg_buffer;
    }

    // Prefix copies only: the resumed run rewrites [ci0/di0, splice)
    // and SpliceSuffix (or the run itself) fills the rest, so the old
    // copy-everything-then-invalidate scheme collapses to one pass per
    // element. tensor_finish doubles as the issued flag the gating
    // checks read, so unissued ranks are invalidated in the same pass.
    side.tile_finish.resize(T);
    side.rank_at_tile.resize(T);
    side.tensor_finish.resize(D);
    side.ci_at_rank.resize(D);
    rep.tile_times.resize(T);
    rep.tensor_times.resize(D);
    std::copy_n(base.tile_finish.begin(), ci0, side.tile_finish.begin());
    std::copy_n(base.rank_at_tile.begin(), ci0,
                side.rank_at_tile.begin());
    std::copy_n(base.ci_at_rank.begin(), di0, side.ci_at_rank.begin());
    std::copy_n(base.report.tile_times.begin(), ci0,
                rep.tile_times.begin());
    for (int r = 0; r < di0; ++r) {
        const int j = base.order[r];  // == side.order[r] below di0
        side.tensor_finish[j] = base.tensor_finish[j];
        rep.tensor_times[j] = base.report.tensor_times[j];
    }
    for (int r = di0; r < D; ++r)
        side.tensor_finish[side.order[r]] = -1.0;

    double known_latency = -1.0;
    if (!(ci0 == T && di0 == D)) {
        double dram_prev =
            di0 > 0 ? side.tensor_finish[side.order[di0 - 1]] : 0.0;
        const TimelineSoA &soa = SoAFor(parsed, hw);
        bool ok;
        if (windowed_) {
            SpliceWindow w;
            w.base = &base;
            w.min_ci = min_ci;
            w.min_di = min_di;
            ok = RunTimelineWindowed(soa, &side, ci0, di0, dram_prev, &w);
            ++delta_stats_.windowed_runs;
            delta_stats_.window_events +=
                static_cast<std::uint64_t>(w.events);
            delta_stats_.last_window_events = w.events;
            delta_stats_.last_resume_ci = ci0;
            delta_stats_.last_resume_di = di0;
            if (ok && w.spliced) {
                ++delta_stats_.splices;
                known_latency = base.report.latency;
            }
        } else {
            ok = RunTimeline(soa, &side, ci0, di0, dram_prev);
        }
        if (!ok) {
            // Deadlock. The resumed run reproduced the full trajectory
            // up to the stalled heads; everything beyond them is stale
            // prefix-copy leftovers the canonical report zero-fills.
            for (int t2 = run_dead_ci_; t2 < T; ++t2)
                rep.tile_times[t2] = EventTiming{};
            for (int r = run_dead_di_; r < D; ++r)
                rep.tensor_times[side.order[r]] = EventTiming{};
            ResetAggregates(&rep);
            rep.why_invalid = "schedule deadlock (DLSA order)";
            return rep;
        }
        FinalizeAggregates(soa, hw, total_ops, &side, known_latency,
                           known_avg);
    } else {
        // The copied arrays ARE the candidate's timeline.
        FinalizeAggregates(SoAFor(parsed, hw), hw, total_ops, &side,
                           base.report.latency, known_avg);
    }
    rep.valid = true;
    if (cross_check_) {
        CrossCheckAgainstFull(hw, parsed, cand, buffer_budget, total_ops,
                              "eval.delta");
        ++delta_stats_.cross_check_passes;
    }
    return rep;
}

const EvalReport &
EvalContext::EvaluateLfa(const Graph &graph, const HardwareConfig &hw,
                         const ParsedSchedule &parsed,
                         const DlsaEncoding &dlsa, Bytes buffer_budget,
                         Ops total_ops)
{
    RevertPendingStoreMove();
    if (!windowed_ || !base_ok_ || &parsed != OwnCandParse() ||
        base_parsed_ != OwnBaseParse() || base_budget_ != buffer_budget ||
        base_ops_ != total_ops || !parsed.valid) {
        ++delta_stats_.full_fallbacks;
        return Evaluate(graph, hw, parsed, dlsa, buffer_budget, total_ops);
    }
    SOMA_PROF_SCOPE("eval.delta.lfa");
    arena_.Reset();
    ++delta_stats_.delta_evals;

    const ParsedSchedule &bp = *base_parsed_;
    const Side &base = sides_[base_];
    const TimelineSoA &sc = SoAFor(parsed, hw);
    const TimelineSoA &sb = SoAFor(bp, hw);
    const int T = sc.T(), D = sc.D();
    const int Tb = sb.T(), Db = sb.D();
    const int Tmin = std::min(T, Tb);
    const int Dmin = std::min(D, Db);

    // --- First/last-diff scans over the SoA mirrors ---
    auto tile_eq = [&](int t) {
        if (sc.tile_seconds[t] != sb.tile_seconds[t]) return false;
        const int cb = sc.need_off[t], ce = sc.need_off[t + 1];
        const int bb = sb.need_off[t], be = sb.need_off[t + 1];
        if (ce - cb != be - bb) return false;
        return std::equal(sc.need_idx.begin() + cb, sc.need_idx.begin() + ce,
                          sb.need_idx.begin() + bb);
    };
    auto tensor_eq = [&](int j) {
        return j < Dmin && sc.t_bytes[j] == sb.t_bytes[j] &&
               sc.t_is_load[j] == sb.t_is_load[j] &&
               sc.t_first_use[j] == sb.t_first_use[j] &&
               dlsa.free_point[j] == base.free_point[j];
    };

    int it0 = (T == Tb) ? T : Tmin;  // first differing tile slot
    for (int t = 0; t < Tmin; ++t) {
        if (!tile_eq(t)) { it0 = t; break; }
    }
    int it_hi = -1;  // last differing tile slot (splice bound)
    if (T == Tb && it0 < T) {
        for (int t = T - 1; t >= it0; --t) {
            if (!tile_eq(t)) { it_hi = t; break; }
        }
    }

    // Store gate slots whose membership can differ between the sides.
    int s_lo = std::numeric_limits<int>::max();
    int s_hi = -1;
    {
        const int Dmax = std::max(D, Db);
        for (int j = 0; j < Dmax; ++j) {
            if (tensor_eq(j)) continue;
            if (j < D && !sc.t_is_load[j] && dlsa.free_point[j] < T) {
                s_lo = std::min(s_lo, static_cast<int>(dlsa.free_point[j]));
                s_hi = std::max(s_hi, static_cast<int>(dlsa.free_point[j]));
            }
            if (j < Db && !sb.t_is_load[j] && base.free_point[j] < Tb) {
                s_lo = std::min(s_lo, static_cast<int>(base.free_point[j]));
                s_hi = std::max(s_hi, static_cast<int>(base.free_point[j]));
            }
        }
    }

    // First/last rank where the issue structure differs.
    const int R = std::min(D, Db);
    int r_lo = R;
    for (int r = 0; r < R; ++r) {
        const int jc = dlsa.order[r];
        if (jc != base.order[r] || !tensor_eq(jc)) { r_lo = r; break; }
    }
    int last_bad = -1;
    if (T == Tb && D == Db && r_lo < D) {
        for (int r = D - 1; r >= r_lo; --r) {
            const int jc = dlsa.order[r];
            if (jc != base.order[r] || !tensor_eq(jc)) {
                last_bad = r;
                break;
            }
        }
    }

    Side &side = sides_[cand_];
    EvalReport &rep = side.report;
    ResetReportForEval(parsed, &rep);
    cand_fresh_ = false;

    side.order = dlsa.order;
    side.free_point = dlsa.free_point;
    side.rank_of.assign(D, 0);
    for (int r = 0; r < D; ++r) side.rank_of[side.order[r]] = r;

    // Occupancy is recomputed outright (onchip intervals are not part
    // of the diff scans); identical arithmetic to the full path.
    ComputeUsageWithArena(parsed, side.free_point, &arena_, &side.usage);
    Bytes peak = 0;
    for (Bytes b : side.usage) peak = std::max(peak, b);
    rep.peak_buffer = peak;
    if (peak > buffer_budget) {
        // Exits before the bucket rebuild: the base's buckets (and its
        // delta fast paths) survive a rejected over-budget candidate.
        rep.why_invalid = "buffer overflow";
        return rep;
    }

    RebuildStoreBuckets(parsed, side);
    buckets_for_base_ = false;

    cand_fresh_ = true;
    cand_parsed_ = &parsed;
    cand_budget_ = buffer_budget;
    cand_ops_ = total_ops;

    // --- Resume point: the latest base checkpoint strictly before
    // anything the re-run could observe differently ---
    const bool all_clean = T == Tb && D == Db && it0 == T && s_hi == -1 &&
                           r_lo == D;
    const int it_lim = std::min(it0, s_lo);
    int dstar = 0;
    if (all_clean) {
        dstar = D;
    } else {
        // prev_ci(di) = compute position right after rank di-1 issued;
        // monotone in di, so the first hit from the top is the largest.
        // Strict '<': tile it_lim's gates are consulted by the compute
        // head's blocked checks while it sits at it_lim.
        for (int di = r_lo; di >= 1; --di) {
            if (base.ci_at_rank[di - 1] < it_lim) {
                dstar = di;
                break;
            }
        }
    }
    const int cstar =
        all_clean ? T : (dstar > 0 ? base.ci_at_rank[dstar - 1] : 0);
    delta_stats_.last_resume_ci = cstar;
    delta_stats_.last_resume_di = dstar;

    double known_latency = -1.0;
    if (all_clean) {
        // Timeline-identical to the base: copy it wholesale.
        side.tile_finish = base.tile_finish;
        side.tensor_finish = base.tensor_finish;
        side.ci_at_rank = base.ci_at_rank;
        side.rank_at_tile = base.rank_at_tile;
        rep.tile_times = base.report.tile_times;
        rep.tensor_times = base.report.tensor_times;
        known_latency = base.report.latency;
        ++delta_stats_.splices;
    } else {
        side.tile_finish.assign(T, 0.0);
        side.tensor_finish.assign(D, -1.0);
        side.ci_at_rank.assign(D, 0);
        side.rank_at_tile.assign(T, 0);
        rep.tile_times.assign(T, EventTiming{});
        rep.tensor_times.assign(D, EventTiming{});
        std::copy_n(base.tile_finish.begin(), cstar,
                    side.tile_finish.begin());
        std::copy_n(base.rank_at_tile.begin(), cstar,
                    side.rank_at_tile.begin());
        std::copy_n(base.report.tile_times.begin(), cstar,
                    rep.tile_times.begin());
        std::copy_n(base.ci_at_rank.begin(), dstar,
                    side.ci_at_rank.begin());
        for (int r = 0; r < dstar; ++r) {
            const int j = base.order[r];  // == side.order[r] below r_lo
            side.tensor_finish[j] = base.tensor_finish[j];
            rep.tensor_times[j] = base.report.tensor_times[j];
        }

        const double dram_prev =
            dstar > 0 ? base.tensor_finish[base.order[dstar - 1]] : 0.0;
        bool ok;
        if (T == Tb && D == Db) {
            SpliceWindow w;
            w.base = &base;
            w.min_di = last_bad + 1;
            w.min_ci = std::max(it_hi, s_hi) + 1;
            ok = RunTimelineWindowed(sc, &side, cstar, dstar, dram_prev, &w);
            ++delta_stats_.windowed_runs;
            delta_stats_.window_events +=
                static_cast<std::uint64_t>(w.events);
            delta_stats_.last_window_events = w.events;
            if (ok && w.spliced) {
                ++delta_stats_.splices;
                known_latency = base.report.latency;
            }
        } else {
            // Sizes differ: only the prefix is shared; no splice.
            ok = RunTimeline(sc, &side, cstar, dstar, dram_prev);
        }
        if (!ok) {
            // Deadlock: defer to the full evaluator for the canonical
            // partial-timeline report.
            ++delta_stats_.full_fallbacks;
            return Evaluate(graph, hw, parsed, dlsa, buffer_budget,
                            total_ops);
        }
    }

    FinalizeAggregates(sc, hw, total_ops, &side, known_latency);
    rep.valid = true;
    if (cross_check_) {
        CrossCheckAgainstFull(hw, parsed, dlsa, buffer_budget, total_ops,
                              "eval.delta.lfa");
        ++delta_stats_.cross_check_passes;
    }
    return rep;
}

void
EvalContext::CrossCheckAgainstFull(const HardwareConfig &hw,
                                   const ParsedSchedule &parsed,
                                   const DlsaEncoding &dlsa,
                                   Bytes buffer_budget, Ops total_ops,
                                   const char *what)
{
    const Side &got = sides_[cand_];
    Side &ref = check_side_;
    EvalReport &rrep = ref.report;
    ResetReportForEval(parsed, &rrep);
    const int T = parsed.NumTiles();
    const int D = parsed.NumTensors();
    ref.order = dlsa.order;
    ref.free_point = dlsa.free_point;
    ref.rank_of.assign(D, 0);
    for (int r = 0; r < D; ++r) ref.rank_of[ref.order[r]] = r;
    ComputeUsageWithArena(parsed, ref.free_point, &arena_, &ref.usage);
    Bytes peak = 0;
    for (Bytes b : ref.usage) peak = std::max(peak, b);
    rrep.peak_buffer = peak;
    ref.tile_finish.assign(T, 0.0);
    ref.tensor_finish.assign(D, -1.0);
    ref.ci_at_rank.assign(D, 0);
    ref.rank_at_tile.assign(T, 0);
    rrep.tile_times.assign(T, EventTiming{});
    rrep.tensor_times.assign(D, EventTiming{});
    const TimelineSoA &soa = SoAFor(parsed, hw);
    // The store buckets describe `dlsa` after every fast path (order
    // and load moves leave them untouched, a store move was applied,
    // the LFA path rebuilt them) — the reference run uses them as-is.
    const bool ok =
        peak <= buffer_budget && RunTimeline(soa, &ref, 0, 0, 0.0);
    if (ok) {
        FinalizeAggregates(soa, hw, total_ops, &ref);
        rrep.valid = true;
    }
    // The two-pointer bookkeeping (ci_at_rank / rank_at_tile) records
    // the traversal, which a resumed run may legally interleave
    // differently; every *value* must match bit-for-bit.
    const bool same = ok && ReportsEqual(got.report, rrep) &&
                      got.tile_finish == ref.tile_finish &&
                      got.tensor_finish == ref.tensor_finish &&
                      got.usage == ref.usage;
    if (!same) {
        SOMA_ERROR << "delta evaluation diverged from full simulation ("
                   << what << "): fast-path latency=" << got.report.latency
                   << " full latency=" << rrep.latency
                   << " — windowed delta evaluator bug";
        std::abort();
    }
}

void
EvalContext::Commit()
{
    if (!cand_fresh_) return;
    std::swap(cand_, base_);
    cand_fresh_ = false;
    // The buckets describe the just-promoted base: a delta fast path
    // left them matching its candidate (any pending store move is now
    // permanent) and the full/LFA paths rebuilt them for it.
    pending_move_ = false;
    buckets_for_base_ = true;
    base_parsed_ = cand_parsed_;
    base_budget_ = cand_budget_;
    base_ops_ = cand_ops_;
    base_ok_ = sides_[base_].report.valid;
    // Candidate evaluated against the context-owned parse slot: flip
    // the double buffer so the next Parse leaves the base's parse (and
    // its SoA mirror) intact.
    if (base_parsed_ == OwnCandParse()) std::swap(ps_cand_, ps_base_);
}

void
EvalContext::InvalidateBase()
{
    base_ok_ = false;
    cand_fresh_ = false;
    pending_move_ = false;
    buckets_for_base_ = false;
    base_parsed_ = nullptr;
    cand_parsed_ = nullptr;
}

}  // namespace soma
