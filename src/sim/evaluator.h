/**
 * @file
 * The accurate evaluator (Sec. V-D): given an LFA parse and a DLSA, plays
 * out the two serial resources — the DRAM channel in DRAM Tensor Order
 * and the core array in tile order — under the paper's start conditions,
 * checks the GBUF budget, and aggregates latency/energy/utilization.
 */
#ifndef SOMA_SIM_EVALUATOR_H
#define SOMA_SIM_EVALUATOR_H

#include "hw/hardware.h"
#include "notation/parser.h"
#include "sim/report.h"
#include "workload/graph.h"

namespace soma {

/**
 * Evaluate a complete scheme.
 *
 * @param buffer_budget GBUF bytes available to the scheme; pass
 *        hw.gbuf_bytes for hardware-constrained evaluation or a smaller
 *        stage budget (Buffer Allocator).
 * @param total_ops utilization numerator; pass graph.TotalOps().
 */
EvalReport EvaluateSchedule(const Graph &graph, const HardwareConfig &hw,
                            const ParsedSchedule &parsed,
                            const DlsaEncoding &dlsa, Bytes buffer_budget,
                            Ops total_ops);

/**
 * Peak GBUF occupancy (bytes) over tile slots for a scheme — the quantity
 * the Buffer Allocator budgets. Cheaper than a full evaluation.
 */
Bytes PeakBufferUsage(const ParsedSchedule &parsed, const DlsaEncoding &dlsa);

}  // namespace soma

#endif  // SOMA_SIM_EVALUATOR_H
