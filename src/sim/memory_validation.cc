#include "sim/memory_validation.h"

#include <cmath>
#include <vector>

#include "hw/memory_model.h"
#include "sim/evaluator.h"

namespace soma {

namespace {

/**
 * Override backend that hands the evaluator precomputed per-tensor
 * seconds (tensor-index order) — how the replay's history-dependent
 * costs re-enter the timeline without violating the seam contract:
 * for *this one parse* the array is a constant, so the fill is still
 * pure.
 */
class PrecomputedSecondsModel final : public MemoryModel {
  public:
    explicit PrecomputedSecondsModel(const std::vector<double> *seconds)
        : seconds_(seconds)
    {
    }

    const char *name() const override { return "precomputed"; }
    const char *description() const override
    {
        return "validation-internal: replayed per-tensor seconds";
    }

    void FillTransferSeconds(const HardwareConfig &,
                             const DramTransferList &transfers,
                             std::vector<double> *seconds) const override
    {
        seconds->assign(seconds_->begin(), seconds_->end());
        seconds->resize(transfers.count, 0.0);
    }

    double ChannelBusySeconds(
        const HardwareConfig &, Bytes,
        const std::vector<double> &seconds) const override
    {
        double total = 0.0;
        for (double s : seconds) total += s;
        return total;
    }

  private:
    const std::vector<double> *seconds_;
};

}  // namespace

MemoryValidationResult
ValidateMemoryTiming(const Graph &graph, const HardwareConfig &hw,
                     const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
                     const BankedDramModel &model)
{
    MemoryValidationResult out;

    const int D = parsed.NumTensors();
    if (static_cast<int>(dlsa.order.size()) != D) {
        out.error = "DLSA order size does not match the parse's tensors";
        return out;
    }

    HardwareConfig hw_analytical = hw;
    hw_analytical.memory_model = nullptr;
    const Ops total_ops = graph.TotalOps();
    EvalReport analytical = EvaluateSchedule(
        graph, hw_analytical, parsed, dlsa, hw.gbuf_bytes, total_ops);
    if (!analytical.valid) {
        out.error =
            "analytical re-evaluation invalid: " + analytical.why_invalid;
        return out;
    }
    out.analytical_latency = analytical.latency;

    // Home addresses are a property of the tensor (index order); the
    // transaction stream is the schedule's DRAM Tensor Order (DLSA
    // rank order) over those addresses.
    std::vector<Bytes> bytes_by_tensor(static_cast<size_t>(D));
    for (int j = 0; j < D; ++j) bytes_by_tensor[j] = parsed.tensors[j].bytes;
    std::vector<std::uint64_t> addresses;
    AssignRowAlignedAddresses(bytes_by_tensor.data(), D,
                              model.params().row_bytes, &addresses);

    std::vector<BankedTransfer> stream(static_cast<size_t>(D));
    for (int r = 0; r < D; ++r) {
        const int j = dlsa.order[r];
        stream[r].address = addresses[j];
        stream[r].bytes = parsed.tensors[j].bytes;
        stream[r].is_load = parsed.tensors[j].IsLoad();
    }

    std::vector<double> seconds_by_rank;
    model.ReplayTensorStream(hw, stream, &seconds_by_rank, &out.replay);

    std::vector<double> seconds_by_tensor(static_cast<size_t>(D), 0.0);
    for (int r = 0; r < D; ++r)
        seconds_by_tensor[dlsa.order[r]] = seconds_by_rank[r];

    PrecomputedSecondsModel replay_model(&seconds_by_tensor);
    HardwareConfig hw_banked = hw;
    hw_banked.memory_model = &replay_model;
    EvalReport banked = EvaluateSchedule(graph, hw_banked, parsed, dlsa,
                                         hw.gbuf_bytes, total_ops);
    if (!banked.valid) {
        out.error = "banked re-evaluation invalid: " + banked.why_invalid;
        return out;
    }
    out.banked_latency = banked.latency;

    if (!(out.analytical_latency > 0.0) ||
        !std::isfinite(out.analytical_latency)) {
        out.error = "analytical latency is not positive and finite";
        return out;
    }
    out.gap_pct =
        (out.banked_latency / out.analytical_latency - 1.0) * 100.0;
    out.ok = true;
    return out;
}

}  // namespace soma
