/**
 * @file
 * Evaluation results: latency, energy split, utilizations, buffer trace
 * statistics and per-event timings, plus the execution-graph renderer
 * used for the Fig. 8 case study.
 */
#ifndef SOMA_SIM_REPORT_H
#define SOMA_SIM_REPORT_H

#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "notation/parser.h"

namespace soma {

/** Start/finish of one scheduled event (seconds from batch start). */
struct EventTiming {
    double start = 0.0;
    double finish = 0.0;
};

/**
 * Full evaluation of one scheduling scheme on one hardware config.
 */
struct EvalReport {
    bool valid = false;
    std::string why_invalid;

    double latency = std::numeric_limits<double>::infinity();
    double core_energy_j = 0.0;
    double dram_energy_j = 0.0;
    double EnergyJ() const { return core_energy_j + dram_energy_j; }

    double compute_busy = 0.0;  ///< sum of tile compute seconds
    double dram_busy = 0.0;     ///< sum of DRAM tensor transfer seconds

    double compute_util = 0.0;  ///< Util(latency), paper Fig. 6 definition
    double dram_util = 0.0;     ///< dram_busy / latency
    double theory_max_util = 0.0;  ///< Util(max(compute_busy, dram_busy))

    Bytes peak_buffer = 0;
    double avg_buffer = 0.0;    ///< compute-time-weighted buffer bytes
    Bytes dram_bytes = 0;

    int num_tiles = 0;
    int num_tensors = 0;
    int num_flgs = 0;
    int num_lgs = 0;

    std::vector<EventTiming> tile_times;    ///< indexed like tiles
    std::vector<EventTiming> tensor_times;  ///< indexed like tensors

    /** The paper's optimization objective Energy^n x Delay^m. */
    double Cost(double n = 1.0, double m = 1.0) const;
};

/**
 * Render the DRAM / COMPUTE / BUFFER execution graph (Fig. 8 style) as
 * text: one row per tile with its layer, start/stall, and the DRAM
 * tensors in flight.
 */
void PrintExecutionGraph(std::ostream &os, const Graph &graph,
                         const ParsedSchedule &parsed,
                         const DlsaEncoding &dlsa, const EvalReport &report,
                         int max_rows = 200);

}  // namespace soma

#endif  // SOMA_SIM_REPORT_H
