#include "sim/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace soma {

namespace {

/**
 * Buffer occupancy per tile slot via a difference array. Slots are
 * [0, num_tiles); an interval [from, to) adds bytes to those slots.
 */
std::vector<Bytes>
BufferBySlot(const ParsedSchedule &parsed, const DlsaEncoding &dlsa)
{
    const int slots = parsed.NumTiles();
    std::vector<Bytes> diff(slots + 1, 0);
    auto add = [&](TilePos from, TilePos to, Bytes bytes) {
        from = std::clamp<TilePos>(from, 0, slots);
        to = std::clamp<TilePos>(to, 0, slots);
        if (from >= to) return;
        diff[from] += bytes;
        diff[to] -= bytes;
    };
    for (const OnchipInterval &iv : parsed.onchip)
        add(iv.from, iv.to, iv.bytes);
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.IsLoad()) {
            add(dlsa.free_point[j], t.fixed_end, t.bytes);
        } else {
            add(t.first_use, dlsa.free_point[j], t.bytes);
        }
    }
    std::vector<Bytes> usage(slots, 0);
    Bytes run = 0;
    for (int s = 0; s < slots; ++s) {
        run += diff[s];
        usage[s] = run;
    }
    return usage;
}

}  // namespace

Bytes
PeakBufferUsage(const ParsedSchedule &parsed, const DlsaEncoding &dlsa)
{
    Bytes peak = 0;
    for (Bytes b : BufferBySlot(parsed, dlsa)) peak = std::max(peak, b);
    return peak;
}

double
EvalReport::Cost(double n, double m) const
{
    if (!valid) return std::numeric_limits<double>::infinity();
    double e = EnergyJ();
    double cost = 1.0;
    // Integer-ish exponents dominate in practice; std::pow is fine here
    // but called in the SA inner loop, so special-case n = m = 1.
    if (n == 1.0 && m == 1.0) return e * latency;
    return std::pow(e, n) * std::pow(latency, m) * cost;
}

EvalReport
EvaluateSchedule(const Graph &graph, const HardwareConfig &hw,
                 const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
                 Bytes buffer_budget, Ops total_ops)
{
    EvalReport rep;
    rep.num_tiles = parsed.NumTiles();
    rep.num_tensors = parsed.NumTensors();
    rep.num_flgs = parsed.num_flgs;
    rep.num_lgs = parsed.num_lgs;

    if (!parsed.valid) {
        rep.why_invalid = parsed.why_invalid;
        return rep;
    }
    std::string why;
    if (!DlsaValid(parsed, dlsa, &why)) {
        rep.why_invalid = "dlsa: " + why;
        return rep;
    }

    // --- Buffer feasibility (slot-based, Fig. 4 BUFFER row) ---
    std::vector<Bytes> usage = BufferBySlot(parsed, dlsa);
    Bytes peak = 0;
    for (Bytes b : usage) peak = std::max(peak, b);
    rep.peak_buffer = peak;
    if (peak > buffer_budget) {
        rep.why_invalid = "buffer overflow";
        return rep;
    }

    const int T = parsed.NumTiles();
    const int D = parsed.NumTensors();

    // Stores indexed by their End slot: they must finish before that tile.
    std::vector<std::vector<int>> stores_by_end(T + 1);
    for (int j = 0; j < D; ++j) {
        if (!parsed.tensors[j].IsLoad())
            stores_by_end[dlsa.free_point[j]].push_back(j);
    }

    // --- Two serial resources, two-pointer list scheduling ---
    std::vector<double> tile_finish(T, 0.0);
    std::vector<double> tensor_finish(D, -1.0);  // -1: unscheduled
    rep.tile_times.resize(T);
    rep.tensor_times.resize(D);

    int ci = 0;  // next compute tile
    int di = 0;  // next DRAM tensor (by dlsa.order)
    double dram_prev_finish = 0.0;

    while (ci < T || di < D) {
        bool progress = false;

        // DRAM head: a load waits for tiles before its Start; a store
        // waits for its producing tile.
        while (di < D) {
            int j = dlsa.order[di];
            const DramTensor &t = parsed.tensors[j];
            double ready;
            if (t.IsLoad()) {
                TilePos s = dlsa.free_point[j];
                if (s > ci) break;  // tiles before Start not yet scheduled
                ready = (s == 0) ? 0.0 : tile_finish[s - 1];
            } else {
                if (t.first_use >= ci) break;  // producer not scheduled
                ready = tile_finish[t.first_use];
            }
            double start = std::max(dram_prev_finish, ready);
            double finish = start + hw.DramSeconds(t.bytes);
            rep.tensor_times[j] = EventTiming{start, finish};
            tensor_finish[j] = finish;
            dram_prev_finish = finish;
            ++di;
            progress = true;
        }

        // Compute head: waits for the previous tile, its operand loads,
        // and all stores whose End equals this tile.
        while (ci < T) {
            const TileInfo &tile = parsed.tiles[ci];
            double start = (ci == 0) ? 0.0 : tile_finish[ci - 1];
            bool blocked = false;
            for (int j : tile.need_loads) {
                if (tensor_finish[j] < 0.0) { blocked = true; break; }
                start = std::max(start, tensor_finish[j]);
            }
            if (!blocked) {
                for (int j : stores_by_end[ci]) {
                    if (tensor_finish[j] < 0.0) { blocked = true; break; }
                    start = std::max(start, tensor_finish[j]);
                }
            }
            if (blocked) break;
            double finish = start + tile.cost.seconds;
            rep.tile_times[ci] = EventTiming{start, finish};
            tile_finish[ci] = finish;
            ++ci;
            progress = true;
        }

        if (!progress) {
            rep.why_invalid = "schedule deadlock (DLSA order)";
            return rep;
        }
    }

    // --- Aggregate ---
    double makespan = 0.0;
    for (double f : tile_finish) makespan = std::max(makespan, f);
    for (double f : tensor_finish) makespan = std::max(makespan, f);
    rep.latency = makespan;

    double core_pj = 0.0;
    double compute_busy = 0.0;
    for (const TileInfo &t : parsed.tiles) {
        core_pj += t.cost.energy_pj;
        compute_busy += t.cost.seconds;
    }
    rep.compute_busy = compute_busy;

    Bytes dram_bytes = parsed.TotalDramBytes();
    rep.dram_bytes = dram_bytes;
    rep.dram_busy = hw.DramSeconds(dram_bytes);
    rep.core_energy_j = core_pj * 1e-12;
    rep.dram_energy_j = static_cast<double>(dram_bytes) *
                        hw.energy.dram_pj_per_byte * 1e-12;

    double peak_ops = hw.PeakOpsPerSecond();
    rep.compute_util = static_cast<double>(total_ops) /
                       (peak_ops * rep.latency);
    rep.dram_util = rep.dram_busy / rep.latency;
    double bound = std::max(rep.compute_busy, rep.dram_busy);
    rep.theory_max_util =
        bound > 0.0 ? static_cast<double>(total_ops) / (peak_ops * bound)
                    : 0.0;

    // Compute-time-weighted average buffer usage (Fig. 6 definition).
    double weighted = 0.0;
    for (int s = 0; s < T; ++s)
        weighted += static_cast<double>(usage[s]) *
                    parsed.tiles[s].cost.seconds;
    rep.avg_buffer = compute_busy > 0.0 ? weighted / compute_busy : 0.0;

    rep.valid = true;
    return rep;
}

}  // namespace soma
