#include "sim/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/eval_context.h"

namespace soma {

Bytes
PeakBufferUsage(const ParsedSchedule &parsed, const DlsaEncoding &dlsa)
{
    std::vector<Bytes> diff, usage;
    ComputeBufferBySlot(parsed, dlsa.free_point, &diff, &usage);
    Bytes peak = 0;
    for (Bytes b : usage) peak = std::max(peak, b);
    return peak;
}

double
EvalReport::Cost(double n, double m) const
{
    if (!valid) return std::numeric_limits<double>::infinity();
    double e = EnergyJ();
    // Integer-ish exponents dominate in practice; std::pow is fine here
    // but called in the SA inner loop, so special-case n = m = 1.
    if (n == 1.0 && m == 1.0) return e * latency;
    return std::pow(e, n) * std::pow(latency, m);
}

EvalReport
EvaluateSchedule(const Graph &graph, const HardwareConfig &hw,
                 const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
                 Bytes buffer_budget, Ops total_ops)
{
    // Compatibility wrapper: the implementation lives in EvalContext so
    // the full and incremental paths share one timeline. Search loops
    // should hold a per-thread EvalContext instead of calling this.
    EvalContext ctx;
    return ctx.Evaluate(graph, hw, parsed, dlsa, buffer_budget, total_ops);
}

}  // namespace soma
