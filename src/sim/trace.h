/**
 * @file
 * Plot-ready trace export: dump an evaluated schedule's compute tiles,
 * DRAM tensors and per-slot buffer occupancy as CSV, so the Fig. 8
 * execution graphs (and any custom analysis) can be rendered outside
 * the library.
 */
#ifndef SOMA_SIM_TRACE_H
#define SOMA_SIM_TRACE_H

#include <ostream>

#include "notation/parser.h"
#include "sim/report.h"

namespace soma {

/**
 * CSV with one row per compute tile:
 * pos,layer,round,lg,flg,start_us,finish_us,stall_us,ops,bytes_out.
 */
void WriteComputeTraceCsv(std::ostream &os, const Graph &graph,
                          const ParsedSchedule &parsed,
                          const EvalReport &report);

/**
 * CSV with one row per DRAM tensor in transfer order:
 * order,label,kind,bytes,start_us,finish_us,living_start,living_end.
 */
void WriteDramTraceCsv(std::ostream &os, const Graph &graph,
                       const ParsedSchedule &parsed,
                       const DlsaEncoding &dlsa, const EvalReport &report);

/**
 * CSV with one row per tile slot: slot,buffer_bytes — the BUFFER row of
 * Fig. 4/Fig. 8.
 */
void WriteBufferTraceCsv(std::ostream &os, const ParsedSchedule &parsed,
                         const DlsaEncoding &dlsa);

}  // namespace soma

#endif  // SOMA_SIM_TRACE_H
