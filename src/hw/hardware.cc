#include "hw/hardware.h"

#include <cassert>
#include <cmath>

namespace soma {

HardwareConfig
EdgeAccelerator()
{
    HardwareConfig hw;
    hw.name = "edge";
    hw.cores = 8;
    hw.pe_rows_per_core = 32;
    hw.pe_cols_per_core = 32;
    hw.freq_ghz = 1.0;                       // 16 TOPS INT8
    hw.gbuf_bytes = 8LL * 1024 * 1024;       // 8 MB
    hw.dram_gbps = 16.0;                     // 16 GB/s
    return hw;
}

HardwareConfig
CloudAccelerator()
{
    HardwareConfig hw;
    hw.name = "cloud";
    hw.cores = 16;
    hw.pe_rows_per_core = 64;
    hw.pe_cols_per_core = 64;
    hw.freq_ghz = 1.0;                       // 131 TOPS INT8 (~128)
    hw.vector_lanes_per_core = 128;
    hw.gbuf_bytes = 32LL * 1024 * 1024;      // 32 MB
    hw.dram_gbps = 128.0;                    // 128 GB/s
    hw.l0_weight_bytes = 128 * 1024;
    hw.l0_act_bytes = 64 * 1024;
    hw.l0_out_bytes = 64 * 1024;
    return hw;
}

HardwareConfig
WithBufferAndBandwidth(const HardwareConfig &base, Bytes gbuf_bytes,
                       double dram_gbps)
{
    HardwareConfig hw;
    std::string err;
    if (!ScaledHardware(base, gbuf_bytes, dram_gbps, &hw, &err)) {
        assert(!"WithBufferAndBandwidth: invalid scaling arguments");
        return base;
    }
    return hw;
}

bool
ScaledHardware(const HardwareConfig &base, Bytes gbuf_bytes,
               double dram_gbps, HardwareConfig *out, std::string *err)
{
    if (gbuf_bytes <= 0) {
        if (err)
            *err = "invalid gbuf_bytes " + std::to_string(gbuf_bytes) +
                   ": must be a positive byte count";
        return false;
    }
    if (!std::isfinite(dram_gbps) || dram_gbps <= 0.0) {
        if (err)
            *err = "invalid dram_gbps " + std::to_string(dram_gbps) +
                   ": must be positive and finite";
        return false;
    }
    *out = base;
    out->gbuf_bytes = gbuf_bytes;
    out->dram_gbps = dram_gbps;
    return true;
}

}  // namespace soma
