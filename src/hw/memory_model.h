/**
 * @file
 * The DRAM-timing seam of the timeline evaluator: a MemoryModel turns
 * the per-tensor DRAM transfer list of a parsed schedule into
 * per-transfer seconds (and the channel-busy aggregate), so the
 * evaluator never hard-codes one bandwidth formula.
 *
 * Seam contract (see DESIGN.md "Memory timing backends"):
 *
 *  - FillTransferSeconds is a *pure function* of the transfer list and
 *    the hardware point: no cross-call state, no dependence on the
 *    DLSA order. That is what keeps every incremental-evaluation
 *    invariant intact — the SoA per-tensor seconds stay constants of
 *    the parse, so delta resumption, the splice gate's bitwise
 *    reconvergence test and the cross-check reference all work
 *    unchanged no matter which backend filled the array.
 *  - The analytical backend reproduces HardwareConfig::DramSeconds
 *    bit for bit (same arithmetic, same order), so a null/analytical
 *    seam is byte-identical to the pre-seam evaluator (pinned by
 *    tests/test_memory_model.cc).
 *  - History-dependent effects (row-buffer state across tensors,
 *    read/write turnaround) deliberately do NOT fit this interface;
 *    they live in the banked backend's trace replay
 *    (banked_dram.h, sim/memory_validation.h), which re-times a
 *    *finished* schedule instead of steering the search.
 */
#ifndef SOMA_HW_MEMORY_MODEL_H
#define SOMA_HW_MEMORY_MODEL_H

#include <string>
#include <vector>

#include "common/types.h"
#include "hw/hardware.h"

namespace soma {

/**
 * The per-tensor DRAM transfer list, in tensor-index order (the parse's
 * canonical order, NOT the DLSA issue order). Pointer views into the
 * evaluator's SoA arrays — no copies on the fill path.
 */
struct DramTransferList {
    const Bytes *bytes = nullptr;          ///< transfer sizes
    const unsigned char *is_load = nullptr;///< 1 = DRAM->GBUF read
    int count = 0;
};

/**
 * One pluggable DRAM timing backend. Implementations must be stateless
 * (const methods, no mutable members): one instance is shared by every
 * search thread.
 */
class MemoryModel {
  public:
    virtual ~MemoryModel() = default;

    /** Registry name ("analytical", "banked"). */
    virtual const char *name() const = 0;
    /** One-line description for `somac list memory-models`. */
    virtual const char *description() const = 0;

    /**
     * Seconds the DRAM channel is busy with each transfer, written to
     * @p seconds[0..count). Must be a pure, deterministic function of
     * (@p hw, @p transfers) — see the seam contract above.
     */
    virtual void FillTransferSeconds(const HardwareConfig &hw,
                                     const DramTransferList &transfers,
                                     std::vector<double> *seconds) const = 0;

    /**
     * Aggregate channel-busy seconds reported as EvalReport::dram_busy.
     * @p total_bytes is the summed transfer size; @p seconds the vector
     * FillTransferSeconds produced for the same list.
     */
    virtual double ChannelBusySeconds(
        const HardwareConfig &hw, Bytes total_bytes,
        const std::vector<double> &seconds) const = 0;
};

/**
 * Backend #1: the paper's flat-bandwidth model. TransferSeconds(bytes)
 * is exactly HardwareConfig::DramSeconds(bytes) and ChannelBusySeconds
 * exactly DramSeconds(total_bytes) — bit-identical to the pre-seam
 * inline math.
 */
class AnalyticalDramModel final : public MemoryModel {
  public:
    const char *name() const override { return "analytical"; }
    const char *description() const override;
    void FillTransferSeconds(const HardwareConfig &hw,
                             const DramTransferList &transfers,
                             std::vector<double> *seconds) const override;
    double ChannelBusySeconds(
        const HardwareConfig &hw, Bytes total_bytes,
        const std::vector<double> &seconds) const override;
};

/** The process-wide analytical instance (the default backend a null
 *  HardwareConfig::memory_model resolves to). */
const MemoryModel &AnalyticalMemoryModel();

/**
 * One transfer's channel seconds through @p hw's seam (analytical when
 * hw.memory_model is null). Both builtin backends are element-wise
 * pure, so a single-transfer call equals that transfer's entry in a
 * full-list fill — the property the compiler VM cross-check relies on
 * to stay bitwise-consistent with the evaluator under any backend.
 */
double ModelTransferSeconds(const HardwareConfig &hw, Bytes bytes,
                            bool is_load);

/**
 * Name -> MemoryModel registry, mirroring the api-layer registries:
 * ordered registration, lookup failures list the registered names.
 * Registered models must outlive the registry (builtins are process-
 * wide statics).
 */
class MemoryModelRegistry {
  public:
    MemoryModelRegistry() = default;

    /** Registry pre-populated with "analytical" and "banked". */
    static MemoryModelRegistry WithBuiltins();

    void Register(const MemoryModel *model);

    bool Has(const std::string &name) const;
    std::vector<std::string> Names() const;  ///< registration order

    /** The model, or nullptr with @p err listing the registered
     *  names. */
    const MemoryModel *Find(const std::string &name,
                            std::string *err) const;

    /** All registered models, registration order (for `somac list`). */
    const std::vector<const MemoryModel *> &models() const
    {
        return models_;
    }

  private:
    std::vector<const MemoryModel *> models_;
};

}  // namespace soma

#endif  // SOMA_HW_MEMORY_MODEL_H
