#include "hw/banked_dram.h"

#include <cassert>
#include <cmath>

#include "obs/prof.h"

namespace soma {

namespace {

constexpr double kNsToSeconds = 1e-9;

inline std::int64_t
CeilDiv(Bytes a, Bytes b)
{
    return (a + b - 1) / b;
}

}  // namespace

void
AssignRowAlignedAddresses(const Bytes *bytes, int count, Bytes row_bytes,
                          std::vector<std::uint64_t> *addresses)
{
    addresses->resize(count);
    std::uint64_t cursor = 0;
    for (int j = 0; j < count; ++j) {
        (*addresses)[j] = cursor;
        const std::uint64_t rows =
            bytes[j] > 0 ? (std::uint64_t)CeilDiv(bytes[j], row_bytes) : 0;
        cursor += rows * (std::uint64_t)row_bytes;
    }
}

const char *
BankedDramModel::description() const
{
    return "banked row-buffer channel: burst bus time at dram_gbps plus "
           "activate/precharge per row (validation adds cross-tensor "
           "state and read<->write turnaround)";
}

void
BankedDramModel::FillTransferSeconds(const HardwareConfig &hw,
                                     const DramTransferList &transfers,
                                     std::vector<double> *seconds) const
{
    seconds->resize(transfers.count);
    // Fresh-bank closed form. Row-aligned layout means a transfer's
    // cost depends only on its byte count: every burst pays bus time
    // (peak bandwidth = the analytical ceiling), every row touched
    // pays an activate, and rows beyond the bank count wrap onto banks
    // whose buffer holds an earlier row of the same transfer — a
    // precharge on top of the activate. Matches ReplayTensorStream on
    // a single transfer from cold banks (pinned by tests).
    const double burst_s = hw.DramSeconds(params_.burst_bytes);
    const double rcd_s = params_.t_rcd_ns * kNsToSeconds;
    const double rp_s = params_.t_rp_ns * kNsToSeconds;
    for (int j = 0; j < transfers.count; ++j) {
        const Bytes b = transfers.bytes[j];
        if (b <= 0) {
            (*seconds)[j] = 0.0;
            continue;
        }
        const std::int64_t bursts = CeilDiv(b, params_.burst_bytes);
        const std::int64_t rows = CeilDiv(b, params_.row_bytes);
        const std::int64_t conflicts =
            rows > params_.banks ? rows - params_.banks : 0;
        (*seconds)[j] = (double)bursts * burst_s + (double)rows * rcd_s +
                        (double)conflicts * rp_s;
    }
}

double
BankedDramModel::ChannelBusySeconds(const HardwareConfig &,
                                    Bytes,
                                    const std::vector<double> &seconds) const
{
    // One serial channel: busy time is the sum of the per-transfer
    // costs (fixed summation order: tensor-index order).
    double total = 0.0;
    for (double s : seconds) total += s;
    return total;
}

void
BankedDramModel::ReplayTensorStream(const HardwareConfig &hw,
                                    const std::vector<BankedTransfer> &stream,
                                    std::vector<double> *seconds,
                                    BankedReplayStats *stats) const
{
    *stats = BankedReplayStats{};
    // All allocation happens before the profiled region: somalint
    // forbids heap traffic inside SOMA_PROF_SCOPE.
    seconds->assign(stream.size(), 0.0);
    std::vector<std::int64_t> open_row((size_t)params_.banks, -1);

    const double burst_s = hw.DramSeconds(params_.burst_bytes);
    const double rcd_s = params_.t_rcd_ns * kNsToSeconds;
    const double rp_s = params_.t_rp_ns * kNsToSeconds;
    const double turn_s = params_.t_turnaround_ns * kNsToSeconds;

    SOMA_PROF_SCOPE("eval.dram.replay");
    int last_dir = -1;  // -1 = none yet, 0 = write, 1 = read
    for (size_t i = 0; i < stream.size(); ++i) {
        const BankedTransfer &t = stream[i];
        if (t.bytes <= 0) continue;
        // Count events per transfer, then multiply — the same
        // arithmetic shape as the closed form, so a single transfer
        // replayed from cold banks reproduces FillTransferSeconds bit
        // for bit (an additive per-burst accumulation would drift by
        // ulps over the thousands of bursts in a large tensor).
        std::int64_t turns = 0, misses = 0, conflicts = 0;
        const int dir = t.is_load ? 1 : 0;
        if (last_dir >= 0 && dir != last_dir) {
            turns = 1;
            stats->turnarounds++;
        }
        last_dir = dir;
        const std::int64_t bursts = CeilDiv(t.bytes, params_.burst_bytes);
        for (std::int64_t k = 0; k < bursts; ++k) {
            const std::uint64_t addr =
                t.address + (std::uint64_t)(k * params_.burst_bytes);
            const std::int64_t global_row =
                (std::int64_t)(addr / (std::uint64_t)params_.row_bytes);
            const int bank = (int)(global_row % params_.banks);
            if (open_row[(size_t)bank] == global_row) {
                stats->row_hits++;
            } else if (open_row[(size_t)bank] < 0) {
                stats->row_misses++;
                ++misses;
                open_row[(size_t)bank] = global_row;
            } else {
                stats->row_conflicts++;
                ++conflicts;
                open_row[(size_t)bank] = global_row;
            }
            stats->transactions++;
        }
        const double busy = (double)bursts * burst_s +
                            (double)(misses + conflicts) * rcd_s +
                            (double)conflicts * rp_s +
                            (double)turns * turn_s;
        (*seconds)[i] = busy;
        stats->busy_seconds += busy;
    }
}

const BankedDramModel &
BankedMemoryModel()
{
    static const BankedDramModel model;
    return model;
}

}  // namespace soma
