#include "hw/memory_model.h"

#include "hw/banked_dram.h"

namespace soma {

const char *
AnalyticalDramModel::description() const
{
    return "flat-bandwidth channel: seconds = bytes / dram_gbps "
           "(the paper's model; the default)";
}

void
AnalyticalDramModel::FillTransferSeconds(const HardwareConfig &hw,
                                         const DramTransferList &transfers,
                                         std::vector<double> *seconds) const
{
    seconds->resize(transfers.count);
    // Exactly the pre-seam inline loop: same call, same iteration
    // order, so the analytical backend is bit-identical to the legacy
    // math (pinned by tests/test_memory_model.cc).
    for (int j = 0; j < transfers.count; ++j)
        (*seconds)[j] = hw.DramSeconds(transfers.bytes[j]);
}

double
AnalyticalDramModel::ChannelBusySeconds(
    const HardwareConfig &hw, Bytes total_bytes,
    const std::vector<double> &) const
{
    // One division over the summed bytes — NOT the sum of the
    // per-transfer seconds, which would differ in the last ulps.
    return hw.DramSeconds(total_bytes);
}

const MemoryModel &
AnalyticalMemoryModel()
{
    static const AnalyticalDramModel model;
    return model;
}

double
ModelTransferSeconds(const HardwareConfig &hw, Bytes bytes, bool is_load)
{
    if (hw.memory_model == nullptr) return hw.DramSeconds(bytes);
    const unsigned char load_flag = is_load ? 1 : 0;
    DramTransferList one;
    one.bytes = &bytes;
    one.is_load = &load_flag;
    one.count = 1;
    std::vector<double> seconds;
    hw.memory_model->FillTransferSeconds(hw, one, &seconds);
    return seconds[0];
}

MemoryModelRegistry
MemoryModelRegistry::WithBuiltins()
{
    MemoryModelRegistry reg;
    reg.Register(&AnalyticalMemoryModel());
    reg.Register(&BankedMemoryModel());
    return reg;
}

void
MemoryModelRegistry::Register(const MemoryModel *model)
{
    for (auto &m : models_) {
        if (std::string(m->name()) == model->name()) {
            m = model;
            return;
        }
    }
    models_.push_back(model);
}

bool
MemoryModelRegistry::Has(const std::string &name) const
{
    for (const MemoryModel *m : models_)
        if (name == m->name()) return true;
    return false;
}

std::vector<std::string>
MemoryModelRegistry::Names() const
{
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const MemoryModel *m : models_) names.push_back(m->name());
    return names;
}

const MemoryModel *
MemoryModelRegistry::Find(const std::string &name, std::string *err) const
{
    for (const MemoryModel *m : models_)
        if (name == m->name()) return m;
    if (err) {
        std::string joined;
        for (const MemoryModel *m : models_) {
            if (!joined.empty()) joined += ", ";
            joined += m->name();
        }
        *err = "unknown memory model \"" + name + "\" (registered: " +
               joined + ")";
    }
    return nullptr;
}

}  // namespace soma
