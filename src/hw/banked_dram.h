/**
 * @file
 * Backend #2 of the MemoryModel seam: a banked row-buffer DRAM model.
 *
 * The channel is decomposed into N banks with one open-row buffer
 * each; data moves in fixed-size bursts whose bus time comes from the
 * same dram_gbps the analytical model uses, so the banked model's
 * *peak* bandwidth matches the analytical ceiling and every extra
 * second it reports is row-activate / precharge / turnaround overhead
 * the flat model ignores (the quantity `somac run --validate-memory`
 * measures).
 *
 * Address map: tensors are laid out contiguously, each aligned up to a
 * row boundary; consecutive rows interleave round-robin across banks
 * (global_row = addr / row_bytes, bank = global_row % banks). A
 * sequential tensor therefore streams row-sized chunks across all
 * banks before revisiting one — the layout a DNN weight/fmap blob
 * actually gets from a bump allocator.
 *
 * Two faces, one timing rule:
 *
 *  - MemoryModel (search path): per-tensor cost in *fresh-bank*
 *    isolation, closed form — a pure function of the byte count, so
 *    the seam contract (memory_model.h) holds and the incremental
 *    evaluator stays bitwise-safe with this backend steering the SA.
 *  - ReplayTensorStream (validation path): trace-driven replay of the
 *    full DRAM Tensor Order stream with bank state carried *across*
 *    tensors and read<->write bus turnaround — the history-dependent
 *    effects the per-tensor face cannot see. sim/memory_validation.h
 *    re-times a finished schedule with it.
 */
#ifndef SOMA_HW_BANKED_DRAM_H
#define SOMA_HW_BANKED_DRAM_H

#include <cstdint>
#include <vector>

#include "hw/memory_model.h"

namespace soma {

/** LPDDR4-class timing/geometry defaults (ns at the controller). */
struct BankedDramParams {
    int banks = 8;
    Bytes row_bytes = 2048;       ///< row-buffer size per bank
    Bytes burst_bytes = 64;       ///< one bus transaction
    double t_rcd_ns = 18.0;       ///< activate (row open) latency
    double t_rp_ns = 18.0;        ///< precharge before a conflicting open
    double t_turnaround_ns = 7.5; ///< read<->write bus direction change
};

/** One element of the validation replay's transaction stream: a tensor
 *  transfer at its assigned home address, in DLSA issue order. */
struct BankedTransfer {
    std::uint64_t address = 0;
    Bytes bytes = 0;
    bool is_load = true;  ///< DRAM read (loads) vs write (stores)
};

/** Counters of one ReplayTensorStream pass (the eval.dram.* metrics). */
struct BankedReplayStats {
    std::uint64_t transactions = 0;   ///< bursts issued
    std::uint64_t row_hits = 0;       ///< burst into the open row
    std::uint64_t row_misses = 0;     ///< activate on a closed bank
    std::uint64_t row_conflicts = 0;  ///< precharge + activate
    std::uint64_t turnarounds = 0;    ///< read<->write direction flips
    double busy_seconds = 0.0;        ///< total channel busy time
};

/** Contiguous row-aligned layout: tensor j's home address. Shared by
 *  the model's closed form and the validation replay so both faces
 *  describe one layout. */
void AssignRowAlignedAddresses(const Bytes *bytes, int count,
                               Bytes row_bytes,
                               std::vector<std::uint64_t> *addresses);

class BankedDramModel final : public MemoryModel {
  public:
    BankedDramModel() = default;
    explicit BankedDramModel(const BankedDramParams &params)
        : params_(params)
    {
    }

    const char *name() const override { return "banked"; }
    const char *description() const override;

    /** Fresh-bank closed form per transfer (pure in the byte count):
     *  bursts * burst_time + rows * t_rcd + conflicts * t_rp. */
    void FillTransferSeconds(const HardwareConfig &hw,
                             const DramTransferList &transfers,
                             std::vector<double> *seconds) const override;

    /** The channel is serial: the sum of the per-transfer seconds. */
    double ChannelBusySeconds(
        const HardwareConfig &hw, Bytes total_bytes,
        const std::vector<double> &seconds) const override;

    /**
     * Trace-driven replay of @p stream in order, burst by burst, with
     * bank row state carried across transfers and read<->write
     * turnaround between transactions. Writes each transfer's busy
     * seconds to @p seconds (same indexing as @p stream) and the
     * aggregate counters to @p stats. Deterministic: a pure function
     * of (hw, stream, params).
     */
    void ReplayTensorStream(const HardwareConfig &hw,
                            const std::vector<BankedTransfer> &stream,
                            std::vector<double> *seconds,
                            BankedReplayStats *stats) const;

    const BankedDramParams &params() const { return params_; }

  private:
    BankedDramParams params_;
};

/** The process-wide default-parameter instance behind the registry's
 *  "banked" entry. */
const BankedDramModel &BankedMemoryModel();

}  // namespace soma

#endif  // SOMA_HW_BANKED_DRAM_H
