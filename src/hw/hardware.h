/**
 * @file
 * Hardware model of the generic DNN accelerator template (Fig. 1):
 * several cores (PE array + vector unit + private L0 buffers) sharing a
 * Global Buffer (GBUF) and one DRAM channel.
 *
 * Unit energies parameterize the evaluator; the defaults are
 * representative 12nm-class INT8 constants standing in for the paper's
 * RTL-synthesis numbers (see DESIGN.md, substitutions).
 */
#ifndef SOMA_HW_HARDWARE_H
#define SOMA_HW_HARDWARE_H

#include <string>

#include "common/types.h"

namespace soma {

class MemoryModel;  // hw/memory_model.h

/** Per-access energy constants, in picojoules. */
struct EnergyModel {
    double dram_pj_per_byte = 15.0;  ///< DRAM read or write (LPDDR class)
    double gbuf_pj_per_byte = 1.2;   ///< multi-MB shared SRAM access
    double l0_pj_per_byte = 0.10;    ///< core-private L0 access
    double mac_pj_per_op = 0.08;     ///< one INT8 op (MAC = 2 ops), 12nm
    double vector_pj_per_op = 0.15;  ///< one vector-unit op
};

/**
 * Accelerator configuration. Peak matrix throughput is
 * cores * pe_per_core MACs/cycle; "TOPS" counts 2 ops per MAC at the
 * core clock.
 */
struct HardwareConfig {
    std::string name = "edge";

    int cores = 8;             ///< cores sharing the GBUF
    int pe_rows_per_core = 32; ///< PE array rows (output-channel lanes)
    int pe_cols_per_core = 32; ///< PE array cols (spatial/input lanes)
    double freq_ghz = 1.0;     ///< core and DRAM controller clock

    int vector_lanes_per_core = 64;  ///< vector unit ops/cycle/core

    Bytes gbuf_bytes = 8LL * 1024 * 1024;       ///< shared Global Buffer
    double dram_gbps = 16.0;                    ///< GB/s, unidirectional

    Bytes l0_weight_bytes = 64 * 1024;   ///< per-core WL0
    Bytes l0_act_bytes = 32 * 1024;      ///< per-core AL0
    Bytes l0_out_bytes = 32 * 1024;      ///< per-core OL0

    EnergyModel energy;

    /**
     * DRAM timing backend for the evaluator's seam (hw/memory_model.h).
     * nullptr means the analytical model — the evaluator treats a null
     * pointer and &AnalyticalMemoryModel() identically. Non-owning:
     * points at a process-wide registry singleton.
     */
    const MemoryModel *memory_model = nullptr;

    /** Peak throughput in ops/second (2 ops per MAC). */
    double PeakOpsPerSecond() const
    {
        return 2.0 * cores * pe_rows_per_core * pe_cols_per_core *
               freq_ghz * 1e9;
    }

    /** Peak throughput in TOPS. */
    double PeakTops() const { return PeakOpsPerSecond() / 1e12; }

    /** Vector throughput in ops/second. */
    double VectorOpsPerSecond() const
    {
        return static_cast<double>(cores) * vector_lanes_per_core *
               freq_ghz * 1e9;
    }

    /** DRAM bandwidth in bytes/second. */
    double DramBytesPerSecond() const { return dram_gbps * 1e9; }

    /** Seconds to move @p bytes over the DRAM channel. */
    double DramSeconds(Bytes bytes) const
    {
        return static_cast<double>(bytes) / DramBytesPerSecond();
    }
};

/**
 * Edge preset: 16 TOPS, 8 MB GBUF, 16 GB/s DRAM (Sec. VI-A1, referencing
 * Snapdragon 8 Gen 3 / Apple A15-A16 class parts).
 */
HardwareConfig EdgeAccelerator();

/**
 * Cloud preset: 128 TOPS, 32 MB GBUF, 128 GB/s DRAM (Orin / TPU-v4i
 * class).
 */
HardwareConfig CloudAccelerator();

/**
 * Copy of @p base with a different GBUF size / DRAM bandwidth (DSE).
 * Arguments must be positive and finite; invalid values are rejected
 * (see ScaledHardware) — passing them here is a programming error and
 * asserts in debug builds, returning @p base unchanged otherwise.
 */
HardwareConfig WithBufferAndBandwidth(const HardwareConfig &base,
                                      Bytes gbuf_bytes, double dram_gbps);

/**
 * Validated scaling: copy of @p base with the given GBUF size and DRAM
 * bandwidth, rejecting zero/negative/non-finite arguments with a clear
 * error instead of letting NaN/inf timings leak into the evaluator.
 * Returns false and sets @p err on rejection (@p out untouched).
 */
bool ScaledHardware(const HardwareConfig &base, Bytes gbuf_bytes,
                    double dram_gbps, HardwareConfig *out,
                    std::string *err);

}  // namespace soma

#endif  // SOMA_HW_HARDWARE_H
