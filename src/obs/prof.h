/**
 * @file
 * Hot-path profiling hooks: SOMA_PROF_SCOPE("name") aggregates
 * time/invocation counts per static site, cheap enough for the SA
 * inner loop (the timeline evaluator runs millions of times per
 * search; per-call trace spans would drown both the tracer and the
 * search itself).
 *
 * Cost model:
 *  - disabled (default): one relaxed atomic load + branch per scope —
 *    no clock read, no stores. bench_sa_throughput gates this at < 2%
 *    of per-candidate cost in CI.
 *  - enabled: two clock reads + two relaxed fetch_adds per scope.
 *  - compiled out: -DSOMA_OBS_DISABLE_PROF makes the macro expand to
 *    nothing (the compile-time no-op path).
 *
 * Enabling is scoped and refcounted: hold a ProfEnableScope for the
 * measured region (somac --stats, a traced pipeline, the bench's
 * prof rows). SOMA_PROF=1 in the environment enables it process-wide.
 *
 * Sites register themselves on first execution through a lock-free
 * intrusive list of function-local statics; ProfSnapshot() walks the
 * list into a name-sorted vector. Counters only ever accumulate —
 * consumers diff two snapshots to attribute cost to a phase (see
 * Scheduler::RunPipeline, which feeds the eval.timeline share of
 * search time into the metrics registry).
 */
#ifndef SOMA_OBS_PROF_H
#define SOMA_OBS_PROF_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace soma {
namespace obs {

/** One static instrumentation site. Constructed once per SOMA_PROF_SCOPE
 *  location (function-local static) and never destroyed before exit. */
struct ProfSite {
    explicit ProfSite(const char *site_name);

    const char *const name;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> nanos{0};
    ProfSite *next = nullptr;  ///< intrusive registry list (immutable
                               ///< after the registering CAS)
};

/** True while any ProfEnableScope is live, SetProfilingForced(true)
 *  was called, or SOMA_PROF is set in the environment (read once). */
bool ProfilingEnabled();

/** Process-wide manual override (tests, benches). */
void SetProfilingForced(bool on);

/** Refcounted enablement for one measured region. */
class ProfEnableScope {
  public:
    ProfEnableScope();
    ~ProfEnableScope();
    ProfEnableScope(const ProfEnableScope &) = delete;
    ProfEnableScope &operator=(const ProfEnableScope &) = delete;
};

/** Accumulated totals of one site at snapshot time. */
struct ProfEntry {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
};

/** All registered sites, sorted by name (sites that never executed are
 *  absent — registration happens on first use). */
std::vector<ProfEntry> ProfSnapshot();

/** Total nanos accumulated under @p name across @p snapshot (0 when
 *  the site is absent). */
std::uint64_t ProfNanos(const std::vector<ProfEntry> &snapshot,
                        const std::string &name);

/** The guard timer behind SOMA_PROF_SCOPE. */
class ProfScopeTimer {
  public:
    explicit ProfScopeTimer(ProfSite &site)
        : site_(ProfilingEnabled() ? &site : nullptr)
    {
        if (site_) start_ = MonotonicNow();
    }
    ~ProfScopeTimer()
    {
        if (site_) {
            site_->calls.fetch_add(1, std::memory_order_relaxed);
            site_->nanos.fetch_add(
                static_cast<std::uint64_t>(NanosSince(start_)),
                std::memory_order_relaxed);
        }
    }
    ProfScopeTimer(const ProfScopeTimer &) = delete;
    ProfScopeTimer &operator=(const ProfScopeTimer &) = delete;

  private:
    ProfSite *const site_;
    MonotonicTime start_{};
};

}  // namespace obs
}  // namespace soma

#define SOMA_PROF_CONCAT_(a, b) a##b
#define SOMA_PROF_CONCAT(a, b) SOMA_PROF_CONCAT_(a, b)

#if defined(SOMA_OBS_DISABLE_PROF)
#define SOMA_PROF_SCOPE(site_name) \
    do {                           \
    } while (false)
#else
/** Aggregate the enclosing scope's wall time under @p site_name. */
#define SOMA_PROF_SCOPE(site_name)                                     \
    static ::soma::obs::ProfSite SOMA_PROF_CONCAT(soma_prof_site_,     \
                                                  __LINE__){site_name};\
    ::soma::obs::ProfScopeTimer SOMA_PROF_CONCAT(soma_prof_timer_,     \
                                                 __LINE__)(            \
        SOMA_PROF_CONCAT(soma_prof_site_, __LINE__))
#endif

#endif  // SOMA_OBS_PROF_H
