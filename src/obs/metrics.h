/**
 * @file
 * Process-wide metrics registry: lock-cheap counters, gauges and
 * fixed-bucket latency histograms registered by name, exported as
 * sorted-key canonical JSON.
 *
 * Design constraints (see DESIGN.md "Observability"):
 *
 *  - Hot-path updates are a single relaxed atomic op. Registration
 *    (name lookup) takes the registry mutex once; call sites cache the
 *    returned reference, which stays valid for the registry's lifetime
 *    (metrics are never erased, only the whole registry Reset for
 *    tests).
 *  - Export is canonical: ToJson() emits one flat object whose keys
 *    are the dotted metric names; CanonicalDump() of it is therefore
 *    byte-stable for equal values regardless of registration order.
 *    This is the `--stats` schema shared by somac run/sweep/
 *    fingerprint.
 *  - Strictly off the canonical-bytes path: nothing here feeds
 *    ScheduleResult serialization or request fingerprints.
 *
 * Exact-count contract: Counter::Add and Histogram::Observe are
 * atomic, so concurrent writers never lose increments (pinned by the
 * TSan-exercised stress in tests/test_obs.cc). Histogram::sum() is an
 * exact CAS-loop accumulation; its value can depend on addition order
 * for pathological doubles, which is why dumps round-trip through the
 * same %.17g rules as every other Json double.
 */
#ifndef SOMA_OBS_METRICS_H
#define SOMA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"

namespace soma {
namespace obs {

/** Monotone event count. Add() is wait-free; Set() exists so snapshot
 *  sources (ServiceStats) can export absolute values. */
class Counter {
  public:
    void Add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    void Set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value (shares, ratios, sizes). */
class Gauge {
  public:
    void Set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * value <= bounds[i]; one implicit overflow bucket catches the rest.
 * Percentiles interpolate linearly inside the winning bucket, which is
 * the usual fixed-bucket tradeoff: cheap concurrent recording, p50/
 * p95/p99 accurate to the bucket resolution.
 */
class Histogram {
  public:
    /** Geometric latency bounds in seconds: 1us .. ~65s, x2 steps. */
    static std::vector<double> DefaultLatencyBounds();

    explicit Histogram(std::vector<double> bounds);

    void Observe(double value);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    /** Value at quantile @p q in [0, 1] (0 when empty). */
    double Percentile(double q) const;

    /** {count, sum, p50, p95, p99} as a JSON object. */
    Json ToJson() const;

  private:
    const std::vector<double> bounds_;       ///< ascending upper bounds
    std::vector<std::atomic<std::uint64_t>> buckets_;  ///< + overflow
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * The name -> metric map. One process-wide instance behind Global();
 * tests construct their own. A name permanently belongs to the first
 * kind registered under it (re-registering as another kind returns a
 * distinct throwaway metric rather than aliasing).
 */
class MetricsRegistry {
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry (somac --stats, pipeline counters). */
    static MetricsRegistry &Global();

    Counter &GetCounter(const std::string &name) SOMA_EXCLUDES(mutex_);
    Gauge &GetGauge(const std::string &name) SOMA_EXCLUDES(mutex_);
    /** @p bounds applies on first registration only (empty: latency
     *  defaults). */
    Histogram &GetHistogram(const std::string &name,
                            std::vector<double> bounds = {})
        SOMA_EXCLUDES(mutex_);

    /**
     * One flat JSON object: counters as exact integers, gauges as
     * numbers, histograms as {count, sum, p50, p95, p99} sub-objects.
     * Keys are the metric names; dump with CanonicalDump() for the
     * canonical `--stats` bytes.
     */
    Json ToJson() const SOMA_EXCLUDES(mutex_);

    /** Drop every metric (tests; never used on the hot path — handed-
     *  out references die with the registry's entries). */
    void Reset() SOMA_EXCLUDES(mutex_);

  private:
    mutable Mutex mutex_;
    /* std::map, not unordered: ToJson iterates in sorted-name order by
     * construction. unique_ptr values keep handed-out references stable
     * across rehash-free inserts. */
    std::map<std::string, std::unique_ptr<Counter>> counters_
        SOMA_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        SOMA_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        SOMA_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace soma

#endif  // SOMA_OBS_METRICS_H
