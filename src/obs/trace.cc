#include "obs/trace.h"

#include <atomic>

namespace soma {
namespace obs {

int
CurrentTraceTid()
{
    static std::atomic<int> next{0};
    thread_local const int tid = next.fetch_add(1);
    return tid;
}

void
Tracer::AddComplete(const char *name, MonotonicTime start,
                    MonotonicTime end, std::vector<SpanArg> args)
{
    if (start < t0_) start = t0_;
    if (end < start) end = start;
    Event ev;
    ev.name = name;
    ev.tid = CurrentTraceTid();
    ev.ts_us = static_cast<double>(NanosBetween(t0_, start)) / 1000.0;
    ev.dur_us = static_cast<double>(NanosBetween(start, end)) / 1000.0;
    ev.args = std::move(args);
    MutexLock lock(mutex_);
    events_.push_back(std::move(ev));
}

void
Tracer::AddAggregate(const char *name, MonotonicTime end,
                     std::int64_t duration_ns, std::vector<SpanArg> args)
{
    if (duration_ns < 0) duration_ns = 0;
    MonotonicTime start = end - std::chrono::nanoseconds(duration_ns);
    AddComplete(name, start, end, std::move(args));
}

std::size_t
Tracer::NumEvents() const
{
    MutexLock lock(mutex_);
    return events_.size();
}

Json
Tracer::ToJson() const
{
    MutexLock lock(mutex_);
    Json array = Json::Array();
    for (const Event &ev : events_) {
        Json row = Json::Object();
        row.Set("name", Json::Str(ev.name));
        row.Set("cat", Json::Str("soma"));
        row.Set("ph", Json::Str("X"));
        row.Set("ts", Json::Number(ev.ts_us));
        row.Set("dur", Json::Number(ev.dur_us));
        row.Set("pid", Json::Int(1));
        row.Set("tid", Json::Int(ev.tid));
        if (!ev.args.empty()) {
            Json args = Json::Object();
            for (const SpanArg &a : ev.args) args.Set(a.key, a.value);
            row.Set("args", std::move(args));
        }
        array.Append(std::move(row));
    }
    Json json = Json::Object();
    json.Set("traceEvents", std::move(array));
    json.Set("displayTimeUnit", Json::Str("ms"));
    return json;
}

}  // namespace obs
}  // namespace soma
