#include "obs/prof.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace soma {
namespace obs {

namespace {

/** Head of the intrusive site list. Push-only; sites live forever. */
std::atomic<ProfSite *> g_sites{nullptr};
std::atomic<int> g_enable_count{0};
std::atomic<bool> g_forced{false};

bool
EnvEnabled()
{
    static const bool enabled = [] {
        const char *v = std::getenv("SOMA_PROF");
        return v && *v && std::strcmp(v, "0") != 0;
    }();
    return enabled;
}

}  // namespace

ProfSite::ProfSite(const char *site_name) : name(site_name)
{
    ProfSite *head = g_sites.load(std::memory_order_relaxed);
    do {
        next = head;
    } while (!g_sites.compare_exchange_weak(head, this,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
}

bool
ProfilingEnabled()
{
    return g_enable_count.load(std::memory_order_relaxed) > 0 ||
           g_forced.load(std::memory_order_relaxed) || EnvEnabled();
}

void
SetProfilingForced(bool on)
{
    g_forced.store(on, std::memory_order_relaxed);
}

ProfEnableScope::ProfEnableScope()
{
    g_enable_count.fetch_add(1, std::memory_order_relaxed);
}

ProfEnableScope::~ProfEnableScope()
{
    g_enable_count.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<ProfEntry>
ProfSnapshot()
{
    std::vector<ProfEntry> entries;
    for (ProfSite *site = g_sites.load(std::memory_order_acquire); site;
         site = site->next) {
        ProfEntry e;
        e.name = site->name;
        e.calls = site->calls.load(std::memory_order_relaxed);
        e.nanos = site->nanos.load(std::memory_order_relaxed);
        entries.push_back(std::move(e));
    }
    // Two sites may share a name (e.g. a scope in a header expanded in
    // several TUs): fold them so consumers see one total per name.
    std::sort(entries.begin(), entries.end(),
              [](const ProfEntry &a, const ProfEntry &b) {
                  return a.name < b.name;
              });
    std::vector<ProfEntry> folded;
    for (ProfEntry &e : entries) {
        if (!folded.empty() && folded.back().name == e.name) {
            folded.back().calls += e.calls;
            folded.back().nanos += e.nanos;
        } else {
            folded.push_back(std::move(e));
        }
    }
    return folded;
}

std::uint64_t
ProfNanos(const std::vector<ProfEntry> &snapshot, const std::string &name)
{
    for (const ProfEntry &e : snapshot)
        if (e.name == name) return e.nanos;
    return 0;
}

}  // namespace obs
}  // namespace soma
