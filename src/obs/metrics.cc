#include "obs/metrics.h"

#include <algorithm>
#include <utility>

namespace soma {
namespace obs {

std::vector<double>
Histogram::DefaultLatencyBounds()
{
    std::vector<double> bounds;
    bounds.reserve(27);
    for (double b = 1e-6; b < 100.0; b *= 2.0) bounds.push_back(b);
    return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_([&bounds] {
          if (bounds.empty()) bounds = DefaultLatencyBounds();
          std::sort(bounds.begin(), bounds.end());
          bounds.erase(std::unique(bounds.begin(), bounds.end()),
                       bounds.end());
          return bounds;
      }()),
      buckets_(bounds_.size() + 1)
{
}

void
Histogram::Observe(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t idx =
        static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // C++17 has no fetch_add for atomic<double>; CAS-accumulate.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
    }
}

double
Histogram::Percentile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double target = q * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t in_bucket =
            buckets_[i].load(std::memory_order_relaxed);
        if (in_bucket == 0) continue;
        if (static_cast<double>(seen + in_bucket) < target) {
            seen += in_bucket;
            continue;
        }
        // Interpolate inside bucket i: [lo, hi] covers `in_bucket`
        // observations uniformly; the overflow bucket reports its
        // lower bound (no upper bound to interpolate toward).
        const double lo = i == 0 ? 0.0 : bounds_[i - 1];
        if (i >= bounds_.size()) return lo;
        const double hi = bounds_[i];
        const double frac =
            (target - static_cast<double>(seen)) /
            static_cast<double>(in_bucket);
        return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

Json
Histogram::ToJson() const
{
    Json json = Json::Object();
    json.Set("count", Json::U64(count()));
    json.Set("sum", Json::Number(sum()));
    json.Set("p50", Json::Number(Percentile(0.50)));
    json.Set("p95", Json::Number(Percentile(0.95)));
    json.Set("p99", Json::Number(Percentile(0.99)));
    return json;
}

MetricsRegistry &
MetricsRegistry::Global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::GetCounter(const std::string &name)
{
    MutexLock lock(mutex_);
    auto &slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::GetGauge(const std::string &name)
{
    MutexLock lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::GetHistogram(const std::string &name,
                              std::vector<double> bounds)
{
    MutexLock lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

Json
MetricsRegistry::ToJson() const
{
    MutexLock lock(mutex_);
    Json json = Json::Object();
    for (const auto &[name, counter] : counters_)
        json.Set(name, Json::U64(counter->value()));
    for (const auto &[name, gauge] : gauges_)
        json.Set(name, Json::Number(gauge->value()));
    for (const auto &[name, hist] : histograms_)
        json.Set(name, hist->ToJson());
    return json;
}

void
MetricsRegistry::Reset()
{
    MutexLock lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

}  // namespace obs
}  // namespace soma
