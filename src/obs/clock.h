/**
 * @file
 * The repo's single monotonic-clock call site.
 *
 * Every duration, deadline and timestamp in scheduling code is
 * steady_clock arithmetic (DESIGN.md "Static analysis & concurrency
 * discipline"); this header is where the one `now()` call lives.
 * somalint's steady-now check flags `steady_clock::now()` (and aliases
 * of it) anywhere outside src/obs/, so timing code either takes a
 * time_point from its caller or reaches it through MonotonicNow() —
 * which keeps the injectable-clock seams (ServiceOptions::now_fn) and
 * the wallclock discipline auditable from one file.
 */
#ifndef SOMA_OBS_CLOCK_H
#define SOMA_OBS_CLOCK_H

#include <chrono>
#include <cstdint>

namespace soma {
namespace obs {

/** The process-wide scheduling clock. Monotonic by construction; a
 *  system-time jump never moves it. */
using MonotonicClock = std::chrono::steady_clock;
using MonotonicTime = MonotonicClock::time_point;

/** The current monotonic instant — the one sanctioned now() call. */
inline MonotonicTime
MonotonicNow()
{
    return MonotonicClock::now();
}

/** Seconds elapsed since @p t0 (fractional). */
inline double
SecondsSince(MonotonicTime t0)
{
    return std::chrono::duration<double>(MonotonicNow() - t0).count();
}

/** Nanoseconds between two instants (0 for t1 <= t0 in practice; the
 *  clock is monotonic). */
inline std::int64_t
NanosBetween(MonotonicTime t0, MonotonicTime t1)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
        .count();
}

/** Nanoseconds elapsed since @p t0. */
inline std::int64_t
NanosSince(MonotonicTime t0)
{
    return NanosBetween(t0, MonotonicNow());
}

}  // namespace obs
}  // namespace soma

#endif  // SOMA_OBS_CLOCK_H
