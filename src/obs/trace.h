/**
 * @file
 * Span tracer emitting Chrome trace-event JSON ("traceEvents" array of
 * complete events), loadable in chrome://tracing and Perfetto.
 *
 * Usage: own a Tracer somewhere request-scoped (somac --trace, a test,
 * ScheduleRequest::trace) and open RAII SpanScopes around phases:
 *
 *   obs::SpanScope span(tracer, "lfa.stage");
 *   span.Arg("iterations", n);     // buffered, attached on close
 *
 * A null tracer makes SpanScope a complete no-op — no clock read, no
 * allocation — which is the runtime half of the zero-overhead-when-
 * disabled contract (hot paths additionally avoid spans entirely and
 * use SOMA_PROF_SCOPE aggregates, see obs/prof.h).
 *
 * Thread model: Tracer is internally synchronized (spans close from
 * driver worker threads); timestamps are monotonic microseconds since
 * the Tracer's construction; tids are small dense per-process thread
 * numbers (assignment order), not OS ids, so traces diff cleanly.
 *
 * Determinism: traces record wall-time and are therefore not
 * deterministic artifacts themselves — but attaching a tracer never
 * changes ScheduleResult bytes (pinned by test; the spans only read
 * pipeline state, never steer it).
 */
#ifndef SOMA_OBS_TRACE_H
#define SOMA_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace soma {
namespace obs {

/** One buffered span argument (shown under "args" in the viewer). */
struct SpanArg {
    std::string key;
    Json value;
};

class Tracer {
  public:
    Tracer() : t0_(MonotonicNow()) {}
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Append one complete ("ph":"X") event. @p start/@p end are
     *  monotonic instants (clamped to >= t0). */
    void AddComplete(const char *name, MonotonicTime start,
                     MonotonicTime end, std::vector<SpanArg> args = {})
        SOMA_EXCLUDES(mutex_);

    /** Append a synthesized aggregate span of @p duration_ns ending at
     *  @p end — used to surface SOMA_PROF_SCOPE totals (e.g. timeline
     *  evaluation) as a span even though the hot path records no
     *  per-call events. */
    void AddAggregate(const char *name, MonotonicTime end,
                      std::int64_t duration_ns,
                      std::vector<SpanArg> args = {})
        SOMA_EXCLUDES(mutex_);

    MonotonicTime t0() const { return t0_; }
    std::size_t NumEvents() const SOMA_EXCLUDES(mutex_);

    /** {"traceEvents": [...]} — the Chrome/Perfetto wire format. */
    Json ToJson() const SOMA_EXCLUDES(mutex_);

  private:
    struct Event {
        std::string name;
        int tid = 0;
        double ts_us = 0.0;   ///< since t0_
        double dur_us = 0.0;
        std::vector<SpanArg> args;
    };

    const MonotonicTime t0_;
    mutable Mutex mutex_;
    std::vector<Event> events_ SOMA_GUARDED_BY(mutex_);
};

/** Small dense id of the calling thread (0, 1, 2, ... in first-use
 *  order). */
int CurrentTraceTid();

/**
 * RAII span: records [construction, destruction) as one complete event
 * on @p tracer. All methods are no-ops when @p tracer is null.
 */
class SpanScope {
  public:
    SpanScope(Tracer *tracer, const char *name)
        : tracer_(tracer), name_(name)
    {
        if (tracer_) start_ = MonotonicNow();
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    ~SpanScope()
    {
        if (tracer_)
            tracer_->AddComplete(name_, start_, MonotonicNow(),
                                 std::move(args_));
    }

    void Arg(const char *key, std::int64_t value)
    {
        if (tracer_) args_.push_back({key, Json::Int(value)});
    }
    void Arg(const char *key, double value)
    {
        if (tracer_) args_.push_back({key, Json::Number(value)});
    }
    void Arg(const char *key, const std::string &value)
    {
        if (tracer_) args_.push_back({key, Json::Str(value)});
    }

  private:
    Tracer *const tracer_;
    const char *const name_;
    MonotonicTime start_{};
    std::vector<SpanArg> args_;
};

}  // namespace obs
}  // namespace soma

#endif  // SOMA_OBS_TRACE_H
