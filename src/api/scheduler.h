/**
 * @file
 * soma::Scheduler — the unified entry point for scheduling requests
 * (the Fig. 5 pipeline as a service). One object owns the three
 * registries and a worker pool; consumers hand it ScheduleRequests and
 * get ScheduleResults back, either synchronously (Schedule) or through
 * the asynchronous Submit/Wait path that multiplexes any number of
 * concurrent requests onto the shared pool.
 *
 * Determinism contract: a result depends only on the request (model,
 * hardware, scheduler, profile, seed, objective, chains) — never on how
 * many sibling requests are in flight, which worker ran it, or how many
 * driver threads it was granted. The SearchDriver guarantees the
 * thread-count independence; the facade adds per-job isolation (each
 * job's search state lives entirely inside its pipeline call).
 *
 * Cancellation is cooperative and iteration-granular: Cancel() marks
 * the job, the annealing loops poll the flag every
 * SaOptions::cancel_check_interval iterations (RunSaWindow), and the
 * pipeline gives up at the next phase boundary (queued jobs never
 * start). ScheduleRequest::deadline_ms rides the same mechanism: the
 * search stops once the wall-clock budget is spent and the result is
 * marked deadline_expired (ok with the best-so-far scheme if one was
 * found, an error otherwise).
 *
 * The legacy free functions (RunSoma, RunCocco, GenerateIr, ...) remain
 * as thin compatibility wrappers — the facade is built from them.
 */
#ifndef SOMA_API_SCHEDULER_H
#define SOMA_API_SCHEDULER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "api/request.h"
#include "common/thread_annotations.h"
#include "hw/memory_model.h"

namespace soma {

class Scheduler {
  public:
    using JobId = std::uint64_t;

    struct Options {
        /** Worker threads serving Submit()ted jobs. */
        int workers = 2;
        /** SearchDriver thread budget shared by all in-flight async
         *  jobs (0 = hardware_concurrency). Affects wall-clock only,
         *  never results. */
        int driver_threads = 0;
    };

    Scheduler();
    explicit Scheduler(const Options &options);

    /** Blocks until every submitted job has finished (Cancel first for
     *  a fast shutdown), then joins the workers. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** The pluggable extension points. Configure before scheduling;
     *  registration is not synchronized with in-flight jobs. */
    ModelRegistry &models() { return models_; }
    HardwareRegistry &hardware() { return hardware_; }
    SchedulerRegistry &schedulers() { return schedulers_; }
    MemoryModelRegistry &memory_models() { return memory_models_; }

    /** Run @p request to completion in the calling thread. */
    ScheduleResult Schedule(const ScheduleRequest &request);

    /** Enqueue @p request; returns immediately. Workers are started
     *  lazily on first use. */
    JobId Submit(ScheduleRequest request) SOMA_EXCLUDES(mutex_);

    /** Cooperative cancel. True if the job exists and was not yet
     *  finished. A running search observes the flag within
     *  SaOptions::cancel_check_interval iterations and the job
     *  completes with error "cancelled". */
    bool Cancel(JobId id) SOMA_EXCLUDES(mutex_);

    /** True once the job's result is available. False for unknown
     *  (or already collected) ids. */
    bool Done(JobId id) const SOMA_EXCLUDES(mutex_);

    /** Block until @p id finishes and collect its result. Each job can
     *  be waited on exactly once; unknown ids yield ok=false. */
    ScheduleResult Wait(JobId id) SOMA_EXCLUDES(mutex_);

    /** Drop a job without collecting it: cancels it if still pending
     *  and releases its result as soon as it exists. Results are
     *  otherwise retained until Wait() — fire-and-forget traffic must
     *  Discard() (or Wait()) every job it will not collect, or the
     *  result store grows with each submission. */
    void Discard(JobId id) SOMA_EXCLUDES(mutex_);

  private:
    /** One submitted request. `cancelled` is the lock-free cooperative
     *  flag the search loops poll; `discarded`/`done`/`result` are
     *  protected by the owning Scheduler's mutex_ — a cross-object
     *  contract the analysis cannot express on these members, enforced
     *  by the annotated Submit/Wait/Discard/WorkerLoop paths that do
     *  all access. */
    struct Job {
        JobId id = 0;
        ScheduleRequest request;
        std::atomic<bool> cancelled{false};
        bool discarded = false;
        bool done = false;
        ScheduleResult result;
    };

    ScheduleResult RunPipeline(const ScheduleRequest &request, JobId id,
                               const std::atomic<bool> *cancelled);
    void WorkerLoop() SOMA_EXCLUDES(mutex_);
    void EnsureWorkersLocked() SOMA_REQUIRES(mutex_);

    const Options options_;
    /* Registries are configured before scheduling starts and are not
     * synchronized with in-flight jobs (documented contract above). */
    ModelRegistry models_;          // somalint: allow(guarded-field)
    HardwareRegistry hardware_;     // somalint: allow(guarded-field)
    SchedulerRegistry schedulers_;  // somalint: allow(guarded-field)
    MemoryModelRegistry memory_models_;  // somalint: allow(guarded-field)

    /** Lock order: leaf — never held while running a pipeline or
     *  joining a worker. */
    mutable Mutex mutex_;
    CondVar work_cv_;  ///< queue -> workers
    CondVar done_cv_;  ///< workers -> Wait()
    std::deque<std::shared_ptr<Job>> queue_ SOMA_GUARDED_BY(mutex_);
    std::map<JobId, std::shared_ptr<Job>> jobs_ SOMA_GUARDED_BY(mutex_);
    std::vector<std::thread> workers_ SOMA_GUARDED_BY(mutex_);
    JobId next_id_ SOMA_GUARDED_BY(mutex_) = 1;
    /** Jobs currently executing a pipeline. */
    int inflight_ SOMA_GUARDED_BY(mutex_) = 0;
    bool stopping_ SOMA_GUARDED_BY(mutex_) = false;
};

}  // namespace soma

#endif  // SOMA_API_SCHEDULER_H
