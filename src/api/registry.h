/**
 * @file
 * The three pluggable registries behind the Scheduler facade. Each maps
 * a name onto a factory so new scenarios bolt on without touching call
 * sites:
 *
 *  - ModelRegistry:     workload name -> Graph builder. Built-ins wrap
 *    the models.h zoo; consumers register custom builders (see
 *    examples/gpt2_llm.cpp, which registers token-length variants).
 *  - HardwareRegistry:  hardware name -> HardwareConfig. Built-ins are
 *    the paper's "edge" and "cloud" presets.
 *  - SchedulerRegistry: scheduler name -> exploration strategy.
 *    Built-ins: "soma" (two-stage + buffer allocator), "cocco"
 *    (ASPLOS'24 baseline), "lfa-only" (stage 1 with the classical
 *    double-buffer DLSA, no DLSA exploration).
 *
 * Lookups never die: unknown names produce an error string listing the
 * registered names. Registration is not synchronized — configure
 * registries before scheduling from multiple threads.
 */
#ifndef SOMA_API_REGISTRY_H
#define SOMA_API_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "api/request.h"
#include "hw/hardware.h"
#include "search/buffer_allocator.h"
#include "workload/graph.h"

namespace soma {

class ModelRegistry {
  public:
    using Builder = std::function<Graph(int batch)>;

    /** Empty registry (for tests / fully custom zoos). */
    ModelRegistry() = default;

    /** Registry pre-populated with the models.h zoo. */
    static ModelRegistry WithBuiltins();

    /** Registers (or replaces) a builder. */
    void Register(const std::string &name, Builder builder);

    bool Has(const std::string &name) const;
    std::vector<std::string> Names() const;  ///< registration order

    /** Builds @p name at @p batch. On unknown names returns false and
     *  sets @p err to a message listing the registered names. */
    bool Build(const std::string &name, int batch, Graph *out,
               std::string *err) const;

  private:
    std::vector<std::pair<std::string, Builder>> builders_;
};

class HardwareRegistry {
  public:
    using Factory = std::function<HardwareConfig()>;

    HardwareRegistry() = default;

    /** Registry pre-populated with "edge" and "cloud". */
    static HardwareRegistry WithBuiltins();

    void Register(const std::string &name, Factory factory);

    bool Has(const std::string &name) const;
    std::vector<std::string> Names() const;

    bool Make(const std::string &name, HardwareConfig *out,
              std::string *err) const;

  private:
    std::vector<std::pair<std::string, Factory>> factories_;
};

/**
 * What one scheduler run produces, independent of the strategy: the
 * winning scheme in all representations plus its evaluation. Schedulers
 * without a distinct stage-1 view (cocco, lfa-only) leave stage1_report
 * invalid and mirror `dlsa` into `stage1_dlsa`.
 */
struct SchedulerRunResult {
    LfaEncoding lfa;
    ParsedSchedule parsed;
    DlsaEncoding dlsa;
    DlsaEncoding stage1_dlsa;
    EvalReport report;
    EvalReport stage1_report;
    double cost = 0.0;
    SaStats stats;
    int outer_iterations = 0;
};

/**
 * An exploration strategy. @p opts is the request's resolved
 * SomaOptions (profile budgets + objective + driver overrides); the raw
 * request is also passed for strategies with their own knobs.
 */
using SchedulerFn = std::function<SchedulerRunResult(
    const Graph &graph, const HardwareConfig &hw,
    const ScheduleRequest &request, const SomaOptions &opts)>;

class SchedulerRegistry {
  public:
    SchedulerRegistry() = default;

    /** Registry pre-populated with "soma", "cocco" and "lfa-only". */
    static SchedulerRegistry WithBuiltins();

    void Register(const std::string &name, SchedulerFn fn);

    bool Has(const std::string &name) const;
    std::vector<std::string> Names() const;

    /** Pointer into the registry (stable until the next Register), or
     *  nullptr with @p err listing the registered names. */
    const SchedulerFn *Find(const std::string &name,
                            std::string *err) const;

  private:
    std::vector<std::pair<std::string, SchedulerFn>> fns_;
};

}  // namespace soma

#endif  // SOMA_API_REGISTRY_H
