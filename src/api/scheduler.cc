#include "api/scheduler.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "compiler/instruction_gen.h"
#include "compiler/ir.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "sim/memory_validation.h"
#include "sim/trace.h"

namespace soma {

namespace {

using obs::MonotonicNow;
using obs::MonotonicTime;
using obs::SecondsSince;

/** Copy the request-identity fields every result carries. A request
 *  that names a model echoes that name even when a pre-built graph is
 *  attached (the service layer's graph cache injects one), so cached
 *  and cold results serialize identically; only pure inline-graph
 *  requests echo the graph's own identity. */
void
EchoRequest(const ScheduleRequest &request, ScheduleResult *result)
{
    const bool inline_only = request.graph && request.model.empty();
    result->model = inline_only ? request.graph->name() : request.model;
    result->batch = inline_only ? request.graph->batch() : request.batch;
    result->hardware = request.hardware;
    result->memory_model = request.memory_model;
    result->scheduler = request.scheduler;
    result->profile = request.profile;
    result->seed = request.seed;
}

/**
 * Post-search bookkeeping shared by every pipeline run: feed the
 * process-wide metrics registry (request/search counters, the
 * timeline-evaluation share of search time) and, for traced requests,
 * synthesize aggregate spans from the hot-path prof deltas.
 */
void
RecordSearchObservations(const ScheduleRequest &request,
                         double search_seconds,
                         const std::vector<obs::ProfEntry> &before,
                         MonotonicTime t_search, MonotonicTime t_search_end)
{
    const std::vector<obs::ProfEntry> after = obs::ProfSnapshot();
    const std::uint64_t timeline_nanos =
        obs::ProfNanos(after, "eval.timeline") -
        obs::ProfNanos(before, "eval.timeline");
    const std::uint64_t delta_timeline_nanos =
        obs::ProfNanos(after, "eval.timeline.delta") -
        obs::ProfNanos(before, "eval.timeline.delta");
    const double timeline_share =
        search_seconds > 0.0
            ? std::min(1.0, (timeline_nanos + delta_timeline_nanos) *
                                1e-9 / search_seconds)
            : 0.0;
    // Of all timeline simulation time, the fraction spent on the
    // windowed delta path (1.0 = every re-simulation was windowed).
    const double delta_share =
        timeline_nanos + delta_timeline_nanos > 0
            ? static_cast<double>(delta_timeline_nanos) /
                  static_cast<double>(timeline_nanos +
                                      delta_timeline_nanos)
            : 0.0;

    auto &reg = obs::MetricsRegistry::Global();
    reg.GetCounter("pipeline.requests").Add();
    reg.GetCounter("pipeline.search_nanos")
        .Add(static_cast<std::uint64_t>(search_seconds * 1e9));
    reg.GetCounter("pipeline.timeline_eval_nanos")
        .Add(timeline_nanos + delta_timeline_nanos);
    if (timeline_nanos + delta_timeline_nanos > 0) {
        reg.GetGauge("search.timeline_eval_share").Set(timeline_share);
        reg.GetGauge("search.timeline_delta_share").Set(delta_share);
    }
    reg.GetHistogram("pipeline.search_seconds").Observe(search_seconds);

    obs::Tracer *const tracer = request.trace;
    // Per-phase time/invocation aggregates from the hot-path prof sites
    // (the hot path records aggregates, not per-call events; see
    // obs/prof.h). Deltas are attributed to this request; they are
    // approximate when pipelines run concurrently, since prof sites are
    // process-wide. Each active site feeds a prof.<name>.{calls,nanos}
    // counter pair and — for traced requests — one synthesized
    // aggregate span.
    for (const obs::ProfEntry &e : after) {
        std::uint64_t before_calls = 0, before_nanos = 0;
        for (const obs::ProfEntry &b : before) {
            if (b.name == e.name) {
                before_calls = b.calls;
                before_nanos = b.nanos;
                break;
            }
        }
        const std::uint64_t delta_calls = e.calls - before_calls;
        const std::uint64_t delta_nanos = e.nanos - before_nanos;
        if (delta_calls == 0 && delta_nanos == 0) continue;
        reg.GetCounter("prof." + e.name + ".calls").Add(delta_calls);
        reg.GetCounter("prof." + e.name + ".nanos").Add(delta_nanos);
        if (tracer) {
            std::vector<obs::SpanArg> args;
            args.push_back({"calls", Json::U64(delta_calls)});
            tracer->AddAggregate(e.name.c_str(), t_search_end,
                                 static_cast<std::int64_t>(delta_nanos),
                                 std::move(args));
        }
    }
    if (!tracer) return;
    std::vector<obs::SpanArg> args;
    args.push_back({"scheduler", Json::Str(request.scheduler)});
    args.push_back({"timeline_eval_share", Json::Number(timeline_share)});
    args.push_back({"timeline_delta_share", Json::Number(delta_share)});
    tracer->AddComplete("pipeline.search", t_search, t_search_end,
                        std::move(args));
}

}  // namespace

Scheduler::Scheduler() : Scheduler(Options{}) {}

Scheduler::Scheduler(const Options &options)
    : options_(options),
      models_(ModelRegistry::WithBuiltins()),
      hardware_(HardwareRegistry::WithBuiltins()),
      schedulers_(SchedulerRegistry::WithBuiltins()),
      memory_models_(MemoryModelRegistry::WithBuiltins())
{
}

Scheduler::~Scheduler()
{
    std::vector<std::thread> workers;
    {
        MutexLock lock(mutex_);
        stopping_ = true;
        workers = std::move(workers_);
    }
    work_cv_.NotifyAll();
    for (std::thread &t : workers) t.join();
}

ScheduleResult
Scheduler::Schedule(const ScheduleRequest &request)
{
    // A caller-provided cancel flag serves both the phase-granular
    // checks (the `cancelled` parameter) and, via the request itself,
    // the iteration-granular checks inside the search.
    return RunPipeline(request, /*id=*/0, request.cancel);
}

void
Scheduler::EnsureWorkersLocked()
{
    if (!workers_.empty()) return;
    const int n = std::max(1, options_.workers);
    workers_.reserve(n);
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { WorkerLoop(); });
}

Scheduler::JobId
Scheduler::Submit(ScheduleRequest request)
{
    auto job = std::make_shared<Job>();
    MutexLock lock(mutex_);
    EnsureWorkersLocked();
    job->id = next_id_++;
    job->request = std::move(request);
    jobs_[job->id] = job;
    queue_.push_back(job);
    work_cv_.NotifyOne();
    return job->id;
}

bool
Scheduler::Cancel(JobId id)
{
    MutexLock lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->done) return false;
    it->second->cancelled.store(true, std::memory_order_relaxed);
    return true;
}

bool
Scheduler::Done(JobId id) const
{
    MutexLock lock(mutex_);
    auto it = jobs_.find(id);
    return it != jobs_.end() && it->second->done;
}

ScheduleResult
Scheduler::Wait(JobId id)
{
    MutexLock lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        ScheduleResult result;
        result.error = "unknown job id " + std::to_string(id) +
                       " (results can be collected once)";
        return result;
    }
    std::shared_ptr<Job> job = it->second;
    while (!job->done) done_cv_.Wait(mutex_);
    jobs_.erase(id);
    return std::move(job->result);
}

void
Scheduler::Discard(JobId id)
{
    MutexLock lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    if (it->second->done) {
        jobs_.erase(it);
        return;
    }
    it->second->cancelled.store(true, std::memory_order_relaxed);
    it->second->discarded = true;  // the worker erases it on completion
}

void
Scheduler::WorkerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        int granted_threads = 1;
        {
            MutexLock lock(mutex_);
            while (!stopping_ && queue_.empty()) work_cv_.Wait(mutex_);
            if (queue_.empty()) return;  // stopping_ and fully drained
            job = queue_.front();
            queue_.pop_front();
            ++inflight_;
            // Multiplex the shared driver-thread budget over the jobs
            // currently executing. Thread counts never change results,
            // only wall-clock time, so this stays deterministic.
            int total = options_.driver_threads;
            if (total <= 0) {
                unsigned hc = std::thread::hardware_concurrency();
                total = hc > 0 ? static_cast<int>(hc) : 1;
            }
            granted_threads = std::max(1, total / std::max(1, inflight_));
        }

        ScheduleResult result;
        if (job->cancelled.load(std::memory_order_relaxed)) {
            result.ok = false;
            result.error = "cancelled";
            EchoRequest(job->request, &result);
        } else {
            ScheduleRequest req = job->request;
            if (req.threads <= 0) req.threads = granted_threads;
            // The job's flag is the one Cancel() sets; it reaches the
            // search loops through SomaOptionsForRequest.
            req.cancel = &job->cancelled;
            result = RunPipeline(req, job->id, &job->cancelled);
        }

        {
            MutexLock lock(mutex_);
            --inflight_;
            job->result = std::move(result);
            job->done = true;
            if (job->discarded) jobs_.erase(job->id);
        }
        done_cv_.NotifyAll();
    }
}

ScheduleResult
Scheduler::RunPipeline(const ScheduleRequest &original, JobId id,
                       const std::atomic<bool> *cancelled)
{
    const auto t_start = MonotonicNow();
    // One deadline anchor for the whole request: the search loops and
    // the deadline_expired flag below compare against the same instant,
    // so a search that ran its full budget is never mislabeled expired.
    ScheduleRequest request = original;
    if (request.deadline_ms > 0 &&
        request.deadline_tp.time_since_epoch().count() == 0) {
        request.deadline_tp =
            t_start + std::chrono::milliseconds(request.deadline_ms);
    }
    ScheduleResult result;
    EchoRequest(request, &result);

    // Observability is read-only: spans, prof aggregates and registry
    // metrics observe pipeline state but never steer it, so results are
    // byte-identical with and without a tracer (pinned by test). A
    // traced request additionally holds hot-path profiling enabled so
    // the synthesized eval.* aggregate spans below always carry data.
    obs::Tracer *const tracer = request.trace;
    std::optional<obs::ProfEnableScope> prof_hold;
    if (tracer) prof_hold.emplace();
    const std::vector<obs::ProfEntry> prof_before = obs::ProfSnapshot();

    auto progress = [&](const char *phase) {
        if (!request.on_progress) return;
        ProgressEvent event;
        event.job = id;
        event.phase = phase;
        event.elapsed_seconds = SecondsSince(t_start);
        request.on_progress(event);
    };
    auto fail = [&](std::string why) {
        result.ok = false;
        result.error = std::move(why);
        result.stats.total_seconds = SecondsSince(t_start);
        return std::move(result);
    };
    auto is_cancelled = [&] {
        return cancelled && cancelled->load(std::memory_order_relaxed);
    };

    // ---- build: resolve workload, hardware point and strategy.
    progress("build");
    std::string err;
    std::shared_ptr<const Graph> graph = request.graph;
    if (!graph) {
        Graph built;
        if (!models_.Build(request.model, request.batch, &built, &err))
            return fail(err);
        graph = std::make_shared<const Graph>(std::move(built));
    }
    result.graph = graph;

    HardwareConfig hw;
    if (!hardware_.Make(request.hardware, &hw, &err)) return fail(err);
    if (request.gbuf_bytes > 0) hw.gbuf_bytes = request.gbuf_bytes;
    if (request.dram_gbps > 0) hw.dram_gbps = request.dram_gbps;
    if (!request.memory_model.empty()) {
        const MemoryModel *mm = memory_models_.Find(request.memory_model,
                                                    &err);
        if (!mm) return fail(err);
        hw.memory_model = mm;
    }

    const SchedulerFn *scheduler_fn =
        schedulers_.Find(request.scheduler, &err);
    if (!scheduler_fn) return fail(err);
    const SomaOptions opts = SomaOptionsForRequest(request);

    if (tracer) {
        std::vector<obs::SpanArg> args;
        args.push_back({"model", Json::Str(result.model)});
        args.push_back({"hardware", Json::Str(result.hardware)});
        tracer->AddComplete("pipeline.build", t_start, MonotonicNow(),
                            std::move(args));
    }

    if (is_cancelled()) return fail("cancelled");

    // ---- search: the expensive phase.
    progress("search");
    const auto t_search = MonotonicNow();
    SchedulerRunResult run = (*scheduler_fn)(*graph, hw, request, opts);
    const auto t_search_end = MonotonicNow();
    result.stats.search_seconds =
        std::chrono::duration<double>(t_search_end - t_search).count();
    RecordSearchObservations(request, result.stats.search_seconds,
                             prof_before, t_search, t_search_end);

    result.scheme = run.lfa.ToString(*graph);
    result.cost = run.cost;
    result.report = run.report;
    result.stage1_report = run.stage1_report;
    result.lfa = std::move(run.lfa);
    result.parsed = std::move(run.parsed);
    result.dlsa = std::move(run.dlsa);
    result.stage1_dlsa = std::move(run.stage1_dlsa);
    result.stats.iterations = run.stats.iterations;
    result.stats.evaluated = run.stats.evaluated;
    result.stats.accepted = run.stats.accepted;
    result.stats.improved = run.stats.improved;
    result.stats.outer_iterations = run.outer_iterations;

    // Deadline bookkeeping: if the request's cutoff has passed, the
    // search loops were truncated (they poll the same time point), so
    // the result is best-so-far, not full-budget.
    result.deadline_expired =
        request.deadline_ms > 0 && MonotonicNow() >= request.deadline_tp;

    if (is_cancelled()) return fail("cancelled");

    if (!result.report.valid) {
        if (result.deadline_expired)
            return fail("deadline expired (" +
                        std::to_string(request.deadline_ms) +
                        " ms) before a valid schedule was found");
        std::string why = "no valid schedule found";
        if (!result.report.why_invalid.empty())
            why += ": " + result.report.why_invalid;
        return fail(std::move(why));
    }
    result.ok = true;

    // ---- artifacts: lower / render only what was asked for.
    progress("artifacts");
    const auto t_artifacts = MonotonicNow();
    const ArtifactRequest &arts = request.artifacts;
    if (arts.ir || arts.instructions) {
        IrModule ir = GenerateIr(*graph, result.parsed, result.dlsa);
        if (arts.ir) result.ir_text = ir.ToText();
        if (arts.instructions) {
            Program prog = GenerateInstructions(ir);
            result.asm_text = prog.ToText();
            result.num_instructions =
                static_cast<int>(prog.instructions.size());
            result.num_loads = prog.NumLoads();
            result.num_stores = prog.NumStores();
            result.num_computes = prog.NumComputes();
        }
    }
    if (arts.traces) {
        std::ostringstream compute, dram, buffer;
        WriteComputeTraceCsv(compute, *graph, result.parsed,
                             result.report);
        WriteDramTraceCsv(dram, *graph, result.parsed, result.dlsa,
                          result.report);
        WriteBufferTraceCsv(buffer, result.parsed, result.dlsa);
        result.compute_csv = compute.str();
        result.dram_csv = dram.str();
        result.buffer_csv = buffer.str();
    }
    if (arts.execution_graph) {
        std::ostringstream os;
        PrintExecutionGraph(os, *graph, result.parsed, result.dlsa,
                            result.report, arts.execution_graph_rows);
        result.execution_graph = os.str();
        if (result.stage1_report.valid) {
            std::ostringstream os1;
            PrintExecutionGraph(os1, *graph, result.parsed,
                                result.stage1_dlsa, result.stage1_report,
                                arts.execution_graph_rows);
            result.stage1_execution_graph = os1.str();
        }
    }

    if (tracer)
        tracer->AddComplete("pipeline.artifacts", t_artifacts,
                            MonotonicNow());

    // ---- memory validation: re-time the final schedule under the
    // banked replay and publish the analytical-vs-banked gap. Purely
    // observational (metrics only, result bytes untouched), so it runs
    // after the result is fully assembled.
    if (request.validate_memory) {
        const auto t_validate = MonotonicNow();
        const MemoryValidationResult mv = ValidateMemoryTiming(
            *graph, hw, result.parsed, result.dlsa);
        auto &reg = obs::MetricsRegistry::Global();
        reg.GetCounter("eval.dram.validations").Add();
        if (mv.ok) {
            reg.GetGauge("memory.validation_gap_pct").Set(mv.gap_pct);
            reg.GetGauge("memory.analytical_latency")
                .Set(mv.analytical_latency);
            reg.GetGauge("memory.banked_latency").Set(mv.banked_latency);
            reg.GetCounter("eval.dram.transactions")
                .Add(mv.replay.transactions);
            reg.GetCounter("eval.dram.row_hits").Add(mv.replay.row_hits);
            reg.GetCounter("eval.dram.row_misses")
                .Add(mv.replay.row_misses);
            reg.GetCounter("eval.dram.row_conflicts")
                .Add(mv.replay.row_conflicts);
            reg.GetCounter("eval.dram.turnarounds")
                .Add(mv.replay.turnarounds);
        } else {
            reg.GetCounter("eval.dram.validation_errors").Add();
        }
        if (tracer) {
            std::vector<obs::SpanArg> args;
            args.push_back({"gap_pct", Json::Number(mv.gap_pct)});
            tracer->AddComplete("pipeline.validate_memory", t_validate,
                                MonotonicNow(), std::move(args));
        }
    }

    progress("done");
    result.stats.total_seconds = SecondsSince(t_start);
    return result;
}

}  // namespace soma
