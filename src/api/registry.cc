#include "api/registry.h"

#include <limits>

#include "baselines/cocco.h"
#include "corearray/core_array.h"
#include "search/lfa_stage.h"
#include "search/soma.h"
#include "workload/models.h"

namespace soma {

namespace {

std::string
JoinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty()) out += ", ";
        out += n;
    }
    return out;
}

}  // namespace

// ----------------------------------------------------------- ModelRegistry

ModelRegistry
ModelRegistry::WithBuiltins()
{
    ModelRegistry reg;
    for (const std::string &name : AvailableModels()) {
        reg.Register(name, [name](int batch) {
            return BuildModelByName(name, batch);
        });
    }
    return reg;
}

void
ModelRegistry::Register(const std::string &name, Builder builder)
{
    for (auto &kv : builders_) {
        if (kv.first == name) {
            kv.second = std::move(builder);
            return;
        }
    }
    builders_.emplace_back(name, std::move(builder));
}

bool
ModelRegistry::Has(const std::string &name) const
{
    for (const auto &kv : builders_)
        if (kv.first == name) return true;
    return false;
}

std::vector<std::string>
ModelRegistry::Names() const
{
    std::vector<std::string> names;
    names.reserve(builders_.size());
    for (const auto &kv : builders_) names.push_back(kv.first);
    return names;
}

bool
ModelRegistry::Build(const std::string &name, int batch, Graph *out,
                     std::string *err) const
{
    for (const auto &kv : builders_) {
        if (kv.first == name) {
            *out = kv.second(batch);
            return true;
        }
    }
    if (err)
        *err = "unknown model \"" + name + "\" (registered: " +
               JoinNames(Names()) + ")";
    return false;
}

// -------------------------------------------------------- HardwareRegistry

HardwareRegistry
HardwareRegistry::WithBuiltins()
{
    HardwareRegistry reg;
    reg.Register("edge", [] { return EdgeAccelerator(); });
    reg.Register("cloud", [] { return CloudAccelerator(); });
    return reg;
}

void
HardwareRegistry::Register(const std::string &name, Factory factory)
{
    for (auto &kv : factories_) {
        if (kv.first == name) {
            kv.second = std::move(factory);
            return;
        }
    }
    factories_.emplace_back(name, std::move(factory));
}

bool
HardwareRegistry::Has(const std::string &name) const
{
    for (const auto &kv : factories_)
        if (kv.first == name) return true;
    return false;
}

std::vector<std::string>
HardwareRegistry::Names() const
{
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto &kv : factories_) names.push_back(kv.first);
    return names;
}

bool
HardwareRegistry::Make(const std::string &name, HardwareConfig *out,
                       std::string *err) const
{
    for (const auto &kv : factories_) {
        if (kv.first == name) {
            *out = kv.second();
            return true;
        }
    }
    if (err)
        *err = "unknown hardware \"" + name + "\" (registered: " +
               JoinNames(Names()) + ")";
    return false;
}

// ------------------------------------------------------- SchedulerRegistry

namespace {

SchedulerRunResult
RunSomaScheduler(const Graph &graph, const HardwareConfig &hw,
                 const ScheduleRequest &, const SomaOptions &opts)
{
    SomaSearchResult r = RunSoma(graph, hw, opts);
    SchedulerRunResult out;
    out.lfa = std::move(r.lfa);
    out.parsed = std::move(r.parsed);
    out.dlsa = std::move(r.dlsa);
    out.stage1_dlsa = std::move(r.stage1_dlsa);
    out.report = r.report;
    out.stage1_report = r.stage1_report;
    out.cost = r.cost;
    out.outer_iterations = r.outer_iterations;
    AccumulateSaStats(&out.stats, r.lfa_stats);
    AccumulateSaStats(&out.stats, r.dlsa_stats);
    return out;
}

SchedulerRunResult
RunCoccoScheduler(const Graph &graph, const HardwareConfig &hw,
                  const ScheduleRequest &request, const SomaOptions &)
{
    CoccoResult r = RunCocco(graph, hw, CoccoOptionsForRequest(request));
    SchedulerRunResult out;
    out.lfa = std::move(r.lfa);
    out.parsed = std::move(r.parsed);
    out.dlsa = r.dlsa;
    out.stage1_dlsa = std::move(r.dlsa);
    out.report = r.report;
    out.cost = r.cost;
    out.stats = r.stats;
    out.outer_iterations = 1;
    return out;
}

SchedulerRunResult
RunLfaOnlyScheduler(const Graph &graph, const HardwareConfig &hw,
                    const ScheduleRequest &, const SomaOptions &raw_opts)
{
    SomaOptions opts = PropagateSomaOptions(raw_opts);
    CoreArrayEvaluator core_eval(
        graph, hw,
        opts.lfa.tile_cost_memo ? opts.lfa.tile_cost_memo
                                : std::make_shared<TileCostMemo>());
    Rng rng(opts.seed);
    LfaStageResult r = RunLfaStage(graph, hw, core_eval, hw.gbuf_bytes,
                                   opts.lfa, rng);
    SchedulerRunResult out;
    out.lfa = std::move(r.lfa);
    out.parsed = std::move(r.parsed);
    out.dlsa = r.dlsa;
    out.stage1_dlsa = std::move(r.dlsa);
    out.report = r.report;
    out.cost = r.cost;
    out.stats = r.stats;
    out.outer_iterations = 1;
    return out;
}

}  // namespace

SchedulerRegistry
SchedulerRegistry::WithBuiltins()
{
    SchedulerRegistry reg;
    reg.Register("soma", RunSomaScheduler);
    reg.Register("cocco", RunCoccoScheduler);
    reg.Register("lfa-only", RunLfaOnlyScheduler);
    return reg;
}

void
SchedulerRegistry::Register(const std::string &name, SchedulerFn fn)
{
    for (auto &kv : fns_) {
        if (kv.first == name) {
            kv.second = std::move(fn);
            return;
        }
    }
    fns_.emplace_back(name, std::move(fn));
}

bool
SchedulerRegistry::Has(const std::string &name) const
{
    for (const auto &kv : fns_)
        if (kv.first == name) return true;
    return false;
}

std::vector<std::string>
SchedulerRegistry::Names() const
{
    std::vector<std::string> names;
    names.reserve(fns_.size());
    for (const auto &kv : fns_) names.push_back(kv.first);
    return names;
}

const SchedulerFn *
SchedulerRegistry::Find(const std::string &name, std::string *err) const
{
    for (const auto &kv : fns_)
        if (kv.first == name) return &kv.second;
    if (err)
        *err = "unknown scheduler \"" + name + "\" (registered: " +
               JoinNames(Names()) + ")";
    return nullptr;
}

}  // namespace soma
