/**
 * @file
 * The declarative half of the unified scheduler API: a ScheduleRequest
 * describes *what* to schedule (workload, hardware point, objective,
 * search profile, scheduler, artifacts) and a ScheduleResult carries
 * everything a consumer may want back (scheme, EvalReport, optional
 * IR / instruction / trace artifacts, search statistics, timings).
 *
 * Both sides serialize to JSON (the somac CLI's wire format). The JSON
 * encoding is lossless for every scheduling-relevant field: doubles are
 * written with 17 significant digits and seeds as exact integers, so a
 * request round-tripped through JSON produces bit-identical results and
 * a round-tripped result compares bit-for-bit on latency/energy.
 *
 * Inline graphs (ScheduleRequest::graph) are an in-process convenience
 * and intentionally have no JSON form — named models go through the
 * ModelRegistry instead.
 */
#ifndef SOMA_API_REQUEST_H
#define SOMA_API_REQUEST_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "baselines/cocco.h"
#include "common/json.h"
#include "search/soma.h"
#include "sim/report.h"
#include "workload/graph.h"

namespace soma {

namespace obs {
class Tracer;
}

/** Search effort presets mapping onto the DESIGN.md budget table. */
enum class SearchProfile { kQuick, kDefault, kFull };

const char *ToString(SearchProfile profile);
bool ParseSearchProfile(const std::string &name, SearchProfile *out);

/** Which optional outputs the pipeline should materialize. */
struct ArtifactRequest {
    bool ir = false;            ///< textual IR (compiler/ir.h)
    bool instructions = false;  ///< load/store/compute stream (.asm text)
    bool traces = false;        ///< compute/dram/buffer CSV traces
    bool execution_graph = false;  ///< Fig. 8 style text rendering
    int execution_graph_rows = 40;
};

/** Progress notification fired at pipeline phase boundaries. */
struct ProgressEvent {
    std::uint64_t job = 0;  ///< 0 for synchronous Schedule() calls
    std::string phase;      ///< "build" | "search" | "artifacts" | "done"
    double elapsed_seconds = 0.0;
};

/**
 * One scheduling request. Defaults describe the cheapest sensible run:
 * quick profile, edge hardware, the SoMa two-stage scheduler, no
 * artifacts.
 */
struct ScheduleRequest {
    /** Workload: a ModelRegistry name plus batch size... */
    std::string model;
    int batch = 1;
    /** ...or an inline graph, which takes precedence over `model`.
     *  In-process only (not serialized). */
    std::shared_ptr<const Graph> graph;

    /** HardwareRegistry name, plus optional DSE-style overrides
     *  (0 = keep the registry preset's value). */
    std::string hardware = "edge";
    Bytes gbuf_bytes = 0;
    double dram_gbps = 0.0;

    /**
     * MemoryModelRegistry name steering the evaluator's DRAM-timing
     * seam: "" (default, = "analytical"), "analytical", "banked".
     * Result-affecting, so it is serialized and fingerprint-included;
     * the empty default is *omitted* from JSON, which keeps every
     * pre-seam fingerprint (and cached result) valid.
     */
    std::string memory_model;

    /**
     * Re-time the final schedule under the banked model's trace replay
     * and publish the analytical-vs-banked gap (metrics
     * memory.validation_gap_pct, eval.dram.*). Observational: result
     * bytes are unchanged, so like `trace` it is not serialized and is
     * excluded from Fingerprint(). The CLI face is
     * `somac run --validate-memory` (implied by --memory-model banked).
     */
    bool validate_memory = false;

    /** SchedulerRegistry name: "soma", "cocco", "lfa-only", ... */
    std::string scheduler = "soma";
    SearchProfile profile = SearchProfile::kQuick;
    std::uint64_t seed = 1;

    /** Objective exponents: Energy^n x Delay^m. */
    double cost_n = 1.0;
    double cost_m = 1.0;

    /** SearchDriver overrides (0 = profile default). `chains` changes
     *  results deterministically; `threads` never does. */
    int chains = 0;
    int threads = 0;

    /**
     * Wall-clock budget for the whole request in milliseconds (0 =
     * none). The search polls it iteration-granularly and stops early
     * with its best-so-far once expired; the result then carries
     * deadline_expired = true (ok if a valid scheme was found by then,
     * an error otherwise). A QoS knob, not identity: requests that
     * finish within their deadline are bit-identical to unconstrained
     * runs, so Fingerprint() excludes it (like `threads`).
     */
    int deadline_ms = 0;

    ArtifactRequest artifacts;

    /** Fired from the executing thread at phase boundaries. Not
     *  serialized. */
    std::function<void(const ProgressEvent &)> on_progress;

    /**
     * Cooperative cancel flag polled inside the search (every
     * SaOptions::cancel_check_interval iterations) and at phase
     * boundaries. Synchronous callers may point it at their own atomic
     * to cancel a running Schedule() from another thread; Submit()
     * overrides it with the job's Cancel() flag. Not serialized.
     */
    const std::atomic<bool> *cancel = nullptr;

    /**
     * The resolved deadline_ms cutoff. The facade anchors it at
     * pipeline start, so "expired" means the same instant to the
     * search loops and to the result's deadline_expired flag. Leave
     * default: set internally (a caller-set value is honored, for
     * tests). Not serialized.
     */
    std::chrono::steady_clock::time_point deadline_tp{};

    /**
     * Cross-request warm caches for the request's (graph, hardware
     * preset), injected by the service layer's WarmStateCache (or set
     * directly by in-process callers that run many searches over one
     * workload). Purely an accelerator: the caches hold content-
     * addressed pure values, so presence never changes result bytes —
     * which is why, like `threads`, it is not serialized and excluded
     * from Fingerprint().
     */
    SearchWarmState warm_state;

    /**
     * Optional span tracer (obs/trace.h): when set, the pipeline and
     * the search stages record phase spans onto it (Chrome trace-event
     * JSON via Tracer::ToJson; `somac run --trace` is the CLI face).
     * Observational only — results are byte-identical with and without
     * a tracer (pinned by test) — so, like `threads`, it is not
     * serialized and excluded from Fingerprint().
     */
    obs::Tracer *trace = nullptr;

    Json ToJson() const;
    /** Strict: unknown keys and type mismatches are errors. */
    static bool FromJson(const Json &json, ScheduleRequest *out,
                         std::string *err);

    /**
     * The request's identity as JSON: ToJson() minus the fields that
     * never change result bytes (`threads`, `deadline_ms`). Dump it
     * with Json::CanonicalDump() for the canonical request text.
     */
    Json CanonicalJson() const;

    /**
     * Stable 64-bit identity: Fnv1a64 over CanonicalDump() of
     * CanonicalJson(). Two requests fingerprint equal iff every
     * result-affecting field matches, regardless of JSON key order or
     * which process computed it — the key of the service layer's
     * result cache and of `somac fingerprint`. Inline-graph requests
     * hash their graph *name* only (the graph itself has no JSON
     * form), so the service layer never caches them.
     */
    std::uint64_t Fingerprint() const;
};

/** Flattened search counters + wall-clock timings of one request. */
struct SearchStatsSummary {
    long long iterations = 0;  ///< SA budget consumed, all stages/chains
    long long evaluated = 0;   ///< candidates actually evaluated
    long long accepted = 0;
    long long improved = 0;
    int outer_iterations = 0;  ///< buffer-allocator iterations
    double search_seconds = 0.0;  ///< exploration only
    double total_seconds = 0.0;   ///< build + search + artifacts
};

/**
 * Everything that comes back from one request. `ok` is the master
 * switch: when false, `error` explains and only the echo fields are
 * meaningful. The in-process payload section carries the raw encodings
 * for consumers that keep computing (IR generation, execution-graph
 * rendering, VM replay); it is not serialized.
 */
struct ScheduleResult {
    bool ok = false;
    std::string error;
    /** True when ScheduleRequest::deadline_ms expired during the run:
     *  the search was truncated and `report` (if valid) is the
     *  best-so-far, not the full-budget result. Distinct from
     *  cancellation (error == "cancelled"). */
    bool deadline_expired = false;

    // Request echo.
    std::string model;
    int batch = 1;
    std::string hardware;
    std::string memory_model;  ///< "" = analytical default
    std::string scheduler;
    SearchProfile profile = SearchProfile::kQuick;
    std::uint64_t seed = 1;

    std::string scheme;  ///< human-readable LFA (LfaEncoding::ToString)
    double cost = 0.0;   ///< Energy^n x Delay^m of `report`
    EvalReport report;
    EvalReport stage1_report;  ///< "Ours_1"; valid only for soma runs

    SearchStatsSummary stats;

    // Artifacts (empty unless requested and ok).
    std::string ir_text;
    std::string asm_text;
    std::string compute_csv;
    std::string dram_csv;
    std::string buffer_csv;
    std::string execution_graph;
    std::string stage1_execution_graph;  ///< soma runs only
    int num_instructions = 0;  ///< filled with `instructions` artifact
    int num_loads = 0;
    int num_stores = 0;
    int num_computes = 0;

    // In-process payload (not serialized).
    std::shared_ptr<const Graph> graph;
    LfaEncoding lfa;
    ParsedSchedule parsed;
    DlsaEncoding dlsa;
    DlsaEncoding stage1_dlsa;

    Json ToJson() const;
    /** Reconstructs every serialized field (scalars + artifacts); the
     *  in-process payload stays empty. */
    static bool FromJson(const Json &json, ScheduleResult *out,
                         std::string *err);
};

/** The scalar EvalReport fields as JSON (timelines are not encoded). */
Json ReportToJson(const EvalReport &report);
bool ReportFromJson(const Json &json, EvalReport *out, std::string *err);

/**
 * Resolve a request's profile/seed/objective/driver overrides into the
 * canonical SomaOptions (Quick/Default/FullSomaOptions + overrides).
 * The same resolution feeds every registered scheduler, so "same
 * request" means "same search" no matter which path ran it.
 */
SomaOptions SomaOptionsForRequest(const ScheduleRequest &request);

/** The Cocco-baseline equivalent (mirrors the bench profiles). */
CoccoOptions CoccoOptionsForRequest(const ScheduleRequest &request);

}  // namespace soma

#endif  // SOMA_API_REQUEST_H
