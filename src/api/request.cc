#include "api/request.h"

#include <chrono>
#include <cmath>

#include "common/hash.h"
#include "obs/clock.h"

namespace soma {

const char *
ToString(SearchProfile profile)
{
    switch (profile) {
      case SearchProfile::kQuick: return "quick";
      case SearchProfile::kDefault: return "default";
      case SearchProfile::kFull: return "full";
    }
    return "?";
}

bool
ParseSearchProfile(const std::string &name, SearchProfile *out)
{
    if (name == "quick") *out = SearchProfile::kQuick;
    else if (name == "default") *out = SearchProfile::kDefault;
    else if (name == "full") *out = SearchProfile::kFull;
    else return false;
    return true;
}

namespace {

bool
TypeError(std::string *err, const std::string &key, const char *want)
{
    if (err) *err = "field \"" + key + "\" must be " + want;
    return false;
}

bool
ExpectNumber(const Json &v, const std::string &key, std::string *err)
{
    return v.IsNumber() ? true : TypeError(err, key, "a number");
}

bool
ExpectString(const Json &v, const std::string &key, std::string *err)
{
    return v.IsString() ? true : TypeError(err, key, "a string");
}

bool
ExpectBool(const Json &v, const std::string &key, std::string *err)
{
    return v.IsBool() ? true : TypeError(err, key, "a boolean");
}

// Sanity bound for counts (batch, chains, threads, rows): large enough
// for any real request, small enough to catch garbage numerics.
constexpr std::int64_t kMaxCount = 1000000;

bool
RangeError(std::string *err, const std::string &key, const char *range)
{
    if (err) *err = "field \"" + key + "\" must be " + range;
    return false;
}

/** Number in [@p lo, kMaxCount], range-checked before narrowing. */
bool
CountFromJson(const Json &value, const std::string &key, std::int64_t lo,
              int *out, std::string *err)
{
    if (!ExpectNumber(value, key, err)) return false;
    const std::int64_t v = value.AsInt();
    if (v < lo || v > kMaxCount)
        return RangeError(err, key,
                          lo == 0 ? "in [0, 1000000]" : "in [1, 1000000]");
    *out = static_cast<int>(v);
    return true;
}

bool
FiniteFromJson(const Json &value, const std::string &key, double *out,
               std::string *err)
{
    if (!ExpectNumber(value, key, err)) return false;
    const double v = value.AsDouble();
    if (!std::isfinite(v) || v < 0)
        return RangeError(err, key, "a non-negative finite number");
    *out = v;
    return true;
}

bool
ArtifactsFromJson(const Json &json, ArtifactRequest *out, std::string *err)
{
    if (!json.IsObject())
        return TypeError(err, "artifacts", "an object");
    for (const auto &[key, value] : json.items()) {
        if (key == "ir") {
            if (!ExpectBool(value, key, err)) return false;
            out->ir = value.AsBool();
        } else if (key == "instructions") {
            if (!ExpectBool(value, key, err)) return false;
            out->instructions = value.AsBool();
        } else if (key == "traces") {
            if (!ExpectBool(value, key, err)) return false;
            out->traces = value.AsBool();
        } else if (key == "execution_graph") {
            if (!ExpectBool(value, key, err)) return false;
            out->execution_graph = value.AsBool();
        } else if (key == "execution_graph_rows") {
            if (!CountFromJson(value, key, 0, &out->execution_graph_rows,
                               err))
                return false;
        } else {
            if (err) *err = "unknown artifacts field \"" + key + "\"";
            return false;
        }
    }
    return true;
}

}  // namespace

Json
ScheduleRequest::ToJson() const
{
    Json json = Json::Object();
    if (graph) {
        // Inline graphs cannot cross the process boundary; record the
        // name so dumps stay informative. FromJson rejects the key.
        json.Set("inline_model", Json::Str(graph->name()));
    } else {
        json.Set("model", Json::Str(model));
    }
    json.Set("batch", Json::Int(batch));
    json.Set("hardware", Json::Str(hardware));
    if (gbuf_bytes > 0) json.Set("gbuf_bytes", Json::Int(gbuf_bytes));
    if (dram_gbps > 0) json.Set("dram_gbps", Json::Number(dram_gbps));
    // Default ("" = analytical) omitted: pre-seam fingerprints and
    // cached results stay valid.
    if (!memory_model.empty())
        json.Set("memory_model", Json::Str(memory_model));
    json.Set("scheduler", Json::Str(scheduler));
    json.Set("profile", Json::Str(ToString(profile)));
    json.Set("seed", Json::U64(seed));
    json.Set("cost_n", Json::Number(cost_n));
    json.Set("cost_m", Json::Number(cost_m));
    if (chains > 0) json.Set("chains", Json::Int(chains));
    if (threads > 0) json.Set("threads", Json::Int(threads));
    if (deadline_ms > 0) json.Set("deadline_ms", Json::Int(deadline_ms));
    Json arts = Json::Object();
    arts.Set("ir", Json::Bool(artifacts.ir));
    arts.Set("instructions", Json::Bool(artifacts.instructions));
    arts.Set("traces", Json::Bool(artifacts.traces));
    arts.Set("execution_graph", Json::Bool(artifacts.execution_graph));
    arts.Set("execution_graph_rows",
             Json::Int(artifacts.execution_graph_rows));
    json.Set("artifacts", std::move(arts));
    return json;
}

bool
ScheduleRequest::FromJson(const Json &json, ScheduleRequest *out,
                          std::string *err)
{
    if (!json.IsObject()) {
        if (err) *err = "request must be a JSON object";
        return false;
    }
    *out = ScheduleRequest();
    for (const auto &[key, value] : json.items()) {
        if (key == "model") {
            if (!ExpectString(value, key, err)) return false;
            out->model = value.AsString();
        } else if (key == "inline_model") {
            if (err)
                *err = "\"inline_model\" marks an in-process graph and "
                       "cannot be scheduled from JSON; use \"model\" "
                       "with a registered name";
            return false;
        } else if (key == "batch") {
            if (!CountFromJson(value, key, 1, &out->batch, err))
                return false;
        } else if (key == "hardware") {
            if (!ExpectString(value, key, err)) return false;
            out->hardware = value.AsString();
        } else if (key == "gbuf_bytes") {
            if (!ExpectNumber(value, key, err)) return false;
            out->gbuf_bytes = value.AsInt();
            if (out->gbuf_bytes < 0)
                return RangeError(err, key, "a non-negative integer");
        } else if (key == "dram_gbps") {
            if (!FiniteFromJson(value, key, &out->dram_gbps, err))
                return false;
        } else if (key == "memory_model") {
            if (!ExpectString(value, key, err)) return false;
            out->memory_model = value.AsString();
        } else if (key == "scheduler") {
            if (!ExpectString(value, key, err)) return false;
            out->scheduler = value.AsString();
        } else if (key == "profile") {
            if (!ExpectString(value, key, err)) return false;
            if (!ParseSearchProfile(value.AsString(), &out->profile)) {
                if (err)
                    *err = "unknown profile \"" + value.AsString() +
                           "\" (expected quick, default or full)";
                return false;
            }
        } else if (key == "seed") {
            if (!ExpectNumber(value, key, err)) return false;
            if (value.AsDouble() < 0)
                return RangeError(err, key, "a non-negative integer");
            out->seed = value.AsU64();
        } else if (key == "cost_n") {
            if (!FiniteFromJson(value, key, &out->cost_n, err))
                return false;
        } else if (key == "cost_m") {
            if (!FiniteFromJson(value, key, &out->cost_m, err))
                return false;
        } else if (key == "chains") {
            if (!CountFromJson(value, key, 0, &out->chains, err))
                return false;
        } else if (key == "threads") {
            if (!CountFromJson(value, key, 0, &out->threads, err))
                return false;
        } else if (key == "deadline_ms") {
            if (!ExpectNumber(value, key, err)) return false;
            const std::int64_t v = value.AsInt();
            if (v < 0 || v > 86400000)  // a day, in ms
                return RangeError(err, key, "in [0, 86400000]");
            out->deadline_ms = static_cast<int>(v);
        } else if (key == "artifacts") {
            if (!ArtifactsFromJson(value, &out->artifacts, err))
                return false;
        } else {
            if (err) *err = "unknown request field \"" + key + "\"";
            return false;
        }
    }
    return true;
}

Json
ScheduleRequest::CanonicalJson() const
{
    Json json = ToJson();
    json.Erase("threads");      // never changes results
    json.Erase("deadline_ms");  // QoS truncation, not identity
    return json;
}

std::uint64_t
ScheduleRequest::Fingerprint() const
{
    return Fnv1a64(CanonicalJson().CanonicalDump());
}

Json
ReportToJson(const EvalReport &report)
{
    Json json = Json::Object();
    json.Set("valid", Json::Bool(report.valid));
    if (!report.why_invalid.empty())
        json.Set("why_invalid", Json::Str(report.why_invalid));
    json.Set("latency", Json::Number(report.latency));
    json.Set("core_energy_j", Json::Number(report.core_energy_j));
    json.Set("dram_energy_j", Json::Number(report.dram_energy_j));
    json.Set("compute_busy", Json::Number(report.compute_busy));
    json.Set("dram_busy", Json::Number(report.dram_busy));
    json.Set("compute_util", Json::Number(report.compute_util));
    json.Set("dram_util", Json::Number(report.dram_util));
    json.Set("theory_max_util", Json::Number(report.theory_max_util));
    json.Set("peak_buffer", Json::Int(report.peak_buffer));
    json.Set("avg_buffer", Json::Number(report.avg_buffer));
    json.Set("dram_bytes", Json::Int(report.dram_bytes));
    json.Set("num_tiles", Json::Int(report.num_tiles));
    json.Set("num_tensors", Json::Int(report.num_tensors));
    json.Set("num_flgs", Json::Int(report.num_flgs));
    json.Set("num_lgs", Json::Int(report.num_lgs));
    return json;
}

bool
ReportFromJson(const Json &json, EvalReport *out, std::string *err)
{
    if (!json.IsObject()) {
        if (err) *err = "report must be a JSON object";
        return false;
    }
    *out = EvalReport();
    auto num = [&json](const char *key, double dflt) {
        const Json *v = json.Find(key);
        return v ? v->AsDouble(dflt) : dflt;
    };
    auto integer = [&json](const char *key, std::int64_t dflt) {
        const Json *v = json.Find(key);
        return v ? v->AsInt(dflt) : dflt;
    };
    if (const Json *v = json.Find("valid")) out->valid = v->AsBool();
    if (const Json *v = json.Find("why_invalid"))
        out->why_invalid = v->AsString();
    // A null latency is the JSON spelling of +inf (invalid schemes).
    const Json *lat = json.Find("latency");
    if (lat && lat->IsNumber()) out->latency = lat->AsDouble();
    out->core_energy_j = num("core_energy_j", 0.0);
    out->dram_energy_j = num("dram_energy_j", 0.0);
    out->compute_busy = num("compute_busy", 0.0);
    out->dram_busy = num("dram_busy", 0.0);
    out->compute_util = num("compute_util", 0.0);
    out->dram_util = num("dram_util", 0.0);
    out->theory_max_util = num("theory_max_util", 0.0);
    out->peak_buffer = integer("peak_buffer", 0);
    out->avg_buffer = num("avg_buffer", 0.0);
    out->dram_bytes = integer("dram_bytes", 0);
    out->num_tiles = static_cast<int>(integer("num_tiles", 0));
    out->num_tensors = static_cast<int>(integer("num_tensors", 0));
    out->num_flgs = static_cast<int>(integer("num_flgs", 0));
    out->num_lgs = static_cast<int>(integer("num_lgs", 0));
    return true;
}

Json
ScheduleResult::ToJson() const
{
    Json json = Json::Object();
    json.Set("ok", Json::Bool(ok));
    if (!error.empty()) json.Set("error", Json::Str(error));
    if (deadline_expired)
        json.Set("deadline_expired", Json::Bool(true));
    json.Set("model", Json::Str(model));
    json.Set("batch", Json::Int(batch));
    json.Set("hardware", Json::Str(hardware));
    if (!memory_model.empty())
        json.Set("memory_model", Json::Str(memory_model));
    json.Set("scheduler", Json::Str(scheduler));
    json.Set("profile", Json::Str(ToString(profile)));
    json.Set("seed", Json::U64(seed));
    json.Set("scheme", Json::Str(scheme));
    json.Set("cost", Json::Number(cost));
    json.Set("report", ReportToJson(report));
    if (stage1_report.valid)
        json.Set("stage1_report", ReportToJson(stage1_report));

    Json st = Json::Object();
    st.Set("iterations", Json::Int(stats.iterations));
    st.Set("evaluated", Json::Int(stats.evaluated));
    st.Set("accepted", Json::Int(stats.accepted));
    st.Set("improved", Json::Int(stats.improved));
    st.Set("outer_iterations", Json::Int(stats.outer_iterations));
    st.Set("search_seconds", Json::Number(stats.search_seconds));
    st.Set("total_seconds", Json::Number(stats.total_seconds));
    json.Set("stats", std::move(st));

    Json arts = Json::Object();
    if (!ir_text.empty()) arts.Set("ir", Json::Str(ir_text));
    if (!asm_text.empty()) arts.Set("asm", Json::Str(asm_text));
    if (!compute_csv.empty())
        arts.Set("compute_csv", Json::Str(compute_csv));
    if (!dram_csv.empty()) arts.Set("dram_csv", Json::Str(dram_csv));
    if (!buffer_csv.empty()) arts.Set("buffer_csv", Json::Str(buffer_csv));
    if (!execution_graph.empty())
        arts.Set("execution_graph", Json::Str(execution_graph));
    if (!stage1_execution_graph.empty())
        arts.Set("stage1_execution_graph",
                 Json::Str(stage1_execution_graph));
    if (!arts.items().empty()) json.Set("artifacts", std::move(arts));

    if (num_instructions > 0) {
        Json instr = Json::Object();
        instr.Set("total", Json::Int(num_instructions));
        instr.Set("loads", Json::Int(num_loads));
        instr.Set("stores", Json::Int(num_stores));
        instr.Set("computes", Json::Int(num_computes));
        json.Set("instructions", std::move(instr));
    }
    return json;
}

bool
ScheduleResult::FromJson(const Json &json, ScheduleResult *out,
                         std::string *err)
{
    if (!json.IsObject()) {
        if (err) *err = "result must be a JSON object";
        return false;
    }
    *out = ScheduleResult();
    auto str = [&json](const char *key) -> std::string {
        const Json *v = json.Find(key);
        return v ? v->AsString() : std::string();
    };
    if (const Json *v = json.Find("ok")) out->ok = v->AsBool();
    out->error = str("error");
    if (const Json *v = json.Find("deadline_expired"))
        out->deadline_expired = v->AsBool();
    out->model = str("model");
    if (const Json *v = json.Find("batch"))
        out->batch = static_cast<int>(v->AsInt(1));
    out->hardware = str("hardware");
    out->memory_model = str("memory_model");
    out->scheduler = str("scheduler");
    if (const Json *v = json.Find("profile")) {
        if (!ParseSearchProfile(v->AsString(), &out->profile)) {
            if (err) *err = "unknown profile \"" + v->AsString() + "\"";
            return false;
        }
    }
    if (const Json *v = json.Find("seed")) out->seed = v->AsU64(1);
    out->scheme = str("scheme");
    if (const Json *v = json.Find("cost")) out->cost = v->AsDouble();
    if (const Json *v = json.Find("report")) {
        if (!ReportFromJson(*v, &out->report, err)) return false;
    }
    if (const Json *v = json.Find("stage1_report")) {
        if (!ReportFromJson(*v, &out->stage1_report, err)) return false;
    }
    if (const Json *v = json.Find("stats"); v && v->IsObject()) {
        out->stats.iterations = v->Find("iterations")
                                    ? v->Find("iterations")->AsInt()
                                    : 0;
        out->stats.evaluated =
            v->Find("evaluated") ? v->Find("evaluated")->AsInt() : 0;
        out->stats.accepted =
            v->Find("accepted") ? v->Find("accepted")->AsInt() : 0;
        out->stats.improved =
            v->Find("improved") ? v->Find("improved")->AsInt() : 0;
        out->stats.outer_iterations =
            v->Find("outer_iterations")
                ? static_cast<int>(v->Find("outer_iterations")->AsInt())
                : 0;
        out->stats.search_seconds =
            v->Find("search_seconds")
                ? v->Find("search_seconds")->AsDouble()
                : 0.0;
        out->stats.total_seconds =
            v->Find("total_seconds") ? v->Find("total_seconds")->AsDouble()
                                     : 0.0;
    }
    if (const Json *v = json.Find("artifacts"); v && v->IsObject()) {
        auto art = [v](const char *key) -> std::string {
            const Json *a = v->Find(key);
            return a ? a->AsString() : std::string();
        };
        out->ir_text = art("ir");
        out->asm_text = art("asm");
        out->compute_csv = art("compute_csv");
        out->dram_csv = art("dram_csv");
        out->buffer_csv = art("buffer_csv");
        out->execution_graph = art("execution_graph");
        out->stage1_execution_graph = art("stage1_execution_graph");
    }
    if (const Json *v = json.Find("instructions"); v && v->IsObject()) {
        auto count = [v](const char *key) {
            const Json *c = v->Find(key);
            return c ? static_cast<int>(c->AsInt()) : 0;
        };
        out->num_instructions = count("total");
        out->num_loads = count("loads");
        out->num_stores = count("stores");
        out->num_computes = count("computes");
    }
    return true;
}

namespace {

/** The runtime-hook wiring shared by both option resolvers: point the
 *  driver at the request's cancel flag, deadline cutoff and span
 *  tracer. The facade pre-resolves deadline_tp at pipeline start;
 *  requests built outside a pipeline (direct option-resolver callers)
 *  anchor here. */
void
ApplyStopRequest(const ScheduleRequest &request, SearchDriverOptions *driver)
{
    driver->cancel = request.cancel;
    driver->trace = request.trace;
    if (request.deadline_tp.time_since_epoch().count() != 0) {
        driver->deadline = request.deadline_tp;
    } else if (request.deadline_ms > 0) {
        driver->deadline = obs::MonotonicNow() +
                           std::chrono::milliseconds(request.deadline_ms);
    }
}

}  // namespace

SomaOptions
SomaOptionsForRequest(const ScheduleRequest &request)
{
    SomaOptions opts;
    switch (request.profile) {
      case SearchProfile::kQuick:
        opts = QuickSomaOptions(request.seed);
        break;
      case SearchProfile::kDefault:
        opts = DefaultSomaOptions(request.seed);
        break;
      case SearchProfile::kFull:
        opts = FullSomaOptions(request.seed);
        break;
    }
    opts.cost_n = request.cost_n;
    opts.cost_m = request.cost_m;
    if (request.chains > 0) opts.driver.chains = request.chains;
    if (request.threads > 0) opts.driver.threads = request.threads;
    opts.warm = request.warm_state;
    ApplyStopRequest(request, &opts.driver);
    return opts;
}

CoccoOptions
CoccoOptionsForRequest(const ScheduleRequest &request)
{
    CoccoOptions opts;
    switch (request.profile) {
      case SearchProfile::kQuick:
        opts = QuickCoccoOptions(request.seed);
        break;
      case SearchProfile::kDefault:
        opts = DefaultCoccoOptions(request.seed);
        break;
      case SearchProfile::kFull:
        opts = FullCoccoOptions(request.seed);
        break;
    }
    opts.cost_n = request.cost_n;
    opts.cost_m = request.cost_m;
    if (request.chains > 0) opts.driver.chains = request.chains;
    if (request.threads > 0) opts.driver.threads = request.threads;
    opts.warm = request.warm_state;
    ApplyStopRequest(request, &opts.driver);
    return opts;
}

}  // namespace soma
