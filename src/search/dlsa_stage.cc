#include "search/dlsa_stage.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "obs/trace.h"
#include "search/dlsa_heuristics.h"
#include "sim/eval_context.h"
#include "sim/evaluator.h"

namespace soma {

namespace {

/**
 * Legal rank range for tensor @p j within @p order: cross-LG ifmap loads
 * must stay after every store of their source layer; stores must stay
 * before every load that reads them.
 */
void
RankBounds(const ParsedSchedule &parsed, const std::vector<int> &order,
           int j, int *lo, int *hi)
{
    const int d = static_cast<int>(order.size());
    *lo = 0;
    *hi = d - 1;
    const DramTensor &t = parsed.tensors[j];
    if (t.kind == DramTensorKind::kIfmap && t.src_layer != kNoLayer) {
        for (int r = 0; r < d; ++r) {
            const DramTensor &o = parsed.tensors[order[r]];
            if (o.kind == DramTensorKind::kOfmap && o.layer == t.src_layer)
                *lo = std::max(*lo, r + 1);
        }
    } else if (t.kind == DramTensorKind::kOfmap) {
        for (int r = d - 1; r >= 0; --r) {
            const DramTensor &o = parsed.tensors[order[r]];
            if (o.kind == DramTensorKind::kIfmap && o.src_layer == t.layer)
                *hi = std::min(*hi, r - 1);
        }
    }
}

}  // namespace

DlsaMutator::DlsaMutator(const ParsedSchedule &parsed) : parsed_(parsed)
{
    weights_.reserve(parsed.NumTensors());
    for (const DramTensor &t : parsed.tensors)
        weights_.push_back(static_cast<double>(t.bytes));
}

bool
DlsaMutator::operator()(const DlsaEncoding &cur, DlsaEncoding *next,
                        Rng &rng, DlsaDelta *delta) const
{
    const ParsedSchedule &parsed = parsed_;
    const int d = parsed.NumTensors();
    if (d == 0) return false;
    *next = cur;
    delta->kind = DlsaDelta::Kind::kNone;
    for (int attempt = 0; attempt < 4; ++attempt) {
        int picked = rng.WeightedIndex(weights_);
        int j = picked < 0 ? 0 : picked;
        if (rng.Flip()) {
            // Change DRAM Tensor Order: move j to another legal rank.
            int cur_rank = -1;
            for (int r = 0; r < d; ++r) {
                if (next->order[r] == j) { cur_rank = r; break; }
            }
            assert(cur_rank >= 0);
            int lo, hi;
            RankBounds(parsed, next->order, j, &lo, &hi);
            if (lo >= hi) continue;
            int q = rng.UniformInt(lo, hi - 1);
            if (q >= cur_rank) ++q;
            if (q == cur_rank) continue;
            if (q < cur_rank) {
                std::rotate(next->order.begin() + q,
                            next->order.begin() + cur_rank,
                            next->order.begin() + cur_rank + 1);
            } else {
                std::rotate(next->order.begin() + cur_rank,
                            next->order.begin() + cur_rank + 1,
                            next->order.begin() + q + 1);
            }
            delta->kind = DlsaDelta::Kind::kOrderMove;
            delta->tensor = j;
            delta->from_rank = cur_rank;
            delta->to_rank = q;
            return true;
        }
        // Change Living Duration: re-draw the free endpoint.
        TilePos lo = parsed.FreePointMin(j);
        TilePos hi = parsed.FreePointMax(j);
        if (lo >= hi) continue;
        TilePos v = static_cast<TilePos>(rng.UniformInt(lo, hi));
        if (v == next->free_point[j]) continue;
        delta->kind = DlsaDelta::Kind::kFreePoint;
        delta->tensor = j;
        delta->old_point = next->free_point[j];
        delta->new_point = v;
        next->free_point[j] = v;
        return true;
    }
    return false;
}

DlsaStageResult
RunDlsaStage(const Graph &graph, const HardwareConfig &hw,
             const ParsedSchedule &parsed, const DlsaEncoding &initial,
             Bytes buffer_budget, const DlsaStageOptions &opts, Rng &rng)
{
    const Ops total_ops = graph.TotalOps();
    obs::SpanScope stage_span(opts.driver.trace, "dlsa.stage");
    stage_span.Arg("tensors", static_cast<std::int64_t>(
                                  parsed.NumTensors()));
    stage_span.Arg("budget_bytes",
                   static_cast<std::int64_t>(buffer_budget));
    auto mutator = std::make_shared<DlsaMutator>(parsed);

    EvalContext serial_ctx;
    auto evaluate_serial = [&](const DlsaEncoding &dlsa) -> double {
        return serial_ctx
            .Evaluate(graph, hw, parsed, dlsa, buffer_budget, total_ops)
            .Cost(opts.cost_n, opts.cost_m);
    };

    DlsaStageResult result;
    result.dlsa = initial;
    result.cost = evaluate_serial(initial);

    // Heuristic seeds: deeper uniform prefetch leads when the buffer
    // allows (the "push weights forward" move). The SA then refines the
    // best starting point.
    DlsaEncoding cand;
    for (TilePos lead : {2, 4, 8, 16, 32}) {
        for (TilePos lag : {2, 4}) {
            MakeSlackDlsaInto(parsed, lead, lag, &cand);
            double cand_cost = evaluate_serial(cand);
            if (cand_cost < result.cost) {
                result.dlsa = cand;
                result.cost = cand_cost;
            }
        }
    }

    SaOptions sa = opts.sa;
    sa.iterations = static_cast<int>(std::min<std::int64_t>(
        opts.max_iterations,
        static_cast<std::int64_t>(opts.beta) *
            std::max(1, parsed.NumTensors())));

    // Each chain owns an EvalContext whose committed base tracks the
    // chain's current state, so candidate evaluation resumes the
    // timeline from the earliest slot the mutation touched.
    auto make_env = [&](int /*chain*/) {
        ChainEnv<DlsaEncoding> env;
        auto ctx = std::make_shared<EvalContext>();
        auto delta = std::make_shared<DlsaDelta>();
        env.mutate = [mutator, delta](const DlsaEncoding &cur,
                                      DlsaEncoding *next, Rng &r) {
            return (*mutator)(cur, next, r, delta.get());
        };
        env.evaluate = [&graph, &hw, &parsed, buffer_budget, total_ops,
                        ctx, delta, n = opts.cost_n,
                        m = opts.cost_m](const DlsaEncoding &d) {
            const EvalReport &rep = ctx->EvaluateDelta(
                graph, hw, parsed, d, *delta, buffer_budget, total_ops);
            delta->kind = DlsaDelta::Kind::kNone;  // consumed
            return rep.Cost(n, m);
        };
        env.on_accept = [ctx](const DlsaEncoding &) { ctx->Commit(); };
        env.on_adopt = [&graph, &hw, &parsed, buffer_budget, total_ops,
                        ctx](const DlsaEncoding &d, double) {
            ctx->Evaluate(graph, hw, parsed, d, buffer_budget, total_ops);
            ctx->Commit();
        };
        env.annotate = [ctx](obs::SpanScope &span) {
            const EvalContext::DeltaStats &ds = ctx->delta_stats();
            span.Arg("delta_evals",
                     static_cast<std::int64_t>(ds.delta_evals));
            span.Arg("windowed_runs",
                     static_cast<std::int64_t>(ds.windowed_runs));
            span.Arg("splices", static_cast<std::int64_t>(ds.splices));
            span.Arg("full_fallbacks",
                     static_cast<std::int64_t>(ds.full_fallbacks));
            span.Arg("window_events",
                     static_cast<std::int64_t>(ds.window_events));
            span.Arg("last_window_events",
                     static_cast<std::int64_t>(ds.last_window_events));
            span.Arg("resume_ci",
                     static_cast<std::int64_t>(ds.last_resume_ci));
            span.Arg("resume_di",
                     static_cast<std::int64_t>(ds.last_resume_di));
        };
        return env;
    };

    result.stats = RunDriverAndAdopt<DlsaEncoding>(
        make_env, sa, opts.driver, rng, &result.dlsa, &result.cost);
    result.report = EvaluateSchedule(graph, hw, parsed, result.dlsa,
                                     buffer_budget, total_ops);
    stage_span.Arg("iterations", static_cast<std::int64_t>(
                                     result.stats.iterations));
    stage_span.Arg("evaluated", static_cast<std::int64_t>(
                                    result.stats.evaluated));
    stage_span.Arg("best_cost", result.cost);
    return result;
}

}  // namespace soma
