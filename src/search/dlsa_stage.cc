#include "search/dlsa_stage.h"

#include <algorithm>
#include <cassert>

#include "search/dlsa_heuristics.h"
#include "sim/evaluator.h"

namespace soma {

namespace {

/**
 * Legal rank range for tensor @p j within @p order: cross-LG ifmap loads
 * must stay after every store of their source layer; stores must stay
 * before every load that reads them.
 */
void
RankBounds(const ParsedSchedule &parsed, const std::vector<int> &order,
           int j, int *lo, int *hi)
{
    const int d = static_cast<int>(order.size());
    *lo = 0;
    *hi = d - 1;
    const DramTensor &t = parsed.tensors[j];
    if (t.kind == DramTensorKind::kIfmap && t.src_layer != kNoLayer) {
        for (int r = 0; r < d; ++r) {
            const DramTensor &o = parsed.tensors[order[r]];
            if (o.kind == DramTensorKind::kOfmap && o.layer == t.src_layer)
                *lo = std::max(*lo, r + 1);
        }
    } else if (t.kind == DramTensorKind::kOfmap) {
        for (int r = d - 1; r >= 0; --r) {
            const DramTensor &o = parsed.tensors[order[r]];
            if (o.kind == DramTensorKind::kIfmap && o.src_layer == t.layer)
                *hi = std::min(*hi, r - 1);
        }
    }
}

struct TensorPicker {
    std::vector<double> weights;
    explicit TensorPicker(const ParsedSchedule &parsed)
    {
        weights.reserve(parsed.NumTensors());
        for (const DramTensor &t : parsed.tensors)
            weights.push_back(static_cast<double>(t.bytes));
    }
    int Pick(Rng &rng) const
    {
        int idx = rng.WeightedIndex(weights);
        return idx < 0 ? 0 : idx;
    }
};

bool
MutateDlsa(const ParsedSchedule &parsed, const TensorPicker &picker,
           const DlsaEncoding &cur, DlsaEncoding *next, Rng &rng)
{
    const int d = parsed.NumTensors();
    if (d == 0) return false;
    *next = cur;
    for (int attempt = 0; attempt < 4; ++attempt) {
        int j = picker.Pick(rng);
        if (rng.Flip()) {
            // Change DRAM Tensor Order: move j to another legal rank.
            int cur_rank = -1;
            for (int r = 0; r < d; ++r) {
                if (next->order[r] == j) { cur_rank = r; break; }
            }
            assert(cur_rank >= 0);
            int lo, hi;
            RankBounds(parsed, next->order, j, &lo, &hi);
            if (lo >= hi) continue;
            int q = rng.UniformInt(lo, hi - 1);
            if (q >= cur_rank) ++q;
            if (q == cur_rank) continue;
            if (q < cur_rank) {
                std::rotate(next->order.begin() + q,
                            next->order.begin() + cur_rank,
                            next->order.begin() + cur_rank + 1);
            } else {
                std::rotate(next->order.begin() + cur_rank,
                            next->order.begin() + cur_rank + 1,
                            next->order.begin() + q + 1);
            }
            return true;
        }
        // Change Living Duration: re-draw the free endpoint.
        TilePos lo = parsed.FreePointMin(j);
        TilePos hi = parsed.FreePointMax(j);
        if (lo >= hi) continue;
        TilePos v = static_cast<TilePos>(rng.UniformInt(lo, hi));
        if (v == next->free_point[j]) continue;
        next->free_point[j] = v;
        return true;
    }
    return false;
}

}  // namespace

DlsaStageResult
RunDlsaStage(const Graph &graph, const HardwareConfig &hw,
             const ParsedSchedule &parsed, const DlsaEncoding &initial,
             Bytes buffer_budget, const DlsaStageOptions &opts, Rng &rng)
{
    const Ops total_ops = graph.TotalOps();
    TensorPicker picker(parsed);

    auto evaluate = [&](const DlsaEncoding &dlsa) -> double {
        EvalReport rep = EvaluateSchedule(graph, hw, parsed, dlsa,
                                          buffer_budget, total_ops);
        return rep.Cost(opts.cost_n, opts.cost_m);
    };

    DlsaStageResult result;
    result.dlsa = initial;
    result.cost = evaluate(initial);

    // Heuristic seeds: deeper uniform prefetch leads when the buffer
    // allows (the "push weights forward" move). The SA then refines the
    // best starting point.
    for (TilePos lead : {2, 4, 8, 16, 32}) {
        for (TilePos lag : {2, 4}) {
            DlsaEncoding cand = MakeSlackDlsa(parsed, lead, lag);
            double cand_cost = evaluate(cand);
            if (cand_cost < result.cost) {
                result.dlsa = std::move(cand);
                result.cost = cand_cost;
            }
        }
    }

    SaOptions sa = opts.sa;
    sa.iterations = std::min<std::int64_t>(
        opts.max_iterations,
        static_cast<std::int64_t>(opts.beta) *
            std::max(1, parsed.NumTensors()));

    std::function<bool(const DlsaEncoding &, DlsaEncoding *, Rng &)> mut =
        [&](const DlsaEncoding &cur, DlsaEncoding *next, Rng &r) {
            return MutateDlsa(parsed, picker, cur, next, r);
        };
    std::function<double(const DlsaEncoding &)> eval = evaluate;
    result.stats = RunSa<DlsaEncoding>(&result.dlsa, &result.cost, mut, eval,
                                       sa, rng);
    result.report = EvaluateSchedule(graph, hw, parsed, result.dlsa,
                                     buffer_budget, total_ops);
    return result;
}

}  // namespace soma
