#include "search/dlsa_heuristics.h"

#include <algorithm>
#include <numeric>

namespace soma {

namespace {

DlsaEncoding
MakeWithSlack(const ParsedSchedule &parsed, TilePos load_lead,
              TilePos store_lag)
{
    DlsaEncoding dlsa;
    const int d = parsed.NumTensors();
    dlsa.order.resize(d);
    std::iota(dlsa.order.begin(), dlsa.order.end(), 0);
    dlsa.free_point.resize(d);
    for (int j = 0; j < d; ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.IsLoad()) {
            dlsa.free_point[j] =
                std::clamp<TilePos>(t.first_use - load_lead,
                                    parsed.FreePointMin(j),
                                    parsed.FreePointMax(j));
        } else {
            dlsa.free_point[j] =
                std::clamp<TilePos>(t.first_use + store_lag,
                                    parsed.FreePointMin(j),
                                    parsed.FreePointMax(j));
        }
    }
    return dlsa;
}

}  // namespace

DlsaEncoding
MakeDoubleBufferDlsa(const ParsedSchedule &parsed)
{
    return MakeWithSlack(parsed, /*load_lead=*/1, /*store_lag=*/2);
}

DlsaEncoding
MakeSlackDlsa(const ParsedSchedule &parsed, TilePos load_lead,
              TilePos store_lag)
{
    return MakeWithSlack(parsed, load_lead, store_lag);
}

DlsaEncoding
MakeLazyDlsa(const ParsedSchedule &parsed)
{
    return MakeWithSlack(parsed, /*load_lead=*/0, /*store_lag=*/1);
}

DlsaEncoding
MakeCoccoDlsa(const ParsedSchedule &parsed)
{
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(parsed);
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.kind == DramTensorKind::kWeight) {
            dlsa.free_point[j] =
                std::clamp<TilePos>(t.lg_begin - 1, parsed.FreePointMin(j),
                                    parsed.FreePointMax(j));
        }
    }
    return dlsa;
}

}  // namespace soma
