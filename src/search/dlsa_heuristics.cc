#include "search/dlsa_heuristics.h"

#include <algorithm>
#include <numeric>

namespace soma {

void
MakeSlackDlsaInto(const ParsedSchedule &parsed, TilePos load_lead,
                  TilePos store_lag, DlsaEncoding *out)
{
    const int d = parsed.NumTensors();
    out->order.resize(d);
    std::iota(out->order.begin(), out->order.end(), 0);
    out->free_point.resize(d);
    for (int j = 0; j < d; ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.IsLoad()) {
            out->free_point[j] =
                std::clamp<TilePos>(t.first_use - load_lead,
                                    parsed.FreePointMin(j),
                                    parsed.FreePointMax(j));
        } else {
            out->free_point[j] =
                std::clamp<TilePos>(t.first_use + store_lag,
                                    parsed.FreePointMin(j),
                                    parsed.FreePointMax(j));
        }
    }
}

void
MakeDoubleBufferDlsaInto(const ParsedSchedule &parsed, DlsaEncoding *out)
{
    MakeSlackDlsaInto(parsed, /*load_lead=*/1, /*store_lag=*/2, out);
}

void
MakeLazyDlsaInto(const ParsedSchedule &parsed, DlsaEncoding *out)
{
    MakeSlackDlsaInto(parsed, /*load_lead=*/0, /*store_lag=*/1, out);
}

DlsaEncoding
MakeDoubleBufferDlsa(const ParsedSchedule &parsed)
{
    DlsaEncoding dlsa;
    MakeDoubleBufferDlsaInto(parsed, &dlsa);
    return dlsa;
}

DlsaEncoding
MakeSlackDlsa(const ParsedSchedule &parsed, TilePos load_lead,
              TilePos store_lag)
{
    DlsaEncoding dlsa;
    MakeSlackDlsaInto(parsed, load_lead, store_lag, &dlsa);
    return dlsa;
}

DlsaEncoding
MakeLazyDlsa(const ParsedSchedule &parsed)
{
    DlsaEncoding dlsa;
    MakeLazyDlsaInto(parsed, &dlsa);
    return dlsa;
}

DlsaEncoding
MakeCoccoDlsa(const ParsedSchedule &parsed)
{
    DlsaEncoding dlsa = MakeDoubleBufferDlsa(parsed);
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.kind == DramTensorKind::kWeight) {
            dlsa.free_point[j] =
                std::clamp<TilePos>(t.lg_begin - 1, parsed.FreePointMin(j),
                                    parsed.FreePointMax(j));
        }
    }
    return dlsa;
}

}  // namespace soma
