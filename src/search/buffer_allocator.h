/**
 * @file
 * The Buffer Allocator (Sec. V-B): the outermost iteration that divides
 * the GBUF between the two competing stages. Iteration 0 gives stage 1
 * the whole buffer; each following iteration shrinks the stage-1 budget
 * by shrink_frac of the first iteration's peak usage (BufferMax),
 * leaving headroom for the DLSA stage's prefetching. Stops when two
 * consecutive iterations fail to improve the best overall cost.
 */
#ifndef SOMA_SEARCH_BUFFER_ALLOCATOR_H
#define SOMA_SEARCH_BUFFER_ALLOCATOR_H

#include <vector>

#include "search/dlsa_stage.h"
#include "search/lfa_stage.h"

namespace soma {

/** Outer-loop hyperparameters. */
struct BufferAllocatorOptions {
    double shrink_frac = 0.10;  ///< a% of BufferMax removed per iteration
    int max_iterations = 6;     ///< hard cap on outer iterations
    int patience = 2;           ///< stop after this many non-improvements
};

/** The best complete scheme found by the two-stage search. */
struct SomaSearchResult {
    LfaEncoding lfa;
    ParsedSchedule parsed;
    DlsaEncoding dlsa;          ///< stage-2 DLSA of the best scheme
    DlsaEncoding stage1_dlsa;   ///< double-buffer DLSA of the best scheme
    EvalReport stage1_report;   ///< "Ours_1": before DLSA exploration
    EvalReport report;          ///< "Ours_2": final
    double cost = 0.0;
    int outer_iterations = 0;
    std::vector<double> iteration_costs;  ///< best total cost per iteration
    SaStats lfa_stats;   ///< LFA-stage counters summed over outer iters
    SaStats dlsa_stats;  ///< DLSA-stage counters summed over outer iters
};

/**
 * Run the Buffer-Allocator-wrapped two-stage search.
 */
SomaSearchResult RunBufferAllocatedSearch(const Graph &graph,
                                          const HardwareConfig &hw,
                                          const LfaStageOptions &lfa_opts,
                                          const DlsaStageOptions &dlsa_opts,
                                          const BufferAllocatorOptions &opts,
                                          Rng &rng);

}  // namespace soma

#endif  // SOMA_SEARCH_BUFFER_ALLOCATOR_H
