/**
 * @file
 * SearchDriver: K independently seeded annealing chains on a thread
 * pool, with periodic best-state exchange and a final reduction.
 *
 * The paper runs its SA budgets on a 192-core server; the seed
 * implementation annealed a single chain on one thread. The driver
 * restores the paper's throughput model: every exploration stage
 * (RunLfaStage, RunDlsaStage, the Cocco baseline) hands its mutate /
 * evaluate closures to RunSearchDriver, which anneals `chains`
 * independent walks in `exchange_rounds` temperature windows and
 * migrates the globally best state into lagging chains between windows.
 *
 * Determinism: each chain draws from its own Rng stream derived from
 * the driver seed via SplitMix64, chains only interact at the
 * deterministic exchange barriers, and ties in the final reduction
 * break toward the lowest chain id — so the result depends on the seed
 * and chain count but never on the thread count or scheduling.
 *
 * Concurrency model: the driver is deliberately lock-free. Workers
 * claim whole chains from one atomic counter (RunOnWorkers) and touch
 * only pool[i] state between the exchange barriers, which run on the
 * calling thread after every worker has joined — so there is no
 * mutex-guarded state here and nothing for the thread-safety analysis
 * to annotate. Shared memo state (TilingCache / TileCostMemo) is
 * internally synchronized behind its own leaf locks.
 */
#ifndef SOMA_SEARCH_DRIVER_H
#define SOMA_SEARCH_DRIVER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"
#include "search/sa.h"

namespace soma {

/** Parallel-search hyperparameters shared by all exploration stages. */
struct SearchDriverOptions {
    /** Independently seeded annealing chains (K). Each chain anneals
     *  the full SaOptions::iterations budget; raising K widens the
     *  exploration like the paper's multi-seed server runs. */
    int chains = 2;
    /** Worker threads; 0 = std::thread::hardware_concurrency(). The
     *  thread count never changes results, only wall-clock time. */
    int threads = 0;
    /** Temperature windows per run; chains exchange their best states
     *  at window boundaries (no exchange happens with 1 window). */
    int exchange_rounds = 4;
    /**
     * Cooperative stop, shared by every stage of a request: the driver
     * copies both fields into the SaOptions of each annealing window
     * (RunSaWindow polls them every cancel_check_interval iterations)
     * and skips remaining exchange rounds once either fires. The facade
     * points `cancel` at the job's Cancel() flag and derives `deadline`
     * from ScheduleRequest::deadline_ms. Defaults mean "never stop
     * early" and leave results bit-identical to unconstrained runs.
     */
    const std::atomic<bool> *cancel = nullptr;
    std::chrono::steady_clock::time_point deadline{};
    /**
     * Optional span tracer (obs/trace.h). When set, every chain's
     * annealing window records one "sa.window" span (args: chain,
     * round, iteration range). Observational only: spans read walk
     * state, never steer it, so attaching a tracer leaves results
     * bit-identical — like `threads`, it is excluded from request
     * fingerprints. Propagated from SomaOptions.driver into both
     * stages by PropagateSomaOptions.
     */
    obs::Tracer *trace = nullptr;
};

/** True once @p opts's cancel flag is set or its deadline has passed.
 *  The between-stage twin of SaStopRequested (sa.h). */
inline bool
DriverStopRequested(const SearchDriverOptions &opts)
{
    return StopRequested(opts.cancel, opts.deadline);
}

/** Effective worker count for @p opts (resolves threads == 0). */
int ResolveDriverThreads(const SearchDriverOptions &opts);

/** Per-chain seed for chain @p chain of a driver run seeded with
 *  @p base (SplitMix64 stream; decorrelated even for adjacent bases). */
std::uint64_t DeriveChainSeed(std::uint64_t base, int chain);

/**
 * Run @p tasks independent jobs on up to @p threads workers. Jobs are
 * claimed from an atomic counter; fn(i) must only touch job-i state.
 * Runs inline when threads <= 1 or tasks == 1.
 */
void RunOnWorkers(int threads, int tasks,
                  const std::function<void(int)> &fn);

/**
 * The per-chain search environment. Built once per chain by the
 * stage's factory so each chain owns its scratch state (EvalContext,
 * CoreArrayEvaluator, mutation delta slot, ...).
 */
template <typename State>
struct ChainEnv {
    /** Propose a neighbour of the current state (false: no move). */
    std::function<bool(const State &, State *, Rng &)> mutate;
    /** Cost of a candidate (+inf: invalid). */
    std::function<double(const State &)> evaluate;
    /** Optional: fired right after a candidate is accepted (promotes
     *  incremental-evaluation scratch: EvalContext::Commit). */
    std::function<void(const State &)> on_accept;
    /** Optional: fired when the chain's current state is replaced from
     *  outside the chain's own walk — at chain start and when the
     *  exchange migrates a foreign best state in. Re-establishes the
     *  incremental base for the adopted state. */
    std::function<void(const State &, double)> on_adopt;
    /** Optional: called with the chain's "sa.window" span after each
     *  window, so the stage can attach evaluation telemetry (delta
     *  window sizes, resume points, splice counts) to the trace. */
    std::function<void(obs::SpanScope &)> annotate;
};

/** Result of a driver run. */
template <typename State>
struct DriverResult {
    State state;
    double cost = std::numeric_limits<double>::infinity();
    int winner_chain = 0;
    SaStats stats;                     ///< counters summed over chains
    std::vector<SaStats> chain_stats;  ///< per-chain counters
};

/**
 * Anneal @p opts.chains chains from @p initial / @p initial_cost.
 * @p make_env is called once per chain, serially, before any worker
 * starts; the returned closures are then only invoked from that
 * chain's worker.
 */
template <typename State>
DriverResult<State>
RunSearchDriver(const State &initial, double initial_cost,
                const std::function<ChainEnv<State>(int)> &make_env,
                const SaOptions &sa, const SearchDriverOptions &opts,
                std::uint64_t seed)
{
    const int chains = std::max(1, opts.chains);
    const int threads = std::min(ResolveDriverThreads(opts), chains);

    // Windows inherit the driver-level stop request (unless the stage
    // already wired its own flag into the SaOptions directly).
    SaOptions sa_eff = sa;
    if (!sa_eff.cancel) sa_eff.cancel = opts.cancel;
    if (sa_eff.deadline.time_since_epoch().count() == 0)
        sa_eff.deadline = opts.deadline;

    struct Chain {
        State current, best;
        double current_cost, best_cost;
        Rng rng;
        SaStats stats;
        ChainEnv<State> env;
        Chain(const State &s, double c, std::uint64_t chain_seed)
            : current(s), best(s), current_cost(c), best_cost(c),
              rng(chain_seed)
        {
        }
    };

    std::vector<Chain> pool;
    pool.reserve(chains);
    for (int c = 0; c < chains; ++c) {
        pool.emplace_back(initial, initial_cost, DeriveChainSeed(seed, c));
        pool.back().env = make_env(c);
        pool.back().stats.initial_cost = initial_cost;
    }

    const int rounds =
        std::max(1, std::min(opts.exchange_rounds, sa.iterations));
    for (int r = 0; r < rounds; ++r) {
        const int begin = static_cast<int>(
            static_cast<std::int64_t>(sa.iterations) * r / rounds);
        const int end = static_cast<int>(
            static_cast<std::int64_t>(sa.iterations) * (r + 1) / rounds);
        RunOnWorkers(threads, chains, [&](int c) {
            Chain &ch = pool[c];
            obs::SpanScope span(opts.trace, "sa.window");
            span.Arg("chain", static_cast<std::int64_t>(c));
            span.Arg("round", static_cast<std::int64_t>(r));
            span.Arg("begin", static_cast<std::int64_t>(begin));
            span.Arg("end", static_cast<std::int64_t>(end));
            if (r == 0 && ch.env.on_adopt)
                ch.env.on_adopt(ch.current, ch.current_cost);
            RunSaWindow<State>(&ch.current, &ch.current_cost, &ch.best,
                               &ch.best_cost, ch.env.mutate, ch.env.evaluate,
                               sa_eff, ch.rng, begin, end, &ch.stats,
                               ch.env.on_accept);
            span.Arg("evaluated",
                     static_cast<std::int64_t>(ch.stats.evaluated));
            span.Arg("best_cost", ch.best_cost);
            if (ch.env.annotate) ch.env.annotate(span);
        });
        if (r + 1 >= rounds || SaStopRequested(sa_eff)) break;
        // Deterministic exchange: migrate the global best-so-far into
        // every chain whose walk has fallen behind it.
        int w = 0;
        for (int c = 1; c < chains; ++c)
            if (pool[c].best_cost < pool[w].best_cost) w = c;
        for (int c = 0; c < chains; ++c) {
            if (c == w || pool[c].current_cost <= pool[w].best_cost)
                continue;
            pool[c].current = pool[w].best;
            pool[c].current_cost = pool[w].best_cost;
            if (pool[c].env.on_adopt)
                pool[c].env.on_adopt(pool[c].current, pool[c].current_cost);
        }
    }

    DriverResult<State> result;
    int w = 0;
    for (int c = 1; c < chains; ++c)
        if (pool[c].best_cost < pool[w].best_cost) w = c;
    result.state = std::move(pool[w].best);
    result.cost = pool[w].best_cost;
    result.winner_chain = w;
    result.chain_stats.reserve(chains);
    for (const Chain &ch : pool) result.chain_stats.push_back(ch.stats);
    for (const Chain &ch : pool) AccumulateSaStats(&result.stats, ch.stats);
    result.stats.initial_cost = initial_cost;
    result.stats.best_cost = result.cost;
    return result;
}

/**
 * The stage-side protocol shared by RunLfaStage, RunDlsaStage and the
 * Cocco baseline: draw the driver seed from the stage Rng (keeping the
 * pipeline reproducible from one seed), anneal, and adopt the driver's
 * best state only if it beats the serially seeded one in
 * @p state / @p cost. Returns the aggregate chain statistics.
 */
template <typename State>
SaStats
RunDriverAndAdopt(const std::function<ChainEnv<State>(int)> &make_env,
                  const SaOptions &sa, const SearchDriverOptions &opts,
                  Rng &rng, State *state, double *cost)
{
    const std::uint64_t driver_seed = rng.engine()();
    DriverResult<State> dr = RunSearchDriver<State>(*state, *cost, make_env,
                                                    sa, opts, driver_seed);
    if (dr.cost < *cost) {
        *state = std::move(dr.state);
        *cost = dr.cost;
    }
    return dr.stats;
}

}  // namespace soma

#endif  // SOMA_SEARCH_DRIVER_H
