/**
 * @file
 * The classical double-buffer DLSA (Sec. III-B): prefetch each load in
 * the tile preceding its first use and give each store the following
 * tile to drain. Used as the stage-1 evaluation strategy, the stage-2
 * starting point, and Cocco's (fixed) prefetch strategy.
 */
#ifndef SOMA_SEARCH_DLSA_HEURISTICS_H
#define SOMA_SEARCH_DLSA_HEURISTICS_H

#include "notation/encoding.h"
#include "notation/parser.h"

namespace soma {

/**
 * Build the double-buffer DLSA for a parse: canonical tensor order
 * (sorted by need position), Start = first_use - 1 for loads,
 * End = first_use + 2 for stores (clamped to the legal ranges).
 */
DlsaEncoding MakeDoubleBufferDlsa(const ParsedSchedule &parsed);

/**
 * A maximally lazy DLSA: loads start at their use tile, stores drain by
 * the next tile. Minimizes buffer pressure; used in tests and as a
 * fallback when the double-buffer variant overflows a tight budget.
 */
DlsaEncoding MakeLazyDlsa(const ParsedSchedule &parsed);

/**
 * Cocco's group-granular prefetch: like the double-buffer DLSA, but
 * weight loads are issued from the start of their Layer-fusion Group
 * (Fig. 2's WA/WB/WC burst at the head of each LG). Meant for parses
 * with ParseOptions::lg_resident_weights set.
 */
DlsaEncoding MakeCoccoDlsa(const ParsedSchedule &parsed);

/**
 * Parameterized prefetch depth: loads start @p load_lead tiles before
 * first use, stores get @p store_lag tiles to drain (both clamped to the
 * legal Living Duration ranges). load_lead=1 / store_lag=2 is the
 * classical double buffer; deeper leads trade buffer for overlap — the
 * "push weights forward" move of the paper's Fig. 8 discussion.
 */
DlsaEncoding MakeSlackDlsa(const ParsedSchedule &parsed, TilePos load_lead,
                           TilePos store_lag);

/**
 * Allocation-lean variants for the SA inner loop: write into @p out,
 * which retains its capacity across calls (LFA-stage chains build a
 * double-buffer DLSA for every candidate parse).
 */
void MakeDoubleBufferDlsaInto(const ParsedSchedule &parsed,
                              DlsaEncoding *out);
void MakeLazyDlsaInto(const ParsedSchedule &parsed, DlsaEncoding *out);
void MakeSlackDlsaInto(const ParsedSchedule &parsed, TilePos load_lead,
                       TilePos store_lag, DlsaEncoding *out);

}  // namespace soma

#endif  // SOMA_SEARCH_DLSA_HEURISTICS_H
