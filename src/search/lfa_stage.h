/**
 * @file
 * The LFA exploration stage (Sec. V-C1): simulated annealing over
 * Computing Order, FLC set, Tiling Numbers and DRAM Cut set, evaluating
 * every candidate with the classical double-buffer DLSA under the
 * stage's buffer budget.
 */
#ifndef SOMA_SEARCH_LFA_STAGE_H
#define SOMA_SEARCH_LFA_STAGE_H

#include <memory>

#include "corearray/core_array.h"
#include "notation/encoding.h"
#include "notation/parser.h"
#include "search/driver.h"
#include "search/sa.h"
#include "sim/report.h"
#include "tiling/tiling_cache.h"

namespace soma {

/** Hyperparameters of the LFA stage. */
struct LfaStageOptions {
    int beta = 100;            ///< iterations = beta * num_layers
    int max_iterations = 8000; ///< scaled-down cap (see DESIGN.md)
    int tiling_cap = 64;       ///< upper bound on any Tiling Number
    double cost_n = 1.0;       ///< Energy exponent
    double cost_m = 1.0;       ///< Delay exponent
    /**
     * Greedy fusion seeding: before annealing, sweep the DRAM cuts once
     * and keep each merge that does not worsen the cost. A scaled-down-
     * budget adaptation (DESIGN.md): the paper's 192-core SA budget
     * deletes hundreds of cuts by random walk; on a laptop the seed
     * recovers that head start deterministically.
     */
    bool greedy_seed = true;
    /**
     * Stage-wide tiling memo shared by the serial seeding pass and
     * every SearchDriver chain (and, when the Buffer Allocator passes
     * one in, across its outer iterations; when the service layer's
     * WarmStateCache passes one in, across whole requests). Null: the
     * stage creates a private cache per run. Must belong to the
     * searched graph.
     */
    std::shared_ptr<TilingCache> tiling_cache;
    /**
     * Tile-cost memo the Buffer Allocator seeds its CoreArrayEvaluator
     * with (every chain evaluator then shares it via memo()). Null: a
     * private memo per search. Must belong to the searched (graph,
     * hardware-preset) pair — see TileCostMemo's sharing invariant.
     */
    std::shared_ptr<TileCostMemo> tile_cost_memo;
    /**
     * Force the incremental-parse debug cross-check for every candidate
     * (see ParseOptions::cross_check). Also enabled by setting the
     * SOMA_LFA_CROSS_CHECK=1 environment variable.
     */
    bool cross_check = false;
    SaOptions sa;
    SearchDriverOptions driver;
};

/** Best scheme found by one LFA stage run. */
struct LfaStageResult {
    LfaEncoding lfa;
    ParsedSchedule parsed;
    DlsaEncoding dlsa;     ///< the double-buffer DLSA of `lfa`
    EvalReport report;     ///< evaluated at the stage budget
    double cost = 0.0;
    SaStats stats;
};

/**
 * Run the LFA stage under @p stage_budget bytes of GBUF.
 * @p total_ops is the utilization numerator (graph.TotalOps()).
 */
LfaStageResult RunLfaStage(const Graph &graph, const HardwareConfig &hw,
                           CoreArrayEvaluator &core_eval, Bytes stage_budget,
                           const LfaStageOptions &opts, Rng &rng);

/**
 * "Change Computing Order" operator, shared with the Cocco baseline:
 * move a random layer to another dependency-legal position. Returns
 * false if the chosen layer cannot move.
 */
bool MutateOrderMoveLayer(const Graph &graph, std::vector<LayerId> *order,
                          Rng &rng);

/** Initial LFA: unfused, heuristic-parallel tiling (Sec. V-C1). */
LfaEncoding MakeInitialLfa(const Graph &graph, const HardwareConfig &hw,
                           int tiling_cap);

/**
 * Apply one uniformly chosen LFA operator (Sec. V-C1): change order,
 * scale a Tiling Number, add/delete an FLC, add/delete a DRAM cut.
 * Returns false if no applicable move was found. Exposed for the
 * property tests and ablation benches.
 */
bool MutateLfaEncoding(const Graph &graph, const LfaEncoding &cur,
                       LfaEncoding *next, int tiling_cap, Rng &rng);

}  // namespace soma

#endif  // SOMA_SEARCH_LFA_STAGE_H
