#include "search/driver.h"

#include <atomic>
#include <thread>

namespace soma {

int
ResolveDriverThreads(const SearchDriverOptions &opts)
{
    if (opts.threads > 0) return opts.threads;
    unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
}

std::uint64_t
DeriveChainSeed(std::uint64_t base, int chain)
{
    // SplitMix64 (Steele et al.): one increment step per chain id, then
    // the finalizer. Decorrelates chain streams even for base seeds
    // 1, 2, 3, ... as used by the artifact's per-configuration seeds.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL *
                                 (static_cast<std::uint64_t>(chain) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void
RunOnWorkers(int threads, int tasks, const std::function<void(int)> &fn)
{
    if (threads <= 1 || tasks == 1) {
        for (int i = 0; i < tasks; ++i) fn(i);
        return;
    }
    std::atomic<int> next{0};
    auto worker = [&]() {
        for (;;) {
            int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks) return;
            fn(i);
        }
    };
    std::vector<std::thread> team;
    const int spawn = std::min(threads, tasks);
    team.reserve(spawn - 1);
    for (int t = 1; t < spawn; ++t) team.emplace_back(worker);
    worker();
    for (std::thread &t : team) t.join();
}

}  // namespace soma
