/**
 * @file
 * The DLSA exploration stage (Sec. V-C2): simulated annealing over DRAM
 * Tensor Order and Living Durations for a fixed LFA, starting from the
 * double-buffer solution. Tensors are picked with probability
 * proportional to their size.
 */
#ifndef SOMA_SEARCH_DLSA_STAGE_H
#define SOMA_SEARCH_DLSA_STAGE_H

#include "notation/encoding.h"
#include "notation/parser.h"
#include "search/driver.h"
#include "search/sa.h"
#include "sim/eval_context.h"
#include "sim/report.h"

namespace soma {

/**
 * The stage's mutation operator: picks a tensor with probability
 * proportional to its size and either moves it to another legal rank in
 * the DRAM Tensor Order or re-draws its Living Duration endpoint. The
 * move is described in a DlsaDelta so an EvalContext can re-evaluate
 * only the affected timeline suffix. Exposed for the regression tests
 * and the SA-throughput bench.
 */
class DlsaMutator {
  public:
    explicit DlsaMutator(const ParsedSchedule &parsed);

    /** Propose a neighbour of @p cur (false: no legal move found). */
    bool operator()(const DlsaEncoding &cur, DlsaEncoding *next, Rng &rng,
                    DlsaDelta *delta) const;

  private:
    const ParsedSchedule &parsed_;
    std::vector<double> weights_;  ///< per-tensor byte sizes
};

/** Hyperparameters of the DLSA stage. */
struct DlsaStageOptions {
    int beta = 1000;            ///< iterations = beta * num_tensors
    int max_iterations = 20000; ///< scaled-down cap (see DESIGN.md)
    double cost_n = 1.0;
    double cost_m = 1.0;
    SaOptions sa;
    SearchDriverOptions driver;
};

/** Best DLSA found for the given parse. */
struct DlsaStageResult {
    DlsaEncoding dlsa;
    EvalReport report;
    double cost = 0.0;
    SaStats stats;
};

/**
 * Run the DLSA stage over @p parsed with the full hardware budget
 * @p buffer_budget, starting from @p initial.
 */
DlsaStageResult RunDlsaStage(const Graph &graph, const HardwareConfig &hw,
                             const ParsedSchedule &parsed,
                             const DlsaEncoding &initial,
                             Bytes buffer_budget,
                             const DlsaStageOptions &opts, Rng &rng);

}  // namespace soma

#endif  // SOMA_SEARCH_DLSA_STAGE_H
