/**
 * @file
 * The simulated-annealing engine shared by both exploration stages and
 * the Cocco baseline (Sec. V-C): temperature schedule
 * Tn = T0 * (1 - n/N) / (1 + alpha * n/N), acceptance probability
 * p = exp((c - c') / (c * Tn)) for worse candidates.
 */
#ifndef SOMA_SEARCH_SA_H
#define SOMA_SEARCH_SA_H

#include <functional>
#include <limits>
#include <utility>

#include "common/rng.h"

namespace soma {

/** Annealing hyperparameters. */
struct SaOptions {
    int iterations = 1000;   ///< N
    double t0 = 0.2;         ///< initial temperature
    double alpha = 4.0;      ///< cooling rate
    /** Fraction of trailing iterations that accept improvements only
     *  (the paper's post-deadline greedy phase). */
    double greedy_tail = 0.1;
};

/** Temperature at iteration @p n of @p total. */
double SaTemperature(const SaOptions &opts, int n);

/** Whether to accept a move from cost @p c to cost @p c_new. */
bool SaAccept(double c, double c_new, double temperature, bool greedy,
              Rng &rng);

/** Bookkeeping returned by RunSa. */
struct SaStats {
    int iterations = 0;
    int accepted = 0;
    int improved = 0;
    double initial_cost = std::numeric_limits<double>::infinity();
    double best_cost = std::numeric_limits<double>::infinity();
};

/**
 * Generic annealer. @p mutate proposes a neighbour (returning false to
 * signal "no move possible"); @p evaluate returns the cost (+inf for
 * invalid schemes, which are then rejected unless the current state is
 * itself invalid). Keeps and returns the best state ever seen.
 */
template <typename State>
SaStats
RunSa(State *state, double *cost,
      const std::function<bool(const State &, State *, Rng &)> &mutate,
      const std::function<double(const State &)> &evaluate,
      const SaOptions &opts, Rng &rng)
{
    SaStats stats;
    stats.initial_cost = *cost;
    State best = *state;
    double best_cost = *cost;
    State current = *state;
    double current_cost = *cost;

    const int greedy_from =
        opts.iterations - static_cast<int>(opts.iterations *
                                           opts.greedy_tail);
    for (int n = 0; n < opts.iterations; ++n) {
        State candidate;
        if (!mutate(current, &candidate, rng)) continue;
        double cand_cost = evaluate(candidate);
        ++stats.iterations;
        double temp = SaTemperature(opts, n);
        bool greedy = n >= greedy_from;
        if (SaAccept(current_cost, cand_cost, temp, greedy, rng)) {
            current = std::move(candidate);
            current_cost = cand_cost;
            ++stats.accepted;
            if (current_cost < best_cost) {
                best = current;
                best_cost = current_cost;
                ++stats.improved;
            }
        }
    }
    *state = std::move(best);
    *cost = best_cost;
    stats.best_cost = best_cost;
    return stats;
}

}  // namespace soma

#endif  // SOMA_SEARCH_SA_H
