/**
 * @file
 * The simulated-annealing engine shared by both exploration stages and
 * the Cocco baseline (Sec. V-C): temperature schedule
 * Tn = T0 * (1 - n/N) / (1 + alpha * n/N), acceptance probability
 * p = exp((c - c') / (c * Tn)) for worse candidates.
 *
 * Two entry points: RunSa anneals a full budget in one call; RunSaWindow
 * anneals one iteration window [begin, end) of the budget so that the
 * SearchDriver (search/driver.h) can interleave windows of several
 * chains with best-state exchanges while keeping one global temperature
 * schedule.
 */
#ifndef SOMA_SEARCH_SA_H
#define SOMA_SEARCH_SA_H

#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <utility>

#include "common/rng.h"
#include "obs/clock.h"

namespace soma {

/** Annealing hyperparameters. */
struct SaOptions {
    int iterations = 1000;   ///< N
    double t0 = 0.2;         ///< initial temperature
    double alpha = 4.0;      ///< cooling rate
    /** Fraction of trailing iterations that accept improvements only
     *  (the paper's post-deadline greedy phase). */
    double greedy_tail = 0.1;
    /**
     * Cooperative stop: when set, RunSaWindow polls the flag (and the
     * deadline, if any) every cancel_check_interval iterations and
     * returns early once either fires. The walk state stays consistent
     * — current/best reflect every iteration actually annealed — so a
     * cancelled search still yields its best-so-far. A null flag with
     * no deadline (the default) skips all checks; results are then
     * identical to pre-cancellation builds.
     */
    const std::atomic<bool> *cancel = nullptr;
    /** Wall-clock cutoff; time_point{} (the default) means none. */
    std::chrono::steady_clock::time_point deadline{};
    int cancel_check_interval = 64;
};

/** The shared cooperative-stop predicate: a set flag or a passed
 *  deadline (time_point{} means none). Also wrapped by
 *  DriverStopRequested (driver.h) for between-stage checks. */
inline bool
StopRequested(const std::atomic<bool> *cancel,
              std::chrono::steady_clock::time_point deadline)
{
    if (cancel && cancel->load(std::memory_order_relaxed)) return true;
    return deadline.time_since_epoch().count() != 0 &&
           obs::MonotonicNow() >= deadline;
}

/** True once @p opts's cancel flag is set or its deadline has passed. */
inline bool
SaStopRequested(const SaOptions &opts)
{
    return StopRequested(opts.cancel, opts.deadline);
}

/** Temperature at iteration @p n of @p total. */
double SaTemperature(const SaOptions &opts, int n);

/** Whether to accept a move from cost @p c to cost @p c_new. */
bool SaAccept(double c, double c_new, double temperature, bool greedy,
              Rng &rng);

/**
 * Bookkeeping returned by RunSa. Every iteration of the budget is
 * accounted for: iterations == no_move + evaluated and
 * evaluated == accepted + rejected.
 */
struct SaStats {
    int iterations = 0;  ///< budget consumed (incl. failed mutations)
    int evaluated = 0;   ///< candidates actually evaluated
    int no_move = 0;     ///< mutations that produced no candidate
    int accepted = 0;    ///< evaluated and accepted
    int rejected = 0;    ///< evaluated and rejected
    int improved = 0;    ///< accepted and new best
    double initial_cost = std::numeric_limits<double>::infinity();
    double best_cost = std::numeric_limits<double>::infinity();
};

/**
 * Fold @p add into @p into: counters are summed, initial_cost and
 * best_cost keep the minimum (infinity-safe). Used by the SearchDriver
 * to aggregate per-chain stats and by the Buffer Allocator to aggregate
 * per-outer-iteration stage stats.
 */
void AccumulateSaStats(SaStats *into, const SaStats &add);

/**
 * Anneal iterations [begin, end) of the opts.iterations-long schedule.
 *
 * @p current / @p current_cost is the walking state, @p best /
 * @p best_cost the best state ever seen; both are updated in place so a
 * later window (or another chain, via the SearchDriver's exchange)
 * can continue the walk. @p mutate proposes a neighbour (returning false
 * to signal "no move possible"); @p evaluate returns the cost (+inf for
 * invalid schemes, which are then rejected unless the current state is
 * itself invalid). @p on_accept, when set, fires right after a candidate
 * is accepted — the hook incremental evaluation contexts use to promote
 * the candidate's scratch state to the new base (EvalContext::Commit).
 * Counters are accumulated into @p stats. When opts.cancel / deadline
 * request a stop, the window returns early with only the iterations
 * actually annealed accounted for.
 */
template <typename State>
void
RunSaWindow(State *current, double *current_cost, State *best,
            double *best_cost,
            const std::function<bool(const State &, State *, Rng &)> &mutate,
            const std::function<double(const State &)> &evaluate,
            const SaOptions &opts, Rng &rng, int begin, int end,
            SaStats *stats,
            const std::function<void(const State &)> &on_accept = nullptr)
{
    const int greedy_from =
        opts.iterations - static_cast<int>(opts.iterations *
                                           opts.greedy_tail);
    const bool may_stop =
        opts.cancel != nullptr ||
        opts.deadline.time_since_epoch().count() != 0;
    const int check_every = opts.cancel_check_interval > 0
                                ? opts.cancel_check_interval
                                : 64;
    int until_check = check_every;
    State candidate;  // hoisted: reuses its capacity across iterations
    for (int n = begin; n < end; ++n) {
        if (may_stop && --until_check <= 0) {
            until_check = check_every;
            if (SaStopRequested(opts)) return;
        }
        ++stats->iterations;
        if (!mutate(*current, &candidate, rng)) {
            ++stats->no_move;
            continue;
        }
        double cand_cost = evaluate(candidate);
        ++stats->evaluated;
        double temp = SaTemperature(opts, n);
        bool greedy = n >= greedy_from;
        if (SaAccept(*current_cost, cand_cost, temp, greedy, rng)) {
            std::swap(*current, candidate);
            *current_cost = cand_cost;
            ++stats->accepted;
            if (on_accept) on_accept(*current);
            if (*current_cost < *best_cost) {
                *best = *current;
                *best_cost = *current_cost;
                ++stats->improved;
            }
        } else {
            ++stats->rejected;
        }
    }
}

/**
 * Generic single-chain annealer over the full budget. Keeps and returns
 * the best state ever seen.
 */
template <typename State>
SaStats
RunSa(State *state, double *cost,
      const std::function<bool(const State &, State *, Rng &)> &mutate,
      const std::function<double(const State &)> &evaluate,
      const SaOptions &opts, Rng &rng)
{
    SaStats stats;
    stats.initial_cost = *cost;
    State best = *state;
    double best_cost = *cost;
    State current = *state;
    double current_cost = *cost;
    RunSaWindow<State>(&current, &current_cost, &best, &best_cost, mutate,
                       evaluate, opts, rng, 0, opts.iterations, &stats);
    *state = std::move(best);
    *cost = best_cost;
    stats.best_cost = best_cost;
    return stats;
}

}  // namespace soma

#endif  // SOMA_SEARCH_SA_H
