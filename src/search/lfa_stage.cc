#include "search/lfa_stage.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "obs/trace.h"
#include "search/dlsa_heuristics.h"
#include "sim/eval_context.h"
#include "sim/evaluator.h"

namespace soma {

namespace {

/** SOMA_LFA_CROSS_CHECK=1 turns the per-candidate parse cross-check on
 *  process-wide (read once; the flag is a debug switch, not a knob). */
bool
CrossCheckFromEnv()
{
    static const bool enabled = [] {
        const char *v = std::getenv("SOMA_LFA_CROSS_CHECK");
        return v && *v && std::strcmp(v, "0") != 0;
    }();
    return enabled;
}

}  // namespace

bool
MutateOrderMoveLayer(const Graph &graph, std::vector<LayerId> *order,
                     Rng &rng)
{
    const int n = static_cast<int>(order->size());
    if (n < 2) return false;
    int p = rng.UniformInt(0, n - 1);
    LayerId id = (*order)[p];

    std::vector<int> pos(n);
    for (int i = 0; i < n; ++i) pos[(*order)[i]] = i;

    int lo = 0, hi = n - 1;
    for (const InputRef &in : graph.layer(id).inputs()) {
        if (in.producer != kNoLayer)
            lo = std::max(lo, pos[in.producer] + 1);
    }
    for (const Edge &e : graph.Consumers(id))
        hi = std::min(hi, pos[e.consumer] - 1);
    if (lo >= hi) return false;
    int q = rng.UniformInt(lo, hi - 1);
    if (q >= p) ++q;  // skip the current position
    if (q == p) return false;

    if (q < p) {
        std::rotate(order->begin() + q, order->begin() + p,
                    order->begin() + p + 1);
    } else {
        std::rotate(order->begin() + p, order->begin() + p + 1,
                    order->begin() + q + 1);
    }
    return true;
}

LfaEncoding
MakeInitialLfa(const Graph &graph, const HardwareConfig &hw, int tiling_cap)
{
    std::vector<int> tiling(graph.NumLayers());
    for (LayerId id = 0; id < graph.NumLayers(); ++id) {
        tiling[id] = HeuristicParallelTiles(graph, {id}, hw, tiling_cap);
    }
    return MakeUnfusedLfa(graph, tiling);
}

/** Uniformly pick one applicable LFA operator and apply it. */
bool
MutateLfaEncoding(const Graph &graph, const LfaEncoding &cur,
                  LfaEncoding *next, int tiling_cap, Rng &rng)
{
    *next = cur;
    const int n = graph.NumLayers();
    for (int attempt = 0; attempt < 4; ++attempt) {
        switch (rng.UniformInt(0, 5)) {
          case 0: {  // Change Computing Order
            if (MutateOrderMoveLayer(graph, &next->order, rng)) return true;
            break;
          }
          case 1: {  // Change Tiling Number (x2 or /2)
            int g = rng.UniformInt(0, next->NumFlgs() - 1);
            int t = next->tiling[g];
            int nt = rng.Flip() ? t * 2 : t / 2;
            nt = std::clamp(nt, 1, tiling_cap);
            if (nt != t) {
                next->tiling[g] = nt;
                return true;
            }
            break;
          }
          case 2: {  // Add an FLC (split an FLG, both halves inherit T)
            if (static_cast<int>(next->flc_cuts.size()) >= n - 1) break;
            int p = rng.UniformInt(1, n - 1);
            auto it = std::lower_bound(next->flc_cuts.begin(),
                                       next->flc_cuts.end(), p);
            if (it != next->flc_cuts.end() && *it == p) break;
            int g = next->FlgOfPos(p);
            next->flc_cuts.insert(it, p);
            next->tiling.insert(next->tiling.begin() + g + 1,
                                next->tiling[g]);
            return true;
          }
          case 3: {  // Delete an FLC (not a DRAM cut); merge FLGs
            std::vector<int> candidates;
            for (int cut : next->flc_cuts) {
                if (!std::binary_search(next->dram_cuts.begin(),
                                        next->dram_cuts.end(), cut)) {
                    candidates.push_back(cut);
                }
            }
            if (candidates.empty()) break;
            int cut = candidates[rng.UniformInt(
                0, static_cast<int>(candidates.size()) - 1)];
            auto it = std::lower_bound(next->flc_cuts.begin(),
                                       next->flc_cuts.end(), cut);
            int g = static_cast<int>(it - next->flc_cuts.begin());
            // Inherit the Tiling Number probabilistically by layer-count
            // ratio of the merged FLGs (Sec. V-C1).
            int b0, e0, b1, e1;
            next->FlgRange(g, &b0, &e0);
            next->FlgRange(g + 1, &b1, &e1);
            double left_frac =
                static_cast<double>(e0 - b0) / ((e0 - b0) + (e1 - b1));
            int inherited = rng.Flip(left_frac) ? next->tiling[g]
                                                : next->tiling[g + 1];
            next->flc_cuts.erase(it);
            next->tiling.erase(next->tiling.begin() + g + 1);
            next->tiling[g] = inherited;
            return true;
          }
          case 4: {  // Add a DRAM Cut (must already be an FLC)
            std::vector<int> candidates;
            for (int cut : next->flc_cuts) {
                if (!std::binary_search(next->dram_cuts.begin(),
                                        next->dram_cuts.end(), cut)) {
                    candidates.push_back(cut);
                }
            }
            if (candidates.empty()) break;
            int cut = candidates[rng.UniformInt(
                0, static_cast<int>(candidates.size()) - 1)];
            next->dram_cuts.insert(
                std::lower_bound(next->dram_cuts.begin(),
                                 next->dram_cuts.end(), cut),
                cut);
            return true;
          }
          case 5: {  // Delete a DRAM Cut
            if (next->dram_cuts.empty()) break;
            int i = rng.UniformInt(
                0, static_cast<int>(next->dram_cuts.size()) - 1);
            next->dram_cuts.erase(next->dram_cuts.begin() + i);
            return true;
          }
        }
    }
    return false;
}

LfaStageResult
RunLfaStage(const Graph &graph, const HardwareConfig &hw,
            CoreArrayEvaluator &core_eval, Bytes stage_budget,
            const LfaStageOptions &opts, Rng &rng)
{
    const Ops total_ops = graph.TotalOps();
    obs::Tracer *const tracer = opts.driver.trace;
    obs::SpanScope stage_span(tracer, "lfa.stage");
    stage_span.Arg("budget_bytes", static_cast<std::int64_t>(stage_budget));

    // The stage-wide caches: one tiling memo and one tile-cost memo
    // shared by the serial seeding pass and every annealing chain.
    // Both are content-addressed pure-value caches, so sharing them
    // never perturbs per-seed determinism.
    std::shared_ptr<TilingCache> tiling_cache = opts.tiling_cache;
    if (!tiling_cache) tiling_cache = std::make_shared<TilingCache>();
    ParseOptions popts;
    popts.cross_check = opts.cross_check || CrossCheckFromEnv();

    // One evaluation = parse + classical double-buffer DLSA (lazy
    // fallback under tight budgets). The context keeps parse and
    // timeline scratch (and the incremental group memo) alive across
    // candidates; @p ctx and @p ce are per-chain, their caches shared.
    // EvaluateLfa diffs the candidate parse against the chain's
    // committed base (see on_accept below) and re-simulates only the
    // affected timeline window — bit-identical to a full evaluation.
    auto eval_with = [&graph, &hw, stage_budget, total_ops, popts,
                      n = opts.cost_n, m = opts.cost_m](
                         EvalContext &ctx, CoreArrayEvaluator &ce,
                         DlsaEncoding &dlsa_scratch,
                         const LfaEncoding &lfa) -> double {
        const ParsedSchedule &parsed = ctx.Parse(graph, lfa, ce, popts);
        if (!parsed.valid) return std::numeric_limits<double>::infinity();
        MakeDoubleBufferDlsaInto(parsed, &dlsa_scratch);
        {
            const EvalReport &rep =
                ctx.EvaluateLfa(graph, hw, parsed, dlsa_scratch,
                                stage_budget, total_ops);
            if (rep.valid) return rep.Cost(n, m);
        }
        // A tight budget may only fit the lazy variant.
        MakeLazyDlsaInto(parsed, &dlsa_scratch);
        const EvalReport &rep = ctx.EvaluateLfa(graph, hw, parsed,
                                                dlsa_scratch, stage_budget,
                                                total_ops);
        return rep.Cost(n, m);
    };

    EvalContext serial_ctx;
    serial_ctx.set_tiling_cache(tiling_cache);
    DlsaEncoding serial_dlsa;
    auto evaluate = [&](const LfaEncoding &lfa) -> double {
        return eval_with(serial_ctx, core_eval, serial_dlsa, lfa);
    };

    LfaStageResult result;
    {
        obs::SpanScope seed_span(tracer, "lfa.seed");
        result.lfa = MakeInitialLfa(graph, hw, opts.tiling_cap);
        result.cost = evaluate(result.lfa);
        seed_span.Arg("initial_cost", result.cost);
        seed_span.Arg("greedy", static_cast<std::int64_t>(
                                    opts.greedy_seed ? 1 : 0));
    }

    if (opts.greedy_seed) {
        // One right-to-left sweep over the DRAM cuts: merge neighbours
        // whenever it does not hurt. Right-to-left keeps positions of
        // not-yet-visited cuts stable.
        obs::SpanScope greedy_span(tracer, "lfa.greedy_seed");
        std::vector<int> snapshot = result.lfa.dram_cuts;
        for (auto it = snapshot.rbegin(); it != snapshot.rend(); ++it) {
            int cut = *it;
            LfaEncoding cand = result.lfa;
            auto fit = std::lower_bound(cand.flc_cuts.begin(),
                                        cand.flc_cuts.end(), cut);
            if (fit == cand.flc_cuts.end() || *fit != cut) continue;
            int g = static_cast<int>(fit - cand.flc_cuts.begin());
            // Merge FLG g and g+1; the larger side donates its tiling.
            int b0, e0, b1, e1;
            cand.FlgRange(g, &b0, &e0);
            cand.FlgRange(g + 1, &b1, &e1);
            int inherited = (e0 - b0) >= (e1 - b1) ? cand.tiling[g]
                                                   : cand.tiling[g + 1];
            cand.flc_cuts.erase(fit);
            cand.tiling.erase(cand.tiling.begin() + g + 1);
            cand.tiling[g] = inherited;
            auto dit = std::lower_bound(cand.dram_cuts.begin(),
                                        cand.dram_cuts.end(), cut);
            if (dit != cand.dram_cuts.end() && *dit == cut)
                cand.dram_cuts.erase(dit);
            double cand_cost = evaluate(cand);
            if (cand_cost <= result.cost) {
                result.lfa = std::move(cand);
                result.cost = cand_cost;
            }
        }
    }

    SaOptions sa = opts.sa;
    sa.iterations = std::min(opts.max_iterations,
                             opts.beta * graph.NumLayers());

    // Anneal K chains; each owns an EvalContext of parse/eval scratch
    // and a CoreArrayEvaluator, but all evaluators share the stage's
    // tile-cost memo and all contexts the stage's tiling cache — every
    // chain starts warm instead of rebuilding both caches from zero.
    auto make_env = [&](int /*chain*/) {
        ChainEnv<LfaEncoding> env;
        auto ce = std::make_shared<CoreArrayEvaluator>(graph, hw,
                                                       core_eval.memo());
        auto ctx = std::make_shared<EvalContext>();
        ctx->set_tiling_cache(tiling_cache);
        auto dlsa = std::make_shared<DlsaEncoding>();
        env.mutate = [&graph, cap = opts.tiling_cap](const LfaEncoding &cur,
                                                     LfaEncoding *next,
                                                     Rng &r) {
            return MutateLfaEncoding(graph, cur, next, cap, r);
        };
        env.evaluate = [eval_with, ce, ctx, dlsa](const LfaEncoding &lfa) {
            return eval_with(*ctx, *ce, *dlsa, lfa);
        };
        // Accepted candidates become the delta base: EvaluateLfa diffs
        // every later candidate's parse against it and resumes the
        // timeline mid-stream instead of replaying it from tile zero.
        env.on_accept = [ctx](const LfaEncoding &) { ctx->Commit(); };
        env.on_adopt = [eval_with, ce, ctx, dlsa](const LfaEncoding &lfa,
                                                  double) {
            eval_with(*ctx, *ce, *dlsa, lfa);
            ctx->Commit();
        };
        env.annotate = [ctx](obs::SpanScope &span) {
            const EvalContext::DeltaStats &ds = ctx->delta_stats();
            span.Arg("delta_evals",
                     static_cast<std::int64_t>(ds.delta_evals));
            span.Arg("windowed_runs",
                     static_cast<std::int64_t>(ds.windowed_runs));
            span.Arg("splices", static_cast<std::int64_t>(ds.splices));
            span.Arg("full_fallbacks",
                     static_cast<std::int64_t>(ds.full_fallbacks));
            span.Arg("window_events",
                     static_cast<std::int64_t>(ds.window_events));
            span.Arg("last_window_events",
                     static_cast<std::int64_t>(ds.last_window_events));
            span.Arg("resume_ci",
                     static_cast<std::int64_t>(ds.last_resume_ci));
            span.Arg("resume_di",
                     static_cast<std::int64_t>(ds.last_resume_di));
        };
        return env;
    };
    result.stats = RunDriverAndAdopt<LfaEncoding>(
        make_env, sa, opts.driver, rng, &result.lfa, &result.cost);

    // Materialize the winning scheme once more for the caller.
    {
        obs::SpanScope final_span(tracer, "lfa.final");
        result.parsed = ParseLfa(graph, result.lfa, core_eval);
        result.dlsa = MakeDoubleBufferDlsa(result.parsed);
        result.report = EvaluateSchedule(graph, hw, result.parsed,
                                         result.dlsa, stage_budget,
                                         total_ops);
        if (!result.report.valid) {
            result.dlsa = MakeLazyDlsa(result.parsed);
            result.report = EvaluateSchedule(graph, hw, result.parsed,
                                             result.dlsa, stage_budget,
                                             total_ops);
        }
    }
    stage_span.Arg("iterations", static_cast<std::int64_t>(
                                     result.stats.iterations));
    stage_span.Arg("evaluated", static_cast<std::int64_t>(
                                    result.stats.evaluated));
    stage_span.Arg("best_cost", result.cost);
    // Incremental-parse / tiling-cache effectiveness for the trace
    // viewer: the serial context's group-memo telemetry plus the
    // stage-wide tiling cache counters.
    const ParseScratch &scratch = serial_ctx.parse_scratch();
    stage_span.Arg("parse_dirty_groups",
                   static_cast<std::int64_t>(scratch.last_dirty_groups));
    stage_span.Arg("parse_clean_groups",
                   static_cast<std::int64_t>(scratch.last_clean_groups));
    stage_span.Arg("parse_remapped_groups",
                   static_cast<std::int64_t>(scratch.last_remapped_groups));
    const TilingCache::Stats tstats = tiling_cache->stats();
    stage_span.Arg("tiling_hits", static_cast<std::int64_t>(tstats.hits));
    stage_span.Arg("tiling_misses",
                   static_cast<std::int64_t>(tstats.misses));
    stage_span.Arg("tiling_remaps",
                   static_cast<std::int64_t>(tstats.remaps));
    return result;
}

}  // namespace soma
