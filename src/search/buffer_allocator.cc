#include "search/buffer_allocator.h"

#include <cmath>

#include "common/logging.h"
#include "obs/trace.h"
#include "search/dlsa_heuristics.h"
#include "sim/evaluator.h"

namespace soma {

SomaSearchResult
RunBufferAllocatedSearch(const Graph &graph, const HardwareConfig &hw,
                         const LfaStageOptions &lfa_opts,
                         const DlsaStageOptions &dlsa_opts,
                         const BufferAllocatorOptions &opts, Rng &rng)
{
    SomaSearchResult best;
    best.cost = std::numeric_limits<double>::infinity();
    obs::Tracer *const tracer = lfa_opts.driver.trace;
    obs::SpanScope search_span(tracer, "alloc.search");

    // One tiling memo and one tile-cost memo for the whole search: the
    // outer iterations only vary the stage budget, which neither
    // depends on, so every iteration after the first starts with a
    // warm cache. A service-injected warm state (lfa_opts pre-filled)
    // additionally carries both across requests.
    LfaStageOptions lfa_opts_shared = lfa_opts;
    if (!lfa_opts_shared.tiling_cache)
        lfa_opts_shared.tiling_cache = std::make_shared<TilingCache>();
    if (!lfa_opts_shared.tile_cost_memo)
        lfa_opts_shared.tile_cost_memo = std::make_shared<TileCostMemo>();
    CoreArrayEvaluator core_eval(graph, hw, lfa_opts_shared.tile_cost_memo);
    const Ops total_ops = graph.TotalOps();

    // Keep the result well-formed even if no valid scheme is ever found
    // (reports stay invalid; encodings stay consistent).
    best.lfa = MakeInitialLfa(graph, hw, lfa_opts.tiling_cap);
    best.parsed = ParseLfa(graph, best.lfa, core_eval);
    best.stage1_dlsa = MakeDoubleBufferDlsa(best.parsed);
    best.dlsa = best.stage1_dlsa;

    Bytes buffer_max = 0;
    int no_improve = 0;

    for (int iter = 0; iter < opts.max_iterations; ++iter) {
        // Cooperative stop between outer iterations; the stages below
        // additionally stop iteration-granularly via the same flag.
        if (DriverStopRequested(lfa_opts.driver)) break;
        Bytes stage_budget;
        if (iter == 0) {
            stage_budget = hw.gbuf_bytes;
        } else {
            stage_budget = buffer_max -
                           static_cast<Bytes>(std::llround(
                               static_cast<double>(iter) * opts.shrink_frac *
                               static_cast<double>(buffer_max)));
            if (stage_budget <= 0) break;
        }

        obs::SpanScope iter_span(tracer, "alloc.iteration");
        iter_span.Arg("iter", static_cast<std::int64_t>(iter));
        iter_span.Arg("budget_bytes",
                      static_cast<std::int64_t>(stage_budget));

        LfaStageResult s1 = RunLfaStage(graph, hw, core_eval, stage_budget,
                                        lfa_opts_shared, rng);
        AccumulateSaStats(&best.lfa_stats, s1.stats);
        if (!s1.report.valid) {
            SOMA_INFO << "buffer allocator iter " << iter
                      << ": stage 1 found no valid scheme under budget "
                      << stage_budget;
            ++no_improve;
            if (no_improve >= opts.patience && iter > 0) break;
            continue;
        }
        if (iter == 0) {
            buffer_max = PeakBufferUsage(s1.parsed, s1.dlsa);
            if (buffer_max <= 0) buffer_max = hw.gbuf_bytes;
        }

        DlsaStageResult s2 = RunDlsaStage(graph, hw, s1.parsed, s1.dlsa,
                                          hw.gbuf_bytes, dlsa_opts, rng);
        AccumulateSaStats(&best.dlsa_stats, s2.stats);

        best.iteration_costs.push_back(s2.cost);
        ++best.outer_iterations;
        iter_span.Arg("cost", s2.cost);

        if (s2.cost < best.cost) {
            best.cost = s2.cost;
            best.lfa = s1.lfa;
            best.parsed = std::move(s1.parsed);
            best.stage1_dlsa = s1.dlsa;
            best.dlsa = s2.dlsa;
            best.report = s2.report;
            // Ours_1 is the same LFA with the double-buffer DLSA,
            // reported against the full hardware buffer.
            best.stage1_report = EvaluateSchedule(
                graph, hw, best.parsed, best.stage1_dlsa, hw.gbuf_bytes,
                total_ops);
            no_improve = 0;
        } else {
            ++no_improve;
            if (no_improve >= opts.patience) break;
        }
    }
    search_span.Arg("outer_iterations",
                    static_cast<std::int64_t>(best.outer_iterations));
    search_span.Arg("best_cost", best.cost);
    return best;
}

}  // namespace soma
