/**
 * @file
 * SearchWarmState: the bundle of cross-request pure-value caches a
 * search can start warm from. Both members are content-addressed memos
 * of pure functions — a FlgTiling is determined by (graph, member set,
 * Tiling Number) and a TileCost by (graph, hardware, layer, tile
 * extents) — so handing one bundle to any number of searches (even
 * concurrently) never changes a single result byte; it only skips
 * re-deriving values some earlier search already derived.
 *
 * Producers: the service layer's WarmStateCache keys bundles by (graph
 * fingerprint, hardware fingerprint) and injects them into requests.
 * Consumers: SomaOptions / CoccoOptions carry the bundle down to the
 * stage caches (LfaStageOptions::tiling_cache / tile_cost_memo and the
 * Buffer Allocator's CoreArrayEvaluator). Null members simply mean
 * "start cold with a private cache" — the pre-warm-state behaviour.
 */
#ifndef SOMA_SEARCH_WARM_STATE_H
#define SOMA_SEARCH_WARM_STATE_H

#include <memory>

#include "corearray/core_array.h"
#include "tiling/tiling_cache.h"

namespace soma {

struct SearchWarmState {
    std::shared_ptr<TilingCache> tilings;
    std::shared_ptr<TileCostMemo> tile_costs;
};

}  // namespace soma

#endif  // SOMA_SEARCH_WARM_STATE_H
