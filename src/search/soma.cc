#include "search/soma.h"

namespace soma {

SomaOptions
QuickSomaOptions(std::uint64_t seed)
{
    SomaOptions opts;
    opts.seed = seed;
    opts.lfa.beta = 10;
    opts.lfa.max_iterations = 600;
    opts.dlsa.beta = 10;
    opts.dlsa.max_iterations = 1500;
    opts.alloc.max_iterations = 2;
    opts.Finalize();
    return opts;
}

SomaOptions
DefaultSomaOptions(std::uint64_t seed)
{
    SomaOptions opts;
    opts.seed = seed;
    opts.driver.chains = 4;
    opts.lfa.beta = 40;
    opts.lfa.max_iterations = 6000;
    opts.dlsa.beta = 40;
    opts.dlsa.max_iterations = 8000;
    opts.alloc.max_iterations = 3;
    opts.Finalize();
    return opts;
}

SomaSearchResult
RunSoma(const Graph &graph, const HardwareConfig &hw, SomaOptions opts)
{
    opts.Finalize();
    Rng rng(opts.seed);
    return RunBufferAllocatedSearch(graph, hw, opts.lfa, opts.dlsa,
                                    opts.alloc, rng);
}

}  // namespace soma
