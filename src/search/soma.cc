#include "search/soma.h"

namespace soma {

SomaOptions
PropagateSomaOptions(SomaOptions opts)
{
    opts.lfa.cost_n = opts.cost_n;
    opts.lfa.cost_m = opts.cost_m;
    opts.dlsa.cost_n = opts.cost_n;
    opts.dlsa.cost_m = opts.cost_m;
    opts.lfa.driver = opts.driver;
    opts.dlsa.driver = opts.driver;
    if (!opts.lfa.tiling_cache) opts.lfa.tiling_cache = opts.warm.tilings;
    if (!opts.lfa.tile_cost_memo)
        opts.lfa.tile_cost_memo = opts.warm.tile_costs;
    return opts;
}

SomaOptions
QuickSomaOptions(std::uint64_t seed)
{
    SomaOptions opts;
    opts.seed = seed;
    opts.lfa.beta = 10;
    opts.lfa.max_iterations = 600;
    opts.dlsa.beta = 10;
    opts.dlsa.max_iterations = 1500;
    opts.alloc.max_iterations = 2;
    return opts;
}

SomaOptions
DefaultSomaOptions(std::uint64_t seed)
{
    // Raised from (40/6000, 40/8000) once the incremental LFA pipeline
    // (group-memoized parse + shared tiling/tile-cost caches) lifted
    // candidates/s — see bench_sa_throughput's lfa rows and DESIGN.md.
    SomaOptions opts;
    opts.seed = seed;
    opts.driver.chains = 4;
    opts.lfa.beta = 60;
    opts.lfa.max_iterations = 12000;
    opts.dlsa.beta = 200;
    opts.dlsa.max_iterations = 24000;
    opts.alloc.max_iterations = 3;
    return opts;
}

SomaOptions
FullSomaOptions(std::uint64_t seed)
{
    // The paper's budgets (Sec. V-C): beta_1 = 100, beta_2 = 1000.
    // The caps only guard degenerate workloads (thousands of layers /
    // tensors); typical graphs stay under them.
    SomaOptions opts = DefaultSomaOptions(seed);
    opts.lfa.beta = 100;
    opts.lfa.max_iterations = 50000;
    opts.dlsa.beta = 1000;
    opts.dlsa.max_iterations = 150000;
    opts.alloc.max_iterations = 5;
    return opts;
}

SomaSearchResult
RunSoma(const Graph &graph, const HardwareConfig &hw, SomaOptions opts)
{
    opts = PropagateSomaOptions(std::move(opts));
    Rng rng(opts.seed);
    return RunBufferAllocatedSearch(graph, hw, opts.lfa, opts.dlsa,
                                    opts.alloc, rng);
}

}  // namespace soma
