#include "search/soma.h"

namespace soma {

SomaOptions
PropagateSomaOptions(SomaOptions opts)
{
    opts.lfa.cost_n = opts.cost_n;
    opts.lfa.cost_m = opts.cost_m;
    opts.dlsa.cost_n = opts.cost_n;
    opts.dlsa.cost_m = opts.cost_m;
    opts.lfa.driver = opts.driver;
    opts.dlsa.driver = opts.driver;
    if (!opts.lfa.tiling_cache) opts.lfa.tiling_cache = opts.warm.tilings;
    if (!opts.lfa.tile_cost_memo)
        opts.lfa.tile_cost_memo = opts.warm.tile_costs;
    return opts;
}

const SomaProfileBudgets &
SomaBudgetsFor(SomaProfile profile)
{
    // Default was raised from (40/6000, 40/8000) once the incremental
    // LFA pipeline (group-memoized parse + shared tiling/tile-cost
    // caches) lifted candidates/s; Full carries the paper's budgets
    // (Sec. V-C): beta_1 = 100, beta_2 = 1000 — the caps only guard
    // degenerate workloads (thousands of layers / tensors).
    static const SomaProfileBudgets kQuick = {
        /*lfa_beta=*/10,   /*lfa_max_iterations=*/600,
        /*dlsa_beta=*/10,  /*dlsa_max_iterations=*/1500,
        /*alloc_max_iterations=*/2,
        /*bench_dlsa_iters=*/2000, /*bench_lfa_iters=*/200,
        /*bench_stage_iters=*/1500};
    static const SomaProfileBudgets kDefault = {
        /*lfa_beta=*/60,   /*lfa_max_iterations=*/12000,
        /*dlsa_beta=*/200, /*dlsa_max_iterations=*/24000,
        /*alloc_max_iterations=*/3,
        /*bench_dlsa_iters=*/10000, /*bench_lfa_iters=*/1000,
        /*bench_stage_iters=*/6000};
    static const SomaProfileBudgets kFull = {
        /*lfa_beta=*/100,   /*lfa_max_iterations=*/50000,
        /*dlsa_beta=*/1000, /*dlsa_max_iterations=*/150000,
        /*alloc_max_iterations=*/5,
        /*bench_dlsa_iters=*/50000, /*bench_lfa_iters=*/4000,
        /*bench_stage_iters=*/20000};
    switch (profile) {
      case SomaProfile::kQuick:
        return kQuick;
      case SomaProfile::kFull:
        return kFull;
      case SomaProfile::kDefault:
      default:
        return kDefault;
    }
}

namespace {

SomaOptions
OptionsFromBudgets(const SomaProfileBudgets &b, std::uint64_t seed)
{
    SomaOptions opts;
    opts.seed = seed;
    opts.lfa.beta = b.lfa_beta;
    opts.lfa.max_iterations = b.lfa_max_iterations;
    opts.dlsa.beta = b.dlsa_beta;
    opts.dlsa.max_iterations = b.dlsa_max_iterations;
    opts.alloc.max_iterations = b.alloc_max_iterations;
    return opts;
}

}  // namespace

SomaOptions
QuickSomaOptions(std::uint64_t seed)
{
    return OptionsFromBudgets(SomaBudgetsFor(SomaProfile::kQuick), seed);
}

SomaOptions
DefaultSomaOptions(std::uint64_t seed)
{
    SomaOptions opts =
        OptionsFromBudgets(SomaBudgetsFor(SomaProfile::kDefault), seed);
    opts.driver.chains = 4;
    return opts;
}

SomaOptions
FullSomaOptions(std::uint64_t seed)
{
    SomaOptions opts =
        OptionsFromBudgets(SomaBudgetsFor(SomaProfile::kFull), seed);
    opts.driver.chains = 4;
    return opts;
}

SomaSearchResult
RunSoma(const Graph &graph, const HardwareConfig &hw, SomaOptions opts)
{
    opts = PropagateSomaOptions(std::move(opts));
    Rng rng(opts.seed);
    return RunBufferAllocatedSearch(graph, hw, opts.lfa, opts.dlsa,
                                    opts.alloc, rng);
}

}  // namespace soma
