#include "search/soma.h"

namespace soma {

SomaOptions
PropagateSomaOptions(SomaOptions opts)
{
    opts.lfa.cost_n = opts.cost_n;
    opts.lfa.cost_m = opts.cost_m;
    opts.dlsa.cost_n = opts.cost_n;
    opts.dlsa.cost_m = opts.cost_m;
    opts.lfa.driver = opts.driver;
    opts.dlsa.driver = opts.driver;
    return opts;
}

SomaOptions
QuickSomaOptions(std::uint64_t seed)
{
    SomaOptions opts;
    opts.seed = seed;
    opts.lfa.beta = 10;
    opts.lfa.max_iterations = 600;
    opts.dlsa.beta = 10;
    opts.dlsa.max_iterations = 1500;
    opts.alloc.max_iterations = 2;
    return opts;
}

SomaOptions
DefaultSomaOptions(std::uint64_t seed)
{
    SomaOptions opts;
    opts.seed = seed;
    opts.driver.chains = 4;
    opts.lfa.beta = 40;
    opts.lfa.max_iterations = 6000;
    opts.dlsa.beta = 40;
    opts.dlsa.max_iterations = 8000;
    opts.alloc.max_iterations = 3;
    return opts;
}

SomaOptions
FullSomaOptions(std::uint64_t seed)
{
    SomaOptions opts = DefaultSomaOptions(seed);
    opts.lfa.beta = 100;
    opts.lfa.max_iterations = 20000;
    opts.dlsa.beta = 100;
    opts.dlsa.max_iterations = 30000;
    opts.alloc.max_iterations = 5;
    return opts;
}

SomaSearchResult
RunSoma(const Graph &graph, const HardwareConfig &hw, SomaOptions opts)
{
    opts = PropagateSomaOptions(std::move(opts));
    Rng rng(opts.seed);
    return RunBufferAllocatedSearch(graph, hw, opts.lfa, opts.dlsa,
                                    opts.alloc, rng);
}

}  // namespace soma
