#include "search/sa.h"

#include <algorithm>
#include <cmath>

namespace soma {

double
SaTemperature(const SaOptions &opts, int n)
{
    double frac = static_cast<double>(n) / std::max(1, opts.iterations);
    return opts.t0 * (1.0 - frac) / (1.0 + opts.alpha * frac);
}

void
AccumulateSaStats(SaStats *into, const SaStats &add)
{
    into->iterations += add.iterations;
    into->evaluated += add.evaluated;
    into->no_move += add.no_move;
    into->accepted += add.accepted;
    into->rejected += add.rejected;
    into->improved += add.improved;
    into->initial_cost = std::min(into->initial_cost, add.initial_cost);
    into->best_cost = std::min(into->best_cost, add.best_cost);
}

bool
SaAccept(double c, double c_new, double temperature, bool greedy, Rng &rng)
{
    if (std::isinf(c)) return std::isfinite(c_new);
    if (c_new <= c) return true;
    if (greedy || std::isinf(c_new) || temperature <= 0.0) return false;
    // p = exp((c - c') / (c * Tn)); c > 0 because costs are
    // energy x delay products of real schedules.
    double p = std::exp((c - c_new) / (c * temperature));
    return rng.UniformReal() < p;
}

}  // namespace soma
