/**
 * @file
 * SoMa end-to-end driver (Fig. 5): model + hardware + framework configs
 * in; best scheduling scheme, energy/latency report (and, through
 * src/compiler, IR + instructions) out.
 */
#ifndef SOMA_SEARCH_SOMA_H
#define SOMA_SEARCH_SOMA_H

#include <cstdint>

#include "search/buffer_allocator.h"
#include "search/warm_state.h"

namespace soma {

/**
 * Framework configuration: optimization goal Energy^n x Delay^m, search
 * hyperparameters, seed. The default iteration budgets are scaled down
 * from the paper's (beta_1=100, beta_2=1000 on a 192-core server) to
 * laptop-friendly values; raise them for higher-fidelity runs.
 */
struct SomaOptions {
    double cost_n = 1.0;
    double cost_m = 1.0;
    std::uint64_t seed = 1;

    /** Parallel multi-seed search configuration, applied to both
     *  stages. Results are deterministic in (seed, driver.chains) and
     *  independent of driver.threads. */
    SearchDriverOptions driver;

    /** Optional cross-request warm caches (service-injected; see
     *  warm_state.h). Propagated into the LFA stage's tiling cache and
     *  tile-cost memo unless those are set explicitly. Pure-value
     *  caches: presence never changes a result byte. */
    SearchWarmState warm;

    LfaStageOptions lfa;
    DlsaStageOptions dlsa;
    BufferAllocatorOptions alloc;
};

/** The three canonical search profiles (quick/default/full). */
enum class SomaProfile { kQuick, kDefault, kFull };

/**
 * One profile's iteration budgets — the single source the
 * Quick/Default/FullSomaOptions presets and bench_sa_throughput's
 * profile table both draw from, so the facade and the bench can never
 * quote different budgets for the same profile name.
 */
struct SomaProfileBudgets {
    int lfa_beta = 0;
    int lfa_max_iterations = 0;
    int dlsa_beta = 0;
    int dlsa_max_iterations = 0;
    int alloc_max_iterations = 0;
    /** bench_sa_throughput loop sizes at this profile: DLSA/LFA inner
     *  walk iterations and the driver-stage per-chain iteration cap. */
    int bench_dlsa_iters = 0;
    int bench_lfa_iters = 0;
    int bench_stage_iters = 0;
};

/** The budgets of @p profile (static storage, never changes). */
const SomaProfileBudgets &SomaBudgetsFor(SomaProfile profile);

/**
 * Copy of @p opts with the top-level cost exponents and driver config
 * propagated into both stage options. RunSoma applies this internally —
 * callers never need to; it is exposed only for code that invokes
 * RunLfaStage / RunDlsaStage directly from a SomaOptions (e.g. the
 * "lfa-only" scheduler in src/api/registry.cc).
 */
SomaOptions PropagateSomaOptions(SomaOptions opts);

/** A quick profile for tests/examples: small SA budgets. */
SomaOptions QuickSomaOptions(std::uint64_t seed = 1);

/** The default evaluation profile used by the benches. */
SomaOptions DefaultSomaOptions(std::uint64_t seed = 1);

/** Paper-fidelity budgets (beta_1 = beta_2 = 100, 5 outer iterations):
 *  the benches' "full" profile. */
SomaOptions FullSomaOptions(std::uint64_t seed = 1);

/** Run the full two-stage, buffer-allocated exploration. Cost exponents
 *  and driver config are propagated into the stages internally. */
SomaSearchResult RunSoma(const Graph &graph, const HardwareConfig &hw,
                         SomaOptions opts);

}  // namespace soma

#endif  // SOMA_SEARCH_SOMA_H
