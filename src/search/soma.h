/**
 * @file
 * SoMa end-to-end driver (Fig. 5): model + hardware + framework configs
 * in; best scheduling scheme, energy/latency report (and, through
 * src/compiler, IR + instructions) out.
 */
#ifndef SOMA_SEARCH_SOMA_H
#define SOMA_SEARCH_SOMA_H

#include <cstdint>

#include "search/buffer_allocator.h"

namespace soma {

/**
 * Framework configuration: optimization goal Energy^n x Delay^m, search
 * hyperparameters, seed. The default iteration budgets are scaled down
 * from the paper's (beta_1=100, beta_2=1000 on a 192-core server) to
 * laptop-friendly values; raise them for higher-fidelity runs.
 */
struct SomaOptions {
    double cost_n = 1.0;
    double cost_m = 1.0;
    std::uint64_t seed = 1;

    /** Parallel multi-seed search configuration, applied to both
     *  stages. Results are deterministic in (seed, driver.chains) and
     *  independent of driver.threads. */
    SearchDriverOptions driver;

    LfaStageOptions lfa;
    DlsaStageOptions dlsa;
    BufferAllocatorOptions alloc;

    /** Propagate cost exponents and driver config into the stages. */
    void Finalize()
    {
        lfa.cost_n = cost_n;
        lfa.cost_m = cost_m;
        dlsa.cost_n = cost_n;
        dlsa.cost_m = cost_m;
        lfa.driver = driver;
        dlsa.driver = driver;
    }
};

/** A quick profile for tests/examples: small SA budgets. */
SomaOptions QuickSomaOptions(std::uint64_t seed = 1);

/** The default evaluation profile used by the benches. */
SomaOptions DefaultSomaOptions(std::uint64_t seed = 1);

/** Run the full two-stage, buffer-allocated exploration. */
SomaSearchResult RunSoma(const Graph &graph, const HardwareConfig &hw,
                         SomaOptions opts);

}  // namespace soma

#endif  // SOMA_SEARCH_SOMA_H
