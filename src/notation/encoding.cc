#include "notation/encoding.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace soma {

std::vector<LayerId>
LfaEncoding::FlgLayers(int g) const
{
    int begin, end;
    FlgRange(g, &begin, &end);
    return std::vector<LayerId>(order.begin() + begin, order.begin() + end);
}

void
LfaEncoding::FlgRange(int g, int *begin, int *end) const
{
    assert(g >= 0 && g < NumFlgs());
    *begin = (g == 0) ? 0 : flc_cuts[g - 1];
    *end = (g == NumFlgs() - 1) ? static_cast<int>(order.size())
                                : flc_cuts[g];
}

int
LfaEncoding::FlgOfPos(int pos) const
{
    int g = 0;
    for (int cut : flc_cuts) {
        if (pos < cut) break;
        ++g;
    }
    return g;
}

int
LfaEncoding::LgOfPos(int pos) const
{
    int lg = 0;
    for (int cut : dram_cuts) {
        if (pos < cut) break;
        ++lg;
    }
    return lg;
}

bool
LfaEncoding::StructurallyValid(const Graph &graph, std::string *why) const
{
    auto fail = [&](const char *msg) {
        if (why) *why = msg;
        return false;
    };
    const int n = graph.NumLayers();
    if (static_cast<int>(order.size()) != n)
        return fail("order arity mismatch");
    if (!graph.IsValidOrder(order)) return fail("order violates deps");
    int prev = 0;
    for (int cut : flc_cuts) {
        if (cut <= prev || cut >= n) return fail("flc cuts not sorted");
        prev = cut;
    }
    for (int cut : dram_cuts) {
        if (!std::binary_search(flc_cuts.begin(), flc_cuts.end(), cut))
            return fail("dram cut not in flc set");
    }
    for (std::size_t i = 1; i < dram_cuts.size(); ++i) {
        if (dram_cuts[i] <= dram_cuts[i - 1])
            return fail("dram cuts not sorted");
    }
    if (static_cast<int>(tiling.size()) != NumFlgs())
        return fail("tiling arity mismatch");
    for (int t : tiling) {
        if (t < 1) return fail("tiling number < 1");
    }
    return true;
}

std::string
LfaEncoding::ToString(const Graph &graph) const
{
    if (order.empty() ||
        static_cast<int>(tiling.size()) != NumFlgs()) {
        return "<empty>";
    }
    std::ostringstream os;
    os << "[";
    for (int g = 0; g < NumFlgs(); ++g) {
        int begin, end;
        FlgRange(g, &begin, &end);
        if (g > 0) {
            bool is_dram = std::binary_search(dram_cuts.begin(),
                                              dram_cuts.end(), begin);
            os << (is_dram ? " || " : " | ");
        }
        for (int p = begin; p < end; ++p) {
            if (p > begin) os << ",";
            os << graph.layer(order[p]).name();
        }
    }
    os << "]{";
    for (int g = 0; g < NumFlgs(); ++g) {
        if (g > 0) os << ",";
        os << tiling[g];
    }
    os << "}";
    return os.str();
}

LfaEncoding
MakeUnfusedLfa(const Graph &graph, const std::vector<int> &tiling_per_layer)
{
    const int n = graph.NumLayers();
    assert(static_cast<int>(tiling_per_layer.size()) == n);
    LfaEncoding lfa;
    lfa.order = graph.TopoOrder();
    for (int p = 1; p < n; ++p) {
        lfa.flc_cuts.push_back(p);
        lfa.dram_cuts.push_back(p);
    }
    for (int p = 0; p < n; ++p)
        lfa.tiling.push_back(tiling_per_layer[lfa.order[p]]);
    return lfa;
}

}  // namespace soma
