#include "notation/parser.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <numeric>

#include "common/logging.h"
#include "obs/prof.h"
#include "tiling/tiling_cache.h"

namespace soma {

std::string
DramTensor::Label(const Graph &graph) const
{
    std::string base;
    switch (kind) {
      case DramTensorKind::kWeight:
        base = "W:" + graph.layer(layer).name();
        break;
      case DramTensorKind::kIfmap:
        base = "I:" + graph.layer(layer).name();
        break;
      case DramTensorKind::kOfmap:
        base = "O:" + graph.layer(layer).name();
        break;
    }
    if (round >= 0) base += "#" + std::to_string(round);
    return base;
}

TilePos
ParsedSchedule::FreePointMin(int j) const
{
    const DramTensor &t = tensors[j];
    return t.IsLoad() ? 0 : t.first_use + 1;
}

TilePos
ParsedSchedule::FreePointMax(int j) const
{
    const DramTensor &t = tensors[j];
    return t.IsLoad() ? t.first_use : NumTiles();
}

Bytes
ParsedSchedule::TotalDramBytes() const
{
    Bytes total = 0;
    for (const DramTensor &t : tensors) total += t.bytes;
    return total;
}

double
ParsedSchedule::TotalComputeSeconds() const
{
    double total = 0.0;
    for (const TileInfo &t : tiles) total += t.cost.seconds;
    return total;
}

namespace {

/** Producer shape lookup covering both graph layers and external refs. */
void
ProducerShape(const Graph &graph, const InputRef &in, int *c, int *h, int *w)
{
    if (in.producer == kNoLayer) {
        *c = in.ext.channels;
        *h = in.ext.height;
        *w = in.ext.width;
    } else {
        const Layer &p = graph.layer(in.producer);
        *c = p.outChannels();
        *h = p.outHeight();
        *w = p.outWidth();
    }
}

void ParseLfaIntoImpl(const Graph &graph, const LfaEncoding &lfa,
                      CoreArrayEvaluator &core_eval,
                      const ParseOptions &popts, ParseScratch *scratch,
                      ParsedSchedule *out_ptr, TilingCache *tiling_cache);

}  // namespace

ParsedSchedule
ParseLfa(const Graph &graph, const LfaEncoding &lfa,
         CoreArrayEvaluator &core_eval, const ParseOptions &popts)
{
    ParseScratch scratch;
    ParsedSchedule out;
    ParseLfaInto(graph, lfa, core_eval, popts, &scratch, &out);
    return out;
}

bool
ParsedSchedulesIdentical(const ParsedSchedule &a, const ParsedSchedule &b)
{
    return a.valid == b.valid && a.why_invalid == b.why_invalid &&
           a.num_flgs == b.num_flgs && a.num_lgs == b.num_lgs &&
           a.tiles == b.tiles && a.tensors == b.tensors &&
           a.onchip == b.onchip;
}

void
ParseLfaInto(const Graph &graph, const LfaEncoding &lfa,
             CoreArrayEvaluator &core_eval, const ParseOptions &popts,
             ParseScratch *scratch, ParsedSchedule *out_ptr,
             TilingCache *tiling_cache)
{
    SOMA_PROF_SCOPE("parse.lfa");
    ParseLfaIntoImpl(graph, lfa, core_eval, popts, scratch, out_ptr,
                     tiling_cache);
    if (popts.cross_check) {
        // Reference: from-scratch parse with no group memo and no
        // shared tiling cache. Any divergence is a bug in the
        // incremental path — fail loudly, never silently mis-schedule.
        ParseOptions ref_popts = popts;
        ref_popts.cross_check = false;
        ref_popts.reuse_groups = false;
        ParseScratch ref_scratch;
        ParsedSchedule ref;
        ParseLfaIntoImpl(graph, lfa, core_eval, ref_popts, &ref_scratch,
                         &ref, nullptr);
        if (!ParsedSchedulesIdentical(*out_ptr, ref)) {
            SOMA_ERROR << "incremental parse diverged from full parse "
                          "for "
                       << lfa.ToString(graph);
            std::abort();
        }
    }
}

namespace {

void
ParseLfaIntoImpl(const Graph &graph, const LfaEncoding &lfa,
                 CoreArrayEvaluator &core_eval, const ParseOptions &popts,
                 ParseScratch *scratch, ParsedSchedule *out_ptr,
                 TilingCache *tiling_cache)
{
    ParsedSchedule &out = *out_ptr;
    out.valid = false;
    out.why_invalid.clear();
    out.tiles.clear();
    out.tensors.clear();
    out.onchip.clear();
    out.num_flgs = 0;
    out.num_lgs = 0;
    if (!lfa.StructurallyValid(graph, &out.why_invalid)) return;

    const int n = graph.NumLayers();
    out.num_flgs = lfa.NumFlgs();
    out.num_lgs = lfa.NumLgs();

    // Per-layer placement metadata.
    std::vector<int> &flg_of_layer = scratch->flg_of_layer;
    std::vector<int> &lg_of_layer = scratch->lg_of_layer;
    std::vector<int> &idx_in_flg = scratch->idx_in_flg;
    flg_of_layer.assign(n, -1);
    lg_of_layer.assign(n, -1);
    idx_in_flg.assign(n, -1);
    std::vector<std::vector<LayerId>> &flg_layers = scratch->flg_layers;
    flg_layers.resize(lfa.NumFlgs());
    for (int g = 0; g < lfa.NumFlgs(); ++g) flg_layers[g].clear();
    for (int g = 0; g < lfa.NumFlgs(); ++g) {
        int begin, end;
        lfa.FlgRange(g, &begin, &end);
        for (int p = begin; p < end; ++p) {
            LayerId id = lfa.order[p];
            flg_of_layer[id] = g;
            lg_of_layer[id] = lfa.LgOfPos(p);
            idx_in_flg[id] = p - begin;
            flg_layers[g].push_back(id);
        }
    }

    // Tile and cost the FLGs. Group blocks are content-addressed by
    // their sink-set signature (canonical member set + Tiling Number):
    // groups untouched by the last mutation ("clean") reuse their
    // memoized block — tiling (backward halo propagation) and per-tile
    // core-array costs — verbatim; a clean group whose *interior order*
    // moved re-indexes the block (regions and costs are order-invariant
    // per layer, only their positional indexing follows the order);
    // only dirty groups re-derive it.
    if (scratch->memo_graph != static_cast<const void *>(&graph) ||
        scratch->memo_eval != static_cast<const void *>(&core_eval)) {
        scratch->group_memo.clear();
        scratch->memo_graph = &graph;
        scratch->memo_eval = &core_eval;
    }
    if (scratch->group_memo.size() > ParseScratch::kGroupMemoCap)
        scratch->group_memo.clear();
    scratch->group_overflow.clear();
    scratch->last_dirty_groups = 0;
    scratch->last_clean_groups = 0;
    scratch->last_remapped_groups = 0;
    std::vector<const ParseScratch::GroupParse *> &groups = scratch->groups;
    groups.assign(lfa.NumFlgs(), nullptr);
    for (int g = 0; g < lfa.NumFlgs(); ++g) {
        const int rounds = lfa.tiling[g];
        const auto &layers = flg_layers[g];
        // Sink-set signature (collision-checked below against the full
        // sorted-members/tiles key).
        std::vector<LayerId> &sorted = scratch->sorted_members;
        sorted = layers;
        std::sort(sorted.begin(), sorted.end());
        const std::uint64_t sig = GroupKeyHash(sorted, rounds);
        auto it = scratch->group_memo.find(sig);
        const bool key_matches = it != scratch->group_memo.end() &&
                                 it->second.tiles == rounds &&
                                 it->second.sorted_layers == sorted;
        if (popts.reuse_groups && key_matches &&
            it->second.layers == layers) {
            groups[g] = &it->second;
            ++scratch->last_clean_groups;
        } else if (popts.reuse_groups && key_matches) {
            // Same member set (hence same sink set and tiling), new
            // interior order: re-point the block's permutation view at
            // the new order. Regions and costs stay untouched in their
            // derivation order — an order move is allocation-free, no
            // matter how large the group. The update is safe mid-parse:
            // FLGs partition the layers, so no other group of this
            // parse can share the member set behind `sig`, and reads
            // from an earlier clean hit of the same block in this parse
            // are impossible for the same reason.
            ParseScratch::GroupParse &blk = it->second;
            std::vector<int> &pos = scratch->view_pos;
            if (pos.size() < static_cast<std::size_t>(n)) pos.resize(n);
            for (std::size_t i = 0; i < blk.layers.size(); ++i)
                pos[blk.layers[i]] = static_cast<int>(i);
            // Compose with the existing view so repeated moves stay a
            // single indirection deep: new[i] = derivation-order index
            // of layers[i], found via its position in the old view.
            std::vector<std::size_t> &next = scratch->view_perm;
            next.resize(layers.size());
            for (std::size_t i = 0; i < layers.size(); ++i)
                next[i] = blk.Perm(
                    static_cast<std::size_t>(pos[layers[i]]));
            blk.perm.swap(next);
            blk.layers = layers;
            groups[g] = &blk;
            ++scratch->last_clean_groups;
            ++scratch->last_remapped_groups;
        } else {
            ParseScratch::GroupParse block;
            block.layers = layers;
            block.sorted_layers = sorted;
            block.tiles = rounds;
            // GetView shares the cached tiling as stored — a hit under
            // a different derivation order costs a perm, not a deep
            // copy of every region row.
            block.tiling =
                tiling_cache
                    ? tiling_cache->GetView(graph, layers, rounds,
                                            &block.perm)
                    : std::make_shared<const FlgTiling>(
                          ComputeFlgTiling(graph, layers, rounds));
            if (block.tiling->valid) {
                const std::size_t n_layers = layers.size();
                block.costs.resize(n_layers *
                                   static_cast<std::size_t>(rounds));
                for (int t = 0; t < rounds; ++t) {
                    const std::size_t row =
                        static_cast<std::size_t>(t) * n_layers;
                    for (std::size_t i = 0; i < n_layers; ++i) {
                        const std::size_t k = block.Perm(i);
                        block.costs[row + k] = core_eval.Evaluate(
                            layers[i], block.tiling->regions[k][t]);
                    }
                }
            }
            if (!popts.reuse_groups ||
                it != scratch->group_memo.end()) {
                // Not memoized: either reuse is off (keep the memo
                // untouched — its content-addressed entries stay valid
                // for a later reuse-on parse), or the signature
                // collided with a *different* resident group, which
                // must never be evicted mid-parse (an earlier group
                // may already point at it). Park the block in
                // per-parse overflow storage.
                scratch->group_overflow.push_back(
                    std::make_unique<ParseScratch::GroupParse>(
                        std::move(block)));
                groups[g] = scratch->group_overflow.back().get();
            } else {
                groups[g] = &scratch->group_memo
                                 .emplace(sig, std::move(block))
                                 .first->second;
            }
            ++scratch->last_dirty_groups;
        }
        if (!groups[g]->tiling->valid) {
            out.why_invalid = "tiling " + std::to_string(rounds) +
                              " infeasible for FLG " + std::to_string(g);
            return;
        }
    }

    // Serialize the compute sequence: per FLG, round-robin over rounds.
    {
        std::size_t total_tiles = 0;
        for (int g = 0; g < lfa.NumFlgs(); ++g)
            total_tiles += flg_layers[g].size() *
                           static_cast<std::size_t>(lfa.tiling[g]);
        out.tiles.reserve(total_tiles);
    }
    std::vector<std::vector<TilePos>> &pos_of = scratch->pos_of;
    pos_of.resize(n);
    for (int g = 0; g < lfa.NumFlgs(); ++g) {
        const int rounds = lfa.tiling[g];
        const auto &layers = flg_layers[g];
        const ParseScratch::GroupParse &block = *groups[g];
        for (LayerId id : layers) pos_of[id].resize(rounds);
        for (int t = 0; t < rounds; ++t) {
            for (std::size_t i = 0; i < layers.size(); ++i) {
                LayerId id = layers[i];
                TileInfo tile;
                tile.layer = id;
                tile.flg = g;
                tile.lg = lg_of_layer[id];
                tile.round = t;
                tile.region = block.tiling->regions[block.Perm(i)][t];
                assert(!tile.region.Empty());
                tile.cost = block.costs[static_cast<std::size_t>(t) *
                                            layers.size() +
                                        block.Perm(i)];
                pos_of[id][t] = static_cast<TilePos>(out.tiles.size());
                out.tiles.push_back(std::move(tile));
            }
        }
    }

    // LG extents in tile-position space.
    std::vector<TilePos> &lg_first = scratch->lg_first;
    std::vector<TilePos> &lg_last = scratch->lg_last;
    lg_first.assign(lfa.NumLgs(), INT32_MAX);
    lg_last.assign(lfa.NumLgs(), -1);
    for (int i = 0; i < out.NumTiles(); ++i) {
        lg_first[out.tiles[i].lg] = std::min(lg_first[out.tiles[i].lg],
                                             static_cast<TilePos>(i));
        lg_last[out.tiles[i].lg] = std::max(lg_last[out.tiles[i].lg],
                                            static_cast<TilePos>(i));
    }

    // Enumerate DRAM tensors and on-chip reuse intervals.
    std::vector<DramTensor> &tensors = scratch->tensors;
    tensors.clear();

    for (LayerId id = 0; id < n; ++id) {
        const Layer &l = graph.layer(id);
        const int g = flg_of_layer[id];
        const int lg = lg_of_layer[id];
        const int rounds = lfa.tiling[g];
        const TilePos lg_begin = lg_first[lg];
        const TilePos lg_end = lg_last[lg] + 1;

        // Weights: one load per layer. SoMa releases them right after
        // the layer's last tile; Cocco semantics hold them to LG end.
        if (l.weightBytes() > 0) {
            DramTensor t;
            t.kind = DramTensorKind::kWeight;
            t.layer = id;
            t.bytes = l.weightBytes();
            t.first_use = pos_of[id][0];
            t.fixed_end = popts.lg_resident_weights
                              ? lg_end
                              : pos_of[id][rounds - 1] + 1;
            t.lg_begin = lg_begin;
            t.lg_end = lg_end;
            tensors.push_back(t);
        }

        // Ifmaps: external inputs and cross-LG producers load per tile.
        const auto &ins = l.inputs();
        for (int k = 0; k < static_cast<int>(ins.size()); ++k) {
            const InputRef &in = ins[k];
            bool from_dram =
                (in.producer == kNoLayer) ||
                (lg_of_layer[in.producer] != lg_of_layer[id]);
            if (!from_dram) continue;
            int pc, ph, pw;
            ProducerShape(graph, in, &pc, &ph, &pw);
            const auto &regions =
                groups[g]->tiling->regions[groups[g]->Perm(
                    static_cast<std::size_t>(idx_in_flg[id]))];
            Region prev_need;
            int prev_tensor = -1;
            for (int t = 0; t < rounds; ++t) {
                Region need =
                    l.RequiredInputRegion(in, regions[t], ph, pw);
                if (prev_tensor >= 0 && need == prev_need) {
                    // Identical region as the previous round (kFull
                    // operands like KV caches): the data is already in
                    // the GBUF — extend the residency, don't re-load.
                    tensors[prev_tensor].fixed_end = pos_of[id][t] + 1;
                    continue;
                }
                DramTensor dt;
                dt.kind = DramTensorKind::kIfmap;
                dt.layer = id;
                dt.src_layer = in.producer;
                dt.round = t;
                dt.input_index = k;
                dt.bytes = need.Sites() * pc * l.elemBytes();
                dt.first_use = pos_of[id][t];
                dt.fixed_end = pos_of[id][t] + 1;
                dt.lg_begin = lg_begin;
                dt.lg_end = lg_end;
                if (dt.bytes > 0) {
                    prev_need = need;
                    prev_tensor = static_cast<int>(tensors.size());
                    tensors.push_back(dt);
                }
            }
        }

        // Ofmaps: stored when the layer is a network output or feeds a
        // later LG. The canonical (non-overlapping) slice is stored.
        bool stores = l.isNetworkOutput();
        for (const Edge &e : graph.Consumers(id)) {
            if (lg_of_layer[e.consumer] != lg_of_layer[id]) stores = true;
        }
        if (stores) {
            for (int t = 0; t < rounds; ++t) {
                Region slice =
                    CanonicalSlice(groups[g]->tiling->split, t,
                                   graph.batch(), l.outHeight(),
                                   l.outWidth());
                DramTensor dt;
                dt.kind = DramTensorKind::kOfmap;
                dt.layer = id;
                dt.round = t;
                dt.bytes = l.OutputBytes(slice);
                dt.first_use = pos_of[id][t];
                dt.fixed_end = 0;  // End is the DLSA knob
                dt.lg_begin = lg_begin;
                dt.lg_end = lg_end;
                if (dt.bytes > 0) tensors.push_back(dt);
            }
        }

        // On-chip intervals. Same-FLG consumers: the producer's round-t
        // tile lives from its production to its last in-FLG consumption.
        for (int t = 0; t < rounds; ++t) {
            TilePos last_same_flg = -1;
            for (const Edge &e : graph.Consumers(id)) {
                if (flg_of_layer[e.consumer] == g) {
                    last_same_flg = std::max(last_same_flg,
                                             pos_of[e.consumer][t]);
                }
            }
            if (last_same_flg >= 0) {
                OnchipInterval iv;
                iv.from = pos_of[id][t];
                iv.to = last_same_flg + 1;
                iv.bytes = l.OutputBytes(
                    groups[g]->tiling->regions[groups[g]->Perm(
                        static_cast<std::size_t>(idx_in_flg[id]))][t]);
                iv.producer = id;
                out.onchip.push_back(iv);
            }
        }
        // Cross-FLG consumers within the same LG: the full ofmap is
        // aggregated on chip from the producer's first tile until the
        // last consuming tile.
        TilePos last_cross_flg = -1;
        for (const Edge &e : graph.Consumers(id)) {
            if (flg_of_layer[e.consumer] != g &&
                lg_of_layer[e.consumer] == lg_of_layer[id]) {
                const int c_rounds = lfa.tiling[flg_of_layer[e.consumer]];
                last_cross_flg = std::max(
                    last_cross_flg, pos_of[e.consumer][c_rounds - 1]);
            }
        }
        if (last_cross_flg >= 0) {
            OnchipInterval iv;
            iv.from = pos_of[id][0];
            iv.to = last_cross_flg + 1;
            iv.bytes = l.PerSampleOutputBytes() * graph.batch();
            iv.producer = id;
            out.onchip.push_back(iv);
        }
    }

    // Canonical tensor order: by need position; at equal positions
    // weights, then ifmaps, then stores. Counting sort (keys are dense
    // tile positions; a comparison sort dominates parse time on large
    // unfused schemes).
    {
        auto key = [&](const DramTensor &t) {
            int k = t.kind == DramTensorKind::kWeight ? 0
                    : t.kind == DramTensorKind::kIfmap ? 1
                                                       : 2;
            return static_cast<std::size_t>(t.first_use) * 3 + k;
        };
        const std::size_t buckets =
            static_cast<std::size_t>(out.NumTiles()) * 3 + 1;
        std::vector<int> &count = scratch->count;
        count.assign(buckets + 1, 0);
        for (const DramTensor &t : tensors) ++count[key(t) + 1];
        for (std::size_t i = 1; i <= buckets; ++i) count[i] += count[i - 1];
        out.tensors.resize(tensors.size());
        for (const DramTensor &t : tensors)
            out.tensors[count[key(t)]++] = t;
    }

    // Attach load dependencies to tiles.
    for (int j = 0; j < out.NumTensors(); ++j) {
        const DramTensor &t = out.tensors[j];
        if (t.IsLoad()) out.tiles[t.first_use].need_loads.push_back(j);
    }

    out.valid = true;
}

}  // namespace

bool
DlsaValid(const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
          std::string *why)
{
    DlsaCheckScratch scratch;
    return DlsaValid(parsed, dlsa, why, &scratch);
}

bool
DlsaValid(const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
          std::string *why, DlsaCheckScratch *scratch)
{
    auto fail = [&](const char *msg) {
        if (why) *why = msg;
        return false;
    };
    const int d = parsed.NumTensors();
    if (static_cast<int>(dlsa.order.size()) != d ||
        static_cast<int>(dlsa.free_point.size()) != d) {
        return fail("dlsa arity mismatch");
    }
    std::vector<char> &seen = scratch->seen;
    seen.assign(d, 0);
    for (int j : dlsa.order) {
        if (j < 0 || j >= d || seen[j]) return fail("order not a permutation");
        seen[j] = 1;
    }
    for (int j = 0; j < d; ++j) {
        if (dlsa.free_point[j] < parsed.FreePointMin(j) ||
            dlsa.free_point[j] > parsed.FreePointMax(j)) {
            return fail("living duration out of range");
        }
    }
    // Data existence: a cross-LG ifmap load must follow every store of
    // its source layer in the DRAM order.
    std::vector<int> &rank = scratch->rank;
    rank.assign(d, 0);
    for (int r = 0; r < d; ++r) rank[dlsa.order[r]] = r;
    // max store rank per source layer (-1: layer stores nothing):
    LayerId max_layer = -1;
    for (int j = 0; j < d; ++j)
        max_layer = std::max(max_layer, parsed.tensors[j].layer);
    std::vector<int> &store_rank = scratch->store_rank_by_layer;
    store_rank.assign(static_cast<std::size_t>(max_layer + 1), -1);
    for (int j = 0; j < d; ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.kind == DramTensorKind::kOfmap) {
            store_rank[t.layer] = std::max(store_rank[t.layer], rank[j]);
        }
    }
    for (int j = 0; j < d; ++j) {
        const DramTensor &t = parsed.tensors[j];
        if (t.kind == DramTensorKind::kIfmap && t.src_layer != kNoLayer &&
            t.src_layer <= max_layer && store_rank[t.src_layer] >= 0 &&
            rank[j] < store_rank[t.src_layer]) {
            return fail("ifmap load ordered before producer store");
        }
    }
    return true;
}

}  // namespace soma
