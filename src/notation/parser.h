/**
 * @file
 * Parsing the Tensor-centric Notation into concrete hardware behaviour
 * (Sec. IV-A): stage 1 lowers the LFA into the serial tile compute
 * sequence, the set of DRAM tensors, and the on-chip fmap buffer
 * intervals; stage 2 (the DLSA, applied by the evaluator) supplies each
 * DRAM tensor's order and Living Duration.
 */
#ifndef SOMA_NOTATION_PARSER_H
#define SOMA_NOTATION_PARSER_H

#include <string>
#include <vector>

#include "corearray/core_array.h"
#include "notation/encoding.h"
#include "tiling/tiler.h"
#include "workload/graph.h"

namespace soma {

/** What a DRAM tensor is. Loads are weights/ifmaps; stores are ofmaps. */
enum class DramTensorKind { kWeight, kIfmap, kOfmap };

/**
 * Parse-time semantic switches.
 *
 * lg_resident_weights reproduces Cocco's conservative buffer semantics:
 * every weight stays resident until its whole Layer-fusion Group
 * finishes. SoMa's default releases a weight right after the layer's
 * last tile — the headroom the paper attributes to FLCs ("shuffling
 * weights can save buffer space, enabling the fusion of more layers",
 * Sec. VI-B1).
 */
struct ParseOptions {
    bool lg_resident_weights = false;
};

/** One tensor that must move between DRAM and the GBUF. */
struct DramTensor {
    DramTensorKind kind = DramTensorKind::kWeight;
    LayerId layer = kNoLayer;    ///< consumer (loads) / producer (stores)
    LayerId src_layer = kNoLayer;///< ifmaps: cross-LG producer, or external
    int round = -1;              ///< tile round within the FLG; -1: weights
    int input_index = -1;        ///< ifmaps: which input slot of `layer`
    Bytes bytes = 0;

    /**
     * Loads: the tile position that first requires the data (upper bound
     * of the adjustable Start). Stores: the producing tile position (the
     * fixed Start).
     */
    TilePos first_use = 0;

    /**
     * Loads: the fixed End — one past the last tile position using the
     * data (release point). Stores: unused (the End is the DLSA knob).
     */
    TilePos fixed_end = 0;

    /** Tile-position range [lg_begin, lg_end) of the owning layer's LG
     *  (used by Cocco's group-granular prefetch heuristic). */
    TilePos lg_begin = 0;
    TilePos lg_end = 0;

    bool IsLoad() const { return kind != DramTensorKind::kOfmap; }

    /** "WA", "IC2", "OE1"-style label for execution-graph dumps. */
    std::string Label(const Graph &graph) const;
};

/** One computing tile in the serialized compute sequence. */
struct TileInfo {
    LayerId layer = kNoLayer;
    int flg = 0;
    int lg = 0;
    int round = 0;       ///< tile index within the FLG
    Region region;       ///< ofmap region computed (halo included)
    TileCost cost;
    std::vector<int> need_loads;  ///< tensor ids to complete before start
};

/** GBUF bytes held during tile-position slots [from, to). */
struct OnchipInterval {
    TilePos from = 0;
    TilePos to = 0;
    Bytes bytes = 0;
    LayerId producer = kNoLayer;
};

/**
 * The LFA parse result: everything about a scheme except DRAM timing.
 */
struct ParsedSchedule {
    bool valid = false;
    std::string why_invalid;

    std::vector<TileInfo> tiles;
    std::vector<DramTensor> tensors;
    std::vector<OnchipInterval> onchip;

    int num_flgs = 0;
    int num_lgs = 0;

    int NumTiles() const { return static_cast<int>(tiles.size()); }
    int NumTensors() const { return static_cast<int>(tensors.size()); }

    /** Range of the adjustable Living Duration endpoint of tensor @p j:
     *  Start in [0, first_use] for loads, End in (first_use, NumTiles]
     *  for stores. */
    TilePos FreePointMin(int j) const;
    TilePos FreePointMax(int j) const;

    /** Sum of all DRAM tensor bytes. */
    Bytes TotalDramBytes() const;

    /** Sum of all tile compute seconds. */
    double TotalComputeSeconds() const;
};

/**
 * Reusable intermediate storage for ParseLfaInto. The SA inner loop
 * parses thousands of candidate LFAs; keeping one scratch per search
 * thread (EvalContext owns one) lets consecutive parses reuse the
 * per-layer and per-tensor containers instead of reallocating them.
 */
struct ParseScratch {
    std::vector<int> flg_of_layer, lg_of_layer, idx_in_flg;
    std::vector<std::vector<LayerId>> flg_layers;
    std::vector<FlgTiling> tilings;
    std::vector<std::vector<TilePos>> pos_of;
    std::vector<TilePos> lg_first, lg_last;
    std::vector<DramTensor> tensors;
    std::vector<int> count;
};

/**
 * Parse the LFA: build the tile sequence (per-tile regions from the
 * backward halo propagation, costs from the core array evaluator), the
 * DRAM tensor list in canonical order (sorted by need position; loads
 * before stores at equal positions), and the on-chip reuse intervals.
 * Returns an invalid schedule (with a reason) when the encoding cannot
 * be realized.
 */
ParsedSchedule ParseLfa(const Graph &graph, const LfaEncoding &lfa,
                        CoreArrayEvaluator &core_eval,
                        const ParseOptions &popts = {});

/**
 * Allocation-lean ParseLfa: writes into @p out and draws intermediate
 * storage from @p scratch, both of which retain their capacity across
 * calls.
 */
void ParseLfaInto(const Graph &graph, const LfaEncoding &lfa,
                  CoreArrayEvaluator &core_eval, const ParseOptions &popts,
                  ParseScratch *scratch, ParsedSchedule *out);

/** Reusable storage for the scratch-based DlsaValid overload. */
struct DlsaCheckScratch {
    std::vector<char> seen;
    std::vector<int> rank;
    std::vector<int> store_rank_by_layer;
};

/**
 * Validity of a DLSA against a parse: permutation arity, free points in
 * range, and every cross-LG ifmap load ordered after all ofmap stores of
 * its source layer.
 */
bool DlsaValid(const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
               std::string *why = nullptr);

/** Allocation-lean DlsaValid for the SA inner loop. */
bool DlsaValid(const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
               std::string *why, DlsaCheckScratch *scratch);

}  // namespace soma

#endif  // SOMA_NOTATION_PARSER_H
