/**
 * @file
 * Parsing the Tensor-centric Notation into concrete hardware behaviour
 * (Sec. IV-A): stage 1 lowers the LFA into the serial tile compute
 * sequence, the set of DRAM tensors, and the on-chip fmap buffer
 * intervals; stage 2 (the DLSA, applied by the evaluator) supplies each
 * DRAM tensor's order and Living Duration.
 */
#ifndef SOMA_NOTATION_PARSER_H
#define SOMA_NOTATION_PARSER_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "corearray/core_array.h"
#include "notation/encoding.h"
#include "tiling/tiler.h"
#include "workload/graph.h"

namespace soma {

class TilingCache;

/** What a DRAM tensor is. Loads are weights/ifmaps; stores are ofmaps. */
enum class DramTensorKind { kWeight, kIfmap, kOfmap };

/**
 * Parse-time semantic switches.
 *
 * lg_resident_weights reproduces Cocco's conservative buffer semantics:
 * every weight stays resident until its whole Layer-fusion Group
 * finishes. SoMa's default releases a weight right after the layer's
 * last tile — the headroom the paper attributes to FLCs ("shuffling
 * weights can save buffer space, enabling the fusion of more layers",
 * Sec. VI-B1).
 */
struct ParseOptions {
    bool lg_resident_weights = false;
    /**
     * Reuse memoized group blocks from the scratch across calls (the
     * incremental parse). Off: every group re-derives each call — the
     * pre-incremental behaviour, kept for the bench's legacy-vs-
     * incremental comparison and the cross-check reference.
     */
    bool reuse_groups = true;
    /**
     * Debug invariant check for the incremental (group-memoized) parse:
     * after every ParseLfaInto, re-parse from scratch without any cache
     * and abort unless the two ParsedSchedules are bit-identical.
     * Roughly halves parse throughput — enable in property tests and
     * verification runs only (the LFA stage turns it on under
     * SOMA_LFA_CROSS_CHECK=1).
     */
    bool cross_check = false;
};

/** One tensor that must move between DRAM and the GBUF. */
struct DramTensor {
    DramTensorKind kind = DramTensorKind::kWeight;
    LayerId layer = kNoLayer;    ///< consumer (loads) / producer (stores)
    LayerId src_layer = kNoLayer;///< ifmaps: cross-LG producer, or external
    int round = -1;              ///< tile round within the FLG; -1: weights
    int input_index = -1;        ///< ifmaps: which input slot of `layer`
    Bytes bytes = 0;

    /**
     * Loads: the tile position that first requires the data (upper bound
     * of the adjustable Start). Stores: the producing tile position (the
     * fixed Start).
     */
    TilePos first_use = 0;

    /**
     * Loads: the fixed End — one past the last tile position using the
     * data (release point). Stores: unused (the End is the DLSA knob).
     */
    TilePos fixed_end = 0;

    /** Tile-position range [lg_begin, lg_end) of the owning layer's LG
     *  (used by Cocco's group-granular prefetch heuristic). */
    TilePos lg_begin = 0;
    TilePos lg_end = 0;

    bool IsLoad() const { return kind != DramTensorKind::kOfmap; }

    bool operator==(const DramTensor &o) const
    {
        return kind == o.kind && layer == o.layer &&
               src_layer == o.src_layer && round == o.round &&
               input_index == o.input_index && bytes == o.bytes &&
               first_use == o.first_use && fixed_end == o.fixed_end &&
               lg_begin == o.lg_begin && lg_end == o.lg_end;
    }

    /** "WA", "IC2", "OE1"-style label for execution-graph dumps. */
    std::string Label(const Graph &graph) const;
};

/** One computing tile in the serialized compute sequence. */
struct TileInfo {
    LayerId layer = kNoLayer;
    int flg = 0;
    int lg = 0;
    int round = 0;       ///< tile index within the FLG
    Region region;       ///< ofmap region computed (halo included)
    TileCost cost;
    std::vector<int> need_loads;  ///< tensor ids to complete before start

    bool operator==(const TileInfo &o) const
    {
        return layer == o.layer && flg == o.flg && lg == o.lg &&
               round == o.round && region == o.region && cost == o.cost &&
               need_loads == o.need_loads;
    }
};

/** GBUF bytes held during tile-position slots [from, to). */
struct OnchipInterval {
    TilePos from = 0;
    TilePos to = 0;
    Bytes bytes = 0;
    LayerId producer = kNoLayer;

    bool operator==(const OnchipInterval &o) const
    {
        return from == o.from && to == o.to && bytes == o.bytes &&
               producer == o.producer;
    }
};

/**
 * The LFA parse result: everything about a scheme except DRAM timing.
 */
struct ParsedSchedule {
    bool valid = false;
    std::string why_invalid;

    std::vector<TileInfo> tiles;
    std::vector<DramTensor> tensors;
    std::vector<OnchipInterval> onchip;

    int num_flgs = 0;
    int num_lgs = 0;

    int NumTiles() const { return static_cast<int>(tiles.size()); }
    int NumTensors() const { return static_cast<int>(tensors.size()); }

    /** Range of the adjustable Living Duration endpoint of tensor @p j:
     *  Start in [0, first_use] for loads, End in (first_use, NumTiles]
     *  for stores. */
    TilePos FreePointMin(int j) const;
    TilePos FreePointMax(int j) const;

    /** Sum of all DRAM tensor bytes. */
    Bytes TotalDramBytes() const;

    /** Sum of all tile compute seconds. */
    double TotalComputeSeconds() const;
};

/**
 * Reusable intermediate storage for ParseLfaInto. The SA inner loop
 * parses thousands of candidate LFAs; keeping one scratch per search
 * thread (EvalContext owns one) lets consecutive parses reuse the
 * per-layer and per-tensor containers instead of reallocating them.
 *
 * The scratch additionally carries the *group memo* behind the
 * incremental parse: the expensive per-FLG work (halo-propagated
 * tiling + per-tile core-array costs) is cached by the group's
 * sink-set content signature (canonical member set, Tiling Number) —
 * an FLG's tiling depends on its sink set, which the member set
 * determines, not on the interior computing order. An LFA operator
 * touches at most two fused groups, so consecutive parses re-derive
 * only the dirty groups and reuse every clean group's block verbatim;
 * an order move *within* a group is also a memo hit — the stored
 * block's permutation view (GroupParse::perm) is re-pointed at the new
 * order instead of re-deriving (or even deep-copying) regions and
 * costs. Cheap global passes (tile positions, DRAM
 * tensors, intervals) are rebuilt every time, which keeps the result
 * bit-identical to a full parse (ParseOptions::cross_check asserts
 * this).
 */
struct ParseScratch {
    /** One fused group's memoized parse block. `sorted_layers`/`tiles`
     *  are the full canonical key (signature hashes are collision-
     *  checked); `layers` is the order the block is indexed by, and
     *  `costs` is round-major: costs[t * layers.size() + Perm(i)]
     *  belongs to layers[i] at tile round t. Blocks are
     *  content-addressed pure values. */
    struct GroupParse {
        std::vector<LayerId> layers;
        std::vector<LayerId> sorted_layers;
        int tiles = 0;
        std::shared_ptr<const FlgTiling> tiling;
        std::vector<TileCost> costs;
        /** Permutation view: `tiling->regions` and `costs` stay in the
         *  order the block was first derived in; an interior order move
         *  only re-points this view (perm[i] = derivation-order index
         *  of layers[i]) instead of deep-copying regions and costs.
         *  Empty means identity (freshly derived blocks). */
        std::vector<std::size_t> perm;

        std::size_t Perm(std::size_t i) const
        {
            return perm.empty() ? i : perm[i];
        }
    };

    std::vector<int> flg_of_layer, lg_of_layer, idx_in_flg;
    std::vector<std::vector<LayerId>> flg_layers;
    std::vector<LayerId> sorted_members;  ///< per-group signature scratch
    std::vector<int> view_pos;            ///< perm-composition scratch
    std::vector<std::size_t> view_perm;   ///< perm-composition scratch
    std::vector<const GroupParse *> groups;  ///< per-FLG view, this parse
    std::vector<std::vector<TilePos>> pos_of;
    std::vector<TilePos> lg_first, lg_last;
    std::vector<DramTensor> tensors;
    std::vector<int> count;

    /** Signature-keyed group memo (cleared wholesale beyond the cap).
     *  Blocks are only valid for one (graph, evaluator) pair — layer
     *  ids restart at 0 in every graph — so ParseLfaInto drops the
     *  memo whenever either identity changes (tracked below, same
     *  pointer-identity convention as EvalContext's incremental base). */
    std::unordered_map<std::uint64_t, GroupParse> group_memo;
    /** Per-parse home for blocks whose signature collided with a
     *  different resident group (never evict mid-parse). */
    std::vector<std::unique_ptr<GroupParse>> group_overflow;
    static constexpr std::size_t kGroupMemoCap = 1 << 12;
    const void *memo_graph = nullptr;  ///< graph the memo describes
    const void *memo_eval = nullptr;   ///< evaluator the costs came from

    /** Dirty-set telemetry of the most recent ParseLfaInto call: groups
     *  re-derived vs reused; `last_remapped_groups` counts the reused
     *  subset that was re-indexed to a new interior order (sink-set
     *  signature hits). Exposed for tests and benches. */
    int last_dirty_groups = 0;
    int last_clean_groups = 0;
    int last_remapped_groups = 0;
};

/**
 * Parse the LFA: build the tile sequence (per-tile regions from the
 * backward halo propagation, costs from the core array evaluator), the
 * DRAM tensor list in canonical order (sorted by need position; loads
 * before stores at equal positions), and the on-chip reuse intervals.
 * Returns an invalid schedule (with a reason) when the encoding cannot
 * be realized.
 */
ParsedSchedule ParseLfa(const Graph &graph, const LfaEncoding &lfa,
                        CoreArrayEvaluator &core_eval,
                        const ParseOptions &popts = {});

/**
 * Allocation-lean, incremental ParseLfa: writes into @p out and draws
 * intermediate storage (including the group memo) from @p scratch, both
 * of which retain their state across calls. When @p tiling_cache is
 * given, dirty groups fetch their FlgTiling through it, sharing the
 * halo-propagation work across every search chain of a stage.
 */
void ParseLfaInto(const Graph &graph, const LfaEncoding &lfa,
                  CoreArrayEvaluator &core_eval, const ParseOptions &popts,
                  ParseScratch *scratch, ParsedSchedule *out,
                  TilingCache *tiling_cache = nullptr);

/**
 * Bit-exact equality of two parse results (every tile, tensor and
 * interval field, including cost doubles). The contract the incremental
 * parse upholds against the from-scratch parse.
 */
bool ParsedSchedulesIdentical(const ParsedSchedule &a,
                              const ParsedSchedule &b);

/** Reusable storage for the scratch-based DlsaValid overload. */
struct DlsaCheckScratch {
    std::vector<char> seen;
    std::vector<int> rank;
    std::vector<int> store_rank_by_layer;
};

/**
 * Validity of a DLSA against a parse: permutation arity, free points in
 * range, and every cross-LG ifmap load ordered after all ofmap stores of
 * its source layer.
 */
bool DlsaValid(const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
               std::string *why = nullptr);

/** Allocation-lean DlsaValid for the SA inner loop. */
bool DlsaValid(const ParsedSchedule &parsed, const DlsaEncoding &dlsa,
               std::string *why, DlsaCheckScratch *scratch);

}  // namespace soma

#endif  // SOMA_NOTATION_PARSER_H
