/**
 * @file
 * The Tensor-centric Notation (Sec. IV): six attributes in two groups.
 *
 * LFA (Layer-Fusion-related Attributes):
 *   1. Computing Order  — a dependency-respecting permutation of layers.
 *   2. FLC Set          — cut positions splitting the order into FLGs.
 *   3. Tiling Number    — per-FLG computing granularity.
 *   4. DRAM Cut Set     — subset of the FLC set; splits FLGs into LGs.
 *
 * DLSA (DRAM-Load-and-Store-related Attributes):
 *   5. DRAM Tensor Order — serial order of all DRAM tensors.
 *   6. Living Duration   — per-tensor (Start, End) tile IDs; the free
 *      endpoint (Start for loads, End for stores) is the search knob.
 */
#ifndef SOMA_NOTATION_ENCODING_H
#define SOMA_NOTATION_ENCODING_H

#include <string>
#include <vector>

#include "common/types.h"
#include "workload/graph.h"

namespace soma {

/**
 * Layer-fusion-related attributes. A cut at position p (1 <= p < n)
 * separates order[p-1] and order[p]; cuts are kept sorted and unique.
 * FLG g spans cut boundaries [flc[g-1], flc[g]).
 */
struct LfaEncoding {
    std::vector<LayerId> order;  ///< computing order (layer ids)
    std::vector<int> flc_cuts;   ///< sorted, in [1, n-1]
    std::vector<int> dram_cuts;  ///< sorted subset of flc_cuts
    std::vector<int> tiling;     ///< size flc_cuts.size()+1, each >= 1

    int NumFlgs() const { return static_cast<int>(flc_cuts.size()) + 1; }
    int NumLgs() const { return static_cast<int>(dram_cuts.size()) + 1; }

    /** Layer ids of FLG @p g (in computing order). */
    std::vector<LayerId> FlgLayers(int g) const;

    /** [begin, end) position range of FLG @p g within the order. */
    void FlgRange(int g, int *begin, int *end) const;

    /** Index of the FLG containing order position @p pos. */
    int FlgOfPos(int pos) const;

    /** Index of the LG containing order position @p pos. */
    int LgOfPos(int pos) const;

    /**
     * Structural validity: order is a valid permutation w.r.t. @p graph
     * dependencies, cuts sorted/unique/in-range, dram_cuts subset of
     * flc_cuts, tiling arity matches. (Tiling feasibility is checked by
     * the parser, which knows fmap shapes.)
     */
    bool StructurallyValid(const Graph &graph, std::string *why = nullptr)
        const;

    /** Human-readable dump ("[A | B | C,E,D]{2,1,2} dram={2}"). */
    std::string ToString(const Graph &graph) const;
};

/**
 * The trivial LFA starting point (Sec. V-C1): topological order, every
 * layer its own FLG and LG, tiling at the heuristic parallel minimum
 * granularity supplied by the caller per layer.
 */
LfaEncoding MakeUnfusedLfa(const Graph &graph,
                           const std::vector<int> &tiling_per_layer);

/**
 * DRAM-load-and-store-related attributes over the tensor list produced
 * by the LFA parse. order is a permutation of tensor indices;
 * free_point[j] is the adjustable Living Duration endpoint of tensor j:
 * Start for loads (ifmaps/weights), End for stores (ofmaps).
 */
struct DlsaEncoding {
    std::vector<int> order;
    std::vector<TilePos> free_point;
};

}  // namespace soma

#endif  // SOMA_NOTATION_ENCODING_H
