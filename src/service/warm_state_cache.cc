#include "service/warm_state_cache.h"

namespace soma {

namespace {

/** Order-sensitive 64-bit mix of the two key halves (splitmix64 on the
 *  fold, so (a,b) and (b,a) land apart). */
std::uint64_t
FoldKeys(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL + (b << 1 | b >> 63);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

WarmStateCache::WarmStateCache(const Options &options)
    : capacity_(options.capacity)
{
}

SearchWarmState
WarmStateCache::Acquire(std::uint64_t graph_key, std::uint64_t hw_key)
{
    if (capacity_ == 0) return SearchWarmState{};
    MutexLock lock(mutex_);
    ++stats_.acquires;
    auto [tilings, tilings_resident] =
        tilings_.Touch(graph_key, capacity_, &stats_.evictions);
    auto [costs, costs_resident] = tile_costs_.Touch(
        FoldKeys(graph_key, hw_key), capacity_, &stats_.evictions);
    if (tilings_resident && costs_resident) {
        ++stats_.hits;
    } else {
        ++stats_.misses;
    }
    SearchWarmState state;
    state.tilings = std::move(tilings);
    state.tile_costs = std::move(costs);
    return state;
}

WarmStateCache::Stats
WarmStateCache::stats() const
{
    MutexLock lock(mutex_);
    Stats out = stats_;
    for (const auto &entry : tilings_.list) {
        const TilingCache::Stats ts = entry.value->stats();
        out.tiling_hits += ts.hits;
        out.tiling_misses += ts.misses;
        out.tiling_remaps += ts.remaps;
        out.tiling_entries += entry.value->size();
        out.approx_bytes += entry.value->ApproxBytes();
    }
    for (const auto &entry : tile_costs_.list) {
        out.tile_cost_entries += entry.value->size();
        out.approx_bytes += entry.value->ApproxBytes();
    }
    return out;
}

std::size_t
WarmStateCache::size() const
{
    MutexLock lock(mutex_);
    return tile_costs_.list.size();
}

void
WarmStateCache::Clear()
{
    MutexLock lock(mutex_);
    tilings_.list.clear();
    tilings_.index.clear();
    tile_costs_.list.clear();
    tile_costs_.index.clear();
    stats_ = Stats{};
}

}  // namespace soma
