#include "service/service.h"

#include <chrono>
#include <iterator>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace soma {

namespace {

/** Reconstruct a result from cached text. False only on corrupt text
 *  (never for texts this process serialized). */
bool
TryDeserialize(const std::string &text, ScheduleResult *out,
               std::string *err)
{
    Json json;
    if (!Json::Parse(text, &json, err)) return false;
    return ScheduleResult::FromJson(json, out, err);
}

/** An aborted-while-waiting result with the usual request echo. */
ScheduleResult
AbortedResult(const ScheduleRequest &request, std::string error,
              bool deadline_expired)
{
    ScheduleResult result;
    result.error = std::move(error);
    result.deadline_expired = deadline_expired;
    result.model = request.model;
    result.batch = request.batch;
    result.hardware = request.hardware;
    result.scheduler = request.scheduler;
    result.profile = request.profile;
    result.seed = request.seed;
    return result;
}

}  // namespace

Json
ServiceStats::ToJson() const
{
    Json json = Json::Object();
    json.Set("requests", Json::U64(requests));
    json.Set("coalesced", Json::U64(coalesced));
    json.Set("searches", Json::U64(searches));
    json.Set("uncacheable", Json::U64(uncacheable));
    json.Set("errors", Json::U64(errors));
    json.Set("negative_hits", Json::U64(negative_hits));
    Json rc = Json::Object();
    rc.Set("hits", Json::U64(result_cache.hits));
    rc.Set("misses", Json::U64(result_cache.misses));
    rc.Set("evictions", Json::U64(result_cache.evictions));
    rc.Set("insertions", Json::U64(result_cache.insertions));
    rc.Set("disk_hits", Json::U64(result_cache.disk_hits));
    rc.Set("disk_writes", Json::U64(result_cache.disk_writes));
    rc.Set("version_mismatches",
           Json::U64(result_cache.version_mismatches));
    json.Set("result_cache", std::move(rc));
    Json gc = Json::Object();
    gc.Set("hits", Json::U64(graph_cache.hits));
    gc.Set("misses", Json::U64(graph_cache.misses));
    gc.Set("evictions", Json::U64(graph_cache.evictions));
    json.Set("graph_cache", std::move(gc));
    Json ws = Json::Object();
    ws.Set("acquires", Json::U64(warm_state.acquires));
    ws.Set("hits", Json::U64(warm_state.hits));
    ws.Set("misses", Json::U64(warm_state.misses));
    ws.Set("evictions", Json::U64(warm_state.evictions));
    ws.Set("tiling_hits", Json::U64(warm_state.tiling_hits));
    ws.Set("tiling_misses", Json::U64(warm_state.tiling_misses));
    ws.Set("tiling_remaps", Json::U64(warm_state.tiling_remaps));
    ws.Set("tiling_entries", Json::U64(warm_state.tiling_entries));
    ws.Set("tile_cost_entries", Json::U64(warm_state.tile_cost_entries));
    ws.Set("approx_bytes", Json::U64(warm_state.approx_bytes));
    json.Set("warm_state", std::move(ws));
    return json;
}

void
ServiceStats::ExportTo(obs::MetricsRegistry &registry) const
{
    auto set = [&registry](const char *name, std::uint64_t v) {
        registry.GetCounter(name).Set(v);
    };
    set("service.requests", requests);
    set("service.coalesced", coalesced);
    set("service.searches", searches);
    set("service.uncacheable", uncacheable);
    set("service.errors", errors);
    set("service.negative_hits", negative_hits);
    set("service.result_cache.hits", result_cache.hits);
    set("service.result_cache.misses", result_cache.misses);
    set("service.result_cache.evictions", result_cache.evictions);
    set("service.result_cache.insertions", result_cache.insertions);
    set("service.result_cache.disk_hits", result_cache.disk_hits);
    set("service.result_cache.disk_writes", result_cache.disk_writes);
    set("service.result_cache.version_mismatches",
        result_cache.version_mismatches);
    set("service.graph_cache.hits", graph_cache.hits);
    set("service.graph_cache.misses", graph_cache.misses);
    set("service.graph_cache.evictions", graph_cache.evictions);
    set("service.warm_state.acquires", warm_state.acquires);
    set("service.warm_state.hits", warm_state.hits);
    set("service.warm_state.misses", warm_state.misses);
    set("service.warm_state.evictions", warm_state.evictions);
    set("service.warm_state.tiling_hits", warm_state.tiling_hits);
    set("service.warm_state.tiling_misses", warm_state.tiling_misses);
    set("service.warm_state.tiling_remaps", warm_state.tiling_remaps);
    set("service.warm_state.tiling_entries", warm_state.tiling_entries);
    set("service.warm_state.tile_cost_entries",
        warm_state.tile_cost_entries);
    set("service.warm_state.approx_bytes", warm_state.approx_bytes);
}

SchedulerService::SchedulerService(const ServiceOptions &options)
    : error_ttl_ms_(options.error_ttl_ms),
      now_fn_(options.now_fn),
      scheduler_(options.scheduler),
      result_cache_(ResultCache::Options{options.result_cache_capacity,
                                         options.cache_dir,
                                         kResultCacheSchemaVersion}),
      graph_cache_(options.graph_cache_capacity),
      warm_state_cache_(
          WarmStateCache::Options{options.warm_state_capacity})
{
}

std::chrono::steady_clock::time_point
SchedulerService::Now() const
{
    return now_fn_ ? now_fn_() : obs::MonotonicNow();
}

const SchedulerService::NegativeEntry *
SchedulerService::FindNegativeLocked(std::uint64_t fingerprint)
{
    auto it = negative_.find(fingerprint);
    if (it == negative_.end()) return nullptr;
    if (Now() >= it->second.expires) {
        negative_.erase(it);
        return nullptr;
    }
    return &it->second;
}

ScheduleResult
SchedulerService::Schedule(const ScheduleRequest &request,
                           std::string *result_json)
{
    counters_.requests.fetch_add(1, std::memory_order_relaxed);

    // Inline graphs have no faithful fingerprint (only their name
    // serializes); run them straight through the facade.
    if (request.graph) {
        ScheduleResult result = scheduler_.Schedule(request);
        counters_.uncacheable.fetch_add(1, std::memory_order_relaxed);
        counters_.searches.fetch_add(1, std::memory_order_relaxed);
        if (!result.ok)
            counters_.errors.fetch_add(1, std::memory_order_relaxed);
        if (result_json) *result_json = result.ToJson().Dump(2);
        return result;
    }

    const std::uint64_t fingerprint = request.Fingerprint();
    // Even a coalesced waiter honors its own QoS: the deadline anchors
    // here on the monotonic clock, and the wait loop below polls it
    // plus the cancel flag.
    const auto wait_deadline =
        request.deadline_ms > 0
            ? Now() + std::chrono::milliseconds(request.deadline_ms)
            : std::chrono::steady_clock::time_point{};

    auto serve_cached = [&](std::string text,
                            ScheduleResult *out) -> bool {
        std::string err;
        if (!TryDeserialize(text, out, &err)) {
            SOMA_WARN << "result cache: corrupt entry "
                      << HexU64(fingerprint) << " (" << err
                      << "); recomputing";
            return false;
        }
        if (result_json) *result_json = std::move(text);
        return true;
    };

    // Fast path outside the service lock: the cache has its own mutex
    // and a lookup may touch disk, so warm traffic never serializes
    // behind mutex_.
    std::string text;
    ScheduleResult cached;
    {
        obs::SpanScope probe_span(request.trace, "service.cache_probe");
        const bool hit = result_cache_.Get(fingerprint, &text);
        probe_span.Arg("hit", static_cast<std::int64_t>(hit ? 1 : 0));
        if (hit && serve_cached(std::move(text), &cached)) return cached;
    }

    std::shared_ptr<Inflight> flight;
    {
        MutexLock lock(mutex_);
        // Negative memo: a hot failing fingerprint replays its recent
        // error instead of re-running the whole search (TTL-bounded so
        // healed registries recover quickly).
        if (const NegativeEntry *neg = FindNegativeLocked(fingerprint)) {
            counters_.negative_hits.fetch_add(1,
                                              std::memory_order_relaxed);
            std::string neg_text = neg->text;
            lock.Unlock();
            ScheduleResult result;
            std::string err;
            if (!TryDeserialize(neg_text, &result, &err)) {
                result = ScheduleResult();
                result.error = "negative memo corrupt: " + err;
            }
            if (result_json) *result_json = std::move(neg_text);
            return result;
        }
        auto it = inflight_.find(fingerprint);
        if (it == inflight_.end()) {
            // A leader may have published between the unlocked lookup
            // and here; recheck under the registration lock (a memory
            // hit in that race — no disk read for absent entries
            // beyond one failed open).
            if (result_cache_.Get(fingerprint, &text)) {
                lock.Unlock();
                if (serve_cached(std::move(text), &cached)) return cached;
                lock.Lock();
                it = inflight_.find(fingerprint);  // re-race, rare
            }
        }
        if (it == inflight_.end()) {
            flight = std::make_shared<Inflight>();
            inflight_[fingerprint] = flight;
        } else {
            // Coalesce: pend on the leader, but keep honoring this
            // request's own cancel flag and deadline while waiting.
            flight = it->second;
            counters_.coalesced.fetch_add(1, std::memory_order_relaxed);
            obs::SpanScope wait_span(request.trace,
                                     "service.coalesce_wait");
            for (;;) {
                if (flight->done) break;
                if (request.cancel &&
                    request.cancel->load(std::memory_order_relaxed)) {
                    return AbortedResult(request, "cancelled", false);
                }
                if (wait_deadline.time_since_epoch().count() != 0 &&
                    Now() >= wait_deadline) {
                    return AbortedResult(
                        request,
                        "deadline expired (" +
                            std::to_string(request.deadline_ms) +
                            " ms) while waiting for the coalesced "
                            "result",
                        /*deadline_expired=*/true);
                }
                flight->cv.WaitFor(mutex_,
                                   std::chrono::milliseconds(10));
            }
            text = flight->text;
            lock.Unlock();
            ScheduleResult result;
            std::string err;
            if (!TryDeserialize(text, &result, &err)) {
                result = ScheduleResult();
                result.error = "coalesced result corrupt: " + err;
            }
            if (result_json) *result_json = std::move(text);
            return result;
        }
    }
    return RunAndPublish(request, fingerprint, flight, result_json);
}

ScheduleResult
SchedulerService::RunAndPublish(const ScheduleRequest &request,
                                std::uint64_t fingerprint,
                                const std::shared_ptr<Inflight> &flight,
                                std::string *result_json)
{
    ScheduleRequest req = request;
    std::string err;
    std::shared_ptr<const Graph> graph =
        graph_cache_.Get(req.model, req.batch, scheduler_.models(), &err);
    // Unknown models fall through graph-less so the facade produces its
    // canonical error (with the registered-name candidates).
    if (graph) {
        req.graph = std::move(graph);
        // Warm-start the search from every earlier request over this
        // (graph, hardware preset). The hardware key deliberately
        // excludes the GBUF/DRAM overrides: tilings are hardware-free
        // and tile costs are preset-determined (see TileCostMemo's
        // sharing invariant), so a DSE sweep shares one bundle across
        // its whole GBUF/bandwidth axis.
        req.warm_state = warm_state_cache_.Acquire(
            Fnv1a64(req.model + '\n' + std::to_string(req.batch)),
            Fnv1a64(req.hardware));
    }

    counters_.searches.fetch_add(1, std::memory_order_relaxed);
    ScheduleResult result;
    {
        obs::SpanScope search_span(request.trace, "service.search");
        result = scheduler_.Schedule(req);
        search_span.Arg("ok", static_cast<std::int64_t>(result.ok ? 1
                                                                  : 0));
    }
    std::string text;
    {
        obs::SpanScope serialize_span(request.trace, "service.serialize");
        text = result.ToJson().Dump(2);
        serialize_span.Arg("bytes",
                           static_cast<std::int64_t>(text.size()));
    }

    // The determinism contract: only results every future run would
    // reproduce byte-for-byte are cached. Errors may heal (registry
    // additions) and deadline-truncated results depend on wall-clock.
    if (result.ok && !result.deadline_expired)
        result_cache_.Put(fingerprint, text);

    if (!result.ok)
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
    {
        MutexLock lock(mutex_);
        // Memoize deterministic failures for a short TTL. Cancelled and
        // deadline-shaped results reflect this caller's QoS — another
        // request with the same fingerprint could well succeed — so
        // they never enter the memo.
        if (error_ttl_ms_ > 0 && !result.ok &&
            !result.deadline_expired && result.error != "cancelled") {
            const auto now = Now();
            constexpr std::size_t kNegativeCap = 1024;
            if (negative_.size() >= kNegativeCap) {
                // At capacity: sweep expired entries — every expired
                // entry goes regardless of visit order, so the hash
                // iteration order below cannot leak into behaviour.
                // somalint: allow(unordered-iter) expiry sweep removes
                for (auto it = negative_.begin(); it != negative_.end();) {
                    it = now >= it->second.expires ? negative_.erase(it)
                                                  : std::next(it);
                }
                if (negative_.size() >= kNegativeCap) {
                    // Still saturated by live entries: evict the entry
                    // closest to expiry (fingerprint breaks ties). The
                    // previous erase(begin()) depended on hash iteration
                    // order — a different victim per run/platform; the
                    // min-scan is deterministic for a given entry set.
                    // somalint: allow(unordered-iter) deterministic min
                    auto victim = negative_.begin();
                    // somalint: allow(unordered-iter) deterministic min
                    for (auto it = std::next(victim);
                         it != negative_.end(); ++it) {
                        if (it->second.expires < victim->second.expires ||
                            (it->second.expires ==
                                 victim->second.expires &&
                             it->first < victim->first)) {
                            victim = it;
                        }
                    }
                    negative_.erase(victim);
                }
            }
            negative_[fingerprint] = NegativeEntry{
                now + std::chrono::milliseconds(error_ttl_ms_),
                text};
        }
        flight->text = text;
        flight->done = true;
        inflight_.erase(fingerprint);
    }
    flight->cv.NotifyAll();
    if (result_json) *result_json = std::move(text);
    return result;  // the leader keeps the in-process payload
}

ServiceStats
SchedulerService::stats() const
{
    ServiceStats out;
    out.requests = counters_.requests.load(std::memory_order_relaxed);
    out.coalesced = counters_.coalesced.load(std::memory_order_relaxed);
    out.searches = counters_.searches.load(std::memory_order_relaxed);
    out.uncacheable =
        counters_.uncacheable.load(std::memory_order_relaxed);
    out.errors = counters_.errors.load(std::memory_order_relaxed);
    out.negative_hits =
        counters_.negative_hits.load(std::memory_order_relaxed);
    out.result_cache = result_cache_.stats();
    out.graph_cache = graph_cache_.stats();
    out.warm_state = warm_state_cache_.stats();
    return out;
}

}  // namespace soma
