#include "service/result_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"

namespace soma {

ResultCache::ResultCache(Options options) : options_(std::move(options))
{
    if (options_.capacity < 1) options_.capacity = 1;
}

std::string
ResultCache::PathFor(std::uint64_t fingerprint) const
{
    if (options_.persist_dir.empty()) return std::string();
    return options_.persist_dir + "/" + HexU64(fingerprint) + ".json";
}

namespace {

/** Version header prepended to persisted entries. The payload after
 *  the newline is the exact result text a cold run serialized, so the
 *  cached == recomputed byte-for-byte contract is untouched. */
std::string
VersionHeader(std::uint64_t version)
{
    return "somacache " + std::to_string(version) + "\n";
}

}  // namespace

bool
ResultCache::LoadFromDisk(std::uint64_t fingerprint, std::string *text)
{
    if (options_.persist_dir.empty()) return false;
    std::ifstream in(PathFor(fingerprint), std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!in.good() && !in.eof()) return false;
    std::string raw = ss.str();
    // Entries from another schema/behaviour version — including the
    // header-less files of pre-versioning builds — are stale: a search
    // under this binary could produce different bytes, so they load as
    // misses and get overwritten by the next Put. Only files that do
    // carry a version header count as version_mismatches; anything
    // else (truncated writes, foreign files) is a plain miss, so the
    // counter measures version skew, not corruption.
    static constexpr char kMagic[] = "somacache ";
    const std::string header = VersionHeader(options_.version);
    if (raw.size() > header.size() &&
        raw.compare(0, header.size(), header) == 0) {
        *text = raw.substr(header.size());
        return !text->empty();
    }
    if (raw.compare(0, sizeof(kMagic) - 1, kMagic) == 0)
        ++stats_.version_mismatches;
    return false;
}

void
ResultCache::InsertLocked(std::uint64_t fingerprint,
                          const std::string &text)
{
    auto it = index_.find(fingerprint);
    if (it != index_.end()) {
        it->second->text = text;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{fingerprint, text});
    index_[fingerprint] = lru_.begin();
    ++stats_.insertions;
    while (lru_.size() > options_.capacity) {
        index_.erase(lru_.back().fingerprint);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

bool
ResultCache::Get(std::uint64_t fingerprint, std::string *result_json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(fingerprint);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        *result_json = it->second->text;
        ++stats_.hits;
        return true;
    }
    std::string text;
    if (LoadFromDisk(fingerprint, &text)) {
        InsertLocked(fingerprint, text);
        *result_json = std::move(text);
        ++stats_.hits;
        ++stats_.disk_hits;
        return true;
    }
    ++stats_.misses;
    return false;
}

void
ResultCache::Put(std::uint64_t fingerprint, const std::string &result_json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    InsertLocked(fingerprint, result_json);
    if (options_.persist_dir.empty()) return;
    if (!dir_ready_) {
        std::error_code ec;
        std::filesystem::create_directories(options_.persist_dir, ec);
        if (ec) {
            SOMA_WARN << "result cache: cannot create "
                      << options_.persist_dir << ": " << ec.message()
                      << " (persistence disabled)";
            options_.persist_dir.clear();
            return;
        }
        dir_ready_ = true;
    }
    const std::string path = PathFor(fingerprint);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!(out << VersionHeader(options_.version) << result_json)) {
        SOMA_WARN << "result cache: cannot write " << path;
        return;
    }
    ++stats_.disk_writes;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ResultCache::Clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    stats_ = Stats{};
}

}  // namespace soma
