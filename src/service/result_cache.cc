#include "service/result_cache.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/hash.h"
#include "common/logging.h"

namespace soma {

namespace {

ResultCache::Options
SanitizeOptions(ResultCache::Options options)
{
    if (options.capacity < 1) options.capacity = 1;
    return options;
}

}  // namespace

ResultCache::ResultCache(Options options)
    : options_(SanitizeOptions(std::move(options)))
{
}

std::string
ResultCache::PathFor(std::uint64_t fingerprint) const
{
    MutexLock lock(mutex_);
    return PathForLocked(fingerprint);
}

std::string
ResultCache::PathForLocked(std::uint64_t fingerprint) const
{
    if (options_.persist_dir.empty()) return std::string();
    return options_.persist_dir + "/" + HexU64(fingerprint) + ".json";
}

namespace {

/** Version + payload-length header prepended to persisted entries.
 *  The payload after the newline is the exact result text a cold run
 *  serialized, so the cached == recomputed byte-for-byte contract is
 *  untouched; the recorded length lets the loader reject torn files. */
std::string
VersionHeader(std::uint64_t version, std::size_t payload_bytes)
{
    return "somacache " + std::to_string(version) + " " +
           std::to_string(payload_bytes) + "\n";
}

/** Parse "somacache <version> <bytes>\n" at the head of @p raw. On
 *  success sets @p version / @p payload_offset / @p payload_bytes.
 *  @p versioned_header reports that a *complete* header line naming a
 *  version was present — either the current format or the legacy
 *  length-less "somacache <version>\n" of PR 4 builds (legacy parses
 *  as "success" with payload_bytes UINT64_MAX so the caller's length
 *  check rejects it as version-classifiable). An incomplete or
 *  malformed header — e.g. a file torn before the newline — leaves it
 *  false: that is corruption, not version skew. */
bool
ParseHeader(const std::string &raw, std::uint64_t *version,
            std::size_t *payload_offset, std::uint64_t *payload_bytes,
            bool *versioned_header)
{
    static constexpr char kMagic[] = "somacache ";
    static constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;
    *versioned_header = false;
    if (raw.compare(0, kMagicLen, kMagic) != 0) return false;
    const std::size_t eol = raw.find('\n', kMagicLen);
    if (eol == std::string::npos) return false;
    const std::string line = raw.substr(kMagicLen, eol - kMagicLen);
    const std::size_t space = line.find(' ');
    errno = 0;
    char *end = nullptr;
    const std::string ver =
        space == std::string::npos ? line : line.substr(0, space);
    *version = std::strtoull(ver.c_str(), &end, 10);
    if (errno != 0 || end != ver.c_str() + ver.size() || ver.empty())
        return false;
    if (space == std::string::npos) {
        // Complete legacy (PR 4) header: versioned, but length-less.
        *versioned_header = true;
        *payload_offset = eol + 1;
        *payload_bytes = UINT64_MAX;
        return false;
    }
    const std::string len = line.substr(space + 1);
    *payload_bytes = std::strtoull(len.c_str(), &end, 10);
    if (errno != 0 || end != len.c_str() + len.size() || len.empty())
        return false;
    *versioned_header = true;
    *payload_offset = eol + 1;
    return true;
}

}  // namespace

bool
ResultCache::LoadFromDisk(std::uint64_t fingerprint, std::string *text)
{
    if (options_.persist_dir.empty()) return false;
    std::ifstream in(PathForLocked(fingerprint), std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!in.good() && !in.eof()) return false;
    std::string raw = ss.str();
    // Entries from another schema/behaviour version — including the
    // header-less files of pre-versioning builds and the length-less
    // PR 4 headers — are stale: a search under this binary could
    // produce different bytes, so they load as misses and get
    // overwritten by the next Put. Only files carrying a *complete*
    // version-naming header count as version_mismatches; anything else
    // — foreign files, or a file torn mid-header — is a plain miss
    // (the counter measures version skew, not corruption). A
    // current-version file whose payload length disagrees with its
    // header is torn — also a plain miss, never garbage bytes.
    std::uint64_t version = 0, payload_bytes = 0;
    std::size_t payload_offset = 0;
    bool versioned_header = false;
    if (!ParseHeader(raw, &version, &payload_offset, &payload_bytes,
                     &versioned_header)) {
        if (versioned_header) ++stats_.version_mismatches;
        return false;
    }
    if (version != options_.version) {
        ++stats_.version_mismatches;
        return false;
    }
    if (raw.size() - payload_offset != payload_bytes ||
        payload_bytes == 0) {
        SOMA_WARN << "result cache: torn entry " << PathForLocked(fingerprint)
                  << " (" << (raw.size() - payload_offset) << " of "
                  << payload_bytes << " payload bytes); treating as miss";
        return false;
    }
    *text = raw.substr(payload_offset);
    return true;
}

void
ResultCache::InsertLocked(std::uint64_t fingerprint,
                          const std::string &text)
{
    auto it = index_.find(fingerprint);
    if (it != index_.end()) {
        it->second->text = text;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{fingerprint, text});
    index_[fingerprint] = lru_.begin();
    ++stats_.insertions;
    while (lru_.size() > options_.capacity) {
        index_.erase(lru_.back().fingerprint);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

bool
ResultCache::Get(std::uint64_t fingerprint, std::string *result_json)
{
    MutexLock lock(mutex_);
    auto it = index_.find(fingerprint);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        *result_json = it->second->text;
        ++stats_.hits;
        return true;
    }
    std::string text;
    if (LoadFromDisk(fingerprint, &text)) {
        InsertLocked(fingerprint, text);
        *result_json = std::move(text);
        ++stats_.hits;
        ++stats_.disk_hits;
        return true;
    }
    ++stats_.misses;
    return false;
}

void
ResultCache::Put(std::uint64_t fingerprint, const std::string &result_json)
{
    MutexLock lock(mutex_);
    InsertLocked(fingerprint, result_json);
    if (options_.persist_dir.empty()) return;
    if (!dir_ready_) {
        std::error_code ec;
        std::filesystem::create_directories(options_.persist_dir, ec);
        if (ec) {
            SOMA_WARN << "result cache: cannot create "
                      << options_.persist_dir << ": " << ec.message()
                      << " (persistence disabled)";
            options_.persist_dir.clear();
            return;
        }
        dir_ready_ = true;
    }
    // Publish atomically: write a writer-unique temp file in the same
    // directory, then rename over the destination. Two sweep shards —
    // or two caches in one process — racing on one fingerprint each
    // publish a complete file; readers (this process or a third one)
    // can never observe an interleaved or partial write. The suffix
    // must be unique per *writer*, not just per process: the pid
    // disambiguates across processes, the counter across cache
    // instances and calls within one.
    static std::atomic<std::uint64_t> tmp_serial{0};
    const std::string path = PathForLocked(fingerprint);
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid())) +
        "." + std::to_string(tmp_serial.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!(out << VersionHeader(options_.version, result_json.size())
                  << result_json)) {
            SOMA_WARN << "result cache: cannot write " << tmp;
            out.close();
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        SOMA_WARN << "result cache: cannot publish " << path << ": "
                  << ec.message();
        std::filesystem::remove(tmp, ec);
        return;
    }
    ++stats_.disk_writes;
}

std::size_t
ResultCache::size() const
{
    MutexLock lock(mutex_);
    return lru_.size();
}

ResultCache::Stats
ResultCache::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

void
ResultCache::Clear()
{
    MutexLock lock(mutex_);
    lru_.clear();
    index_.clear();
    stats_ = Stats{};
}

}  // namespace soma
