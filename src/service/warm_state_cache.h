/**
 * @file
 * WarmStateCache: the service-level home of cross-request search
 * warm-up. Where the ResultCache warms whole *results* (a repeated
 * request costs nothing), this cache warms the *state inside* a search
 * (a result-cache-cold request — new seed, profile, scheduler or
 * GBUF/DRAM point over an already-seen workload — skips re-deriving
 * the fused-group tilings and per-tile core-array costs every earlier
 * request already derived).
 *
 * Keying — the entries composing to (graph fingerprint, group
 * signature, tiling number):
 *  - TilingCache instances are keyed by graph fingerprint alone; each
 *    instance then keys tilings by sink-set group signature (canonical
 *    member set, Tiling Number). Tilings do not depend on hardware, so
 *    one instance warms every hardware point of a workload.
 *  - TileCostMemo instances are keyed by (graph fingerprint, hardware
 *    fingerprint); each then keys costs by exact tile shape. The
 *    hardware fingerprint covers the *preset name* only: TileCost is
 *    independent of the GBUF/DRAM DSE overrides (see the sharing
 *    invariant documented on TileCostMemo), so one memo warms a whole
 *    GBUF/bandwidth sweep.
 *
 * Determinism contract: both caches hold content-addressed pure
 * values, so acquiring a warm bundle can never change a result byte —
 * pinned by the service tests' warm-vs-cold byte-identity case. Like
 * the Graph/Result caches, fingerprints assume registry builders are
 * deterministic per name.
 *
 * Eviction: both maps are LRU-bounded by Options::capacity; evicting
 * drops the shared_ptr, so in-flight searches holding a bundle keep
 * using it safely while new acquires start cold.
 */
#ifndef SOMA_SERVICE_WARM_STATE_CACHE_H
#define SOMA_SERVICE_WARM_STATE_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/thread_annotations.h"
#include "search/warm_state.h"

namespace soma {

class WarmStateCache {
  public:
    struct Options {
        /** Max resident TilingCaches and TileCostMemos (each map is
         *  bounded separately). 0 disables the cache: Acquire returns
         *  empty bundles and every search starts cold. */
        std::size_t capacity = 32;
    };

    /** Counters plus a footprint snapshot of the resident caches (the
     *  `warm_state` section of `somac sweep --stats`). `hits` counts
     *  Acquire calls fully served by resident state; `tiling_*`
     *  aggregate the resident TilingCaches' own counters — entries
     *  evicted wholesale take their counts with them, so these are a
     *  residency-scoped view, not a lifetime total. */
    struct Stats {
        std::uint64_t acquires = 0;
        std::uint64_t hits = 0;      ///< both members were resident
        std::uint64_t misses = 0;    ///< at least one started cold
        std::uint64_t evictions = 0;
        std::uint64_t tiling_hits = 0;
        std::uint64_t tiling_misses = 0;
        std::uint64_t tiling_remaps = 0;
        std::uint64_t tiling_entries = 0;
        std::uint64_t tile_cost_entries = 0;
        std::uint64_t approx_bytes = 0;
    };

    WarmStateCache() : WarmStateCache(Options{}) {}
    explicit WarmStateCache(const Options &options);

    /**
     * The warm bundle for (@p graph_key, @p hw_key), creating empty
     * caches on first sight. Thread-safe; concurrent acquirers of one
     * key share the same instances. Empty bundle when disabled.
     */
    SearchWarmState Acquire(std::uint64_t graph_key, std::uint64_t hw_key)
        SOMA_EXCLUDES(mutex_);

    Stats stats() const SOMA_EXCLUDES(mutex_);
    /** Resident TileCostMemo count. */
    std::size_t size() const SOMA_EXCLUDES(mutex_);
    /** Drops resident state and counters. */
    void Clear() SOMA_EXCLUDES(mutex_);

  private:
    template <typename V> struct Lru {
        struct Entry {
            std::uint64_t key;
            std::shared_ptr<V> value;
        };
        std::list<Entry> list;  ///< front = most recently used
        std::unordered_map<std::uint64_t,
                           typename std::list<Entry>::iterator>
            index;

        /** Returns {value, was_resident}; inserts a fresh V on miss and
         *  evicts the LRU tail beyond @p capacity (count reported via
         *  @p evictions). */
        std::pair<std::shared_ptr<V>, bool> Touch(std::uint64_t key,
                                                  std::size_t capacity,
                                                  std::uint64_t *evictions)
        {
            auto it = index.find(key);
            if (it != index.end()) {
                list.splice(list.begin(), list, it->second);
                return {list.front().value, true};
            }
            list.push_front(Entry{key, std::make_shared<V>()});
            index[key] = list.begin();
            while (list.size() > capacity) {
                index.erase(list.back().key);
                list.pop_back();
                ++*evictions;
            }
            return {list.front().value, false};
        }
    };

    const std::size_t capacity_;
    /** Lock order: taken before the resident TilingCache shard locks
     *  (stats() aggregates resident caches while holding it); those are
     *  leaves and never call back up. */
    mutable Mutex mutex_;
    Lru<TilingCache> tilings_ SOMA_GUARDED_BY(mutex_);  ///< by graph_key
    /** By (graph_key, hw_key) fold. */
    Lru<TileCostMemo> tile_costs_ SOMA_GUARDED_BY(mutex_);
    /** Counters only; the stats() snapshot fills the rest. */
    Stats stats_ SOMA_GUARDED_BY(mutex_);
};

}  // namespace soma

#endif  // SOMA_SERVICE_WARM_STATE_CACHE_H
