#include "service/graph_cache.h"

#include <utility>

namespace soma {

GraphCache::GraphCache(std::size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity)
{
}

std::shared_ptr<const Graph>
GraphCache::Get(const std::string &model, int batch,
                const ModelRegistry &models, std::string *err)
{
    const std::string key = model + "#" + std::to_string(batch);
    MutexLock lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        return it->second->graph;
    }
    Graph built;
    if (!models.Build(model, batch, &built, err)) return nullptr;
    ++stats_.misses;
    auto graph = std::make_shared<const Graph>(std::move(built));
    lru_.push_front(Entry{key, graph});
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
    return graph;
}

std::size_t
GraphCache::size() const
{
    MutexLock lock(mutex_);
    return lru_.size();
}

GraphCache::Stats
GraphCache::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

void
GraphCache::Clear()
{
    MutexLock lock(mutex_);
    lru_.clear();
    index_.clear();
    stats_ = Stats{};
}

}  // namespace soma
