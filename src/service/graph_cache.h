/**
 * @file
 * GraphCache: a thread-safe LRU of built workload graphs keyed by
 * (model name, batch), so a DSE sweep over one workload parses the
 * model once instead of once per request. Graphs are shared as
 * `shared_ptr<const Graph>`; registry builders are deterministic, so a
 * cached graph is content-identical to a freshly built one and results
 * computed against it are bit-identical.
 */
#ifndef SOMA_SERVICE_GRAPH_CACHE_H
#define SOMA_SERVICE_GRAPH_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "api/registry.h"
#include "common/thread_annotations.h"
#include "workload/graph.h"

namespace soma {

class GraphCache {
  public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;  ///< each miss is one model build
        std::uint64_t evictions = 0;
    };

    explicit GraphCache(std::size_t capacity = 64);

    /**
     * The graph for (@p model, @p batch), building it through
     * @p models on a miss. Returns nullptr with @p err set when the
     * registry does not know the model. Builds run under the cache
     * lock, so concurrent requests for one workload build it once.
     */
    std::shared_ptr<const Graph> Get(const std::string &model, int batch,
                                     const ModelRegistry &models,
                                     std::string *err)
        SOMA_EXCLUDES(mutex_);

    std::size_t size() const SOMA_EXCLUDES(mutex_);
    Stats stats() const SOMA_EXCLUDES(mutex_);
    void Clear() SOMA_EXCLUDES(mutex_);

  private:
    struct Entry {
        std::string key;
        std::shared_ptr<const Graph> graph;
    };

    const std::size_t capacity_;
    /** Lock order: leaf — model builds run under it (by design, so one
     *  build serves concurrent requesters), but builders never call
     *  back into the cache. */
    mutable Mutex mutex_;
    std::list<Entry> lru_ SOMA_GUARDED_BY(mutex_);  ///< front = MRU
    std::unordered_map<std::string, std::list<Entry>::iterator> index_
        SOMA_GUARDED_BY(mutex_);
    Stats stats_ SOMA_GUARDED_BY(mutex_);
};

}  // namespace soma

#endif  // SOMA_SERVICE_GRAPH_CACHE_H
