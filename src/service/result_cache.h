/**
 * @file
 * ResultCache: a thread-safe in-memory LRU of serialized ScheduleResult
 * JSON keyed by request fingerprint, with optional write-through
 * persistence (one JSON file per fingerprint under persist_dir).
 *
 * The cache stores the exact result *text* — the same bytes a cold run
 * serializes — so a hit reproduces the cold result bit-for-bit without
 * trusting any re-serialization step. Persistence is write-through:
 * every Put also lands on disk, so entries evicted from memory (and
 * entries from earlier processes) come back as disk hits. Disk usage is
 * unbounded; prune the directory externally if that matters.
 *
 * Crash/concurrency safety: entries are written to a process-unique
 * temp file and published with an atomic rename, so readers — however
 * many processes share the directory, e.g. `somac sweep --shard`
 * pointed at one --cache-dir — only ever observe a complete file or no
 * file. Each entry's header additionally records the payload length;
 * a file torn by any other means (partial copy, truncation, a
 * pre-atomic-rename writer) fails the length check and loads as a
 * plain miss, never as garbage bytes.
 */
#ifndef SOMA_SERVICE_RESULT_CACHE_H
#define SOMA_SERVICE_RESULT_CACHE_H

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace soma {

/**
 * Schema/build-behaviour version stamped into every persisted cache
 * entry. Request fingerprints assume the binary's search behaviour is
 * fixed, so any build that changes what a request computes — search
 * budgets, SA operators, evaluator semantics, result serialization —
 * MUST bump this: on-disk entries written by other versions then load
 * as misses (and are overwritten on the next Put) instead of replaying
 * stale results.
 *
 * History: 1 = the first persisted format (PR 3, unversioned header-
 * less files — every versioned build loads them as misses);
 * 2 = incremental LFA pipeline + raised default/full search budgets;
 * 3 = length-stamped header (`somacache <version> <payload-bytes>`)
 * for torn-file detection, written via temp-file + atomic rename.
 */
inline constexpr std::uint64_t kResultCacheSchemaVersion = 3;

class ResultCache {
  public:
    struct Options {
        /** Max in-memory entries; at least 1 is enforced. */
        std::size_t capacity = 256;
        /** When non-empty: write-through persistence directory (created
         *  on first use; one `<fingerprint-hex>.json` per entry). */
        std::string persist_dir;
        /** Version stamped into persisted entries; entries carrying any
         *  other version (or none) are ignored on load. */
        std::uint64_t version = kResultCacheSchemaVersion;
    };

    /** Counters since construction (disk_hits are also counted as
     *  hits; misses count lookups that found nothing anywhere). */
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t insertions = 0;
        std::uint64_t disk_hits = 0;
        std::uint64_t disk_writes = 0;
        /** On-disk entries skipped for carrying another version. */
        std::uint64_t version_mismatches = 0;
    };

    ResultCache() : ResultCache(Options{}) {}
    explicit ResultCache(Options options);

    /** Looks up @p fingerprint, falling back to the persistence dir on
     *  a memory miss (a disk hit repopulates memory). True on hit with
     *  the stored text in @p result_json. */
    bool Get(std::uint64_t fingerprint, std::string *result_json)
        SOMA_EXCLUDES(mutex_);

    /** Inserts (or refreshes) an entry, evicting the LRU tail beyond
     *  capacity, and writes it through to the persistence dir. */
    void Put(std::uint64_t fingerprint, const std::string &result_json)
        SOMA_EXCLUDES(mutex_);

    std::size_t size() const SOMA_EXCLUDES(mutex_);
    Stats stats() const SOMA_EXCLUDES(mutex_);
    void Clear() SOMA_EXCLUDES(mutex_);  ///< drops memory entries (and
                                         ///< stats); disk stays

    /** The file an entry persists to (empty when persistence is off). */
    std::string PathFor(std::uint64_t fingerprint) const
        SOMA_EXCLUDES(mutex_);

  private:
    struct Entry {
        std::uint64_t fingerprint;
        std::string text;
    };

    std::string PathForLocked(std::uint64_t fingerprint) const
        SOMA_REQUIRES(mutex_);
    bool LoadFromDisk(std::uint64_t fingerprint, std::string *text)
        SOMA_REQUIRES(mutex_);
    void InsertLocked(std::uint64_t fingerprint, const std::string &text)
        SOMA_REQUIRES(mutex_);

    /** Lock order: leaf — never takes another lock while held (the
     *  service may hold its own mutex when calling into the cache). */
    mutable Mutex mutex_;
    /** Mutated in Put: persist_dir is cleared when the directory cannot
     *  be created (persistence turns itself off). */
    Options options_ SOMA_GUARDED_BY(mutex_);
    std::list<Entry> lru_ SOMA_GUARDED_BY(mutex_);  ///< front = MRU
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_
        SOMA_GUARDED_BY(mutex_);
    Stats stats_ SOMA_GUARDED_BY(mutex_);
    bool dir_ready_ SOMA_GUARDED_BY(mutex_) =
        false;  ///< persist_dir has been created
};

}  // namespace soma

#endif  // SOMA_SERVICE_RESULT_CACHE_H
