/**
 * @file
 * SchedulerService — the caching, coalescing serving layer wrapped
 * around soma::Scheduler for repeated traffic (DSE sweeps, a fixed
 * model zoo served many times). Four mechanisms stack on the facade:
 *
 *  - Result cache: requests are pure functions of their
 *    result-affecting fields, so the service memoizes serialized
 *    results by ScheduleRequest::Fingerprint() in an LRU (optionally
 *    persisted to disk, one JSON file per fingerprint, written via
 *    temp-file + atomic rename so concurrent sweep shards never
 *    publish a torn entry). A hit returns the exact bytes a cold run
 *    produced — the cache-determinism contract `cached result ==
 *    recomputed result, byte for byte`.
 *  - In-flight coalescing: N concurrent Schedule() calls with one
 *    fingerprint run one search; the leader fans its serialized result
 *    out to every waiting sibling. Waiters keep honoring their own
 *    QoS: a sibling whose cancel flag trips or whose deadline_ms
 *    passes while pending gives up with the matching status instead
 *    of blocking on the leader.
 *  - Graph cache: workloads are cached by (model, batch), so a sweep
 *    over one model parses it once instead of once per request.
 *  - Warm-state cache: result-cache-cold requests over an already-seen
 *    (graph, hardware preset) start from the warm fused-group tilings
 *    and tile costs of every earlier search (WarmStateCache; injected
 *    through ScheduleRequest::warm_state). Pure-value caches — a warm
 *    search produces the same bytes as a cold one, pinned by test.
 *
 * Memory-timing backends and the caches: memory_model is serialized,
 * so Fingerprint() separates result-cache entries per backend with no
 * service-layer changes. Warm state deliberately stays shared across
 * backends — tilings and tile costs are compute-side values the DRAM
 * seam never touches (DESIGN.md, "Memory timing backends") — so a
 * banked sweep warm-starts from an analytical one and vice versa.
 *
 * What is NOT cached: inline-graph requests (their fingerprint only
 * covers the graph's name), failed results (errors are not pure — a
 * registry entry may be added later), and deadline-truncated results
 * (they depend on wall-clock, violating the determinism contract).
 *
 * Clock discipline: every time comparison the service makes — the
 * negative-memo TTL, the coalesced waiter's deadline, and (in the
 * facade) deadline_ms itself — is computed on std::chrono::steady_clock
 * arithmetic, never the wall clock, so a system-time jump can neither
 * mass-expire nor immortalize entries nor truncate searches.
 * ServiceOptions::now_fn injects a fake monotonic clock for tests.
 *
 * Results served from the cache (and coalesced siblings) are
 * deserialized from the stored text: every serialized field matches
 * the cold run bit-for-bit, but the in-process payload
 * (graph/encodings) stays empty and on_progress does not fire.
 */
#ifndef SOMA_SERVICE_SERVICE_H
#define SOMA_SERVICE_SERVICE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "api/scheduler.h"
#include "common/thread_annotations.h"
#include "service/graph_cache.h"
#include "service/result_cache.h"
#include "service/warm_state_cache.h"

namespace soma {

namespace obs {
class MetricsRegistry;
}

struct ServiceOptions {
    /** Result-cache sizing/persistence. An empty cache_dir keeps the
     *  cache purely in-memory. */
    std::size_t result_cache_capacity = 256;
    std::string cache_dir;
    std::size_t graph_cache_capacity = 64;
    /** Warm-state residency: max TilingCaches / TileCostMemos kept for
     *  cross-request reuse (see WarmStateCache). 0 disables warm-state
     *  sharing — every search starts cold, as before PR 5. */
    std::size_t warm_state_capacity = 32;
    /**
     * Negative-result memo TTL. Errors stay uncacheable in the result
     * cache by design (they are not pure: a registry entry may be added
     * later), but a hot failing fingerprint — a sweep hammering an
     * unknown model, a budget no scheme fits — would re-run the full
     * search on every request. Failed pipelines are therefore memoized
     * in memory for this many milliseconds and replayed from the memo
     * while fresh. Cancelled and deadline-truncated results are never
     * memoized (they reflect the caller's QoS, not the request).
     * 0 disables the memo.
     */
    int error_ttl_ms = 2000;
    /**
     * Monotonic-clock hook for the TTL/deadline arithmetic above; null
     * (the default) uses std::chrono::steady_clock::now. Tests inject
     * a fake clock to pin expiry behaviour without sleeping.
     */
    std::function<std::chrono::steady_clock::time_point()> now_fn;
    /** Options for the wrapped facade (worker pool, driver threads). */
    Scheduler::Options scheduler;
};

/** Service-level counters plus the embedded cache stats. A stats()
 *  snapshot of the service's internal atomic counters — `somac sweep
 *  --stats` serializes this via ToJson(). */
struct ServiceStats {
    std::uint64_t requests = 0;     ///< Schedule() calls
    std::uint64_t coalesced = 0;    ///< joined an in-flight sibling
    std::uint64_t searches = 0;     ///< pipelines actually executed
    std::uint64_t uncacheable = 0;  ///< inline-graph bypasses
    std::uint64_t errors = 0;       ///< executed pipelines with ok=false
    std::uint64_t negative_hits = 0;///< served from the error memo
    ResultCache::Stats result_cache;
    GraphCache::Stats graph_cache;
    WarmStateCache::Stats warm_state;

    Json ToJson() const;  ///< the nested (legacy in-process) schema

    /**
     * Export this snapshot into @p registry as absolute-value counters
     * under flat dotted names ("service.requests",
     * "service.result_cache.hits", ...). The registry's canonical dump
     * is the `--stats` schema shared by somac run/sweep/fingerprint.
     */
    void ExportTo(obs::MetricsRegistry &registry) const;
};

class SchedulerService {
  public:
    SchedulerService() : SchedulerService(ServiceOptions{}) {}
    explicit SchedulerService(const ServiceOptions &options);

    SchedulerService(const SchedulerService &) = delete;
    SchedulerService &operator=(const SchedulerService &) = delete;

    /** The wrapped facade — configure registries through it. */
    Scheduler &scheduler() { return scheduler_; }

    /**
     * Serve @p request: result cache, then in-flight coalescing, then
     * one real pipeline run (warm-started from the warm-state cache).
     * Thread-safe; concurrent callers with the same fingerprint share
     * one search. When @p result_json is given it receives the
     * request's serialized result text — for cached and coalesced
     * requests these are the cold run's exact bytes.
     */
    ScheduleResult Schedule(const ScheduleRequest &request,
                            std::string *result_json = nullptr)
        SOMA_EXCLUDES(mutex_);

    ServiceStats stats() const;
    ResultCache &result_cache() { return result_cache_; }
    GraphCache &graph_cache() { return graph_cache_; }
    WarmStateCache &warm_state_cache() { return warm_state_cache_; }

  private:
    /** One coalesced in-flight search. `done`/`text` are protected by
     *  the *service's* mutex_ (waiters sleep on `cv` holding it) — a
     *  cross-object contract Clang's analysis cannot express on these
     *  members, so the guarantee is enforced by review plus the
     *  annotated Schedule()/RunAndPublish() paths that do all access. */
    struct Inflight {
        bool done = false;
        std::string text;
        CondVar cv;
    };
    /** One memoized failure (see ServiceOptions::error_ttl_ms). */
    struct NegativeEntry {
        std::chrono::steady_clock::time_point expires;
        std::string text;
    };
    /**
     * The mutable counters behind ServiceStats. Atomics, not
     * mutex-guarded fields: concurrent Schedule() calls bump them on
     * paths that never take mutex_ (the unlocked result-cache fast
     * path, the inline-graph bypass), so plain integers would tear
     * under TSan — and did, before PR 5's correctness pass.
     */
    struct Counters {
        std::atomic<std::uint64_t> requests{0};
        std::atomic<std::uint64_t> coalesced{0};
        std::atomic<std::uint64_t> searches{0};
        std::atomic<std::uint64_t> uncacheable{0};
        std::atomic<std::uint64_t> errors{0};
        std::atomic<std::uint64_t> negative_hits{0};
    };

    ScheduleResult RunAndPublish(const ScheduleRequest &request,
                                 std::uint64_t fingerprint,
                                 const std::shared_ptr<Inflight> &flight,
                                 std::string *result_json)
        SOMA_EXCLUDES(mutex_);

    /** The fresh error memo entry for @p fingerprint, if any (prunes an
     *  expired one). */
    const NegativeEntry *FindNegativeLocked(std::uint64_t fingerprint)
        SOMA_REQUIRES(mutex_);

    /** The injected (or steady_clock) monotonic now. */
    std::chrono::steady_clock::time_point Now() const;

    const int error_ttl_ms_;  ///< ServiceOptions::error_ttl_ms
    const std::function<std::chrono::steady_clock::time_point()> now_fn_;
    /* The wrapped facade and the three caches synchronize internally
     * (each owns its own leaf lock); mutex_ below only covers the
     * coalescing map and the error memo. */
    Scheduler scheduler_;            // somalint: allow(guarded-field)
    ResultCache result_cache_;       // somalint: allow(guarded-field)
    GraphCache graph_cache_;         // somalint: allow(guarded-field)
    WarmStateCache warm_state_cache_;// somalint: allow(guarded-field)

    /** Lock order: mutex_ may be held while calling into the result
     *  cache (the under-registration recheck) — so mutex_ comes BEFORE
     *  every cache-internal lock, and the caches never call back into
     *  the service. */
    mutable Mutex mutex_;  ///< inflight + error memo
    std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> inflight_
        SOMA_GUARDED_BY(mutex_);
    std::unordered_map<std::uint64_t, NegativeEntry> negative_
        SOMA_GUARDED_BY(mutex_);
    Counters counters_;  // somalint: allow(guarded-field) all-atomic struct
};

}  // namespace soma

#endif  // SOMA_SERVICE_SERVICE_H
