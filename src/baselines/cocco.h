/**
 * @file
 * Cocco baseline (Tan et al., ASPLOS'24) as characterized by the paper
 * (Sec. IV-B): within our Tensor-centric Notation only the Computing
 * Order and the DRAM Cut set are explorable; the FLC set always equals
 * the DRAM Cut set (an LG is a single FLG), the Tiling Number comes from
 * the KC-parallelism heuristic, and DRAM timing is the classical
 * double-buffer strategy. Shares SoMa's evaluator for apples-to-apples
 * comparison.
 */
#ifndef SOMA_BASELINES_COCCO_H
#define SOMA_BASELINES_COCCO_H

#include "corearray/core_array.h"
#include "notation/encoding.h"
#include "search/driver.h"
#include "search/sa.h"
#include "search/warm_state.h"
#include "sim/report.h"

namespace soma {

/** Cocco search hyperparameters. */
struct CoccoOptions {
    int beta = 100;             ///< iterations = beta * num_layers
    int max_iterations = 8000;
    int tiling_cap = 64;
    double cost_n = 1.0;
    double cost_m = 1.0;
    std::uint64_t seed = 1;
    /** Greedy fusion seeding, mirroring the LFA stage's. Cocco's real
     *  genetic search explores grouping thoroughly; the seed keeps the
     *  laptop-budget comparison about the scheduling space, not the
     *  optimizer budget. */
    bool greedy_seed = true;
    /** Optional cross-request warm caches (service-injected; see
     *  warm_state.h). Tilings and tile costs are scheduler-agnostic
     *  pure values, so Cocco and SoMa requests over one (graph,
     *  hardware preset) warm each other. */
    SearchWarmState warm;
    SaOptions sa;
    SearchDriverOptions driver;
};

/** Best scheme found by the Cocco baseline. */
struct CoccoResult {
    LfaEncoding lfa;
    ParsedSchedule parsed;
    DlsaEncoding dlsa;
    EvalReport report;
    double cost = 0.0;
    SaStats stats;
};

/** A quick profile mirroring QuickSomaOptions. */
CoccoOptions QuickCoccoOptions(std::uint64_t seed = 1);

/** The default evaluation profile used by the benches. */
CoccoOptions DefaultCoccoOptions(std::uint64_t seed = 1);

/** Paper-fidelity budgets mirroring FullSomaOptions: the benches' and
 *  the API's "full" profile. */
CoccoOptions FullCoccoOptions(std::uint64_t seed = 1);

/** Run the Cocco exploration. */
CoccoResult RunCocco(const Graph &graph, const HardwareConfig &hw,
                     const CoccoOptions &opts);

/**
 * The Cocco encoding for a given order and DRAM-cut set: FLC = DRAM
 * cuts, heuristic tiling per LG. Exposed for tests and for Fig. 3's
 * tile-level scatter, which needs Cocco's tiling of a given fusion plan.
 */
LfaEncoding MakeCoccoLfa(const Graph &graph, const HardwareConfig &hw,
                         const std::vector<LayerId> &order,
                         const std::vector<int> &dram_cuts, int tiling_cap);

}  // namespace soma

#endif  // SOMA_BASELINES_COCCO_H
