#include "baselines/cocco.h"

#include <algorithm>
#include <memory>

#include "search/dlsa_heuristics.h"
#include "search/driver.h"
#include "search/lfa_stage.h"
#include "sim/eval_context.h"
#include "sim/evaluator.h"

namespace soma {

CoccoOptions
QuickCoccoOptions(std::uint64_t seed)
{
    CoccoOptions opts;
    opts.seed = seed;
    opts.beta = 10;
    opts.max_iterations = 600;
    return opts;
}

CoccoOptions
DefaultCoccoOptions(std::uint64_t seed)
{
    CoccoOptions opts;
    opts.seed = seed;
    opts.beta = 40;
    opts.max_iterations = 4000;
    return opts;
}

CoccoOptions
FullCoccoOptions(std::uint64_t seed)
{
    CoccoOptions opts = DefaultCoccoOptions(seed);
    opts.beta = 100;
    opts.max_iterations = 20000;
    return opts;
}

LfaEncoding
MakeCoccoLfa(const Graph &graph, const HardwareConfig &hw,
             const std::vector<LayerId> &order,
             const std::vector<int> &dram_cuts, int tiling_cap)
{
    LfaEncoding lfa;
    lfa.order = order;
    lfa.flc_cuts = dram_cuts;
    lfa.dram_cuts = dram_cuts;
    for (int g = 0; g < lfa.NumFlgs(); ++g) {
        lfa.tiling.push_back(HeuristicParallelTiles(
            graph, lfa.FlgLayers(g), hw, tiling_cap));
    }
    return lfa;
}

namespace {

/** Cocco's explorable state: the LG partition and the order. */
struct CoccoState {
    std::vector<LayerId> order;
    std::vector<int> cuts;  ///< DRAM cuts (== FLC cuts)
};

bool
MutateCocco(const Graph &graph, const CoccoState &cur, CoccoState *next,
            Rng &rng)
{
    *next = cur;
    const int n = graph.NumLayers();
    for (int attempt = 0; attempt < 4; ++attempt) {
        switch (rng.UniformInt(0, 2)) {
          case 0:
            if (MutateOrderMoveLayer(graph, &next->order, rng)) return true;
            break;
          case 1: {  // add a cut
            if (static_cast<int>(next->cuts.size()) >= n - 1) break;
            int p = rng.UniformInt(1, n - 1);
            auto it = std::lower_bound(next->cuts.begin(), next->cuts.end(),
                                       p);
            if (it != next->cuts.end() && *it == p) break;
            next->cuts.insert(it, p);
            return true;
          }
          case 2: {  // delete a cut
            if (next->cuts.empty()) break;
            int i = rng.UniformInt(0,
                                   static_cast<int>(next->cuts.size()) - 1);
            next->cuts.erase(next->cuts.begin() + i);
            return true;
          }
        }
    }
    return false;
}

}  // namespace

CoccoResult
RunCocco(const Graph &graph, const HardwareConfig &hw,
         const CoccoOptions &opts)
{
    Rng rng(opts.seed);
    CoreArrayEvaluator core_eval(
        graph, hw,
        opts.warm.tile_costs ? opts.warm.tile_costs
                             : std::make_shared<TileCostMemo>());
    const Ops total_ops = graph.TotalOps();

    // Cocco's conservative buffer semantics: weights stay resident for
    // their whole LG (no fine-grained weight windowing).
    const ParseOptions popts{/*lg_resident_weights=*/true};

    auto eval_with = [&graph, &hw, popts, total_ops, cap = opts.tiling_cap,
                      n = opts.cost_n, m = opts.cost_m](
                         EvalContext &ctx, CoreArrayEvaluator &ce,
                         const CoccoState &state) -> double {
        LfaEncoding lfa = MakeCoccoLfa(graph, hw, state.order, state.cuts,
                                       cap);
        const ParsedSchedule &parsed = ctx.Parse(graph, lfa, ce, popts);
        if (!parsed.valid) return std::numeric_limits<double>::infinity();
        DlsaEncoding dlsa = MakeCoccoDlsa(parsed);
        const EvalReport &rep = ctx.Evaluate(graph, hw, parsed, dlsa,
                                             hw.gbuf_bytes, total_ops);
        return rep.Cost(n, m);
    };

    auto tiling_cache = opts.warm.tilings ? opts.warm.tilings
                                          : std::make_shared<TilingCache>();
    EvalContext serial_ctx;
    serial_ctx.set_tiling_cache(tiling_cache);
    auto evaluate = [&](const CoccoState &state) -> double {
        return eval_with(serial_ctx, core_eval, state);
    };

    // Initial: unfused.
    CoccoState state;
    state.order = graph.TopoOrder();
    for (int p = 1; p < graph.NumLayers(); ++p) state.cuts.push_back(p);
    double cost = evaluate(state);

    if (opts.greedy_seed) {
        std::vector<int> snapshot = state.cuts;
        for (auto it = snapshot.rbegin(); it != snapshot.rend(); ++it) {
            CoccoState cand = state;
            auto cit = std::lower_bound(cand.cuts.begin(), cand.cuts.end(),
                                        *it);
            if (cit == cand.cuts.end() || *cit != *it) continue;
            cand.cuts.erase(cit);
            double cand_cost = evaluate(cand);
            if (cand_cost <= cost) {
                state = std::move(cand);
                cost = cand_cost;
            }
        }
    }

    SaOptions sa = opts.sa;
    sa.iterations = std::min(opts.max_iterations,
                             opts.beta * graph.NumLayers());

    // Chains share the serial pass's tile-cost memo and tiling cache
    // (pure-value caches: sharing never perturbs per-seed determinism).
    auto make_env = [&](int /*chain*/) {
        ChainEnv<CoccoState> env;
        auto ce = std::make_shared<CoreArrayEvaluator>(graph, hw,
                                                       core_eval.memo());
        auto ctx = std::make_shared<EvalContext>();
        ctx->set_tiling_cache(tiling_cache);
        env.mutate = [&graph](const CoccoState &cur, CoccoState *next,
                              Rng &r) {
            return MutateCocco(graph, cur, next, r);
        };
        env.evaluate = [eval_with, ce, ctx](const CoccoState &s) {
            return eval_with(*ctx, *ce, s);
        };
        return env;
    };
    CoccoResult result;
    result.stats = RunDriverAndAdopt<CoccoState>(make_env, sa, opts.driver,
                                                 rng, &state, &cost);
    result.cost = cost;
    result.lfa = MakeCoccoLfa(graph, hw, state.order, state.cuts,
                              opts.tiling_cap);
    result.parsed = ParseLfa(graph, result.lfa, core_eval, popts);
    result.dlsa = MakeCoccoDlsa(result.parsed);
    result.report = EvaluateSchedule(graph, hw, result.parsed, result.dlsa,
                                     hw.gbuf_bytes, total_ops);
    return result;
}

}  // namespace soma
