#include "corearray/core_array.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/prof.h"

namespace soma {

namespace {

std::int64_t
CeilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

}  // namespace

TileCostMemo::TileKey
TileCostMemo::Key(LayerId layer, const Region &region)
{
    return TileKey{static_cast<std::int32_t>(layer), region.Batches(),
                   region.Rows(), region.Cols()};
}

std::size_t
TileCostMemo::KeyHash::operator()(const TileKey &key) const
{
    std::uint64_t z = (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(key.layer))
                       << 32) |
                      static_cast<std::uint32_t>(key.batches);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z ^= (static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(key.rows))
          << 32) |
         static_cast<std::uint32_t>(key.cols);
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
}

TileCostMemo::Shard &
TileCostMemo::ShardFor(const TileKey &key) const
{
    return shards_[KeyHash{}(key) & (kShards - 1)];
}

const TileCost *
TileCostMemo::Find(const TileKey &key) const
{
    Shard &shard = ShardFor(key);
    SharedReaderLock lock(shard.mutex);
    auto it = shard.map.find(key);
    return it == shard.map.end() ? nullptr : &it->second;
}

const TileCost &
TileCostMemo::Insert(const TileKey &key, const TileCost &cost)
{
    Shard &shard = ShardFor(key);
    SharedMutexLock lock(shard.mutex);
    return shard.map.emplace(key, cost).first->second;
}

std::size_t
TileCostMemo::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        SharedReaderLock lock(shard.mutex);
        total += shard.map.size();
    }
    return total;
}

std::size_t
TileCostMemo::ApproxBytes() const
{
    // Keys and values are flat structs; fold in a nominal per-node
    // overhead for the hash map's buckets and links.
    constexpr std::size_t kNodeOverhead = 2 * sizeof(void *);
    return size() * (sizeof(TileKey) + sizeof(TileCost) + kNodeOverhead);
}

CoreArrayEvaluator::CoreArrayEvaluator(const Graph &graph,
                                       const HardwareConfig &hw)
    : CoreArrayEvaluator(graph, hw, std::make_shared<TileCostMemo>())
{
}

CoreArrayEvaluator::CoreArrayEvaluator(const Graph &graph,
                                       const HardwareConfig &hw,
                                       std::shared_ptr<TileCostMemo> memo)
    : graph_(graph), hw_(hw), memo_(std::move(memo))
{
    assert(memo_);
}

const TileCost &
CoreArrayEvaluator::Evaluate(LayerId layer, const Region &region)
{
    const TileCostMemo::TileKey key = TileCostMemo::Key(layer, region);
    if (const TileCost *hit = memo_->Find(key)) return *hit;
    SOMA_PROF_SCOPE("tilecost.compute");
    return memo_->Insert(key, Compute(layer, region));
}

Bytes
CoreArrayEvaluator::InputBytes(const Layer &layer, const Region &region) const
{
    Bytes total = 0;
    for (const InputRef &in : layer.inputs()) {
        int prod_c, prod_h, prod_w;
        if (in.producer == kNoLayer) {
            prod_c = in.ext.channels;
            prod_h = in.ext.height;
            prod_w = in.ext.width;
        } else {
            const Layer &p = graph_.layer(in.producer);
            prod_c = p.outChannels();
            prod_h = p.outHeight();
            prod_w = p.outWidth();
        }
        total += layer.InputBytes(in, region, prod_c, prod_h, prod_w);
    }
    return total;
}

TileCost
CoreArrayEvaluator::Compute(LayerId layer, const Region &region) const
{
    if (region.Empty()) return TileCost{};
    const Layer &l = graph_.layer(layer);
    Bytes input_bytes = InputBytes(l, region);
    if (IsMatrixKind(l.kind())) return MatrixCost(l, region, input_bytes);
    return VectorCost(l, region, input_bytes);
}

TileCost
CoreArrayEvaluator::MatrixCost(const Layer &layer, const Region &region,
                               Bytes input_bytes) const
{
    const std::int64_t sites = region.Sites();
    const std::int64_t k_dim = layer.outChannels();
    const std::int64_t red = std::max<Ops>(1, layer.opsPerElement() / 2);
    const Ops ops = layer.OpsForRegion(region);
    const Bytes out_bytes = layer.OutputBytes(region);

    // Search the core partition: k_cores cores split output channels,
    // the rest replicate weights and split spatial sites.
    Cycles best_cycles = INT64_MAX;
    Bytes best_traffic = INT64_MAX;
    for (int k_cores = 1; k_cores <= hw_.cores; ++k_cores) {
        if (hw_.cores % k_cores != 0) continue;
        int s_cores = hw_.cores / k_cores;
        std::int64_t k_per = CeilDiv(k_dim, k_cores);
        std::int64_t sites_per = CeilDiv(sites, s_cores);

        // Within a core the PE array maps output channels on its rows and
        // the reduction (C*R*S or GEMM-K) on its columns; sites stream
        // temporally.
        std::int64_t k_passes = CeilDiv(k_per, hw_.pe_rows_per_core);
        std::int64_t red_passes = CeilDiv(red, hw_.pe_cols_per_core);
        Cycles cycles = k_passes * red_passes * sites_per +
                        kTileOverheadCycles;

        // GBUF <-> L0 traffic: weights are replicated across spatial
        // cores; when a core's weight slice exceeds WL0 the activations
        // must be re-streamed once per weight chunk.
        Bytes w_slice = layer.weightBytes() / std::max(1, k_cores);
        std::int64_t reload =
            std::max<std::int64_t>(1, CeilDiv(w_slice, hw_.l0_weight_bytes));
        Bytes traffic = layer.weightBytes() * s_cores +
                        input_bytes * reload + out_bytes;
        if (layer.weightBytes() == 0) {
            // Activation-activation GEMM: the full (B-operand) input is
            // re-streamed when it overflows AL0.
            std::int64_t b_reload = std::max<std::int64_t>(
                1, CeilDiv(input_bytes, hw_.l0_act_bytes * hw_.cores));
            traffic = input_bytes * std::min<std::int64_t>(b_reload, 4) +
                      out_bytes;
        }

        if (cycles < best_cycles ||
            (cycles == best_cycles && traffic < best_traffic)) {
            best_cycles = cycles;
            best_traffic = traffic;
        }
    }

    TileCost cost;
    cost.ops = ops;
    cost.gbuf_traffic = best_traffic;
    cost.seconds = static_cast<double>(best_cycles) / (hw_.freq_ghz * 1e9);
    cost.energy_pj = static_cast<double>(ops) * hw_.energy.mac_pj_per_op +
                     static_cast<double>(ops) * hw_.energy.l0_pj_per_byte +
                     static_cast<double>(best_traffic) *
                         hw_.energy.gbuf_pj_per_byte;
    return cost;
}

TileCost
CoreArrayEvaluator::VectorCost(const Layer &layer, const Region &region,
                               Bytes input_bytes) const
{
    const Ops ops = layer.OpsForRegion(region);
    const Bytes out_bytes = layer.OutputBytes(region);
    double lanes = hw_.VectorOpsPerSecond() / (hw_.freq_ghz * 1e9);
    Cycles cycles =
        CeilDiv(ops, std::max<std::int64_t>(1,
                                            static_cast<std::int64_t>(lanes)))
        + kTileOverheadCycles;
    Bytes traffic = input_bytes + out_bytes;

    TileCost cost;
    cost.ops = ops;
    cost.gbuf_traffic = traffic;
    cost.seconds = static_cast<double>(cycles) / (hw_.freq_ghz * 1e9);
    cost.energy_pj =
        static_cast<double>(ops) * hw_.energy.vector_pj_per_op +
        static_cast<double>(traffic) * hw_.energy.gbuf_pj_per_byte;
    return cost;
}

}  // namespace soma
