/**
 * @file
 * Core Array Scheduler & Evaluator.
 *
 * For each computing tile (ifmaps/weights already in GBUF, ofmaps written
 * back to GBUF) this module searches how to divide the tile into
 * sub-tiles across cores — output-channel parallelism vs spatial
 * parallelism — and evaluates cycles and energy of the best mapping,
 * including GBUF<->L0 traffic. This is the "classic scheduler and
 * evaluator" role the paper delegates to Timeloop/MAESTRO-style models
 * (Sec. V-D); results are memoized because SA re-evaluates identical
 * tile shapes millions of times.
 */
#ifndef SOMA_COREARRAY_CORE_ARRAY_H
#define SOMA_COREARRAY_CORE_ARRAY_H

#include <unordered_map>

#include "hw/hardware.h"
#include "tiling/tiler.h"
#include "workload/graph.h"

namespace soma {

/** Cost of computing one tile on the core array. */
struct TileCost {
    double seconds = 0.0;    ///< compute time of the tile
    double energy_pj = 0.0;  ///< MAC + vector + L0 + GBUF energy
    Ops ops = 0;             ///< ops actually executed (incl. halo redo)
    Bytes gbuf_traffic = 0;  ///< bytes moved between GBUF and L0s
};

/**
 * Analytical per-tile mapper with memoization. Not thread safe; create
 * one instance per search thread.
 */
class CoreArrayEvaluator {
  public:
    CoreArrayEvaluator(const Graph &graph, const HardwareConfig &hw);

    /**
     * Cost of computing @p region of @p layer's ofmap. Empty regions
     * cost zero.
     */
    const TileCost &Evaluate(LayerId layer, const Region &region);

    /** Fixed per-tile launch overhead in cycles (pipeline fill/drain). */
    static constexpr Cycles kTileOverheadCycles = 500;

    const HardwareConfig &hw() const { return hw_; }
    const Graph &graph() const { return graph_; }

  private:
    TileCost Compute(LayerId layer, const Region &region) const;
    TileCost MatrixCost(const Layer &layer, const Region &region,
                        Bytes input_bytes) const;
    TileCost VectorCost(const Layer &layer, const Region &region,
                        Bytes input_bytes) const;

    /** Total bytes this tile reads from all its inputs (halo included). */
    Bytes InputBytes(const Layer &layer, const Region &region) const;

    const Graph &graph_;
    HardwareConfig hw_;
    std::unordered_map<std::uint64_t, TileCost> memo_;
};

}  // namespace soma

#endif  // SOMA_COREARRAY_CORE_ARRAY_H
