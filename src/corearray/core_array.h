/**
 * @file
 * Core Array Scheduler & Evaluator.
 *
 * For each computing tile (ifmaps/weights already in GBUF, ofmaps written
 * back to GBUF) this module searches how to divide the tile into
 * sub-tiles across cores — output-channel parallelism vs spatial
 * parallelism — and evaluates cycles and energy of the best mapping,
 * including GBUF<->L0 traffic. This is the "classic scheduler and
 * evaluator" role the paper delegates to Timeloop/MAESTRO-style models
 * (Sec. V-D); results are memoized because SA re-evaluates identical
 * tile shapes millions of times.
 */
#ifndef SOMA_COREARRAY_CORE_ARRAY_H
#define SOMA_COREARRAY_CORE_ARRAY_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "hw/hardware.h"
#include "tiling/tiler.h"
#include "workload/graph.h"

namespace soma {

/** Cost of computing one tile on the core array. */
struct TileCost {
    double seconds = 0.0;    ///< compute time of the tile
    double energy_pj = 0.0;  ///< MAC + vector + L0 + GBUF energy
    Ops ops = 0;             ///< ops actually executed (incl. halo redo)
    Bytes gbuf_traffic = 0;  ///< bytes moved between GBUF and L0s

    bool operator==(const TileCost &o) const
    {
        return seconds == o.seconds && energy_pj == o.energy_pj &&
               ops == o.ops && gbuf_traffic == o.gbuf_traffic;
    }
    bool operator!=(const TileCost &o) const { return !(*this == o); }
};

/**
 * Sharded read-mostly concurrent memo of tile costs, shared by every
 * CoreArrayEvaluator of one search (all SearchDriver chains warm one
 * memo instead of each starting cold) and — via the service layer's
 * WarmStateCache — across every request scheduling the same (graph,
 * hardware preset). Keys carry (layer, batches, rows, cols) exactly —
 * no lossy hashing, full equality on lookup — so a hit always returns
 * the cost the key's tile shape deterministically computes to: results
 * never depend on which chain or request inserted an entry first.
 * Entries are never erased, so returned references stay valid for the
 * memo's lifetime.
 *
 * Cross-request sharing invariant: a TileCost depends on the core
 * array's compute-side parameters (cores, PE geometry, L0 sizes,
 * frequency, energy table) but NOT on HardwareConfig::gbuf_bytes or
 * dram_gbps — which is why WarmStateCache keys memos by hardware
 * *preset* and shares them across GBUF/DRAM DSE overrides. If a future
 * cost model reads either field, the warm-state key must grow them.
 */
class TileCostMemo {
  public:
    /** Exact memo key: tiles of one layer with equal extents cost the
     *  same; positions are irrelevant to the core array. */
    struct TileKey {
        std::int32_t layer = 0;
        std::int32_t batches = 0;
        std::int32_t rows = 0;
        std::int32_t cols = 0;
        bool operator==(const TileKey &o) const
        {
            return layer == o.layer && batches == o.batches &&
                   rows == o.rows && cols == o.cols;
        }
        bool operator!=(const TileKey &o) const { return !(*this == o); }
    };

    static TileKey Key(LayerId layer, const Region &region);

    /** The cost stored for @p key, or nullptr on a miss. */
    const TileCost *Find(const TileKey &key) const;

    /** Insert @p cost for @p key; returns the stored entry (the
     *  already-present one if another thread raced the insert — both
     *  computed the identical value). */
    const TileCost &Insert(const TileKey &key, const TileCost &cost);

    /** Total entries over all shards (approximate under concurrency). */
    std::size_t size() const;

    /** Rough resident footprint in bytes, for the warm-state accounting
     *  surfaced by `somac sweep --stats`. */
    std::size_t ApproxBytes() const;

  private:
    struct KeyHash {
        std::size_t operator()(const TileKey &key) const;
    };
    static constexpr int kShards = 16;
    struct Shard {
        /** Lock order: leaf. Find takes it shared, Insert exclusive;
         *  cost computation always runs outside it. */
        mutable SharedMutex mutex;
        std::unordered_map<TileKey, TileCost, KeyHash> map
            SOMA_GUARDED_BY(mutex);
    };
    Shard &ShardFor(const TileKey &key) const;

    mutable std::array<Shard, kShards> shards_;
};

/**
 * Analytical per-tile mapper with memoization. Thread-safe: the memo is
 * a concurrent TileCostMemo that several evaluators (one per search
 * chain) can share; graph/hardware state is immutable after
 * construction.
 */
class CoreArrayEvaluator {
  public:
    /** Evaluator with its own fresh memo. */
    CoreArrayEvaluator(const Graph &graph, const HardwareConfig &hw);

    /** Evaluator sharing @p memo (e.g. the stage-wide memo all chains
     *  of a SearchDriver run warm together). */
    CoreArrayEvaluator(const Graph &graph, const HardwareConfig &hw,
                       std::shared_ptr<TileCostMemo> memo);

    /**
     * Cost of computing @p region of @p layer's ofmap. Empty regions
     * cost zero. The returned reference stays valid for the memo's
     * lifetime.
     */
    const TileCost &Evaluate(LayerId layer, const Region &region);

    /** Fixed per-tile launch overhead in cycles (pipeline fill/drain). */
    static constexpr Cycles kTileOverheadCycles = 500;

    const HardwareConfig &hw() const { return hw_; }
    const Graph &graph() const { return graph_; }

    /** The memo backing this evaluator — pass to sibling evaluators to
     *  share warm-up across chains. */
    const std::shared_ptr<TileCostMemo> &memo() const { return memo_; }

  private:
    TileCost Compute(LayerId layer, const Region &region) const;
    TileCost MatrixCost(const Layer &layer, const Region &region,
                        Bytes input_bytes) const;
    TileCost VectorCost(const Layer &layer, const Region &region,
                        Bytes input_bytes) const;

    /** Total bytes this tile reads from all its inputs (halo included). */
    Bytes InputBytes(const Layer &layer, const Region &region) const;

    const Graph &graph_;
    HardwareConfig hw_;
    std::shared_ptr<TileCostMemo> memo_;
};

}  // namespace soma

#endif  // SOMA_COREARRAY_CORE_ARRAY_H
