#include "compiler/vm.h"

#include <algorithm>

#include "hw/memory_model.h"

namespace soma {

VmResult
ExecuteProgram(const Program &prog,
               const std::vector<double> &compute_seconds,
               const HardwareConfig &hw)
{
    VmResult res;
    if (!prog.DepsAcyclic()) {
        res.error = "program has forward or invalid dependencies";
        return res;
    }
    const int n = static_cast<int>(prog.instructions.size());
    res.events.resize(n);

    double dram_free = 0.0;
    double core_free = 0.0;
    int compute_ordinal = 0;

    for (int i = 0; i < n; ++i) {
        const Instruction &instr = prog.instructions[i];
        double ready = 0.0;
        for (int d : instr.deps)
            ready = std::max(ready, res.events[d].finish);

        double duration;
        double *unit_free;
        if (instr.op == Opcode::kCompute) {
            if (compute_ordinal >=
                static_cast<int>(compute_seconds.size())) {
                res.error = "missing compute duration for " + instr.label;
                return res;
            }
            duration = compute_seconds[compute_ordinal++];
            unit_free = &core_free;
            res.core_busy += duration;
        } else {
            duration = ModelTransferSeconds(hw, instr.bytes,
                                            instr.op == Opcode::kLoad);
            unit_free = &dram_free;
            res.dram_busy += duration;
        }

        double start = std::max(ready, *unit_free);
        double finish = start + duration;
        res.events[i] = VmEvent{start, finish};
        *unit_free = finish;
        res.makespan = std::max(res.makespan, finish);
    }
    if (compute_ordinal != static_cast<int>(compute_seconds.size())) {
        res.error = "unused compute durations";
        return res;
    }
    res.ok = true;
    return res;
}

VmResult
ExecuteIr(const IrModule &ir, const HardwareConfig &hw)
{
    Program prog = GenerateInstructions(ir);
    std::vector<double> seconds;
    seconds.reserve(ir.tiles.size());
    for (const IrTile &t : ir.tiles) seconds.push_back(t.seconds);
    return ExecuteProgram(prog, seconds, hw);
}

}  // namespace soma
