/**
 * @file
 * Instruction-stream virtual machine.
 *
 * Executes a generated Program on the abstract machine of Sec. II — one
 * serial DRAM channel and one serial core-array pipeline — honoring only
 * the explicit instruction dependencies. Because the dependencies are
 * supposed to encode exactly the evaluator's start conditions
 * (Sec. V-D), the VM's makespan must equal the evaluator's latency; the
 * cross-check catches any divergence between the compiler back-end and
 * the analytical model (the role the paper's ZEBU FPGA platform plays
 * for their compiler).
 */
#ifndef SOMA_COMPILER_VM_H
#define SOMA_COMPILER_VM_H

#include <string>
#include <vector>

#include "compiler/instruction_gen.h"
#include "hw/hardware.h"

namespace soma {

/** Execution record of one instruction. */
struct VmEvent {
    double start = 0.0;
    double finish = 0.0;
};

/** Result of executing a Program. */
struct VmResult {
    bool ok = false;
    std::string error;
    double makespan = 0.0;
    double dram_busy = 0.0;
    double core_busy = 0.0;
    std::vector<VmEvent> events;  ///< indexed by instruction id
};

/**
 * Execute @p prog: DRAM instructions issue in program order on the DRAM
 * unit, computes in program order on the core unit; an instruction
 * starts at max(unit free, dependency finishes). Durations: transfers
 * take bytes / DRAM bandwidth; computes take the tile seconds recorded
 * in the IR (@p compute_seconds, indexed by compute ordinal).
 */
VmResult ExecuteProgram(const Program &prog,
                        const std::vector<double> &compute_seconds,
                        const HardwareConfig &hw);

/** Convenience: run the IR through instruction generation + the VM. */
VmResult ExecuteIr(const IrModule &ir, const HardwareConfig &hw);

}  // namespace soma

#endif  // SOMA_COMPILER_VM_H
