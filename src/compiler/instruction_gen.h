/**
 * @file
 * Instruction generation: lower an IR module into the abstract
 * load/store/compute instruction stream of Sec. II. Instructions carry
 * explicit completion dependencies (the "start and end of any
 * instruction can serve as markers" synchronization of Fig. 4) and GBUF
 * addresses from a bump allocator, so the stream is directly executable
 * by a cycle-accurate backend or device driver.
 */
#ifndef SOMA_COMPILER_INSTRUCTION_GEN_H
#define SOMA_COMPILER_INSTRUCTION_GEN_H

#include <string>
#include <vector>

#include "compiler/ir.h"

namespace soma {

/** The three abstract opcodes shared by mainstream accelerators. */
enum class Opcode { kLoad, kStore, kCompute };

/** One instruction of the abstract ISA. */
struct Instruction {
    Opcode op = Opcode::kCompute;
    int id = 0;                ///< unique, equals position in the program
    std::string label;         ///< tensor label or layer#round
    Bytes bytes = 0;           ///< transfer size (loads/stores)
    std::vector<int> deps;     ///< instruction ids to complete first

    std::string ToText() const;
};

/** A complete instruction stream plus summary statistics. */
struct Program {
    std::vector<Instruction> instructions;

    int NumLoads() const;
    int NumStores() const;
    int NumComputes() const;

    /** True when every dependency points backwards (schedulable). */
    bool DepsAcyclic() const;

    std::string ToText() const;
};

/**
 * Generate the instruction stream from an IR module. DRAM instructions
 * appear in DRAM Tensor Order interleaved with compute instructions in
 * tile order; dependencies encode the evaluator's start conditions
 * (Sec. V-D).
 */
Program GenerateInstructions(const IrModule &ir);

}  // namespace soma

#endif  // SOMA_COMPILER_INSTRUCTION_GEN_H
