/**
 * @file
 * The intermediate representation emitted by SoMa's IR Generator
 * (Fig. 5): a flat, easily parsable description of a complete scheduling
 * scheme — the tile sequence, the DRAM tensors with their order and
 * Living Durations — decoupled from the search data structures so that
 * external schedulers can target the same instruction generator (the
 * paper's open compiler-platform plan, Sec. V-F).
 */
#ifndef SOMA_COMPILER_IR_H
#define SOMA_COMPILER_IR_H

#include <string>
#include <vector>

#include "notation/encoding.h"
#include "notation/parser.h"
#include "workload/graph.h"

namespace soma {

/** One compute step in the IR. */
struct IrTile {
    std::string layer;
    int lg = 0;
    int flg = 0;
    int round = 0;
    Region region;
    double seconds = 0.0;  ///< evaluated compute time of the tile
};

/** One DRAM transfer in the IR. */
struct IrTensor {
    std::string label;
    bool is_load = true;
    Bytes bytes = 0;
    TilePos start = 0;  ///< Living Duration start (loads: the knob)
    TilePos end = 0;    ///< Living Duration end (stores: the knob)
};

/** A complete scheme in IR form. */
struct IrModule {
    std::string model;
    int batch = 1;
    std::vector<IrTile> tiles;
    std::vector<IrTensor> tensors;   ///< in DRAM Tensor Order
    /** need_loads[i]: tensor ranks that must complete before tile i. */
    std::vector<std::vector<int>> tile_deps;

    /** Serialize to the textual IR format. */
    std::string ToText() const;

    /** Parse the textual IR; returns false and fills @p error on issues. */
    static bool FromText(const std::string &text, IrModule *module,
                         std::string *error);
};

/** Lower a searched scheme into the IR. */
IrModule GenerateIr(const Graph &graph, const ParsedSchedule &parsed,
                    const DlsaEncoding &dlsa);

}  // namespace soma

#endif  // SOMA_COMPILER_IR_H
