#include "compiler/ir.h"

#include <iomanip>
#include <sstream>
#include <unordered_map>

namespace soma {

IrModule
GenerateIr(const Graph &graph, const ParsedSchedule &parsed,
           const DlsaEncoding &dlsa)
{
    IrModule ir;
    ir.model = graph.name();
    ir.batch = graph.batch();

    for (const TileInfo &t : parsed.tiles) {
        IrTile it;
        it.layer = graph.layer(t.layer).name();
        it.lg = t.lg;
        it.flg = t.flg;
        it.round = t.round;
        it.region = t.region;
        it.seconds = t.cost.seconds;
        ir.tiles.push_back(std::move(it));
    }

    // Tensor-id -> rank in the DRAM order.
    std::unordered_map<int, int> rank;
    for (int r = 0; r < static_cast<int>(dlsa.order.size()); ++r)
        rank[dlsa.order[r]] = r;

    ir.tensors.resize(parsed.NumTensors());
    for (int j = 0; j < parsed.NumTensors(); ++j) {
        const DramTensor &t = parsed.tensors[j];
        IrTensor it;
        it.label = t.Label(graph);
        it.is_load = t.IsLoad();
        it.bytes = t.bytes;
        if (t.IsLoad()) {
            it.start = dlsa.free_point[j];
            it.end = t.fixed_end;
        } else {
            it.start = t.first_use;
            it.end = dlsa.free_point[j];
        }
        ir.tensors[rank[j]] = std::move(it);
    }

    ir.tile_deps.resize(parsed.NumTiles());
    for (int i = 0; i < parsed.NumTiles(); ++i) {
        for (int j : parsed.tiles[i].need_loads)
            ir.tile_deps[i].push_back(rank[j]);
    }
    return ir;
}

std::string
IrModule::ToText() const
{
    std::ostringstream os;
    os << "ir " << model << " " << batch << "\n";
    os << std::setprecision(17);
    for (const IrTile &t : tiles) {
        os << "tile " << t.layer << " " << t.lg << " " << t.flg << " "
           << t.round << " " << t.region.b0 << " " << t.region.b1 << " "
           << t.region.r0 << " " << t.region.r1 << " " << t.region.c0 << " "
           << t.region.c1 << " " << t.seconds << "\n";
    }
    for (const IrTensor &t : tensors) {
        os << "tensor " << t.label << " " << (t.is_load ? "load" : "store")
           << " " << t.bytes << " " << t.start << " " << t.end << "\n";
    }
    for (std::size_t i = 0; i < tile_deps.size(); ++i) {
        if (tile_deps[i].empty()) continue;
        os << "dep " << i;
        for (int r : tile_deps[i]) os << " " << r;
        os << "\n";
    }
    return os.str();
}

bool
IrModule::FromText(const std::string &text, IrModule *module,
                   std::string *error)
{
    auto fail = [&](const std::string &msg, int line_no) {
        if (error) *error = "line " + std::to_string(line_no) + ": " + msg;
        return false;
    };
    IrModule ir;
    std::istringstream is(text);
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        std::istringstream ls(line);
        std::string tok;
        if (!(ls >> tok)) continue;
        if (tok == "ir") {
            if (!(ls >> ir.model >> ir.batch))
                return fail("malformed ir header", line_no);
        } else if (tok == "tile") {
            IrTile t;
            if (!(ls >> t.layer >> t.lg >> t.flg >> t.round >> t.region.b0 >>
                  t.region.b1 >> t.region.r0 >> t.region.r1 >> t.region.c0 >>
                  t.region.c1 >> t.seconds))
                return fail("malformed tile", line_no);
            ir.tiles.push_back(std::move(t));
        } else if (tok == "tensor") {
            IrTensor t;
            std::string dir;
            if (!(ls >> t.label >> dir >> t.bytes >> t.start >> t.end))
                return fail("malformed tensor", line_no);
            if (dir != "load" && dir != "store")
                return fail("tensor direction must be load|store", line_no);
            t.is_load = (dir == "load");
            ir.tensors.push_back(std::move(t));
        } else if (tok == "dep") {
            std::size_t i;
            if (!(ls >> i)) return fail("malformed dep", line_no);
            if (ir.tile_deps.size() < ir.tiles.size())
                ir.tile_deps.resize(ir.tiles.size());
            if (i >= ir.tile_deps.size())
                return fail("dep references unknown tile", line_no);
            int r;
            while (ls >> r) ir.tile_deps[i].push_back(r);
        } else {
            return fail("unknown directive " + tok, line_no);
        }
    }
    if (ir.tile_deps.size() < ir.tiles.size())
        ir.tile_deps.resize(ir.tiles.size());
    *module = std::move(ir);
    return true;
}

}  // namespace soma
