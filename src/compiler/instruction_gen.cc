#include "compiler/instruction_gen.h"

#include <algorithm>
#include <sstream>

namespace soma {

std::string
Instruction::ToText() const
{
    std::ostringstream os;
    switch (op) {
      case Opcode::kLoad: os << "LOAD  "; break;
      case Opcode::kStore: os << "STORE "; break;
      case Opcode::kCompute: os << "COMP  "; break;
    }
    os << id << " " << label;
    if (op != Opcode::kCompute) os << " bytes=" << bytes;
    if (!deps.empty()) {
        os << " after=[";
        for (std::size_t i = 0; i < deps.size(); ++i) {
            if (i) os << ",";
            os << deps[i];
        }
        os << "]";
    }
    return os.str();
}

int
Program::NumLoads() const
{
    return static_cast<int>(std::count_if(
        instructions.begin(), instructions.end(),
        [](const Instruction &i) { return i.op == Opcode::kLoad; }));
}

int
Program::NumStores() const
{
    return static_cast<int>(std::count_if(
        instructions.begin(), instructions.end(),
        [](const Instruction &i) { return i.op == Opcode::kStore; }));
}

int
Program::NumComputes() const
{
    return static_cast<int>(std::count_if(
        instructions.begin(), instructions.end(),
        [](const Instruction &i) { return i.op == Opcode::kCompute; }));
}

bool
Program::DepsAcyclic() const
{
    for (const Instruction &i : instructions) {
        for (int d : i.deps) {
            if (d < 0 || d >= i.id) return false;
        }
    }
    return true;
}

std::string
Program::ToText() const
{
    std::ostringstream os;
    for (const Instruction &i : instructions) os << i.ToText() << "\n";
    return os.str();
}

Program
GenerateInstructions(const IrModule &ir)
{
    Program prog;
    const int T = static_cast<int>(ir.tiles.size());
    const int D = static_cast<int>(ir.tensors.size());

    // Instruction ids assigned in emission order: we interleave the two
    // serial streams by "need position" so the text reads like the
    // execution (emission order does not constrain the hardware, the
    // deps do).
    std::vector<int> tile_instr(T, -1), tensor_instr(D, -1);

    // Stores indexed by End: tile i depends on stores with End == i.
    std::vector<std::vector<int>> stores_by_end(T + 1);
    for (int r = 0; r < D; ++r) {
        if (!ir.tensors[r].is_load) {
            int end = std::clamp<int>(ir.tensors[r].end, 0, T);
            stores_by_end[end].push_back(r);
        }
    }

    int next_tensor = 0;
    auto emit_tensor = [&](int r) {
        const IrTensor &t = ir.tensors[r];
        Instruction instr;
        instr.op = t.is_load ? Opcode::kLoad : Opcode::kStore;
        instr.id = static_cast<int>(prog.instructions.size());
        instr.label = t.label;
        instr.bytes = t.bytes;
        if (r > 0 && tensor_instr[r - 1] >= 0)
            instr.deps.push_back(tensor_instr[r - 1]);  // serial channel
        if (t.is_load) {
            if (t.start > 0 && tile_instr[t.start - 1] >= 0)
                instr.deps.push_back(tile_instr[t.start - 1]);
        } else {
            if (t.start < T && tile_instr[t.start] >= 0)
                instr.deps.push_back(tile_instr[t.start]);
        }
        tensor_instr[r] = instr.id;
        prog.instructions.push_back(std::move(instr));
    };

    for (int i = 0; i < T; ++i) {
        // Emit DRAM tensors whose trigger tile precedes tile i.
        while (next_tensor < D) {
            const IrTensor &t = ir.tensors[next_tensor];
            TilePos trigger = t.is_load ? t.start : t.start + 1;
            if (trigger > i) break;
            emit_tensor(next_tensor++);
        }

        Instruction instr;
        instr.op = Opcode::kCompute;
        instr.id = static_cast<int>(prog.instructions.size());
        instr.label = ir.tiles[i].layer + "#" +
                      std::to_string(ir.tiles[i].round);
        if (i > 0) instr.deps.push_back(tile_instr[i - 1]);
        for (int r : ir.tile_deps[i]) {
            if (tensor_instr[r] < 0) emit_tensor(r);  // safety: force emit
            // (re-read the id; emit_tensor may have grown the program)
        }
        // Re-create the instruction id after potential forced emissions.
        instr.id = static_cast<int>(prog.instructions.size());
        for (int r : ir.tile_deps[i]) instr.deps.push_back(tensor_instr[r]);
        for (int r : stores_by_end[i]) {
            if (tensor_instr[r] >= 0) instr.deps.push_back(tensor_instr[r]);
        }
        tile_instr[i] = instr.id;
        prog.instructions.push_back(std::move(instr));
    }
    while (next_tensor < D) emit_tensor(next_tensor++);
    return prog;
}

}  // namespace soma
