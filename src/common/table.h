/**
 * @file
 * Console table and CSV writers used by the benchmark harnesses to print
 * the rows of every reproduced paper table/figure.
 */
#ifndef SOMA_COMMON_TABLE_H
#define SOMA_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace soma {

/**
 * A simple column-aligned console table.
 *
 * Usage:
 *   Table t({"net", "speedup"});
 *   t.AddRow({"resnet50", "2.15"});
 *   t.Print(std::cout);
 */
class Table {
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void AddRow(std::vector<std::string> row);

    /** Render with padded columns. */
    void Print(std::ostream &os) const;

    /** Render as comma-separated values (header + rows). */
    void PrintCsv(std::ostream &os) const;

    std::size_t NumRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (fixed notation). */
std::string FormatDouble(double value, int precision = 3);

/** Format a byte count with a human-readable suffix (KB/MB/GB). */
std::string FormatBytes(double bytes);

}  // namespace soma

#endif  // SOMA_COMMON_TABLE_H
