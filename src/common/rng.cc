#include "common/rng.h"

#include <cassert>

namespace soma {

int
Rng::UniformInt(int lo, int hi)
{
    assert(lo <= hi);
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

std::int64_t
Rng::UniformInt64(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::UniformReal()
{
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

bool
Rng::Flip(double p)
{
    return UniformReal() < p;
}

int
Rng::WeightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return -1;
    double draw = UniformReal() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (draw < acc) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
}

}  // namespace soma
