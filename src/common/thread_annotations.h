/**
 * @file
 * Clang Thread Safety Analysis for the SoMa concurrency discipline.
 *
 * Two layers live here:
 *
 *  1. The SOMA_* attribute macros — thin wrappers over Clang's
 *     capability attributes (-Wthread-safety). They compile to nothing
 *     under other compilers (gcc builds the same code unchecked), so
 *     annotations cost nothing outside the clang CI job that builds
 *     with -Werror=thread-safety.
 *
 *  2. Capability-annotated synchronization wrappers — Mutex,
 *     SharedMutex, CondVar and their scoped lock guards — over
 *     std::mutex / std::shared_mutex / std::condition_variable.
 *     libstdc++'s std::lock_guard / std::unique_lock carry no
 *     annotations, so locking through them is invisible to the
 *     analysis; locking through MutexLock / SharedMutexLock /
 *     SharedReaderLock is tracked. `somalint`'s raw-mutex check
 *     enforces that everything under src/ tools/ bench/ uses these
 *     wrappers (this header is the one exemption), which is what makes
 *     the annotation coverage structural rather than best-effort.
 *
 * Conventions (see DESIGN.md "Static analysis & concurrency
 * discipline"):
 *  - every field a lock protects carries SOMA_GUARDED_BY(lock);
 *  - private helpers that expect the lock held are named *Locked and
 *    carry SOMA_REQUIRES(lock);
 *  - public entry points that take the lock carry SOMA_EXCLUDES(lock)
 *    so accidental re-entry is a compile error, not a deadlock;
 *  - condition waits go through CondVar, whose Wait/WaitFor require
 *    the mutex capability, and use explicit while-loops rather than
 *    predicate lambdas (lambda bodies are analyzed without the
 *    caller's lock set).
 */
#ifndef SOMA_COMMON_THREAD_ANNOTATIONS_H
#define SOMA_COMMON_THREAD_ANNOTATIONS_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define SOMA_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SOMA_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

#define SOMA_CAPABILITY(x) SOMA_THREAD_ANNOTATION__(capability(x))
#define SOMA_SCOPED_CAPABILITY SOMA_THREAD_ANNOTATION__(scoped_lockable)
#define SOMA_GUARDED_BY(x) SOMA_THREAD_ANNOTATION__(guarded_by(x))
#define SOMA_PT_GUARDED_BY(x) SOMA_THREAD_ANNOTATION__(pt_guarded_by(x))
#define SOMA_ACQUIRED_BEFORE(...) \
    SOMA_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define SOMA_ACQUIRED_AFTER(...) \
    SOMA_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define SOMA_REQUIRES(...) \
    SOMA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define SOMA_REQUIRES_SHARED(...) \
    SOMA_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define SOMA_ACQUIRE(...) \
    SOMA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define SOMA_ACQUIRE_SHARED(...) \
    SOMA_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define SOMA_RELEASE(...) \
    SOMA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define SOMA_RELEASE_SHARED(...) \
    SOMA_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define SOMA_RELEASE_GENERIC(...) \
    SOMA_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define SOMA_TRY_ACQUIRE(...) \
    SOMA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define SOMA_EXCLUDES(...) \
    SOMA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define SOMA_ASSERT_CAPABILITY(x) \
    SOMA_THREAD_ANNOTATION__(assert_capability(x))
#define SOMA_RETURN_CAPABILITY(x) \
    SOMA_THREAD_ANNOTATION__(lock_returned(x))
#define SOMA_NO_THREAD_SAFETY_ANALYSIS \
    SOMA_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace soma {

/** Capability-annotated exclusive mutex. Lock it through MutexLock (or
 *  lock()/unlock() in the rare manual case); fields it protects carry
 *  SOMA_GUARDED_BY(<this member>). */
class SOMA_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SOMA_ACQUIRE() { mu_.lock(); }
    void unlock() SOMA_RELEASE() { mu_.unlock(); }
    bool try_lock() SOMA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /** The wrapped std::mutex — for CondVar only. */
    std::mutex &native() { return mu_; }

  private:
    std::mutex mu_;
};

/** Capability-annotated reader/writer mutex (std::shared_mutex). */
class SOMA_CAPABILITY("shared_mutex") SharedMutex {
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() SOMA_ACQUIRE() { mu_.lock(); }
    void unlock() SOMA_RELEASE() { mu_.unlock(); }
    void lock_shared() SOMA_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() SOMA_RELEASE_SHARED() { mu_.unlock_shared(); }

  private:
    std::shared_mutex mu_;
};

/** Scoped exclusive lock on a Mutex; supports the mid-scope
 *  Unlock()/Lock() dance the coalescing paths need. */
class SOMA_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex &mu) SOMA_ACQUIRE(mu) : mu_(mu), owned_(true)
    {
        mu_.lock();
    }
    ~MutexLock() SOMA_RELEASE()
    {
        if (owned_) mu_.unlock();
    }
    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    void Unlock() SOMA_RELEASE()
    {
        mu_.unlock();
        owned_ = false;
    }
    void Lock() SOMA_ACQUIRE()
    {
        mu_.lock();
        owned_ = true;
    }

  private:
    friend class CondVar;
    Mutex &mu_;
    bool owned_;
};

/** Scoped exclusive (writer) lock on a SharedMutex. */
class SOMA_SCOPED_CAPABILITY SharedMutexLock {
  public:
    explicit SharedMutexLock(SharedMutex &mu) SOMA_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~SharedMutexLock() SOMA_RELEASE() { mu_.unlock(); }
    SharedMutexLock(const SharedMutexLock &) = delete;
    SharedMutexLock &operator=(const SharedMutexLock &) = delete;

  private:
    SharedMutex &mu_;
};

/** Scoped shared (reader) lock on a SharedMutex. */
class SOMA_SCOPED_CAPABILITY SharedReaderLock {
  public:
    explicit SharedReaderLock(SharedMutex &mu) SOMA_ACQUIRE_SHARED(mu)
        : mu_(mu)
    {
        mu_.lock_shared();
    }
    ~SharedReaderLock() SOMA_RELEASE_GENERIC() { mu_.unlock_shared(); }
    SharedReaderLock(const SharedReaderLock &) = delete;
    SharedReaderLock &operator=(const SharedReaderLock &) = delete;

  private:
    SharedMutex &mu_;
};

/**
 * Condition variable bound to Mutex. Waits require the capability, so
 * the analysis proves every wait happens with the lock held; waking
 * re-holds it. Spurious wakeups are possible as usual — always wait in
 * a while-loop over the guarded condition (an explicit loop, not a
 * predicate lambda: lambda bodies are analyzed without the caller's
 * lock set and would warn on reading guarded fields).
 */
class CondVar {
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void Wait(Mutex &mu) SOMA_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        cv_.wait(lk);
        lk.release();
    }

    template <typename Rep, typename Period>
    std::cv_status WaitFor(Mutex &mu,
                           const std::chrono::duration<Rep, Period> &d)
        SOMA_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        std::cv_status status = cv_.wait_for(lk, d);
        lk.release();
        return status;
    }

    void NotifyOne() noexcept { cv_.notify_one(); }
    void NotifyAll() noexcept { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

}  // namespace soma

#endif  // SOMA_COMMON_THREAD_ANNOTATIONS_H
