/**
 * @file
 * Minimal dependency-free JSON value type with a recursive-descent
 * parser and a writer, used by the scheduler API (ScheduleRequest /
 * ScheduleResult serialization), the somac CLI and the benches'
 * --json metric sink.
 *
 * Fidelity guarantees needed by the API layer:
 *  - doubles are emitted with %.17g, so a Dump/Parse round trip is
 *    bit-exact (the acceptance bar for somac vs in-process results);
 *  - unsigned 64-bit integers (seeds) are kept exactly: values set via
 *    Json::U64 or parsed from non-negative integer literals carry the
 *    exact std::uint64_t alongside the double view;
 *  - object member order is preserved (stable, diffable output).
 *
 * Non-finite doubles have no JSON representation and are emitted as
 * null (EvalReport::latency is +inf for invalid schemes).
 */
#ifndef SOMA_COMMON_JSON_H
#define SOMA_COMMON_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace soma {

class Json {
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Json() = default;

    static Json Null() { return Json(); }
    static Json Bool(bool b);
    static Json Number(double d);
    static Json Int(std::int64_t i);
    static Json U64(std::uint64_t u);
    static Json Str(std::string s);
    static Json Array();
    static Json Object();

    Type type() const { return type_; }
    bool IsNull() const { return type_ == Type::kNull; }
    bool IsBool() const { return type_ == Type::kBool; }
    bool IsNumber() const { return type_ == Type::kNumber; }
    bool IsString() const { return type_ == Type::kString; }
    bool IsArray() const { return type_ == Type::kArray; }
    bool IsObject() const { return type_ == Type::kObject; }

    bool AsBool(bool dflt = false) const;
    double AsDouble(double dflt = 0.0) const;
    std::int64_t AsInt(std::int64_t dflt = 0) const;
    /** Exact for values set via U64 / parsed integer literals. */
    std::uint64_t AsU64(std::uint64_t dflt = 0) const;
    const std::string &AsString() const;  ///< empty unless a string

    // ----- arrays -----
    std::size_t size() const { return arr_.size(); }
    const Json &at(std::size_t i) const { return arr_[i]; }
    const std::vector<Json> &array_items() const { return arr_; }
    /** Appends to an array (converts a null value into an array). */
    Json &Append(Json v);

    // ----- objects -----
    /** Member lookup; nullptr when absent or not an object. */
    const Json *Find(const std::string &key) const;
    /** Sets (or replaces) a member; converts a null value into an
     *  object. Returns *this for chaining. */
    Json &Set(const std::string &key, Json v);
    /** Removes a member; true if it existed. */
    bool Erase(const std::string &key);
    const std::vector<std::pair<std::string, Json>> &items() const
    {
        return obj_;
    }

    /** Serialize. indent < 0: compact; otherwise pretty-printed with
     *  @p indent spaces per level. */
    std::string Dump(int indent = -1) const;

    /**
     * Canonical serialization: compact, with object members emitted in
     * bytewise-sorted key order at every level (duplicate-free by
     * construction — Set replaces). Two Json values that differ only in
     * member insertion order dump to identical canonical text, which is
     * what request fingerprinting (service layer) hashes.
     */
    std::string CanonicalDump() const;

    /**
     * Parse @p text into @p out. On failure returns false and sets
     * @p err to a message with the byte offset. Trailing garbage after
     * the top-level value is an error.
     */
    static bool Parse(const std::string &text, Json *out, std::string *err);

  private:
    void DumpTo(std::string *out, int indent, int depth,
                bool sorted = false) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    std::uint64_t u64_ = 0;   ///< exact payload when exact_u64_
    bool exact_u64_ = false;  ///< num_ mirrors u64_ (possibly rounded)
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace soma

#endif  // SOMA_COMMON_JSON_H
