#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <iomanip>

namespace soma {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void
Table::AddRow(std::vector<std::string> row)
{
    assert(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void
Table::Print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };
    print_row(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << "\n";
    for (const auto &row : rows_) print_row(row);
}

void
Table::PrintCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ",";
            os << row[c];
        }
        os << "\n";
    };
    print_row(header_);
    for (const auto &row : rows_) print_row(row);
}

std::string
FormatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
FormatBytes(double bytes)
{
    const char *suffix = "B";
    double v = bytes;
    if (v >= 1024.0 * 1024.0 * 1024.0) {
        v /= 1024.0 * 1024.0 * 1024.0;
        suffix = "GB";
    } else if (v >= 1024.0 * 1024.0) {
        v /= 1024.0 * 1024.0;
        suffix = "MB";
    } else if (v >= 1024.0) {
        v /= 1024.0;
        suffix = "KB";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix);
    return buf;
}

}  // namespace soma
