/**
 * @file
 * MonotonicArena: a bump allocator for per-candidate evaluation
 * scratch.
 *
 * The SA inner loop evaluates one candidate, throws its scratch away,
 * and evaluates the next — millions of times per search. Holding one
 * arena per EvalContext and calling Reset() at the top of each
 * evaluation makes every piece of transient scratch (difference
 * arrays, legality-check maps, first-diff scan state) a pointer bump:
 * no per-candidate heap traffic, no destructor walks, and the blocks
 * stay warm in cache because the same few kilobytes are reused for
 * every candidate.
 *
 * Only trivially-destructible element types are allowed (enforced at
 * compile time): Reset() rewinds the bump pointer without running any
 * destructors. Allocations are NOT zero-initialized — callers fill
 * them, exactly as they would a freshly-assigned vector.
 */
#ifndef SOMA_COMMON_ARENA_H
#define SOMA_COMMON_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace soma {

class MonotonicArena {
  public:
    /** First block size; subsequent blocks double. */
    static constexpr std::size_t kInitialBlockBytes = 1 << 14;

    /** Rewind to empty. Keeps every block for reuse, so a warmed-up
     *  arena never touches the heap again. */
    void Reset()
    {
        block_ = 0;
        offset_ = 0;
    }

    /** @p n elements of trivially-destructible T, uninitialized. */
    template <typename T>
    T *AllocArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible<T>::value,
                      "arena memory is reclaimed without destructors");
        static_assert(alignof(T) <= alignof(std::max_align_t),
                      "over-aligned types need their own allocation");
        return static_cast<T *>(AllocBytes(n * sizeof(T), alignof(T)));
    }

    std::size_t bytes_reserved() const
    {
        std::size_t total = 0;
        for (const Block &b : blocks_) total += b.size;
        return total;
    }

  private:
    struct Block {
        std::unique_ptr<unsigned char[]> data;
        std::size_t size = 0;
    };

    void *AllocBytes(std::size_t bytes, std::size_t align)
    {
        if (bytes == 0) bytes = 1;
        while (true) {
            if (block_ < blocks_.size()) {
                Block &b = blocks_[block_];
                std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
                if (aligned + bytes <= b.size) {
                    offset_ = aligned + bytes;
                    return b.data.get() + aligned;
                }
                // Block exhausted: move on (its tail is wasted until
                // the next Reset, which is fine for bump scratch).
                ++block_;
                offset_ = 0;
                continue;
            }
            std::size_t size = blocks_.empty()
                                   ? kInitialBlockBytes
                                   : blocks_.back().size * 2;
            while (size < bytes + align) size *= 2;
            Block b;
            b.data.reset(new unsigned char[size]);
            b.size = size;
            blocks_.push_back(std::move(b));
        }
    }

    std::vector<Block> blocks_;
    std::size_t block_ = 0;   ///< block the bump pointer lives in
    std::size_t offset_ = 0;  ///< bump offset within that block
};

}  // namespace soma

#endif  // SOMA_COMMON_ARENA_H
