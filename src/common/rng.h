/**
 * @file
 * Deterministic random number generation used by the search engines.
 *
 * All stochastic components of SoMa (simulated annealing, RandWire graph
 * generation) draw from this wrapper so that experiments are reproducible
 * from a single seed, mirroring the per-configuration seeds of the
 * paper's artifact (`args.txt`).
 */
#ifndef SOMA_COMMON_RNG_H
#define SOMA_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace soma {

/**
 * A small deterministic RNG facade over std::mt19937_64.
 */
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x5051cafeULL) : engine_(seed) {}

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    int UniformInt(int lo, int hi);

    /** Uniform 64-bit integer in [lo, hi] (inclusive). */
    std::int64_t UniformInt64(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [0, 1). */
    double UniformReal();

    /** Bernoulli draw with probability p of returning true. */
    bool Flip(double p = 0.5);

    /**
     * Sample an index in [0, weights.size()) with probability proportional
     * to the (non-negative) weights. Returns -1 when all weights are zero
     * or the vector is empty.
     */
    int WeightedIndex(const std::vector<double> &weights);

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace soma

#endif  // SOMA_COMMON_RNG_H
