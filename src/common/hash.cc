#include "common/hash.h"

#include <cstdio>

namespace soma {

std::string
HexU64(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

bool
ParseHexU64(const std::string &text, std::uint64_t *out)
{
    if (text.size() != 16) return false;
    std::uint64_t v = 0;
    for (char c : text) {
        v <<= 4;
        if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else return false;
    }
    *out = v;
    return true;
}

}  // namespace soma
