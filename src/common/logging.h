/**
 * @file
 * Minimal leveled logging for the SoMa library.
 *
 * The framework is a library first; logging defaults to warnings only so
 * that benches and tests stay quiet. Verbosity can be raised globally
 * (e.g. by examples) to trace search progress.
 */
#ifndef SOMA_COMMON_LOGGING_H
#define SOMA_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace soma {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Set the global log threshold; messages below it are dropped. */
void SetLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel GetLogLevel();

/** Emit a message at the given level (thread safe). */
void LogMessage(LogLevel level, const std::string &msg);

namespace detail {

class LogLine {
  public:
    explicit LogLine(LogLevel level) : level_(level) {}
    ~LogLine() { LogMessage(level_, stream_.str()); }
    template <typename T>
    LogLine &operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

#define SOMA_LOG(level) \
    if (static_cast<int>(level) < static_cast<int>(::soma::GetLogLevel())) \
        ; \
    else \
        ::soma::detail::LogLine(level)

#define SOMA_DEBUG SOMA_LOG(::soma::LogLevel::kDebug)
#define SOMA_INFO SOMA_LOG(::soma::LogLevel::kInfo)
#define SOMA_WARN SOMA_LOG(::soma::LogLevel::kWarn)
#define SOMA_ERROR SOMA_LOG(::soma::LogLevel::kError)

}  // namespace soma

#endif  // SOMA_COMMON_LOGGING_H
