/**
 * @file
 * Fundamental scalar type aliases shared across the SoMa library.
 */
#ifndef SOMA_COMMON_TYPES_H
#define SOMA_COMMON_TYPES_H

#include <cstdint>

namespace soma {

/** Byte counts (tensor sizes, buffer budgets). */
using Bytes = std::int64_t;

/** Operation counts (MAC ops are counted as 2 ops, per marketing TOPS). */
using Ops = std::int64_t;

/** Cycle counts at the accelerator core clock. */
using Cycles = std::int64_t;

/** Identifier of a layer within a workload graph. */
using LayerId = std::int32_t;

/** Position of a compute tile in the serialized tile sequence. */
using TilePos = std::int32_t;

/** Sentinel for "no layer". */
inline constexpr LayerId kNoLayer = -1;

/** Sentinel tile position used for "before the first tile". */
inline constexpr TilePos kBeforeFirstTile = 0;

}  // namespace soma

#endif  // SOMA_COMMON_TYPES_H
