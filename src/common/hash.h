/**
 * @file
 * Small non-cryptographic hashing helpers. The service layer keys its
 * caches on Fnv1a64 over canonical request JSON; FNV-1a is stable
 * across platforms and process restarts (unlike std::hash), which the
 * on-disk result cache depends on.
 */
#ifndef SOMA_COMMON_HASH_H
#define SOMA_COMMON_HASH_H

#include <cstdint>
#include <string>

namespace soma {

/** 64-bit FNV-1a over @p bytes. */
inline std::uint64_t
Fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;  // FNV prime
    }
    return h;
}

/** Fixed-width lower-case hex spelling (the cache-file / CSV form). */
std::string HexU64(std::uint64_t value);

/** Inverse of HexU64; false unless @p text is exactly 16 hex digits. */
bool ParseHexU64(const std::string &text, std::uint64_t *out);

}  // namespace soma

#endif  // SOMA_COMMON_HASH_H
