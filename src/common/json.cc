#include "common/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace soma {

Json
Json::Bool(bool b)
{
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
}

Json
Json::Number(double d)
{
    Json j;
    j.type_ = Type::kNumber;
    j.num_ = d;
    return j;
}

Json
Json::Int(std::int64_t i)
{
    Json j;
    j.type_ = Type::kNumber;
    j.num_ = static_cast<double>(i);
    if (i >= 0) {
        j.u64_ = static_cast<std::uint64_t>(i);
        j.exact_u64_ = true;
    }
    return j;
}

Json
Json::U64(std::uint64_t u)
{
    Json j;
    j.type_ = Type::kNumber;
    j.num_ = static_cast<double>(u);
    j.u64_ = u;
    j.exact_u64_ = true;
    return j;
}

Json
Json::Str(std::string s)
{
    Json j;
    j.type_ = Type::kString;
    j.str_ = std::move(s);
    return j;
}

Json
Json::Array()
{
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json
Json::Object()
{
    Json j;
    j.type_ = Type::kObject;
    return j;
}

bool
Json::AsBool(bool dflt) const
{
    return type_ == Type::kBool ? bool_ : dflt;
}

double
Json::AsDouble(double dflt) const
{
    return type_ == Type::kNumber ? num_ : dflt;
}

std::int64_t
Json::AsInt(std::int64_t dflt) const
{
    if (type_ != Type::kNumber) return dflt;
    if (exact_u64_) {
        return u64_ <= static_cast<std::uint64_t>(INT64_MAX)
                   ? static_cast<std::int64_t>(u64_)
                   : INT64_MAX;  // saturate (the cast would be UB)
    }
    if (std::isnan(num_)) return dflt;
    // Saturate outside the representable range; 2^63 itself is the
    // first double the cast cannot express.
    if (num_ >= 9223372036854775808.0) return INT64_MAX;
    if (num_ <= -9223372036854775808.0) return INT64_MIN;
    return static_cast<std::int64_t>(num_);
}

std::uint64_t
Json::AsU64(std::uint64_t dflt) const
{
    if (type_ != Type::kNumber) return dflt;
    if (exact_u64_) return u64_;
    return num_ < 0 ? dflt : static_cast<std::uint64_t>(num_);
}

const std::string &
Json::AsString() const
{
    static const std::string kEmpty;
    return type_ == Type::kString ? str_ : kEmpty;
}

Json &
Json::Append(Json v)
{
    if (type_ == Type::kNull) type_ = Type::kArray;
    arr_.push_back(std::move(v));
    return *this;
}

const Json *
Json::Find(const std::string &key) const
{
    if (type_ != Type::kObject) return nullptr;
    for (const auto &kv : obj_)
        if (kv.first == key) return &kv.second;
    return nullptr;
}

Json &
Json::Set(const std::string &key, Json v)
{
    if (type_ == Type::kNull) type_ = Type::kObject;
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

bool
Json::Erase(const std::string &key)
{
    for (auto it = obj_.begin(); it != obj_.end(); ++it) {
        if (it->first == key) {
            obj_.erase(it);
            return true;
        }
    }
    return false;
}

namespace {

void
EscapeTo(const std::string &s, std::string *out)
{
    out->push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': *out += "\\\""; break;
          case '\\': *out += "\\\\"; break;
          case '\n': *out += "\\n"; break;
          case '\r': *out += "\\r"; break;
          case '\t': *out += "\\t"; break;
          case '\b': *out += "\\b"; break;
          case '\f': *out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                *out += buf;
            } else {
                out->push_back(c);
            }
        }
    }
    out->push_back('"');
}

void
NumberTo(double d, std::uint64_t u64, bool exact_u64, std::string *out)
{
    if (exact_u64) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(u64));
        *out += buf;
        return;
    }
    if (!std::isfinite(d)) {
        *out += "null";  // JSON has no inf/nan
        return;
    }
    // Integral doubles inside the exact range print as integers; the
    // rest with 17 significant digits, which round-trips IEEE doubles
    // bit-exactly through strtod.
    if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(d));
        *out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    *out += buf;
}

void
Indent(std::string *out, int indent, int depth)
{
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void
Json::DumpTo(std::string *out, int indent, int depth, bool sorted) const
{
    switch (type_) {
      case Type::kNull: *out += "null"; break;
      case Type::kBool: *out += bool_ ? "true" : "false"; break;
      case Type::kNumber: NumberTo(num_, u64_, exact_u64_, out); break;
      case Type::kString: EscapeTo(str_, out); break;
      case Type::kArray: {
        if (arr_.empty()) {
            *out += "[]";
            break;
        }
        out->push_back('[');
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i) out->push_back(',');
            if (indent >= 0) Indent(out, indent, depth + 1);
            arr_[i].DumpTo(out, indent, depth + 1, sorted);
        }
        if (indent >= 0) Indent(out, indent, depth);
        out->push_back(']');
        break;
      }
      case Type::kObject: {
        if (obj_.empty()) {
            *out += "{}";
            break;
        }
        std::vector<const std::pair<std::string, Json> *> members;
        members.reserve(obj_.size());
        for (const auto &kv : obj_) members.push_back(&kv);
        if (sorted) {
            std::sort(members.begin(), members.end(),
                      [](const auto *a, const auto *b) {
                          return a->first < b->first;
                      });
        }
        out->push_back('{');
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (i) out->push_back(',');
            if (indent >= 0) Indent(out, indent, depth + 1);
            EscapeTo(members[i]->first, out);
            out->push_back(':');
            if (indent >= 0) out->push_back(' ');
            members[i]->second.DumpTo(out, indent, depth + 1, sorted);
        }
        if (indent >= 0) Indent(out, indent, depth);
        out->push_back('}');
        break;
      }
    }
}

std::string
Json::Dump(int indent) const
{
    std::string out;
    DumpTo(&out, indent, 0);
    return out;
}

std::string
Json::CanonicalDump() const
{
    std::string out;
    DumpTo(&out, /*indent=*/-1, 0, /*sorted=*/true);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a byte range. */
class Parser {
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool Run(Json *out)
    {
        SkipWs();
        if (!ParseValue(out, 0)) return false;
        SkipWs();
        if (pos_ != text_.size())
            return Fail("trailing characters after JSON value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 200;

    bool Fail(const std::string &what)
    {
        if (err_ && err_->empty())
            *err_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    void SkipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool Literal(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n]) ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return Fail("invalid literal");
        pos_ += n;
        return true;
    }

    bool ParseString(std::string *out)
    {
        if (text_[pos_] != '"') return Fail("expected string");
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) break;
            char e = text_[pos_++];
            switch (e) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return Fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9') cp |= h - '0';
                    else if (h >= 'a' && h <= 'f') cp |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F') cp |= h - 'A' + 10;
                    else return Fail("invalid \\u escape");
                }
                // UTF-8 encode (surrogate pairs are passed through as
                // two 3-byte sequences; schema strings are ASCII).
                if (cp < 0x80) {
                    out->push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
                    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                } else {
                    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
                    out->push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                }
                break;
              }
              default: return Fail("invalid escape");
            }
        }
        return Fail("unterminated string");
    }

    bool ParseNumber(Json *out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") return Fail("invalid number");
        errno = 0;
        if (integral && token[0] != '-') {
            char *end = nullptr;
            unsigned long long u = std::strtoull(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0') {
                *out = Json::U64(u);
                return true;
            }
            errno = 0;  // overflow: fall through to double
        }
        char *end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0') return Fail("invalid number");
        *out = Json::Number(d);
        return true;
    }

    bool ParseValue(Json *out, int depth)
    {
        if (depth > kMaxDepth) return Fail("nesting too deep");
        if (pos_ >= text_.size()) return Fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case 'n':
            if (!Literal("null")) return false;
            *out = Json::Null();
            return true;
          case 't':
            if (!Literal("true")) return false;
            *out = Json::Bool(true);
            return true;
          case 'f':
            if (!Literal("false")) return false;
            *out = Json::Bool(false);
            return true;
          case '"': {
            std::string s;
            if (!ParseString(&s)) return false;
            *out = Json::Str(std::move(s));
            return true;
          }
          case '[': {
            ++pos_;
            *out = Json::Array();
            SkipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                Json elem;
                SkipWs();
                if (!ParseValue(&elem, depth + 1)) return false;
                out->Append(std::move(elem));
                SkipWs();
                if (pos_ >= text_.size())
                    return Fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return Fail("expected ',' or ']'");
            }
          }
          case '{': {
            ++pos_;
            *out = Json::Object();
            SkipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                SkipWs();
                if (pos_ >= text_.size() || text_[pos_] != '"')
                    return Fail("expected object key");
                std::string key;
                if (!ParseString(&key)) return false;
                SkipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return Fail("expected ':'");
                ++pos_;
                SkipWs();
                Json val;
                if (!ParseValue(&val, depth + 1)) return false;
                out->Set(key, std::move(val));
                SkipWs();
                if (pos_ >= text_.size())
                    return Fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return Fail("expected ',' or '}'");
            }
          }
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return ParseNumber(out);
            return Fail("unexpected character");
        }
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

}  // namespace

bool
Json::Parse(const std::string &text, Json *out, std::string *err)
{
    if (err) err->clear();
    Parser p(text, err);
    return p.Run(out);
}

}  // namespace soma
