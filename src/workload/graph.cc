#include "workload/graph.h"

#include <cassert>
#include <cstdlib>

#include "common/logging.h"

namespace soma {

LayerId
Graph::AddLayer(Layer layer)
{
    LayerId id = static_cast<LayerId>(layers_.size());
    for (const InputRef &in : layer.inputs()) {
        if (in.producer != kNoLayer) {
            assert(in.producer >= 0 && in.producer < id &&
                   "graph layers must be appended in topological order");
        }
    }
    layers_.push_back(std::move(layer));
    InvalidateCaches();
    return id;
}

void
Graph::InvalidateCaches()
{
    consumers_valid_ = false;
}

const std::vector<Edge> &
Graph::Consumers(LayerId id) const
{
    if (!consumers_valid_) {
        consumers_.assign(layers_.size(), {});
        for (LayerId c = 0; c < NumLayers(); ++c) {
            const auto &ins = layers_[c].inputs();
            for (int k = 0; k < static_cast<int>(ins.size()); ++k) {
                if (ins[k].producer != kNoLayer) {
                    consumers_[ins[k].producer].push_back(
                        Edge{ins[k].producer, c, k});
                }
            }
        }
        consumers_valid_ = true;
    }
    return consumers_[id];
}

std::vector<Edge>
Graph::AllEdges() const
{
    std::vector<Edge> edges;
    for (LayerId c = 0; c < NumLayers(); ++c) {
        const auto &ins = layers_[c].inputs();
        for (int k = 0; k < static_cast<int>(ins.size()); ++k) {
            if (ins[k].producer != kNoLayer)
                edges.push_back(Edge{ins[k].producer, c, k});
        }
    }
    return edges;
}

bool
Graph::IsValidOrder(const std::vector<LayerId> &order) const
{
    if (static_cast<int>(order.size()) != NumLayers()) return false;
    std::vector<int> position(layers_.size(), -1);
    for (int pos = 0; pos < static_cast<int>(order.size()); ++pos) {
        LayerId id = order[pos];
        if (id < 0 || id >= NumLayers() || position[id] >= 0) return false;
        position[id] = pos;
    }
    for (LayerId c = 0; c < NumLayers(); ++c) {
        for (const InputRef &in : layers_[c].inputs()) {
            if (in.producer != kNoLayer &&
                position[in.producer] > position[c]) {
                return false;
            }
        }
    }
    return true;
}

std::vector<LayerId>
Graph::TopoOrder() const
{
    std::vector<LayerId> order(layers_.size());
    for (LayerId i = 0; i < NumLayers(); ++i) order[i] = i;
    return order;
}

void
Graph::Validate() const
{
    for (LayerId id = 0; id < NumLayers(); ++id) {
        const Layer &l = layers_[id];
        if (l.outChannels() <= 0 || l.outHeight() <= 0 || l.outWidth() <= 0) {
            SOMA_ERROR << "layer " << l.name() << " has empty output shape";
            std::abort();
        }
        for (const InputRef &in : l.inputs()) {
            if (in.producer == kNoLayer) {
                if (in.ext.channels <= 0 || in.ext.height <= 0 ||
                    in.ext.width <= 0) {
                    SOMA_ERROR << "layer " << l.name()
                               << " has an external input with empty shape";
                    std::abort();
                }
            } else if (in.producer >= id) {
                SOMA_ERROR << "layer " << l.name() << " breaks topo order";
                std::abort();
            }
        }
    }
}

Ops
Graph::TotalOps() const
{
    Ops total = 0;
    for (const Layer &l : layers_)
        total += l.OpsForRegion(l.FullRegion(batch_));
    return total;
}

Ops
Graph::TotalMatrixOps() const
{
    Ops total = 0;
    for (const Layer &l : layers_) {
        if (IsMatrixKind(l.kind()))
            total += l.OpsForRegion(l.FullRegion(batch_));
    }
    return total;
}

Bytes
Graph::TotalWeightBytes() const
{
    Bytes total = 0;
    for (const Layer &l : layers_) total += l.weightBytes();
    return total;
}

Bytes
Graph::TotalFmapBytes() const
{
    Bytes total = 0;
    for (const Layer &l : layers_)
        total += l.PerSampleOutputBytes() * batch_;
    return total;
}

}  // namespace soma
