#include "workload/layer.h"

#include <algorithm>
#include <cassert>

namespace soma {

bool
IsMatrixKind(LayerKind kind)
{
    switch (kind) {
      case LayerKind::kConv:
      case LayerKind::kDepthwise:
      case LayerKind::kGemm:
      case LayerKind::kMatmul:
        return true;
      default:
        return false;
    }
}

const char *
LayerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::kConv: return "conv";
      case LayerKind::kDepthwise: return "dwconv";
      case LayerKind::kPool: return "pool";
      case LayerKind::kGlobalPool: return "gpool";
      case LayerKind::kGemm: return "gemm";
      case LayerKind::kMatmul: return "matmul";
      case LayerKind::kEltwise: return "eltwise";
      case LayerKind::kActivation: return "act";
      case LayerKind::kLayerNorm: return "layernorm";
      case LayerKind::kConcat: return "concat";
    }
    return "?";
}

bool
LayerKindFromName(const std::string &name, LayerKind *kind)
{
    static const struct { const char *name; LayerKind kind; } kTable[] = {
        {"conv", LayerKind::kConv},
        {"dwconv", LayerKind::kDepthwise},
        {"pool", LayerKind::kPool},
        {"gpool", LayerKind::kGlobalPool},
        {"gemm", LayerKind::kGemm},
        {"matmul", LayerKind::kMatmul},
        {"eltwise", LayerKind::kEltwise},
        {"act", LayerKind::kActivation},
        {"layernorm", LayerKind::kLayerNorm},
        {"concat", LayerKind::kConcat},
    };
    for (const auto &entry : kTable) {
        if (name == entry.name) {
            *kind = entry.kind;
            return true;
        }
    }
    return false;
}

Layer::Layer(std::string name, LayerKind kind, int out_c, int out_h,
             int out_w)
    : name_(std::move(name)), kind_(kind), out_c_(out_c), out_h_(out_h),
      out_w_(out_w)
{
}

Region
Layer::RequiredInputRegion(const InputRef &input, const Region &out_region,
                           int prod_h, int prod_w) const
{
    if (out_region.Empty()) return Region{};
    Region in;
    in.b0 = out_region.b0;
    in.b1 = out_region.b1;
    switch (input.pattern) {
      case AccessPattern::kRowAligned:
        in.r0 = std::min(out_region.r0, prod_h);
        in.r1 = std::min(out_region.r1, prod_h);
        in.c0 = std::min(out_region.c0, prod_w);
        in.c1 = std::min(out_region.c1, prod_w);
        break;
      case AccessPattern::kWindow: {
        const WindowParams &w = window_;
        in.r0 = std::max(0, out_region.r0 * w.stride_h - w.pad_h);
        in.r1 = std::min(prod_h, (out_region.r1 - 1) * w.stride_h - w.pad_h +
                                     w.kernel_h);
        in.c0 = std::max(0, out_region.c0 * w.stride_w - w.pad_w);
        in.c1 = std::min(prod_w, (out_region.c1 - 1) * w.stride_w - w.pad_w +
                                     w.kernel_w);
        // Degenerate clipping (padding-only windows) must still yield a
        // non-empty region when the output region is non-empty.
        in.r1 = std::max(in.r1, in.r0 + 1);
        in.c1 = std::max(in.c1, in.c0 + 1);
        in.r1 = std::min(in.r1, prod_h);
        in.c1 = std::min(in.c1, prod_w);
        in.r0 = std::min(in.r0, in.r1 - 1);
        in.c0 = std::min(in.c0, in.c1 - 1);
        break;
      }
      case AccessPattern::kFull:
        in.r0 = 0;
        in.r1 = prod_h;
        in.c0 = 0;
        in.c1 = prod_w;
        break;
    }
    return in;
}

Bytes
Layer::InputBytes(const InputRef &input, const Region &out_region, int prod_c,
                  int prod_h, int prod_w) const
{
    Region in = RequiredInputRegion(input, out_region, prod_h, prod_w);
    return in.Sites() * prod_c * elem_bytes_;
}

}  // namespace soma
