/**
 * @file
 * Fluent construction helper shared by the model-zoo builders. Computes
 * output shapes, per-element op counts and weight footprints so the
 * individual model files read like network definitions.
 */
#ifndef SOMA_WORKLOAD_GRAPH_BUILDER_H
#define SOMA_WORKLOAD_GRAPH_BUILDER_H

#include <cassert>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "workload/graph.h"

namespace soma {

/**
 * Incrementally builds a Graph. All "from" parameters are LayerIds of
 * previously added layers; kNoLayer plus an ExtShape denotes a network
 * input residing in DRAM.
 */
class GraphBuilder {
  public:
    GraphBuilder(std::string name, int batch) : graph_(std::move(name),
                                                       batch) {}

    /** Finalize: validates and returns the graph. */
    Graph Take()
    {
        graph_.Validate();
        return std::move(graph_);
    }

    Graph &graph() { return graph_; }

    int C(LayerId id) const { return graph_.layer(id).outChannels(); }
    int H(LayerId id) const { return graph_.layer(id).outHeight(); }
    int W(LayerId id) const { return graph_.layer(id).outWidth(); }

    /** Conv reading the network input tensor @p in from DRAM. */
    LayerId InputConv(const std::string &name, const ExtShape &in, int out_c,
                      int kernel, int stride, int pad);

    /** Conv consuming another layer. @p groups models grouped/depthwise. */
    LayerId Conv(const std::string &name, LayerId from, int out_c, int kernel,
                 int stride, int pad, int groups = 1);

    /** Windowed max/avg pooling. */
    LayerId Pool(const std::string &name, LayerId from, int kernel,
                 int stride, int pad);

    /** Global average pooling to 1x1. */
    LayerId GlobalPool(const std::string &name, LayerId from);

    /** Fully connected over the flattened producer (needs full extent). */
    LayerId FcFull(const std::string &name, LayerId from, int out_features);

    /** Token-wise GEMM with static weights (rows preserved). */
    LayerId GemmRows(const std::string &name, LayerId from, int out_features);

    /**
     * GEMM between two activations (attention). Operand @p a is
     * row-aligned (rows preserved), operand @p b is needed in full.
     * @p k_dim is the contraction length, @p out_channels the per-row
     * output width. Additional full-pattern external operands (KV cache)
     * can be attached with AddExternalInput().
     */
    LayerId Matmul(const std::string &name, LayerId a, LayerId b, int k_dim,
                   int out_channels);

    /** N-ary elementwise op (residual adds etc.). */
    LayerId Eltwise(const std::string &name,
                    const std::vector<LayerId> &from);

    /** Pointwise activation; @p ops_per_elem approximates its cost. */
    LayerId Act(const std::string &name, LayerId from, Ops ops_per_elem = 1);

    /** LayerNorm over channels per token. */
    LayerId LayerNormOp(const std::string &name, LayerId from);

    /** Channel concatenation. */
    LayerId Concat(const std::string &name,
                   const std::vector<LayerId> &from);

    /** Attach an extra external (DRAM-resident) input to a layer. */
    void AddExternalInput(LayerId id, const ExtShape &shape,
                          AccessPattern pattern = AccessPattern::kFull);

    /** Mark a layer's ofmap as a network output (stored to DRAM). */
    void MarkOutput(LayerId id) { graph_.layer(id).setNetworkOutput(true); }

  private:
    LayerId Add(Layer layer) { return graph_.AddLayer(std::move(layer)); }

    Graph graph_;
};

}  // namespace soma

#endif  // SOMA_WORKLOAD_GRAPH_BUILDER_H
