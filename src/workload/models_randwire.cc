/**
 * @file
 * RandWire builder (Xie et al., ICCV'19), small regime.
 *
 * Three randomly wired stages. Within a stage, a Watts-Strogatz-style
 * random DAG is generated: nodes are placed on a ring with k=4 forward
 * neighbours, and each edge is rewired to a random earlier node with
 * probability p=0.75. Node operation = weighted input aggregation
 * (eltwise) followed by a 3x3 separable-ish conv (we use a dense 3x3,
 * matching the compute profile the paper's workload table implies).
 * Deterministic for a fixed seed.
 */
#include "workload/models.h"

#include <algorithm>

#include "common/rng.h"
#include "workload/graph_builder.h"

namespace soma {

namespace {

struct StageSpec {
    int channels;
    int height;
};

/** Generate the in-edges of each node in one random stage. */
std::vector<std::vector<int>>
RandomWiring(int nodes, Rng &rng)
{
    const int k = 4;
    const double p = 0.75;
    std::vector<std::vector<int>> preds(nodes);
    for (int v = 1; v < nodes; ++v) {
        int lo = std::max(0, v - k / 2);
        for (int u = lo; u < v; ++u) {
            int src = u;
            if (rng.Flip(p)) src = rng.UniformInt(0, v - 1);
            preds[v].push_back(src);
        }
        std::sort(preds[v].begin(), preds[v].end());
        preds[v].erase(std::unique(preds[v].begin(), preds[v].end()),
                       preds[v].end());
        if (preds[v].empty()) preds[v].push_back(v - 1);
    }
    return preds;
}

}  // namespace

Graph
BuildRandWire(int batch, std::uint64_t seed, int nodes_per_stage)
{
    Rng rng(seed);
    GraphBuilder b("randwire", batch);
    ExtShape image{3, 224, 224};

    LayerId x = b.InputConv("stem.conv1", image, 32, 3, 2, 1);   // 112
    x = b.Conv("stem.conv2", x, 64, 3, 2, 1);                    // 56

    const StageSpec stages[3] = {{64, 56}, {128, 28}, {256, 14}};
    for (int s = 0; s < 3; ++s) {
        std::string sp = "s" + std::to_string(s + 1);
        // Stage entry: stride-2 conv into the stage channel width
        // (stage 1 keeps 56x56).
        int stride = (s == 0) ? 1 : 2;
        LayerId entry = b.Conv(sp + ".entry", x, stages[s].channels, 3,
                               stride, 1);
        auto preds = RandomWiring(nodes_per_stage, rng);
        std::vector<LayerId> node_out(nodes_per_stage, kNoLayer);
        for (int v = 0; v < nodes_per_stage; ++v) {
            std::string np = sp + ".n" + std::to_string(v);
            LayerId agg;
            if (v == 0) {
                agg = entry;
            } else if (preds[v].size() == 1) {
                agg = node_out[preds[v][0]];
            } else {
                std::vector<LayerId> ins;
                for (int u : preds[v]) ins.push_back(node_out[u]);
                agg = b.Eltwise(np + ".agg", ins);
            }
            node_out[v] = b.Conv(np + ".conv", agg, stages[s].channels, 3, 1,
                                 1);
        }
        // Stage exit aggregates every node with out-degree 0.
        std::vector<bool> consumed(nodes_per_stage, false);
        for (int v = 0; v < nodes_per_stage; ++v)
            for (int u : preds[v]) consumed[u] = true;
        std::vector<LayerId> sinks;
        for (int v = 0; v < nodes_per_stage; ++v)
            if (!consumed[v]) sinks.push_back(node_out[v]);
        if (sinks.size() == 1) {
            x = sinks[0];
        } else {
            x = b.Eltwise(sp + ".exit", sinks);
        }
    }

    LayerId head = b.Conv("head.conv", x, 1280, 1, 1, 0);
    LayerId gap = b.GlobalPool("gap", head);
    LayerId fc = b.FcFull("fc", gap, 1000);
    b.MarkOutput(fc);
    return b.Take();
}

}  // namespace soma
