#include "workload/graph_builder.h"

namespace soma {

namespace {

int
ConvOutDim(int in, int kernel, int stride, int pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

LayerId
GraphBuilder::InputConv(const std::string &name, const ExtShape &in,
                        int out_c, int kernel, int stride, int pad)
{
    int oh = ConvOutDim(in.height, kernel, stride, pad);
    int ow = ConvOutDim(in.width, kernel, stride, pad);
    Layer l(name, LayerKind::kConv, out_c, oh, ow);
    l.setWindow(WindowParams{kernel, kernel, stride, stride, pad, pad});
    l.setOpsPerElement(2LL * in.channels * kernel * kernel);
    l.setWeightBytes(static_cast<Bytes>(out_c) * in.channels * kernel *
                     kernel);
    l.addInput(InputRef{kNoLayer, AccessPattern::kWindow, in});
    return Add(std::move(l));
}

LayerId
GraphBuilder::Conv(const std::string &name, LayerId from, int out_c,
                   int kernel, int stride, int pad, int groups)
{
    int in_c = C(from);
    assert(in_c % groups == 0 && out_c % groups == 0);
    int oh = ConvOutDim(H(from), kernel, stride, pad);
    int ow = ConvOutDim(W(from), kernel, stride, pad);
    LayerKind kind =
        (groups == in_c && groups == out_c) ? LayerKind::kDepthwise
                                            : LayerKind::kConv;
    Layer l(name, kind, out_c, oh, ow);
    l.setWindow(WindowParams{kernel, kernel, stride, stride, pad, pad});
    l.setOpsPerElement(2LL * (in_c / groups) * kernel * kernel);
    l.setWeightBytes(static_cast<Bytes>(out_c) * (in_c / groups) * kernel *
                     kernel);
    l.addInput(InputRef{from, AccessPattern::kWindow, {}});
    return Add(std::move(l));
}

LayerId
GraphBuilder::Pool(const std::string &name, LayerId from, int kernel,
                   int stride, int pad)
{
    int oh = ConvOutDim(H(from), kernel, stride, pad);
    int ow = ConvOutDim(W(from), kernel, stride, pad);
    Layer l(name, LayerKind::kPool, C(from), oh, ow);
    l.setWindow(WindowParams{kernel, kernel, stride, stride, pad, pad});
    l.setOpsPerElement(static_cast<Ops>(kernel) * kernel);
    l.addInput(InputRef{from, AccessPattern::kWindow, {}});
    return Add(std::move(l));
}

LayerId
GraphBuilder::GlobalPool(const std::string &name, LayerId from)
{
    Layer l(name, LayerKind::kGlobalPool, C(from), 1, 1);
    l.setOpsPerElement(static_cast<Ops>(H(from)) * W(from));
    l.addInput(InputRef{from, AccessPattern::kFull, {}});
    return Add(std::move(l));
}

LayerId
GraphBuilder::FcFull(const std::string &name, LayerId from, int out_features)
{
    Ops in_features = static_cast<Ops>(C(from)) * H(from) * W(from);
    Layer l(name, LayerKind::kGemm, out_features, 1, 1);
    l.setOpsPerElement(2 * in_features);
    l.setWeightBytes(static_cast<Bytes>(out_features) * in_features);
    l.addInput(InputRef{from, AccessPattern::kFull, {}});
    return Add(std::move(l));
}

LayerId
GraphBuilder::GemmRows(const std::string &name, LayerId from,
                       int out_features)
{
    Layer l(name, LayerKind::kGemm, out_features, H(from), W(from));
    l.setOpsPerElement(2LL * C(from));
    l.setWeightBytes(static_cast<Bytes>(out_features) * C(from));
    l.addInput(InputRef{from, AccessPattern::kRowAligned, {}});
    return Add(std::move(l));
}

LayerId
GraphBuilder::Matmul(const std::string &name, LayerId a, LayerId b, int k_dim,
                     int out_channels)
{
    Layer l(name, LayerKind::kMatmul, out_channels, H(a), W(a));
    l.setOpsPerElement(2LL * k_dim);
    l.addInput(InputRef{a, AccessPattern::kRowAligned, {}});
    l.addInput(InputRef{b, AccessPattern::kFull, {}});
    return Add(std::move(l));
}

LayerId
GraphBuilder::Eltwise(const std::string &name,
                      const std::vector<LayerId> &from)
{
    assert(!from.empty());
    Layer l(name, LayerKind::kEltwise, C(from[0]), H(from[0]), W(from[0]));
    l.setOpsPerElement(static_cast<Ops>(from.size()));
    for (LayerId id : from) {
        assert(C(id) == C(from[0]) && H(id) == H(from[0]) &&
               W(id) == W(from[0]));
        l.addInput(InputRef{id, AccessPattern::kRowAligned, {}});
    }
    return Add(std::move(l));
}

LayerId
GraphBuilder::Act(const std::string &name, LayerId from, Ops ops_per_elem)
{
    Layer l(name, LayerKind::kActivation, C(from), H(from), W(from));
    l.setOpsPerElement(ops_per_elem);
    l.addInput(InputRef{from, AccessPattern::kRowAligned, {}});
    return Add(std::move(l));
}

LayerId
GraphBuilder::LayerNormOp(const std::string &name, LayerId from)
{
    Layer l(name, LayerKind::kLayerNorm, C(from), H(from), W(from));
    l.setOpsPerElement(8);
    l.addInput(InputRef{from, AccessPattern::kRowAligned, {}});
    return Add(std::move(l));
}

LayerId
GraphBuilder::Concat(const std::string &name, const std::vector<LayerId> &from)
{
    assert(!from.empty());
    int channels = 0;
    for (LayerId id : from) {
        assert(H(id) == H(from[0]) && W(id) == W(from[0]));
        channels += C(id);
    }
    Layer l(name, LayerKind::kConcat, channels, H(from[0]), W(from[0]));
    l.setOpsPerElement(1);
    for (LayerId id : from)
        l.addInput(InputRef{id, AccessPattern::kRowAligned, {}});
    return Add(std::move(l));
}

void
GraphBuilder::AddExternalInput(LayerId id, const ExtShape &shape,
                               AccessPattern pattern)
{
    graph_.layer(id).addInput(InputRef{kNoLayer, pattern, shape});
}

}  // namespace soma
