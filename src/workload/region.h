/**
 * @file
 * Tensor region arithmetic.
 *
 * A Region identifies a rectangular slice of a feature map along the
 * batch, height (row) and width (column) dimensions. Channels are never
 * split by SoMa's tiler (splitting channels would prevent fusing more
 * than two layers, Sec. IV-A1 of the paper), so regions carry no channel
 * range: a region always spans all channels of its layer.
 */
#ifndef SOMA_WORKLOAD_REGION_H
#define SOMA_WORKLOAD_REGION_H

#include <algorithm>
#include <cstdint>

namespace soma {

/**
 * Half-open rectangular slice [b0,b1) x [r0,r1) x [c0,c1) of an fmap.
 */
struct Region {
    int b0 = 0;  ///< first batch index
    int b1 = 0;  ///< one past last batch index
    int r0 = 0;  ///< first row
    int r1 = 0;  ///< one past last row
    int c0 = 0;  ///< first column
    int c1 = 0;  ///< one past last column

    bool Empty() const { return b1 <= b0 || r1 <= r0 || c1 <= c0; }

    int Batches() const { return b1 - b0; }
    int Rows() const { return r1 - r0; }
    int Cols() const { return c1 - c0; }

    /** Number of (batch, row, col) sites; multiply by channels for elems. */
    std::int64_t Sites() const
    {
        if (Empty()) return 0;
        return static_cast<std::int64_t>(Batches()) * Rows() * Cols();
    }

    bool operator==(const Region &o) const
    {
        return b0 == o.b0 && b1 == o.b1 && r0 == o.r0 && r1 == o.r1 &&
               c0 == o.c0 && c1 == o.c1;
    }
    bool operator!=(const Region &o) const { return !(*this == o); }

    /** Smallest region containing both (union bounding box). */
    static Region Union(const Region &a, const Region &b)
    {
        if (a.Empty()) return b;
        if (b.Empty()) return a;
        return Region{std::min(a.b0, b.b0), std::max(a.b1, b.b1),
                      std::min(a.r0, b.r0), std::max(a.r1, b.r1),
                      std::min(a.c0, b.c0), std::max(a.c1, b.c1)};
    }

    /** Intersection (may be empty). */
    static Region Intersect(const Region &a, const Region &b)
    {
        Region r{std::max(a.b0, b.b0), std::min(a.b1, b.b1),
                 std::max(a.r0, b.r0), std::min(a.r1, b.r1),
                 std::max(a.c0, b.c0), std::min(a.c1, b.c1)};
        if (r.Empty()) return Region{};
        return r;
    }

    /** Whether this region fully contains @p inner. */
    bool Contains(const Region &inner) const
    {
        if (inner.Empty()) return true;
        return b0 <= inner.b0 && inner.b1 <= b1 && r0 <= inner.r0 &&
               inner.r1 <= r1 && c0 <= inner.c0 && inner.c1 <= c1;
    }
};

/**
 * The i-th of n near-equal slices of a length-L dimension.
 * Slice boundaries are floor(i*L/n), matching the paper's "as equal as
 * possible" split heuristic.
 */
inline void
EvenSlice(int length, int parts, int index, int *lo, int *hi)
{
    *lo = static_cast<int>(static_cast<std::int64_t>(index) * length / parts);
    *hi = static_cast<int>(static_cast<std::int64_t>(index + 1) * length /
                           parts);
}

}  // namespace soma

#endif  // SOMA_WORKLOAD_REGION_H
