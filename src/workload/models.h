/**
 * @file
 * The model zoo used by the paper's evaluation (Sec. VI-A2):
 * ResNet-50, ResNet-101, Inception-ResNet-v1, RandWire, Transformer-Large
 * (for Fig. 3) and GPT-2 Small/XL in prefill and decode phases.
 *
 * All builders fold BatchNorm/bias/ReLU into the preceding conv (standard
 * inference practice) and use INT8 tensors. Shapes are ImageNet-style for
 * the CNNs and token-major (rows = tokens, channels = hidden) for the
 * transformers.
 */
#ifndef SOMA_WORKLOAD_MODELS_H
#define SOMA_WORKLOAD_MODELS_H

#include <cstdint>
#include <string>
#include <vector>

#include "workload/graph.h"

namespace soma {

/** ResNet-50 (He et al.), 224x224 input. */
Graph BuildResNet50(int batch);

/** ResNet-101, 224x224 input. */
Graph BuildResNet101(int batch);

/** Inception-ResNet-v1 (Szegedy et al.), 299x299 input, reduced repeats. */
Graph BuildInceptionResNetV1(int batch);

/**
 * RandWire (Xie et al.): randomly wired CNN in the small regime.
 * Deterministic for a given seed.
 */
Graph BuildRandWire(int batch, std::uint64_t seed = 7,
                    int nodes_per_stage = 10);

/** Transformer-Large encoder (Vaswani et al. "big"): 6 blocks, d=1024. */
Graph BuildTransformerLarge(int batch, int seq_len = 512);

/** GPT-2 family hyperparameters. */
struct Gpt2Config {
    int layers = 12;
    int hidden = 768;
    int heads = 12;
    int ffn = 3072;
};

/** GPT-2-Small (124M): 12 layers, hidden 768. */
Gpt2Config Gpt2Small();

/** GPT-2-XL (1.5B): 48 layers, hidden 1600. */
Gpt2Config Gpt2Xl();

/**
 * Prefill phase: process @p seq_len tokens in one pass.
 * KV pairs for every block are network outputs (written to DRAM).
 */
Graph BuildGpt2Prefill(const Gpt2Config &cfg, int batch, int seq_len);

/**
 * Decode phase: generate the (past_len+1)-th token. The KV cache of
 * @p past_len tokens per block is read from DRAM (external inputs) and
 * the new K/V rows are network outputs.
 */
Graph BuildGpt2Decode(const Gpt2Config &cfg, int batch, int past_len);

/**
 * Lookup by canonical name: "resnet50", "resnet101", "ires", "randwire",
 * "transformer-large", "gpt2s-prefill", "gpt2s-decode", "gpt2xl-prefill",
 * "gpt2xl-decode". Dies on unknown names.
 */
Graph BuildModelByName(const std::string &name, int batch);

/** All names accepted by BuildModelByName. */
std::vector<std::string> AvailableModels();

}  // namespace soma

#endif  // SOMA_WORKLOAD_MODELS_H
