/**
 * @file
 * Inception-ResNet-v1 builder (Szegedy et al., AAAI'17).
 *
 * Represents the "wider, more complex structure" workload class of the
 * paper. Block-internal topology is faithful (multi-branch inception
 * units with residual 1x1 linear projections and concatenations); block
 * repeat counts are mildly reduced (4xA, 7xB, 3xC instead of 5/10/5) to
 * keep default search times laptop-friendly while preserving the wide
 * DAG character that exercises computing-order exploration.
 */
#include "workload/models.h"

#include "workload/graph_builder.h"

namespace soma {

namespace {

/** Inception-ResNet-A: three branches at 35x35, 256 channels in/out. */
LayerId
BlockA(GraphBuilder &b, const std::string &p, LayerId in)
{
    LayerId b0 = b.Conv(p + ".b0", in, 32, 1, 1, 0);
    LayerId b1a = b.Conv(p + ".b1a", in, 32, 1, 1, 0);
    LayerId b1b = b.Conv(p + ".b1b", b1a, 32, 3, 1, 1);
    LayerId b2a = b.Conv(p + ".b2a", in, 32, 1, 1, 0);
    LayerId b2b = b.Conv(p + ".b2b", b2a, 32, 3, 1, 1);
    LayerId b2c = b.Conv(p + ".b2c", b2b, 32, 3, 1, 1);
    LayerId cat = b.Concat(p + ".cat", {b0, b1b, b2c});
    LayerId up = b.Conv(p + ".up", cat, b.C(in), 1, 1, 0);
    return b.Eltwise(p + ".add", {in, up});
}

/** Inception-ResNet-B: two branches at 17x17. */
LayerId
BlockB(GraphBuilder &b, const std::string &p, LayerId in)
{
    LayerId b0 = b.Conv(p + ".b0", in, 128, 1, 1, 0);
    LayerId b1a = b.Conv(p + ".b1a", in, 128, 1, 1, 0);
    // 1x7 then 7x1 factorized convs approximated as two 3x3s with the
    // same channel plan (keeps the region math on square windows).
    LayerId b1b = b.Conv(p + ".b1b", b1a, 128, 3, 1, 1);
    LayerId b1c = b.Conv(p + ".b1c", b1b, 128, 3, 1, 1);
    LayerId cat = b.Concat(p + ".cat", {b0, b1c});
    LayerId up = b.Conv(p + ".up", cat, b.C(in), 1, 1, 0);
    return b.Eltwise(p + ".add", {in, up});
}

/** Inception-ResNet-C: two branches at 8x8. */
LayerId
BlockC(GraphBuilder &b, const std::string &p, LayerId in)
{
    LayerId b0 = b.Conv(p + ".b0", in, 192, 1, 1, 0);
    LayerId b1a = b.Conv(p + ".b1a", in, 192, 1, 1, 0);
    LayerId b1b = b.Conv(p + ".b1b", b1a, 192, 3, 1, 1);
    LayerId cat = b.Concat(p + ".cat", {b0, b1b});
    LayerId up = b.Conv(p + ".up", cat, b.C(in), 1, 1, 0);
    return b.Eltwise(p + ".add", {in, up});
}

}  // namespace

Graph
BuildInceptionResNetV1(int batch)
{
    GraphBuilder b("ires", batch);
    ExtShape image{3, 299, 299};

    // Stem.
    LayerId x = b.InputConv("stem.conv1", image, 32, 3, 2, 0);   // 149
    x = b.Conv("stem.conv2", x, 32, 3, 1, 0);                    // 147
    x = b.Conv("stem.conv3", x, 64, 3, 1, 1);                    // 147
    x = b.Pool("stem.pool1", x, 3, 2, 0);                        // 73
    x = b.Conv("stem.conv4", x, 80, 1, 1, 0);
    x = b.Conv("stem.conv5", x, 192, 3, 1, 0);                   // 71
    x = b.Conv("stem.conv6", x, 256, 3, 2, 0);                   // 35

    for (int i = 0; i < 4; ++i)
        x = BlockA(b, "a" + std::to_string(i + 1), x);

    // Reduction-A: 35 -> 17.
    {
        LayerId r0 = b.Pool("redA.pool", x, 3, 2, 0);
        LayerId r1 = b.Conv("redA.b1", x, 384, 3, 2, 0);
        LayerId r2a = b.Conv("redA.b2a", x, 192, 1, 1, 0);
        LayerId r2b = b.Conv("redA.b2b", r2a, 192, 3, 1, 1);
        LayerId r2c = b.Conv("redA.b2c", r2b, 256, 3, 2, 0);
        x = b.Concat("redA.cat", {r0, r1, r2c});                 // 17, 896
    }

    for (int i = 0; i < 7; ++i)
        x = BlockB(b, "b" + std::to_string(i + 1), x);

    // Reduction-B: 17 -> 8.
    {
        LayerId r0 = b.Pool("redB.pool", x, 3, 2, 0);
        LayerId r1a = b.Conv("redB.b1a", x, 256, 1, 1, 0);
        LayerId r1b = b.Conv("redB.b1b", r1a, 384, 3, 2, 0);
        LayerId r2a = b.Conv("redB.b2a", x, 256, 1, 1, 0);
        LayerId r2b = b.Conv("redB.b2b", r2a, 256, 3, 2, 0);
        LayerId r3a = b.Conv("redB.b3a", x, 256, 1, 1, 0);
        LayerId r3b = b.Conv("redB.b3b", r3a, 256, 3, 1, 1);
        LayerId r3c = b.Conv("redB.b3c", r3b, 256, 3, 2, 0);
        x = b.Concat("redB.cat", {r0, r1b, r2b, r3c});           // 8, 1792
    }

    for (int i = 0; i < 3; ++i)
        x = BlockC(b, "c" + std::to_string(i + 1), x);

    LayerId gap = b.GlobalPool("gap", x);
    LayerId fc = b.FcFull("fc", gap, 1000);
    b.MarkOutput(fc);
    return b.Take();
}

}  // namespace soma
