/**
 * @file
 * The workload graph: a DAG of layers plus the batch size, with the
 * dependency queries used by the notation parser and the search stages.
 */
#ifndef SOMA_WORKLOAD_GRAPH_H
#define SOMA_WORKLOAD_GRAPH_H

#include <string>
#include <vector>

#include "common/types.h"
#include "workload/layer.h"

namespace soma {

/** A (producer, consumer, input slot) dependency record. */
struct Edge {
    LayerId producer = kNoLayer;
    LayerId consumer = kNoLayer;
    int input_index = 0;  ///< index into consumer's inputs()
};

/**
 * A DNN workload: layers, dependencies, batch size.
 *
 * Layers are stored in construction order, which must be a valid
 * topological order (builders naturally satisfy this). The scheduling
 * layers' Computing Order is a permutation of [0, NumLayers()).
 */
class Graph {
  public:
    Graph() = default;
    Graph(std::string name, int batch) : name_(std::move(name)),
                                         batch_(batch) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    int batch() const { return batch_; }
    void setBatch(int b) { batch_ = b; }

    int NumLayers() const { return static_cast<int>(layers_.size()); }

    /** Append a layer; returns its id. Inputs must reference earlier ids. */
    LayerId AddLayer(Layer layer);

    const Layer &layer(LayerId id) const { return layers_[id]; }
    Layer &layer(LayerId id) { return layers_[id]; }

    /** All consumer edges of @p id (built lazily, cached). */
    const std::vector<Edge> &Consumers(LayerId id) const;

    /** All edges of the graph (producer >= 0 only). */
    std::vector<Edge> AllEdges() const;

    /** True when @p order is a permutation with all deps left-to-right. */
    bool IsValidOrder(const std::vector<LayerId> &order) const;

    /** Construction order, which is topological by construction. */
    std::vector<LayerId> TopoOrder() const;

    /** Sanity checks: acyclicity, shape consistency. Dies on violation. */
    void Validate() const;

    /** Sum of OpsForRegion over full regions of all layers. */
    Ops TotalOps() const;

    /** Matrix-engine ops only (PE-array TOPS utilization denominator). */
    Ops TotalMatrixOps() const;

    Bytes TotalWeightBytes() const;

    /** Sum of all per-sample ofmap bytes times batch. */
    Bytes TotalFmapBytes() const;

  private:
    void InvalidateCaches();

    std::string name_;
    int batch_ = 1;
    std::vector<Layer> layers_;
    mutable std::vector<std::vector<Edge>> consumers_;  ///< lazy cache
    mutable bool consumers_valid_ = false;
};

}  // namespace soma

#endif  // SOMA_WORKLOAD_GRAPH_H
