/**
 * @file
 * Transformer builders: Transformer-Large encoder (Fig. 3 workload) and
 * GPT-2 Small/XL in prefill and decode phases (Sec. VI workloads).
 *
 * Token-major layout: rows = tokens (height), channels = hidden size.
 * In decode, the per-block KV cache of past tokens is modeled as two
 * external DRAM inputs of the attention matmuls (the paper's observation
 * that decode latency is dominated by weight + KV cache loading follows
 * directly), and the new K/V rows are network outputs appended to the
 * cache.
 */
#include "workload/models.h"

#include "workload/graph_builder.h"

namespace soma {

namespace {

struct BlockShape {
    int hidden;
    int heads;
    int ffn;
    int q_rows;    ///< query tokens processed this pass
    int kv_rows;   ///< total keys/values attended to
    int past_rows; ///< keys/values loaded from the DRAM KV cache
};

/**
 * One pre-norm transformer block. @p x is the residual stream input.
 * K/V outputs are marked as network outputs when @p store_kv.
 */
LayerId
TransformerBlock(GraphBuilder &b, const std::string &p, LayerId x,
                 const BlockShape &s, bool store_kv)
{
    int dh = s.hidden / s.heads;
    LayerId ln1 = b.LayerNormOp(p + ".ln1", x);
    LayerId q = b.GemmRows(p + ".q", ln1, s.hidden);
    LayerId k = b.GemmRows(p + ".k", ln1, s.hidden);
    LayerId v = b.GemmRows(p + ".v", ln1, s.hidden);
    if (store_kv) {
        b.MarkOutput(k);
        b.MarkOutput(v);
    }

    // scores[b, head, i, j] = q . k / sqrt(dh): one output element per
    // (head, key) pair along channels, per query row.
    LayerId scores = b.Matmul(p + ".qk", q, k, dh, s.heads * s.kv_rows);
    if (s.past_rows > 0) {
        b.AddExternalInput(scores, ExtShape{s.hidden, s.past_rows, 1});
    }
    LayerId probs = b.Act(p + ".softmax", scores, 5);
    LayerId attn = b.Matmul(p + ".sv", probs, v, s.kv_rows, s.hidden);
    if (s.past_rows > 0) {
        b.AddExternalInput(attn, ExtShape{s.hidden, s.past_rows, 1});
    }
    LayerId proj = b.GemmRows(p + ".proj", attn, s.hidden);
    LayerId add1 = b.Eltwise(p + ".add1", {x, proj});

    LayerId ln2 = b.LayerNormOp(p + ".ln2", add1);
    LayerId ff1 = b.GemmRows(p + ".ff1", ln2, s.ffn);
    LayerId gelu = b.Act(p + ".gelu", ff1, 8);
    LayerId ff2 = b.GemmRows(p + ".ff2", gelu, s.hidden);
    return b.Eltwise(p + ".add2", {add1, ff2});
}

/** Embedding stand-in: token-wise projection reading the input tokens. */
LayerId
EmbeddingStub(GraphBuilder &b, int hidden, int rows)
{
    Layer l("embed", LayerKind::kEltwise, hidden, rows, 1);
    l.setOpsPerElement(1);
    l.addInput(InputRef{kNoLayer, AccessPattern::kRowAligned,
                        ExtShape{hidden, rows, 1}});
    return b.graph().AddLayer(std::move(l));
}

Graph
BuildDecoderStack(const std::string &name, const Gpt2Config &cfg, int batch,
                  int q_rows, int kv_rows, int past_rows, bool store_kv)
{
    GraphBuilder b(name, batch);
    LayerId x = EmbeddingStub(b, cfg.hidden, q_rows);
    BlockShape s{cfg.hidden, cfg.heads, cfg.ffn, q_rows, kv_rows, past_rows};
    for (int i = 0; i < cfg.layers; ++i)
        x = TransformerBlock(b, "blk" + std::to_string(i), x, s, store_kv);
    LayerId lnf = b.LayerNormOp("ln_f", x);
    b.MarkOutput(lnf);
    return b.Take();
}

}  // namespace

Gpt2Config
Gpt2Small()
{
    return Gpt2Config{12, 768, 12, 3072};
}

Gpt2Config
Gpt2Xl()
{
    return Gpt2Config{48, 1600, 25, 6400};
}

Graph
BuildGpt2Prefill(const Gpt2Config &cfg, int batch, int seq_len)
{
    return BuildDecoderStack("gpt2-prefill", cfg, batch, seq_len, seq_len,
                             /*past_rows=*/0, /*store_kv=*/true);
}

Graph
BuildGpt2Decode(const Gpt2Config &cfg, int batch, int past_len)
{
    return BuildDecoderStack("gpt2-decode", cfg, batch, /*q_rows=*/1,
                             /*kv_rows=*/past_len + 1, past_len,
                             /*store_kv=*/true);
}

Graph
BuildTransformerLarge(int batch, int seq_len)
{
    Gpt2Config big{6, 1024, 16, 4096};
    return BuildDecoderStack("transformer-large", big, batch, seq_len,
                             seq_len, /*past_rows=*/0, /*store_kv=*/false);
}

}  // namespace soma
