#include "workload/model_parser.h"

#include <fstream>
#include <sstream>

namespace soma {

namespace {

const char *
PatternName(AccessPattern p)
{
    switch (p) {
      case AccessPattern::kRowAligned: return "row";
      case AccessPattern::kWindow: return "win";
      case AccessPattern::kFull: return "full";
    }
    return "?";
}

bool
PatternFromName(const std::string &s, AccessPattern *p)
{
    if (s == "row") { *p = AccessPattern::kRowAligned; return true; }
    if (s == "win") { *p = AccessPattern::kWindow; return true; }
    if (s == "full") { *p = AccessPattern::kFull; return true; }
    return false;
}

bool
HasWindow(const Layer &l)
{
    for (const InputRef &in : l.inputs())
        if (in.pattern == AccessPattern::kWindow) return true;
    return false;
}

}  // namespace

std::string
SerializeModel(const Graph &graph)
{
    std::ostringstream os;
    os << "# SoMa model description\n";
    os << "model " << graph.name() << " " << graph.batch() << "\n";
    for (LayerId id = 0; id < graph.NumLayers(); ++id) {
        const Layer &l = graph.layer(id);
        os << "layer " << LayerKindName(l.kind()) << " " << l.name() << " "
           << l.outChannels() << " " << l.outHeight() << " " << l.outWidth()
           << " " << l.weightBytes() << " " << l.opsPerElement() << " "
           << l.elemBytes() << " " << (l.isNetworkOutput() ? 1 : 0);
        if (HasWindow(l)) {
            const WindowParams &w = l.window();
            os << " win " << w.kernel_h << " " << w.kernel_w << " "
               << w.stride_h << " " << w.stride_w << " " << w.pad_h << " "
               << w.pad_w;
        }
        os << "\n";
        for (const InputRef &in : l.inputs()) {
            if (in.producer == kNoLayer) {
                os << "in " << id << " ext " << PatternName(in.pattern)
                   << " " << in.ext.channels << " " << in.ext.height << " "
                   << in.ext.width << "\n";
            } else {
                os << "in " << id << " prod " << in.producer << " "
                   << PatternName(in.pattern) << "\n";
            }
        }
    }
    return os.str();
}

bool
ParseModel(const std::string &text, Graph *graph, std::string *error)
{
    auto fail = [&](const std::string &msg, int line_no) {
        if (error) {
            *error = "line " + std::to_string(line_no) + ": " + msg;
        }
        return false;
    };

    // Two-pass parse: collect layers, then attach inputs, then build the
    // graph (AddLayer requires inputs to be known up front).
    std::vector<Layer> layers;
    std::vector<std::vector<InputRef>> inputs;
    std::string model_name = "model";
    int batch = 1;

    std::istringstream is(text);
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        auto hash = line.find('#');
        if (hash != std::string::npos) line = line.substr(0, hash);
        std::istringstream ls(line);
        std::string tok;
        if (!(ls >> tok)) continue;
        if (tok == "model") {
            if (!(ls >> model_name >> batch))
                return fail("malformed model line", line_no);
        } else if (tok == "layer") {
            std::string kind_name, name;
            int c, h, w, elem, is_out;
            long long wbytes, opselem;
            if (!(ls >> kind_name >> name >> c >> h >> w >> wbytes >>
                  opselem >> elem >> is_out))
                return fail("malformed layer line", line_no);
            LayerKind kind;
            if (!LayerKindFromName(kind_name, &kind))
                return fail("unknown layer kind " + kind_name, line_no);
            Layer l(name, kind, c, h, w);
            l.setWeightBytes(wbytes);
            l.setOpsPerElement(opselem);
            l.setElemBytes(elem);
            l.setNetworkOutput(is_out != 0);
            std::string win;
            if (ls >> win) {
                if (win != "win")
                    return fail("unexpected token " + win, line_no);
                WindowParams wp;
                if (!(ls >> wp.kernel_h >> wp.kernel_w >> wp.stride_h >>
                      wp.stride_w >> wp.pad_h >> wp.pad_w))
                    return fail("malformed window", line_no);
                l.setWindow(wp);
            }
            layers.push_back(std::move(l));
            inputs.emplace_back();
        } else if (tok == "in") {
            int layer_idx;
            std::string src;
            if (!(ls >> layer_idx >> src))
                return fail("malformed in line", line_no);
            if (layer_idx < 0 || layer_idx >= static_cast<int>(layers.size()))
                return fail("input references unknown layer", line_no);
            InputRef ref;
            std::string pat;
            if (src == "prod") {
                int prod;
                if (!(ls >> prod >> pat))
                    return fail("malformed prod input", line_no);
                if (prod < 0 || prod >= layer_idx)
                    return fail("producer must precede consumer", line_no);
                ref.producer = prod;
            } else if (src == "ext") {
                if (!(ls >> pat >> ref.ext.channels >> ref.ext.height >>
                      ref.ext.width))
                    return fail("malformed ext input", line_no);
                ref.producer = kNoLayer;
            } else {
                return fail("unknown input source " + src, line_no);
            }
            if (!PatternFromName(pat, &ref.pattern))
                return fail("unknown pattern " + pat, line_no);
            inputs[layer_idx].push_back(ref);
        } else {
            return fail("unknown directive " + tok, line_no);
        }
    }

    Graph g(model_name, batch);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        for (const InputRef &in : inputs[i]) layers[i].addInput(in);
        g.AddLayer(std::move(layers[i]));
    }
    g.Validate();
    *graph = std::move(g);
    return true;
}

bool
WriteModelFile(const Graph &graph, const std::string &path)
{
    std::ofstream out(path);
    if (!out) return false;
    out << SerializeModel(graph);
    return static_cast<bool>(out);
}

bool
ReadModelFile(const std::string &path, Graph *graph, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error) *error = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ParseModel(ss.str(), graph, error);
}

}  // namespace soma
