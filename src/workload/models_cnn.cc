/**
 * @file
 * ResNet-50 / ResNet-101 builders plus the name-based model registry.
 */
#include "workload/models.h"

#include <array>
#include <cstdlib>

#include "common/logging.h"
#include "workload/graph_builder.h"

namespace soma {

namespace {

/**
 * One bottleneck residual block: 1x1 -> 3x3 -> 1x1 plus identity or
 * 1x1-stride projection shortcut, followed by an elementwise add.
 */
LayerId
Bottleneck(GraphBuilder &b, const std::string &prefix, LayerId in, int mid_c,
           int out_c, int stride, bool project)
{
    LayerId c1 = b.Conv(prefix + ".conv1", in, mid_c, 1, 1, 0);
    LayerId c2 = b.Conv(prefix + ".conv2", c1, mid_c, 3, stride, 1);
    LayerId c3 = b.Conv(prefix + ".conv3", c2, out_c, 1, 1, 0);
    LayerId shortcut = in;
    if (project)
        shortcut = b.Conv(prefix + ".down", in, out_c, 1, stride, 0);
    return b.Eltwise(prefix + ".add", {c3, shortcut});
}

Graph
BuildResNet(const std::string &name, int batch,
            const std::array<int, 4> &repeats)
{
    GraphBuilder b(name, batch);
    ExtShape image{3, 224, 224};
    LayerId stem = b.InputConv("conv1", image, 64, 7, 2, 3);
    LayerId x = b.Pool("pool1", stem, 3, 2, 1);

    const int mids[4] = {64, 128, 256, 512};
    const int outs[4] = {256, 512, 1024, 2048};
    for (int stage = 0; stage < 4; ++stage) {
        for (int block = 0; block < repeats[stage]; ++block) {
            std::string prefix = "conv" + std::to_string(stage + 2) + "_" +
                                 std::to_string(block + 1);
            int stride = (block == 0 && stage > 0) ? 2 : 1;
            bool project = (block == 0);
            x = Bottleneck(b, prefix, x, mids[stage], outs[stage], stride,
                           project);
        }
    }
    LayerId gap = b.GlobalPool("gap", x);
    LayerId fc = b.FcFull("fc", gap, 1000);
    b.MarkOutput(fc);
    return b.Take();
}

}  // namespace

Graph
BuildResNet50(int batch)
{
    return BuildResNet("resnet50", batch, {3, 4, 6, 3});
}

Graph
BuildResNet101(int batch)
{
    return BuildResNet("resnet101", batch, {3, 4, 23, 3});
}

Graph
BuildModelByName(const std::string &name, int batch)
{
    if (name == "resnet50") return BuildResNet50(batch);
    if (name == "resnet101") return BuildResNet101(batch);
    if (name == "ires") return BuildInceptionResNetV1(batch);
    if (name == "randwire") return BuildRandWire(batch);
    if (name == "transformer-large") return BuildTransformerLarge(batch);
    if (name == "gpt2s-prefill") return BuildGpt2Prefill(Gpt2Small(), batch,
                                                         512);
    if (name == "gpt2s-decode") return BuildGpt2Decode(Gpt2Small(), batch,
                                                       512);
    if (name == "gpt2xl-prefill") return BuildGpt2Prefill(Gpt2Xl(), batch,
                                                          1024);
    if (name == "gpt2xl-decode") return BuildGpt2Decode(Gpt2Xl(), batch,
                                                        1024);
    SOMA_ERROR << "unknown model: " << name;
    std::abort();
}

std::vector<std::string>
AvailableModels()
{
    return {"resnet50", "resnet101", "ires", "randwire",
            "transformer-large", "gpt2s-prefill", "gpt2s-decode",
            "gpt2xl-prefill", "gpt2xl-decode"};
}

}  // namespace soma
