/**
 * @file
 * DNN layer model: kinds, shapes, operation counts, and the access
 * patterns that map a consumer's output region to the producer region it
 * needs. This is the substrate beneath the Tensor-centric Notation.
 */
#ifndef SOMA_WORKLOAD_LAYER_H
#define SOMA_WORKLOAD_LAYER_H

#include <string>
#include <vector>

#include "common/types.h"
#include "workload/region.h"

namespace soma {

/** Functional class of a layer; decides which engine executes it. */
enum class LayerKind {
    kConv,       ///< 2-D convolution (PE array)
    kDepthwise,  ///< depthwise convolution (PE array)
    kPool,       ///< windowed max/avg pooling (vector unit)
    kGlobalPool, ///< global average pooling (vector unit)
    kGemm,       ///< GEMM with static weights: FC / projections (PE array)
    kMatmul,     ///< GEMM between two activations: attention (PE array)
    kEltwise,    ///< elementwise add/mul (vector unit)
    kActivation, ///< ReLU / GELU / softmax (vector unit)
    kLayerNorm,  ///< layer normalization (vector unit)
    kConcat,     ///< channel concatenation (vector unit / DMA)
};

/** True if the kind runs on the PE (matrix) array rather than vector unit. */
bool IsMatrixKind(LayerKind kind);

/** Short mnemonic ("conv", "gemm", ...) used by the model text format. */
const char *LayerKindName(LayerKind kind);

/** Inverse of LayerKindName; returns false if unknown. */
bool LayerKindFromName(const std::string &name, LayerKind *kind);

/**
 * How a consumer's output region maps to the producer region it reads.
 */
enum class AccessPattern {
    kRowAligned,  ///< same (batch,row,col) sites: eltwise, GEMM A operand
    kWindow,      ///< receptive-field expansion: conv / pool
    kFull,        ///< needs the producer's full spatial extent per batch:
                  ///< attention B operand, global pooling, flatten+FC
};

/** Receptive-field parameters for AccessPattern::kWindow. */
struct WindowParams {
    int kernel_h = 1;
    int kernel_w = 1;
    int stride_h = 1;
    int stride_w = 1;
    int pad_h = 0;
    int pad_w = 0;
};

/**
 * Shape of a tensor that lives outside the graph (network input fmaps,
 * KV-cache reads in decode). Per-sample shape; batch comes from regions.
 */
struct ExtShape {
    int channels = 0;
    int height = 0;
    int width = 0;
    Bytes PerSampleBytes(int elem_bytes) const
    {
        return static_cast<Bytes>(channels) * height * width * elem_bytes;
    }
};

/**
 * One input of a layer: either another layer's ofmap (producer >= 0) or
 * an external DRAM tensor (producer == kNoLayer, shape in ext).
 */
struct InputRef {
    LayerId producer = kNoLayer;
    AccessPattern pattern = AccessPattern::kRowAligned;
    ExtShape ext;  ///< only meaningful when producer == kNoLayer
};

/**
 * A single DNN layer.
 *
 * Shapes are per-sample (the batch dimension lives in the Graph); all
 * tensors use INT8 (1 byte/element) by default, matching the paper's
 * evaluation precision.
 */
class Layer {
  public:
    Layer() = default;
    Layer(std::string name, LayerKind kind, int out_c, int out_h, int out_w);

    const std::string &name() const { return name_; }
    LayerKind kind() const { return kind_; }

    int outChannels() const { return out_c_; }
    int outHeight() const { return out_h_; }
    int outWidth() const { return out_w_; }

    /** Weight bytes resident in DRAM; 0 for weight-less layers. */
    Bytes weightBytes() const { return weight_bytes_; }
    void setWeightBytes(Bytes b) { weight_bytes_ = b; }

    /** Ops per output element (2*C*R*S for conv, 2*K for GEMM, ...). */
    Ops opsPerElement() const { return ops_per_elem_; }
    void setOpsPerElement(Ops ops) { ops_per_elem_ = ops; }

    int elemBytes() const { return elem_bytes_; }
    void setElemBytes(int b) { elem_bytes_ = b; }

    const WindowParams &window() const { return window_; }
    void setWindow(const WindowParams &w) { window_ = w; }

    const std::vector<InputRef> &inputs() const { return inputs_; }
    std::vector<InputRef> &inputs() { return inputs_; }
    void addInput(InputRef ref) { inputs_.push_back(ref); }

    /** True if the layer's ofmap is an overall network output. */
    bool isNetworkOutput() const { return is_network_output_; }
    void setNetworkOutput(bool v) { is_network_output_ = v; }

    /** Whether the layer runs on the vector unit. */
    bool isVectorOp() const { return !IsMatrixKind(kind_); }

    /** Full output region (batch taken as a parameter). */
    Region FullRegion(int batch) const
    {
        return Region{0, batch, 0, out_h_, 0, out_w_};
    }

    /** Bytes of the ofmap slice covered by @p region. */
    Bytes OutputBytes(const Region &region) const
    {
        return region.Sites() * out_c_ * elem_bytes_;
    }

    /** Per-sample ofmap bytes. */
    Bytes PerSampleOutputBytes() const
    {
        return static_cast<Bytes>(out_c_) * out_h_ * out_w_ * elem_bytes_;
    }

    /** Total ops to produce @p region of the ofmap. */
    Ops OpsForRegion(const Region &region) const
    {
        return region.Sites() * out_c_ * ops_per_elem_;
    }

    /**
     * The producer-side region this layer must read to produce
     * @p out_region, for input @p input. @p prod_h / @p prod_w give the
     * producer's (or external tensor's) spatial extent for clipping.
     */
    Region RequiredInputRegion(const InputRef &input, const Region &out_region,
                               int prod_h, int prod_w) const;

    /** Bytes read from input @p input for consumer region @p out_region,
     *  given the producer's channel count @p prod_c and extent. */
    Bytes InputBytes(const InputRef &input, const Region &out_region,
                     int prod_c, int prod_h, int prod_w) const;

  private:
    std::string name_;
    LayerKind kind_ = LayerKind::kConv;
    int out_c_ = 0;
    int out_h_ = 0;
    int out_w_ = 0;
    Bytes weight_bytes_ = 0;
    Ops ops_per_elem_ = 0;
    int elem_bytes_ = 1;
    WindowParams window_;
    std::vector<InputRef> inputs_;
    bool is_network_output_ = false;
};

}  // namespace soma

#endif  // SOMA_WORKLOAD_LAYER_H
