/**
 * @file
 * Text serialization of workload graphs — the "DNN model description
 * file" input of the SoMa framework (Fig. 5). A front-end exporter (e.g.
 * from PyTorch) would emit this format; the model zoo can also dump it so
 * users can inspect or hand-edit workloads.
 *
 * Format (line oriented, '#' comments):
 *
 *   model <name> <batch>
 *   layer <kind> <name> <out_c> <out_h> <out_w> <weight_bytes>
 *         <ops_per_elem> <elem_bytes> <is_output> [win <kh> <kw> <sh> <sw>
 *         <ph> <pw>]
 *   in <layer_index> prod <producer_index> <pattern>
 *   in <layer_index> ext <pattern> <c> <h> <w>
 *
 * where <pattern> is one of: row | win | full.
 */
#ifndef SOMA_WORKLOAD_MODEL_PARSER_H
#define SOMA_WORKLOAD_MODEL_PARSER_H

#include <string>

#include "workload/graph.h"

namespace soma {

/** Serialize a graph to the model description text format. */
std::string SerializeModel(const Graph &graph);

/**
 * Parse a model description. Returns false (and fills @p error) on
 * malformed input; on success the graph is validated.
 */
bool ParseModel(const std::string &text, Graph *graph, std::string *error);

/** File convenience wrappers. */
bool WriteModelFile(const Graph &graph, const std::string &path);
bool ReadModelFile(const std::string &path, Graph *graph,
                   std::string *error);

}  // namespace soma

#endif  // SOMA_WORKLOAD_MODEL_PARSER_H
