/**
 * @file
 * Fig. 7: design-space exploration over DRAM bandwidth x buffer size for
 * the 16 TOPS edge accelerator. Prints the latency heat-map rows for
 * Cocco and SoMa per workload and batch size, and marks the
 * minimum-latency envelope (the paper's red curve: with SoMa, a larger
 * buffer substitutes for DRAM bandwidth — a lower-right triangle of
 * near-minimal configurations that Cocco does not exhibit).
 *
 * Insights to reproduce: (1) at batch 1, bandwidth dominates and buffer
 * barely helps; (2) at larger batches the buffer column gradient grows;
 * (3) big-buffer + big-bandwidth corners are wasteful.
 */
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace soma;
using namespace soma::bench;

const std::vector<double> kBandwidths = {8, 16, 32, 64};
const std::vector<Bytes> kBuffers = {2LL << 20, 4LL << 20, 8LL << 20,
                                     16LL << 20, 32LL << 20};

struct GridResult {
    std::string net;
    int batch;
    bool use_soma;
    // latency[bw index][buf index]
    std::vector<std::vector<double>> latency;
};

std::vector<GridResult> g_grids;

std::vector<const char *>
NetsFor(Profile p)
{
    if (p == Profile::kQuick) return {"resnet50"};
    if (p == Profile::kDefault) return {"resnet50", "gpt2s-decode"};
    return {"resnet50", "resnet101", "ires", "randwire", "gpt2s-prefill",
            "gpt2s-decode"};
}

void
RunGrid(benchmark::State &state, const char *net, int batch, bool use_soma)
{
    for (auto _ : state) {
        Graph g = BuildModelByName(net, batch);
        GridResult grid;
        grid.net = net;
        grid.batch = batch;
        grid.use_soma = use_soma;
        Profile profile = ProfileFromEnv();
        // The DSE sweep runs many searches; drop one budget tier.
        Profile inner = profile == Profile::kFull ? Profile::kDefault
                                                  : Profile::kQuick;
        double best = 1e30;
        for (double bw : kBandwidths) {
            std::vector<double> row;
            for (Bytes buf : kBuffers) {
                HardwareConfig hw =
                    WithBufferAndBandwidth(EdgeAccelerator(), buf, bw);
                double latency;
                if (use_soma) {
                    latency = RunSoma(g, hw, SomaOptsFor(inner, 1))
                                  .report.latency;
                } else {
                    latency = RunCocco(g, hw, CoccoOptsFor(inner, 1))
                                  .report.latency;
                }
                row.push_back(latency);
                best = std::min(best, latency);
            }
            grid.latency.push_back(row);
        }
        g_grids.push_back(grid);
        state.counters["min_latency_ms"] = best * 1e3;
    }
}

void
PrintGrids()
{
    for (const GridResult &grid : g_grids) {
        std::cout << "\n=== Fig. 7: " << (grid.use_soma ? "SoMa" : "Cocco")
                  << " | " << grid.net << " | batch " << grid.batch
                  << " | latency ms (rows GB/s, cols buffer MB; * = within "
                     "2% of minimum) ===\n";
        double best = 1e30;
        for (const auto &row : grid.latency)
            for (double v : row) best = std::min(best, v);

        std::vector<std::string> header = {"GB/s\\MB"};
        for (Bytes b : kBuffers) header.push_back(std::to_string(b >> 20));
        Table t(header);
        for (std::size_t i = 0; i < kBandwidths.size(); ++i) {
            std::vector<std::string> row = {
                FormatDouble(kBandwidths[i], 0)};
            for (std::size_t j = 0; j < kBuffers.size(); ++j) {
                double v = grid.latency[i][j];
                std::string cell = std::isfinite(v)
                                       ? FormatDouble(v * 1e3, 2)
                                       : "inf";
                if (std::isfinite(v) && v <= best * 1.02) cell += "*";
                row.push_back(cell);
            }
            t.AddRow(row);
        }
        t.Print(std::cout);
    }

    // Envelope summary: how many near-minimal cells each framework has
    // (the paper's red-envelope "triangle" appears for SoMa only).
    std::cout << "\n=== Envelope summary (near-minimal cells per grid) "
                 "===\n";
    Table t({"net", "batch", "scheme", "cells within 2% of min"});
    for (const GridResult &grid : g_grids) {
        double best = 1e30;
        int count = 0;
        for (const auto &row : grid.latency)
            for (double v : row) best = std::min(best, v);
        for (const auto &row : grid.latency)
            for (double v : row)
                if (std::isfinite(v) && v <= best * 1.02) ++count;
        t.AddRow({grid.net, std::to_string(grid.batch),
                  grid.use_soma ? "soma" : "cocco", std::to_string(count)});
    }
    t.Print(std::cout);
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::InitBenchJson(&argc, argv);
    Profile profile = ProfileFromEnv();
    std::cout << "bench_fig7_dse profile=" << ProfileName(profile) << "\n";
    for (const char *net : NetsFor(profile)) {
        for (int batch : BatchesFor(profile)) {
            for (bool use_soma : {false, true}) {
                std::string name = std::string("fig7/") + net + "/bs" +
                                   std::to_string(batch) +
                                   (use_soma ? "/soma" : "/cocco");
                benchmark::RegisterBenchmark(
                    name.c_str(),
                    [net, batch, use_soma](benchmark::State &state) {
                        RunGrid(state, net, batch, use_soma);
                    })
                    ->Unit(benchmark::kSecond)
                    ->Iterations(1);
            }
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    PrintGrids();
    bench::JsonSink::Instance().Flush();
    return 0;
}
